# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_himeno_solver "/root/repo/build/examples/himeno_solver")
set_tests_properties(example_himeno_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dht_wordcount "/root/repo/build/examples/dht_wordcount")
set_tests_properties(example_dht_wordcount PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_montecarlo_pi "/root/repo/build/examples/montecarlo_pi")
set_tests_properties(example_montecarlo_pi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_strided_transpose "/root/repo/build/examples/strided_transpose")
set_tests_properties(example_strided_transpose PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_stages "/root/repo/build/examples/pipeline_stages")
set_tests_properties(example_pipeline_stages PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hybrid_caf_shmem "/root/repo/build/examples/hybrid_caf_shmem")
set_tests_properties(example_hybrid_caf_shmem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_two_models "/root/repo/build/examples/two_models")
set_tests_properties(example_two_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
