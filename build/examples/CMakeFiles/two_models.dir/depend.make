# Empty dependencies file for two_models.
# This may be replaced when dependencies are built.
