file(REMOVE_RECURSE
  "CMakeFiles/two_models.dir/two_models.cpp.o"
  "CMakeFiles/two_models.dir/two_models.cpp.o.d"
  "two_models"
  "two_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
