# Empty dependencies file for himeno_solver.
# This may be replaced when dependencies are built.
