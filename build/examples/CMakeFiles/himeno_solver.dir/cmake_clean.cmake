file(REMOVE_RECURSE
  "CMakeFiles/himeno_solver.dir/himeno_solver.cpp.o"
  "CMakeFiles/himeno_solver.dir/himeno_solver.cpp.o.d"
  "himeno_solver"
  "himeno_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/himeno_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
