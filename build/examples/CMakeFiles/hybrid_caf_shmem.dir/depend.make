# Empty dependencies file for hybrid_caf_shmem.
# This may be replaced when dependencies are built.
