
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hybrid_caf_shmem.cpp" "examples/CMakeFiles/hybrid_caf_shmem.dir/hybrid_caf_shmem.cpp.o" "gcc" "examples/CMakeFiles/hybrid_caf_shmem.dir/hybrid_caf_shmem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/repro_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/caf/CMakeFiles/repro_caf.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/repro_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/gasnet/CMakeFiles/repro_gasnet.dir/DependInfo.cmake"
  "/root/repo/build/src/armci/CMakeFiles/repro_armci.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi3/CMakeFiles/repro_mpi3.dir/DependInfo.cmake"
  "/root/repo/build/src/craycaf/CMakeFiles/repro_craycaf.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/repro_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
