file(REMOVE_RECURSE
  "CMakeFiles/hybrid_caf_shmem.dir/hybrid_caf_shmem.cpp.o"
  "CMakeFiles/hybrid_caf_shmem.dir/hybrid_caf_shmem.cpp.o.d"
  "hybrid_caf_shmem"
  "hybrid_caf_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_caf_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
