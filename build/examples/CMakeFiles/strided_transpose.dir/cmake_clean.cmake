file(REMOVE_RECURSE
  "CMakeFiles/strided_transpose.dir/strided_transpose.cpp.o"
  "CMakeFiles/strided_transpose.dir/strided_transpose.cpp.o.d"
  "strided_transpose"
  "strided_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strided_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
