# Empty compiler generated dependencies file for strided_transpose.
# This may be replaced when dependencies are built.
