file(REMOVE_RECURSE
  "CMakeFiles/dht_wordcount.dir/dht_wordcount.cpp.o"
  "CMakeFiles/dht_wordcount.dir/dht_wordcount.cpp.o.d"
  "dht_wordcount"
  "dht_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dht_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
