# Empty dependencies file for dht_wordcount.
# This may be replaced when dependencies are built.
