file(REMOVE_RECURSE
  "CMakeFiles/repro_apps.dir/himeno.cpp.o"
  "CMakeFiles/repro_apps.dir/himeno.cpp.o.d"
  "librepro_apps.a"
  "librepro_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
