file(REMOVE_RECURSE
  "CMakeFiles/repro_gasnet.dir/gasnet.cpp.o"
  "CMakeFiles/repro_gasnet.dir/gasnet.cpp.o.d"
  "librepro_gasnet.a"
  "librepro_gasnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_gasnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
