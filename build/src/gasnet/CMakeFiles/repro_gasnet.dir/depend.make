# Empty dependencies file for repro_gasnet.
# This may be replaced when dependencies are built.
