file(REMOVE_RECURSE
  "librepro_gasnet.a"
)
