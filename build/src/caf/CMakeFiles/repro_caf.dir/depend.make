# Empty dependencies file for repro_caf.
# This may be replaced when dependencies are built.
