file(REMOVE_RECURSE
  "librepro_caf.a"
)
