file(REMOVE_RECURSE
  "CMakeFiles/repro_caf.dir/armci_conduit.cpp.o"
  "CMakeFiles/repro_caf.dir/armci_conduit.cpp.o.d"
  "CMakeFiles/repro_caf.dir/gasnet_conduit.cpp.o"
  "CMakeFiles/repro_caf.dir/gasnet_conduit.cpp.o.d"
  "CMakeFiles/repro_caf.dir/runtime.cpp.o"
  "CMakeFiles/repro_caf.dir/runtime.cpp.o.d"
  "CMakeFiles/repro_caf.dir/section.cpp.o"
  "CMakeFiles/repro_caf.dir/section.cpp.o.d"
  "CMakeFiles/repro_caf.dir/strided.cpp.o"
  "CMakeFiles/repro_caf.dir/strided.cpp.o.d"
  "librepro_caf.a"
  "librepro_caf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_caf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
