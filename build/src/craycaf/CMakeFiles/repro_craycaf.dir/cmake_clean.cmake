file(REMOVE_RECURSE
  "CMakeFiles/repro_craycaf.dir/craycaf.cpp.o"
  "CMakeFiles/repro_craycaf.dir/craycaf.cpp.o.d"
  "librepro_craycaf.a"
  "librepro_craycaf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_craycaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
