file(REMOVE_RECURSE
  "librepro_craycaf.a"
)
