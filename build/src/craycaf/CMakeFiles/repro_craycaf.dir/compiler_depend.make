# Empty compiler generated dependencies file for repro_craycaf.
# This may be replaced when dependencies are built.
