# Empty compiler generated dependencies file for repro_armci.
# This may be replaced when dependencies are built.
