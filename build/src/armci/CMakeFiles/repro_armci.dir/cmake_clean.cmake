file(REMOVE_RECURSE
  "CMakeFiles/repro_armci.dir/armci.cpp.o"
  "CMakeFiles/repro_armci.dir/armci.cpp.o.d"
  "librepro_armci.a"
  "librepro_armci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_armci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
