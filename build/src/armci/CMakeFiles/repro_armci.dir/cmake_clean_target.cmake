file(REMOVE_RECURSE
  "librepro_armci.a"
)
