file(REMOVE_RECURSE
  "librepro_mpi3.a"
)
