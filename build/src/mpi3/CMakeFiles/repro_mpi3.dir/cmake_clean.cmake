file(REMOVE_RECURSE
  "CMakeFiles/repro_mpi3.dir/rma.cpp.o"
  "CMakeFiles/repro_mpi3.dir/rma.cpp.o.d"
  "librepro_mpi3.a"
  "librepro_mpi3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_mpi3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
