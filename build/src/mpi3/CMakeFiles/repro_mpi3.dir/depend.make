# Empty dependencies file for repro_mpi3.
# This may be replaced when dependencies are built.
