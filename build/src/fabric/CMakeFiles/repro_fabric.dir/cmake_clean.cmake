file(REMOVE_RECURSE
  "CMakeFiles/repro_fabric.dir/dmapp.cpp.o"
  "CMakeFiles/repro_fabric.dir/dmapp.cpp.o.d"
  "CMakeFiles/repro_fabric.dir/domain.cpp.o"
  "CMakeFiles/repro_fabric.dir/domain.cpp.o.d"
  "CMakeFiles/repro_fabric.dir/verbs.cpp.o"
  "CMakeFiles/repro_fabric.dir/verbs.cpp.o.d"
  "librepro_fabric.a"
  "librepro_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
