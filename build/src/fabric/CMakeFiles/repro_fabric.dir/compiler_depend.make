# Empty compiler generated dependencies file for repro_fabric.
# This may be replaced when dependencies are built.
