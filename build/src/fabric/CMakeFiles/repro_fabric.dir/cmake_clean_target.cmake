file(REMOVE_RECURSE
  "librepro_fabric.a"
)
