
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/dmapp.cpp" "src/fabric/CMakeFiles/repro_fabric.dir/dmapp.cpp.o" "gcc" "src/fabric/CMakeFiles/repro_fabric.dir/dmapp.cpp.o.d"
  "/root/repo/src/fabric/domain.cpp" "src/fabric/CMakeFiles/repro_fabric.dir/domain.cpp.o" "gcc" "src/fabric/CMakeFiles/repro_fabric.dir/domain.cpp.o.d"
  "/root/repo/src/fabric/verbs.cpp" "src/fabric/CMakeFiles/repro_fabric.dir/verbs.cpp.o" "gcc" "src/fabric/CMakeFiles/repro_fabric.dir/verbs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
