# Empty dependencies file for repro_shmem.
# This may be replaced when dependencies are built.
