file(REMOVE_RECURSE
  "CMakeFiles/repro_shmem.dir/api.cpp.o"
  "CMakeFiles/repro_shmem.dir/api.cpp.o.d"
  "CMakeFiles/repro_shmem.dir/heap.cpp.o"
  "CMakeFiles/repro_shmem.dir/heap.cpp.o.d"
  "CMakeFiles/repro_shmem.dir/world.cpp.o"
  "CMakeFiles/repro_shmem.dir/world.cpp.o.d"
  "librepro_shmem.a"
  "librepro_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
