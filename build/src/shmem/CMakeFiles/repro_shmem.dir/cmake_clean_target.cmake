file(REMOVE_RECURSE
  "librepro_shmem.a"
)
