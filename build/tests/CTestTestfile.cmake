# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_shmem[1]_include.cmake")
include("/root/repo/build/tests/test_gasnet[1]_include.cmake")
include("/root/repo/build/tests/test_mpi3[1]_include.cmake")
include("/root/repo/build/tests/test_caf[1]_include.cmake")
include("/root/repo/build/tests/test_craycaf[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_armci[1]_include.cmake")
include("/root/repo/build/tests/test_upc[1]_include.cmake")
