file(REMOVE_RECURSE
  "CMakeFiles/test_shmem.dir/shmem/test_active_set.cpp.o"
  "CMakeFiles/test_shmem.dir/shmem/test_active_set.cpp.o.d"
  "CMakeFiles/test_shmem.dir/shmem/test_api.cpp.o"
  "CMakeFiles/test_shmem.dir/shmem/test_api.cpp.o.d"
  "CMakeFiles/test_shmem.dir/shmem/test_collect.cpp.o"
  "CMakeFiles/test_shmem.dir/shmem/test_collect.cpp.o.d"
  "CMakeFiles/test_shmem.dir/shmem/test_heap.cpp.o"
  "CMakeFiles/test_shmem.dir/shmem/test_heap.cpp.o.d"
  "CMakeFiles/test_shmem.dir/shmem/test_world.cpp.o"
  "CMakeFiles/test_shmem.dir/shmem/test_world.cpp.o.d"
  "test_shmem"
  "test_shmem.pdb"
  "test_shmem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
