
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/shmem/test_active_set.cpp" "tests/CMakeFiles/test_shmem.dir/shmem/test_active_set.cpp.o" "gcc" "tests/CMakeFiles/test_shmem.dir/shmem/test_active_set.cpp.o.d"
  "/root/repo/tests/shmem/test_api.cpp" "tests/CMakeFiles/test_shmem.dir/shmem/test_api.cpp.o" "gcc" "tests/CMakeFiles/test_shmem.dir/shmem/test_api.cpp.o.d"
  "/root/repo/tests/shmem/test_collect.cpp" "tests/CMakeFiles/test_shmem.dir/shmem/test_collect.cpp.o" "gcc" "tests/CMakeFiles/test_shmem.dir/shmem/test_collect.cpp.o.d"
  "/root/repo/tests/shmem/test_heap.cpp" "tests/CMakeFiles/test_shmem.dir/shmem/test_heap.cpp.o" "gcc" "tests/CMakeFiles/test_shmem.dir/shmem/test_heap.cpp.o.d"
  "/root/repo/tests/shmem/test_world.cpp" "tests/CMakeFiles/test_shmem.dir/shmem/test_world.cpp.o" "gcc" "tests/CMakeFiles/test_shmem.dir/shmem/test_world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shmem/CMakeFiles/repro_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/repro_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
