# Empty compiler generated dependencies file for test_craycaf.
# This may be replaced when dependencies are built.
