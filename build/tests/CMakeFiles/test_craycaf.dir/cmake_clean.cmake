file(REMOVE_RECURSE
  "CMakeFiles/test_craycaf.dir/craycaf/test_craycaf.cpp.o"
  "CMakeFiles/test_craycaf.dir/craycaf/test_craycaf.cpp.o.d"
  "test_craycaf"
  "test_craycaf.pdb"
  "test_craycaf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_craycaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
