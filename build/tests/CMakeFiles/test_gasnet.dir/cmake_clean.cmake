file(REMOVE_RECURSE
  "CMakeFiles/test_gasnet.dir/gasnet/test_gasnet.cpp.o"
  "CMakeFiles/test_gasnet.dir/gasnet/test_gasnet.cpp.o.d"
  "test_gasnet"
  "test_gasnet.pdb"
  "test_gasnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gasnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
