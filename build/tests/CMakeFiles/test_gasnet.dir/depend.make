# Empty dependencies file for test_gasnet.
# This may be replaced when dependencies are built.
