file(REMOVE_RECURSE
  "CMakeFiles/test_armci.dir/armci/test_armci.cpp.o"
  "CMakeFiles/test_armci.dir/armci/test_armci.cpp.o.d"
  "test_armci"
  "test_armci.pdb"
  "test_armci[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_armci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
