# Empty compiler generated dependencies file for test_armci.
# This may be replaced when dependencies are built.
