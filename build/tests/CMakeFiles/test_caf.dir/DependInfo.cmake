
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/caf/test_adaptive.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_adaptive.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_adaptive.cpp.o.d"
  "/root/repo/tests/caf/test_conduit_conformance.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_conduit_conformance.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_conduit_conformance.cpp.o.d"
  "/root/repo/tests/caf/test_consistency.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_consistency.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_consistency.cpp.o.d"
  "/root/repo/tests/caf/test_extensions.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_extensions.cpp.o.d"
  "/root/repo/tests/caf/test_lock.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_lock.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_lock.cpp.o.d"
  "/root/repo/tests/caf/test_remote_ptr.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_remote_ptr.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_remote_ptr.cpp.o.d"
  "/root/repo/tests/caf/test_runtime.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_runtime.cpp.o.d"
  "/root/repo/tests/caf/test_section.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_section.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_section.cpp.o.d"
  "/root/repo/tests/caf/test_shmem_ptr.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_shmem_ptr.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_shmem_ptr.cpp.o.d"
  "/root/repo/tests/caf/test_strided.cpp" "tests/CMakeFiles/test_caf.dir/caf/test_strided.cpp.o" "gcc" "tests/CMakeFiles/test_caf.dir/caf/test_strided.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/caf/CMakeFiles/repro_caf.dir/DependInfo.cmake"
  "/root/repo/build/src/gasnet/CMakeFiles/repro_gasnet.dir/DependInfo.cmake"
  "/root/repo/build/src/armci/CMakeFiles/repro_armci.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi3/CMakeFiles/repro_mpi3.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/repro_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/repro_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
