file(REMOVE_RECURSE
  "CMakeFiles/test_caf.dir/caf/test_adaptive.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_adaptive.cpp.o.d"
  "CMakeFiles/test_caf.dir/caf/test_conduit_conformance.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_conduit_conformance.cpp.o.d"
  "CMakeFiles/test_caf.dir/caf/test_consistency.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_consistency.cpp.o.d"
  "CMakeFiles/test_caf.dir/caf/test_extensions.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_extensions.cpp.o.d"
  "CMakeFiles/test_caf.dir/caf/test_lock.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_lock.cpp.o.d"
  "CMakeFiles/test_caf.dir/caf/test_remote_ptr.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_remote_ptr.cpp.o.d"
  "CMakeFiles/test_caf.dir/caf/test_runtime.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_runtime.cpp.o.d"
  "CMakeFiles/test_caf.dir/caf/test_section.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_section.cpp.o.d"
  "CMakeFiles/test_caf.dir/caf/test_shmem_ptr.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_shmem_ptr.cpp.o.d"
  "CMakeFiles/test_caf.dir/caf/test_strided.cpp.o"
  "CMakeFiles/test_caf.dir/caf/test_strided.cpp.o.d"
  "test_caf"
  "test_caf.pdb"
  "test_caf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_caf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
