# Empty dependencies file for test_caf.
# This may be replaced when dependencies are built.
