file(REMOVE_RECURSE
  "CMakeFiles/test_mpi3.dir/mpi3/test_rma.cpp.o"
  "CMakeFiles/test_mpi3.dir/mpi3/test_rma.cpp.o.d"
  "test_mpi3"
  "test_mpi3.pdb"
  "test_mpi3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
