# Empty dependencies file for test_mpi3.
# This may be replaced when dependencies are built.
