# Empty compiler generated dependencies file for micro_getput.
# This may be replaced when dependencies are built.
