file(REMOVE_RECURSE
  "CMakeFiles/micro_getput.dir/micro_getput.cpp.o"
  "CMakeFiles/micro_getput.dir/micro_getput.cpp.o.d"
  "micro_getput"
  "micro_getput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_getput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
