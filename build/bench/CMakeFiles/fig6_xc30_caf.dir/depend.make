# Empty dependencies file for fig6_xc30_caf.
# This may be replaced when dependencies are built.
