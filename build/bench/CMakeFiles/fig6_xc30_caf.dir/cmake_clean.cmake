file(REMOVE_RECURSE
  "CMakeFiles/fig6_xc30_caf.dir/fig6_xc30_caf.cpp.o"
  "CMakeFiles/fig6_xc30_caf.dir/fig6_xc30_caf.cpp.o.d"
  "fig6_xc30_caf"
  "fig6_xc30_caf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_xc30_caf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
