file(REMOVE_RECURSE
  "CMakeFiles/ablate_shmem_ptr.dir/ablate_shmem_ptr.cpp.o"
  "CMakeFiles/ablate_shmem_ptr.dir/ablate_shmem_ptr.cpp.o.d"
  "ablate_shmem_ptr"
  "ablate_shmem_ptr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_shmem_ptr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
