# Empty dependencies file for ablate_shmem_ptr.
# This may be replaced when dependencies are built.
