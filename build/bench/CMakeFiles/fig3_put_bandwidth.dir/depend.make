# Empty dependencies file for fig3_put_bandwidth.
# This may be replaced when dependencies are built.
