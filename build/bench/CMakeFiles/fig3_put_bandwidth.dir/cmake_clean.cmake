file(REMOVE_RECURSE
  "CMakeFiles/fig3_put_bandwidth.dir/fig3_put_bandwidth.cpp.o"
  "CMakeFiles/fig3_put_bandwidth.dir/fig3_put_bandwidth.cpp.o.d"
  "fig3_put_bandwidth"
  "fig3_put_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_put_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
