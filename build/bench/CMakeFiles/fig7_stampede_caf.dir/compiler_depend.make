# Empty compiler generated dependencies file for fig7_stampede_caf.
# This may be replaced when dependencies are built.
