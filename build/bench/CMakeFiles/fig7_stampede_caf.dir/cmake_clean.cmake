file(REMOVE_RECURSE
  "CMakeFiles/fig7_stampede_caf.dir/fig7_stampede_caf.cpp.o"
  "CMakeFiles/fig7_stampede_caf.dir/fig7_stampede_caf.cpp.o.d"
  "fig7_stampede_caf"
  "fig7_stampede_caf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_stampede_caf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
