file(REMOVE_RECURSE
  "CMakeFiles/ablate_quiet.dir/ablate_quiet.cpp.o"
  "CMakeFiles/ablate_quiet.dir/ablate_quiet.cpp.o.d"
  "ablate_quiet"
  "ablate_quiet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_quiet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
