# Empty dependencies file for ablate_quiet.
# This may be replaced when dependencies are built.
