file(REMOVE_RECURSE
  "CMakeFiles/table2_feature_map.dir/table2_feature_map.cpp.o"
  "CMakeFiles/table2_feature_map.dir/table2_feature_map.cpp.o.d"
  "table2_feature_map"
  "table2_feature_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_feature_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
