# Empty dependencies file for table2_feature_map.
# This may be replaced when dependencies are built.
