file(REMOVE_RECURSE
  "CMakeFiles/fig9_dht.dir/fig9_dht.cpp.o"
  "CMakeFiles/fig9_dht.dir/fig9_dht.cpp.o.d"
  "fig9_dht"
  "fig9_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
