# Empty dependencies file for fig9_dht.
# This may be replaced when dependencies are built.
