file(REMOVE_RECURSE
  "CMakeFiles/ablate_lock.dir/ablate_lock.cpp.o"
  "CMakeFiles/ablate_lock.dir/ablate_lock.cpp.o.d"
  "ablate_lock"
  "ablate_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
