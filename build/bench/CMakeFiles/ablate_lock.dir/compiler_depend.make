# Empty compiler generated dependencies file for ablate_lock.
# This may be replaced when dependencies are built.
