# Empty compiler generated dependencies file for ablate_basedim.
# This may be replaced when dependencies are built.
