file(REMOVE_RECURSE
  "CMakeFiles/ablate_basedim.dir/ablate_basedim.cpp.o"
  "CMakeFiles/ablate_basedim.dir/ablate_basedim.cpp.o.d"
  "ablate_basedim"
  "ablate_basedim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_basedim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
