# Empty dependencies file for fig2_put_latency.
# This may be replaced when dependencies are built.
