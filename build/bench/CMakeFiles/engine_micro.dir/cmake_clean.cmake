file(REMOVE_RECURSE
  "CMakeFiles/engine_micro.dir/engine_micro.cpp.o"
  "CMakeFiles/engine_micro.dir/engine_micro.cpp.o.d"
  "engine_micro"
  "engine_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
