file(REMOVE_RECURSE
  "CMakeFiles/ablate_adaptive.dir/ablate_adaptive.cpp.o"
  "CMakeFiles/ablate_adaptive.dir/ablate_adaptive.cpp.o.d"
  "ablate_adaptive"
  "ablate_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
