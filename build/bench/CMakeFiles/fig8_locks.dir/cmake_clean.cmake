file(REMOVE_RECURSE
  "CMakeFiles/fig8_locks.dir/fig8_locks.cpp.o"
  "CMakeFiles/fig8_locks.dir/fig8_locks.cpp.o.d"
  "fig8_locks"
  "fig8_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
