file(REMOVE_RECURSE
  "CMakeFiles/table3_machines.dir/table3_machines.cpp.o"
  "CMakeFiles/table3_machines.dir/table3_machines.cpp.o.d"
  "table3_machines"
  "table3_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
