# Empty compiler generated dependencies file for table3_machines.
# This may be replaced when dependencies are built.
