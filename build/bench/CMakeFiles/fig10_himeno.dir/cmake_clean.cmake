file(REMOVE_RECURSE
  "CMakeFiles/fig10_himeno.dir/fig10_himeno.cpp.o"
  "CMakeFiles/fig10_himeno.dir/fig10_himeno.cpp.o.d"
  "fig10_himeno"
  "fig10_himeno.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_himeno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
