# Empty compiler generated dependencies file for fig10_himeno.
# This may be replaced when dependencies are built.
