#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on regressions.

Usage: bench_diff.py BASELINE.json NEW.json [--tolerance 0.10]

Walks every numeric leaf of the baseline (dotted/indexed paths like
rows[3].agg), finds the same leaf in the new file, and flags any metric
that moved more than the tolerance in the *worse* direction. The DES
clock makes bench output deterministic, so the checked-in baselines are
exact: a >10% shift is a real behavior change, not noise.

Direction (is bigger better?) is resolved per leaf:
  * a leaf key listed in the baseline's top-level "higher_is_better"
    array is higher-is-better, no matter what the heuristics say
    (e.g. "events_per_sec", where the _s suffix would misread as a time);
  * else path fragments latency/elapsed/time/_ns/_us/_ms -> lower is better
  * else path fragments speedup/bandwidth/mflops/mbs/ratio/geomean
                                                     -> higher is better
  * otherwise the file's top-level "unit" decides: a time unit
    (ns/us/ms/s) means lower is better, anything else higher.

The "higher_is_better" array itself is bench metadata, not a metric; it
is excluded from the leaf walk on both sides.

Per-metric tolerance overrides: a top-level "tolerances" object in the
baseline maps a leaf KEY (the path tail, e.g. "rtt_8b_ns") to the allowed
fractional worsening for every leaf with that key, replacing --tolerance
for those metrics only. Use it for metrics that are legitimately noisier
than the rest of the file (e.g. a p99 under a seeded fault plan). Like
"higher_is_better", the block is metadata and is excluded from the walk.

--selftest runs the built-in unit checks (tempfile fixtures) and exits;
scripts/ci.sh invokes it so a broken diff gate fails loudly instead of
silently passing regressions.

Axis/config leaves (bytes, images, reps, ...) are compared for identity:
if the new file benchmarks a different shape, the diff is meaningless and
that is reported as an error. Missing keys are errors in BOTH directions,
each naming the metric and the file it is absent from: a leaf present in
the baseline but not in the new file means the bench dropped a metric; a
leaf present only in the new file means the bench grew one and the
checked-in baseline must be regenerated.

Exit status: 0 clean, 1 regression or structural mismatch, 2 usage.
"""

import argparse
import json
import sys

# Workload axes, not metrics: must match exactly between the two files.
AXIS_KEYS = {"bytes", "images", "nelems", "reps", "pairs", "iters", "seed",
             "locks", "updates", "buckets"}

LOWER_BETTER_HINTS = ("latency", "elapsed", "time", "_ns", "_us", "_ms")
HIGHER_BETTER_HINTS = ("speedup", "bandwidth", "mflops", "mbs", "ratio",
                       "geomean")
TIME_UNITS = {"ns", "us", "ms", "s", "usec", "nsec", "msec"}


def leaves(node, path=""):
    """Yields (path, value) for every scalar leaf."""
    if isinstance(node, dict):
        for k in sorted(node):
            yield from leaves(node[k], f"{path}.{k}" if path else k)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from leaves(v, f"{path}[{i}]")
    else:
        yield path, node


def lower_is_better(path, default_lower, higher_keys):
    if last_key(path) in higher_keys:
        return False
    p = path.lower()
    if any(h in p for h in LOWER_BETTER_HINTS):
        return True
    if any(h in p for h in HIGHER_BETTER_HINTS):
        return False
    return default_lower


def last_key(path):
    tail = path.rsplit(".", 1)[-1]
    return tail.split("[", 1)[0]


def selftest():
    """Unit checks for the diff logic itself, on tempfile fixtures."""
    import os
    import tempfile

    def run(base_obj, new_obj, extra=None):
        paths = []
        for obj in (base_obj, new_obj):
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".json", delete=False) as f:
                json.dump(obj, f)
                paths.append(f.name)
        saved = sys.argv
        sys.argv = [saved[0]] + paths + (extra or [])
        try:
            return main()
        finally:
            sys.argv = saved
            for p in paths:
                os.unlink(p)

    base = {"unit": "ns", "tolerances": {"rtt_ns": 0.50},
            "rtt_ns": 100, "bw_mbs": 100, "images": 8}
    checks = [
        # Identical files are clean.
        ("identical", run(base, dict(base)), 0),
        # +40% on rtt_ns breaches the default 10% but sits inside its
        # per-metric 50% override.
        ("override admits",
         run(base, {**base, "rtt_ns": 140}), 0),
        # +60% breaches even the override.
        ("override still binds",
         run(base, {**base, "rtt_ns": 160}), 1),
        # The override is keyed: it must not leak onto other metrics
        # (bw_mbs is higher-is-better; -21% is a regression).
        ("override does not leak",
         run(base, {**base, "bw_mbs": 79}), 1),
        # The tolerances block is metadata on both sides, never a metric:
        # a new file without it diffs clean.
        ("metadata excluded",
         run(base, {k: v for k, v in base.items() if k != "tolerances"}), 0),
        # A malformed block is an error, not a silent default.
        ("malformed rejected",
         run({**base, "tolerances": {"rtt_ns": "lots"}}, dict(base)), 1),
        # Axis identity and the default tolerance still apply.
        ("axis mismatch", run(base, {**base, "images": 16}), 1),
        ("default tolerance", run(base, {**base, "bw_mbs": 95}), 0),
    ]
    failed = [name for name, got, want in checks if got != want]
    for name, got, want in checks:
        if got != want:
            print(f"bench_diff selftest FAIL: {name}: exit {got}, "
                  f"want {want}", file=sys.stderr)
    print(f"bench_diff selftest: {len(checks) - len(failed)}/{len(checks)} "
          f"cases passed")
    return 1 if failed else 0


def main():
    if "--selftest" in sys.argv[1:]:
        return selftest()
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional worsening (default 0.10)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    default_lower = str(base.get("unit", "")).lower() in TIME_UNITS
    higher_keys = frozenset(base.get("higher_is_better", []))
    if not isinstance(base.get("higher_is_better", []), list):
        print("bench_diff ERROR: top-level higher_is_better must be a list",
              file=sys.stderr)
        return 1
    base.pop("higher_is_better", None)
    new.pop("higher_is_better", None)
    tolerances = base.get("tolerances", {})
    if not isinstance(tolerances, dict) or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in tolerances.values()):
        print("bench_diff ERROR: top-level tolerances must map metric keys "
              "to numbers", file=sys.stderr)
        return 1
    base.pop("tolerances", None)
    new.pop("tolerances", None)
    new_leaves = dict(leaves(new))
    errors = []
    regressions = []
    improvements = 0
    compared = 0

    base_leaves = dict(leaves(base))
    for path in new_leaves:
        if path not in base_leaves:
            errors.append(
                f"metric {path} present in {args.new} but missing from "
                f"baseline {args.baseline} (regenerate the baseline)")

    for path, bval in leaves(base):
        if path not in new_leaves:
            errors.append(
                f"metric {path} present in baseline {args.baseline} but "
                f"missing from {args.new}")
            continue
        nval = new_leaves[path]
        if not isinstance(bval, (int, float)) or isinstance(bval, bool):
            if bval != nval:
                errors.append(f"{path}: label changed {bval!r} -> {nval!r}")
            continue
        if not isinstance(nval, (int, float)) or isinstance(nval, bool):
            errors.append(f"{path}: numeric -> non-numeric {nval!r}")
            continue
        if last_key(path) in AXIS_KEYS:
            if bval != nval:
                errors.append(f"{path}: axis changed {bval} -> {nval}")
            continue
        compared += 1
        if bval == 0:
            if nval != 0:
                errors.append(f"{path}: baseline 0, new {nval}")
            continue
        change = (nval - bval) / abs(bval)  # >0 = bigger
        # gain > 0 = moved in the good direction for this metric.
        gain = (-change
                if lower_is_better(path, default_lower, higher_keys)
                else change)
        tol = tolerances.get(last_key(path), args.tolerance)
        if gain < -tol:
            regressions.append(
                f"{path}: {bval} -> {nval} ({100 * change:+.1f}%, "
                f"tol {tol:.0%})")
        elif gain > tol:
            improvements += 1

    for e in errors:
        print(f"bench_diff ERROR: {e}", file=sys.stderr)
    for r in regressions:
        print(f"bench_diff REGRESSION: {r}", file=sys.stderr)
    status = 1 if errors or regressions else 0
    print(f"bench_diff: {compared} metrics compared, "
          f"{len(regressions)} regressions, {improvements} improvements, "
          f"{len(errors)} errors "
          f"({args.baseline} vs {args.new}, tol {args.tolerance:.0%})")
    return status


if __name__ == "__main__":
    sys.exit(main())
