#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on regressions.

Usage: bench_diff.py BASELINE.json NEW.json [--tolerance 0.10]

Walks every numeric leaf of the baseline (dotted/indexed paths like
rows[3].agg), finds the same leaf in the new file, and flags any metric
that moved more than the tolerance in the *worse* direction. The DES
clock makes bench output deterministic, so the checked-in baselines are
exact: a >10% shift is a real behavior change, not noise.

Direction (is bigger better?) is resolved per leaf:
  * a leaf key listed in the baseline's top-level "higher_is_better"
    array is higher-is-better, no matter what the heuristics say
    (e.g. "events_per_sec", where the _s suffix would misread as a time);
  * else path fragments latency/elapsed/time/_ns/_us/_ms -> lower is better
  * else path fragments speedup/bandwidth/mflops/mbs/ratio/geomean
                                                     -> higher is better
  * otherwise the file's top-level "unit" decides: a time unit
    (ns/us/ms/s) means lower is better, anything else higher.

The "higher_is_better" array itself is bench metadata, not a metric; it
is excluded from the leaf walk on both sides.

Axis/config leaves (bytes, images, reps, ...) are compared for identity:
if the new file benchmarks a different shape, the diff is meaningless and
that is reported as an error. Missing keys are errors in BOTH directions,
each naming the metric and the file it is absent from: a leaf present in
the baseline but not in the new file means the bench dropped a metric; a
leaf present only in the new file means the bench grew one and the
checked-in baseline must be regenerated.

Exit status: 0 clean, 1 regression or structural mismatch, 2 usage.
"""

import argparse
import json
import sys

# Workload axes, not metrics: must match exactly between the two files.
AXIS_KEYS = {"bytes", "images", "nelems", "reps", "pairs", "iters", "seed",
             "locks", "updates", "buckets"}

LOWER_BETTER_HINTS = ("latency", "elapsed", "time", "_ns", "_us", "_ms")
HIGHER_BETTER_HINTS = ("speedup", "bandwidth", "mflops", "mbs", "ratio",
                       "geomean")
TIME_UNITS = {"ns", "us", "ms", "s", "usec", "nsec", "msec"}


def leaves(node, path=""):
    """Yields (path, value) for every scalar leaf."""
    if isinstance(node, dict):
        for k in sorted(node):
            yield from leaves(node[k], f"{path}.{k}" if path else k)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            yield from leaves(v, f"{path}[{i}]")
    else:
        yield path, node


def lower_is_better(path, default_lower, higher_keys):
    if last_key(path) in higher_keys:
        return False
    p = path.lower()
    if any(h in p for h in LOWER_BETTER_HINTS):
        return True
    if any(h in p for h in HIGHER_BETTER_HINTS):
        return False
    return default_lower


def last_key(path):
    tail = path.rsplit(".", 1)[-1]
    return tail.split("[", 1)[0]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional worsening (default 0.10)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    default_lower = str(base.get("unit", "")).lower() in TIME_UNITS
    higher_keys = frozenset(base.get("higher_is_better", []))
    if not isinstance(base.get("higher_is_better", []), list):
        print("bench_diff ERROR: top-level higher_is_better must be a list",
              file=sys.stderr)
        return 1
    base.pop("higher_is_better", None)
    new.pop("higher_is_better", None)
    new_leaves = dict(leaves(new))
    errors = []
    regressions = []
    improvements = 0
    compared = 0

    base_leaves = dict(leaves(base))
    for path in new_leaves:
        if path not in base_leaves:
            errors.append(
                f"metric {path} present in {args.new} but missing from "
                f"baseline {args.baseline} (regenerate the baseline)")

    for path, bval in leaves(base):
        if path not in new_leaves:
            errors.append(
                f"metric {path} present in baseline {args.baseline} but "
                f"missing from {args.new}")
            continue
        nval = new_leaves[path]
        if not isinstance(bval, (int, float)) or isinstance(bval, bool):
            if bval != nval:
                errors.append(f"{path}: label changed {bval!r} -> {nval!r}")
            continue
        if not isinstance(nval, (int, float)) or isinstance(nval, bool):
            errors.append(f"{path}: numeric -> non-numeric {nval!r}")
            continue
        if last_key(path) in AXIS_KEYS:
            if bval != nval:
                errors.append(f"{path}: axis changed {bval} -> {nval}")
            continue
        compared += 1
        if bval == 0:
            if nval != 0:
                errors.append(f"{path}: baseline 0, new {nval}")
            continue
        change = (nval - bval) / abs(bval)  # >0 = bigger
        # gain > 0 = moved in the good direction for this metric.
        gain = (-change
                if lower_is_better(path, default_lower, higher_keys)
                else change)
        if gain < -args.tolerance:
            regressions.append(
                f"{path}: {bval} -> {nval} ({100 * change:+.1f}%)")
        elif gain > args.tolerance:
            improvements += 1

    for e in errors:
        print(f"bench_diff ERROR: {e}", file=sys.stderr)
    for r in regressions:
        print(f"bench_diff REGRESSION: {r}", file=sys.stderr)
    status = 1 if errors or regressions else 0
    print(f"bench_diff: {compared} metrics compared, "
          f"{len(regressions)} regressions, {improvements} improvements, "
          f"{len(errors)} errors "
          f"({args.baseline} vs {args.new}, tol {args.tolerance:.0%})")
    return status


if __name__ == "__main__":
    sys.exit(main())
