#!/usr/bin/env bash
# CI entry point: build Release and Sanitize trees, run the full suite in
# Release, and re-run the fault-injection/recovery tests (`ctest -L faults`)
# under ASan/UBSan — the failure-recovery protocols exercise quarantined
# qnode reuse, fiber unwinding through kills, and repair-time remote reads,
# which is exactly the code sanitizers are good at catching.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

echo "=== Release build + full test suite ==="
cmake -B build-release -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$JOBS"
ctest --test-dir build-release --output-on-failure -j "$JOBS"

echo "=== Sanitize build (ASan/UBSan) + fault-label tests ==="
cmake -B build-sanitize -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=Sanitize
cmake --build build-sanitize -j "$JOBS" --target test_faults
ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
  ctest --test-dir build-sanitize -L faults --output-on-failure -j "$JOBS"

echo "=== CI passed ==="
