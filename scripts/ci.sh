#!/usr/bin/env bash
# CI entry point: build Release and Sanitize trees, run the full suite in
# Release, and re-run the fault-injection/recovery tests (`ctest -L faults`)
# under ASan/UBSan — the failure-recovery protocols exercise quarantined
# qnode reuse, fiber unwinding through kills, and repair-time remote reads,
# which is exactly the code sanitizers are good at catching.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

echo "=== Release build + full test suite ==="
cmake -B build-release -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$JOBS"
ctest --test-dir build-release --output-on-failure -j "$JOBS"

echo "=== Sanitize build (ASan/UBSan) + fault-label tests ==="
cmake -B build-sanitize -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=Sanitize
cmake --build build-sanitize -j "$JOBS" --target test_faults
ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
  ctest --test-dir build-sanitize -L faults --output-on-failure -j "$JOBS"

echo "=== Bench smoke: RMA pipeline ==="
# Exercise the put-bandwidth harness (including the CAF aggregation panels)
# and the pipeline ablation, and publish the ablation series as a CI
# artifact. The DES clock makes the numbers deterministic, so the JSON
# doubles as a regression record for the aggregated/blocking ratio.
./build-release/bench/fig3_put_bandwidth > /dev/null
./build-release/bench/ablate_agg --json BENCH_rma.json
python3 - <<'EOF'
import json
with open("BENCH_rma.json") as f:
    data = json.load(f)
ratio = data["agg_vs_blocking_geomean"]
assert ratio >= 2.0, f"aggregation speedup regressed: {ratio:.2f}x < 2x"
print(f"bench smoke ok: aggregated/blocking geomean = {ratio:.2f}x")
EOF

echo "=== CI passed ==="
