#!/usr/bin/env bash
# CI entry point: build Release and Sanitize trees, run the full suite in
# Release, and re-run the fault-injection/recovery tests (`ctest -L faults`)
# under ASan/UBSan — the failure-recovery protocols exercise quarantined
# qnode reuse, fiber unwinding through kills, and repair-time remote reads,
# which is exactly the code sanitizers are good at catching.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

echo "=== Release build + full test suite ==="
cmake -B build-release -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "$JOBS"
ctest --test-dir build-release --output-on-failure -j "$JOBS"

echo "=== Sanitize build (ASan/UBSan) + fault/sim-label tests ==="
# The `sim` label carries the engine-scale tests (16k lazily-stacked fibers,
# pool recycling, kill-during-lazy-stack); under ASan the fiber layer falls
# back to the instrumented swapcontext path, so this leg checks both context
# implementations stay in lockstep.
cmake -B build-sanitize -S . "${GENERATOR[@]}" -DCMAKE_BUILD_TYPE=Sanitize
cmake --build build-sanitize -j "$JOBS" --target test_faults test_sim test_sim_scale test_intranode test_rpc test_rpc_faults test_nonblocking
ASAN_OPTIONS=${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1} \
UBSAN_OPTIONS=${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1} \
  ctest --test-dir build-sanitize -L "faults|sim|intranode|rpc" --output-on-failure -j "$JOBS"

echo "=== Bench smoke: RMA pipeline ==="
# Exercise the put-bandwidth harness (including the CAF aggregation panels)
# and the pipeline ablation, and publish the ablation series as a CI
# artifact. The DES clock makes the numbers deterministic, so the JSON
# doubles as a regression record; fresh output lands in
# build-release/artifacts and is diffed against the checked-in
# bench/baselines/BENCH_*.json by bench_diff.py.
ART=build-release/artifacts
mkdir -p "$ART"
./build-release/bench/fig3_put_bandwidth > /dev/null
./build-release/bench/ablate_agg --json "$ART/BENCH_rma.json"
python3 - <<EOF
import json
with open("$ART/BENCH_rma.json") as f:
    data = json.load(f)
ratio = data["agg_vs_blocking_geomean"]
assert ratio >= 2.0, f"aggregation speedup regressed: {ratio:.2f}x < 2x"
print(f"bench smoke ok: aggregated/blocking geomean = {ratio:.2f}x")
EOF

# Collectives-engine ablation: the adaptive arm must keep beating the
# pre-engine baseline (binomial + full-quiet completion) at scale.
./build-release/bench/ablate_coll --json "$ART/BENCH_coll.json"
python3 - <<EOF
import json
with open("$ART/BENCH_coll.json") as f:
    data = json.load(f)
ar = data["allreduce8_speedup_64"]
bc = data["bcast_1m_speedup_64"]
assert ar >= 2.0, f"small-allreduce speedup regressed: {ar:.2f}x < 2x"
assert bc >= 1.5, f"1MiB-broadcast speedup regressed: {bc:.2f}x < 1.5x"
print(f"bench smoke ok: allreduce-8B @64 = {ar:.2f}x, bcast-1MiB @64 = {bc:.2f}x")
EOF

echo "=== Intranode-transport smoke: node-local vs fabric ablation ==="
# Node-local shared-segment transport: same-node RMA, collectives, and lock
# traffic over the per-node shared symmetric heap + SPSC rings instead of
# NIC loopback. The acceptance gate: a one-node 8-byte allreduce must stay
# >= 2x faster than the fabric path on both machine profiles.
./build-release/bench/ablate_intranode --json "$ART/BENCH_intranode.json"
python3 - <<EOF
import json
with open("$ART/BENCH_intranode.json") as f:
    data = json.load(f)
ar = data["allreduce8_speedup_min"]
lk = data["lock_handoff_speedup_min"]
hg = data["hot_get_p99_speedup_min"]
assert ar >= 2.0, f"node-local 8B-allreduce speedup regressed: {ar:.2f}x < 2x"
assert lk >= 1.5, f"lock-handoff speedup regressed: {lk:.2f}x < 1.5x"
assert hg >= 1.5, f"hot-shard get p99 speedup regressed: {hg:.2f}x < 1.5x"
print(f"intranode smoke ok: allreduce-8B {ar:.2f}x, lock handoff {lk:.2f}x, "
      f"hot-get p99 {hg:.2f}x")
EOF

echo "=== Chaos-soak smoke: grey-failure invariants ==="
# Bounded leg of the randomized grey-failure soak (8 seeded scripts, each
# run twice for the determinism invariant). The full 24-script soak is the
# `soak` ctest configuration: ctest --test-dir build-release -C soak.
# A nonzero exit means an invariant (hang, false positive, missed
# detection, nondeterminism, memory divergence) was violated.
./build-release/bench/chaos_soak --smoke --json "$ART/BENCH_chaos.json"
python3 - <<EOF
import json
with open("$ART/BENCH_chaos.json") as f:
    data = json.load(f)
assert data["false_positives"] == 0, "grey-failure soak declared a live PE"
lat = data["detect_latency_avg_ns"]
assert 0 < lat < 2_000_000, f"detection latency implausible: {lat}ns"
print(f"chaos smoke ok: fp=0, mean detection latency = {lat/1000:.0f}us")
EOF

echo "=== Replicated-DHT serving smoke: kill the hot primary ==="
# Open-loop Zipf get/put streams with a scripted mid-run kill of the hot
# shard's primary on both machine profiles. The harness is self-checking
# (nonzero exit on any violation); the assertions below restate the
# availability contract so a regression names the broken invariant.
./build-release/bench/dht_serve --smoke --json "$ART/BENCH_dht_serve.json"
python3 - <<EOF
import json
with open("$ART/BENCH_dht_serve.json") as f:
    data = json.load(f)
for row in data["machines"]:
    m = row["machine"]
    assert row["lost_acked"] == 0, f"{m}: acknowledged writes were lost"
    assert row["determinism_mismatch"] == 0, f"{m}: rerun diverged"
    assert row["under_replicated_final"] == 0, \
        f"{m}: anti-entropy left replication debt"
    assert row["recovery_p99_ns"] <= 400_000, \
        f"{m}: p99 recovery {row['recovery_p99_ns']}ns exceeds budget"
    assert row["promotions"] >= 1, f"{m}: kill never promoted a replica"
    print(f"dht_serve smoke ok [{m}]: lost=0, recovery "
          f"{row['recovery_p99_ns']/1000:.0f}us, put p99 "
          f"{row['put_p99_ns']/1000:.1f}us")
EOF

echo "=== RPC smoke: asynchronous remote execution ablation ==="
# Future/promise + RPC layer (DESIGN.md §4f): cross-node round-trip and
# fire-and-forget cost on both mailbox platforms and the GASNet AM
# transport, plus the DHT-insert head-to-head against a pure-AMO design.
# Shape gates: pipelined ff must beat a full round trip everywhere, and
# the AM transport must hold the best round-trip latency (implicit
# handler progress vs parked-drain polling).
./build-release/bench/ablate_rpc --json "$ART/BENCH_rpc.json"
python3 - <<EOF
import json
with open("$ART/BENCH_rpc.json") as f:
    data = json.load(f)
rtts = {}
for row in data["platforms"]:
    p = row["platform"]
    assert 0 < row["ff_ns_per_op"] < row["rtt_8b_ns"], \
        f"{p}: fire-and-forget does not pipeline"
    rtts[row["transport"]] = min(rtts.get(row["transport"], 1 << 62),
                                 row["rtt_8b_ns"])
assert rtts["am"] < rtts["mailbox"], "AM transport lost its latency edge"
for row in data["dht_insert"]:
    assert row["rpc_ns_per_update"] > 0 and row["amo_ns_per_update"] > 0
print(f"rpc smoke ok: best rtt am={rtts['am']}ns mailbox={rtts['mailbox']}ns")
EOF

echo "=== Engine-core smoke: event/fiber throughput + 16k-image gates ==="
# Host-side engine health: queue events/sec, fiber switches/sec, zero
# steady-state heap slabs (exact-match gate), and the two at-scale smokes
# (16k-image barrier storm and Himeno). Simulated event counts and MFLOPS
# in the JSON double as byte-identity checks; wall times get a loose
# tolerance below because they are host measurements, not DES output.
./build-release/bench/engine_micro --json "$ART/BENCH_engine.json"

echo "=== Bench diff vs checked-in baselines (>10% = fail) ==="
# The diff gate checks itself first: a broken bench_diff.py would wave
# regressions through silently.
python3 scripts/bench_diff.py --selftest
python3 scripts/bench_diff.py bench/baselines/BENCH_rma.json "$ART/BENCH_rma.json"
python3 scripts/bench_diff.py bench/baselines/BENCH_coll.json "$ART/BENCH_coll.json"
python3 scripts/bench_diff.py bench/baselines/BENCH_intranode.json "$ART/BENCH_intranode.json"
python3 scripts/bench_diff.py bench/baselines/BENCH_chaos.json "$ART/BENCH_chaos.json"
python3 scripts/bench_diff.py bench/baselines/BENCH_dht_serve.json "$ART/BENCH_dht_serve.json"
python3 scripts/bench_diff.py bench/baselines/BENCH_rpc.json "$ART/BENCH_rpc.json"
python3 scripts/bench_diff.py --tolerance 0.5 \
  bench/baselines/BENCH_engine.json "$ART/BENCH_engine.json"

echo "=== Observability smoke: traced fig9_dht ==="
# One traced DHT run at 8 images; the Chrome trace must be valid JSON and
# is kept as a CI artifact next to the bench records.
CAF_TRACE="$ART/fig9_dht_trace.json" ./build-release/bench/fig9_dht --smoke 8
python3 -m json.tool "$ART/fig9_dht_trace.json" > /dev/null
echo "trace artifact ok: $ART/fig9_dht_trace.json"

echo "=== CI passed ==="
