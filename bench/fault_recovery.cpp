// Failure-recovery harness (fig8/fig9-style sweep under scheduled kills):
//
//   Phase A — lock reclamation latency. An image acquires lck[1] and is
//   killed while holding it; every survivor is already enqueued. Reported:
//   virtual time from the kill to the first survivor acquisition, for the
//   UHCAF robust MCS lock (epoch-stamped qnodes + CAS queue repair) vs the
//   Cray-CAF baseline's ticket lock with owner-ring reclamation. The MCS
//   waiters are woken by the failure hook and repair immediately; the
//   ticket waiters discover the dead holder by remote polling, so their
//   recovery latency carries the poll interval.
//
//   Phase B — degraded DHT throughput. The Figure 9 workload with one image
//   killed mid-run: survivors redirect dead-owner updates to the next live
//   image, reclaim any lock the corpse held, and keep going. Reported:
//   update throughput before and after the failure, plus the redirect /
//   reclaim / skip accounting. UHCAF survivors aggregate their ledgers with
//   FORM TEAM + team co_sum; Cray-CAF survivors rendezvous manually (the
//   vendor sync_all has no failed-image semantics).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/dht_drivers.hpp"
#include "apps/driver.hpp"
#include "bench_util.hpp"
#include "net/fault.hpp"
#include "obs/obs.hpp"

namespace {

constexpr sim::Time kLockKillAt = 1'000'000;  // phase A: holder dies at 1 ms
// Phase B kill times are calibrated per configuration: a fault-free pass
// (kill scheduled far beyond the workload, so the resilient lock layout is
// still armed) measures when table setup and the update loop end, and the
// measured run kills the victim at the midpoint of the update window.
constexpr sim::Time kFarFuture = 1'000'000'000'000;  // 1000 s: never reached
constexpr sim::Time kStartSlack = 10'000;

bool g_all_ok = true;

void check(bool ok, const char* what, int images) {
  if (!ok) {
    std::printf("FAIL: %s (images=%d)\n", what, images);
    g_all_ok = false;
  }
}

// ---------------------------------------------------------------------------
// Phase A
// ---------------------------------------------------------------------------

double caf_recovery_us(int images) {
  net::FaultPlan plan;
  plan.kill_pe(1, kLockKillAt);  // image 2: the holder
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kXC30, 8 << 20, {}, plan);
  sim::Time first_acquire = -1;
  int reclaim_reports = 0;
  int acquired = 0;
  stack.run([&](caf::Runtime& rt) {
    const int me = rt.this_image();
    const caf::CoLock lck = rt.make_lock();
    rt.sync_all();
    if (me == 2) {
      rt.lock(lck, 1);
      for (;;) stack.engine().advance(100'000);  // dies holding lck[1]
    }
    stack.engine().advance(100'000);  // enqueue behind the doomed holder
    const int st = rt.lock_stat(lck, 1);
    if (st == caf::kStatFailedImage) ++reclaim_reports;
    if (first_acquire < 0) first_acquire = stack.engine().now();
    ++acquired;
    stack.engine().advance(5'000);
    (void)rt.unlock_stat(lck, 1);
    (void)rt.sync_all_stat();
  });
  check(reclaim_reports == 1, "phase A: reclaim reported exactly once",
        images);
  check(acquired == images - 1, "phase A: every survivor acquired", images);
  check(first_acquire >= kLockKillAt, "phase A: reclaim after the kill",
        images);
  return sim::to_us(first_acquire - kLockKillAt);
}

double craycaf_recovery_us(int images) {
  net::FaultPlan plan;
  plan.kill_pe(1, kLockKillAt);
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(net::Machine::kXC30), images);
  net::FaultInjector injector(plan, images, fabric.profile().cores_per_node);
  craycaf::Runtime rt(engine, fabric, 8 << 20);
  fabric.set_fault_injector(&injector);
  injector.arm(engine);
  sim::Time first_acquire = -1;
  int reclaim_reports = 0;
  int acquired = 0;
  rt.launch([&] {
    const int me = rt.this_image();
    const craycaf::CoLock lck = rt.make_lock();
    rt.sync_all();
    if (me == 2) {
      rt.lock(lck, 1);
      for (;;) engine.advance(100'000);
    }
    engine.advance(100'000);
    const int st = rt.lock_stat(lck, 1);
    if (st == craycaf::kStatFailedImage) ++reclaim_reports;
    if (first_acquire < 0) first_acquire = engine.now();
    ++acquired;
    engine.advance(5'000);
    (void)rt.unlock_stat(lck, 1);
    // no vendor sync_all after the kill: it would hang on the corpse
  });
  engine.run();
  check(reclaim_reports == 1, "phase A: reclaim reported exactly once",
        images);
  check(acquired == images - 1, "phase A: every survivor acquired", images);
  return sim::to_us(first_acquire - kLockKillAt);
}

// ---------------------------------------------------------------------------
// Phase B
// ---------------------------------------------------------------------------

apps::dht::Config dht_config() {
  apps::dht::Config cfg;
  cfg.buckets_per_image = 64;
  cfg.updates_per_image = 32;
  cfg.locks_per_image = 8;
  cfg.hot_percent = 40;
  cfg.hot_keys = 4;
  return cfg;
}

struct DhtOutcome {
  double pre_per_ms = 0;    // survivor updates applied / ms before the kill
  double post_per_ms = 0;   // ...and after it (degraded mode)
  std::int64_t applied = 0;
  std::int64_t redirected = 0;
  std::int64_t skipped = 0;
  std::int64_t reclaimed = 0;
  double reclaim_us = -1;   // first lock reclamation after the kill; -1 none
};

// Calibrated virtual-time envelope of one DHT run: updates begin at `start`
// (every image advances to it after setup) and the victim dies at `kill`.
struct DhtTiming {
  sim::Time start = 0;
  sim::Time kill = 0;
};

// Reads the survivors' "dht.*" ledgers out of the obs registry; the final
// (measured) pass's fabric reset the registry, so the counters it holds are
// exactly that pass's.
DhtOutcome summarize(int images, int victim, const DhtTiming& tm,
                     const std::vector<sim::Time>& update_end) {
  auto dht = [](int img, const char* name) {
    return static_cast<std::int64_t>(obs::registry().value(img - 1, name));
  };
  DhtOutcome out;
  std::int64_t pre = 0, post = 0;
  sim::Time last_end = tm.kill;
  sim::Time first_reclaim = -1;
  for (int img = 1; img <= images; ++img) {
    if (img == victim) continue;
    check(dht(img, "dht.applied") + dht(img, "dht.skipped") ==
              dht(img, "dht.attempted"),
          "phase B: survivor accounting closes", images);
    out.applied += dht(img, "dht.applied");
    out.redirected += dht(img, "dht.redirected");
    out.skipped += dht(img, "dht.skipped");
    out.reclaimed += dht(img, "dht.reclaimed");
    pre += dht(img, "dht.applied_pre");
    post += dht(img, "dht.applied_post");
    last_end = std::max(last_end, update_end[static_cast<std::size_t>(img)]);
    const std::int64_t reclaim_plus1 =
        dht(img, "dht.first_reclaim_ns_plus1");
    if (reclaim_plus1 > 0 &&
        (first_reclaim < 0 || reclaim_plus1 - 1 < first_reclaim)) {
      first_reclaim = reclaim_plus1 - 1;
    }
  }
  out.pre_per_ms =
      static_cast<double>(pre) / sim::to_ms(tm.kill - tm.start);
  out.post_per_ms =
      static_cast<double>(post) / sim::to_ms(last_end - tm.kill);
  if (first_reclaim >= 0) out.reclaim_us = sim::to_us(first_reclaim - tm.kill);
  return out;
}

DhtTiming timing_from(sim::Time setup_end_max, sim::Time update_end_max) {
  DhtTiming tm;
  tm.start = setup_end_max + kStartSlack;
  // The calibration pass ran un-aligned, so its update window is a lower
  // bound on the aligned one; the midpoint still lands well inside it.
  tm.kill = tm.start + (update_end_max - setup_end_max) / 2;
  return tm;
}

DhtOutcome caf_dht(int images) {
  const int victim = images / 2 + 1;
  const apps::dht::Config cfg = dht_config();
  DhtTiming tm;
  std::vector<sim::Time> update_end;
  std::int64_t team_applied = -1;
  for (int pass = 0; pass < 2; ++pass) {
    const bool calibrate = pass == 0;
    net::FaultPlan plan;
    plan.kill_pe(victim - 1, calibrate ? kFarFuture : tm.kill);
    driver::Stack stack(driver::StackKind::kShmemCray, images,
                        net::Machine::kXC30, 8 << 20, {}, plan);
    update_end.assign(images + 1, 0);
    sim::Time setup_end = 0;
    stack.run([&](caf::Runtime& rt) {
      const int me = rt.this_image();
      auto table = apps::dht::make_caf_table(rt, cfg);
      auto& eng = stack.engine();
      setup_end = std::max(setup_end, eng.now());
      if (!calibrate && eng.now() < tm.start) {
        eng.advance(tm.start - eng.now());
      }
      (void)table.run_updates_resilient();
      update_end[me] = eng.now();
      if (calibrate) return;
      // Survivors regroup as a team and aggregate their ledgers with the
      // team-scoped collective (the victim is excluded automatically).
      const caf::Team team = rt.form_team();
      std::int64_t v = static_cast<std::int64_t>(
          obs::registry().value(me - 1, "dht.applied"));
      (void)rt.co_sum_team(team, &v, 1);
      if (me == team.members[0]) team_applied = v;
      (void)rt.team_sync(team);
    });
    if (calibrate) {
      tm = timing_from(setup_end,
                       *std::max_element(update_end.begin(), update_end.end()));
    }
  }
  const DhtOutcome out = summarize(images, victim, tm, update_end);
  check(team_applied == out.applied,
        "phase B: team co_sum agrees with host-side ledger sum", images);
  return out;
}

DhtOutcome craycaf_dht(int images) {
  const int victim = images / 2 + 1;
  const apps::dht::Config cfg = dht_config();
  DhtTiming tm;
  std::vector<sim::Time> update_end;
  for (int pass = 0; pass < 2; ++pass) {
    const bool calibrate = pass == 0;
    net::FaultPlan plan;
    plan.kill_pe(victim - 1, calibrate ? kFarFuture : tm.kill);
    sim::Engine engine(64 * 1024);
    net::Fabric fabric(net::machine_profile(net::Machine::kXC30), images);
    net::FaultInjector injector(plan, images, fabric.profile().cores_per_node);
    craycaf::Runtime rt(engine, fabric, 8 << 20);
    fabric.set_fault_injector(&injector);
    injector.arm(engine);
    update_end.assign(images + 1, 0);
    sim::Time setup_end = 0;
    rt.launch([&] {
      const int me = rt.this_image();
      auto table = apps::dht::make_craycaf_table(rt, cfg);
      const std::uint64_t done_off = rt.allocate(8);
      if (me == 1) std::memset(rt.local_addr(done_off), 0, 8);
      rt.sync_all();  // last vendor barrier before the kill can land
      setup_end = std::max(setup_end, engine.now());
      if (!calibrate && engine.now() < tm.start) {
        engine.advance(tm.start - engine.now());
      }
      (void)table.run_updates_resilient();
      update_end[me] = engine.now();
      // Manual survivor rendezvous (image 1 is never the victim here).
      (void)rt.dmapp().afadd(0, done_off, 1);
      for (;;) {
        const auto arrived =
            static_cast<std::int64_t>(rt.dmapp().afadd(0, done_off, 0));
        if (arrived >= images - engine.failed_count()) break;
        engine.advance(50'000);
      }
    });
    engine.run();
    if (calibrate) {
      tm = timing_from(setup_end,
                       *std::max_element(update_end.begin(), update_end.end()));
    }
  }
  return summarize(images, victim, tm, update_end);
}

}  // namespace

int main() {
  std::printf(
      "=== Failure recovery: lock reclamation + degraded DHT (XC30) ===\n\n");

  std::printf("Phase A: holder killed at %.1f ms with every survivor "
              "enqueued;\nrecovery = kill -> first survivor acquisition\n\n",
              sim::to_ms(kLockKillAt));
  bench::print_series_header(
      "images", {"UHCAF MCS reclaim (us)", "Cray-CAF ticket reclaim (us)"});
  for (int images : {2, 4, 8, 16, 32, 64}) {
    const double mcs = caf_recovery_us(images);
    const double ticket = craycaf_recovery_us(images);
    bench::print_row(images, {mcs, ticket});
  }

  std::printf("\nPhase B: Figure-9 DHT workload, one image killed mid-run "
              "(%d updates/image);\nthroughput in applied updates per ms of "
              "virtual time, before vs after the kill\n\n",
              dht_config().updates_per_image);
  std::printf("%-8s %-18s %10s %10s %9s %7s %7s %6s %12s\n", "images",
              "stack", "pre/ms", "post/ms", "applied", "redir", "skip",
              "recl", "reclaim_us");
  for (int images : {2, 4, 8, 16, 32, 64}) {
    for (int which = 0; which < 2; ++which) {
      const DhtOutcome o = which == 0 ? caf_dht(images) : craycaf_dht(images);
      std::printf("%-8d %-18s %10.1f %10.1f %9lld %7lld %7lld %6lld ",
                  images, which == 0 ? "UHCAF-Cray-SHMEM" : "Cray-CAF",
                  o.pre_per_ms, o.post_per_ms,
                  static_cast<long long>(o.applied),
                  static_cast<long long>(o.redirected),
                  static_cast<long long>(o.skipped),
                  static_cast<long long>(o.reclaimed));
      if (o.reclaim_us >= 0) std::printf("%12.2f\n", o.reclaim_us);
      else std::printf("%12s\n", "-");
    }
  }

  std::printf("\n%s\n", g_all_ok ? "PASS: all recovery invariants held"
                                 : "FAIL: see messages above");
  return g_all_ok ? 0 : 1;
}
