// Figure 2: put latency comparison of SHMEM, MPI-3.0, and GASNet on the
// Stampede and Titan machine models, 1 pair, small and large data sizes.
//
// Paper shape to reproduce: SHMEM <= GASNet < MPI-3.0 at small sizes; Cray
// SHMEM better than GASNet on Titan even for the smallest messages; SHMEM
// better than GASNet at large sizes.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace bench;

namespace {

void panel(const char* title, net::Machine machine,
           const std::vector<std::size_t>& sizes) {
  std::printf("\n-- %s --\n", title);
  print_series_header("bytes", {raw_lib_name(RawLib::kShmem, machine) + " (us)",
                                raw_lib_name(RawLib::kMpi3, machine) + " (us)",
                                "GASNet (us)"});
  std::vector<double> shmem_lat, gasnet_lat, mpi_lat;
  for (std::size_t bytes : sizes) {
    const double s = run_put_test(RawLib::kShmem, machine, bytes, 1, 20).latency_us;
    const double m = run_put_test(RawLib::kMpi3, machine, bytes, 1, 20).latency_us;
    const double g = run_put_test(RawLib::kGasnet, machine, bytes, 1, 20).latency_us;
    shmem_lat.push_back(s);
    mpi_lat.push_back(m);
    gasnet_lat.push_back(g);
    print_row(static_cast<double>(bytes), {s, m, g}, "%22.3f");
  }
  std::printf("summary: SHMEM vs MPI-3.0 latency ratio (geomean) = %.2fx lower\n",
              geomean_ratio(mpi_lat, shmem_lat));
  std::printf("summary: SHMEM vs GASNet  latency ratio (geomean) = %.2fx lower\n",
              geomean_ratio(gasnet_lat, shmem_lat));
}

}  // namespace

int main() {
  std::printf("=== Figure 2: put latency, 1 pair across two nodes ===\n");
  const std::vector<std::size_t> small = {8, 16, 32, 64, 128, 256, 512, 1024, 2048};
  const std::vector<std::size_t> large = {4096, 16384, 65536, 262144, 1048576, 4194304};
  panel("(a) Stampede: small sizes", net::Machine::kStampede, small);
  panel("(b) Stampede: large sizes", net::Machine::kStampede, large);
  panel("(c) Titan: small sizes", net::Machine::kTitan, small);
  panel("(d) Titan: large sizes", net::Machine::kTitan, large);
  return 0;
}
