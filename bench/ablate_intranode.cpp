// Ablation: the node-local shared-segment transport (per-node shared
// symmetric heap + SPSC rings + NUMA-aware placement) against the fabric
// path it replaces, for the three intra-node patterns the runtime leans on:
//
//   allreduce-8B   — one-node co_sum scalar per round (Himeno's residual
//                    reduction): latency-bound small puts + flag waits, the
//                    pattern the rings exist for;
//   lock-handoff   — all images hammer one MCS lock: the handoff is a
//                    same-node put + local spin, per-handoff time reported;
//   hot-get-64B    — every image reads 64-byte records from one hot owner
//                    (the DHT hot-shard serving pattern); p99 over all gets.
//
// Both of the paper's main platforms (Stampede/MVAPICH2-X, XC30/Cray-SHMEM)
// run every workload with the transport off (fabric loopback) and on
// (shared segment). A NUMA-placement mini-sweep shows what first-touch
// buys over a naive single-arena heap.
//
// `--json PATH` writes BENCH_intranode.json; scripts/ci.sh gates the 8-byte
// allreduce speedup at >= 2x on both machines.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_util.hpp"
#include "net/node_channel.hpp"

namespace {

struct Platform {
  driver::StackKind kind;
  net::Machine machine;
  const char* name;
  int images;  ///< one full node
};

constexpr Platform kPlatforms[] = {
    {driver::StackKind::kShmemMvapich, net::Machine::kStampede, "stampede", 16},
    {driver::StackKind::kShmemCray, net::Machine::kXC30, "xc30", 24},
};

caf::Options transport(bool on,
                       net::NumaPlacement placement =
                           net::NumaPlacement::kLocalDomain) {
  caf::Options o;
  o.node.enabled = on;
  o.node.placement = placement;
  return o;
}

/// Worst-image virtual time for 32 rounds of an 8-byte co_sum.
sim::Time allreduce8_time(const Platform& p, const caf::Options& opts) {
  driver::Stack stack(p.kind, p.images, p.machine, 2 << 20, opts);
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(p.images), 0);
  stack.run([&](caf::Runtime& rt) {
    rt.sync_all();
    const sim::Time t0 = sim::Engine::current()->now();
    for (int r = 0; r < 32; ++r) {
      std::int64_t x = rt.this_image();
      rt.co_sum(&x, 1);
    }
    elapsed[static_cast<std::size_t>(rt.this_image() - 1)] =
        sim::Engine::current()->now() - t0;
  });
  sim::Time worst = 1;
  for (const sim::Time t : elapsed) worst = std::max(worst, t);
  return worst;
}

/// Mean per-handoff virtual time of an all-images MCS lock storm.
sim::Time lock_handoff_time(const Platform& p, const caf::Options& opts) {
  constexpr int kRounds = 8;
  driver::Stack stack(p.kind, p.images, p.machine, 2 << 20, opts);
  const sim::Time total = stack.run([&](caf::Runtime& rt) {
    caf::CoLock lck = rt.make_lock();
    for (int r = 0; r < kRounds; ++r) {
      rt.lock(lck, 1);
      rt.unlock(lck, 1);
    }
    rt.sync_all();
  });
  return std::max<sim::Time>(1, total / (p.images * kRounds));
}

/// p99 latency of 64-byte gets from one hot owner image (DHT hot shard).
sim::Time hot_get_p99(const Platform& p, const caf::Options& opts) {
  constexpr int kGets = 64;
  driver::Stack stack(p.kind, p.images, p.machine, 2 << 20, opts);
  std::vector<sim::Time> samples;
  samples.reserve(static_cast<std::size_t>(p.images) * kGets);
  std::vector<std::vector<sim::Time>> per_image(
      static_cast<std::size_t>(p.images));
  stack.run([&](caf::Runtime& rt) {
    const std::uint64_t off = rt.allocate_coarray_bytes(64 * kGets);
    if (rt.this_image() == 1) {
      std::memset(rt.local_addr(off), 0x5a, 64 * kGets);
    }
    rt.sync_all();
    if (rt.this_image() == 1) return;  // the hot owner only serves
    auto& mine = per_image[static_cast<std::size_t>(rt.this_image() - 1)];
    char rec[64];
    for (int i = 0; i < kGets; ++i) {
      // Spread arrivals so the sample is per-op latency, not queueing.
      sim::Engine::current()->advance(2'000 + 137 * rt.this_image());
      const sim::Time t0 = sim::Engine::current()->now();
      rt.get_bytes(rec, 1, off + 64 * static_cast<std::uint64_t>(i), 64);
      mine.push_back(sim::Engine::current()->now() - t0);
    }
  });
  for (const auto& v : per_image) samples.insert(samples.end(), v.begin(), v.end());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() * 99 / 100];
}

struct Row {
  std::string platform;
  std::string workload;
  sim::Time fabric;
  sim::Time node;
  double speedup() const {
    return static_cast<double>(fabric) / static_cast<double>(node);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  std::printf("=== Ablation: node-local shared-segment transport ===\n\n");
  std::vector<Row> rows;
  double allreduce_min = 1e9, lock_min = 1e9, get_min = 1e9;

  for (const Platform& p : kPlatforms) {
    std::printf("-- %s (%d images, one node) --\n", p.name, p.images);
    std::printf("%-14s %14s %14s %10s\n", "workload", "fabric", "node-local",
                "speedup");
    Row ar{p.name, "allreduce-8B",
           allreduce8_time(p, transport(false)),
           allreduce8_time(p, transport(true))};
    Row lk{p.name, "lock-handoff",
           lock_handoff_time(p, transport(false)),
           lock_handoff_time(p, transport(true))};
    Row hg{p.name, "hot-get-64B-p99",
           hot_get_p99(p, transport(false)),
           hot_get_p99(p, transport(true))};
    for (const Row& r : {ar, lk, hg}) {
      rows.push_back(r);
      std::printf("%-14s %14s %14s %9.2fx\n", r.workload.c_str(),
                  sim::format_time(r.fabric).c_str(),
                  sim::format_time(r.node).c_str(), r.speedup());
    }
    allreduce_min = std::min(allreduce_min, ar.speedup());
    lock_min = std::min(lock_min, lk.speedup());
    get_min = std::min(get_min, hg.speedup());

    // NUMA placement: what the first-touch shared heap buys over a naive
    // one-arena allocation (every slice on domain 0).
    const sim::Time ft =
        allreduce8_time(p, transport(true, net::NumaPlacement::kLocalDomain));
    const sim::Time il =
        allreduce8_time(p, transport(true, net::NumaPlacement::kInterleave));
    const sim::Time d0 =
        allreduce8_time(p, transport(true, net::NumaPlacement::kDomain0));
    std::printf("placement (allreduce-8B): first-touch %s, interleave %s, "
                "domain0 %s\n\n",
                sim::format_time(ft).c_str(), sim::format_time(il).c_str(),
                sim::format_time(d0).c_str());
  }

  std::printf("minimum speedups across machines: allreduce-8B %.2fx, "
              "lock-handoff %.2fx, hot-get p99 %.2fx\n",
              allreduce_min, lock_min, get_min);

  if (json_path) {
    FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"intranode_transport\",\n"
                    "  \"unit\": \"ns\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"platform\": \"%s\", \"workload\": \"%s\", "
                   "\"fabric\": %lld, \"node\": %lld, \"speedup\": %.3f}%s\n",
                   r.platform.c_str(), r.workload.c_str(),
                   static_cast<long long>(r.fabric),
                   static_cast<long long>(r.node), r.speedup(),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"allreduce8_speedup_min\": %.3f,\n"
                 "  \"lock_handoff_speedup_min\": %.3f,\n"
                 "  \"hot_get_p99_speedup_min\": %.3f\n}\n",
                 allreduce_min, lock_min, get_min);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
