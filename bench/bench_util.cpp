#include "bench_util.hpp"

#include <algorithm>
#include <cmath>

#include "obs/analyzer.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace bench {

namespace {

constexpr int kPesPerNode = 16;
constexpr int kWorldPes = 32;  // two nodes

net::Library raw_library(RawLib lib, net::Machine m) {
  switch (lib) {
    case RawLib::kShmem: return net::native_shmem(m);
    case RawLib::kGasnet: return net::Library::kGasnet;
    case RawLib::kMpi3: return net::Library::kMpi3;
  }
  return net::Library::kGasnet;
}

double latency_us(const std::vector<sim::Time>& lat, int pairs, int reps) {
  sim::Time sum = 0;
  for (int p = 0; p < pairs; ++p) sum += lat[p];
  return sim::to_us(sum) / (pairs * reps);
}

// Aggregate bandwidth over the global span: first sender released from the
// barrier to last byte delivered. Per-pair max(dt) would under-report when
// the release barrier itself staggers the senders (which message loss in
// the barrier's own traffic can do).
double aggregate_mbs(const std::vector<sim::Time>& begin,
                     const std::vector<sim::Time>& end, int pairs,
                     std::size_t bytes, int reps) {
  sim::Time first = begin[0], last = end[0];
  for (int p = 0; p < pairs; ++p) {
    first = std::min(first, begin[p]);
    last = std::max(last, end[p]);
  }
  return static_cast<double>(bytes) * reps * pairs /
         (sim::to_sec(last - first) * 1e6);
}

}  // namespace

PutResult run_put_test(RawLib lib, net::Machine machine, std::size_t bytes,
                       int pairs, int reps, const net::FaultPlan* plan) {
  const std::size_t seg = bytes * 2 + (512 << 10);
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(machine), kWorldPes);
  std::unique_ptr<net::FaultInjector> injector;
  if (plan != nullptr && plan->active()) {
    injector = std::make_unique<net::FaultInjector>(
        *plan, kWorldPes, fabric.profile().cores_per_node);
    fabric.set_fault_injector(injector.get());
    injector->arm(engine);
  }
  const net::SwProfile sw = net::sw_profile(raw_library(lib, machine), machine);

  const std::vector<char> payload(bytes, 'x');

  PutResult out;
  switch (lib) {
    case RawLib::kShmem: {
      shmem::World world(engine, fabric, sw, seg);
      std::vector<sim::Time> lat(kWorldPes, 0);
      std::vector<sim::Time> bw_begin(kWorldPes, 0), bw_end(kWorldPes, 0);
      world.launch([&] {
        const int me = world.my_pe();
        auto* buf = static_cast<char*>(world.shmalloc(bytes));
        world.barrier_all();
        if (me < pairs) {  // senders on node 0
          const int dst = kPesPerNode + me;
          const sim::Time t0 = engine.now();
          for (int r = 0; r < reps; ++r) {
            world.putmem(buf, payload.data(), bytes, dst);
            world.quiet();
          }
          lat[me] = engine.now() - t0;
          world.barrier_all();
          bw_begin[me] = engine.now();
          for (int r = 0; r < reps; ++r) {
            world.putmem_nbi(buf, payload.data(), bytes, dst);
          }
          world.quiet();
          bw_end[me] = engine.now();
        } else {
          world.barrier_all();
        }
        world.barrier_all();
      });
      engine.run();
      out.latency_us = latency_us(lat, pairs, reps);
      out.bandwidth_mbs = aggregate_mbs(bw_begin, bw_end, pairs, bytes, reps);
      break;
    }
    case RawLib::kGasnet: {
      gasnet::World world(engine, fabric, sw, seg);
      std::vector<sim::Time> lat(kWorldPes, 0);
      std::vector<sim::Time> bw_begin(kWorldPes, 0), bw_end(kWorldPes, 0);
      const std::uint64_t off = gasnet::World::reserved_bytes();
      world.launch([&] {
        const int me = world.mynode();
        world.barrier();
        if (me < pairs) {
          const int dst = kPesPerNode + me;
          const sim::Time t0 = engine.now();
          for (int r = 0; r < reps; ++r) {
            world.put(dst, off, payload.data(), bytes);  // remotely complete
          }
          lat[me] = engine.now() - t0;
          world.barrier();
          bw_begin[me] = engine.now();
          for (int r = 0; r < reps; ++r) {
            world.put_nbi(dst, off, payload.data(), bytes);
          }
          world.wait_syncnbi_puts();
          bw_end[me] = engine.now();
        } else {
          world.barrier();
        }
        world.barrier();
      });
      engine.run();
      out.latency_us = latency_us(lat, pairs, reps);
      out.bandwidth_mbs = aggregate_mbs(bw_begin, bw_end, pairs, bytes, reps);
      break;
    }
    case RawLib::kMpi3: {
      mpi3::Window win(engine, fabric, sw, seg);
      std::vector<sim::Time> lat(kWorldPes, 0);
      std::vector<sim::Time> bw_begin(kWorldPes, 0), bw_end(kWorldPes, 0);
      const std::uint64_t off = mpi3::Window::reserved_bytes();
      win.launch([&] {
        const int me = win.rank();
        win.barrier();
        if (me < pairs) {
          const int dst = kPesPerNode + me;
          const sim::Time t0 = engine.now();
          for (int r = 0; r < reps; ++r) {
            win.put(payload.data(), bytes, dst, off);
            win.flush_all();
          }
          lat[me] = engine.now() - t0;
          win.barrier();
          bw_begin[me] = engine.now();
          for (int r = 0; r < reps; ++r) {
            win.put(payload.data(), bytes, dst, off);
          }
          win.flush_all();
          bw_end[me] = engine.now();
        } else {
          win.barrier();
        }
        win.barrier();
      });
      engine.run();
      out.latency_us = latency_us(lat, pairs, reps);
      out.bandwidth_mbs = aggregate_mbs(bw_begin, bw_end, pairs, bytes, reps);
      break;
    }
  }
  return out;
}

PutResult run_get_test(RawLib lib, net::Machine machine, std::size_t bytes,
                       int pairs, int reps) {
  const std::size_t seg = bytes * 2 + (512 << 10);
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(machine), kWorldPes);
  const net::SwProfile sw = net::sw_profile(raw_library(lib, machine), machine);
  std::vector<char> sink(bytes);
  PutResult out;
  std::vector<sim::Time> lat(kWorldPes, 0);

  auto finish = [&] {
    sim::Time lat_sum = 0;
    for (int p = 0; p < pairs; ++p) lat_sum += lat[p];
    out.latency_us = sim::to_us(lat_sum) / (pairs * reps);
    out.bandwidth_mbs =
        static_cast<double>(bytes) / (out.latency_us * 1e-6) / 1e6;
  };

  switch (lib) {
    case RawLib::kShmem: {
      shmem::World world(engine, fabric, sw, seg);
      world.launch([&] {
        const int me = world.my_pe();
        auto* buf = static_cast<char*>(world.shmalloc(bytes));
        world.barrier_all();
        if (me < pairs) {
          const int src = kPesPerNode + me;
          const sim::Time t0 = engine.now();
          for (int r = 0; r < reps; ++r) {
            world.getmem(sink.data(), buf, bytes, src);
          }
          lat[me] = engine.now() - t0;
        }
        world.barrier_all();
      });
      engine.run();
      finish();
      break;
    }
    case RawLib::kGasnet: {
      gasnet::World world(engine, fabric, sw, seg);
      const std::uint64_t off = gasnet::World::reserved_bytes();
      world.launch([&] {
        const int me = world.mynode();
        world.barrier();
        if (me < pairs) {
          const int src = kPesPerNode + me;
          const sim::Time t0 = engine.now();
          for (int r = 0; r < reps; ++r) {
            world.get(sink.data(), src, off, bytes);
          }
          lat[me] = engine.now() - t0;
        }
        world.barrier();
      });
      engine.run();
      finish();
      break;
    }
    case RawLib::kMpi3: {
      mpi3::Window win(engine, fabric, sw, seg);
      const std::uint64_t off = mpi3::Window::reserved_bytes();
      win.launch([&] {
        const int me = win.rank();
        win.barrier();
        if (me < pairs) {
          const int src = kPesPerNode + me;
          const sim::Time t0 = engine.now();
          for (int r = 0; r < reps; ++r) {
            win.get(sink.data(), bytes, src, off);
          }
          lat[me] = engine.now() - t0;
        }
        win.barrier();
      });
      engine.run();
      finish();
      break;
    }
  }
  return out;
}

double geomean_ratio(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::log(a[i] / b[i]);
  return std::exp(acc / static_cast<double>(a.size()));
}

void obs_report(const char* label) {
  if (!obs::enabled()) return;
  obs::sync_engine_counters();
  const obs::Attribution attr = obs::analyze();
  std::printf("\n--- wall-time attribution: %s ---\n", label);
  std::printf("%s", attr.table().c_str());
  const sim::EngineStats es = sim::last_engine_stats();
  if (es.events > 0) {
    std::printf(
        "engine: %llu events, %llu switches, %.4f heap-slabs/kevent, "
        "%.1f MiB peak stacks\n",
        static_cast<unsigned long long>(es.events),
        static_cast<unsigned long long>(es.switches),
        1000.0 * static_cast<double>(es.event_slab_allocs) /
            static_cast<double>(es.events),
        static_cast<double>(es.stack_bytes_peak) / (1024.0 * 1024.0));
  }
  if (!obs::config().trace_path.empty() && obs::write_chrome_trace()) {
    std::printf("chrome trace written to %s\n",
                obs::config().trace_path.c_str());
  }
}

}  // namespace bench
