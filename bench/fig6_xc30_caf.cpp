// Figure 6 (Cray XC30): CAF contiguous put bandwidth — Cray-CAF vs
// UHCAF-over-Cray-SHMEM, 1 and 16 pairs — and 2-D strided put bandwidth —
// Cray-CAF vs UHCAF naive vs UHCAF 2dim_strided.
//
// Paper shapes to reproduce: ~8% average contiguous-put improvement for
// UHCAF over Cray SHMEM vs Cray CAF; for strided puts ~3x improvement of
// 2dim_strided over Cray CAF and ~9x over the naive algorithm.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "caf_put_bench.hpp"

using namespace bench;

namespace {

void contiguous_panel(const char* title, int pairs) {
  std::printf("\n-- %s --\n", title);
  print_series_header("bytes", {"Cray-CAF (MB/s)", "UHCAF-Cray-SHMEM (MB/s)"});
  std::vector<double> cray, uhcaf;
  for (std::size_t bytes : {std::size_t{64}, std::size_t{256},
                            std::size_t{1024}, std::size_t{4096},
                            std::size_t{16384}, std::size_t{65536},
                            std::size_t{262144}, std::size_t{1048576}}) {
    const double c = craycaf_contig_bw(net::Machine::kXC30, bytes, pairs, 20);
    const double u = caf_contig_bw(driver::StackKind::kShmemCray,
                                   net::Machine::kXC30, bytes, pairs, 20);
    cray.push_back(c);
    uhcaf.push_back(u);
    print_row(static_cast<double>(bytes), {c, u});
  }
  std::printf("summary: UHCAF-Cray-SHMEM vs Cray-CAF bandwidth improvement "
              "(geomean) = %.0f%%\n",
              (geomean_ratio(uhcaf, cray) - 1.0) * 100.0);
}

void strided_panel(const char* title, int pairs) {
  std::printf("\n-- %s --\n", title);
  print_series_header("stride(ints)",
                      {"Cray-CAF (MB/s)", "UHCAF-naive (MB/s)",
                       "UHCAF-2dim (MB/s)", "UHCAF-agg (MB/s)"});
  const std::int64_t nelems = 1024;
  caf::RmaOptions agg;
  agg.completion = caf::CompletionMode::kDeferred;
  agg.write_combining = true;
  std::vector<double> cray, naive, twodim, aggregated;
  for (std::int64_t stride : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double c = craycaf_strided_bw(net::Machine::kXC30, stride, nelems, pairs);
    const double n =
        caf_strided_bw(driver::StackKind::kShmemCray, net::Machine::kXC30,
                       caf::StridedAlgo::kNaive, stride, nelems, pairs);
    const double t =
        caf_strided_bw(driver::StackKind::kShmemCray, net::Machine::kXC30,
                       caf::StridedAlgo::kTwoDim, stride, nelems, pairs);
    const double a =
        caf_strided_bw(driver::StackKind::kShmemCray, net::Machine::kXC30,
                       caf::StridedAlgo::kAggregate, stride, nelems, pairs,
                       agg);
    cray.push_back(c);
    naive.push_back(n);
    twodim.push_back(t);
    aggregated.push_back(a);
    print_row(static_cast<double>(stride), {c, n, t, a});
  }
  std::printf("summary: 2dim_strided vs Cray-CAF  = %.1fx\n",
              geomean_ratio(twodim, cray));
  std::printf("summary: 2dim_strided vs naive     = %.1fx\n",
              geomean_ratio(twodim, naive));
  std::printf("summary: aggregated vs naive       = %.1fx\n",
              geomean_ratio(aggregated, naive));
}

}  // namespace

int main() {
  std::printf("=== Figure 6: PGAS microbenchmarks on the Cray XC30 ===\n");
  contiguous_panel("(a) contiguous put: 1 pair", 1);
  contiguous_panel("(b) contiguous put: 16 pairs", 16);
  strided_panel("(c) strided put: 1 pair", 1);
  strided_panel("(d) strided put: 16 pairs", 16);
  return 0;
}
