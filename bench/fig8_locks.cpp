// Figure 8 (Titan): lock microbenchmark — every image repeatedly acquires
// and releases a lock on image 1; execution time vs number of images for
// Cray-CAF, UHCAF-GASNet, and UHCAF-Cray-SHMEM.
//
// Paper shapes to reproduce: UHCAF over Cray SHMEM is fastest (on average
// ~22% faster than Cray-CAF and ~10% faster than UHCAF-GASNet), with the
// gap most visible at >= 128 images.
#include <cstdio>
#include <vector>

#include "apps/driver.hpp"
#include "bench_util.hpp"
#include "craycaf/craycaf.hpp"

namespace {

constexpr int kRounds = 5;

sim::Time run_uhcaf_locks(driver::StackKind kind, int images) {
  driver::Stack stack(kind, images, net::Machine::kTitan, 1 << 20);
  return stack.run([&](caf::Runtime& rt) {
    caf::CoLock lck = rt.make_lock();
    for (int r = 0; r < kRounds; ++r) {
      rt.lock(lck, 1);
      rt.unlock(lck, 1);
    }
    rt.sync_all();
  });
}

sim::Time run_craycaf_locks(int images) {
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(net::Machine::kTitan), images);
  craycaf::Runtime rt(engine, fabric, 1 << 20, net::Machine::kTitan);
  rt.launch([&] {
    craycaf::CoLock lck = rt.make_lock();
    for (int r = 0; r < kRounds; ++r) {
      rt.lock(lck, 1);
      rt.unlock(lck, 1);
    }
    rt.sync_all();
  });
  engine.run();
  return engine.sim_now();
}

}  // namespace

int main() {
  std::printf("=== Figure 8: lock microbenchmark on Titan ===\n");
  std::printf("all images acquire+release lck[1], %d rounds each\n\n", kRounds);
  bench::print_series_header(
      "images", {"Cray-CAF (ms)", "UHCAF-GASNet (ms)", "UHCAF-Cray-SHMEM (ms)"});
  std::vector<double> cray, gasnet, shmem;
  for (int images : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double c = sim::to_ms(run_craycaf_locks(images));
    const double g =
        sim::to_ms(run_uhcaf_locks(driver::StackKind::kGasnet, images));
    const double s =
        sim::to_ms(run_uhcaf_locks(driver::StackKind::kShmemCray, images));
    cray.push_back(c);
    gasnet.push_back(g);
    shmem.push_back(s);
    bench::print_row(images, {c, g, s}, "%22.3f");
  }
  std::printf("\nsummary: UHCAF-Cray-SHMEM faster than Cray-CAF by %.0f%% "
              "(geomean)\n",
              (bench::geomean_ratio(cray, shmem) - 1.0) * 100.0);
  std::printf("summary: UHCAF-Cray-SHMEM faster than UHCAF-GASNet by %.0f%% "
              "(geomean)\n",
              (bench::geomean_ratio(gasnet, shmem) - 1.0) * 100.0);
  return 0;
}
