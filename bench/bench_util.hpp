// Shared infrastructure for the figure/table harnesses: raw-conduit put
// testers (SHMEM / GASNet / MPI-3) for the Figures 2-3 motivation study,
// and small table-formatting helpers.
//
// Measurement conventions (PGAS Microbenchmark suite style, §III/§V-B):
//   * pairs span two nodes: PE p (node 0) is paired with PE 16+p (node 1);
//   * latency  = mean time of one remotely-complete put, 1 pair active;
//   * bandwidth = payload * reps / elapsed with `reps` pipelined puts
//     completed by one quiet, for 1 or 16 concurrently active pairs.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gasnet/gasnet.hpp"
#include "mpi3/rma.hpp"
#include "net/fault.hpp"
#include "net/profiles.hpp"
#include "shmem/world.hpp"

namespace bench {

/// The raw one-sided libraries compared in Figures 2-3.
enum class RawLib { kShmem, kGasnet, kMpi3 };

inline std::string raw_lib_name(RawLib lib, net::Machine m) {
  switch (lib) {
    case RawLib::kShmem:
      return m == net::Machine::kStampede ? "MVAPICH2-X SHMEM" : "Cray SHMEM";
    case RawLib::kGasnet:
      return "GASNet";
    case RawLib::kMpi3:
      return m == net::Machine::kStampede ? "MVAPICH2-X MPI-3.0" : "Cray MPICH";
  }
  return "?";
}

struct PutResult {
  double latency_us = 0;   ///< per-op, remotely complete
  double bandwidth_mbs = 0;///< aggregate across active pairs, MB/s
};

/// Runs the pair put test for one library / machine / size / pair count.
/// With a non-null, active `plan`, a FaultInjector drives the fabric for
/// the whole run (the fault_sweep harness: bandwidth under message loss).
PutResult run_put_test(RawLib lib, net::Machine machine, std::size_t bytes,
                       int pairs, int reps,
                       const net::FaultPlan* plan = nullptr);

/// Same harness for blocking gets (round-trip latency; pipelined bandwidth
/// is not meaningful for blocking gets, so bandwidth here is per-op
/// payload/latency).
PutResult run_get_test(RawLib lib, net::Machine machine, std::size_t bytes,
                       int pairs, int reps);

/// Prints a CSV-ish row set header.
inline void print_series_header(const char* xlabel,
                                const std::vector<std::string>& series) {
  std::printf("%-14s", xlabel);
  for (const auto& s : series) std::printf(" %22s", s.c_str());
  std::printf("\n");
}

inline void print_row(double x, const std::vector<double>& ys,
                      const char* fmt = "%22.2f") {
  std::printf("%-14.0f", x);
  for (double y : ys) std::printf(" "), std::printf(fmt, y);
  std::printf("\n");
}

/// Geometric mean of pairwise ratios a[i]/b[i]; the "average X% improvement"
/// statistic the paper quotes.
double geomean_ratio(const std::vector<double>& a, const std::vector<double>& b);

/// Prints the obs critical-path attribution table for the current trace
/// session under `label`, and writes the Chrome trace when an output path
/// is configured (CAF_TRACE=<path>). No-op while tracing is disabled.
/// Call it after the instrumented run, before any new Fabric is
/// constructed (fabric construction resets the session).
void obs_report(const char* label);

}  // namespace bench
