// Chaos-soak harness: randomized grey-failure scripts against the full
// UHCAF stack with the in-band heartbeat detector armed.
//
// Each script seeds a FaultPlan with a random mix of PE kills, healable
// network partitions, flaky links, stragglers, and background loss, then
// runs a two-node ring-put + team-collective workload and checks the
// robustness invariants end to end:
//
//   I1  no hangs: every script's engine run terminates (a watchdog
//       DeadlockError fails the script);
//   I2  no false positives: a merely-slow or flaky-linked PE is never
//       declared failed (fd.false_positives == 0), and every declared PE
//       is a planned kill;
//   I3  detection: a planned kill is always declared, strictly after the
//       kill (detection latency > 0);
//   I4  determinism: rerunning a script byte-identically reproduces the
//       injector trace hash, the declared-failure list, the fd.* counters,
//       and the surviving images' memory;
//   I5  memory: every ring slot owned and written by surviving images is
//       bit-identical to the fault-free expectation.
//
// `--json PATH` writes BENCH_chaos.json (detection-latency and
// false-positive metrics aggregated from the fd.* counters); `--smoke`
// runs the bounded CI leg. The header prints the effective RetryPolicy
// and DetectorTunables (CAF_FD_* environment overrides included).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "net/fault.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

constexpr std::uint64_t kBaseSeed = 0xC4405ULL;

int g_failures = 0;

void check(bool ok, std::uint64_t seed, const char* what) {
  if (!ok) {
    std::printf("FAIL [seed %" PRIu64 "]: %s\n", seed, what);
    ++g_failures;
  }
}

std::int64_t slot_val(int writer_image, int k) {
  return static_cast<std::int64_t>(writer_image) * 1'000'003 + k * 7'919;
}

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ULL;
}

// One randomized fault script. Kills never target pe 0 (the observer/root)
// and healable partition windows stay under the suspicion budget
// (suspect_after + grace) so a heal must always win the race against a
// declaration — any declaration of a non-killed PE is an invariant breach.
struct Script {
  net::FaultPlan plan;
  int killed_pe = -1;      // -1: no kill in this script
  sim::Time kill_at = 0;
  int straggler_pe = -1;
  bool has_partition = false;

  static Script generate(std::uint64_t seed, int images) {
    Script s;
    sim::Rng rng(seed * 0x9E3779B97f4A7C15ULL + 0xC4405);
    s.plan.with_seed(seed);
    if (rng.below(2) == 0) {
      s.killed_pe = 1 + static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(images - 1)));
      s.kill_at = 300'000 + static_cast<sim::Time>(rng.below(1'200'000));
      s.plan.kill_pe(s.killed_pe, s.kill_at);
    }
    if (rng.below(2) == 0) {
      const sim::Time from = 200'000 + static_cast<sim::Time>(rng.below(600'000));
      const sim::Time len = 150'000 + static_cast<sim::Time>(rng.below(150'000));
      s.plan.partition_nodes({1}, from, from + len);
      s.has_partition = true;
    }
    if (rng.below(2) == 0) {
      const double loss = 0.05 + 0.30 * (static_cast<double>(rng.below(1000)) / 1000.0);
      const double bw = 0.3 + 0.7 * (static_cast<double>(rng.below(1000)) / 1000.0);
      s.plan.flaky_link(0, 1, loss, bw, 100'000, 1'500'000);
    }
    if (rng.below(2) == 0) {
      int pe = 1 + static_cast<int>(rng.below(
                       static_cast<std::uint64_t>(images - 1)));
      if (pe == s.killed_pe) pe = pe % (images - 1) + 1;
      if (pe != s.killed_pe) {
        s.straggler_pe = pe;
        const double dil = 2.0 + static_cast<double>(rng.below(4));
        s.plan.straggle_pe(pe, dil);
      }
    }
    if (rng.below(3) == 0) {
      s.plan.with_loss(0.002 + 0.015 * (static_cast<double>(rng.below(1000)) / 1000.0));
    }
    if (!s.plan.active()) s.plan.straggle_pe(1, 3.0);  // keep the plan grey
    return s;
  }
};

struct RunRecord {
  bool completed = false;
  std::uint64_t trace_hash = 0;
  std::uint64_t mem_hash = 0;
  std::vector<sim::PeFailure> declared;
  std::uint64_t fp = 0, declared_c = 0, evidence = 0, suspects = 0,
                recoveries = 0, flaps = 0, lat_total = 0, lat_count = 0;
  std::vector<std::vector<std::int64_t>> mem;  // per image, captured slots
  int coll_payload_errors = 0;
};

// Profile under soak: the conduit/machine pair plus the image count that
// spans exactly two nodes on that machine.
struct Profile {
  const char* name;
  driver::StackKind kind;
  net::Machine machine;
  int images() const {
    return net::machine_profile(machine).cores_per_node + 2;
  }
};

constexpr Profile kProfiles[] = {
    {"xc30", driver::StackKind::kShmemCray, net::Machine::kXC30},
    {"stampede", driver::StackKind::kShmemMvapich, net::Machine::kStampede},
};

// Runs one script (or, with an inactive plan, the fault-free reference).
RunRecord run_script(const Script& s, const Profile& prof, int images,
                     int rounds) {
  RunRecord rec;
  rec.mem.assign(static_cast<std::size_t>(images), {});
  net::FaultPlan plan = s.plan;
  plan.apply_env();  // CAF_FD_* overrides reach every script
  driver::Stack stack(prof.kind, images, prof.machine, 8 << 20, {}, plan);
  const int victim_image = s.killed_pe >= 0 ? s.killed_pe + 1 : -1;
  const std::int64_t full_sum =
      static_cast<std::int64_t>(images) * (images + 1) / 2;
  try {
    stack.run([&](caf::Runtime& rt) {
      const int me = rt.this_image();
      const int n = rt.num_images();
      caf::Team all;
      for (int i = 1; i <= n; ++i) all.members.push_back(i);
      const std::uint64_t off =
          rt.allocate_coarray_bytes(static_cast<std::size_t>(rounds) * 8);
      std::memset(rt.local_addr(off), 0, static_cast<std::size_t>(rounds) * 8);
      (void)rt.sync_all_stat();
      const int right = me % n + 1;
      // The doomed image runs the same loop forever: it keeps pairing up
      // with the survivors' collectives until the kill unwinds it.
      for (int k = 0;; ++k) {
        stack.engine().advance(40'000);
        if (k < rounds) {
          const std::int64_t v = slot_val(me, k);
          (void)rt.put_bytes_stat(right, off + static_cast<std::uint64_t>(k) * 8,
                                  &v, sizeof v);
        }
        int payload = me == 1 ? 1'000 + (k % rounds) : -1;
        const int bst = rt.team_broadcast_bytes(all, &payload, sizeof payload, 1);
        if (bst == caf::kStatOk && payload != 1'000 + (k % rounds)) {
          ++rec.coll_payload_errors;
        }
        std::int64_t sum = me;
        const int rst = rt.co_sum_team(all, &sum, 1);
        if (rst == caf::kStatOk && sum != full_sum) ++rec.coll_payload_errors;
        if (me != victim_image && k == rounds - 1) break;
      }
      // Settle: drain retransmits held back by partition windows, then let
      // every pending declaration land before capturing memory.
      for (int sblk = 0; sblk < 24; ++sblk) {
        stack.engine().advance(100'000);
        (void)rt.sync_all_stat();
      }
      auto& out = rec.mem[static_cast<std::size_t>(me - 1)];
      out.resize(static_cast<std::size_t>(rounds));
      std::memcpy(out.data(), rt.local_addr(off),
                  static_cast<std::size_t>(rounds) * 8);
    });
    rec.completed = true;
  } catch (const std::exception& e) {
    std::printf("  script aborted: %s\n", e.what());
  }
  rec.declared = stack.engine().declared_failures();
  if (stack.injector() != nullptr) {
    rec.trace_hash = stack.injector()->trace_hash();
  }
  auto& reg = obs::registry();
  rec.fp = reg.counter(0, "fd.false_positives");
  rec.declared_c = reg.counter(0, "fd.declared");
  rec.evidence = reg.counter(0, "fd.evidence_declared");
  rec.suspects = reg.counter(0, "fd.suspects");
  rec.recoveries = reg.counter(0, "fd.recoveries");
  rec.flaps = reg.counter(0, "fd.flaps");
  rec.lat_total = reg.counter(0, "fd.detect_latency_ns_total");
  rec.lat_count = reg.counter(0, "fd.detect_count");
  // Hash the surviving images' captured memory (the doomed image never
  // reaches the capture point, so its row stays empty in both reruns).
  rec.mem_hash = 14695981039346656037ULL;
  for (const auto& row : rec.mem) {
    for (const std::int64_t v : row) {
      rec.mem_hash = fnv(rec.mem_hash, static_cast<std::uint64_t>(v));
    }
  }
  return rec;
}

void print_effective_tunables() {
  net::FaultPlan p;
  p.apply_env();
  std::printf(
      "  retry: rto=%" PRId64 "ns backoff=%.1f max_exp=%d jitter=%.2f"
      " max_retransmits=%d rto_min=%" PRId64 "ns rto_max=%" PRId64
      "ns adaptive=%d\n",
      p.retry.rto, p.retry.backoff, p.retry.max_backoff_exp, p.retry.jitter,
      p.retry.max_retransmits, p.retry.rto_min, p.retry.rto_max,
      p.retry.adaptive ? 1 : 0);
  std::printf("  detector: period=%" PRId64 "ns miss=%d grace=%" PRId64 "ns\n",
              p.fd.heartbeat_period, p.fd.miss_threshold, p.fd.suspicion_grace);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  const Profile* prof = &kProfiles[0];
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
      prof = nullptr;
      for (const Profile& p : kProfiles) {
        if (std::strcmp(argv[i + 1], p.name) == 0) prof = &p;
      }
      if (prof == nullptr) {
        std::fprintf(stderr, "unknown --machine %s (xc30|stampede)\n",
                     argv[i + 1]);
        return 2;
      }
    }
  }
  const int images = prof->images();
  const int scripts = smoke ? 8 : 24;
  const int rounds = smoke ? 10 : 16;

  std::printf("chaos_soak: machine=%s images=%d scripts=%d rounds=%d"
              " base_seed=%" PRIu64 "\n",
              prof->name, images, scripts, rounds, kBaseSeed);
  print_effective_tunables();

  // Fault-free reference (I5): the ring slots a clean run produces must
  // match the analytic expectation slot_val(writer, k).
  {
    Script clean;
    clean.plan.straggle_pe(0, 1.0);  // unit dilation: plan grey, run clean
    const RunRecord ref = run_script(clean, *prof, images, rounds);
    bool ok = ref.completed && ref.declared.empty();
    for (int img = 1; img <= images && ok; ++img) {
      const int writer = (img + images - 2) % images + 1;
      const auto& row = ref.mem[static_cast<std::size_t>(img - 1)];
      for (int k = 0; k < rounds; ++k) {
        if (row[static_cast<std::size_t>(k)] != slot_val(writer, k)) {
          ok = false;
          break;
        }
      }
    }
    check(ok, 0, "fault-free reference run matches analytic slots");
  }

  std::uint64_t tot_declared = 0, tot_fp = 0, tot_evidence = 0,
                tot_suspects = 0, tot_recoveries = 0, tot_flaps = 0,
                tot_lat = 0, tot_lat_count = 0;
  std::string rows_json;

  for (int i = 0; i < scripts; ++i) {
    const std::uint64_t seed = kBaseSeed + static_cast<std::uint64_t>(i);
    const Script s = Script::generate(seed, images);
    const RunRecord a = run_script(s, *prof, images, rounds);
    const RunRecord b = run_script(s, *prof, images, rounds);  // I4 rerun

    check(a.completed && b.completed, seed, "I1: script runs terminate");
    check(a.coll_payload_errors == 0, seed,
          "collective rounds reporting kStatOk delivered correct data");

    // I2: only planned kills are ever declared.
    check(a.fp == 0, seed, "I2: fd.false_positives == 0");
    for (const auto& f : a.declared) {
      check(f.pe == s.killed_pe, seed, "I2: declared PE is the planned kill");
    }
    if (s.straggler_pe >= 0) {
      check(!(s.straggler_pe != s.killed_pe &&
              [&] {
                for (const auto& f : a.declared)
                  if (f.pe == s.straggler_pe) return true;
                return false;
              }()),
            seed, "I2: straggler never declared");
    }

    // I2b: a straggler/flaky-only script (no kill, no partition) must not
    // even *suspect* anybody — suspicion driven purely by slowness or link
    // loss means the miss threshold is too tight for the retry budget, and
    // every flap back to alive is that tuning bug caught in the act.
    if (s.killed_pe < 0 && !s.has_partition) {
      check(a.flaps == 0, seed, "I2b: straggler/flaky-only script never flaps");
    }

    // I3: a planned kill is detected, strictly after the kill.
    if (s.killed_pe >= 0) {
      bool found = false;
      for (const auto& f : a.declared) {
        if (f.pe == s.killed_pe) {
          found = true;
          check(f.at > s.kill_at, seed, "I3: declaration after the kill");
        }
      }
      check(found, seed, "I3: planned kill was declared");
      check(a.lat_count >= 1, seed, "I3: fd.detect_count counted the kill");
    } else {
      check(a.declared.empty(), seed, "I2: kill-free script declares nobody");
    }

    // I4: byte-identical rerun.
    check(a.trace_hash == b.trace_hash, seed, "I4: trace hash identical");
    check(a.mem_hash == b.mem_hash, seed, "I4: survivor memory identical");
    check(a.declared.size() == b.declared.size(), seed,
          "I4: declared list identical");
    for (std::size_t j = 0; j < a.declared.size() && j < b.declared.size();
         ++j) {
      check(a.declared[j].pe == b.declared[j].pe &&
                a.declared[j].at == b.declared[j].at,
            seed, "I4: declared entries identical");
    }
    check(a.fp == b.fp && a.declared_c == b.declared_c &&
              a.flaps == b.flaps && a.lat_total == b.lat_total,
          seed, "I4: fd.* counters identical");

    // I5: surviving ring slots match the fault-free expectation.
    for (int img = 1; img <= images; ++img) {
      const int writer = (img + images - 2) % images + 1;
      if (img == s.killed_pe + 1 || writer == s.killed_pe + 1) continue;
      const auto& row = a.mem[static_cast<std::size_t>(img - 1)];
      bool match = row.size() == static_cast<std::size_t>(rounds);
      for (int k = 0; match && k < rounds; ++k) {
        match = row[static_cast<std::size_t>(k)] == slot_val(writer, k);
      }
      check(match, seed, "I5: surviving slots bit-identical to fault-free");
    }

    tot_declared += a.declared_c;
    tot_fp += a.fp;
    tot_evidence += a.evidence;
    tot_suspects += a.suspects;
    tot_recoveries += a.recoveries;
    tot_flaps += a.flaps;
    tot_lat += a.lat_total;
    tot_lat_count += a.lat_count;

    const std::uint64_t lat_avg =
        a.lat_count > 0 ? a.lat_total / a.lat_count : 0;
    std::printf("  seed %" PRIu64 ": kill=%d partition=%d declared=%" PRIu64
                " fp=%" PRIu64 " detect_avg=%" PRIu64 "ns\n",
                seed, s.killed_pe, s.has_partition ? 1 : 0, a.declared_c,
                a.fp, lat_avg);
    char row[256];
    std::snprintf(row, sizeof row,
                  "%s    {\"seed\": %" PRIu64 ", \"declared\": %" PRIu64
                  ", \"false_positives\": %" PRIu64
                  ", \"detect_latency_ns\": %" PRIu64 "}",
                  i == 0 ? "" : ",\n", seed, a.declared_c, a.fp, lat_avg);
    rows_json += row;
  }

  const std::uint64_t avg_lat =
      tot_lat_count > 0 ? tot_lat / tot_lat_count : 0;
  std::printf("chaos totals: declared=%" PRIu64 " false_positives=%" PRIu64
              " evidence=%" PRIu64 " suspects=%" PRIu64 " recoveries=%" PRIu64
              " flaps=%" PRIu64 " detect_avg=%" PRIu64 "ns\n",
              tot_declared, tot_fp, tot_evidence, tot_suspects,
              tot_recoveries, tot_flaps, avg_lat);

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"chaos_soak\",\n  \"unit\": \"ns\",\n"
                 "  \"machine\": \"%s\",\n"
                 "  \"images\": %d,\n  \"reps\": %d,\n  \"seed\": %" PRIu64
                 ",\n  \"false_positives\": %" PRIu64
                 ",\n  \"declared_total\": %" PRIu64
                 ",\n  \"evidence_declared_total\": %" PRIu64
                 ",\n  \"flaps_total\": %" PRIu64
                 ",\n  \"detect_count\": %" PRIu64
                 ",\n  \"detect_latency_avg_ns\": %" PRIu64
                 ",\n  \"rows\": [\n%s\n  ]\n}\n",
                 prof->name, images, scripts, kBaseSeed, tot_fp, tot_declared,
                 tot_evidence, tot_flaps, tot_lat_count, avg_lat,
                 rows_json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  if (g_failures > 0) {
    std::printf("CHAOS SOAK FAILED: %d invariant violations\n", g_failures);
    return 1;
  }
  std::printf("CHAOS SOAK OK: %d scripts, all invariants held\n", scripts);
  return 0;
}
