// Table III: the experimental machine configurations, as modelled by the
// net:: profiles (the simulation substitute for the real testbeds).
#include <cstdio>

#include "net/profiles.hpp"

int main() {
  std::printf("=== Table III: machine configurations (simulated models) ===\n");
  std::printf("%-10s %-14s %-12s %-14s %-14s %-12s\n", "cluster",
              "interconnect", "cores/node", "latency(ns)", "link(GB/s)",
              "rx gap(ns)");
  struct {
    net::Machine m;
    const char* interconnect;
  } rows[] = {
      {net::Machine::kStampede, "IB Mellanox"},
      {net::Machine::kXC30, "Aries"},
      {net::Machine::kTitan, "Gemini"},
      {net::Machine::kWhale, "IB DDR"},
  };
  for (const auto& r : rows) {
    const auto p = net::machine_profile(r.m);
    std::printf("%-10s %-14s %-12d %-14lld %-14.1f %-12lld\n", p.name.c_str(),
                r.interconnect, p.cores_per_node,
                static_cast<long long>(p.hw_latency), p.link_bytes_per_ns,
                static_cast<long long>(p.rx_msg_gap));
  }
  std::printf("\ncores/node feeds the collectives engine's node map: images\n"
              "i and j share a node iff i/cores == j/cores (see DESIGN.md "
              "§4c).\n");
  std::printf("\nlibrary software profiles:\n");
  std::printf("%-22s %-10s %-12s %-12s %-10s %-12s %-10s\n", "library",
              "machine", "o_put(ns)", "o_amo(ns)", "bw eff", "hw strided",
              "nic amo");
  for (auto m : {net::Machine::kStampede, net::Machine::kTitan,
                 net::Machine::kXC30}) {
    for (auto l : {net::Library::kShmemMvapich, net::Library::kShmemCray,
                   net::Library::kGasnet, net::Library::kMpi3,
                   net::Library::kDmapp, net::Library::kCrayCaf}) {
      // Only print the combinations the paper actually ran.
      const bool stampede_lib = l == net::Library::kShmemMvapich ||
                                l == net::Library::kGasnet ||
                                l == net::Library::kMpi3;
      const bool cray_lib = l != net::Library::kShmemMvapich;
      if (m == net::Machine::kStampede ? !stampede_lib : !cray_lib) continue;
      const auto s = net::sw_profile(l, m);
      std::printf("%-22s %-10s %-12lld %-12lld %-10.2f %-12s %-10s\n",
                  s.name.c_str(), net::to_string(m).c_str(),
                  static_cast<long long>(s.put_overhead),
                  static_cast<long long>(s.amo_overhead), s.bw_efficiency,
                  s.hw_strided ? "yes" : "no", s.nic_amo ? "yes" : "no");
    }
  }
  return 0;
}
