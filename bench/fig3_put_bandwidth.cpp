// Figure 3: put bandwidth comparison of SHMEM, MPI-3.0, and GASNet with 1
// pair and with 16 pairs (inter-node contention) on Stampede and Titan.
//
// Paper shape to reproduce: SHMEM achieves the best bandwidth on both
// machines; under 16-pair contention SHMEM stays ahead on Stampede and is
// comparable to GASNet on Titan.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "caf_put_bench.hpp"

using namespace bench;

namespace {

void panel(const char* title, net::Machine machine, int pairs) {
  std::printf("\n-- %s --\n", title);
  print_series_header("bytes",
                      {raw_lib_name(RawLib::kShmem, machine) + " (MB/s)",
                       raw_lib_name(RawLib::kMpi3, machine) + " (MB/s)",
                       "GASNet (MB/s)"});
  std::vector<double> shm, mpi, gas;
  for (std::size_t bytes : {std::size_t{64}, std::size_t{512},
                            std::size_t{4096}, std::size_t{32768},
                            std::size_t{262144}, std::size_t{1048576},
                            std::size_t{4194304}}) {
    const double s =
        run_put_test(RawLib::kShmem, machine, bytes, pairs, 20).bandwidth_mbs;
    const double m =
        run_put_test(RawLib::kMpi3, machine, bytes, pairs, 20).bandwidth_mbs;
    const double g =
        run_put_test(RawLib::kGasnet, machine, bytes, pairs, 20).bandwidth_mbs;
    shm.push_back(s);
    mpi.push_back(m);
    gas.push_back(g);
    print_row(static_cast<double>(bytes), {s, m, g});
  }
  std::printf("summary: SHMEM/GASNet bandwidth (geomean) = %.2fx\n",
              geomean_ratio(shm, gas));
  std::printf("summary: SHMEM/MPI-3.0 bandwidth (geomean) = %.2fx\n",
              geomean_ratio(shm, mpi));
}

/// This PR's pipeline panel: CAF-level strided small-message puts through
/// the write-combining aggregation stage vs the paper's blocking-put
/// translation. Each message is one contiguous run of `bytes`, 256 runs per
/// statement, non-adjacent on the remote side.
void aggregation_panel(const char* title, net::Machine machine, int pairs) {
  const driver::StackKind kind = machine == net::Machine::kStampede
                                     ? driver::StackKind::kShmemMvapich
                                     : driver::StackKind::kShmemCray;
  std::printf("\n-- %s --\n", title);
  print_series_header("bytes/msg",
                      {"CAF blocking (MB/s)", "CAF nbi (MB/s)",
                       "CAF aggregated (MB/s)"});
  caf::RmaOptions nbi;
  nbi.completion = caf::CompletionMode::kDeferred;
  caf::RmaOptions agg = nbi;
  agg.write_combining = true;
  std::vector<double> blocking, deferred, aggregated;
  for (std::size_t bytes : {std::size_t{16}, std::size_t{64},
                            std::size_t{128}, std::size_t{256},
                            std::size_t{512}}) {
    const double b = caf_smallrun_bw(kind, machine, caf::StridedAlgo::kNaive,
                                     bytes, 256, pairs);
    const double n = caf_smallrun_bw(kind, machine, caf::StridedAlgo::kNaive,
                                     bytes, 256, pairs, nbi);
    const double a =
        caf_smallrun_bw(kind, machine, caf::StridedAlgo::kAggregate, bytes,
                        256, pairs, agg);
    blocking.push_back(b);
    deferred.push_back(n);
    aggregated.push_back(a);
    print_row(static_cast<double>(bytes), {b, n, a});
  }
  std::printf("summary: aggregated/blocking bandwidth (geomean) = %.2fx\n",
              geomean_ratio(aggregated, blocking));
  std::printf("summary: nbi/blocking bandwidth (geomean)        = %.2fx\n",
              geomean_ratio(deferred, blocking));
}

}  // namespace

int main() {
  std::printf("=== Figure 3: put bandwidth across two nodes ===\n");
  panel("(a) Stampede: 1 pair", net::Machine::kStampede, 1);
  panel("(b) Stampede: 16 pairs", net::Machine::kStampede, 16);
  panel("(c) Titan: 1 pair", net::Machine::kTitan, 1);
  panel("(d) Titan: 16 pairs", net::Machine::kTitan, 16);
  aggregation_panel("(e) Stampede: CAF small strided puts, 1 pair",
                    net::Machine::kStampede, 1);
  aggregation_panel("(f) Titan: CAF small strided puts, 1 pair",
                    net::Machine::kTitan, 1);
  return 0;
}
