// Figure 3: put bandwidth comparison of SHMEM, MPI-3.0, and GASNet with 1
// pair and with 16 pairs (inter-node contention) on Stampede and Titan.
//
// Paper shape to reproduce: SHMEM achieves the best bandwidth on both
// machines; under 16-pair contention SHMEM stays ahead on Stampede and is
// comparable to GASNet on Titan.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace bench;

namespace {

void panel(const char* title, net::Machine machine, int pairs) {
  std::printf("\n-- %s --\n", title);
  print_series_header("bytes",
                      {raw_lib_name(RawLib::kShmem, machine) + " (MB/s)",
                       raw_lib_name(RawLib::kMpi3, machine) + " (MB/s)",
                       "GASNet (MB/s)"});
  std::vector<double> shm, mpi, gas;
  for (std::size_t bytes : {std::size_t{64}, std::size_t{512},
                            std::size_t{4096}, std::size_t{32768},
                            std::size_t{262144}, std::size_t{1048576},
                            std::size_t{4194304}}) {
    const double s =
        run_put_test(RawLib::kShmem, machine, bytes, pairs, 20).bandwidth_mbs;
    const double m =
        run_put_test(RawLib::kMpi3, machine, bytes, pairs, 20).bandwidth_mbs;
    const double g =
        run_put_test(RawLib::kGasnet, machine, bytes, pairs, 20).bandwidth_mbs;
    shm.push_back(s);
    mpi.push_back(m);
    gas.push_back(g);
    print_row(static_cast<double>(bytes), {s, m, g});
  }
  std::printf("summary: SHMEM/GASNet bandwidth (geomean) = %.2fx\n",
              geomean_ratio(shm, gas));
  std::printf("summary: SHMEM/MPI-3.0 bandwidth (geomean) = %.2fx\n",
              geomean_ratio(shm, mpi));
}

}  // namespace

int main() {
  std::printf("=== Figure 3: put bandwidth across two nodes ===\n");
  panel("(a) Stampede: 1 pair", net::Machine::kStampede, 1);
  panel("(b) Stampede: 16 pairs", net::Machine::kStampede, 16);
  panel("(c) Titan: 1 pair", net::Machine::kTitan, 1);
  panel("(d) Titan: 16 pairs", net::Machine::kTitan, 16);
  return 0;
}
