// Ablation (§IV-D): why the MCS adaptation, rather than the two obvious
// alternatives, for CAF locks over OpenSHMEM?
//
//   mcs        — the paper's design: queue lock, local spinning, O(1)
//                remote traffic per handoff.
//   central    — centralized compare-and-swap spinning on the lock home
//                (what a naive port would do): remote poll storm.
//   shmem-N    — the OpenSHMEM global-lock API with an N-element symmetric
//                lock array, the space-inefficient workaround §IV-D rules
//                out (every image allocates N lock words per lock).
#include <cstdio>
#include <vector>

#include "apps/driver.hpp"
#include "net/profiles.hpp"
#include "shmem/world.hpp"

namespace {

constexpr int kRounds = 4;

sim::Time run_mcs(int images) {
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kTitan, 1 << 20);
  return stack.run([&](caf::Runtime& rt) {
    caf::CoLock lck = rt.make_lock();
    for (int r = 0; r < kRounds; ++r) {
      rt.lock(lck, 1);
      rt.unlock(lck, 1);
    }
    rt.sync_all();
  });
}

sim::Time run_central_cas(int images) {
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kTitan, 1 << 20);
  return stack.run([&](caf::Runtime& rt) {
    const std::uint64_t off = rt.allocate_coarray_bytes(8);
    std::memset(rt.local_addr(off), 0, 8);
    rt.sync_all();
    for (int r = 0; r < kRounds; ++r) {
      sim::Time backoff = 500;
      while (rt.atomic_cas(1, off, 0, rt.this_image()) != 0) {
        sim::Engine::current()->advance(backoff);
        backoff = std::min<sim::Time>(backoff * 2, 30'000);
      }
      (void)rt.atomic_cas(1, off, rt.this_image(), 0);
    }
    rt.sync_all();
  });
}

sim::Time run_shmem_global_lock(int images) {
  // The OpenSHMEM lock API: one logically-global lock. Emulating CAF's
  // lck[1] costs every image an N-element symmetric array per lock
  // variable; we time the array element for image 1.
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(net::Machine::kTitan), images);
  shmem::World world(engine, fabric,
                     net::sw_profile(net::Library::kShmemCray,
                                     net::Machine::kTitan),
                     1 << 20);
  world.launch([&] {
    auto* locks = static_cast<std::int64_t*>(
        world.shmalloc(sizeof(std::int64_t) * images));  // N words per image!
    world.barrier_all();
    for (int r = 0; r < kRounds; ++r) {
      world.set_lock(&locks[0]);
      world.clear_lock(&locks[0]);
    }
    world.barrier_all();
  });
  engine.run();
  return engine.sim_now();
}

}  // namespace

int main() {
  std::printf("=== Ablation: CAF lock designs over OpenSHMEM (§IV-D) ===\n\n");
  std::printf("%-8s %16s %16s %16s   %s\n", "images", "mcs (ms)",
              "central-cas (ms)", "shmem-array (ms)", "shmem-array bytes/image");
  for (int images : {4, 16, 64, 256}) {
    const double m = sim::to_ms(run_mcs(images));
    const double c = sim::to_ms(run_central_cas(images));
    const double s = sim::to_ms(run_shmem_global_lock(images));
    std::printf("%-8d %16.3f %16.3f %16.3f   %zu\n", images, m, c, s,
                sizeof(std::int64_t) * images);
  }
  std::printf(
      "\nReading: MCS is fastest through mid scale and is FIFO-fair with\n"
      "O(1) remote traffic per handoff. The centralized CAS lock can post\n"
      "better *wall time* at extreme contention because it is unfair (its\n"
      "backoff lets recent winners re-acquire cheaply), which is not an\n"
      "acceptable trade for CAF lock semantics. The shmem-array workaround\n"
      "additionally costs O(images) lock words per lock variable (last\n"
      "column) — the space argument §IV-D makes against it.\n");
  return 0;
}
