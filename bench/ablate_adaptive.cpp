// Ablation (§VII future work, implemented): the adaptive strided planner
// vs the paper's fixed algorithms, across section archetypes on the Cray
// model. The paper ends by proposing exactly this: "account for more
// parameters to negotiate the tradeoff between locality and minimizing the
// number of single calls".
//
// Expected: adaptive matches the better fixed algorithm on every archetype
// — 2dim-like on scattered sections, naive-run-like on matrix-oriented
// sections (the Himeno case the authors had to pick by hand).
#include <cstdio>
#include <numeric>
#include <vector>

#include "apps/driver.hpp"

namespace {

sim::Time run_once(caf::StridedAlgo algo, const caf::Shape& shape,
                   const caf::Section& sec) {
  caf::Options opts;
  opts.strided = algo;
  driver::Stack stack(driver::StackKind::kShmemCray, 18, net::Machine::kXC30,
                      8 << 20, opts);
  sim::Time elapsed = 0;
  stack.run([&](caf::Runtime& rt) {
    auto x = caf::make_coarray<int>(rt, shape);
    rt.sync_all();
    if (rt.this_image() == 1) {
      const caf::SectionDesc d = describe(shape, sec);
      std::vector<int> src(static_cast<std::size_t>(d.total), 1);
      const sim::Time t0 = sim::Engine::current()->now();
      x.put_section(17, sec, src.data());
      elapsed = sim::Engine::current()->now() - t0;
    }
    rt.sync_all();
  });
  return elapsed;
}

}  // namespace

int main() {
  std::printf("=== Ablation: adaptive strided planner (§VII implemented) ===\n");
  std::printf("Cray XC30 model, cross-node put of one section\n\n");
  struct Case {
    const char* name;
    caf::Shape shape;
    caf::Section sec;
  };
  const Case cases[] = {
      {"scattered 3-D (§IV-C style)", caf::Shape{100, 100, 10},
       caf::Section{{1, 100, 2}, {1, 80, 2}, {1, 10, 2}}},
      {"matrix-oriented (Himeno halo)", caf::Shape{128, 64},
       caf::Section{{1, 128, 1}, {1, 64, 2}}},
      {"single strided row", caf::Shape{512, 4},
       caf::Section{{1, 511, 2}, {2, 2, 1}}},
      {"contiguous block", caf::Shape{64, 64},
       caf::Section{{1, 64, 1}, {1, 32, 1}}},
  };
  std::printf("%-32s %14s %14s %14s %10s\n", "section", "naive", "2dim",
              "adaptive", "winner");
  for (const Case& c : cases) {
    const sim::Time n = run_once(caf::StridedAlgo::kNaive, c.shape, c.sec);
    const sim::Time t = run_once(caf::StridedAlgo::kTwoDim, c.shape, c.sec);
    const sim::Time a = run_once(caf::StridedAlgo::kAdaptive, c.shape, c.sec);
    const char* winner = a <= std::min(n, t)   ? "adaptive="
                         : a <= n && a <= t    ? "adaptive"
                         : n < t               ? "naive"
                                               : "2dim";
    std::printf("%-32s %14s %14s %14s %10s\n", c.name,
                sim::format_time(n).c_str(), sim::format_time(t).c_str(),
                sim::format_time(a).c_str(), winner);
  }
  std::printf("\nThe planner recovers the Himeno hand-tuning (§V-D) and the\n"
              "scattered-section win (§V-B-2) from one cost model.\n");
  return 0;
}
