// Supplementary microbenchmark (the PGAS Microbenchmark suite's get tests,
// §V-B: "performance and correctness for put/get operations"): blocking-get
// round-trip latency for SHMEM, MPI-3.0, and GASNet on both machine models.
//
// Expected shape: same ordering as the put tests (Figure 2) with uniformly
// higher absolute latency (a get is a full round trip).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace bench;

namespace {

void panel(const char* title, net::Machine machine) {
  std::printf("\n-- %s --\n", title);
  print_series_header("bytes", {raw_lib_name(RawLib::kShmem, machine) + " (us)",
                                raw_lib_name(RawLib::kMpi3, machine) + " (us)",
                                "GASNet (us)"});
  std::vector<double> shm, mpi, gas;
  for (std::size_t bytes : {std::size_t{8}, std::size_t{64}, std::size_t{512},
                            std::size_t{4096}, std::size_t{65536},
                            std::size_t{1048576}}) {
    const double s = run_get_test(RawLib::kShmem, machine, bytes, 1, 20).latency_us;
    const double m = run_get_test(RawLib::kMpi3, machine, bytes, 1, 20).latency_us;
    const double g = run_get_test(RawLib::kGasnet, machine, bytes, 1, 20).latency_us;
    shm.push_back(s);
    mpi.push_back(m);
    gas.push_back(g);
    print_row(static_cast<double>(bytes), {s, m, g}, "%22.3f");
  }
  std::printf("summary: SHMEM vs MPI-3.0 get latency = %.2fx lower\n",
              geomean_ratio(mpi, shm));
  std::printf("summary: SHMEM vs GASNet  get latency = %.2fx lower\n",
              geomean_ratio(gas, shm));
}

}  // namespace

int main() {
  std::printf("=== Supplementary: get latency, 1 pair across two nodes ===\n");
  panel("Stampede", net::Machine::kStampede);
  panel("Titan", net::Machine::kTitan);
  return 0;
}
