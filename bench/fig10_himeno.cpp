// Figure 10 (Stampede): CAF Himeno benchmark — MFLOPS vs number of images
// for UHCAF over GASNet and UHCAF over MVAPICH2-X SHMEM (both with the
// naive strided algorithm, which §V-D found best for Himeno's
// matrix-oriented halo strides).
//
// Paper shapes to reproduce: UHCAF over MVAPICH2-X SHMEM wins for >= 16
// images, ~6% on average and up to ~22%.
#include <cstdio>
#include <vector>

#include "apps/driver.hpp"
#include "apps/himeno.hpp"
#include "bench_util.hpp"
#include "obs/obs.hpp"

namespace {

double run_himeno(driver::StackKind kind, int images,
                  caf::RmaOptions rma = {}, sim::Time* coll_out = nullptr) {
  apps::himeno::Config base;
  base.gx = 128;
  base.gy = 64;
  base.gz = 64;
  base.iters = 3;
  const auto cfg = apps::himeno::decompose(base, images);
  caf::Options opts;
  opts.strided = caf::StridedAlgo::kNaive;  // §V-D's best choice
  opts.nonsym_slab_bytes = 64 << 10;
  opts.rma = rma;
  // Size the symmetric heap to the actual footprint: the ghosted local
  // pressure block plus runtime internals.
  const std::size_t p_bytes = static_cast<std::size_t>(cfg.gx) *
                              (cfg.gy / cfg.py + 2) * (cfg.gz / cfg.pz + 2) *
                              sizeof(double);
  driver::Stack stack(kind, images, net::Machine::kStampede,
                      p_bytes + (1 << 20), opts);
  apps::himeno::Result result;
  sim::Time worst_coll = 0;
  stack.run([&](caf::Runtime& rt) {
    apps::himeno::Solver solver(rt, cfg);
    result = solver.run();
    worst_coll = std::max(worst_coll, result.coll_per_iter);
    rt.sync_all();
  });
  if (coll_out != nullptr) *coll_out = worst_coll;
  return result.mflops;
}

}  // namespace

int main() {
  std::printf("=== Figure 10: CAF Himeno benchmark on Stampede ===\n");
  std::printf("128x64x64 grid, 3 Jacobi iterations, naive strided halos\n\n");
  bench::print_series_header(
      "images", {"UHCAF-GASNet (MFLOPS)", "UHCAF-MV2X-SHMEM (MFLOPS)",
                 "UHCAF-MV2X-nbi (MFLOPS)"});
  caf::RmaOptions nbi;
  nbi.completion = caf::CompletionMode::kDeferred;
  std::vector<double> gasnet, shmem, pipelined;
  sim::Time coll_per_iter = 0;  // residual co_sum cost at the largest size
  for (int images : {2, 8, 16, 32, 128, 512, 2048}) {
    const double g = run_himeno(driver::StackKind::kGasnet, images);
    const double s =
        run_himeno(driver::StackKind::kShmemMvapich, images, {}, &coll_per_iter);
    const double d = run_himeno(driver::StackKind::kShmemMvapich, images, nbi);
    gasnet.push_back(g);
    shmem.push_back(s);
    pipelined.push_back(d);
    bench::print_row(images, {g, s, d}, "%22.1f");
  }
  std::printf("\nsummary: UHCAF-MV2X-SHMEM vs UHCAF-GASNet = %.0f%% better "
              "(geomean)\n",
              (bench::geomean_ratio(shmem, gasnet) - 1.0) * 100.0);
  double best = 0;
  for (std::size_t i = 0; i < shmem.size(); ++i) {
    best = std::max(best, (shmem[i] / gasnet[i] - 1.0) * 100.0);
  }
  std::printf("summary: maximum improvement = %.0f%%\n", best);
  std::printf("summary: nbi halo pipeline vs eager = %.1f%% (geomean)\n",
              (bench::geomean_ratio(pipelined, shmem) - 1.0) * 100.0);
  std::printf("summary: residual co_sum per iteration @2048 images = %s "
              "(hierarchical engine, worst image)\n",
              sim::format_time(coll_per_iter).c_str());
  // Traced rerun at the largest size: where does the wall time go? The
  // solver marks sweep/halo/residual/barrier phases each iteration; the
  // obs analyzer splits each phase into compute / wire / stall groups.
  obs::init_from_env();  // CAF_TRACE=<path> → Chrome trace of this rerun
  if (!obs::enabled()) obs::enable({});
  run_himeno(driver::StackKind::kShmemMvapich, 2048);
  bench::obs_report("Himeno @2048 images, UHCAF-MV2X-SHMEM");
  return 0;
}
