// Ablation: the topology-aware hierarchical collectives engine, arm by arm.
//
// Two workloads over an image sweep, four engine settings each:
//   baseline — forced binomial tree with per_target_completion off: the
//              pre-engine sequence (data put, full quiet, flag put), so one
//              slow target stalls the whole fan-out;
//   binomial — the same tree with per-target fences (data-then-flag pairs
//              riding in-order same-pair delivery);
//   flat     — root-centric linear fan-out/gather, the conformance
//              reference arm;
//   auto     — the selector: two-level node-leader trees / recursive
//              doubling for small payloads, pipelined streaming above one
//              staging slot, priced off the SwProfile.
//
// Workloads:
//   allreduce-8B — one co_sum scalar per round (Himeno's residual
//                  reduction), latency-bound: the hierarchy and the
//                  per-target fences are the whole story;
//   bcast-1MiB   — a 1 MiB co_broadcast (model/table distribution),
//                  bandwidth-bound: the pipelined arm streams chunks
//                  through a contiguous binary tree instead of
//                  store-and-forwarding whole slots.
//
// Machines: Stampede/MVAPICH2-X (16 cores/node) and XC30/Cray-SHMEM
// (24 cores/node, intra-node direct load/store enabled) — the paper's two
// main platforms. Native collective mappings are disabled so the engine
// itself is measured on both stacks.
//
// `--json PATH` writes the series plus the @64-image speedups the CI gate
// checks (BENCH_coll.json).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "bench_util.hpp"
#include "caf/shmem_conduit.hpp"

namespace {

enum class Arm { kBaseline, kBinomial, kFlat, kAutoSel };

caf::Options arm_opts(Arm a) {
  caf::Options o;
  o.use_native_collectives = false;  // measure the engine on every stack
  switch (a) {
    case Arm::kBaseline:
      o.coll.broadcast = caf::CollAlgo::kBinomial;
      o.coll.reduce = caf::CollAlgo::kBinomial;
      o.coll.per_target_completion = false;
      break;
    case Arm::kBinomial:
      o.coll.broadcast = caf::CollAlgo::kBinomial;
      o.coll.reduce = caf::CollAlgo::kBinomial;
      break;
    case Arm::kFlat:
      o.coll.broadcast = caf::CollAlgo::kFlat;
      o.coll.reduce = caf::CollAlgo::kFlat;
      break;
    case Arm::kAutoSel:
      break;  // kAuto everywhere: selector + pipelined large payloads
  }
  return o;
}

struct Platform {
  driver::StackKind kind;
  net::Machine machine;
  const char* name;
};

constexpr Platform kPlatforms[] = {
    {driver::StackKind::kShmemMvapich, net::Machine::kStampede, "stampede"},
    {driver::StackKind::kShmemCray, net::Machine::kXC30, "xc30"},
};

/// Virtual time for `reps` rounds of an 8-byte co_sum across `images`.
sim::Time allreduce8_time(const Platform& p, Arm arm, int images) {
  driver::Stack stack(p.kind, images, p.machine, 2 << 20, arm_opts(arm));
  if (auto* sc = dynamic_cast<caf::ShmemConduit*>(&stack.rt().conduit())) {
    sc->set_intra_node_direct(true);
  }
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(images), 0);
  stack.run([&](caf::Runtime& rt) {
    rt.sync_all();
    const sim::Time t0 = sim::Engine::current()->now();
    std::int64_t v = rt.this_image();
    for (int r = 0; r < 32; ++r) {
      std::int64_t x = v;
      rt.co_sum(&x, 1);
    }
    elapsed[static_cast<std::size_t>(rt.this_image() - 1)] =
        sim::Engine::current()->now() - t0;
  });
  sim::Time worst = 1;
  for (const sim::Time t : elapsed) worst = std::max(worst, t);
  return worst;
}

/// Virtual time for `reps` rounds of a 1 MiB co_broadcast from image 1.
sim::Time bcast1m_time(const Platform& p, Arm arm, int images) {
  constexpr std::size_t kElems = (1 << 20) / sizeof(std::int64_t);
  driver::Stack stack(p.kind, images, p.machine, (4 << 20), arm_opts(arm));
  if (auto* sc = dynamic_cast<caf::ShmemConduit*>(&stack.rt().conduit())) {
    sc->set_intra_node_direct(true);
  }
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(images), 0);
  stack.run([&](caf::Runtime& rt) {
    std::vector<std::int64_t> data(kElems, rt.this_image());
    rt.sync_all();
    const sim::Time t0 = sim::Engine::current()->now();
    for (int r = 0; r < 4; ++r) {
      rt.co_broadcast(data.data(), kElems, 1);
    }
    elapsed[static_cast<std::size_t>(rt.this_image() - 1)] =
        sim::Engine::current()->now() - t0;
  });
  sim::Time worst = 1;
  for (const sim::Time t : elapsed) worst = std::max(worst, t);
  return worst;
}

struct Row {
  std::string platform;
  std::string workload;
  int images;
  sim::Time t[4];  // indexed by Arm
};

constexpr Arm kArms[] = {Arm::kBaseline, Arm::kBinomial, Arm::kFlat,
                         Arm::kAutoSel};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  std::printf("=== Ablation: hierarchical collectives engine ===\n\n");
  std::vector<Row> rows;
  double allreduce_speedup_64 = 0;
  double bcast_speedup_64 = 0;

  for (const Platform& p : kPlatforms) {
    std::printf("-- %s --\n", p.name);
    std::printf("%-14s %-7s %12s %12s %12s %12s %10s\n", "workload", "images",
                "baseline", "binomial", "flat", "auto", "auto/base");
    for (const int images : {2, 8, 16, 32, 64}) {
      Row row{p.name, "allreduce-8B", images, {}};
      for (int a = 0; a < 4; ++a) {
        row.t[a] = allreduce8_time(p, kArms[a], images);
      }
      rows.push_back(row);
      const double sp = static_cast<double>(row.t[0]) /
                        static_cast<double>(row.t[3]);
      std::printf("%-14s %-7d %12s %12s %12s %12s %9.2fx\n", row.workload.c_str(),
                  images, sim::format_time(row.t[0]).c_str(),
                  sim::format_time(row.t[1]).c_str(),
                  sim::format_time(row.t[2]).c_str(),
                  sim::format_time(row.t[3]).c_str(), sp);
      if (images == 64 && p.kind == driver::StackKind::kShmemMvapich) {
        allreduce_speedup_64 = sp;
      }
    }
    for (const int images : {8, 32, 64}) {
      Row row{p.name, "bcast-1MiB", images, {}};
      for (int a = 0; a < 4; ++a) {
        row.t[a] = bcast1m_time(p, kArms[a], images);
      }
      rows.push_back(row);
      const double sp = static_cast<double>(row.t[0]) /
                        static_cast<double>(row.t[3]);
      std::printf("%-14s %-7d %12s %12s %12s %12s %9.2fx\n", row.workload.c_str(),
                  images, sim::format_time(row.t[0]).c_str(),
                  sim::format_time(row.t[1]).c_str(),
                  sim::format_time(row.t[2]).c_str(),
                  sim::format_time(row.t[3]).c_str(), sp);
      if (images == 64 && p.kind == driver::StackKind::kShmemMvapich) {
        bcast_speedup_64 = sp;
      }
    }
    std::printf("\n");
  }

  std::printf("summary @64 images (stampede): allreduce-8B auto/baseline = "
              "%.2fx, bcast-1MiB auto/baseline = %.2fx\n",
              allreduce_speedup_64, bcast_speedup_64);

  if (json_path) {
    FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"hierarchical_collectives\",\n"
                    "  \"unit\": \"ns\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"platform\": \"%s\", \"workload\": \"%s\", "
                   "\"images\": %d, \"baseline\": %lld, \"binomial\": %lld, "
                   "\"flat\": %lld, \"auto\": %lld}%s\n",
                   r.platform.c_str(), r.workload.c_str(), r.images,
                   static_cast<long long>(r.t[0]),
                   static_cast<long long>(r.t[1]),
                   static_cast<long long>(r.t[2]),
                   static_cast<long long>(r.t[3]),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"allreduce8_speedup_64\": %.3f,\n"
                 "  \"bcast_1m_speedup_64\": %.3f\n}\n",
                 allreduce_speedup_64, bcast_speedup_64);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
