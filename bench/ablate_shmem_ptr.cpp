// Ablation (§VII future work, implemented here): converting intra-node
// co-indexed accesses into direct load/store through shmem_ptr.
//
// Workload: every image updates its left and right ring neighbors' halo
// cells; with 16 images per node most transfers are intra-node. Compares
// the ordinary putmem path against the shmem_ptr direct path.
#include <cstdio>

#include "apps/driver.hpp"
#include "caf/shmem_conduit.hpp"

namespace {

sim::Time run_ring(bool direct, int images) {
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kXC30, 2 << 20);
  auto* conduit = dynamic_cast<caf::ShmemConduit*>(&stack.rt().conduit());
  conduit->set_intra_node_direct(direct);
  return stack.run([&](caf::Runtime& rt) {
    auto x = caf::make_coarray<double>(rt, {512});
    rt.sync_all();
    const int me = rt.this_image();
    const int n = rt.num_images();
    std::vector<double> halo(64, me * 1.0);
    for (int iter = 0; iter < 20; ++iter) {
      x.put_contiguous(me % n + 1, halo.data(), 64, 0);
      x.put_contiguous((me + n - 2) % n + 1, halo.data(), 64, 128);
      rt.sync_all();
    }
  });
}

}  // namespace

int main() {
  std::printf("=== Ablation: shmem_ptr intra-node direct load/store (§VII) ===\n\n");
  std::printf("%-8s %18s %18s %10s\n", "images", "putmem path", "shmem_ptr path",
              "speedup");
  for (int images : {4, 16, 32, 64}) {
    const sim::Time plain = run_ring(false, images);
    const sim::Time direct = run_ring(true, images);
    std::printf("%-8d %18s %18s %9.2fx\n", images,
                sim::format_time(plain).c_str(),
                sim::format_time(direct).c_str(),
                static_cast<double>(plain) / static_cast<double>(direct));
  }
  std::printf("\nWith 16 images per node, ring-neighbor traffic is almost\n"
              "entirely intra-node, so the direct path removes the library\n"
              "put overhead and NIC loopback entirely.\n");
  return 0;
}
