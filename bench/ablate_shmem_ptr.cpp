// Ablation (§VII future work, implemented here): converting intra-node
// co-indexed accesses into direct load/store through shmem_ptr, and the
// node-local shared-segment transport that generalizes it.
//
// Three panels:
//   halo ring      — every image updates its ring neighbors' halo cells;
//                    with 16+ images per node most transfers are
//                    intra-node. putmem path vs shmem_ptr direct path.
//   allreduce-8B   — one-node scalar co_sum: fabric path vs shmem_ptr
//                    direct vs the node transport's SPSC rings (the ring
//                    carries the flag puts the reduction tree spins on).
//   lock handoff   — all-images MCS lock storm, per-handoff time on the
//                    same three arms.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/driver.hpp"
#include "caf/shmem_conduit.hpp"

namespace {

enum class Arm { kFabric, kShmemPtr, kNodeRing };

const char* arm_name(Arm a) {
  switch (a) {
    case Arm::kFabric: return "fabric";
    case Arm::kShmemPtr: return "shmem_ptr";
    case Arm::kNodeRing: return "node-ring";
  }
  return "?";
}

caf::Options arm_opts(Arm arm) {
  caf::Options opts;
  opts.node.enabled = arm == Arm::kNodeRing;
  return opts;
}

void apply_arm(driver::Stack& stack, Arm arm) {
  auto* conduit = dynamic_cast<caf::ShmemConduit*>(&stack.rt().conduit());
  conduit->set_intra_node_direct(arm == Arm::kShmemPtr);
}

sim::Time run_ring(bool direct, int images) {
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kXC30, 2 << 20);
  auto* conduit = dynamic_cast<caf::ShmemConduit*>(&stack.rt().conduit());
  conduit->set_intra_node_direct(direct);
  return stack.run([&](caf::Runtime& rt) {
    auto x = caf::make_coarray<double>(rt, {512});
    rt.sync_all();
    const int me = rt.this_image();
    const int n = rt.num_images();
    std::vector<double> halo(64, me * 1.0);
    for (int iter = 0; iter < 20; ++iter) {
      x.put_contiguous(me % n + 1, halo.data(), 64, 0);
      x.put_contiguous((me + n - 2) % n + 1, halo.data(), 64, 128);
      rt.sync_all();
    }
  });
}

/// Worst-image time of 32 one-node 8-byte co_sum rounds.
sim::Time run_allreduce(Arm arm, int images) {
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kXC30, 2 << 20, arm_opts(arm));
  apply_arm(stack, arm);
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(images), 0);
  stack.run([&](caf::Runtime& rt) {
    rt.sync_all();
    const sim::Time t0 = sim::Engine::current()->now();
    for (int r = 0; r < 32; ++r) {
      std::int64_t x = rt.this_image();
      rt.co_sum(&x, 1);
    }
    elapsed[static_cast<std::size_t>(rt.this_image() - 1)] =
        sim::Engine::current()->now() - t0;
  });
  sim::Time worst = 1;
  for (const sim::Time t : elapsed) worst = std::max(worst, t);
  return worst;
}

/// Mean per-handoff time of an all-images MCS lock storm.
sim::Time run_lock_handoff(Arm arm, int images) {
  constexpr int kRounds = 8;
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kXC30, 2 << 20, arm_opts(arm));
  apply_arm(stack, arm);
  const sim::Time total = stack.run([&](caf::Runtime& rt) {
    caf::CoLock lck = rt.make_lock();
    for (int r = 0; r < kRounds; ++r) {
      rt.lock(lck, 1);
      rt.unlock(lck, 1);
    }
    rt.sync_all();
  });
  return std::max<sim::Time>(1, total / (images * kRounds));
}

}  // namespace

int main() {
  std::printf("=== Ablation: shmem_ptr intra-node direct load/store (§VII) ===\n\n");
  std::printf("%-8s %18s %18s %10s\n", "images", "putmem path", "shmem_ptr path",
              "speedup");
  for (int images : {4, 16, 32, 64}) {
    const sim::Time plain = run_ring(false, images);
    const sim::Time direct = run_ring(true, images);
    std::printf("%-8d %18s %18s %9.2fx\n", images,
                sim::format_time(plain).c_str(),
                sim::format_time(direct).c_str(),
                static_cast<double>(plain) / static_cast<double>(direct));
  }
  std::printf("\nWith 16 images per node, ring-neighbor traffic is almost\n"
              "entirely intra-node, so the direct path removes the library\n"
              "put overhead and NIC loopback entirely.\n\n");

  constexpr Arm kArms[] = {Arm::kFabric, Arm::kShmemPtr, Arm::kNodeRing};
  std::printf("=== Node-local allreduce-8B (one XC30 node, 24 images) ===\n\n");
  std::printf("%-12s %14s %10s\n", "arm", "worst image", "vs fabric");
  sim::Time base = 0;
  for (Arm a : kArms) {
    const sim::Time t = run_allreduce(a, 24);
    if (a == Arm::kFabric) base = t;
    std::printf("%-12s %14s %9.2fx\n", arm_name(a),
                sim::format_time(t).c_str(),
                static_cast<double>(base) / static_cast<double>(t));
  }

  std::printf("\n=== MCS lock handoff (one XC30 node, 24 images) ===\n\n");
  std::printf("%-12s %14s %10s\n", "arm", "per handoff", "vs fabric");
  for (Arm a : kArms) {
    const sim::Time t = run_lock_handoff(a, 24);
    if (a == Arm::kFabric) base = t;
    std::printf("%-12s %14s %9.2fx\n", arm_name(a),
                sim::format_time(t).c_str(),
                static_cast<double>(base) / static_cast<double>(t));
  }

  std::printf(
      "\nReading: shmem_ptr posts the best allreduce number because it is an\n"
      "idealization — a raw memcpy with no store-visibility or notification\n"
      "cost, available only on the SHMEM conduit. The node transport prices\n"
      "the same traffic honestly (slot writes, cross-socket visibility, pop\n"
      "costs) yet still beats the fabric 3x, and it carries atomics too,\n"
      "which shmem_ptr leaves on the fabric loopback — hence the lock\n"
      "handoff column, where shmem_ptr barely moves (1.2x) and the rings\n"
      "win 2x+ (see ablate_intranode for both machines + placement sweep).\n");
  return 0;
}
