// google-benchmark microbenchmarks of the simulation substrate itself:
// event-queue throughput, fiber context-switch cost, allocator hot paths,
// and end-to-end simulated-barrier cost. These are *host* performance
// numbers (how fast the simulator runs), not simulated results.
//
// `--json PATH` switches to the CI gate mode: fixed-shape measurements of
// the engine core (queue events/sec, fiber switches/sec, steady-state heap
// traffic) plus the two 16k-image at-scale smokes (barrier storm, Himeno),
// written as BENCH_engine.json and compared against the checked-in baseline
// by scripts/bench_diff.py. The simulated metrics (event counts, MFLOPS)
// double as determinism checks; the wall times gate host throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "apps/driver.hpp"
#include "apps/himeno.hpp"
#include "net/profiles.hpp"
#include "shmem/heap.hpp"
#include "shmem/world.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < n; ++i) {
      eng.schedule(i, [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1'000)->Arg(100'000);

void BM_FiberSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng(16 * 1024);
    eng.spawn(0, [] {
      for (int i = 0; i < 1'000; ++i) sim::this_pe::advance(1);
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1'000 * 2);  // out + in
}
BENCHMARK(BM_FiberSwitch);

void BM_AllocatorChurn(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) {
    shmem::FreeListAllocator a(0, 1 << 22);
    std::vector<std::uint64_t> live;
    for (int i = 0; i < 2'000; ++i) {
      if (live.empty() || rng.below(100) < 60) {
        if (auto off = a.allocate(16 + rng.below(2048))) live.push_back(*off);
      } else {
        const std::size_t k = rng.below(live.size());
        a.release(live[k]);
        live[k] = live.back();
        live.pop_back();
      }
    }
    for (auto off : live) a.release(off);
    benchmark::DoNotOptimize(a.bytes_in_use());
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_AllocatorChurn);

void BM_SimulatedBarrier(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng(32 * 1024);
    net::Fabric fabric(net::machine_profile(net::Machine::kXC30), pes);
    shmem::World world(eng, fabric,
                       net::sw_profile(net::Library::kShmemCray,
                                       net::Machine::kXC30),
                       512 << 10);
    world.launch([&] {
      for (int i = 0; i < 4; ++i) world.barrier_all();
    });
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * pes * 4);
}
BENCHMARK(BM_SimulatedBarrier)->Arg(16)->Arg(256);

// ---- --json gate mode ----

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct QueueResult {
  double events_per_sec = 0;
  std::uint64_t steady_heap_slabs = 0;  ///< slab mallocs after warm-up
};

QueueResult measure_queue(int n, int reps) {
  QueueResult out;
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    sim::Engine eng;
    for (int i = 0; i < n; ++i) eng.schedule(i, [] {});
    eng.run();
    best_ms = std::min(best_ms, ms_since(t0));
    // Once the thread-local slab cache is warm (first rep), a run must not
    // touch the heap for event storage at all. bench_diff enforces the
    // baseline's 0 exactly.
    if (r > 0) out.steady_heap_slabs += eng.stats().event_slab_allocs;
  }
  out.events_per_sec = 1000.0 * n / best_ms;
  return out;
}

double measure_switches(int n, int reps) {
  double best_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    sim::Engine eng(16 * 1024);
    eng.spawn(0, [n] {
      for (int i = 0; i < n; ++i) sim::this_pe::advance(1);
    });
    eng.run();
    best_ms = std::min(best_ms, ms_since(t0));
  }
  return 1000.0 * (2.0 * n) / best_ms;  // out + in
}

struct StormResult {
  double wall_ms = 0;
  std::uint64_t events = 0;
};

StormResult barrier_storm(int pes, int reps) {
  const auto t0 = Clock::now();
  sim::Engine eng(16 * 1024);
  net::Fabric fabric(net::machine_profile(net::Machine::kXC30), pes);
  shmem::World world(eng, fabric,
                     net::sw_profile(net::Library::kShmemCray,
                                     net::Machine::kXC30),
                     160 << 10);
  world.launch([&] {
    for (int i = 0; i < reps; ++i) world.barrier_all();
  });
  eng.run();
  return {ms_since(t0), eng.events_processed()};
}

struct HimenoResult {
  double wall_ms = 0;
  std::uint64_t events = 0;
  double mflops = 0;
};

HimenoResult himeno_smoke(int images) {
  const auto t0 = Clock::now();
  apps::himeno::Config base;
  base.gx = 32;
  base.gy = 128;
  base.gz = 128;
  base.iters = 1;
  const auto cfg = apps::himeno::decompose(base, images);
  caf::Options opts;
  opts.strided = caf::StridedAlgo::kNaive;
  opts.nonsym_slab_bytes = 64 << 10;
  const std::size_t p_bytes = static_cast<std::size_t>(cfg.gx) *
                              (cfg.gy / cfg.py + 2) * (cfg.gz / cfg.pz + 2) *
                              sizeof(double);
  driver::Stack stack(driver::StackKind::kShmemMvapich, images,
                      net::Machine::kStampede, p_bytes + (1 << 20), opts);
  apps::himeno::Result result{};
  stack.run([&](caf::Runtime& rt) {
    apps::himeno::Solver solver(rt, cfg);
    result = solver.run();
    rt.sync_all();
  });
  return {ms_since(t0), stack.engine().events_processed(), result.mflops};
}

int run_json(const char* path) {
  constexpr int kScale = 16 * 1024;
  const QueueResult q = measure_queue(100'000, 3);
  const double sw = measure_switches(100'000, 3);
  std::printf("queue: %.2fM events/s, %llu steady heap slabs\n",
              q.events_per_sec / 1e6,
              static_cast<unsigned long long>(q.steady_heap_slabs));
  std::printf("fiber: %.2fM switches/s\n", sw / 1e6);
  const StormResult storm = barrier_storm(kScale, 4);
  std::printf("barrier_storm @%d: %.1f ms, %llu events\n", kScale,
              storm.wall_ms, static_cast<unsigned long long>(storm.events));
  const HimenoResult him = himeno_smoke(kScale);
  std::printf("himeno_smoke @%d: %.1f ms, %llu events, %.1f mflops\n", kScale,
              him.wall_ms, static_cast<unsigned long long>(him.events),
              him.mflops);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "\"bench\": \"engine_micro\",\n"
      "\"unit\": \"mixed\",\n"
      "\"higher_is_better\": [\"events_per_sec\", \"switches_per_sec\"],\n"
      "\"queue\": {\"nevents\": 100000, \"events_per_sec\": %.0f, "
      "\"steady_heap_slabs\": %llu},\n"
      "\"fiber\": {\"switches_per_sec\": %.0f},\n"
      "\"barrier_storm\": {\"images\": %d, \"reps\": 4, \"wall_ms\": %.1f, "
      "\"events\": %llu},\n"
      "\"himeno_smoke\": {\"images\": %d, \"wall_ms\": %.1f, "
      "\"events\": %llu, \"mflops\": %.1f}\n"
      "}\n",
      q.events_per_sec, static_cast<unsigned long long>(q.steady_heap_slabs),
      sw, kScale, storm.wall_ms,
      static_cast<unsigned long long>(storm.events), kScale, him.wall_ms,
      static_cast<unsigned long long>(him.events), him.mflops);
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return run_json(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
