// google-benchmark microbenchmarks of the simulation substrate itself:
// event-queue throughput, fiber context-switch cost, allocator hot paths,
// and end-to-end simulated-barrier cost. These are *host* performance
// numbers (how fast the simulator runs), not simulated results.
#include <benchmark/benchmark.h>

#include "net/profiles.hpp"
#include "shmem/heap.hpp"
#include "shmem/world.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < n; ++i) {
      eng.schedule(i, [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1'000)->Arg(100'000);

void BM_FiberSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng(16 * 1024);
    eng.spawn(0, [] {
      for (int i = 0; i < 1'000; ++i) sim::this_pe::advance(1);
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * 1'000 * 2);  // out + in
}
BENCHMARK(BM_FiberSwitch);

void BM_AllocatorChurn(benchmark::State& state) {
  sim::Rng rng(7);
  for (auto _ : state) {
    shmem::FreeListAllocator a(0, 1 << 22);
    std::vector<std::uint64_t> live;
    for (int i = 0; i < 2'000; ++i) {
      if (live.empty() || rng.below(100) < 60) {
        if (auto off = a.allocate(16 + rng.below(2048))) live.push_back(*off);
      } else {
        const std::size_t k = rng.below(live.size());
        a.release(live[k]);
        live[k] = live.back();
        live.pop_back();
      }
    }
    for (auto off : live) a.release(off);
    benchmark::DoNotOptimize(a.bytes_in_use());
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_AllocatorChurn);

void BM_SimulatedBarrier(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng(32 * 1024);
    net::Fabric fabric(net::machine_profile(net::Machine::kXC30), pes);
    shmem::World world(eng, fabric,
                       net::sw_profile(net::Library::kShmemCray,
                                       net::Machine::kXC30),
                       512 << 10);
    world.launch([&] {
      for (int i = 0; i < 4; ++i) world.barrier_all();
    });
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * pes * 4);
}
BENCHMARK(BM_SimulatedBarrier)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
