// Figure 7 (Stampede): CAF contiguous put bandwidth — UHCAF-GASNet vs
// UHCAF-over-MVAPICH2-X-SHMEM, 1 and 16 pairs — and 2-D strided put
// bandwidth — UHCAF-GASNet vs UHCAF naive vs UHCAF 2dim_strided.
//
// Paper shapes to reproduce: UHCAF over MVAPICH2-X SHMEM beats UHCAF over
// GASNet for contiguous puts (~8% avg), and the naive and 2dim_strided
// curves coincide because MVAPICH2-X's shmem_iput is a software loop of
// contiguous puts.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "caf_put_bench.hpp"

using namespace bench;

namespace {

void contiguous_panel(const char* title, int pairs) {
  std::printf("\n-- %s --\n", title);
  print_series_header("bytes",
                      {"UHCAF-GASNet (MB/s)", "UHCAF-MV2X-SHMEM (MB/s)"});
  std::vector<double> gas, shm;
  for (std::size_t bytes : {std::size_t{64}, std::size_t{256},
                            std::size_t{1024}, std::size_t{4096},
                            std::size_t{16384}, std::size_t{65536},
                            std::size_t{262144}, std::size_t{1048576}}) {
    const double g = caf_contig_bw(driver::StackKind::kGasnet,
                                   net::Machine::kStampede, bytes, pairs, 20);
    const double s = caf_contig_bw(driver::StackKind::kShmemMvapich,
                                   net::Machine::kStampede, bytes, pairs, 20);
    gas.push_back(g);
    shm.push_back(s);
    print_row(static_cast<double>(bytes), {g, s});
  }
  std::printf("summary: UHCAF-MV2X-SHMEM vs UHCAF-GASNet improvement "
              "(geomean) = %.0f%%\n",
              (geomean_ratio(shm, gas) - 1.0) * 100.0);
}

void strided_panel(const char* title, int pairs) {
  std::printf("\n-- %s --\n", title);
  print_series_header("stride(ints)",
                      {"UHCAF-GASNet (MB/s)", "UHCAF-MV2X-naive (MB/s)",
                       "UHCAF-MV2X-2dim (MB/s)", "UHCAF-MV2X-agg (MB/s)"});
  const std::int64_t nelems = 1024;
  caf::RmaOptions agg;
  agg.completion = caf::CompletionMode::kDeferred;
  agg.write_combining = true;
  std::vector<double> gas, naive, twodim, aggregated;
  for (std::int64_t stride : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double g =
        caf_strided_bw(driver::StackKind::kGasnet, net::Machine::kStampede,
                       caf::StridedAlgo::kNaive, stride, nelems, pairs);
    const double n =
        caf_strided_bw(driver::StackKind::kShmemMvapich,
                       net::Machine::kStampede, caf::StridedAlgo::kNaive,
                       stride, nelems, pairs);
    const double t =
        caf_strided_bw(driver::StackKind::kShmemMvapich,
                       net::Machine::kStampede, caf::StridedAlgo::kTwoDim,
                       stride, nelems, pairs);
    const double a =
        caf_strided_bw(driver::StackKind::kShmemMvapich,
                       net::Machine::kStampede, caf::StridedAlgo::kAggregate,
                       stride, nelems, pairs, agg);
    gas.push_back(g);
    naive.push_back(n);
    twodim.push_back(t);
    aggregated.push_back(a);
    print_row(static_cast<double>(stride), {g, n, t, a});
  }
  std::printf("summary: naive vs 2dim on MVAPICH2-X (should be ~1.0x) = %.2fx\n",
              geomean_ratio(naive, twodim));
  std::printf("summary: MV2X-SHMEM naive vs GASNet naive = %.2fx\n",
              geomean_ratio(naive, gas));
  std::printf("summary: aggregated vs naive              = %.2fx\n",
              geomean_ratio(aggregated, naive));
}

}  // namespace

int main() {
  std::printf("=== Figure 7: PGAS microbenchmarks on Stampede ===\n");
  contiguous_panel("(a) contiguous put: 1 pair", 1);
  contiguous_panel("(b) contiguous put: 16 pairs", 16);
  strided_panel("(c) strided put: 1 pair", 1);
  strided_panel("(d) strided put: 16 pairs", 16);
  return 0;
}
