// Replicated-DHT serving harness: open-loop Zipf-skewed get/put streams
// against the apps::dhtr::ReplicatedTable with a scripted mid-run primary
// kill (the growth of bench/fig9_dht into an availability benchmark;
// DESIGN.md §4d, EXPERIMENTS.md "Availability under a primary kill").
//
// Every image runs an open-loop client: arrival times are drawn up front
// from a deterministic per-image schedule, so when an operation stalls
// (retransmit exhaustion toward the killed primary, a lock reclaim, a
// suspicion-steered replica read) the backlog shows up as queueing delay in
// the recorded latency, exactly like a saturated serving system. Keys are
// rank-mapped so the Zipf head lands on the victim's shard — the kill hits
// the hottest primary at peak traffic.
//
// Reported per machine (xc30 = Cray-SHMEM conduit, stampede = MVAPICH2-X):
//   * get/put p50/p99/p999 from the obs log2 histograms (Hist::quantile);
//   * pre-kill p99 vs the worst 50us post-kill window, and the p99
//     recovery time: how long after the kill windowed p99 stays above
//     3x the pre-kill baseline (bounded by the declaration budget);
//   * zero-lost-acked audit: per-key acknowledged increments (recorded by
//     the clients, the victim's included — an ack precedes the fence
//     completing on every surviving owner) compared against
//     replica-fallback reads after anti-entropy quiesces;
//   * determinism: the whole scenario runs twice and the sample/ledger/
//     declaration hash must match byte for byte.
//
// `--json PATH` writes BENCH_dht_serve.json (gated by scripts/bench_diff.py
// in ci.sh); `--smoke` runs the bounded CI leg; `--machine xc30|stampede`
// restricts the profile. Exit status is nonzero if any availability
// invariant (lost ack, unbounded recovery, leftover replication debt,
// nondeterminism) is violated — the harness is self-checking.
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/dht_replicated.hpp"
#include "apps/driver.hpp"
#include "net/fault.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace {

constexpr std::uint64_t kSeed = 0xD47;
constexpr int kVictim0 = 3;  // PE 3 = image 4 = initial primary of shard 3
constexpr sim::Time kWindowNs = 50'000;
constexpr sim::Time kRecoveryBoundNs = 400'000;

int g_failures = 0;

void check(bool ok, const char* machine, const char* what) {
  if (!ok) {
    std::printf("FAIL [%s]: %s\n", machine, what);
    ++g_failures;
  }
}

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 1099511628211ULL;
}

struct Profile {
  const char* name;
  driver::StackKind kind;
  net::Machine machine;
  int images() const {
    return net::machine_profile(machine).cores_per_node + 2;
  }
};

constexpr Profile kProfiles[] = {
    {"xc30", driver::StackKind::kShmemCray, net::Machine::kXC30},
    {"stampede", driver::StackKind::kShmemMvapich, net::Machine::kStampede},
};

struct Shape {
  int images = 0;
  int ops = 0;            // per image
  sim::Time period = 0;   // open-loop inter-arrival base (ns)
  sim::Time jitter = 0;   // uniform extra inter-arrival (ns)
  sim::Time kill_at = 0;
  std::int64_t total_keys = 0;
  apps::dhtr::Config cfg;
  std::vector<double> cdf;  // Zipf(s=1.0) CDF over key ranks
};

Shape make_shape(const Profile& prof, bool smoke) {
  Shape sh;
  sh.images = prof.images();
  sh.ops = smoke ? 48 : 160;
  // Per-machine rate: keep the hot shard's stripe lock below saturation
  // (Stampede's MVAPICH put path is ~2x the XC30 cost), so pre-kill latency
  // reflects service time and the kill is the only latency event. The kill
  // lands a third of the way into the schedule — mid-stream, peak traffic.
  sh.period = prof.machine == net::Machine::kStampede ? 120'000 : 80'000;
  sh.jitter = sh.period / 2;
  sh.kill_at = static_cast<sim::Time>(sh.ops) * (sh.period + sh.jitter / 2) / 3;
  sh.cfg.buckets_per_image = 16;
  sh.cfg.replication = 2;
  sh.cfg.locks_per_image = 8;
  sh.cfg.compute_ns = 200;
  sh.total_keys =
      sh.cfg.buckets_per_image * static_cast<std::int64_t>(sh.images);
  sh.cdf.resize(static_cast<std::size_t>(sh.total_keys));
  double mass = 0.0;
  for (std::size_t r = 0; r < sh.cdf.size(); ++r) {
    mass += 1.0 / std::pow(static_cast<double>(r + 1), 1.0);
    sh.cdf[r] = mass;
  }
  for (double& c : sh.cdf) c /= mass;
  sh.cdf.back() = 1.0;
  return sh;
}

/// Rank r in Zipf popularity order -> key. Rank 0 starts on the victim's
/// shard so the hottest keys lose their primary mid-run.
std::int64_t key_of_rank(const Shape& sh, std::size_t rank) {
  return (kVictim0 * sh.cfg.buckets_per_image +
          static_cast<std::int64_t>(rank)) %
         sh.total_keys;
}

struct Sample {
  sim::Time arrival;
  sim::Time lat;
  bool put;
  /// The op took a failure path (retry, lock reclaim, replica fallback,
  /// re-fence) or was queued behind one on the same client — i.e. its
  /// latency is attributable to the kill, not to an ordinary service tail.
  bool affected;
};

struct ServeResult {
  bool completed = false;
  bool victim_declared = false;
  std::vector<std::vector<Sample>> samples;       // per 0-based image
  std::vector<std::vector<std::int64_t>> acked;   // per 0-based image, key
  std::vector<sim::PeFailure> declared;
  std::int64_t lost = 0;
  std::int64_t verified_keys = 0;
  int under_replicated = 0;
  std::uint64_t writes = 0, writes_acked = 0, read_fallbacks = 0,
                lock_reclaims = 0, ae_pulls = 0, promotions = 0;

  std::uint64_t hash() const {
    std::uint64_t h = 14695981039346656037ULL;
    for (const auto& row : samples) {
      for (const Sample& s : row) {
        h = fnv(h, static_cast<std::uint64_t>(s.arrival));
        h = fnv(h, static_cast<std::uint64_t>(s.lat));
        h = fnv(h, (s.put ? 1u : 0u) | (s.affected ? 2u : 0u));
      }
    }
    for (const auto& row : acked) {
      for (const std::int64_t v : row) {
        h = fnv(h, static_cast<std::uint64_t>(v));
      }
    }
    for (const auto& f : declared) {
      h = fnv(h, static_cast<std::uint64_t>(f.pe));
      h = fnv(h, static_cast<std::uint64_t>(f.at));
    }
    h = fnv(h, static_cast<std::uint64_t>(lost));
    h = fnv(h, writes_acked);
    h = fnv(h, promotions);
    return h;
  }
};

std::uint64_t repl_sum(int images, const char* name) {
  std::uint64_t s = 0;
  for (int pe = 0; pe < images; ++pe) s += obs::registry().value(pe, name);
  return s;
}

ServeResult run_serve(const Profile& prof, const Shape& sh) {
  ServeResult res;
  res.samples.assign(static_cast<std::size_t>(sh.images), {});
  res.acked.assign(static_cast<std::size_t>(sh.images),
                   std::vector<std::int64_t>(
                       static_cast<std::size_t>(sh.total_keys), 0));
  obs::registry().clear();

  net::FaultPlan plan;
  plan.retry.max_retransmits = 5;
  plan.retry.rto_min = 2'000;
  plan.retry.rto_max = 20'000;
  // Fast detector so the failover happens while the stream is still hot
  // (same tunables the fault-label regressions pin down).
  plan.fd.heartbeat_period = 10'000;
  plan.fd.miss_threshold = 3;
  plan.fd.suspicion_grace = 50'000;
  plan.kill_pe(kVictim0, sh.kill_at);

  driver::Stack stack(prof.kind, sh.images, prof.machine, 8 << 20, {}, plan);
  try {
    stack.run([&](caf::Runtime& rt) {
      sim::Engine& eng = *sim::Engine::current();
      const int me = rt.this_image();
      const auto me0 = static_cast<std::size_t>(me - 1);
      apps::dhtr::ReplicatedTable table(rt, sh.cfg);
      auto& get_h = obs::registry().hist(me - 1, "serve.get_ns");
      auto& put_h = obs::registry().hist(me - 1, "serve.put_ns");
      sim::Rng rng(kSeed * 1'000'003ULL +
                   static_cast<std::uint64_t>(me) * 7'919ULL);
      // Failure-path evidence for *this image*: these counters only move
      // when an op hits a dead or suspect owner (or cleans up after one).
      const auto fail_evidence = [&] {
        const auto& reg = obs::registry();
        const int pe = me - 1;
        return reg.value(pe, "repl.write_retries") +
               reg.value(pe, "repl.write_failures") +
               reg.value(pe, "repl.lock_reclaims") +
               reg.value(pe, "repl.chain_refences") +
               reg.value(pe, "repl.read_fallbacks") +
               reg.value(pe, "repl.read_stale_skips") +
               reg.value(pe, "repl.read_failures");
      };
      bool lagging = false;
      // Open-loop client: the arrival clock advances by the schedule alone;
      // a slow operation makes later ones start late, and that queueing
      // delay is charged to their latency. A random phase offset plus wide
      // jitter decorrelates the images — without it every client fires at
      // the hot shard in lockstep waves and steady-state convoys drown the
      // failover signal.
      sim::Time arrival =
          eng.sim_now() +
          static_cast<sim::Time>(rng.below(static_cast<std::uint64_t>(sh.period)));
      for (int k = 0; k < sh.ops; ++k) {
        arrival += sh.period + static_cast<sim::Time>(
                                   rng.below(static_cast<std::uint64_t>(sh.jitter)));
        const bool is_put = rng.below(100) < 35;
        const double u = rng.uniform();
        std::size_t rank = static_cast<std::size_t>(
            std::lower_bound(sh.cdf.begin(), sh.cdf.end(), u) -
            sh.cdf.begin());
        if (rank >= sh.cdf.size()) rank = sh.cdf.size() - 1;
        const std::int64_t key = key_of_rank(sh, rank);
        if (eng.sim_now() < arrival) {
          eng.advance(arrival - eng.sim_now());
          lagging = false;  // backlog drained; client is on schedule again
        }
        const std::uint64_t ev0 = fail_evidence();
        if (is_put) {
          // The ledger entry lands the instant the ack does: the victim's
          // own acknowledged writes stay auditable after its fiber dies.
          if (table.put_inc(key)) {
            ++res.acked[me0][static_cast<std::size_t>(key)];
          }
        } else {
          std::int64_t v = 0;
          (void)table.get_count(key, &v);
        }
        const sim::Time lat = eng.sim_now() - arrival;
        const bool affected = fail_evidence() != ev0 || lagging;
        if (affected) lagging = true;
        res.samples[me0].push_back({arrival, lat, is_put, affected});
        (is_put ? put_h : get_h).record(lat);
      }
      // Quiesce: fix the global acked ledger, let the declaration land,
      // drain re-replication, then audit (survivors only past here).
      (void)rt.sync_all_stat();
      for (int i = 0; i < 800 && !eng.pe_declared(kVictim0); ++i) {
        eng.advance(10'000);
      }
      for (int round = 0; round < 64; ++round) {
        table.store().anti_entropy();
        if (table.store().under_replicated_local() == 0) break;
        eng.advance(20'000);
      }
      res.under_replicated += table.store().under_replicated_local();
      (void)rt.sync_all_stat();
      if (me == 1) {
        for (std::int64_t key = 0; key < sh.total_keys; ++key) {
          std::int64_t total = 0;
          for (const auto& row : res.acked) {
            total += row[static_cast<std::size_t>(key)];
          }
          if (total == 0) continue;
          ++res.verified_keys;
          std::int64_t count = 0;
          if (!table.get_count(key, &count)) {
            res.lost += total;
          } else if (count < total) {
            res.lost += total - count;
          }
        }
      }
    });
    res.completed = true;
  } catch (const std::exception& e) {
    std::printf("  serve run aborted: %s\n", e.what());
  }
  res.declared = stack.engine().declared_failures();
  res.victim_declared = stack.engine().pe_declared(kVictim0);
  res.writes = repl_sum(sh.images, "repl.writes");
  res.writes_acked = repl_sum(sh.images, "repl.writes_acked");
  res.read_fallbacks = repl_sum(sh.images, "repl.read_fallbacks");
  res.lock_reclaims = repl_sum(sh.images, "repl.lock_reclaims");
  res.ae_pulls = repl_sum(sh.images, "repl.ae_pulls");
  // Every image's map observes the same promotion sequence; report one
  // image's count rather than the survivor-weighted sum.
  res.promotions = obs::registry().value(0, "repl.promotions");
  return res;
}

struct Recovery {
  std::uint64_t pre_p99 = 0;
  std::uint64_t steady_window_p99 = 0;  ///< worst pre-kill 50us window
  std::uint64_t post_steady_window_p99 = 0;  ///< settled post-kill envelope
  std::uint64_t worst_window_p99 = 0;   ///< worst post-kill 50us window
  std::uint64_t affected_ops = 0;       ///< ops that took a failure path
  sim::Time recovery_ns = 0;
};

/// Windows all samples (by arrival) into 50us buckets around the kill.
///
/// Failover changes the equilibrium, not just the transient: the node-local
/// replica walk put every shard's second copy on the small spill node, so
/// after promotion the hot shard is served by a remote primary and its p99
/// settles *higher* than before the kill (the post-steady envelope, taken
/// from the last third of the post-kill windows). Recovery time is how long
/// windowed p99 stays above 1.5x the larger of the two steady envelopes in
/// windows containing failure-affected ops — the failover spike (retransmit
/// exhaustion, lock handoff, promotion) must decay to the new equilibrium
/// within the declaration budget. Windows whose tail comes purely from
/// ordinary service-time outliers (no affected op) never extend recovery.
Recovery analyze_recovery(const ServeResult& res, sim::Time kill_at) {
  Recovery rec;
  obs::Hist pre;
  std::vector<obs::Hist> pre_win, post_win;
  std::vector<std::uint32_t> post_affected;
  for (const auto& row : res.samples) {
    for (const Sample& s : row) {
      auto& win = s.arrival < kill_at ? pre_win : post_win;
      const sim::Time rel =
          s.arrival < kill_at ? s.arrival : s.arrival - kill_at;
      const auto idx = static_cast<std::size_t>(rel / kWindowNs);
      if (idx >= win.size()) win.resize(idx + 1);
      win[idx].record(s.lat);
      if (s.arrival < kill_at) {
        pre.record(s.lat);
      } else {
        if (idx >= post_affected.size()) post_affected.resize(idx + 1, 0);
        if (s.affected) {
          ++post_affected[idx];
          ++rec.affected_ops;
        }
      }
    }
  }
  rec.pre_p99 = pre.quantile(0.99);
  for (const auto& h : pre_win) {
    if (h.count() >= 5) {
      rec.steady_window_p99 =
          std::max(rec.steady_window_p99, h.quantile(0.99));
    }
  }
  for (std::size_t i = post_win.size() - post_win.size() / 3;
       i < post_win.size(); ++i) {
    if (post_win[i].count() >= 5) {
      rec.post_steady_window_p99 =
          std::max(rec.post_steady_window_p99, post_win[i].quantile(0.99));
    }
  }
  const std::uint64_t steady =
      std::max(rec.steady_window_p99, rec.post_steady_window_p99);
  const std::uint64_t threshold =
      std::max<std::uint64_t>(steady + steady / 2, 20'000);
  std::ptrdiff_t last_bad = -1;
  for (std::size_t i = 0; i < post_win.size(); ++i) {
    if (post_win[i].count() == 0) continue;
    const std::uint64_t p = post_win[i].quantile(0.99);
    rec.worst_window_p99 = std::max(rec.worst_window_p99, p);
    if (post_win[i].count() >= 5 && p > threshold &&
        post_affected[i] > 0) {
      last_bad = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (last_bad >= 0) {
    rec.recovery_ns = (static_cast<sim::Time>(last_bad) + 1) * kWindowNs;
  }
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  const char* only_machine = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--machine") == 0 && i + 1 < argc) {
      only_machine = argv[i + 1];
    }
  }

  std::printf("=== dht_serve: replicated DHT under a scripted primary kill"
              " ===\n");
  std::string rows_json;
  bool first_row = true;
  for (const Profile& prof : kProfiles) {
    if (only_machine != nullptr &&
        std::strcmp(only_machine, prof.name) != 0) {
      continue;
    }
    const Shape sh = make_shape(prof, smoke);
    std::printf("\n[%s] %s: %d images, %d ops/image, kill pe %d (image %d,"
                " shard %d primary) at %.0fus\n",
                prof.name, driver::name(prof.kind), sh.images, sh.ops,
                kVictim0, kVictim0 + 1, kVictim0,
                static_cast<double>(sh.kill_at) / 1000.0);
    const ServeResult a = run_serve(prof, sh);
    const ServeResult b = run_serve(prof, sh);  // determinism rerun
    const bool deterministic = a.hash() == b.hash();

    check(a.completed && b.completed, prof.name, "serve runs terminate");
    check(a.victim_declared, prof.name, "victim declared by run end");
    check(a.lost == 0, prof.name, "zero lost acknowledged writes");
    check(a.under_replicated == 0, prof.name,
          "anti-entropy restored the replication factor");
    check(a.promotions >= 1, prof.name, "failover promoted a replica");
    check(a.verified_keys > 0, prof.name, "audit covered written keys");
    check(deterministic, prof.name, "same-seed rerun is byte-identical");

    // Global quantiles from the per-image log2 histograms, merged by
    // replaying the samples into one Hist per op kind.
    obs::Hist get_h, put_h;
    for (const auto& row : a.samples) {
      for (const Sample& s : row) (s.put ? put_h : get_h).record(s.lat);
    }
    const Recovery rec = analyze_recovery(a, sh.kill_at);
    check(rec.recovery_ns <= kRecoveryBoundNs, prof.name,
          "p99 recovery bounded by the declaration budget");

    const double acked_ratio =
        a.writes > 0
            ? static_cast<double>(a.writes_acked) / static_cast<double>(a.writes)
            : 0.0;
    std::printf("  get  p50/p99/p999: %" PRIu64 " / %" PRIu64 " / %" PRIu64
                " ns  (%" PRIu64 " ops)\n",
                get_h.quantile(0.50), get_h.quantile(0.99),
                get_h.quantile(0.999), get_h.count());
    std::printf("  put  p50/p99/p999: %" PRIu64 " / %" PRIu64 " / %" PRIu64
                " ns  (%" PRIu64 " ops)\n",
                put_h.quantile(0.50), put_h.quantile(0.99),
                put_h.quantile(0.999), put_h.count());
    std::printf("  window p99: pre-kill %" PRIu64 "ns, post-kill settled %"
                PRIu64 "ns, failover spike %" PRIu64
                "ns; p99 recovery %.0fus after kill (%" PRIu64
                " failure-affected ops)\n",
                rec.steady_window_p99, rec.post_steady_window_p99,
                rec.worst_window_p99,
                static_cast<double>(rec.recovery_ns) / 1000.0,
                rec.affected_ops);
    std::printf("  audit: %" PRId64 " keys, lost acked %" PRId64
                "; acked %.4f of %" PRIu64 " writes; promotions %" PRIu64
                ", ae_pulls %" PRIu64 ", read_fallbacks %" PRIu64
                ", lock_reclaims %" PRIu64 "\n",
                a.verified_keys, a.lost, acked_ratio, a.writes, a.promotions,
                a.ae_pulls, a.read_fallbacks, a.lock_reclaims);
    std::printf("  determinism: %s\n", deterministic ? "ok" : "MISMATCH");

    char row[1024];
    std::snprintf(
        row, sizeof row,
        "%s    {\"machine\": \"%s\", \"images\": %d, \"reps\": %d,\n"
        "     \"get_p50_ns\": %" PRIu64 ", \"get_p99_ns\": %" PRIu64
        ", \"get_p999_ns\": %" PRIu64 ",\n"
        "     \"put_p50_ns\": %" PRIu64 ", \"put_p99_ns\": %" PRIu64
        ", \"put_p999_ns\": %" PRIu64 ",\n"
        "     \"pre_kill_p99_ns\": %" PRIu64
        ", \"steady_window_p99_ns\": %" PRIu64
        ", \"post_steady_window_p99_ns\": %" PRIu64
        ", \"worst_window_p99_ns\": %" PRIu64
        ", \"recovery_p99_ns\": %" PRId64 ",\n"
        "     \"lost_acked\": %" PRId64 ", \"determinism_mismatch\": %d,\n"
        "     \"under_replicated_final\": %d, \"acked_ratio\": %.6f,\n"
        "     \"promotions\": %" PRIu64 ", \"ae_pulls\": %" PRIu64
        ", \"read_fallbacks\": %" PRIu64 ", \"lock_reclaims\": %" PRIu64 "}",
        first_row ? "" : ",\n", prof.name, sh.images, sh.ops,
        get_h.quantile(0.50), get_h.quantile(0.99), get_h.quantile(0.999),
        put_h.quantile(0.50), put_h.quantile(0.99), put_h.quantile(0.999),
        rec.pre_p99, rec.steady_window_p99, rec.post_steady_window_p99,
        rec.worst_window_p99, static_cast<std::int64_t>(rec.recovery_ns),
        a.lost,
        deterministic ? 0 : 1, a.under_replicated, acked_ratio, a.promotions,
        a.ae_pulls, a.read_fallbacks, a.lock_reclaims);
    rows_json += row;
    first_row = false;
  }

  if (json_path != nullptr) {
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"dht_serve\",\n  \"unit\": \"ns\",\n"
                 "  \"seed\": %" PRIu64 ",\n  \"machines\": [\n%s\n  ]\n}\n",
                 kSeed, rows_json.c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  if (g_failures > 0) {
    std::printf("\nDHT SERVE FAILED: %d invariant violations\n", g_failures);
    return 1;
  }
  std::printf("\nDHT SERVE OK: all availability invariants held\n");
  return 0;
}
