// Fault sweep: the Figure-3 put-bandwidth experiment rerun on a lossy wire.
//
// For each raw library (SHMEM / MPI-3.0 / GASNet) and transfer size, sweep
// message-loss probability through 0%, 0.1%, 1%, and 5%. The reliable-
// delivery layer masks the loss (every run still completes and delivers all
// bytes), but retransmissions and backoff timeouts tax the links, so the
// achieved bandwidth must decrease monotonically with the loss rate. The
// harness checks that invariant and exits non-zero when it is violated
// (a small tolerance absorbs rounding at the lowest rates).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace bench;

namespace {

constexpr double kLossRates[] = {0.0, 0.001, 0.01, 0.05};
constexpr std::size_t kSizes[] = {4'096, 65'536, 262'144};
constexpr int kPairs = 16;
constexpr int kReps = 40;

/// Bandwidth may wobble a hair between adjacent low loss rates (the rng
/// stream shifts every verdict); a >2% *increase* under more loss is a bug.
constexpr double kTolerance = 1.02;

bool sweep(RawLib lib, net::Machine machine) {
  bool ok = true;
  std::printf("\n-- %s --\n", raw_lib_name(lib, machine).c_str());
  std::vector<std::string> cols;
  for (const double p : kLossRates) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "loss %.1f%% (MB/s)", p * 100.0);
    cols.emplace_back(buf);
  }
  print_series_header("bytes", cols);
  for (const std::size_t bytes : kSizes) {
    std::vector<double> bw;
    for (const double p : kLossRates) {
      net::FaultPlan plan;
      plan.with_seed(0xFA11).with_loss(p);
      const net::FaultPlan* arg = p > 0 ? &plan : nullptr;
      bw.push_back(
          run_put_test(lib, machine, bytes, kPairs, kReps, arg).bandwidth_mbs);
    }
    print_row(static_cast<double>(bytes), bw);
    for (std::size_t i = 1; i < bw.size(); ++i) {
      if (bw[i] > bw[i - 1] * kTolerance) {
        std::printf("FAIL: %zu B bandwidth rose from %.2f to %.2f MB/s as "
                    "loss went %.1f%% -> %.1f%%\n",
                    bytes, bw[i - 1], bw[i], kLossRates[i - 1] * 100.0,
                    kLossRates[i] * 100.0);
        ok = false;
      }
    }
    if (bw.back() >= bw.front()) {
      std::printf("FAIL: %zu B bandwidth did not decrease from 0%% to 5%% "
                  "loss (%.2f -> %.2f MB/s)\n",
                  bytes, bw.front(), bw.back());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  std::printf("=== Fault sweep: Figure-3 put bandwidth vs message loss ===\n");
  bool ok = true;
  ok &= sweep(RawLib::kShmem, net::Machine::kXC30);
  ok &= sweep(RawLib::kMpi3, net::Machine::kStampede);
  ok &= sweep(RawLib::kGasnet, net::Machine::kTitan);
  std::printf("\n%s\n", ok ? "PASS: bandwidth decreases monotonically with loss"
                           : "FAIL: monotonicity violated");
  return ok ? 0 : 1;
}
