// Figure 9 (Titan): distributed hash table benchmark — random entry updates
// under coarray locks; execution time vs number of images for Cray-CAF,
// UHCAF-GASNet, and UHCAF-Cray-SHMEM.
//
// Paper shapes to reproduce: UHCAF over Cray SHMEM ~28% faster than
// Cray-CAF and ~18% faster than UHCAF-GASNet.
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "apps/dht_drivers.hpp"
#include "apps/dht_rpc.hpp"
#include "apps/driver.hpp"
#include "bench_util.hpp"
#include "obs/obs.hpp"

namespace {

apps::dht::Config dht_config() {
  apps::dht::Config cfg;
  cfg.buckets_per_image = 64;
  cfg.updates_per_image = 16;
  cfg.locks_per_image = 8;
  cfg.hot_percent = 40;
  cfg.hot_keys = 4;
  return cfg;
}

sim::Time run_uhcaf(driver::StackKind kind, int images,
                    caf::RmaOptions rma = {}) {
  caf::Options opts;
  opts.rma = rma;
  driver::Stack stack(kind, images, net::Machine::kTitan, 2 << 20, opts);
  return stack.run([&](caf::Runtime& rt) {
    auto table = apps::dht::make_caf_table(rt, dht_config());
    rt.sync_all();
    table.run_updates();
    rt.sync_all();
  });
}

sim::Time run_craycaf(int images) {
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(net::Machine::kTitan), images);
  craycaf::Runtime rt(engine, fabric, 2 << 20, net::Machine::kTitan);
  rt.launch([&] {
    auto table = apps::dht::make_craycaf_table(rt, dht_config());
    rt.sync_all();
    table.run_updates();
    rt.sync_all();
  });
  engine.run();
  return engine.sim_now();
}

/// The same workload re-expressed as asynchronous remote execution
/// (apps/dht_rpc.hpp): the update ships to the bucket's owner as caf::rpc
/// instead of lock / get / modify / put. Small mailbox rings so the
/// per-pair slot area still fits the 2 MB heap at 1024 images.
sim::Time run_uhcaf_rpc(driver::StackKind kind, int images) {
  caf::Options opts;
  opts.rpc.enabled = true;
  opts.rpc.slots_per_pair = 4;
  opts.rpc.slot_bytes = 128;
  driver::Stack stack(kind, images, net::Machine::kTitan, 2 << 20, opts);
  return stack.run([&](caf::Runtime& rt) {
    auto table = apps::dhtrpc::make_rpc_table(rt, dht_config());
    rt.sync_all();
    table.run_updates();
    rt.sync_all();
  });
}

// --rpc: the Figure 9 series with the async-RPC design head-to-head
// against the one-sided lock design over the same conduit (UHCAF over
// Cray SHMEM). The table contents are bit-identical between the two arms
// (tests/caf/test_rpc.cpp); this prints where the time goes instead.
int run_rpc_arm() {
  std::printf("=== Figure 9 extension: async-RPC DHT vs one-sided ===\n");
  std::printf("%d random updates per image, UHCAF-Cray-SHMEM\n\n",
              dht_config().updates_per_image);

  // Critical-path attribution first: one traced run of each design at 32
  // images, so the series below can be read against where the time goes
  // (one-sided: lock acquire + get/put under the lock; RPC: rpc.* spans).
  obs::init_from_env();
  if (!obs::enabled()) obs::enable({});
  {
    caf::Options opts;
    opts.trace = true;
    driver::Stack stack(driver::StackKind::kShmemCray, 32,
                        net::Machine::kTitan, 2 << 20, opts);
    stack.run([&](caf::Runtime& rt) {
      auto table = apps::dht::make_caf_table(rt, dht_config());
      rt.sync_all();
      obs::phase("updates");
      table.run_updates();
      obs::phase("drain");
      rt.sync_all();
    });
    bench::obs_report("one-sided locks, 32 images");
  }
  {
    caf::Options opts;
    opts.trace = true;
    opts.rpc.enabled = true;
    opts.rpc.slots_per_pair = 4;
    opts.rpc.slot_bytes = 128;
    driver::Stack stack(driver::StackKind::kShmemCray, 32,
                        net::Machine::kTitan, 2 << 20, opts);
    stack.run([&](caf::Runtime& rt) {
      auto table = apps::dhtrpc::make_rpc_table(rt, dht_config());
      rt.sync_all();
      obs::phase("updates");
      table.run_updates();
      obs::phase("drain");
      rt.sync_all();
    });
    bench::obs_report("async-RPC, 32 images");
  }
  std::printf("\n");

  bench::print_series_header("images",
                             {"one-sided locks (ms)", "async-RPC (ms)"});
  std::vector<double> onesided, rpc;
  for (int images : {2, 4, 8, 16, 32, 64, 128, 256}) {
    const double s =
        sim::to_ms(run_uhcaf(driver::StackKind::kShmemCray, images));
    const double r =
        sim::to_ms(run_uhcaf_rpc(driver::StackKind::kShmemCray, images));
    onesided.push_back(s);
    rpc.push_back(r);
    bench::print_row(images, {s, r}, "%22.3f");
  }
  std::printf("\nsummary: async-RPC vs one-sided locks = %+.1f%% "
              "(geomean; positive = RPC faster)\n",
              (bench::geomean_ratio(onesided, rpc) - 1.0) * 100.0);
  return 0;
}

// --smoke [N]: one traced UHCAF-Cray-SHMEM run at N images (default 8)
// with obs forced on — the CI observability smoke. With CAF_TRACE=<path>
// set the Chrome trace lands there; either way the per-phase wall-time
// attribution table is printed.
int run_smoke(int images) {
  obs::init_from_env();          // CAF_TRACE=<path> → trace output
  if (!obs::enabled()) obs::enable({});
  caf::Options opts;
  opts.trace = true;
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kTitan, 2 << 20, opts);
  const sim::Time elapsed = stack.run([&](caf::Runtime& rt) {
    auto table = apps::dht::make_caf_table(rt, dht_config());
    rt.sync_all();
    obs::phase("updates");
    table.run_updates();
    obs::phase("drain");
    rt.sync_all();
  });
  std::printf("=== fig9_dht smoke: %d images, UHCAF-Cray-SHMEM ===\n", images);
  std::printf("elapsed: %.3f ms\n", sim::to_ms(elapsed));
  bench::obs_report("fig9_dht smoke");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--rpc") return run_rpc_arm();
    if (std::string_view(argv[i]) == "--smoke") {
      int images = 8;
      if (i + 1 < argc) images = std::atoi(argv[i + 1]);
      return run_smoke(images > 0 ? images : 8);
    }
  }
  std::printf("=== Figure 9: distributed hash table on Titan ===\n");
  std::printf("%d random locked updates per image\n\n",
              dht_config().updates_per_image);
  bench::print_series_header(
      "images", {"Cray-CAF (ms)", "UHCAF-GASNet (ms)", "UHCAF-Cray-SHMEM (ms)",
                 "UHCAF-Cray-nbi (ms)"});
  caf::RmaOptions nbi;
  nbi.completion = caf::CompletionMode::kDeferred;
  nbi.write_combining = true;
  std::vector<double> cray, gasnet, shmem, pipelined;
  for (int images : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double c = sim::to_ms(run_craycaf(images));
    const double g = sim::to_ms(run_uhcaf(driver::StackKind::kGasnet, images));
    const double s =
        sim::to_ms(run_uhcaf(driver::StackKind::kShmemCray, images));
    const double d =
        sim::to_ms(run_uhcaf(driver::StackKind::kShmemCray, images, nbi));
    cray.push_back(c);
    gasnet.push_back(g);
    shmem.push_back(s);
    pipelined.push_back(d);
    bench::print_row(images, {c, g, s, d}, "%22.3f");
  }
  std::printf("\nsummary: UHCAF-Cray-SHMEM faster than Cray-CAF by %.0f%% "
              "(geomean)\n",
              (bench::geomean_ratio(cray, shmem) - 1.0) * 100.0);
  std::printf("summary: UHCAF-Cray-SHMEM faster than UHCAF-GASNet by %.0f%% "
              "(geomean)\n",
              (bench::geomean_ratio(gasnet, shmem) - 1.0) * 100.0);
  std::printf("summary: nbi pipeline vs eager UHCAF-Cray-SHMEM = %.1f%% "
              "(geomean)\n",
              (bench::geomean_ratio(shmem, pipelined) - 1.0) * 100.0);
  return 0;
}
