// Ablation: the nonblocking RMA pipeline, stage by stage.
//
// Three workloads, three pipeline settings each:
//   blocking — the paper's §IV-B translation (eager issue, quiet per
//              statement);
//   nbi      — deferred completion only: nbi issue, per-conduit outstanding
//              tracker, flush at completion points;
//   agg      — nbi plus the write-combining stage: small puts to one image
//              coalesce into scatter messages carved from the managed slab.
//
// Workloads:
//   contig-8B×512  — 512 scalar puts to one partner (DHT-style counter
//                    updates);
//   strided sweep  — one strided statement of 256 runs of N bytes each
//                    (Himeno-halo-like, runs not adjacent remotely);
//   adjacent runs  — a fully contiguous section walked as runs: isolates
//                    the run-coalescing merge (ships as one message).
//
// `--json PATH` additionally writes the series as JSON (the CI bench-smoke
// artifact, BENCH_rma.json).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "caf_put_bench.hpp"

using namespace bench;

namespace {

constexpr net::Machine kMachine = net::Machine::kStampede;
constexpr driver::StackKind kKind = driver::StackKind::kShmemMvapich;

caf::RmaOptions nbi_opts() {
  caf::RmaOptions r;
  r.completion = caf::CompletionMode::kDeferred;
  return r;
}

caf::RmaOptions agg_opts() {
  caf::RmaOptions r = nbi_opts();
  r.write_combining = true;
  return r;
}

/// Contiguous scalar-put stream: `reps` puts of `bytes` to one partner.
double contig_bw(caf::RmaOptions rma, std::size_t bytes, int reps) {
  return caf_contig_bw(kKind, kMachine, bytes, /*pairs=*/1, reps, rma);
}

struct Row {
  std::string workload;
  std::size_t bytes;
  double blocking;
  double nbi;
  double agg;
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  std::printf("=== Ablation: nonblocking RMA pipeline ===\n\n");
  std::vector<Row> rows;

  std::printf("%-24s %14s %14s %14s %10s\n", "workload (MB/s)", "blocking",
              "nbi", "nbi+agg", "agg/blk");
  {
    const double b = contig_bw({}, 8, 512);
    const double n = contig_bw(nbi_opts(), 8, 512);
    const double a = contig_bw(agg_opts(), 8, 512);
    rows.push_back({"contig-8Bx512", 8, b, n, a});
    std::printf("%-24s %14.1f %14.1f %14.1f %9.2fx\n", "contig-8Bx512", b, n,
                a, a / b);
  }
  for (std::size_t bytes : {std::size_t{16}, std::size_t{64},
                            std::size_t{256}, std::size_t{512}}) {
    const double b = caf_smallrun_bw(kKind, kMachine, caf::StridedAlgo::kNaive,
                                     bytes, 256, 1);
    const double n = caf_smallrun_bw(kKind, kMachine, caf::StridedAlgo::kNaive,
                                     bytes, 256, 1, nbi_opts());
    const double a =
        caf_smallrun_bw(kKind, kMachine, caf::StridedAlgo::kAggregate, bytes,
                        256, 1, agg_opts());
    char name[32];
    std::snprintf(name, sizeof name, "strided-%zuBx256", bytes);
    rows.push_back({name, bytes, b, n, a});
    std::printf("%-24s %14.1f %14.1f %14.1f %9.2fx\n", name, b, n, a, a / b);
  }
  {
    // Adjacent runs: stride == run length, so the remote runs touch and the
    // coalescer merges the whole statement into one transfer. The blocking
    // column disables coalescing to show the un-merged cost.
    caf::RmaOptions no_merge;  // eager
    no_merge.run_coalescing = false;
    const double b = caf_strided_bw(kKind, kMachine, caf::StridedAlgo::kNaive,
                                    /*stride=*/1, /*nelems=*/1024, 1,
                                    no_merge);
    const double n = caf_strided_bw(kKind, kMachine, caf::StridedAlgo::kNaive,
                                    1, 1024, 1, nbi_opts());
    const double a = caf_strided_bw(kKind, kMachine, caf::StridedAlgo::kNaive,
                                    1, 1024, 1);  // eager + coalescing
    rows.push_back({"adjacent-4Bx1024", 4, b, n, a});
    std::printf("%-24s %14.1f %14.1f %14.1f %9.2fx   (agg column = run "
                "coalescing)\n",
                "adjacent-4Bx1024", b, n, a, a / b);
  }

  std::vector<double> aggs, blks;
  for (const auto& r : rows) {
    if (r.workload.rfind("strided-", 0) == 0) {
      aggs.push_back(r.agg);
      blks.push_back(r.blocking);
    }
  }
  std::printf("\nsummary: aggregated vs blocking, small strided puts "
              "(geomean) = %.2fx\n",
              geomean_ratio(aggs, blks));

  if (json_path) {
    FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"rma_pipeline\",\n  \"machine\": "
                    "\"stampede\",\n  \"unit\": \"MB/s\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(f,
                   "    {\"workload\": \"%s\", \"bytes\": %zu, "
                   "\"blocking\": %.2f, \"nbi\": %.2f, \"agg\": %.2f}%s\n",
                   r.workload.c_str(), r.bytes, r.blocking, r.nbi, r.agg,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"agg_vs_blocking_geomean\": %.3f\n}\n",
                 geomean_ratio(aggs, blks));
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
