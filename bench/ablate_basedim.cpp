// Ablation (§IV-C / §VII future work): the 2dim_strided base-dimension
// restriction. The paper limits base_dim to the first two dimensions as a
// locality/call-count tradeoff. This harness compares, on sections designed
// so dimension 3 has the most strided elements:
//
//   naive                 — per-element putmem;
//   2dim_strided          — base dim restricted to dims 1-2 (the paper);
//   anydim (hypothetical) — base dim = global argmax over all dims, which
//                           minimizes the call count but walks dim 3 with
//                           huge strides (poor locality: in the model, the
//                           same NIC gather cost, so it shows the pure
//                           call-count upper bound the paper traded away).
#include <cstdio>
#include <numeric>
#include <vector>

#include "apps/driver.hpp"
#include "bench_util.hpp"

namespace {

// A hand-rolled "anydim" variant: one iput along dimension `base` per
// remaining tuple (the generalization the paper deliberately did not take).
sim::Time run_anydim(caf::Runtime& rt, caf::Coarray<int>& x,
                     const caf::SectionDesc& d, int base,
                     const std::vector<int>& src, int dst_image) {
  const sim::Time t0 = sim::Engine::current()->now();
  // Iterate tuples over all dims except `base`.
  std::array<std::int64_t, caf::kMaxDims> idx{};
  std::int64_t tuples = 1;
  for (int dim = 0; dim < d.rank; ++dim) {
    if (dim != base) tuples *= d.count[dim];
  }
  std::array<std::int64_t, caf::kMaxDims> ps{};
  std::int64_t s = 1;
  for (int dim = 0; dim < d.rank; ++dim) {
    ps[dim] = s;
    s *= d.count[dim];
  }
  for (std::int64_t n = 0; n < tuples; ++n) {
    std::int64_t roff = d.first_elem;
    std::int64_t poff = 0;
    for (int dim = 0; dim < d.rank; ++dim) {
      roff += idx[dim] * d.elem_stride[dim];
      poff += idx[dim] * ps[dim];
    }
    rt.conduit().iput(dst_image - 1,
                      x.offset() + static_cast<std::uint64_t>(roff) * sizeof(int),
                      d.elem_stride[base],
                      src.data() + poff, ps[base], sizeof(int),
                      static_cast<std::size_t>(d.count[base]));
    for (int dim = 0; dim < d.rank; ++dim) {
      if (dim == base) continue;
      if (++idx[dim] < d.count[dim]) break;
      idx[dim] = 0;
    }
  }
  rt.conduit().quiet();
  return sim::Engine::current()->now() - t0;
}

}  // namespace

int main() {
  std::printf("=== Ablation: 2dim_strided base-dimension restriction ===\n");
  // Section with counts (4, 8, 64): dim 3 has by far the most elements.
  const caf::Shape shape{64, 64, 128};
  const caf::Section sec{{1, 8, 2}, {1, 16, 2}, {1, 128, 2}};
  std::printf("section counts: 4 x 8 x 64 of a 64x64x128 int coarray\n\n");
  std::printf("%-26s %14s %14s\n", "algorithm", "messages", "time");

  for (auto mode : {0, 1, 2}) {  // 0=naive, 1=2dim, 2=anydim
    caf::Options opts;
    opts.strided =
        mode == 0 ? caf::StridedAlgo::kNaive : caf::StridedAlgo::kTwoDim;
    driver::Stack stack(driver::StackKind::kShmemCray, 18, net::Machine::kXC30,
                        8 << 20, opts);
    sim::Time elapsed = 0;
    std::size_t messages = 0;
    stack.run([&](caf::Runtime& rt) {
      auto x = caf::make_coarray<int>(rt, shape);
      rt.sync_all();
      if (rt.this_image() == 1) {
        const caf::SectionDesc d = describe(shape, sec);
        std::vector<int> src(static_cast<std::size_t>(d.total));
        std::iota(src.begin(), src.end(), 0);
        if (mode < 2) {
          const sim::Time t0 = sim::Engine::current()->now();
          const auto stats = x.put_section(17, sec, src.data());
          elapsed = sim::Engine::current()->now() - t0;
          messages = stats.messages;
        } else {
          elapsed = run_anydim(rt, x, d, /*base=*/2, src, 17);
          messages = static_cast<std::size_t>(d.count[0] * d.count[1]);
        }
      }
      rt.sync_all();
    });
    const char* name = mode == 0 ? "naive" : mode == 1 ? "2dim_strided"
                                                       : "anydim (base=dim3)";
    std::printf("%-26s %14zu %14s\n", name, messages,
                sim::format_time(elapsed).c_str());
  }
  std::printf("\nThe 2dim restriction keeps most of anydim's call-count win;\n"
              "on real hardware anydim's dim-3 strides would additionally\n"
              "defeat the NIC's gather locality (§IV-C, §VII).\n");
  return 0;
}
