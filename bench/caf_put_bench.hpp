// CAF-level put measurement helpers shared by the Figure 6 and Figure 7
// harnesses: contiguous put bandwidth (batched/nbi mode) and 2-D strided put
// bandwidth (per-statement CAF completion), for both the UHCAF stacks and
// the Cray-CAF baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/driver.hpp"
#include "craycaf/craycaf.hpp"

namespace bench {

/// PEs per node for `machine`: the pair benches place senders on node 0 and
/// each sender's partner on node 1, so the boundary must track the machine
/// profile's cores_per_node rather than assume 16.
inline int pair_node_pes(net::Machine machine) {
  return net::machine_profile(machine).cores_per_node;
}

/// Two-node world for the pair benches.
inline int pair_world(net::Machine machine) {
  return 2 * pair_node_pes(machine);
}

/// Contiguous CAF put bandwidth (MB/s): `pairs` senders on node 0 each put
/// `bytes` to their partner on node 1, `reps` statements batched between
/// memory syncs (the microbenchmark's bandwidth mode).
inline double caf_contig_bw(driver::StackKind kind, net::Machine machine,
                            std::size_t bytes, int pairs, int reps,
                            caf::RmaOptions rma = {}) {
  caf::Options opts;
  opts.memory_model = caf::MemoryModel::kRelaxed;
  opts.rma = rma;
  driver::Stack stack(kind, pair_world(machine), machine, bytes * 2 + (1 << 20), opts);
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(pair_world(machine)), 0);
  const std::vector<char> payload(bytes, 'p');
  stack.run([&](caf::Runtime& rt) {
    const int me0 = rt.this_image() - 1;
    const std::uint64_t off = rt.allocate_coarray_bytes(bytes);
    rt.sync_all();
    if (me0 < pairs) {
      const int dst = pair_node_pes(machine) + me0 + 1;
      const sim::Time t0 = sim::Engine::current()->now();
      for (int r = 0; r < reps; ++r) {
        rt.put_bytes(dst, off, payload.data(), bytes);
      }
      rt.sync_memory();
      elapsed[me0] = sim::Engine::current()->now() - t0;
    }
    rt.sync_all();
  });
  sim::Time worst = 1;
  for (int p = 0; p < pairs; ++p) worst = std::max(worst, elapsed[p]);
  return static_cast<double>(bytes) * reps * pairs /
         (sim::to_sec(worst) * 1e6);
}

inline double craycaf_contig_bw(net::Machine machine, std::size_t bytes,
                                int pairs, int reps) {
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(machine), pair_world(machine));
  craycaf::Runtime rt(engine, fabric, bytes * 2 + (1 << 20), machine);
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(pair_world(machine)), 0);
  const std::vector<char> payload(bytes, 'p');
  rt.launch([&] {
    const int me0 = rt.this_image() - 1;
    const std::uint64_t off = rt.allocate(bytes);
    rt.sync_all();
    if (me0 < pairs) {
      const int dst = pair_node_pes(machine) + me0 + 1;
      const sim::Time t0 = engine.now();
      for (int r = 0; r < reps; ++r) {
        rt.put_bytes_nbi(dst, off, payload.data(), bytes);
      }
      rt.sync_memory();
      elapsed[me0] = engine.now() - t0;
    }
    rt.sync_all();
  });
  engine.run();
  sim::Time worst = 1;
  for (int p = 0; p < pairs; ++p) worst = std::max(worst, elapsed[p]);
  return static_cast<double>(bytes) * reps * pairs /
         (sim::to_sec(worst) * 1e6);
}

/// 2-D strided CAF put bandwidth (MB/s of useful data): puts `nelems` ints
/// with element stride `stride` (the microbenchmark's stride-length sweep),
/// one CAF statement with full CAF completion.
inline double caf_strided_bw(driver::StackKind kind, net::Machine machine,
                             caf::StridedAlgo algo, std::int64_t stride,
                             std::int64_t nelems, int pairs,
                             caf::RmaOptions rma = {}) {
  caf::Options opts;
  opts.strided = algo;
  opts.rma = rma;
  const std::size_t array_bytes =
      static_cast<std::size_t>(stride) * nelems * sizeof(int);
  driver::Stack stack(kind, pair_world(machine), machine, array_bytes + (1 << 20),
                      opts);
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(pair_world(machine)), 0);
  stack.run([&](caf::Runtime& rt) {
    const int me0 = rt.this_image() - 1;
    auto x = caf::make_coarray<int>(rt, caf::Shape{stride, nelems});
    rt.sync_all();
    if (me0 < pairs) {
      const int dst = pair_node_pes(machine) + me0 + 1;
      const caf::Section sec{{1, 1, 1}, {1, nelems, 1}};
      std::vector<int> src(static_cast<std::size_t>(nelems), 3);
      const sim::Time t0 = sim::Engine::current()->now();
      x.put_section(dst, sec, src.data());
      rt.sync_memory();  // charge deferred/aggregated modes their flush
      elapsed[me0] = sim::Engine::current()->now() - t0;
    }
    rt.sync_all();
  });
  sim::Time worst = 1;
  for (int p = 0; p < pairs; ++p) worst = std::max(worst, elapsed[p]);
  return static_cast<double>(nelems) * sizeof(int) * pairs /
         (sim::to_sec(worst) * 1e6);
}

/// Small-message strided put bandwidth: `nmsgs` runs of `run_bytes`
/// contiguous bytes each, separated by an equal-sized remote gap (so runs
/// never merge), one CAF statement with full completion. This is the
/// aggregation ablation's workload: many sub-512B messages to one image.
inline double caf_smallrun_bw(driver::StackKind kind, net::Machine machine,
                              caf::StridedAlgo algo, std::size_t run_bytes,
                              std::int64_t nmsgs, int pairs,
                              caf::RmaOptions rma = {}) {
  const std::int64_t run_elems =
      static_cast<std::int64_t>(run_bytes / sizeof(int));
  caf::Options opts;
  opts.strided = algo;
  opts.rma = rma;
  const caf::Shape shape{2 * run_elems, nmsgs};
  driver::Stack stack(kind, pair_world(machine), machine,
                      static_cast<std::size_t>(shape.size()) * sizeof(int) +
                          (1 << 20),
                      opts);
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(pair_world(machine)), 0);
  stack.run([&](caf::Runtime& rt) {
    const int me0 = rt.this_image() - 1;
    auto x = caf::make_coarray<int>(rt, shape);
    rt.sync_all();
    if (me0 < pairs) {
      const int dst = pair_node_pes(machine) + me0 + 1;
      const caf::Section sec{{1, run_elems, 1}, {1, nmsgs, 1}};
      std::vector<int> src(static_cast<std::size_t>(run_elems * nmsgs), 3);
      const sim::Time t0 = sim::Engine::current()->now();
      x.put_section(dst, sec, src.data());
      rt.sync_memory();
      elapsed[me0] = sim::Engine::current()->now() - t0;
    }
    rt.sync_all();
  });
  sim::Time worst = 1;
  for (int p = 0; p < pairs; ++p) worst = std::max(worst, elapsed[p]);
  return static_cast<double>(run_bytes) * nmsgs * pairs /
         (sim::to_sec(worst) * 1e6);
}

inline double craycaf_strided_bw(net::Machine machine, std::int64_t stride,
                                 std::int64_t nelems, int pairs) {
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(machine), pair_world(machine));
  const std::size_t array_bytes =
      static_cast<std::size_t>(stride) * nelems * sizeof(int);
  craycaf::Runtime rt(engine, fabric, array_bytes + (1 << 20), machine);
  std::vector<sim::Time> elapsed(static_cast<std::size_t>(pair_world(machine)), 0);
  rt.launch([&] {
    const int me0 = rt.this_image() - 1;
    const std::uint64_t off = rt.allocate(array_bytes);
    rt.sync_all();
    if (me0 < pairs) {
      const int dst = pair_node_pes(machine) + me0 + 1;
      std::vector<int> src(static_cast<std::size_t>(nelems), 3);
      const sim::Time t0 = engine.now();
      rt.put_strided_1d(dst, off, static_cast<std::ptrdiff_t>(stride),
                        src.data(), 1, sizeof(int),
                        static_cast<std::size_t>(nelems));
      elapsed[me0] = engine.now() - t0;
    }
    rt.sync_all();
  });
  engine.run();
  sim::Time worst = 1;
  for (int p = 0; p < pairs; ++p) worst = std::max(worst, elapsed[p]);
  return static_cast<double>(nelems) * sizeof(int) * pairs /
         (sim::to_sec(worst) * 1e6);
}

}  // namespace bench
