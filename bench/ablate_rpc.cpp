// Ablation: the asynchronous remote-execution layer (DESIGN.md §4f).
//
//   rtt-8B        — one image round-trips a scalar RPC to a cross-node
//                   target 64 times; mean ns per operation. This is the
//                   floor cost of shipping an operation instead of data.
//   ff-throughput — 256 fire-and-forget increments to one cross-node
//                   target, completion confirmed by a trailing round-trip
//                   probe; ns per operation (the pipelined send cost).
//   dht-insert    — the paper's §V-C DHT update stream, RPC design
//                   (apps/dht_rpc.hpp: operation shipped to the owner)
//                   against a pure-AMO design (atomic_fetch_add on a
//                   counts-only slice, same key stream); ns per update.
//
// The RPC arms run on both mailbox-transport platforms (Stampede/MVAPICH2-X,
// XC30/Cray SHMEM) and, for the latency/throughput pair, the GASNet AM
// transport too — the paper's portability claim restated for remote
// execution.
//
// `--json PATH` writes BENCH_rpc.json; scripts/ci.sh diffs it against the
// checked-in baseline (which carries per-metric tolerance overrides).
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/dht_rpc.hpp"
#include "apps/driver.hpp"
#include "bench_util.hpp"
#include "caf/rpc.hpp"
#include "sim/rng.hpp"

namespace {

struct Platform {
  driver::StackKind kind;
  net::Machine machine;
  const char* name;
  const char* transport;  ///< "mailbox" or "am"
};

constexpr Platform kPlatforms[] = {
    {driver::StackKind::kShmemMvapich, net::Machine::kStampede,
     "stampede-mvapich", "mailbox"},
    {driver::StackKind::kShmemCray, net::Machine::kXC30, "xc30-cray-shmem",
     "mailbox"},
    {driver::StackKind::kGasnet, net::Machine::kXC30, "xc30-gasnet", "am"},
};

caf::Options rpc_opts(const Platform& p) {
  caf::Options o;
  o.rpc.enabled = true;
  o.rpc.transport = std::strcmp(p.transport, "am") == 0
                        ? caf::RpcOptions::Transport::kAm
                        : caf::RpcOptions::Transport::kMailbox;
  return o;
}

/// Two images per run beyond one node so image 1 -> image `n` crosses the
/// node boundary (the interesting case for an RPC layer).
int cross_node_images(const Platform& p) {
  return net::machine_profile(p.machine).cores_per_node + 2;
}

constexpr int kRttReps = 64;
constexpr int kFfOps = 256;

/// Mean ns of one 8-byte-argument, 8-byte-return RPC round trip across the
/// node boundary. The target sits parked in the closing barrier, so every
/// request is drained from the doorbell completion (the no-progress-thread
/// path the mailbox transport is designed around).
sim::Time rpc_rtt_8b(const Platform& p) {
  driver::Stack stack(p.kind, cross_node_images(p), p.machine, 4 << 20,
                      rpc_opts(p));
  sim::Time mean = 0;
  stack.run([&](caf::Runtime& rt) {
    rt.sync_all();
    if (rt.this_image() == 1) {
      const int target = rt.num_images();
      // One warm-up trip so the measured ops see a steady-state ring.
      caf::rpc(
          rt, target, [](std::int64_t x) -> std::int64_t { return x; },
          std::int64_t{0})
          .get();
      const sim::Time t0 = sim::Engine::current()->now();
      for (int i = 0; i < kRttReps; ++i) {
        auto fut = caf::rpc(
            rt, target, [](std::int64_t x) -> std::int64_t { return x + 1; },
            static_cast<std::int64_t>(i));
        (void)fut.get();
      }
      mean = (sim::Engine::current()->now() - t0) / kRttReps;
    }
    rt.sync_all();
  });
  return mean;
}

/// ns per fire-and-forget operation: pipelined one-way sends (ring
/// backpressure included), completion bounded by a round-trip probe that
/// reads the target-side counter. The mailbox ring is FIFO so one probe
/// suffices; the AM path may reorder, so the probe polls.
sim::Time rpc_ff_per_op(const Platform& p) {
  driver::Stack stack(p.kind, cross_node_images(p), p.machine, 4 << 20,
                      rpc_opts(p));
  sim::Time per_op = 0;
  stack.run([&](caf::Runtime& rt) {
    const std::uint64_t off = rt.allocate_coarray_bytes(8);
    std::memset(rt.local_addr(off), 0, 8);
    rt.sync_all();
    if (rt.this_image() == 1) {
      const int target = rt.num_images();
      const caf::sym_view<std::int64_t> cell{off, 1};
      const sim::Time t0 = sim::Engine::current()->now();
      for (int i = 0; i < kFfOps; ++i) {
        caf::rpc_ff(
            rt, target, [](caf::sym_view<std::int64_t> c) { c[0] += 1; },
            cell);
      }
      for (;;) {
        auto probe = caf::rpc(
            rt, target,
            [](caf::sym_view<std::int64_t> c) -> std::int64_t { return c[0]; },
            cell);
        if (probe.get() >= kFfOps) break;
      }
      per_op = (sim::Engine::current()->now() - t0) / kFfOps;
    }
    rt.sync_all();
  });
  return per_op;
}

// ---------------------------------------------------------------------------
// DHT insert: RPC design vs pure-AMO design, same key stream
// ---------------------------------------------------------------------------

apps::dht::Config dht_bench_cfg() {
  apps::dht::Config cfg;
  cfg.buckets_per_image = 64;
  cfg.updates_per_image = 128;
  cfg.locks_per_image = 8;
  cfg.seed = 0xB4B4;
  cfg.hot_percent = 25;
  cfg.hot_keys = 4;
  return cfg;
}

sim::Time dht_insert_rpc(const Platform& p, const apps::dht::Config& cfg) {
  driver::Stack stack(p.kind, cross_node_images(p), p.machine, 4 << 20,
                      rpc_opts(p));
  const int images = cross_node_images(p);
  const sim::Time total = stack.run([&](caf::Runtime& rt) {
    auto table = apps::dhtrpc::make_rpc_table(rt, cfg);
    table.run_updates();
    rt.sync_all();
  });
  return total / (static_cast<sim::Time>(cfg.updates_per_image) * images);
}

/// The same update stream as counter bumps: the count lives in a plain
/// int64 slice and the "insert" is one atomic_fetch_add at the owner. No
/// key storage, no reply payload — the cheapest correct one-sided design,
/// i.e. the strongest baseline the RPC arm can be compared against.
sim::Time dht_insert_amo(const Platform& p, const apps::dht::Config& cfg) {
  driver::Stack stack(p.kind, cross_node_images(p), p.machine, 4 << 20);
  const int images = cross_node_images(p);
  const sim::Time total = stack.run([&](caf::Runtime& rt) {
    const int me = rt.this_image();
    const int n = rt.num_images();
    const std::size_t bytes =
        static_cast<std::size_t>(cfg.buckets_per_image) * 8;
    const std::uint64_t off = rt.allocate_coarray_bytes(bytes);
    std::memset(rt.local_addr(off), 0, bytes);
    rt.sync_all();
    sim::Rng rng(cfg.seed * 1000003u + static_cast<std::uint64_t>(me));
    const std::int64_t global_buckets =
        cfg.buckets_per_image * static_cast<std::int64_t>(n);
    for (int u = 0; u < cfg.updates_per_image; ++u) {
      const bool hot =
          rng.below(100) < static_cast<std::uint64_t>(cfg.hot_percent);
      const std::int64_t key = static_cast<std::int64_t>(
          hot ? rng.below(static_cast<std::uint64_t>(cfg.hot_keys))
              : rng.below(static_cast<std::uint64_t>(global_buckets)));
      const int owner = static_cast<int>(key / cfg.buckets_per_image) + 1;
      const std::int64_t bucket = key % cfg.buckets_per_image;
      (void)rt.atomic_fetch_add(
          owner, off + static_cast<std::uint64_t>(bucket) * 8, 1);
    }
    rt.sync_all();
  });
  return total / (static_cast<sim::Time>(cfg.updates_per_image) * images);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  std::printf("=== Ablation: asynchronous remote execution (RPC) ===\n\n");
  std::printf("%-18s %-9s %14s %14s\n", "platform", "transport", "rtt-8B",
              "ff/op");

  struct LatRow {
    const Platform* p;
    sim::Time rtt, ff;
  };
  std::vector<LatRow> lat;
  for (const Platform& p : kPlatforms) {
    LatRow r{&p, rpc_rtt_8b(p), rpc_ff_per_op(p)};
    lat.push_back(r);
    std::printf("%-18s %-9s %14s %14s\n", p.name, p.transport,
                sim::format_time(r.rtt).c_str(),
                sim::format_time(r.ff).c_str());
  }

  std::printf("\n-- DHT insert, per update (RPC vs pure-AMO baseline) --\n");
  std::printf("%-18s %14s %14s %10s\n", "platform", "rpc", "amo", "rpc/amo");
  struct DhtRow {
    const Platform* p;
    sim::Time rpc, amo;
  };
  std::vector<DhtRow> dht;
  const apps::dht::Config cfg = dht_bench_cfg();
  for (const Platform& p : kPlatforms) {
    if (std::strcmp(p.transport, "mailbox") != 0) continue;  // paper machines
    DhtRow r{&p, dht_insert_rpc(p, cfg), dht_insert_amo(p, cfg)};
    dht.push_back(r);
    std::printf("%-18s %14s %14s %9.2fx\n", p.name,
                sim::format_time(r.rpc).c_str(),
                sim::format_time(r.amo).c_str(),
                static_cast<double>(r.rpc) / static_cast<double>(r.amo));
  }

  if (json_path) {
    FILE* f = std::fopen(json_path, "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"rpc\",\n  \"unit\": \"ns\",\n"
                    "  \"platforms\": [\n");
    for (std::size_t i = 0; i < lat.size(); ++i) {
      const LatRow& r = lat[i];
      std::fprintf(f,
                   "    {\"platform\": \"%s\", \"transport\": \"%s\", "
                   "\"rtt_8b_ns\": %lld, \"ff_ns_per_op\": %lld}%s\n",
                   r.p->name, r.p->transport, static_cast<long long>(r.rtt),
                   static_cast<long long>(r.ff),
                   i + 1 < lat.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"dht_insert\": [\n");
    for (std::size_t i = 0; i < dht.size(); ++i) {
      const DhtRow& r = dht[i];
      std::fprintf(f,
                   "    {\"platform\": \"%s\", \"rpc_ns_per_update\": %lld, "
                   "\"amo_ns_per_update\": %lld}%s\n",
                   r.p->name, static_cast<long long>(r.rpc),
                   static_cast<long long>(r.amo),
                   i + 1 < dht.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
