// Table II: the CAF ↔ OpenSHMEM feature mapping. Prints the table and
// *executes* each mapping once through the ShmemConduit-backed runtime so a
// row is only printed if the mapped feature actually works.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/driver.hpp"

namespace {

struct Row {
  const char* property;
  const char* caf;
  const char* openshmem;
};

const Row kRows[] = {
    {"Symmetric data allocation", "allocate", "shmalloc"},
    {"Total image count", "num_images()", "num_pes()"},
    {"Current image ID", "this_image()", "my_pe()"},
    {"Collectives - reduction", "co_sum/co_min/co_max", "shmem_<op>_to_all"},
    {"Collectives - broadcast", "co_broadcast", "shmem_broadcast"},
    {"Barrier synchronization", "sync all", "shmem_barrier_all"},
    {"Atomic swapping", "atomic_cas", "shmem_swap/cswap"},
    {"Atomic addition", "atomic_fetch_add", "shmem_add/fadd"},
    {"Atomic AND operation", "atomic_fetch_and", "shmem_and"},
    {"Atomic OR operation", "atomic_or", "shmem_or"},
    {"Atomic XOR operation", "atomic_xor", "shmem_xor"},
    {"Remote memory put", "x(...)[j] = ...", "shmem_put"},
    {"Remote memory get", "... = x(...)[j]", "shmem_get"},
    {"1-D strided put", "x(lo:hi:st)[j] = ...", "shmem_iput"},
    {"1-D strided get", "... = x(lo:hi:st)[j]", "shmem_iget"},
    {"Multi-dim strided put", "x(sec...)[j] = ...", "(2dim_strided, §IV-C)"},
    {"Multi-dim strided get", "... = x(sec...)[j]", "(2dim_strided, §IV-C)"},
    {"Remote locks", "lock(lck[j])", "(MCS over AMOs, §IV-D)"},
};

}  // namespace

int main() {
  std::printf("=== Table II: CAF / OpenSHMEM feature mapping ===\n");
  // Exercise every mapping through the runtime once.
  driver::Stack stack(driver::StackKind::kShmemCray, 8, net::Machine::kXC30,
                      4 << 20);
  bool all_ok = true;
  stack.run([&](caf::Runtime& rt) {
    auto x = caf::make_coarray<int>(rt, {16, 8});           // allocate
    const int me = rt.this_image();                         // this_image
    const int n = rt.num_images();                          // num_images
    (void)n;
    for (int j = 1; j <= 8; ++j)
      for (int i = 1; i <= 16; ++i) x(i, j) = me;
    rt.sync_all();                                          // sync all
    x.put_scalar(me % 8 + 1, {1, 1}, me);                   // put
    (void)x.get_scalar(me % 8 + 1, {2, 1});                 // get
    std::vector<int> buf(8, me);
    x.put_section(me % 8 + 1, caf::Section{{1, 15, 2}, {2, 2, 1}},
                  buf.data());                              // 1-D strided put
    x.get_section(buf.data(), me % 8 + 1,
                  caf::Section{{1, 15, 2}, {3, 3, 1}});     // 1-D strided get
    x.put_section(me % 8 + 1, caf::Section{{1, 15, 2}, {1, 8, 2}},
                  std::vector<int>(32, me).data());         // multi-dim put
    caf::AtomicCell cell(rt);
    (void)cell.fetch_add(1, 1);                             // atomic add
    (void)cell.cas(1, -1, 0);                               // atomic cas
    (void)cell.fetch_and(1, ~0ll);                          // atomic and
    (void)cell.fetch_or(1, 0);                              // atomic or
    (void)cell.fetch_xor(1, 0);                             // atomic xor
    int b = me;
    rt.co_broadcast(&b, 1, 1);                              // co_broadcast
    if (b != 1) {
      std::fprintf(stderr, "image %d: broadcast got %d\n", me, b);
    }
    all_ok = all_ok && (b == 1);
    std::int64_t s = 1;
    rt.co_sum(&s, 1);                                       // co_sum
    caf::CoLock lck = rt.make_lock();
    rt.lock(lck, 1);                                        // remote lock
    rt.unlock(lck, 1);
    rt.sync_all();
  });
  std::printf("%-28s %-24s %-28s\n", "Property", "CAF", "OpenSHMEM");
  for (const Row& r : kRows) {
    std::printf("%-28s %-24s %-28s\n", r.property, r.caf, r.openshmem);
  }
  std::printf("\nall mappings executed successfully: %s\n",
              all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
