// Ablation (§IV-B): the cost of the quiet-insertion policy that repairs
// CAF's completion ordering over OpenSHMEM's weaker model.
//
// Measures a dependent-chain workload (put to neighbor, read back — the
// Figure 4 pattern) and an independent-stream workload (many puts to
// distinct targets) under:
//   strict  — quiet after every put / before every get (the paper's
//             translation);
//   relaxed — OpenSHMEM-native ordering with one explicit sync_memory at
//             the end (what a compiler could emit after dependence
//             analysis, cf. §VII future work).
#include <cstdio>

#include "apps/driver.hpp"

namespace {

sim::Time run_workload(caf::MemoryModel model, bool dependent) {
  caf::Options opts;
  opts.memory_model = model;
  driver::Stack stack(driver::StackKind::kShmemCray, 32, net::Machine::kXC30,
                      2 << 20, opts);
  sim::Time elapsed = 0;
  stack.run([&](caf::Runtime& rt) {
    auto x = caf::make_coarray<double>(rt, {256});
    rt.sync_all();
    if (rt.this_image() == 1) {
      std::vector<double> buf(256, 1.0);
      const sim::Time t0 = sim::Engine::current()->now();
      for (int r = 0; r < 50; ++r) {
        const int target = dependent ? 17 : 17 + (r % 15);
        x.put_contiguous(target, buf.data(), 256);
        if (dependent) {
          // Figure 4: read back what we just wrote.
          x.get_contiguous(buf.data(), target, 256);
        }
      }
      rt.sync_memory();
      elapsed = sim::Engine::current()->now() - t0;
    }
    rt.sync_all();
  });
  return elapsed;
}

}  // namespace

int main() {
  std::printf("=== Ablation: quiet insertion policy (§IV-B) ===\n\n");
  std::printf("%-34s %16s %16s\n", "workload", "strict", "relaxed");
  for (bool dependent : {true, false}) {
    const sim::Time strict = run_workload(caf::MemoryModel::kStrict, dependent);
    const sim::Time relaxed =
        run_workload(caf::MemoryModel::kRelaxed, dependent);
    std::printf("%-34s %16s %16s   (relaxed saves %.0f%%)\n",
                dependent ? "dependent put->get chain (Fig 4)"
                          : "independent put streams",
                sim::format_time(strict).c_str(),
                sim::format_time(relaxed).c_str(),
                100.0 * (1.0 - static_cast<double>(relaxed) /
                                   static_cast<double>(strict)));
  }
  std::printf("\nStrict insertion is required for correctness of dependent\n"
              "chains; for independent streams it throws away pipelining —\n"
              "the compiler-analysis opportunity the paper leaves open.\n");
  return 0;
}
