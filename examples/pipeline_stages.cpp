// Example: a software pipeline over images using point-to-point
// synchronization (sync images) and CAF events.
//
// 8 images form a 4-stage processing pipeline (2 images per stage). Work
// items flow stage to stage through coarray mailboxes; producers notify
// consumers with event post, consumers block on event wait — the
// fine-grained synchronization features the paper lists among OpenUH's CAF
// extensions (§II-A), mapped onto OpenSHMEM atomics and wait_until.
//
// Build & run:  ./examples/pipeline_stages
#include <cstdio>
#include <vector>

#include "apps/driver.hpp"

namespace {

constexpr int kStages = 4;
constexpr int kPerStage = 2;
constexpr int kItems = 16;  // per lane

// Each stage applies a different transformation.
std::int64_t apply_stage(int stage, std::int64_t v) {
  switch (stage) {
    case 0: return v * 3;        // scale
    case 1: return v + 1000;     // bias
    case 2: return v ^ 0xFF;     // scramble
    default: return v % 9973;    // fold
  }
}

}  // namespace

int main() {
  const int images = kStages * kPerStage;
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kXC30, 4 << 20);
  std::vector<std::int64_t> results;
  bool ok = true;

  stack.run([&](caf::Runtime& rt) {
    const int me = rt.this_image();
    const int stage = (me - 1) / kPerStage;
    const int lane = (me - 1) % kPerStage;

    // One mailbox (and one "slot free" / "slot full" event pair) per image.
    auto mailbox = caf::make_coarray<std::int64_t>(rt, {1});
    caf::CoEvent full = rt.make_event();
    caf::CoEvent empty = rt.make_event();
    rt.sync_all();

    const int next_image = me + kPerStage;  // same lane, next stage
    for (int item = 0; item < kItems; ++item) {
      std::int64_t value;
      if (stage == 0) {
        value = lane * 1'000'000 + item;  // source stage generates
      } else {
        rt.event_wait(full);              // wait for my mailbox to fill
        value = mailbox(1);
        rt.event_post(empty, me - kPerStage);  // tell my producer: drained
      }
      value = apply_stage(stage, value);
      sim::Engine::current()->advance(2'000);  // stage compute
      if (stage < kStages - 1) {
        // Single-entry mailbox: wait for the consumer to drain it first
        // (after the first send).
        if (item > 0) rt.event_wait(empty);
        mailbox.put_scalar(next_image, {1}, value);
        rt.event_post(full, next_image);
      } else if (lane == 0) {
        results.push_back(value);
      } else {
        results.push_back(value);
      }
    }
    rt.sync_all();
  });

  // Validate against a serial rerun of the pipeline.
  int checked = 0;
  for (int lane = 0; lane < kPerStage; ++lane) {
    for (int item = 0; item < kItems; ++item) {
      std::int64_t v = lane * 1'000'000 + item;
      for (int s = 0; s < kStages; ++s) v = apply_stage(s, v);
      bool found = false;
      for (auto r : results) found |= (r == v);
      ok &= found;
      ++checked;
    }
  }
  std::printf("pipeline: %d stages x %d lanes, %d items/lane, %zu results\n",
              kStages, kPerStage, kItems, results.size());
  std::printf("pipeline_stages %s (%d values validated)\n",
              ok && results.size() == kPerStage * kItems ? "OK" : "FAILED",
              checked);
  return ok ? 0 : 1;
}
