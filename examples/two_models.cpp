// Example: one communication layer, two PGAS models (the paper's thesis).
//
// Computes the same 1-D relaxation twice — once as a Coarray Fortran
// program (caf::Runtime) and once as a UPC program (upc::Runtime) — both
// running over the identical OpenSHMEM library and machine model, and
// checks that the numerics agree. This is §VI's closing argument made
// executable: "OpenSHMEM may be considered as a potential candidate" for
// the common base of all PGAS implementations.
//
// Build & run:  ./examples/two_models
#include <cmath>
#include <cstdio>
#include <vector>

#include "caf/caf.hpp"
#include "net/profiles.hpp"
#include "upc/upc.hpp"

namespace {

constexpr int kImages = 8;
constexpr std::int64_t kN = 64;  // global cells
constexpr int kSteps = 10;

// u_new[i] = (u[i-1] + u[i+1]) / 2 on the interior, fixed ends 0 / 1.
std::vector<double> serial_reference() {
  std::vector<double> u(kN, 0.0);
  u[kN - 1] = 1.0;
  for (int s = 0; s < kSteps; ++s) {
    std::vector<double> v = u;
    for (std::int64_t i = 1; i < kN - 1; ++i) v[i] = (u[i - 1] + u[i + 1]) / 2;
    u = v;
  }
  return u;
}

std::vector<double> run_caf() {
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(net::Machine::kStampede), kImages);
  shmem::World shm(engine, fabric,
                   net::sw_profile(net::Library::kShmemMvapich,
                                   net::Machine::kStampede),
                   4 << 20);
  caf::ShmemConduit conduit(shm);
  caf::Runtime rt(conduit);
  std::vector<double> out(kN);
  const std::int64_t local = kN / kImages;
  shm.launch([&] {
    rt.init();
    const int me = rt.this_image();
    // Local slice with two ghost cells: u(1) and u(local+2).
    auto u = caf::make_coarray<double>(rt, {local + 2});
    for (std::int64_t i = 1; i <= local + 2; ++i) u(i) = 0.0;
    if (me == kImages) u(local + 1) = 1.0;  // right boundary cell
    rt.sync_all();
    std::vector<double> next(static_cast<std::size_t>(local));
    for (int s = 0; s < kSteps; ++s) {
      // Exchange ghosts: my first/last interior to neighbors' ghosts.
      if (me > 1) u.put_scalar(me - 1, {local + 2}, u(2));
      if (me < kImages) u.put_scalar(me + 1, {1}, u(local + 1));
      rt.sync_all();
      for (std::int64_t i = 0; i < local; ++i) {
        const std::int64_t g = (me - 1) * local + i;  // global index
        if (g == 0 || g == kN - 1) {
          next[static_cast<std::size_t>(i)] = u(i + 2);
        } else {
          next[static_cast<std::size_t>(i)] = (u(i + 1) + u(i + 3)) / 2;
        }
      }
      for (std::int64_t i = 0; i < local; ++i) {
        u(i + 2) = next[static_cast<std::size_t>(i)];
      }
      rt.sync_all();
    }
    // Gather on image 1.
    if (me == 1) {
      for (int img = 1; img <= kImages; ++img) {
        std::vector<double> slice(static_cast<std::size_t>(local));
        u.get_contiguous(slice.data(), img, static_cast<std::size_t>(local), 1);
        for (std::int64_t i = 0; i < local; ++i) {
          out[static_cast<std::size_t>((img - 1) * local + i)] =
              slice[static_cast<std::size_t>(i)];
        }
      }
    }
    rt.sync_all();
  });
  engine.run();
  return out;
}

std::vector<double> run_upc() {
  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(net::Machine::kStampede), kImages);
  shmem::World shm(engine, fabric,
                   net::sw_profile(net::Library::kShmemMvapich,
                                   net::Machine::kStampede),
                   4 << 20);
  upc::Runtime rt(shm);
  std::vector<double> out(kN);
  shm.launch([&] {
    // shared [kN/THREADS] double u[kN], v[kN] — pure-blocked layout.
    auto u = rt.all_alloc<double>(kN, kN / kImages);
    auto v = rt.all_alloc<double>(kN, kN / kImages);
    rt.forall(u, [&](std::int64_t i) {
      *u.local_ptr(i) = i == kN - 1 ? 1.0 : 0.0;
    });
    rt.barrier();
    for (int s = 0; s < kSteps; ++s) {
      rt.forall(u, [&](std::int64_t i) {
        if (i == 0 || i == kN - 1) {
          *v.local_ptr(i) = *u.local_ptr(i);
        } else {
          // Neighbor reads may be remote: shared-pointer dereferences.
          *v.local_ptr(i) = (u.read(i - 1) + u.read(i + 1)) / 2;
        }
      });
      rt.barrier();
      rt.forall(u, [&](std::int64_t i) { *u.local_ptr(i) = *v.local_ptr(i); });
      rt.barrier();
    }
    if (rt.mythread() == 0) {
      for (std::int64_t i = 0; i < kN; ++i) out[static_cast<std::size_t>(i)] = u.read(i);
    }
    rt.barrier();
  });
  engine.run();
  return out;
}

}  // namespace

int main() {
  const auto ref = serial_reference();
  const auto caf_result = run_caf();
  const auto upc_result = run_upc();
  double caf_err = 0, upc_err = 0;
  for (std::int64_t i = 0; i < kN; ++i) {
    caf_err = std::max(caf_err, std::abs(caf_result[i] - ref[i]));
    upc_err = std::max(upc_err, std::abs(upc_result[i] - ref[i]));
  }
  std::printf("1-D relaxation, %lld cells, %d steps, %d images/threads\n",
              static_cast<long long>(kN), kSteps, kImages);
  std::printf("  CAF over OpenSHMEM : max |err| = %.3e\n", caf_err);
  std::printf("  UPC over OpenSHMEM : max |err| = %.3e\n", upc_err);
  const bool ok = caf_err < 1e-12 && upc_err < 1e-12;
  std::printf("two_models %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
