// Example: distributed matrix row-block rotation with strided coarray
// sections, demonstrating the 2dim_strided algorithm (§IV-C) on a realistic
// access pattern.
//
// A (64 x 64) matrix block lives on each of 4 images. Every image sends the
// odd columns of its block to the next image's block using a strided
// section put, then verifies what it received. The example prints the
// message counts of the naive vs 2dim_strided algorithms for the same
// section — the paper's core §IV-C observation in action.
//
// Build & run:  ./examples/strided_transpose
#include <cstdio>
#include <numeric>
#include <vector>

#include "apps/driver.hpp"

int main() {
  const int images = 4;
  const std::int64_t n = 64;
  caf::StridedStats naive_stats{}, twodim_stats{};
  bool ok = true;

  for (auto algo : {caf::StridedAlgo::kNaive, caf::StridedAlgo::kTwoDim}) {
    caf::Options opts;
    opts.strided = algo;
    driver::Stack stack(driver::StackKind::kShmemCray, images,
                        net::Machine::kXC30, 8 << 20, opts);
    stack.run([&](caf::Runtime& rt) {
      const int me = rt.this_image();
      auto block = caf::make_coarray<double>(rt, {n, n});
      for (std::int64_t j = 1; j <= n; ++j) {
        for (std::int64_t i = 1; i <= n; ++i) {
          block(i, j) = me * 1e6 + (j - 1) * n + (i - 1);
        }
      }
      rt.sync_all();

      // Send my odd rows (a strided section: stride 2 in the contiguous
      // dimension) to the right neighbor's even rows.
      const int right = me % images + 1;
      const caf::Section odd_rows{{1, n - 1, 2}, {1, n, 1}};
      const caf::Section even_rows{{2, n, 2}, {1, n, 1}};
      std::vector<double> packed(static_cast<std::size_t>(n / 2 * n));
      block.pack_local(packed.data(), odd_rows);
      const auto stats = block.put_section(right, even_rows, packed.data());
      if (me == 1) {
        (algo == caf::StridedAlgo::kNaive ? naive_stats : twodim_stats) = stats;
      }
      rt.sync_all();

      // Verify: my even rows now hold the left neighbor's odd rows.
      const int left = (me + images - 2) % images + 1;
      for (std::int64_t j = 1; j <= n && ok; ++j) {
        for (std::int64_t i = 2; i <= n; i += 2) {
          const double expect = left * 1e6 + (j - 1) * n + (i - 2);
          if (block(i, j) != expect) {
            ok = false;
            break;
          }
        }
      }
      rt.sync_all();
    });
  }

  std::printf("strided section of %lld x %lld doubles, stride 2 rows:\n",
              static_cast<long long>(n), static_cast<long long>(n));
  std::printf("  naive        : %zu messages for %zu elements\n",
              naive_stats.messages, naive_stats.elements);
  std::printf("  2dim_strided : %zu messages for %zu elements\n",
              twodim_stats.messages, twodim_stats.elements);
  std::printf("strided_transpose %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
