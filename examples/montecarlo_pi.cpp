// Example: Monte-Carlo estimation of pi with coarray collectives and
// events.
//
// Each of 32 images throws darts locally, contributes its hit count via
// co_sum, and posts a completion event to image 1 — exercising the
// collective and event features of the runtime on top of OpenSHMEM.
//
// Build & run:  ./examples/montecarlo_pi
#include <cstdio>

#include "apps/driver.hpp"
#include "sim/rng.hpp"

int main() {
  const int images = 32;
  const std::int64_t darts_per_image = 200'000;
  driver::Stack stack(driver::StackKind::kShmemCray, images,
                      net::Machine::kXC30, 4 << 20);
  double pi_estimate = 0;

  stack.run([&](caf::Runtime& rt) {
    const int me = rt.this_image();
    caf::CoEvent done = rt.make_event();

    sim::Rng rng(7777 + static_cast<std::uint64_t>(me));
    std::int64_t hits = 0;
    for (std::int64_t d = 0; d < darts_per_image; ++d) {
      const double x = rng.uniform();
      const double y = rng.uniform();
      if (x * x + y * y < 1.0) ++hits;
    }
    // Charge virtual compute time for the dart loop (~8 flops per dart at
    // 4 GF/s) so the example also demonstrates timed simulation.
    sim::Engine::current()->advance(
        sim::from_ns(static_cast<double>(darts_per_image) * 8 / 4.0));

    std::int64_t total = hits;
    rt.co_sum(&total, 1);
    if (me != 1) {
      rt.event_post(done, 1);
    } else {
      rt.event_wait(done, images - 1);  // all contributions in
      pi_estimate = 4.0 * static_cast<double>(total) /
                    (static_cast<double>(darts_per_image) * images);
    }
    rt.sync_all();
  });

  std::printf("pi ~= %.6f with %lld darts on %d images\n", pi_estimate,
              static_cast<long long>(darts_per_image) * images, images);
  const bool ok = pi_estimate > 3.13 && pi_estimate < 3.15;
  std::printf("montecarlo_pi %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
