// Example: the CAF Himeno pressure solver on 16 images, comparing the two
// conduits (UHCAF over MVAPICH2-X SHMEM vs UHCAF over GASNet) the way
// Figure 10 does, and printing the residual and MFLOPS.
//
// Build & run:  ./examples/himeno_solver
#include <cstdio>

#include "apps/driver.hpp"
#include "apps/himeno.hpp"

int main() {
  apps::himeno::Config base;
  base.gx = base.gy = base.gz = 32;
  base.iters = 6;

  std::printf("CAF Himeno, %dx%dx%d grid, %d iterations, 16 images\n",
              base.gx, base.gy, base.gz, base.iters);
  std::printf("%-26s %12s %14s %14s\n", "runtime", "MFLOPS", "gosa",
              "elapsed");
  for (driver::StackKind kind :
       {driver::StackKind::kShmemMvapich, driver::StackKind::kGasnet}) {
    driver::Stack stack(kind, 16, net::Machine::kStampede, 8 << 20);
    const auto cfg = apps::himeno::decompose(base, 16);
    apps::himeno::Result result;
    stack.run([&](caf::Runtime& rt) {
      apps::himeno::Solver solver(rt, cfg);
      result = solver.run();
      rt.sync_all();
    });
    std::printf("%-26s %12.1f %14.6e %14s\n", driver::name(kind),
                result.mflops, result.gosa,
                sim::format_time(result.elapsed).c_str());
  }
  std::printf("himeno_solver OK\n");
  return 0;
}
