// Quickstart: paper Figure 1, both halves.
//
// Runs the same 8-image program twice:
//   1. as a CAF program through caf::Runtime over the OpenSHMEM conduit
//      (the paper's left-hand listing), and
//   2. as a raw OpenSHMEM program through the C-style shim
//      (the right-hand listing: start_pes/shmalloc/shmem_int_get/...).
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "caf/caf.hpp"
#include "net/profiles.hpp"
#include "shmem/api.hpp"

namespace {

void run_caf_variant() {
  std::printf("== CAF variant (coarrays over OpenSHMEM) ==\n");
  sim::Engine engine;
  net::Fabric fabric(net::machine_profile(net::Machine::kStampede), 8);
  shmem::World shm(engine, fabric,
                   net::sw_profile(net::Library::kShmemMvapich,
                                   net::Machine::kStampede),
                   4 << 20);
  caf::ShmemConduit conduit(shm);
  caf::Runtime rt(conduit);
  shm.launch([&] {
    rt.init();
    // integer :: coarray_x(4)[*] ; integer, allocatable :: coarray_y(:)[:]
    auto coarray_x = caf::make_coarray<int>(rt, {4});
    auto coarray_y = caf::make_coarray<int>(rt, {4});
    const int num_image = rt.num_images();
    const int my_image = rt.this_image();
    for (int i = 1; i <= 4; ++i) {
      coarray_x(i) = my_image;  // coarray_x = my_image
      coarray_y(i) = 0;         // coarray_y = 0
    }
    rt.sync_all();
    // coarray_y(2) = coarray_x(3)[4]
    coarray_y(2) = coarray_x.get_scalar(4, {3});
    // coarray_x(1)[4] = coarray_y(2)
    coarray_x.put_scalar(4, {1}, coarray_y(2));
    rt.sync_all();  // sync all
    if (my_image == 1) {
      std::printf("  images: %d; image 1 read coarray_x(3)[4] = %d\n",
                  num_image, coarray_y(2));
    }
    rt.sync_all();
  });
  engine.run();
  std::printf("  done (virtual time driven by the DES engine)\n");
}

void run_shmem_variant() {
  std::printf("== OpenSHMEM variant (Figure 1, right) ==\n");
  sim::Engine engine;
  net::Fabric fabric(net::machine_profile(net::Machine::kStampede), 8);
  shmem::World world(engine, fabric,
                     net::sw_profile(net::Library::kShmemMvapich,
                                     net::Machine::kStampede),
                     4 << 20);
  shmem::ApiGuard guard(world);
  world.launch([&] {
    start_pes(0);
    int* coarray_x = static_cast<int*>(shmalloc(4 * sizeof(int)));
    int* coarray_y = static_cast<int*>(shmalloc(4 * sizeof(int)));
    const int num_image = num_pes();
    const int my_image = my_pe();
    for (int i = 0; i < 4; ++i) {
      coarray_x[i] = my_image;
      coarray_y[i] = 0;
    }
    shmem_barrier_all();
    // coarray_y(2) = coarray_x(3)[4]  (PE 3 is CAF image 4)
    shmem_int_get(coarray_y + 1, coarray_x + 2, 1, 3);
    // coarray_x(1)[4] = coarray_y(2)
    shmem_int_put(coarray_x + 0, coarray_y + 1, 1, 3);
    shmem_quiet();
    shmem_barrier_all();
    if (my_image == 0) {
      std::printf("  PEs: %d; PE 0 read coarray_x[2] of PE 3 = %d\n",
                  num_image, coarray_y[1]);
    }
    shmem_barrier_all();
    shfree(coarray_y);
    shfree(coarray_x);
  });
  engine.run();
  std::printf("  done\n");
}

}  // namespace

int main() {
  run_caf_variant();
  run_shmem_variant();
  std::printf("quickstart OK\n");
  return 0;
}
