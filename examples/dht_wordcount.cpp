// Example: a distributed word-count over the coarray DHT.
//
// Each of 8 images "reads" a shard of a synthetic document stream and
// counts word occurrences in a hash table distributed over all images,
// using coarray locks (the MCS adaptation of §IV-D) for atomic updates.
// At the end, image 1 prints the most frequent words.
//
// Build & run:  ./examples/dht_wordcount
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/driver.hpp"
#include "sim/rng.hpp"

namespace {

// A tiny synthetic vocabulary with a skewed (Zipf-ish) distribution.
const char* kVocabulary[] = {"the",  "galaxy",  "coarray", "image",
                             "put",  "get",     "lock",    "barrier",
                             "halo", "stencil", "quiet",   "symmetric"};
constexpr int kVocab = 12;
constexpr int kWordsPerImage = 400;
constexpr std::int64_t kBucketsPerImage = 32;

struct Bucket {
  std::int64_t word_id;
  std::int64_t count;
};

int owner_of(std::int64_t word_id, int nimages) {
  return static_cast<int>(word_id % nimages) + 1;
}
std::int64_t bucket_of(std::int64_t word_id) {
  return (word_id * 7) % kBucketsPerImage;
}

}  // namespace

int main() {
  const int images = 8;
  driver::Stack stack(driver::StackKind::kShmemMvapich, images,
                      net::Machine::kStampede, 4 << 20);
  std::vector<std::int64_t> final_counts(kVocab, 0);

  stack.run([&](caf::Runtime& rt) {
    const int me = rt.this_image();
    // The distributed table: kBucketsPerImage buckets per image plus one
    // lock per image guarding its slice.
    const std::uint64_t table_off = rt.allocate_coarray_bytes(
        kBucketsPerImage * sizeof(Bucket));
    std::memset(rt.local_addr(table_off), 0, kBucketsPerImage * sizeof(Bucket));
    caf::CoLock lck = rt.make_lock();
    rt.sync_all();

    // Count my shard: Zipf-ish draws over the vocabulary.
    sim::Rng rng(99 + static_cast<std::uint64_t>(me));
    for (int w = 0; w < kWordsPerImage; ++w) {
      // Skew: resample small ids more often.
      auto id = static_cast<std::int64_t>(rng.below(kVocab));
      if (rng.below(2) == 0) id = static_cast<std::int64_t>(rng.below(3));
      const int owner = owner_of(id, rt.num_images());
      const std::uint64_t off =
          table_off + static_cast<std::uint64_t>(bucket_of(id)) * sizeof(Bucket);
      rt.lock(lck, owner);
      Bucket b{};
      rt.get_bytes(&b, owner, off, sizeof b);
      b.word_id = id;
      b.count += 1;
      rt.put_bytes(owner, off, &b, sizeof b);
      rt.unlock(lck, owner);
    }
    rt.sync_all();

    // Gather per-word totals: every image scans its slice and the totals
    // are co_sum-reduced.
    std::vector<std::int64_t> counts(kVocab, 0);
    const auto* slice = reinterpret_cast<const Bucket*>(rt.local_addr(table_off));
    for (std::int64_t i = 0; i < kBucketsPerImage; ++i) {
      if (slice[i].count > 0) counts[slice[i].word_id] += slice[i].count;
    }
    rt.co_sum(counts.data(), counts.size());
    if (me == 1) {
      std::copy(counts.begin(), counts.end(), final_counts.begin());
    }
    rt.sync_all();
  });

  std::int64_t total = 0;
  std::vector<int> order(kVocab);
  for (int i = 0; i < kVocab; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return final_counts[a] > final_counts[b];
  });
  std::printf("word counts over %d images (%d words each):\n", images,
              kWordsPerImage);
  for (int i = 0; i < 5; ++i) {
    std::printf("  %-10s %6lld\n", kVocabulary[order[i]],
                static_cast<long long>(final_counts[order[i]]));
  }
  for (auto c : final_counts) total += c;
  std::printf("total words counted: %lld (expected %d)\n",
              static_cast<long long>(total), images * kWordsPerImage);
  std::printf("dht_wordcount %s\n",
              total == images * kWordsPerImage ? "OK" : "FAILED");
  return total == images * kWordsPerImage ? 0 : 1;
}
