// Example: the hybrid CAF + OpenSHMEM model (paper §I).
//
// "Furthermore, such an implementation allows us to incorporate OpenSHMEM
//  calls directly into CAF applications ... and explore the ramifications
//  of such a hybrid model."
//
// Because the CAF runtime allocates coarrays straight out of the OpenSHMEM
// symmetric heap, a coarray's storage *is* a symmetric object: the same
// program can manipulate it through CAF statements and raw OpenSHMEM calls
// interchangeably. This example builds a histogram where:
//   * the bins are a CAF coarray,
//   * fine-grained increments use raw shmem atomics (cheaper than a CAF
//     lock for single-word updates),
//   * the final merge uses the CAF co_sum collective,
//   * and a raw shmem_barrier_all interoperates with CAF sync all.
//
// Build & run:  ./examples/hybrid_caf_shmem
#include <cstdio>
#include <vector>

#include "caf/caf.hpp"
#include "net/profiles.hpp"
#include "sim/rng.hpp"

int main() {
  const int images = 16;
  const int kBins = 8;
  const int kSamplesPerImage = 500;

  sim::Engine engine(64 * 1024);
  net::Fabric fabric(net::machine_profile(net::Machine::kStampede), images);
  shmem::World shm(engine, fabric,
                   net::sw_profile(net::Library::kShmemMvapich,
                                   net::Machine::kStampede),
                   4 << 20);
  caf::ShmemConduit conduit(shm);
  caf::Runtime rt(conduit);

  std::vector<std::int64_t> result(kBins, 0);
  shm.launch([&] {
    rt.init();
    const int me = rt.this_image();

    // CAF view: a coarray of bins, distributed bin b lives on image
    // (b % images) + 1.
    auto bins = caf::make_coarray<std::int64_t>(rt, {kBins});
    for (int b = 1; b <= kBins; ++b) bins(b) = 0;
    rt.sync_all();

    // OpenSHMEM view of the SAME storage: the coarray's local base is a
    // symmetric heap address, so raw shmem atomics can target it.
    auto* bins_sym = reinterpret_cast<std::int64_t*>(
        rt.local_addr(bins.offset()));

    sim::Rng rng(2024 + static_cast<std::uint64_t>(me));
    for (int s = 0; s < kSamplesPerImage; ++s) {
      const int bin = static_cast<int>(rng.below(kBins));
      const int owner_pe = bin % images;  // 0-based PE for the raw API
      // Raw OpenSHMEM atomic increment on the coarray element — no CAF
      // lock needed for a single-word update (the hybrid payoff).
      shm.add(&bins_sym[bin], 1, owner_pe);
    }
    shm.barrier_all();  // raw SHMEM barrier, interoperating with CAF

    // Back to CAF: gather each image's owned bins and co_sum the totals.
    std::vector<std::int64_t> totals(kBins, 0);
    for (int b = 0; b < kBins; ++b) {
      if (b % images == me - 1) totals[b] = bins(b + 1);
    }
    rt.co_sum(totals.data(), totals.size());
    if (me == 1) result = totals;
    rt.sync_all();
  });
  engine.run();

  std::int64_t total = 0;
  std::printf("hybrid histogram over %d images:\n", images);
  for (int b = 0; b < kBins; ++b) {
    std::printf("  bin %d: %lld\n", b, static_cast<long long>(result[b]));
    total += result[b];
  }
  const std::int64_t expected =
      static_cast<std::int64_t>(images) * kSamplesPerImage;
  std::printf("total %lld (expected %lld)\nhybrid_caf_shmem %s\n",
              static_cast<long long>(total), static_cast<long long>(expected),
              total == expected ? "OK" : "FAILED");
  return total == expected ? 0 : 1;
}
