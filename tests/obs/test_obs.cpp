// Observability subsystem tests: ring wraparound, histogram bucket edges,
// registry handle semantics, span nesting depths on a live stack, exporter
// JSON well-formedness (checked with a tiny recursive-descent validator —
// the same traces CI feeds to `python3 -m json.tool`), analyzer coverage,
// and byte-identical traces for same-seed reruns.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "caf_test_util.hpp"
#include "obs/analyzer.hpp"
#include "obs/export.hpp"

using caftest::Harness;
using caftest::Stack;

namespace {

// --- minimal JSON validator (no dependencies; strict enough to catch the
// usual exporter bugs: trailing commas, unescaped strings, bad numbers) ---

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++pos_;
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') { ++pos_; if (!digits()) return false; }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }
  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// The small instrumented workload the exporter/determinism tests run:
// phases, puts, quiet, a lock cycle, and a final barrier on 4 images.
void traced_workload(caf::Runtime& rt) {
  const int me = rt.this_image();
  const int n = rt.num_images();
  auto arr = caf::make_coarray<std::int64_t>(rt, {16});
  caf::CoLock lock = rt.make_lock();
  rt.sync_all();
  obs::phase("puts");
  const int right = me % n + 1;
  for (int i = 1; i <= 8; ++i) {
    arr.put_scalar(right, {i}, static_cast<std::int64_t>(me * 100 + i));
  }
  rt.sync_memory();
  obs::phase("locked");
  rt.lock(lock, right);
  arr.put_scalar(right, {16}, std::int64_t{7});
  rt.unlock(lock, right);
  rt.sync_all();
}

std::string run_traced_stack() {
  obs::enable({});
  Harness h(Stack::kShmemCray, 4);  // fabric ctor resets the session
  h.run([&] { traced_workload(h.rt()); });
  return obs::chrome_trace_json();
}

}  // namespace

TEST(ObsRing, WraparoundDropsOldestKeepsTotals) {
  obs::Ring ring(4);
  for (int i = 0; i < 10; ++i) {
    obs::Event e;
    e.t0 = i;
    e.t1 = i + 1;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_TRUE(ring.wrapped());
  // Oldest-first visitation of the retained tail: records 6..9.
  sim::Time expect = 6;
  ring.for_each([&](const obs::Event& e) {
    EXPECT_EQ(e.t0, expect);
    ++expect;
  });
  EXPECT_EQ(expect, 10);

  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 0u);
  EXPECT_FALSE(ring.wrapped());

  obs::Ring zero(0);  // capacity 0 = drop everything
  zero.push(obs::Event{});
  EXPECT_EQ(zero.size(), 0u);
}

TEST(ObsHist, BucketEdgesArePowerOfTwoHalfOpen) {
  // bucket i holds durations in [2^(i-1), 2^i); bucket 0 is d <= 0.
  EXPECT_EQ(obs::Hist::bucket_of(-5), 0);
  EXPECT_EQ(obs::Hist::bucket_of(0), 0);
  EXPECT_EQ(obs::Hist::bucket_of(1), 1);
  EXPECT_EQ(obs::Hist::bucket_of(2), 2);
  EXPECT_EQ(obs::Hist::bucket_of(3), 2);
  EXPECT_EQ(obs::Hist::bucket_of(4), 3);
  EXPECT_EQ(obs::Hist::bucket_of(7), 3);
  EXPECT_EQ(obs::Hist::bucket_of(8), 4);
  EXPECT_EQ(obs::Hist::bucket_of((sim::Time{1} << 20)), 21);
  EXPECT_EQ(obs::Hist::bucket_lo(0), 0u);
  EXPECT_EQ(obs::Hist::bucket_lo(1), 1u);
  EXPECT_EQ(obs::Hist::bucket_lo(4), 8u);

  obs::Hist h;
  h.record(3);
  h.record(4);
  h.record(0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum_ns(), 7u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(ObsRegistry, HandlesStayValidAcrossClear) {
  obs::Registry reg;
  std::uint64_t* c = &reg.counter(3, "test.counter");
  *c = 41;
  ++*c;
  EXPECT_EQ(reg.value(3, "test.counter"), 42u);
  EXPECT_EQ(reg.value(0, "test.counter"), 0u);   // same name, untouched pe
  EXPECT_EQ(reg.value(3, "no.such.name"), 0u);   // unknown name
  reg.clear();
  EXPECT_EQ(reg.value(3, "test.counter"), 0u);
  ++*c;  // the cached handle must still point at the live cell
  EXPECT_EQ(reg.value(3, "test.counter"), 1u);
}

TEST(ObsSpan, NestingDepthsAndContainmentOnLiveStack) {
  obs::enable({});
  Harness h(Stack::kShmemCray, 2);
  h.run([&] {
    auto& rt = h.rt();
    auto arr = caf::make_coarray<std::int64_t>(rt, {4});
    if (rt.this_image() == 1) {
      arr.put_scalar(2, {1}, std::int64_t{5});
      rt.sync_memory();
    }
    rt.sync_all();
  });
  // Spans land at END: children precede parents, depth recorded at open.
  bool saw_put = false, saw_quiet = false, saw_barrier = false;
  obs::detail::session().ring(0).for_each([&](const obs::Event& e) {
    EXPECT_LE(e.t0, e.t1);
    const auto cat = static_cast<obs::Cat>(e.cat);
    if (cat == obs::Cat::kPut) saw_put = true;
    if (cat == obs::Cat::kQuiet) saw_quiet = true;
    if (cat == obs::Cat::kBarrier) saw_barrier = true;
  });
  EXPECT_TRUE(saw_put);
  EXPECT_TRUE(saw_quiet);
  EXPECT_TRUE(saw_barrier);
  // Top-level latency histograms were recorded for the spans.
  EXPECT_GE(obs::registry().hist(0, "lat.put").count(), 1u);
  obs::disable();
}

TEST(ObsSpan, ExplicitNestingDepths) {
  obs::enable({});
  Harness h(Stack::kShmemCray, 2);
  h.run([&] {
    auto& rt = h.rt();
    auto& eng = h.engine();
    if (rt.this_image() == 1) {
      obs::Span outer(obs::Cat::kBarrier, 777);
      eng.advance(100);
      {
        obs::Span inner(obs::Cat::kPut, 64, 1);
        eng.advance(50);
      }
      eng.advance(25);
    }
  });
  // Recorded at END: inner (one level deeper) lands before outer, with the
  // inner interval contained in the outer one. rt.init() emits its own
  // spans, so find ours by the distinctive payloads.
  obs::Event inner{}, outer{};
  int found = 0;
  obs::detail::session().ring(0).for_each([&](const obs::Event& e) {
    if (e.a == 64 && static_cast<obs::Cat>(e.cat) == obs::Cat::kPut) {
      inner = e;
      ++found;
    }
    if (e.a == 777) {
      outer = e;
      ++found;
    }
  });
  ASSERT_EQ(found, 2);
  EXPECT_EQ(static_cast<obs::Cat>(outer.cat), obs::Cat::kBarrier);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.b, 1u);
  EXPECT_GE(inner.t0, outer.t0);
  EXPECT_LE(inner.t1, outer.t1);
  EXPECT_EQ(outer.t1 - outer.t0, 175);
  EXPECT_EQ(inner.t1 - inner.t0, 50);
  obs::disable();
}

TEST(ObsExport, ChromeTraceAndStatsAreValidJson) {
  const std::string trace = run_traced_stack();
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace.substr(0, 400);
  // Track metadata and the two pid groups must be present.
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"puts\""), std::string::npos);  // phase instant

  const std::string stats = obs::stats_json();
  EXPECT_TRUE(JsonChecker(stats).valid()) << stats.substr(0, 400);
  EXPECT_NE(stats.find("rma.tracked_puts"), std::string::npos);
  EXPECT_NE(stats.find("\"lat.put\""), std::string::npos);
  obs::disable();
}

TEST(ObsAnalyzer, AttributesNearlyAllWallTime) {
  (void)run_traced_stack();
  const obs::Attribution attr = obs::analyze();
  EXPECT_GE(attr.coverage(), 0.95);
  EXPECT_GT(attr.total.wall_ns, 0.0);
  // The workload marked two phases on every image.
  bool saw_puts = false, saw_locked = false;
  for (const auto& row : attr.phases) {
    if (row.phase == "puts") saw_puts = true;
    if (row.phase == "locked") saw_locked = true;
  }
  EXPECT_TRUE(saw_puts);
  EXPECT_TRUE(saw_locked);
  obs::disable();
}

TEST(ObsDeterminism, SameSeedRunsTraceByteIdentically) {
  const std::string a = run_traced_stack();
  const std::string b = run_traced_stack();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical, not just equivalent
  obs::disable();
}
