// Unit tests for the discrete-event engine: event ordering, fiber lifecycle,
// virtual-clock semantics, blocking/resume, deadlock detection, determinism.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

using namespace sim;
using namespace sim::literals;

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(30_ns, [&] { order.push_back(3); });
  eng.schedule(10_ns, [&] { order.push_back(1); });
  eng.schedule(20_ns, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.schedule(5_ns, [&, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, PastEventsClampToNow) {
  Engine eng;
  Time seen = -1;
  eng.schedule(100_ns, [&] {
    eng.schedule(1_ns, [&] { seen = eng.sim_now(); });
  });
  eng.run();
  EXPECT_EQ(seen, 100_ns);
}

TEST(Engine, FiberAdvancesOwnClock) {
  Engine eng;
  Time t0 = -1, t1 = -1;
  eng.spawn(0, [&] {
    t0 = this_pe::now();
    this_pe::advance(250_ns);
    t1 = this_pe::now();
  });
  eng.run();
  EXPECT_EQ(t0, 0);
  EXPECT_EQ(t1, 250_ns);
  EXPECT_EQ(eng.fibers_unfinished(), 0);
}

TEST(Engine, AdvanceYieldsToEarlierEvents) {
  // A fiber advancing past t=50 must let a t=50 event run before it resumes.
  Engine eng;
  std::vector<int> order;
  eng.schedule(50_ns, [&] { order.push_back(1); });
  eng.spawn(0, [&] {
    this_pe::advance(100_ns);
    order.push_back(2);
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, TickDoesNotYield) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(50_ns, [&] { order.push_back(1); });
  eng.spawn(0, [&] {
    Engine::current()->tick(100_ns);
    order.push_back(2);  // runs before the t=50 event: tick never yields
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Engine, BlockAndResume) {
  Engine eng;
  Time resumed_at = -1;
  Fiber* waiter = nullptr;
  eng.spawn(0, [&] {
    waiter = Engine::current()->current_fiber();
    Engine::current()->block();
    resumed_at = this_pe::now();
  });
  eng.schedule(10_ns, [&] { eng.resume(*waiter, 70_ns); });
  eng.run();
  EXPECT_EQ(resumed_at, 70_ns);
}

TEST(Engine, ResumeNeverMovesClockBackwards) {
  Engine eng;
  Time resumed_at = -1;
  Fiber* waiter = nullptr;
  eng.spawn(0, [&] {
    this_pe::advance(500_ns);
    waiter = Engine::current()->current_fiber();
    Engine::current()->block();
    resumed_at = this_pe::now();
  });
  eng.schedule(600_ns, [&] { eng.resume(*waiter, 100_ns); });
  eng.run();
  EXPECT_EQ(resumed_at, 500_ns);  // clock stays at max(own, resume time)
}

TEST(Engine, ManyFibersInterleaveDeterministically) {
  auto run_once = [] {
    Engine eng;
    std::vector<int> order;
    eng.spawn_pes(16, [&](int pe) {
      for (int r = 0; r < 4; ++r) {
        this_pe::advance(Time{10} * (pe + 1));
        order.push_back(pe * 100 + r);
      }
    });
    eng.run();
    return order;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 64u);
}

TEST(Engine, DeadlockIsReported) {
  Engine eng;
  eng.spawn(0, [&] { Engine::current()->block(); });
  EXPECT_THROW(eng.run(), DeadlockError);
}

TEST(Engine, FiberExceptionPropagates) {
  Engine eng;
  eng.spawn(0, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, SpawnManyFibers) {
  Engine eng(64 * 1024);
  long sum = 0;
  const int n = 2048;
  eng.spawn_pes(n, [&](int pe) {
    this_pe::advance(Time{pe});
    sum += pe;
  });
  eng.run();
  EXPECT_EQ(sum, static_cast<long>(n) * (n - 1) / 2);
  EXPECT_EQ(eng.fibers_unfinished(), 0);
}

TEST(Engine, UnfinishedCounterMatchesScan) {
  // The live counter must track the O(n) recount through spawns, staggered
  // finishes, and a mid-run kill.
  Engine eng;
  std::vector<std::pair<int, int>> probes;
  eng.spawn_pes(8, [&](int pe) { this_pe::advance(Time{10} * (pe + 1)); });
  for (Time t = 0; t <= 100; t += 25) {
    eng.schedule(t, [&] {
      probes.emplace_back(eng.fibers_unfinished(), eng.fibers_unfinished_scan());
    });
  }
  // pe 7 is mid-advance (finishes at t=80) when the kill lands at t=35: it
  // stays counted until its pending resume unwinds it via FiberKilled.
  eng.schedule(35_ns, [&] { eng.kill_pe(7); });
  EXPECT_EQ(eng.fibers_unfinished(), eng.fibers_unfinished_scan());
  eng.run();  // every fiber retires (7 normally, one unwound), so no error
  ASSERT_EQ(probes.size(), 5u);
  for (const auto& [live, scan] : probes) EXPECT_EQ(live, scan);
  EXPECT_EQ(eng.fibers_unfinished(), eng.fibers_unfinished_scan());
}

TEST(Engine, NestedSchedulingFromFibers) {
  Engine eng;
  int hits = 0;
  eng.spawn(0, [&] {
    Engine* e = Engine::current();
    e->schedule(e->now() + 5_ns, [&] { ++hits; });
    this_pe::advance(10_ns);
    EXPECT_EQ(hits, 1);
  });
  eng.run();
  EXPECT_EQ(hits, 1);
}

TEST(Time, Formatting) {
  EXPECT_EQ(format_time(12_ns), "12 ns");
  EXPECT_EQ(format_time(12'340_ns), "12.340 us");
  EXPECT_EQ(format_time(12'340'000_ns), "12.340 ms");
  EXPECT_EQ(format_time(2'500'000'000_ns), "2.500000 s");
}
