// Tests for the deterministic RNG used by all simulated workloads.
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

using sim::Rng;

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(123);
  std::array<int, 8> hist{};
  const int n = 80'000;
  for (int i = 0; i < n; ++i) ++hist[r.below(8)];
  for (int h : hist) {
    EXPECT_NEAR(h, n / 8, n / 8 * 0.1);  // within 10%
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(99);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}
