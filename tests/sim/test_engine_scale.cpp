// Engine-at-scale tests: 16k lazily-stacked fibers synchronizing through a
// pure-sim barrier, stack-pool recycling, kills landing before a fiber's
// first switch-in (no stack ever materializes), and event-node recycling in
// steady state. These ride the Sanitize CI leg too, where the fiber layer
// falls back to the instrumented swapcontext path — same behavior, checked
// twice.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace sim;

namespace {

// Raw-event chain for the steady-state recycling test: one live event at a
// time, each firing schedules the next out of the just-released node.
struct Chain {
  Engine* eng;
  int n = 0;
  int limit = 0;
};

void chain_fire(void* ctx, std::uint64_t, std::uint64_t) {
  auto* c = static_cast<Chain*>(ctx);
  if (++c->n < c->limit) {
    c->eng->schedule_raw(c->eng->sim_now() + 1, &chain_fire, c);
  }
}

}  // namespace

TEST(EngineScale, SixteenKFibersBarrierUnder16KiBStacks) {
  constexpr int kN = 16 * 1024;
  Engine eng(16 * 1024);  // 16 KiB requested stacks
  int arrived = 0;
  long done = 0;
  std::vector<Fiber*> waiters;
  waiters.reserve(kN);
  eng.spawn_pes(kN, [&](int pe) {
    this_pe::advance(Time{pe % 97});
    Engine* e = Engine::current();
    if (++arrived == kN) {
      // Last arriver releases the barrier.
      for (Fiber* f : waiters) e->resume(*f, e->now());
    } else {
      waiters.push_back(e->current_fiber());
      e->block();
    }
    ++done;
  });
  eng.run();
  EXPECT_EQ(done, kN);
  EXPECT_EQ(eng.fibers_unfinished(), 0);
  const EngineStats s = eng.stats();
  // Stacks are lazy but every fiber did run, so each acquired exactly one.
  EXPECT_EQ(s.stack_acquires, static_cast<std::uint64_t>(kN));
  // All 16k block at the barrier simultaneously, so the peak is 16k live
  // stacks: exactly the requested 16 KiB each (already page-aligned).
  EXPECT_EQ(s.stack_bytes_peak, std::uint64_t{kN} * 16 * 1024);
}

TEST(EngineScale, StackPoolRecyclesRunToCompletionFibers) {
  constexpr int kN = 512;
  Engine eng(16 * 1024);
  long sum = 0;
  // Each fiber runs to completion inside its own resume event, so its stack
  // returns to the pool before the next fiber's first switch-in: the whole
  // wave runs on a handful of mappings.
  eng.spawn_pes(kN, [&](int pe) { sum += pe; });
  eng.run();
  EXPECT_EQ(sum, static_cast<long>(kN) * (kN - 1) / 2);
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.stack_acquires, static_cast<std::uint64_t>(kN));
  EXPECT_GE(s.stack_reuses, static_cast<std::uint64_t>(kN - 1));
  EXPECT_EQ(s.stack_bytes_peak, std::uint64_t{16} * 1024);
  EXPECT_EQ(s.stack_bytes_mapped, std::uint64_t{16} * 1024);
}

TEST(EngineScale, KillBeforeFirstSwitchInAllocatesNoStack) {
  Engine eng(16 * 1024);
  bool victim_ran = false;
  // The kill event is scheduled before the fibers are spawned, so at equal
  // time its sequence number wins and the victim is still kCreated — it
  // must be retired without a stack ever being mapped.
  eng.schedule(0, [&] { eng.kill_pe(1); });
  eng.spawn(0, [&] { this_pe::advance(Time{10}); });
  eng.spawn(1, [&] { victim_ran = true; });
  eng.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(eng.pe_failed(1));
  EXPECT_EQ(eng.fibers_unfinished(), 0);
  EXPECT_EQ(eng.stats().stack_acquires, 1u);  // pe 0 only
}

TEST(EngineScale, MassKillDuringLazyStacksRetiresCleanly) {
  constexpr int kN = 4096;
  constexpr int kKilled = 64;
  Engine eng(16 * 1024);
  long ran = 0;
  eng.schedule(0, [&] {
    for (int pe = 0; pe < kKilled; ++pe) eng.kill_pe(pe);
  });
  eng.spawn_pes(kN, [&](int) {
    this_pe::advance(Time{5});
    ++ran;
  });
  eng.run();
  EXPECT_EQ(ran, static_cast<long>(kN - kKilled));
  EXPECT_EQ(eng.fibers_unfinished(), 0);
  EXPECT_EQ(eng.stats().stack_acquires,
            static_cast<std::uint64_t>(kN - kKilled));
}

TEST(EngineScale, SteadyStateEventChainRecyclesNodes) {
  Engine eng;
  Chain c{&eng, 0, 100'000};
  eng.schedule_raw(0, &chain_fire, &c);
  eng.run();
  EXPECT_EQ(c.n, c.limit);
  const EngineStats s = eng.stats();
  EXPECT_EQ(s.events, static_cast<std::uint64_t>(c.limit));
  // One live event at a time: after the first node, every schedule is a
  // pool hit. Steady-state scheduling never touches the heap.
  EXPECT_LE(s.event_pool_misses, 2u);
  EXPECT_GE(s.event_pool_hits, s.events - 2);
  EXPECT_LE(s.event_slab_allocs, 1u);
}
