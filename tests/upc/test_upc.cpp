// Tests for the UPC-style runtime over OpenSHMEM: block-cyclic layout
// arithmetic (property-tested against a reference enumeration), shared
// array reads/writes, forall affinity, global locks, and collectives.
#include "upc/upc.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "net/profiles.hpp"
#include "sim/rng.hpp"

using namespace upc;

namespace {

struct Harness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  shmem::World world;
  Runtime rt;

  explicit Harness(int threads)
      : fabric(net::machine_profile(net::Machine::kStampede), threads),
        world(engine, fabric,
              net::sw_profile(net::Library::kShmemMvapich,
                              net::Machine::kStampede),
              2 << 20),
        rt(world) {}

  void run(std::function<void()> main) {
    world.launch(std::move(main));
    engine.run();
  }
};

}  // namespace

TEST(UpcLayout, MatchesReferenceEnumeration) {
  // Reference: deal elements into blocks round-robin over threads and
  // compare owner/local_index/local_count against the closed forms.
  sim::Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const int threads = 1 + static_cast<int>(rng.below(9));
    const std::int64_t block = 1 + static_cast<std::int64_t>(rng.below(7));
    const std::int64_t n = static_cast<std::int64_t>(rng.below(200));
    Layout l{n, block, threads};
    std::map<int, std::int64_t> counts;
    std::map<int, std::int64_t> next_slot;
    for (std::int64_t i = 0; i < n; ++i) {
      const int owner = static_cast<int>((i / block) % threads);
      ASSERT_EQ(l.owner(i), owner) << "i=" << i;
      // Reference local index: elements arrive at the owner in order.
      ASSERT_EQ(l.local_index(i), next_slot[owner]) << "i=" << i;
      ++next_slot[owner];
      ++counts[owner];
    }
    for (int t = 0; t < threads; ++t) {
      ASSERT_EQ(l.local_count(t), counts[t])
          << "t=" << t << " n=" << n << " b=" << block << " T=" << threads;
    }
  }
}

TEST(Upc, SharedArrayReadWriteRoundTrip) {
  Harness h(6);
  h.run([&] {
    auto a = h.rt.all_alloc<int>(50, 4);  // shared [4] int a[50]
    h.rt.barrier();
    // Thread 0 writes every element; everyone reads them all back.
    if (h.rt.mythread() == 0) {
      for (std::int64_t i = 0; i < 50; ++i) a.write(i, static_cast<int>(i * 3));
    }
    h.rt.barrier();
    for (std::int64_t i = 0; i < 50; ++i) {
      ASSERT_EQ(a.read(i), static_cast<int>(i * 3)) << "i=" << i;
    }
    h.rt.barrier();
  });
}

TEST(Upc, ForallRunsWithAffinityExactlyOnce) {
  Harness h(5);
  std::vector<int> touch_count(40, 0);
  h.run([&] {
    auto a = h.rt.all_alloc<long>(40, 3);
    h.rt.barrier();
    h.rt.forall(a, [&](std::int64_t i) {
      // Affinity: the executing thread must own the element.
      EXPECT_EQ(a.layout().owner(i), h.rt.mythread());
      EXPECT_NE(a.local_ptr(i), nullptr);
      ++touch_count[static_cast<std::size_t>(i)];
    });
    h.rt.barrier();
  });
  for (int c : touch_count) EXPECT_EQ(c, 1);
}

TEST(Upc, LocalPtrOnlyWithAffinity) {
  Harness h(4);
  h.run([&] {
    auto a = h.rt.all_alloc<double>(16, 2);
    h.rt.barrier();
    for (std::int64_t i = 0; i < 16; ++i) {
      const bool mine = a.layout().owner(i) == h.rt.mythread();
      EXPECT_EQ(a.local_ptr(i) != nullptr, mine);
    }
    // Local writes through the pointer are visible to remote reads.
    h.rt.forall(a, [&](std::int64_t i) {
      *a.local_ptr(i) = h.rt.mythread() * 100.0 + static_cast<double>(i);
    });
    h.rt.barrier();
    if (h.rt.mythread() == 1) {
      for (std::int64_t i = 0; i < 16; ++i) {
        EXPECT_DOUBLE_EQ(a.read(i),
                         a.layout().owner(i) * 100.0 + static_cast<double>(i));
      }
    }
    h.rt.barrier();
  });
}

TEST(Upc, GlobalLockMutualExclusion) {
  Harness h(10);
  int counter = 0;
  h.run([&] {
    auto* lck = h.rt.global_lock_alloc();
    for (int round = 0; round < 3; ++round) {
      h.rt.lock(lck);
      const int snap = counter;
      h.engine.advance(400);
      counter = snap + 1;
      h.rt.unlock(lck);
    }
    h.rt.barrier();
  });
  EXPECT_EQ(counter, 30);
}

TEST(Upc, Collectives) {
  Harness h(7);
  h.run([&] {
    const int me = h.rt.mythread();
    EXPECT_EQ(h.rt.all_reduce<long>(me + 1, shmem::ReduceOp::kSum), 28);
    EXPECT_EQ(h.rt.all_reduce<long>(me, shmem::ReduceOp::kMax), 6);
    EXPECT_DOUBLE_EQ(h.rt.all_broadcast<double>(me == 3 ? 2.5 : 0.0, 3), 2.5);
    h.rt.barrier();
  });
}

TEST(Upc, HistogramApp) {
  // A small end-to-end UPC program: block-cyclic histogram with forall
  // initialization and lock-protected updates.
  Harness h(8);
  long total = 0;
  h.run([&] {
    auto hist = h.rt.all_alloc<long>(16, 2);
    h.rt.forall(hist, [&](std::int64_t i) { *hist.local_ptr(i) = 0; });
    h.rt.barrier();
    auto* lck = h.rt.global_lock_alloc();
    sim::Rng rng(90 + static_cast<std::uint64_t>(h.rt.mythread()));
    for (int s = 0; s < 40; ++s) {
      const auto bin = static_cast<std::int64_t>(rng.below(16));
      h.rt.lock(lck);
      hist.write(bin, hist.read(bin) + 1);
      h.rt.unlock(lck);
    }
    h.rt.barrier();
    if (h.rt.mythread() == 0) {
      long sum = 0;
      for (std::int64_t b = 0; b < 16; ++b) sum += hist.read(b);
      total = sum;
    }
    h.rt.barrier();
  });
  EXPECT_EQ(total, 8 * 40);
}
