// Tests for the Cray-CAF baseline runtime: allocation, RMA, strided path,
// barrier, ticket locks, and collectives.
#include "craycaf/craycaf.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

using namespace craycaf;

namespace {

struct Harness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  Runtime rt;

  explicit Harness(int images, std::size_t heap = 2 << 20)
      : fabric(net::machine_profile(net::Machine::kXC30), images),
        rt(engine, fabric, heap) {}

  void run(std::function<void()> main) {
    rt.launch(std::move(main));
    engine.run();
  }
};

}  // namespace

TEST(CrayCaf, ImagesAndAllocation) {
  Harness h(8);
  std::vector<std::uint64_t> offs(8);
  h.run([&] {
    EXPECT_EQ(h.rt.num_images(), 8);
    const std::uint64_t off = h.rt.allocate(256);
    offs[h.rt.this_image() - 1] = off;
  });
  for (int i = 1; i < 8; ++i) EXPECT_EQ(offs[i], offs[0]);
}

TEST(CrayCaf, PutGetRoundTrip) {
  Harness h(20);
  h.run([&] {
    const std::uint64_t off = h.rt.allocate(64);
    const int me = h.rt.this_image();
    auto* mine = reinterpret_cast<int*>(h.rt.local_addr(off));
    mine[0] = me * 11;
    h.rt.sync_all();
    const int right = me % h.rt.num_images() + 1;
    int got = 0;
    h.rt.get_bytes(&got, right, off, sizeof got);
    EXPECT_EQ(got, right * 11);
    h.rt.sync_all();
  });
}

TEST(CrayCaf, StridedPutScatters) {
  Harness h(4);
  h.run([&] {
    const std::uint64_t off = h.rt.allocate(64 * sizeof(int));
    std::memset(h.rt.local_addr(off), 0, 64 * sizeof(int));
    h.rt.sync_all();
    if (h.rt.this_image() == 1) {
      std::vector<int> src(8);
      std::iota(src.begin(), src.end(), 500);
      h.rt.put_strided_1d(2, off, 4, src.data(), 1, sizeof(int), 8);
    }
    h.rt.sync_all();
    if (h.rt.this_image() == 2) {
      const auto* v = reinterpret_cast<const int*>(h.rt.local_addr(off));
      for (int i = 0; i < 8; ++i) EXPECT_EQ(v[4 * i], 500 + i);
    }
    h.rt.sync_all();
  });
}

TEST(CrayCaf, BarrierSynchronizes) {
  Harness h(16);
  h.run([&] {
    h.engine.advance(1'000 * h.rt.this_image());
    h.rt.sync_all();
    EXPECT_GE(h.engine.now(), 16'000);
  });
}

TEST(CrayCaf, TicketLockMutualExclusion) {
  Harness h(16);
  int counter = 0, inside = 0, max_inside = 0;
  h.run([&] {
    CoLock lck = h.rt.make_lock();
    for (int round = 0; round < 3; ++round) {
      h.rt.lock(lck, 1);
      ++inside;
      max_inside = std::max(max_inside, inside);
      const int snap = counter;
      h.engine.advance(600);
      counter = snap + 1;
      --inside;
      h.rt.unlock(lck, 1);
    }
    h.rt.sync_all();
  });
  EXPECT_EQ(counter, 48);
  EXPECT_EQ(max_inside, 1);
}

TEST(CrayCaf, TicketLockIsFair) {
  Harness h(6);
  std::vector<int> order;
  h.run([&] {
    CoLock lck = h.rt.make_lock();
    const int me = h.rt.this_image();
    h.engine.advance(static_cast<sim::Time>(me) * 300'000);
    h.rt.lock(lck, 1);
    order.push_back(me);
    h.engine.advance(40'000);
    h.rt.unlock(lck, 1);
    h.rt.sync_all();
  });
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[i], i + 1);
}

TEST(CrayCaf, CoSumMatchesSerial) {
  for (int n : {1, 2, 5, 8, 13}) {
    Harness h(n);
    h.run([&] {
      double v[2] = {h.rt.this_image() * 1.0, 0.5};
      h.rt.co_sum_f64(v, 2);
      EXPECT_DOUBLE_EQ(v[0], n * (n + 1) / 2.0);
      EXPECT_DOUBLE_EQ(v[1], 0.5 * n);
    });
  }
}
