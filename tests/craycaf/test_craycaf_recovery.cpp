// Failure-recovery tests for the Cray-CAF baseline's centralized ticket
// lock: dead-holder ticket reclamation (the owner-ring protocol), dead-home
// fast paths, and the stat= RMA variants.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "craycaf/craycaf.hpp"
#include "net/fault.hpp"

namespace {

struct FaultHarness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  net::FaultInjector injector;
  craycaf::Runtime rt;

  FaultHarness(int images, const net::FaultPlan& plan,
               std::size_t heap = 2 << 20)
      : fabric(net::machine_profile(net::Machine::kXC30), images),
        injector(plan, images, fabric.profile().cores_per_node),
        rt(engine, fabric, heap) {
    fabric.set_fault_injector(&injector);
    injector.arm(engine);
  }

  void run(std::function<void()> main) {
    rt.launch(std::move(main));
    engine.run();
  }
};

}  // namespace

TEST(CrayCafRecovery, DeadTicketHolderIsSkippedAndReportedOnce) {
  net::FaultPlan plan;
  plan.kill_pe(1, 2'000'000);  // image 2 dies holding the lock
  FaultHarness h(4, plan);
  int reclaim_reports = 0;
  std::vector<int> order;
  h.run([&] {
    auto& rt = h.rt;
    const int me = rt.this_image();
    const craycaf::CoLock lck = rt.make_lock();
    const std::uint64_t owner_off = rt.allocate(8);
    std::memset(rt.local_addr(owner_off), 0, 8);
    rt.sync_all();
    if (me == 2) {
      rt.lock(lck, 1);
      (void)rt.dmapp().aswap(0, owner_off, 2);
      for (;;) h.engine.advance(100'000);  // dies inside the critical section
    }
    h.engine.advance(500'000);  // queue up behind the doomed holder
    const int st = rt.lock_stat(lck, 1);
    EXPECT_TRUE(st == craycaf::kStatOk || st == craycaf::kStatFailedImage)
        << st;
    if (st == craycaf::kStatFailedImage) ++reclaim_reports;
    const auto prev =
        static_cast<std::int64_t>(rt.dmapp().aswap(0, owner_off, me));
    EXPECT_TRUE(prev == 0 || prev == 2)  // clean release or the corpse
        << "image " << prev << " was still inside the critical section";
    order.push_back(me);
    h.engine.advance(20'000);
    (void)rt.dmapp().acswap(0, owner_off, static_cast<std::uint64_t>(me), 0);
    EXPECT_EQ(rt.unlock_stat(lck, 1), craycaf::kStatOk);
    // No final sync_all: the vendor barrier has no failed-image semantics
    // and would hang on the corpse.
  });
  EXPECT_EQ(reclaim_reports, 1);  // exactly the CAS winner reports
  EXPECT_EQ(order.size(), 3u);    // every survivor eventually acquired
}

TEST(CrayCafRecovery, DeadHomeImageFailsFast) {
  net::FaultPlan plan;
  plan.kill_pe(0, 1'000'000);  // image 1 hosts the lock
  FaultHarness h(3, plan);
  h.run([&] {
    auto& rt = h.rt;
    const int me = rt.this_image();
    const craycaf::CoLock lck = rt.make_lock();
    const std::uint64_t off = rt.allocate(8);
    rt.sync_all();
    if (me == 1) {
      for (;;) h.engine.advance(50'000);
    }
    if (me == 2) {
      // Acquire before the home dies; release after.
      EXPECT_EQ(rt.lock_stat(lck, 1), craycaf::kStatOk);
      h.engine.advance(2'000'000);
      EXPECT_EQ(rt.unlock_stat(lck, 1), craycaf::kStatFailedImage);
      // The held-ticket bookkeeping is gone: a second unlock is a no-op.
      EXPECT_EQ(rt.unlock_stat(lck, 1), craycaf::kStatUnlocked);
      return;
    }
    h.engine.advance(2'000'000);
    EXPECT_EQ(rt.image_status(1), craycaf::kStatFailedImage);
    EXPECT_EQ(rt.lock_stat(lck, 1), craycaf::kStatFailedImage);
    EXPECT_EQ(rt.unlock_stat(lck, 1), craycaf::kStatUnlocked);
    std::int64_t v = 7;
    EXPECT_EQ(rt.put_bytes_stat(1, off, &v, sizeof v),
              craycaf::kStatFailedImage);
    std::int64_t g = 0;
    EXPECT_EQ(rt.get_bytes_stat(&g, 1, off, sizeof g),
              craycaf::kStatFailedImage);
  });
}

TEST(CrayCafRecovery, FaultFreeResilientLockStillMutuallyExcludes) {
  // Kills armed (so the resilient ring layout is active) but the victim dies
  // only after all lock traffic is done: the ticket protocol must behave
  // exactly like the plain one while everyone is alive.
  net::FaultPlan plan;
  plan.kill_pe(3, 50'000'000);  // far after the workload
  FaultHarness h(4, plan);
  std::vector<int> order;
  h.run([&] {
    auto& rt = h.rt;
    const int me = rt.this_image();
    const craycaf::CoLock lck = rt.make_lock();
    rt.sync_all();
    h.engine.advance(static_cast<sim::Time>(me) * 100'000);
    EXPECT_EQ(rt.lock_stat(lck, 1), craycaf::kStatOk);
    order.push_back(me);
    h.engine.advance(30'000);
    EXPECT_EQ(rt.unlock_stat(lck, 1), craycaf::kStatOk);
    if (me != 4) return;  // image 4 is the (late) victim: spin until killed
    for (;;) h.engine.advance(100'000);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));  // ticket FIFO
}
