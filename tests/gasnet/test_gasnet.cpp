// Tests for the GASNet-like conduit: put/get semantics, nbi + sync, active
// messages (fire-and-forget and reply), AM-emulated atomics, barrier.
#include "gasnet/gasnet.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "net/profiles.hpp"

using namespace gasnet;

namespace {

struct Harness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  World world;

  explicit Harness(int nodes, net::Machine m = net::Machine::kStampede,
                   std::size_t seg = 1 << 20)
      : fabric(net::machine_profile(m), nodes),
        world(engine, fabric, net::sw_profile(net::Library::kGasnet, m), seg) {}

  void run(std::function<void()> main) {
    world.launch(std::move(main));
    engine.run();
  }
};

constexpr std::uint64_t kOff = gasnet::World::reserved_bytes() + 64;

}  // namespace

TEST(Gasnet, BlockingPutIsRemotelyComplete) {
  Harness h(32);
  h.run([&] {
    if (h.world.mynode() == 0) {
      const std::int64_t v = 1234;
      const sim::Time t0 = h.engine.now();
      h.world.put(16, kOff, &v, sizeof v);
      // gasnet_put blocks for the full delivery (≥ wire latency).
      EXPECT_GE(h.engine.now() - t0, h.fabric.profile().hw_latency);
      // Data is already visible at the target without any further sync.
      std::int64_t check = 0;
      std::memcpy(&check, h.world.seg(16) + kOff, sizeof check);
      EXPECT_EQ(check, 1234);
    }
  });
}

TEST(Gasnet, NbiPutsCompleteAtSync) {
  Harness h(32);
  h.run([&] {
    if (h.world.mynode() == 0) {
      std::vector<char> buf(4096, 'a');
      for (int i = 0; i < 10; ++i) {
        h.world.put_nbi(16, kOff + i * 4096, buf.data(), buf.size());
      }
      h.world.wait_syncnbi_puts();
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(static_cast<char>(*(h.world.seg(16) + kOff + i * 4096)), 'a');
      }
    }
  });
}

TEST(Gasnet, GetReadsRemote) {
  Harness h(32);
  h.run([&] {
    if (h.world.mynode() == 16) {
      const std::int64_t v = 77;
      std::memcpy(h.world.seg(16) + kOff, &v, sizeof v);
    }
    h.world.barrier();
    if (h.world.mynode() == 0) {
      std::int64_t got = 0;
      h.world.get(&got, 16, kOff, sizeof got);
      EXPECT_EQ(got, 77);
    }
  });
}

TEST(Gasnet, AmRequestRunsHandlerOnTarget) {
  Harness h(32);
  int handler_runs = 0;
  const int hidx = h.world.register_handler(
      [&](const Token& tok, std::span<const std::byte> payload,
          std::uint64_t a0, std::uint64_t a1) -> std::uint64_t {
        ++handler_runs;
        EXPECT_EQ(tok.src_node, 0);
        EXPECT_EQ(a0, 5u);
        EXPECT_EQ(a1, 6u);
        EXPECT_EQ(payload.size(), 3u);
        return 0;
      });
  h.run([&] {
    if (h.world.mynode() == 0) {
      const char pay[3] = {'x', 'y', 'z'};
      h.world.am_request(16, hidx, 5, 6, pay, sizeof pay);
    }
    h.world.barrier();
  });
  EXPECT_EQ(handler_runs, 1);
}

TEST(Gasnet, AmReplyEmulatesFetchAdd) {
  // The exact pattern the CAF-over-GASNet conduit uses for atomics.
  Harness h(32);
  const int fadd = h.world.register_handler(
      [&](const Token& tok, std::span<const std::byte>, std::uint64_t off,
          std::uint64_t add) -> std::uint64_t {
        // The handler runs on the target: read-modify-write its segment.
        std::int64_t v = 0;
        std::memcpy(&v, h.world.seg(16) + off, sizeof v);
        const std::int64_t neu = v + static_cast<std::int64_t>(add);
        tok.world.domain().poke(16, off, &neu, sizeof neu, tok.when);
        return static_cast<std::uint64_t>(v);
      });
  h.run([&] {
    if (h.world.mynode() != 16) {
      (void)h.world.am_request_reply(16, fadd, kOff, 1);
    }
    h.world.barrier();
    if (h.world.mynode() == 0) {
      std::int64_t v = 0;
      std::memcpy(&v, h.world.seg(16) + kOff, sizeof v);
      EXPECT_EQ(v, 31);  // 31 requesters
    }
  });
}

TEST(Gasnet, AmAtomicsSlowerThanShmemNicAtomics) {
  // §III: remote atomics give SHMEM an edge over GASNet. Measure one
  // emulated fetch-add round trip vs the fabric's NIC AMO timing.
  Harness h(32, net::Machine::kTitan);
  const int noop = h.world.register_handler(
      [](const Token&, std::span<const std::byte>, std::uint64_t,
         std::uint64_t) -> std::uint64_t { return 0; });
  sim::Time am_rt = 0;
  h.run([&] {
    if (h.world.mynode() == 0) {
      const sim::Time t0 = h.engine.now();
      (void)h.world.am_request_reply(16, noop, 0, 0);
      am_rt = h.engine.now() - t0;
    }
  });
  net::Fabric f2(net::machine_profile(net::Machine::kTitan), 32);
  const auto nic = f2.submit_amo(
      0, 16, net::sw_profile(net::Library::kShmemCray, net::Machine::kTitan), 0);
  EXPECT_GT(am_rt, nic.complete);
}

TEST(Gasnet, BarrierSynchronizesStaggeredNodes) {
  Harness h(24);
  h.run([&] {
    h.engine.advance(1'000 * (h.world.mynode() + 1));
    h.world.barrier();
    EXPECT_GE(h.engine.now(), 24'000);
  });
}

TEST(Gasnet, BlockUntilWakesOnAmPoke) {
  Harness h(2);
  const int setter = h.world.register_handler(
      [&](const Token& tok, std::span<const std::byte>, std::uint64_t off,
          std::uint64_t val) -> std::uint64_t {
        const std::int64_t v = static_cast<std::int64_t>(val);
        tok.world.domain().poke(1, off, &v, sizeof v, tok.when);
        return 0;
      });
  h.run([&] {
    if (h.world.mynode() == 1) {
      h.world.block_until(kOff, [](std::int64_t v) { return v == 42; });
      EXPECT_GT(h.engine.now(), 0);
    } else {
      h.engine.advance(10'000);
      h.world.am_request(1, setter, kOff, 42);
    }
  });
}
