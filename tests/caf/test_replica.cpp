// Replica-layer tests: deterministic ownership/promotion (the pure
// ReplicaMap replay), chained-write durability across a primary kill,
// suspicion-steered read fallback, and anti-entropy convergence back to
// the full replication factor. See DESIGN.md §4d.
#include "caf/replica.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "caf_test_util.hpp"
#include "net/fault.hpp"
#include "obs/obs.hpp"

using caf::repl::Options;
using caf::repl::ReplicaMap;
using caf::repl::ShardStore;
using caftest::Harness;
using caftest::Stack;

namespace {

std::uint64_t repl(int pe, const char* name) {
  return obs::registry().value(pe, name);
}

std::uint64_t repl_sum(int images, const char* name) {
  std::uint64_t s = 0;
  for (int pe = 0; pe < images; ++pe) s += repl(pe, name);
  return s;
}

/// A bounded retry policy and a fast detector, so exhaustion verdicts (and
/// the stalls ops to a dead-but-undeclared peer pay) stay in the tens of
/// microseconds and declaration lands while the workload is still running.
net::FaultPlan bounded_plan() {
  net::FaultPlan plan;
  plan.retry.max_retransmits = 5;
  plan.retry.rto_min = 2'000;
  plan.retry.rto_max = 20'000;
  plan.fd.heartbeat_period = 10'000;
  plan.fd.miss_threshold = 3;
  plan.fd.suspicion_grace = 50'000;
  return plan;
}

}  // namespace

// ---------------------------------------------------------------------------
// ReplicaMap: pure placement/promotion replay
// ---------------------------------------------------------------------------

TEST(ReplicaMap, InitialPlacementIsHomePrimaryOnDistinctNodes) {
  constexpr int kImages = 32, kCpn = 16, kR = 3;
  for (std::int64_t shard = 0; shard < kImages; ++shard) {
    const auto ow = ReplicaMap::compute_owners(shard, kImages, kCpn, kR, {});
    ASSERT_EQ(ow.size(), static_cast<std::size_t>(kR)) << "shard " << shard;
    EXPECT_EQ(ow[0], static_cast<int>(shard % kImages));  // home = primary
    // 32 images / 16 per node = 2 nodes; R=3 > nodes, so the first two
    // owners land on distinct nodes and only the third may repeat one.
    EXPECT_NE(ow[0] / kCpn, ow[1] / kCpn) << "shard " << shard;
    EXPECT_EQ(std::set<int>(ow.begin(), ow.end()).size(), ow.size());
  }
}

TEST(ReplicaMap, PrimaryDeathPromotesTheFirstSurvivingReplica) {
  constexpr int kImages = 32, kCpn = 16, kR = 2;
  const std::int64_t shard = 5;
  const auto before = ReplicaMap::compute_owners(shard, kImages, kCpn, kR, {});
  ASSERT_EQ(before.size(), 2u);
  const auto after =
      ReplicaMap::compute_owners(shard, kImages, kCpn, kR, {before[0]});
  ASSERT_EQ(after.size(), 2u);
  // The old replica is promoted (order preserved), a live non-owner joins.
  EXPECT_EQ(after[0], before[1]);
  EXPECT_NE(after[1], before[0]);
  EXPECT_NE(after[1], before[1]);
}

TEST(ReplicaMap, ReplayIsDeterministicAndOrderSensitiveOnlyThroughState) {
  constexpr int kImages = 24, kCpn = 8, kR = 3;
  // Same declared multiset, same order => identical maps on every caller,
  // regardless of when each caller consumed the declarations. Replaying
  // one-at-a-time must match replaying the batch.
  const std::vector<int> declared = {7, 3, 15, 9};
  for (std::int64_t shard = 0; shard < kImages; ++shard) {
    const auto batch =
        ReplicaMap::compute_owners(shard, kImages, kCpn, kR, declared);
    auto incremental = ReplicaMap::compute_owners(shard, kImages, kCpn, kR, {});
    for (std::size_t k = 1; k <= declared.size(); ++k) {
      incremental = ReplicaMap::compute_owners(
          shard, kImages, kCpn, kR,
          std::vector<int>(declared.begin(), declared.begin() + k));
    }
    EXPECT_EQ(batch, incremental) << "shard " << shard;
    for (const int pe : declared) {
      EXPECT_EQ(std::find(batch.begin(), batch.end(), pe), batch.end());
    }
  }
}

TEST(ReplicaMap, ShrinksBelowRWhenSurvivorsRunOut) {
  constexpr int kImages = 4, kCpn = 2, kR = 3;
  std::vector<int> declared;
  for (int pe = 1; pe < kImages; ++pe) declared.push_back(pe);
  const auto ow = ReplicaMap::compute_owners(0, kImages, kCpn, kR, declared);
  ASSERT_EQ(ow.size(), 1u);  // one survivor left; no invented owners
  EXPECT_EQ(ow[0], 0);
}

// ---------------------------------------------------------------------------
// ShardStore: fault-free protocol
// ---------------------------------------------------------------------------

TEST(ShardStore, FaultFreeUpdateReadRoundtripAndFullReplication) {
  constexpr int kImages = 8;
  Harness h(Stack::kShmemCray, kImages);
  obs::registry().clear();
  std::vector<int> debts(kImages + 1, -1);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    ShardStore store(rt, Options{.replication = 2,
                                 .num_shards = kImages,
                                 .slots_per_shard = 8,
                                 .slot_bytes = 8,
                                 .num_locks = 4});
    // Every image increments every shard's slot (me % 8) once.
    const std::int64_t slot = me % 8;
    for (std::int64_t s = 0; s < kImages; ++s) {
      EXPECT_TRUE(store.update(s, slot, [](void* p) {
        std::int64_t v = 0;
        std::memcpy(&v, p, sizeof(v));
        ++v;
        std::memcpy(p, &v, sizeof(v));
      }));
    }
    rt.sync_all();
    std::int64_t v = 0;
    ASSERT_TRUE(store.read(&v, me % kImages, slot));
    EXPECT_EQ(v, 1);
    debts[static_cast<std::size_t>(me)] = store.under_replicated_local();
  });
  for (int img = 1; img <= kImages; ++img) {
    EXPECT_EQ(debts[static_cast<std::size_t>(img)], 0) << "image " << img;
  }
  // Every write acked, nobody fell back off the primary, no retries.
  EXPECT_EQ(repl_sum(kImages, "repl.writes_acked"),
            repl_sum(kImages, "repl.writes"));
  EXPECT_EQ(repl_sum(kImages, "repl.write_retries"), 0u);
  EXPECT_EQ(repl_sum(kImages, "repl.read_fallbacks"), 0u);
  EXPECT_EQ(repl_sum(kImages, "repl.promotions"), 0u);
}

// ---------------------------------------------------------------------------
// ShardStore: primary kill — durability, promotion, anti-entropy
// ---------------------------------------------------------------------------

TEST(ShardStore, AckedWritesSurvivePrimaryKillAndAntiEntropyRestoresR) {
  constexpr int kImages = 8;
  constexpr int kVictim0 = 2;  // 0-based PE; primary of shard 2
  constexpr std::int64_t kShard = kVictim0;
  net::FaultPlan plan = bounded_plan();
  plan.kill_pe(kVictim0, 60'000);  // mid-stream (setup ends ~10 us)
  Harness h(Stack::kShmemCray, kImages, {}, 4 << 20, plan);
  obs::registry().clear();
  std::vector<std::int64_t> acked(kImages + 1, 0);
  std::vector<std::int64_t> final_count(kImages + 1, -1);
  std::vector<int> debts(kImages + 1, 0);
  h.run([&] {
    auto& rt = h.rt();
    sim::Engine& eng = *sim::Engine::current();
    const int me = rt.this_image();
    ShardStore store(rt, Options{.replication = 2,
                                 .num_shards = kImages,
                                 .slots_per_shard = 4,
                                 .slot_bytes = 8,
                                 .num_locks = 4});
    if (me == kVictim0 + 1) {
      // The victim idles so its death never strands a held lock here (lock
      // reclamation has its own suite); it still heartbeats until killed.
      eng.advance(2'000'000);
      return;
    }
    // Survivors hammer the victim's shard across the kill window.
    for (int u = 0; u < 24; ++u) {
      if (store.update(kShard, 0, [](void* p) {
            std::int64_t v = 0;
            std::memcpy(&v, p, sizeof(v));
            ++v;
            std::memcpy(p, &v, sizeof(v));
          })) {
        ++acked[static_cast<std::size_t>(me)];
      }
      eng.advance(5'000);
    }
    // All writers done (the barrier fixes the global acked total) and the
    // kill declared before the verification reads.
    (void)rt.sync_all_stat();
    for (int i = 0; i < 500 && !eng.pe_declared(kVictim0); ++i) {
      eng.advance(10'000);
    }
    ASSERT_TRUE(eng.pe_declared(kVictim0));
    // Drain re-replication debt, then verify.
    for (int round = 0; round < 64; ++round) {
      store.anti_entropy();
      if (store.under_replicated_local() == 0) break;
      eng.advance(20'000);
    }
    debts[static_cast<std::size_t>(me)] = store.under_replicated_local();
    std::int64_t v = -1;
    EXPECT_TRUE(store.read(&v, kShard, 0));
    final_count[static_cast<std::size_t>(me)] = v;
  });
  std::int64_t total_acked = 0;
  for (int img = 1; img <= kImages; ++img) {
    if (img == kVictim0 + 1) continue;
    total_acked += acked[static_cast<std::size_t>(img)];
    EXPECT_EQ(debts[static_cast<std::size_t>(img)], 0) << "image " << img;
  }
  EXPECT_GT(total_acked, 0);
  // Zero lost acknowledged writes: every survivor's final read covers the
  // global acked total (at-least-once may push the count above it, never
  // below).
  for (int img = 1; img <= kImages; ++img) {
    if (img == kVictim0 + 1) continue;
    EXPECT_GE(final_count[static_cast<std::size_t>(img)], total_acked)
        << "image " << img;
  }
  EXPECT_TRUE(h.engine().pe_declared(kVictim0));
  EXPECT_GE(repl_sum(kImages, "repl.promotions"), 1u);
  EXPECT_GE(repl_sum(kImages, "repl.ae_pulls"), 1u);
}

// ---------------------------------------------------------------------------
// ShardStore: suspicion steers reads off the (probably dead) primary
// ---------------------------------------------------------------------------

TEST(ShardStore, SuspectPrimaryServesReadsFromSyncedReplica) {
  constexpr int kImages = 8;
  constexpr int kVictim0 = 3;
  constexpr std::int64_t kShard = kVictim0;
  net::FaultPlan plan = bounded_plan();
  plan.kill_pe(kVictim0, 80'000);
  // Stretch the suspect->failed dwell so the suspicion window is wide and
  // the read below provably lands inside it.
  plan.fd.suspicion_grace = 2'000'000;
  Harness h(Stack::kShmemCray, kImages, {}, 4 << 20, plan);
  obs::registry().clear();
  h.run([&] {
    auto& rt = h.rt();
    sim::Engine& eng = *sim::Engine::current();
    const int me = rt.this_image();
    ShardStore store(rt, Options{.replication = 2,
                                 .num_shards = kImages,
                                 .slots_per_shard = 4,
                                 .slot_bytes = 8,
                                 .num_locks = 4});
    // Seed the shard while its primary is alive so the replica is synced
    // with real data; everyone (victim included) joins the barrier before
    // the kill lands, then survivors wait for suspicion (not declaration).
    if (me == 1) {
      EXPECT_TRUE(store.update(kShard, 0, [](void* p) {
        const std::int64_t v = 41;
        std::memcpy(p, &v, sizeof(v));
      }));
    }
    rt.sync_all();
    if (me == kVictim0 + 1) {
      eng.advance(3'000'000);
      return;
    }
    while (!rt.image_suspect(kVictim0 + 1) &&
           !eng.pe_declared(kVictim0)) {
      eng.advance(10'000);
    }
    ASSERT_TRUE(rt.image_suspect(kVictim0 + 1));
    ASSERT_FALSE(eng.pe_declared(kVictim0));
    std::int64_t v = 0;
    ASSERT_TRUE(store.read(&v, kShard, 0));
    EXPECT_EQ(v, 41);
  });
  // Every survivor's read was steered off the suspect primary.
  EXPECT_GE(repl_sum(kImages, "repl.read_fallbacks"),
            static_cast<std::uint64_t>(kImages - 1));
  EXPECT_EQ(repl_sum(kImages, "repl.promotions"), 0u);
}
