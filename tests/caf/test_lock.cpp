// Tests for the MCS coarray-lock adaptation (§IV-D): mutual exclusion,
// FIFO handoff, per-image lock instances, try_lock, qnode accounting, and
// behaviour across all conduits (including AM-emulated atomics on GASNet).
#include <gtest/gtest.h>

#include "caf_test_util.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

class LockAllStacks : public ::testing::TestWithParam<Stack> {};
INSTANTIATE_TEST_SUITE_P(Stacks, LockAllStacks,
                         ::testing::ValuesIn(caftest::kAllStacks),
                         [](const auto& info) {
                           std::string s = caftest::to_string(info.param);
                           for (auto& c : s) if (c == '-') c = '_';
                           return s;
                         });

TEST_P(LockAllStacks, MutualExclusionUnderContention) {
  Harness h(GetParam(), 20);
  int counter = 0;
  int in_section = 0;
  int max_in_section = 0;
  h.run([&] {
    CoLock lck = h.rt().make_lock();
    for (int round = 0; round < 4; ++round) {
      h.rt().lock(lck, 1);
      ++in_section;
      max_in_section = std::max(max_in_section, in_section);
      const int snap = counter;
      h.engine().advance(700);  // critical-section work
      counter = snap + 1;
      --in_section;
      h.rt().unlock(lck, 1);
    }
    h.rt().sync_all();
  });
  EXPECT_EQ(counter, 20 * 4);
  EXPECT_EQ(max_in_section, 1);
}

TEST_P(LockAllStacks, LocksOnDifferentImagesAreIndependent) {
  // §IV-D: lck[j] and lck[k] are distinct lock instances; an image may hold
  // both simultaneously.
  Harness h(GetParam(), 6);
  h.run([&] {
    CoLock lck = h.rt().make_lock();
    if (h.rt().this_image() == 1) {
      h.rt().lock(lck, 2);
      h.rt().lock(lck, 3);
      EXPECT_EQ(h.rt().held_qnodes(), 2u);  // M held locks -> M qnodes
      h.rt().unlock(lck, 3);
      h.rt().unlock(lck, 2);
      EXPECT_EQ(h.rt().held_qnodes(), 0u);
    }
    h.rt().sync_all();
  });
}

TEST_P(LockAllStacks, FifoHandoffOrder) {
  // MCS queues are FIFO: with staggered arrival, grant order must follow
  // arrival order.
  Harness h(GetParam(), 8);
  std::vector<int> grant_order;
  h.run([&] {
    CoLock lck = h.rt().make_lock();
    const int me = h.rt().this_image();
    // Stagger arrivals well beyond any AMO round-trip (~5 us) so the queue
    // order is deterministic.
    h.engine().advance(static_cast<sim::Time>(me) * 200'000);
    h.rt().lock(lck, 1);
    grant_order.push_back(me);
    h.engine().advance(50'000);  // hold long enough that others queue up
    h.rt().unlock(lck, 1);
    h.rt().sync_all();
  });
  ASSERT_EQ(grant_order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(grant_order[i], i + 1);
}

TEST_P(LockAllStacks, TryLockNonBlocking) {
  Harness h(GetParam(), 2);
  h.run([&] {
    CoLock lck = h.rt().make_lock();
    if (h.rt().this_image() == 1) {
      EXPECT_TRUE(h.rt().try_lock(lck, 2));
      EXPECT_EQ(h.rt().held_qnodes(), 1u);
      h.rt().unlock(lck, 2);
    }
    h.rt().sync_all();
    if (h.rt().this_image() == 2) {
      h.rt().lock(lck, 2);
    }
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      EXPECT_FALSE(h.rt().try_lock(lck, 2));  // image 2 holds it
      EXPECT_EQ(h.rt().held_qnodes(), 0u);    // failed attempt freed qnode
    }
    h.rt().sync_all();
    if (h.rt().this_image() == 2) h.rt().unlock(lck, 2);
    h.rt().sync_all();
  });
}

TEST_P(LockAllStacks, ErrorsOnMisuse) {
  Harness h(GetParam(), 2);
  h.run([&] {
    CoLock lck = h.rt().make_lock();
    if (h.rt().this_image() == 1) {
      EXPECT_THROW(h.rt().unlock(lck, 1), std::logic_error);  // not held
      h.rt().lock(lck, 1);
      EXPECT_THROW(h.rt().lock(lck, 1), std::logic_error);  // double acquire
      h.rt().unlock(lck, 1);
    }
    h.rt().sync_all();
  });
}

TEST_P(LockAllStacks, CriticalConstruct) {
  Harness h(GetParam(), 12);
  int counter = 0;
  h.run([&] {
    for (int round = 0; round < 3; ++round) {
      h.rt().begin_critical();
      const int snap = counter;
      h.engine().advance(300);
      counter = snap + 1;
      h.rt().end_critical();
    }
    h.rt().sync_all();
  });
  EXPECT_EQ(counter, 36);
}

TEST(Lock, MultipleLockVariables) {
  Harness h(Stack::kShmemCray, 10);
  int c1 = 0, c2 = 0;
  h.run([&] {
    CoLock a = h.rt().make_lock();
    CoLock b = h.rt().make_lock();
    const int me = h.rt().this_image();
    // Half the images fight over a[1], half over b[2].
    if (me % 2 == 0) {
      h.rt().lock(a, 1);
      const int s = c1;
      h.engine().advance(400);
      c1 = s + 1;
      h.rt().unlock(a, 1);
    } else {
      h.rt().lock(b, 2);
      const int s = c2;
      h.engine().advance(400);
      c2 = s + 1;
      h.rt().unlock(b, 2);
    }
    h.rt().sync_all();
  });
  EXPECT_EQ(c1, 5);
  EXPECT_EQ(c2, 5);
}

TEST(Lock, QnodesComeFromNonSymmetricSlab) {
  // The paper allocates qnodes out of the pre-allocated remotely-accessible
  // buffer; verify the slab high-water mark moves while a lock is held.
  Harness h(Stack::kShmemCray, 2);
  h.run([&] {
    CoLock lck = h.rt().make_lock();
    if (h.rt().this_image() == 1) {
      RemotePtr probe = h.rt().nonsym_alloc(16);
      const std::uint64_t before = probe.offset();
      h.rt().nonsym_free(probe);
      h.rt().lock(lck, 2);
      RemotePtr probe2 = h.rt().nonsym_alloc(16);
      // The qnode occupies the first free slot, pushing the probe further.
      EXPECT_NE(probe2.offset(), before);
      h.rt().nonsym_free(probe2);
      h.rt().unlock(lck, 2);
      RemotePtr probe3 = h.rt().nonsym_alloc(16);
      EXPECT_EQ(probe3.offset(), before);  // slab fully reclaimed
      h.rt().nonsym_free(probe3);
    }
    h.rt().sync_all();
  });
}

TEST(Lock, GasnetLocksSlowerThanShmemLocks) {
  // Figure 8's qualitative claim: locks over Cray SHMEM beat locks over
  // GASNet (AM-emulated atomics).
  auto total_time = [](Stack stack) {
    Harness h(stack, 16);
    sim::Time t = 0;
    h.run([&] {
      CoLock lck = h.rt().make_lock();
      for (int round = 0; round < 5; ++round) {
        h.rt().lock(lck, 1);
        h.rt().unlock(lck, 1);
      }
      h.rt().sync_all();
      t = std::max(t, h.engine().now());
    });
    return t;
  };
  EXPECT_LT(total_time(Stack::kShmemCray), total_time(Stack::kGasnet));
}
