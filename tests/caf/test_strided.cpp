// Tests for the multi-dimensional strided algorithms (§IV-C): correctness
// equivalence of naive vs 2dim_strided across all conduits, message-count
// claims from the paper, and randomized property tests.
#include <gtest/gtest.h>

#include <numeric>

#include "caf_test_util.hpp"
#include "sim/rng.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

namespace {

/// Runs a strided put of `sec` into image 2's coarray and returns the
/// remote result plus the message count.
struct StridedResult {
  std::vector<int> remote;
  StridedStats stats;
};

StridedResult run_strided_put(Stack stack, StridedAlgo algo, Shape shape,
                              Section sec) {
  Options opts;
  opts.strided = algo;
  Harness h(stack, 4, opts, 8 << 20);
  auto result = std::make_shared<StridedResult>();
  h.run([&] {
    auto x = make_coarray<int>(h.rt(), shape);
    for (std::int64_t i = 0; i < x.size(); ++i) x.data()[i] = -1;
    h.rt().sync_all();
    const SectionDesc d = describe(shape, sec);
    if (h.rt().this_image() == 1) {
      std::vector<int> src(static_cast<std::size_t>(d.total));
      std::iota(src.begin(), src.end(), 100);
      result->stats = x.put_section(2, sec, src.data());
    }
    h.rt().sync_all();
    if (h.rt().this_image() == 2) {
      result->remote.assign(x.data(), x.data() + x.size());
    }
    h.rt().sync_all();
  });
  return std::move(*result);
}

/// Reference: what the remote array should contain.
std::vector<int> expected_remote(Shape shape, Section sec) {
  std::vector<int> ref(static_cast<std::size_t>(shape.size()), -1);
  const auto elems = linear_elements(describe(shape, sec));
  for (std::size_t i = 0; i < elems.size(); ++i) {
    ref[static_cast<std::size_t>(elems[i])] = 100 + static_cast<int>(i);
  }
  return ref;
}

}  // namespace

class StridedAllStacks : public ::testing::TestWithParam<Stack> {};
INSTANTIATE_TEST_SUITE_P(Stacks, StridedAllStacks,
                         ::testing::ValuesIn(caftest::kAllStacks),
                         [](const auto& info) {
                           std::string s = caftest::to_string(info.param);
                           for (auto& c : s) if (c == '-') c = '_';
                           return s;
                         });

TEST_P(StridedAllStacks, NaiveAndTwoDimProduceIdenticalMemory) {
  const Shape shape{20, 16, 6};
  const Section sec{{1, 19, 2}, {2, 16, 3}, {1, 6, 2}};
  const auto naive = run_strided_put(GetParam(), StridedAlgo::kNaive, shape, sec);
  const auto twodim =
      run_strided_put(GetParam(), StridedAlgo::kTwoDim, shape, sec);
  const auto ref = expected_remote(shape, sec);
  EXPECT_EQ(naive.remote, ref);
  EXPECT_EQ(twodim.remote, ref);
}

TEST(Strided, PaperMessageCountClaim) {
  // §IV-C: (1:100:2, 1:80:2, 1:100:4) of X(100,100,100):
  // naive = 50*40*25 transfers; 2dim = 1*40*25 (base dim = dim 1).
  const Shape shape{100, 100, 100};
  const Section sec{{1, 100, 2}, {1, 80, 2}, {1, 100, 4}};
  const auto naive =
      run_strided_put(Stack::kShmemCray, StridedAlgo::kNaive, shape, sec);
  EXPECT_EQ(naive.stats.messages, 50u * 40u * 25u);
  const auto twodim =
      run_strided_put(Stack::kShmemCray, StridedAlgo::kTwoDim, shape, sec);
  EXPECT_EQ(twodim.stats.messages, 40u * 25u);
  EXPECT_EQ(twodim.stats.elements, 50u * 40u * 25u);
}

TEST(Strided, BaseDimPrefersLargerOfFirstTwo) {
  // If dim 2 has more strided elements than dim 1, it becomes the base —
  // but dim 3 is never chosen (locality restriction).
  const Shape shape{100, 100, 100};
  const Section sec{{1, 20, 2}, {1, 80, 2}, {1, 100, 1}};  // counts 10,40,100
  const auto r =
      run_strided_put(Stack::kShmemCray, StridedAlgo::kTwoDim, shape, sec);
  EXPECT_EQ(r.stats.messages, 10u * 100u);  // base dim = 2nd (40 elements)
}

TEST(Strided, MatrixOrientedNaiveUsesRowTransfers) {
  // Contiguous innermost dimension: naive sends one putmem per row (the
  // Himeno-favourable case, §V-D), not one per element.
  const Shape shape{64, 32};
  const Section sec{{1, 64, 1}, {1, 32, 2}};
  const auto naive =
      run_strided_put(Stack::kShmemMvapich, StridedAlgo::kNaive, shape, sec);
  EXPECT_EQ(naive.stats.messages, 16u);  // 16 selected columns
  const auto ref = expected_remote(shape, sec);
  EXPECT_EQ(naive.remote, ref);
}

TEST_P(StridedAllStacks, GetSectionMatchesPut) {
  const Shape shape{12, 10, 4};
  const Section sec{{2, 12, 2}, {1, 9, 4}, {1, 4, 3}};
  for (StridedAlgo algo : {StridedAlgo::kNaive, StridedAlgo::kTwoDim}) {
    Options opts;
    opts.strided = algo;
    Harness h(GetParam(), 3, opts);
    h.run([&] {
      auto x = make_coarray<int>(h.rt(), shape);
      for (std::int64_t i = 0; i < x.size(); ++i) {
        x.data()[i] = h.rt().this_image() * 10'000 + static_cast<int>(i);
      }
      h.rt().sync_all();
      if (h.rt().this_image() == 1) {
        const SectionDesc d = describe(shape, sec);
        std::vector<int> got(static_cast<std::size_t>(d.total), -1);
        x.get_section(got.data(), 3, sec);
        const auto elems = linear_elements(d);
        for (std::size_t i = 0; i < elems.size(); ++i) {
          ASSERT_EQ(got[i], 30'000 + static_cast<int>(elems[i]));
        }
      }
      h.rt().sync_all();
    });
  }
}

TEST(Strided, TwoDimFasterThanNaiveOnCray) {
  // §V-B-2: on DMAPP hardware the 2dim algorithm wins big (the paper
  // reports ~9x vs naive).
  const Shape shape{100, 100, 10};
  const Section sec{{1, 100, 2}, {1, 80, 2}, {1, 10, 2}};
  auto timed = [&](StridedAlgo algo) {
    Options opts;
    opts.strided = algo;
    Harness h(Stack::kShmemCray, 18, opts, 8 << 20);
    sim::Time elapsed = 0;
    h.run([&] {
      auto x = make_coarray<int>(h.rt(), shape);
      h.rt().sync_all();
      if (h.rt().this_image() == 1) {
        const SectionDesc d = describe(shape, sec);
        std::vector<int> src(static_cast<std::size_t>(d.total), 7);
        const sim::Time t0 = h.engine().now();
        x.put_section(17, sec, src.data());  // other node
        elapsed = h.engine().now() - t0;
      }
      h.rt().sync_all();
    });
    return elapsed;
  };
  const sim::Time naive = timed(StridedAlgo::kNaive);
  const sim::Time twodim = timed(StridedAlgo::kTwoDim);
  EXPECT_GT(naive, 4 * twodim);
}

TEST(Strided, NaiveEqualsTwoDimOnMvapich) {
  // §V-B-2 (Stampede): MVAPICH2-X's software iput degenerates to the same
  // per-element putmem loop, so the two algorithms perform alike.
  const Shape shape{64, 64, 4};
  const Section sec{{1, 63, 2}, {1, 64, 2}, {1, 4, 1}};
  auto timed = [&](StridedAlgo algo) {
    Options opts;
    opts.strided = algo;
    Harness h(Stack::kShmemMvapich, 18, opts, 8 << 20);
    sim::Time elapsed = 0;
    h.run([&] {
      auto x = make_coarray<int>(h.rt(), shape);
      h.rt().sync_all();
      if (h.rt().this_image() == 1) {
        const SectionDesc d = describe(shape, sec);
        std::vector<int> src(static_cast<std::size_t>(d.total), 7);
        const sim::Time t0 = h.engine().now();
        x.put_section(17, sec, src.data());
        elapsed = h.engine().now() - t0;
      }
      h.rt().sync_all();
    });
    return elapsed;
  };
  const double naive = static_cast<double>(timed(StridedAlgo::kNaive));
  const double twodim = static_cast<double>(timed(StridedAlgo::kTwoDim));
  EXPECT_NEAR(naive / twodim, 1.0, 0.15);
}

TEST(StridedProperty, RandomSectionsAllAlgorithmsAgree) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    const int rank = 1 + static_cast<int>(rng.below(3));
    std::vector<std::int64_t> extents;
    std::int64_t total = 1;
    for (int d = 0; d < rank; ++d) {
      const std::int64_t e = 3 + static_cast<std::int64_t>(rng.below(12));
      extents.push_back(e);
      total *= e;
    }
    Shape shape = [&] {
      switch (rank) {
        case 1: return Shape{extents[0]};
        case 2: return Shape{extents[0], extents[1]};
        default: return Shape{extents[0], extents[1], extents[2]};
      }
    }();
    Section sec = [&] {
      auto t = [&](std::int64_t e) {
        const std::int64_t lo = 1 + static_cast<std::int64_t>(rng.below(
                                        static_cast<std::uint64_t>(e)));
        const std::int64_t hi =
            lo + static_cast<std::int64_t>(rng.below(
                     static_cast<std::uint64_t>(e - lo + 1)));
        const std::int64_t st = 1 + static_cast<std::int64_t>(rng.below(3));
        return Triplet{lo, hi, st};
      };
      switch (rank) {
        case 1: return Section{t(extents[0])};
        case 2: return Section{t(extents[0]), t(extents[1])};
        default:
          return Section{t(extents[0]), t(extents[1]), t(extents[2])};
      }
    }();
    if (describe(shape, sec).total == 0) continue;
    const auto naive =
        run_strided_put(Stack::kShmemCray, StridedAlgo::kNaive, shape, sec);
    const auto twodim =
        run_strided_put(Stack::kShmemCray, StridedAlgo::kTwoDim, shape, sec);
    const auto ref = expected_remote(shape, sec);
    ASSERT_EQ(naive.remote, ref) << "trial " << trial;
    ASSERT_EQ(twodim.remote, ref) << "trial " << trial;
    ASSERT_LE(twodim.stats.messages, naive.stats.messages) << "trial " << trial;
  }
}
