// Failure-recovery tests for the robust MCS coarray lock (reclamation from
// dead holders, queue splicing around dead waiters, dead-home fast paths),
// the stat= synchronization statements (sync images / events), and the
// minimal survivor-team facility — plus a seeded property sweep with
// randomized kill schedules.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "caf_test_util.hpp"
#include "net/fault.hpp"
#include "sim/rng.hpp"

using caftest::Harness;
using caftest::Stack;

// ---------------------------------------------------------------------------
// Lock reclamation
// ---------------------------------------------------------------------------

// The ISSUE acceptance scenario: an image acquires lck[1], is killed while
// holding it, and a survivor subsequently acquires with STAT_FAILED_IMAGE
// reported by exactly one acquisition (the reclamation grant).
TEST(LockRecovery, DeadHolderIsReclaimedAndReportedExactlyOnce) {
  net::FaultPlan plan;
  plan.kill_pe(1, 2'000'000);  // image 2 dies at 2 ms, holding the lock
  Harness h(Stack::kShmemCray, 4, {}, 2 << 20, plan);
  int reclaim_reports = 0;
  std::vector<int> order;
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::CoLock lck = rt.make_lock();
    const std::uint64_t owner_off = rt.allocate_coarray_bytes(8);
    std::memset(rt.local_addr(owner_off), 0, 8);
    rt.sync_all();
    if (me == 2) {
      rt.lock(lck, 1);
      rt.atomic_define(1, owner_off, 2);
      for (;;) h.engine().advance(100'000);  // dies inside the critical section
    }
    h.engine().advance(500'000);  // let the victim acquire first
    const int st = rt.lock_stat(lck, 1);
    ASSERT_TRUE(st == caf::kStatOk || st == caf::kStatFailedImage) << st;
    ASSERT_TRUE(rt.holds_lock(lck, 1));
    if (st == caf::kStatFailedImage) ++reclaim_reports;
    // Mutual exclusion: the previous occupant of the critical section either
    // left cleanly (0) or died inside it.
    const std::int64_t prev = rt.atomic_swap(1, owner_off, me);
    EXPECT_TRUE(prev == 0 || rt.image_status(static_cast<int>(prev)) ==
                                 caf::kStatFailedImage)
        << "image " << prev << " was still inside the critical section";
    order.push_back(me);
    h.engine().advance(50'000);
    EXPECT_EQ(rt.atomic_cas(1, owner_off, me, 0), me);
    EXPECT_EQ(rt.unlock_stat(lck, 1), caf::kStatOk);
    EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
  });
  EXPECT_EQ(reclaim_reports, 1);
  EXPECT_EQ(order.size(), 3u);  // every survivor eventually acquired
}

// The MCS handoff is two puts — name the successor in the home-side holder
// word, then deliver the grant into its qnode — and a granter can die
// between them. That leaves the holder word naming a live image that never
// received the grant; queue repair must detect the undelivered handoff
// (named holder alive, predecessor gone, grant word untouched) and finish
// it, or the successor waits forever. Sweep the kill across the whole
// handoff window so every alignment is covered: before the unlock, between
// the puts, and after delivery.
TEST(LockRecovery, GrantorDiesMidHandoffAtEveryAlignment) {
  constexpr sim::Time kUnlockAt = 100'000;
  for (sim::Time delta = 0; delta <= 3'000; delta += 150) {
    net::FaultPlan plan;
    plan.kill_pe(1, kUnlockAt + delta);  // image 2 dies around its unlock
    Harness h(Stack::kShmemCray, 4, {}, 2 << 20, plan);
    int acquired = 0;
    h.run([&] {
      auto& rt = h.rt();
      const int me = rt.this_image();
      const caf::CoLock lck = rt.make_lock();
      rt.sync_all();
      if (me == 2) {
        rt.lock(lck, 1);
        h.engine().advance(kUnlockAt - h.engine().now());
        (void)rt.unlock_stat(lck, 1);  // the kill lands somewhere in here
        for (;;) h.engine().advance(50'000);
      }
      if (me == 3) {
        h.engine().advance(10'000);  // enqueue behind the doomed holder
        const int st = rt.lock_stat(lck, 1);
        ASSERT_TRUE(st == caf::kStatOk || st == caf::kStatFailedImage)
            << "delta=" << delta << " st=" << st;
        ASSERT_TRUE(rt.holds_lock(lck, 1)) << "delta=" << delta;
        ++acquired;
        h.engine().advance(20'000);
        EXPECT_EQ(rt.unlock_stat(lck, 1), caf::kStatOk) << "delta=" << delta;
      }
      if (me == 4) {
        // Late arrival: the queue must be healthy again after the repair.
        h.engine().advance(300'000);
        const int st = rt.lock_stat(lck, 1);
        ASSERT_TRUE(st == caf::kStatOk || st == caf::kStatFailedImage)
            << "delta=" << delta << " st=" << st;
        ASSERT_TRUE(rt.holds_lock(lck, 1)) << "delta=" << delta;
        ++acquired;
        EXPECT_EQ(rt.unlock_stat(lck, 1), caf::kStatOk) << "delta=" << delta;
      }
      (void)rt.sync_all_stat();
    });
    EXPECT_EQ(acquired, 2) << "delta=" << delta;
  }
}

// Mass pile-on onto a corpse-held lock: the holder dies with nobody
// enqueued, then every survivor calls lock_stat at once. The first repair
// snapshots the home-side records while other survivors are still
// mid-enqueue (tail swap landed, pred record still pending); it must not
// relink members stranded behind a live pending record — doing so invents
// a second successor for some predecessor, the enqueuer's own link-put
// races the relink, and the loser waits forever on a predecessor that
// already moved on. 32 images across two nodes so the enqueue puts span
// both latency classes.
TEST(LockRecovery, SimultaneousPileOnAfterHolderDeath) {
  constexpr int kImages = 32;
  net::FaultPlan plan;
  plan.kill_pe(6, 400'000);  // image 7 dies holding lck[1]
  Harness h(Stack::kShmemCray, kImages, {}, 2 << 20, plan);
  int acquired = 0;
  int reclaim_reports = 0;
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::CoLock lck = rt.make_lock();
    rt.sync_all();
    if (me == 7) {
      rt.lock(lck, 1);
      for (;;) h.engine().advance(100'000);  // dies holding the lock
    }
    h.engine().advance(600'000);  // everyone arrives together, post-kill
    const int st = rt.lock_stat(lck, 1);
    ASSERT_TRUE(st == caf::kStatOk || st == caf::kStatFailedImage)
        << "image " << me << " st=" << st;
    ASSERT_TRUE(rt.holds_lock(lck, 1)) << "image " << me;
    if (st == caf::kStatFailedImage) ++reclaim_reports;
    ++acquired;
    EXPECT_EQ(rt.unlock_stat(lck, 1), caf::kStatOk) << "image " << me;
    EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
  });
  EXPECT_EQ(acquired, kImages - 1);
  EXPECT_EQ(reclaim_reports, 1);
}

// A *waiter* (not the holder) dies in the middle of the queue: the repair
// splices it out and the surviving waiters acquire in their original FIFO
// order, with no STAT_FAILED_IMAGE report (no reclamation happened).
TEST(LockRecovery, DeadWaiterIsSplicedOutPreservingFifo) {
  net::FaultPlan plan;
  plan.kill_pe(3, 2'000'000);  // image 4: mid-queue waiter
  Harness h(Stack::kShmemCray, 6, {}, 2 << 20, plan);
  std::vector<int> order;
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::CoLock lck = rt.make_lock();
    rt.sync_all();
    if (me == 1) {  // the lock's home just waits out the run
      EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
      return;
    }
    if (me == 2) {
      rt.lock(lck, 1);
      order.push_back(me);
      h.engine().advance(5'000'000);  // hold across the waiter's death
      rt.unlock(lck, 1);
      EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
      return;
    }
    // Images 3..6 enqueue staggered: 3 first, then 4 (the victim), 5, 6.
    h.engine().advance(static_cast<sim::Time>(me) * 200'000);
    const int st = rt.lock_stat(lck, 1);  // image 4 dies blocked in here
    EXPECT_EQ(st, caf::kStatOk) << "image " << me;
    order.push_back(me);
    h.engine().advance(20'000);
    rt.unlock(lck, 1);
    EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
  });
  EXPECT_EQ(order, (std::vector<int>{2, 3, 5, 6}));
}

// The image that *hosts* the lock variable dies: acquirers fail fast with
// STAT_FAILED_IMAGE and never acquire; try_lock declines without blocking; a
// survivor that held the lock when the home died gets STAT_FAILED_IMAGE from
// unlock and its bookkeeping is cleaned up.
TEST(LockRecovery, DeadHomeImageFailsFastWithoutAcquiring) {
  net::FaultPlan plan;
  plan.kill_pe(1, 1'000'000);  // image 2 hosts the lock
  Harness h(Stack::kShmemCray, 4, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::CoLock lck = rt.make_lock();
    rt.sync_all();
    if (me == 2) {
      for (;;) h.engine().advance(50'000);
    }
    if (me == 3) {
      // Acquire before the home dies; release after.
      EXPECT_EQ(rt.lock_stat(lck, 2), caf::kStatOk);
      ASSERT_TRUE(rt.holds_lock(lck, 2));
      h.engine().advance(2'000'000);
      EXPECT_EQ(rt.unlock_stat(lck, 2), caf::kStatFailedImage);
      EXPECT_FALSE(rt.holds_lock(lck, 2));
    } else {
      h.engine().advance(2'000'000);
      EXPECT_EQ(rt.lock_stat(lck, 2), caf::kStatFailedImage);
      EXPECT_FALSE(rt.holds_lock(lck, 2));
      EXPECT_FALSE(rt.try_lock(lck, 2));
      EXPECT_EQ(rt.unlock_stat(lck, 2), caf::kStatUnlocked);
    }
    EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
  });
}

// ---------------------------------------------------------------------------
// stat= synchronization statements
// ---------------------------------------------------------------------------

TEST(SyncRecovery, SyncImagesStatSurvivesPartnerDeath) {
  net::FaultPlan plan;
  plan.kill_pe(2, 1'000'000);  // image 3
  Harness h(Stack::kShmemCray, 4, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    if (me == 3) {
      for (;;) h.engine().advance(50'000);
    }
    if (me == 4) {
      EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
      return;
    }
    const int partner = me == 1 ? 2 : 1;
    const int pair[] = {partner};
    EXPECT_EQ(rt.sync_images_stat(pair), caf::kStatOk);
    h.engine().advance(2'000'000);
    // A list containing the corpse reports the failure but still
    // synchronizes the live pair...
    const int both[] = {partner, 3};
    EXPECT_EQ(rt.sync_images_stat(both), caf::kStatFailedImage);
    // ...which the immediately-following live-only sync confirms.
    EXPECT_EQ(rt.sync_images_stat(pair), caf::kStatOk);
    EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
  });
}

// Regression for the event-count underflow: a poster dies after delivering
// one post; the blocked waiter must wake with STAT_FAILED_IMAGE, and the
// arrived post must still be queryable/consumable (the count is only
// consumed by satisfied waits).
TEST(EventRecovery, WaitStatReportsFailureWithoutUnderflow) {
  net::FaultPlan plan;
  plan.kill_pe(1, 1'000'000);  // image 2
  Harness h(Stack::kShmemCray, 3, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::CoEvent ev = rt.make_event();
    rt.sync_all();
    if (me == 2) {
      EXPECT_EQ(rt.event_post_stat(ev, 1), caf::kStatOk);
      for (;;) h.engine().advance(50'000);  // dies before its second post
    }
    if (me == 3) {
      h.engine().advance(3'000'000);
      EXPECT_EQ(rt.event_post_stat(ev, 1), caf::kStatOk);
      EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
      return;
    }
    // Image 1: blocked waiting for two posts when only one ever arrives
    // from the victim; the kill must wake it, not hang it.
    EXPECT_EQ(rt.event_wait_stat(ev, 2), caf::kStatFailedImage);
    EXPECT_EQ(rt.event_query(ev), 1);  // the arrived post survived intact
    // A single-count wait is satisfiable right now and must consume 1.
    EXPECT_EQ(rt.event_wait_stat(ev, 1), caf::kStatOk);
    EXPECT_EQ(rt.event_query(ev), 0);
    // Image 3's late post completes a final wait (event_wait_stat gives up
    // rather than blocks once an image has failed, so poll for arrival).
    while (rt.event_query(ev) < 1) h.engine().advance(100'000);
    EXPECT_EQ(rt.event_wait_stat(ev, 1), caf::kStatOk);
    EXPECT_EQ(rt.event_query(ev), 0);
    EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
  });
}

// ---------------------------------------------------------------------------
// Survivor teams
// ---------------------------------------------------------------------------

TEST(TeamRecovery, SurvivorTeamFormsSyncsAndReduces) {
  net::FaultPlan plan;
  plan.kill_pe(2, 1'000'000);  // image 3
  Harness h(Stack::kShmemCray, 6, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    if (me == 3) {
      for (;;) h.engine().advance(50'000);
    }
    h.engine().advance(2'000'000);
    int st = -1;
    const caf::Team team = rt.form_team(&st);
    EXPECT_EQ(st, caf::kStatFailedImage);  // someone is dead...
    EXPECT_EQ(team.num_images(), 5);       // ...and excluded
    EXPECT_FALSE(team.contains(3));
    EXPECT_EQ(team.rank_of(me), me < 3 ? me : me - 1);
    EXPECT_EQ(rt.team_sync(team), caf::kStatOk);  // no member has failed
    std::int64_t v = me;
    EXPECT_EQ(rt.co_sum_team(team, &v, 1), caf::kStatOk);
    EXPECT_EQ(v, 1 + 2 + 4 + 5 + 6);
    int payload = me == team.members[0] ? 77 : 0;
    EXPECT_EQ(rt.team_broadcast_bytes(team, &payload, sizeof payload,
                                      team.members[0]),
              caf::kStatOk);
    EXPECT_EQ(payload, 77);
    EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
  });
}

// ---------------------------------------------------------------------------
// Property sweep: randomized kill schedules
// ---------------------------------------------------------------------------

class LockRecoveryProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, LockRecoveryProperty,
                         ::testing::Values(11u, 23u, 47u));

// 12 images hammer one lock for several cycles each while 1-3 of them are
// killed at seeded-random times (possibly mid-protocol: enqueued, holding,
// or releasing). Invariants, checked across the whole run:
//   * mutual exclusion — the critical-section owner cell is only ever taken
//     over from a clean release or a corpse;
//   * progress — every survivor completes all of its acquisitions;
//   * FIFO among survivors — surviving images acquire in enqueue order;
//   * reclamation is reported at most once per kill.
TEST_P(LockRecoveryProperty, RandomKillsPreserveExclusionFifoAndProgress) {
  const std::uint64_t seed = GetParam();
  constexpr int kImages = 12;
  constexpr int kCycles = 4;
  sim::Rng plan_rng(seed);
  net::FaultPlan plan;
  const int nkills = 1 + static_cast<int>(plan_rng.below(3));
  std::vector<bool> victim(kImages + 1, false);
  for (int k = 0; k < nkills; ++k) {
    // Never the home image (1): dead-home semantics are covered above.
    int pe;
    do {
      pe = 1 + static_cast<int>(plan_rng.below(kImages - 1));
    } while (victim[pe + 1]);
    victim[pe + 1] = true;
    plan.kill_pe(pe,
                 500'000 + static_cast<sim::Time>(plan_rng.below(5'000'000)));
  }
  Harness h(Stack::kShmemCray, kImages, {}, 2 << 20, plan);
  int enqueue_seq = 0;
  std::vector<int> acq_seq;          // enqueue seq, in acquisition order
  std::vector<bool> acq_by_victim;
  std::vector<int> completed(kImages + 1, 0);
  int reclaim_reports = 0;
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::CoLock lck = rt.make_lock();
    const std::uint64_t owner_off = rt.allocate_coarray_bytes(8);
    std::memset(rt.local_addr(owner_off), 0, 8);
    rt.sync_all();
    sim::Rng rng(seed * 7919 + static_cast<std::uint64_t>(me));
    for (int c = 0; c < kCycles; ++c) {
      h.engine().advance(static_cast<sim::Time>(rng.below(400'000)));
      const int myseq = enqueue_seq++;
      const int st = rt.lock_stat(lck, 1);
      ASSERT_TRUE(st == caf::kStatOk || st == caf::kStatFailedImage) << st;
      ASSERT_TRUE(rt.holds_lock(lck, 1));
      if (st == caf::kStatFailedImage) ++reclaim_reports;
      const std::int64_t prev = rt.atomic_swap(1, owner_off, me);
      ASSERT_TRUE(prev == 0 || rt.image_status(static_cast<int>(prev)) ==
                                   caf::kStatFailedImage)
          << "image " << prev << " was still inside the critical section";
      acq_seq.push_back(myseq);
      acq_by_victim.push_back(victim[me]);
      h.engine().advance(static_cast<sim::Time>(10'000 + rng.below(40'000)));
      ASSERT_EQ(rt.atomic_cas(1, owner_off, me, 0), me);
      ASSERT_EQ(rt.unlock_stat(lck, 1), caf::kStatOk);
      ++completed[me];
    }
    (void)rt.sync_all_stat();
  });
  for (int img = 1; img <= kImages; ++img) {
    if (!victim[img]) {
      EXPECT_EQ(completed[img], kCycles) << "image " << img << " stalled";
    }
  }
  EXPECT_LE(reclaim_reports, nkills);
  int last = -1;
  for (std::size_t i = 0; i < acq_seq.size(); ++i) {
    if (acq_by_victim[i]) continue;  // victims may die mid-queue, reordering
    EXPECT_GT(acq_seq[i], last) << "survivor FIFO violated at acquisition "
                                << i;
    last = acq_seq[i];
  }
}
