// Unit tests for Fortran-style shapes, triplets, sections, and SectionDesc.
#include "caf/section.hpp"

#include <gtest/gtest.h>

using namespace caf;

TEST(Shape, ColumnMajorStrides) {
  Shape s{10, 20, 30};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.size(), 6000);
  EXPECT_EQ(s.dim_stride(0), 1);
  EXPECT_EQ(s.dim_stride(1), 10);
  EXPECT_EQ(s.dim_stride(2), 200);
}

TEST(Shape, LinearIndexIsOneBased) {
  Shape s{4, 3};
  EXPECT_EQ(s.linear_index({1, 1}), 0);
  EXPECT_EQ(s.linear_index({2, 1}), 1);
  EXPECT_EQ(s.linear_index({1, 2}), 4);
  EXPECT_EQ(s.linear_index({4, 3}), 11);
  EXPECT_THROW(s.linear_index({0, 1}), std::out_of_range);
  EXPECT_THROW(s.linear_index({5, 1}), std::out_of_range);
  EXPECT_THROW(s.linear_index({1}), std::invalid_argument);
}

TEST(Triplet, CountsInclusive) {
  EXPECT_EQ((Triplet{1, 10, 1}).count(), 10);
  EXPECT_EQ((Triplet{1, 10, 2}).count(), 5);
  EXPECT_EQ((Triplet{1, 9, 2}).count(), 5);   // 1,3,5,7,9
  EXPECT_EQ((Triplet{3, 3, 1}).count(), 1);
  EXPECT_EQ((Triplet{5, 4, 1}).count(), 0);
  EXPECT_THROW((Triplet{1, 4, 0}).count(), std::invalid_argument);
}

TEST(Section, PaperExampleCounts) {
  // §IV-C: coarray X(100,100,100), section (1:100:2, 1:80:2, 1:100:4)
  // has 50, 40, 25 strided elements per dimension.
  Shape shape{100, 100, 100};
  Section sec{{1, 100, 2}, {1, 80, 2}, {1, 100, 4}};
  sec.validate(shape);
  SectionDesc d = describe(shape, sec);
  EXPECT_EQ(d.count[0], 50);
  EXPECT_EQ(d.count[1], 40);
  EXPECT_EQ(d.count[2], 25);
  EXPECT_EQ(d.total, 50 * 40 * 25);
  EXPECT_EQ(d.elem_stride[0], 2);
  EXPECT_EQ(d.elem_stride[1], 2 * 100);
  EXPECT_EQ(d.elem_stride[2], 4 * 100 * 100);
  EXPECT_FALSE(d.dim0_contiguous());
}

TEST(Section, MatrixOrientedIsDim0Contiguous) {
  // The Himeno halo case: full contiguous rows, strided planes.
  Shape shape{64, 64, 8};
  Section sec{{1, 64, 1}, {1, 64, 2}, {2, 2, 1}};
  SectionDesc d = describe(shape, sec);
  EXPECT_TRUE(d.dim0_contiguous());
  EXPECT_EQ(d.total, 64 * 32);
  EXPECT_EQ(d.first_elem, 64 * 64);  // k == 2 plane
}

TEST(Section, ValidationCatchesBadTriplets) {
  Shape shape{10, 10};
  EXPECT_THROW(describe(shape, Section{{1, 11, 1}, {1, 10, 1}}),
               std::out_of_range);
  EXPECT_THROW(describe(shape, Section{{0, 5, 1}, {1, 10, 1}}),
               std::out_of_range);
  EXPECT_THROW(describe(shape, Section{{1, 10, 1}}), std::invalid_argument);
}

TEST(Section, AllSelectsEverything) {
  Shape shape{7, 5};
  SectionDesc d = describe(shape, Section::all(shape));
  EXPECT_EQ(d.total, 35);
  EXPECT_EQ(d.first_elem, 0);
  EXPECT_TRUE(d.dim0_contiguous());
}

TEST(Section, LinearElementsColumnMajorOrder) {
  Shape shape{4, 3};
  Section sec{{1, 3, 2}, {2, 3, 1}};  // rows 1,3; cols 2,3
  auto elems = linear_elements(describe(shape, sec));
  // (1,2)=4, (3,2)=6, (1,3)=8, (3,3)=10  (0-based linear)
  EXPECT_EQ(elems, (std::vector<std::int64_t>{4, 6, 8, 10}));
}

TEST(Section, ScalarSectionHasOneElement) {
  Shape shape{10};
  SectionDesc d = describe(shape, Section{{3, 3, 1}});
  EXPECT_EQ(d.total, 1);
  EXPECT_EQ(d.first_elem, 2);
}
