// Cross-conduit RPC conformance: the same asynchronous-remote-execution
// programs over every stack (Cray SHMEM, MVAPICH2-X SHMEM, GASNet, ARMCI,
// MPI-3) at non-power-of-two image counts — scalar round trips, fire-and-
// forget, chained then(), when_all fan-in, the completion triple — plus the
// head-to-head check that the async-RPC DHT produces bit-identical table
// contents to the one-sided lock/get/modify/put design on the same seed
// and workload.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "apps/dht.hpp"
#include "apps/dht_rpc.hpp"
#include "caf_test_util.hpp"
#include "sim/engine.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

namespace {

caf::Options rpc_opts() {
  caf::Options o;
  o.rpc.enabled = true;
  return o;
}

constexpr int kImageCounts[] = {6, 12};  // both non-power-of-two

}  // namespace

class RpcStacks : public ::testing::TestWithParam<Stack> {};
INSTANTIATE_TEST_SUITE_P(Stacks, RpcStacks,
                         ::testing::ValuesIn(caftest::kAllStacks),
                         [](const auto& info) {
                           std::string s = caftest::to_string(info.param);
                           for (auto& c : s) if (c == '-') c = '_';
                           return s;
                         });

TEST_P(RpcStacks, ScalarReturnRoundTrip) {
  for (const int images : kImageCounts) {
    Harness h(GetParam(), images, rpc_opts());
    h.run([&] {
      auto& rt = h.rt();
      const int me = rt.this_image();
      const int n = rt.num_images();
      const int target = me % n + 1;
      auto fut = rpc(
          rt, target,
          [](std::int64_t a, std::int64_t b) -> std::int64_t {
            return a * 100 + b;
          },
          static_cast<std::int64_t>(me), std::int64_t{7});
      EXPECT_EQ(fut.wait(), kStatOk);
      EXPECT_EQ(fut.value(), me * 100 + 7);
      // Self-RPC goes through the same transport and mailbox path.
      auto self = rpc(
          rt, me, [](std::int64_t x) -> std::int64_t { return x + 1; },
          std::int64_t{41});
      EXPECT_EQ(self.get(), 42);
      rt.sync_all();
    });
  }
}

TEST_P(RpcStacks, CompletionTriple) {
  Harness h(GetParam(), 6, rpc_opts());
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const int target = me % rt.num_images() + 1;
    auto c = rpc_completions(
        rt, target, [](std::int64_t x) -> std::int64_t { return -x; },
        static_cast<std::int64_t>(me));
    // Source completion: injection is synchronous (blob copied on submit).
    EXPECT_TRUE(c.source.ready());
    EXPECT_EQ(c.source.stat(), kStatOk);
    EXPECT_EQ(c.remote.wait(), kStatOk);   // handler executed at the target
    EXPECT_EQ(c.operation.wait(), kStatOk);
    EXPECT_EQ(c.operation.value(), -me);
    rt.sync_all();
  });
}

TEST_P(RpcStacks, FireAndForgetAccumulates) {
  for (const int images : kImageCounts) {
    Harness h(GetParam(), images, rpc_opts());
    h.run([&] {
      auto& rt = h.rt();
      sim::Engine& eng = h.engine();
      const int me = rt.this_image();
      const int n = rt.num_images();
      const std::uint64_t off = rt.allocate_coarray_bytes(8);
      std::memset(rt.local_addr(off), 0, 8);
      rt.sync_all();
      // Every image (image 1 included) bumps image 1's accumulator by its
      // own rank; handler serialization at the target makes this atomic.
      rpc_ff(
          rt, 1,
          [](sym_view<std::int64_t> acc, std::int64_t inc) { acc[0] += inc; },
          sym_view<std::int64_t>{off, 1}, static_cast<std::int64_t>(me));
      rt.sync_all();
      if (me == 1) {
        // ff has no reply to wait on: poll the cell through progress points
        // (the AM transport may deliver a touch after the barrier exits).
        const std::int64_t want =
            static_cast<std::int64_t>(n) * (n + 1) / 2;
        std::int64_t got = 0;
        int spins = 0;
        for (;;) {
          rt.rpc_progress();
          std::memcpy(&got, rt.local_addr(off), 8);
          if (got == want) break;
          ASSERT_LT(++spins, 100'000) << "ff updates never all landed";
          eng.advance(1'000);
        }
      }
      rt.sync_all();
    });
  }
}

TEST_P(RpcStacks, ChainedThenRunsOnOwner) {
  Harness h(GetParam(), 6, rpc_opts());
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const int target = me % rt.num_images() + 1;
    int continuations_run = 0;
    auto fut =
        rpc(rt, target,
            [](std::int64_t x) -> std::int64_t { return x * 2; },
            std::int64_t{21})
            .then([&continuations_run](std::int64_t v) {
              ++continuations_run;
              return v + 1;
            })
            .then([&continuations_run](std::int64_t v) {
              ++continuations_run;
              return v * 10;
            });
    EXPECT_EQ(fut.get(), 430);
    EXPECT_EQ(continuations_run, 2);
    rt.sync_all();
  });
}

TEST_P(RpcStacks, WhenAllFanIn) {
  for (const int images : kImageCounts) {
    Harness h(GetParam(), images, rpc_opts());
    h.run([&] {
      auto& rt = h.rt();
      const int me = rt.this_image();
      const int n = rt.num_images();
      std::vector<future<std::int64_t>> futs;
      futs.reserve(static_cast<std::size_t>(n));
      for (int t = 1; t <= n; ++t) {
        futs.push_back(rpc(
            rt, t,
            [](std::int64_t a, std::int64_t b) -> std::int64_t {
              return a * 1'000 + b;
            },
            static_cast<std::int64_t>(t), static_cast<std::int64_t>(me)));
      }
      auto all = when_all(std::move(futs));
      EXPECT_EQ(all.wait(), kStatOk);
      auto& vals = all.value();
      ASSERT_EQ(vals.size(), static_cast<std::size_t>(n));
      for (int t = 1; t <= n; ++t) {
        EXPECT_EQ(vals[static_cast<std::size_t>(t - 1)], t * 1'000 + me);
      }
      rt.sync_all();
    });
  }
}

// ---------------------------------------------------------------------------
// DHT: async-RPC design vs one-sided design, bit-identical tables
// ---------------------------------------------------------------------------

namespace {

apps::dht::Config dht_cfg() {
  apps::dht::Config cfg;
  cfg.buckets_per_image = 32;
  cfg.updates_per_image = 64;
  cfg.locks_per_image = 8;
  cfg.seed = 0x5EED;
  cfg.hot_percent = 25;
  cfg.hot_keys = 4;
  return cfg;
}

/// Runs the one-sided lock/get/modify/put table and returns every image's
/// slice bytes.
std::vector<std::vector<std::byte>> run_onesided(Stack s, int images,
                                                 const apps::dht::Config& cfg) {
  Harness h(s, images, {}, 4 << 20);
  std::vector<std::vector<std::byte>> slices(
      static_cast<std::size_t>(images));
  const std::size_t bytes = static_cast<std::size_t>(cfg.buckets_per_image) *
                            sizeof(apps::dht::Entry);
  h.run([&] {
    auto& rt = h.rt();
    const std::uint64_t data_off = rt.allocate_coarray_bytes(bytes);
    std::memset(rt.local_addr(data_off), 0, bytes);
    std::vector<CoLock> locks;
    for (int i = 0; i < cfg.locks_per_image; ++i) {
      locks.push_back(rt.make_lock());
    }
    rt.sync_all();
    apps::dht::Table<Runtime, CoLock> table(rt, cfg, data_off,
                                            std::move(locks));
    table.run_updates();
    rt.sync_all();
    const std::byte* p = rt.local_addr(data_off);
    slices[static_cast<std::size_t>(rt.this_image() - 1)].assign(p, p + bytes);
  });
  return slices;
}

/// Runs the async-RPC table on the same workload and returns the slices.
std::vector<std::vector<std::byte>> run_rpc(Stack s, int images,
                                            const apps::dht::Config& cfg) {
  Harness h(s, images, rpc_opts(), 4 << 20);
  std::vector<std::vector<std::byte>> slices(
      static_cast<std::size_t>(images));
  const std::size_t bytes = static_cast<std::size_t>(cfg.buckets_per_image) *
                            sizeof(apps::dht::Entry);
  h.run([&] {
    auto& rt = h.rt();
    auto table = apps::dhtrpc::make_rpc_table(rt, cfg);
    const std::int64_t confirmed = table.run_updates();
    EXPECT_EQ(confirmed, cfg.updates_per_image);
    rt.sync_all();
    const std::byte* p = rt.local_addr(table.data_offset());
    slices[static_cast<std::size_t>(rt.this_image() - 1)].assign(p, p + bytes);
  });
  return slices;
}

std::int64_t total_count(const std::vector<std::vector<std::byte>>& slices) {
  std::int64_t sum = 0;
  for (const auto& s : slices) {
    const auto n = s.size() / sizeof(apps::dht::Entry);
    for (std::size_t i = 0; i < n; ++i) {
      apps::dht::Entry e;
      std::memcpy(&e, s.data() + i * sizeof(e), sizeof(e));
      sum += e.count;
    }
  }
  return sum;
}

}  // namespace

TEST_P(RpcStacks, DhtRpcBitIdenticalToOneSided) {
  const apps::dht::Config cfg = dht_cfg();
  const int images = 6;
  const auto one_sided = run_onesided(GetParam(), images, cfg);
  const auto via_rpc = run_rpc(GetParam(), images, cfg);
  // Both designs applied the full update stream...
  const std::int64_t want =
      static_cast<std::int64_t>(images) * cfg.updates_per_image;
  EXPECT_EQ(total_count(one_sided), want);
  EXPECT_EQ(total_count(via_rpc), want);
  // ...and because key <-> (owner, bucket) is a bijection and the count
  // increment commutes, every slice is byte-for-byte identical.
  ASSERT_EQ(one_sided.size(), via_rpc.size());
  for (std::size_t i = 0; i < one_sided.size(); ++i) {
    EXPECT_EQ(one_sided[i], via_rpc[i]) << "slice of image " << (i + 1);
  }
}
