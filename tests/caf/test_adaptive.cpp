// Tests for the §VII adaptive strided planner: correctness equals the other
// algorithms on every section, and its virtual-time performance matches or
// beats the better of naive / 2dim_strided on the archetypal sections.
#include <gtest/gtest.h>

#include <numeric>

#include "caf_test_util.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

namespace {

struct RunResult {
  std::vector<int> remote;
  sim::Time elapsed = 0;
  StridedStats stats;
};

RunResult run_put(Stack stack, StridedAlgo algo, Shape shape, Section sec) {
  Options opts;
  opts.strided = algo;
  Harness h(stack, 18, opts, 8 << 20);
  auto out = std::make_shared<RunResult>();
  h.run([&] {
    auto x = make_coarray<int>(h.rt(), shape);
    for (std::int64_t i = 0; i < x.size(); ++i) x.data()[i] = -1;
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      const SectionDesc d = describe(shape, sec);
      std::vector<int> src(static_cast<std::size_t>(d.total));
      std::iota(src.begin(), src.end(), 40);
      const sim::Time t0 = h.engine().now();
      out->stats = x.put_section(17, sec, src.data());  // cross-node
      out->elapsed = h.engine().now() - t0;
    }
    h.rt().sync_all();
    if (h.rt().this_image() == 17) {
      out->remote.assign(x.data(), x.data() + x.size());
    }
    h.rt().sync_all();
  });
  return std::move(*out);
}

}  // namespace

TEST(Adaptive, CorrectOnAllSectionArchetypes) {
  const std::pair<Shape, Section> cases[] = {
      // fully strided 3-D (the §IV-C example shape, scaled down)
      {Shape{40, 40, 10}, Section{{1, 40, 2}, {1, 32, 2}, {1, 10, 4}}},
      // matrix-oriented: contiguous rows, strided columns (Himeno halo)
      {Shape{64, 32}, Section{{1, 64, 1}, {1, 32, 2}}},
      // single row (pure 1-D strided)
      {Shape{128, 4}, Section{{1, 127, 2}, {2, 2, 1}}},
      // scalar
      {Shape{16}, Section{{5, 5, 1}}},
  };
  for (const auto& [shape, sec] : cases) {
    const auto naive = run_put(Stack::kShmemCray, StridedAlgo::kNaive, shape, sec);
    const auto adaptive =
        run_put(Stack::kShmemCray, StridedAlgo::kAdaptive, shape, sec);
    EXPECT_EQ(adaptive.remote, naive.remote);
  }
}

TEST(Adaptive, MatchesOrBeatsBothOnCray) {
  const std::pair<Shape, Section> cases[] = {
      {Shape{40, 40, 10}, Section{{1, 40, 2}, {1, 32, 2}, {1, 10, 4}}},
      {Shape{64, 32}, Section{{1, 64, 1}, {1, 32, 2}}},
      {Shape{128, 4}, Section{{1, 127, 2}, {2, 2, 1}}},
  };
  for (const auto& [shape, sec] : cases) {
    const auto naive = run_put(Stack::kShmemCray, StridedAlgo::kNaive, shape, sec);
    const auto twodim =
        run_put(Stack::kShmemCray, StridedAlgo::kTwoDim, shape, sec);
    const auto adaptive =
        run_put(Stack::kShmemCray, StridedAlgo::kAdaptive, shape, sec);
    const sim::Time best = std::min(naive.elapsed, twodim.elapsed);
    // Within 5% of the better hand-picked algorithm (planner overhead is
    // not charged; allow rounding slack).
    EXPECT_LE(adaptive.elapsed, best + best / 20)
        << "shape rank " << shape.rank();
  }
}

TEST(Adaptive, PicksRunsForMatrixOrientedOnCray) {
  // The Himeno case §V-D diagnosed by hand: contiguous base dimension →
  // per-run putmem beats iput. The adaptive planner must discover this.
  const Shape shape{64, 32};
  const Section sec{{1, 64, 1}, {1, 32, 2}};
  const auto adaptive =
      run_put(Stack::kShmemCray, StridedAlgo::kAdaptive, shape, sec);
  const auto naive = run_put(Stack::kShmemCray, StridedAlgo::kNaive, shape, sec);
  EXPECT_EQ(adaptive.stats.messages, naive.stats.messages);  // run transfers
  const auto twodim =
      run_put(Stack::kShmemCray, StridedAlgo::kTwoDim, shape, sec);
  EXPECT_LT(adaptive.elapsed, twodim.elapsed);
}

TEST(Adaptive, PicksStridedForScatteredOnCray) {
  // Fully strided section: the planner must pick the 1-D strided plan.
  const Shape shape{100, 100, 10};
  const Section sec{{1, 100, 2}, {1, 80, 2}, {1, 10, 2}};
  const auto adaptive =
      run_put(Stack::kShmemCray, StridedAlgo::kAdaptive, shape, sec);
  const auto twodim =
      run_put(Stack::kShmemCray, StridedAlgo::kTwoDim, shape, sec);
  EXPECT_EQ(adaptive.stats.messages, twodim.stats.messages);
}

TEST(Adaptive, OnSoftwareIputFallsBackToNaive) {
  // On MVAPICH2-X, 1-D strided calls are loops of puts: the planner should
  // never pick them over naive-runs.
  const Shape shape{64, 32};
  const Section sec{{1, 64, 1}, {1, 32, 2}};
  const auto adaptive =
      run_put(Stack::kShmemMvapich, StridedAlgo::kAdaptive, shape, sec);
  const auto naive =
      run_put(Stack::kShmemMvapich, StridedAlgo::kNaive, shape, sec);
  EXPECT_EQ(adaptive.elapsed, naive.elapsed);
}

TEST(Adaptive, HimenoAutoMatchesHandPickedNaive) {
  // End-to-end: Himeno with the adaptive planner performs like the paper's
  // hand-picked naive configuration (§V-D) without user intervention.
  // (Exercised through the strided engine on the halo archetype above; a
  // full solver run is covered by tests/apps/test_himeno.cpp numerics.)
  const Shape shape{128, 16};
  const Section sec{{1, 128, 1}, {2, 15, 1}};
  const auto adaptive =
      run_put(Stack::kShmemMvapich, StridedAlgo::kAdaptive, shape, sec);
  const auto naive =
      run_put(Stack::kShmemMvapich, StridedAlgo::kNaive, shape, sec);
  EXPECT_EQ(adaptive.elapsed, naive.elapsed);
  EXPECT_EQ(adaptive.remote, naive.remote);
}
