// Tests for the §VII shmem_ptr future-work feature: intra-node co-indexed
// accesses as direct load/store, correctness and cost characteristics.
#include <gtest/gtest.h>

#include "caf/shmem_conduit.hpp"
#include "caf_test_util.hpp"
#include "obs/obs.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

namespace {

ShmemConduit& conduit_of(Harness& h) {
  return dynamic_cast<ShmemConduit&>(h.rt().conduit());
}

}  // namespace

TEST(ShmemPtr, IntraNodePutGetCorrect) {
  Harness h(Stack::kShmemCray, 20);
  h.run([&] {
    conduit_of(h).set_intra_node_direct(true);
    auto x = make_coarray<int>(h.rt(), {8});
    for (int i = 1; i <= 8; ++i) x(i) = h.rt().this_image() * 100 + i;
    h.rt().sync_all();
    // Image 1 and 2 share node 0; 17..20 live on node 1.
    if (h.rt().this_image() == 1) {
      x.put_scalar(2, {1}, -5);            // intra-node direct store
      EXPECT_EQ(x.get_scalar(2, {1}), -5); // intra-node direct load
      EXPECT_EQ(x.get_scalar(17, {3}), 1703);  // inter-node: library path
      x.put_scalar(17, {2}, -7);
      EXPECT_EQ(x.get_scalar(17, {2}), -7);
    }
    h.rt().sync_all();
  });
}

TEST(ShmemPtr, DirectPathWakesWaiters) {
  // A wait_until spinning image must still wake when the writer uses the
  // direct store path (poke fires the write hook).
  Harness h(Stack::kShmemCray, 2);
  h.run([&] {
    conduit_of(h).set_intra_node_direct(true);
    auto flag = make_coarray<std::int64_t>(h.rt(), {1});
    flag(1) = 0;
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      h.engine().advance(10'000);
      flag.put_scalar(2, {1}, 9);
    } else {
      h.rt().conduit().wait_until(flag.offset(), Cmp::kEq, 9);
      EXPECT_GE(h.engine().now(), 10'000);
    }
    h.rt().sync_all();
  });
}

TEST(ShmemPtr, DirectPathIsCheaper) {
  auto cost = [](bool direct) {
    Harness h(Stack::kShmemCray, 4);
    sim::Time t = 0;
    h.run([&] {
      conduit_of(h).set_intra_node_direct(direct);
      // Small payload: the per-operation overhead (library call + NIC
      // loopback vs direct store) dominates, where shmem_ptr shines.
      auto x = make_coarray<double>(h.rt(), {64});
      h.rt().sync_all();
      if (h.rt().this_image() == 1) {
        std::vector<double> buf(64, 1.0);
        const sim::Time t0 = h.engine().now();
        for (int r = 0; r < 10; ++r) x.put_contiguous(2, buf.data(), 64);
        t = h.engine().now() - t0;
      }
      h.rt().sync_all();
    });
    return t;
  };
  EXPECT_LT(cost(true) * 2, cost(false));
}

TEST(ShmemPtr, InterNodeTrafficUnaffected) {
  const int cores = net::machine_profile(net::Machine::kXC30).cores_per_node;
  auto cost = [cores](bool direct) {
    Harness h(Stack::kShmemCray, cores + 2);
    sim::Time t = 0;
    h.run([&] {
      conduit_of(h).set_intra_node_direct(direct);
      auto x = make_coarray<double>(h.rt(), {256});
      h.rt().sync_all();
      if (h.rt().this_image() == 1) {
        std::vector<double> buf(256, 1.0);
        const sim::Time t0 = h.engine().now();
        x.put_contiguous(cores + 1, buf.data(), 256);  // other node
        t = h.engine().now() - t0;
      }
      h.rt().sync_all();
    });
    return t;
  };
  EXPECT_EQ(cost(true), cost(false));
}

TEST(ShmemPtr, StridedAndScatterTakeDirectPath) {
  // Satellite coverage: iput/iget/put_scatter between same-node images go
  // through the shmem_ptr shortcut, and the telemetry reports how many
  // network messages that elided.
  Harness h(Stack::kShmemCray, 2);
  h.run([&] {
    auto& cd = conduit_of(h);
    cd.set_intra_node_direct(true);
    auto x = make_coarray<int>(h.rt(), {16});
    for (int i = 1; i <= 16; ++i) x(i) = 0;
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      const int peer = 1;  // 0-based rank of image 2, same node
      const std::vector<int> src = {11, 22, 33, 44};
      cd.iput(peer, x.offset(), /*dst_stride=*/2, src.data(),
              /*src_stride=*/1, sizeof(int), src.size());
      std::vector<int> got(src.size(), 0);
      cd.iget(got.data(), /*dst_stride=*/1, peer, x.offset(),
              /*src_stride=*/2, sizeof(int), src.size());
      EXPECT_EQ(got, src);

      const int pay[2] = {7, 9};
      const fabric::ScatterRec recs[2] = {
          {x.offset() + 4, sizeof(int), 0},
          {x.offset() + 36, sizeof(int), sizeof(int)},
      };
      cd.put_scatter(peer, recs, 2, pay, sizeof pay);
      EXPECT_EQ(x.get_scalar(2, {2}), 7);
      EXPECT_EQ(x.get_scalar(2, {10}), 9);

      auto& reg = obs::registry();
      EXPECT_EQ(reg.value(0, "direct.iputs"), 1u);
      EXPECT_EQ(reg.value(0, "direct.igets"), 1u);
      EXPECT_EQ(reg.value(0, "direct.scatters"), 1u);
      // Cray SHMEM is hardware-strided, so each strided op counts as one
      // elided message; the scatter and the two direct get_scalar loads
      // count one each.
      EXPECT_GE(reg.value(0, "direct.elided_msgs"), 5u);
      EXPECT_GT(reg.value(0, "direct.elided_bytes"), 0u);
    }
    h.rt().sync_all();
  });
}

TEST(ShmemPtr, InterNodeStridedStaysOnLibraryPath) {
  const int cores = net::machine_profile(net::Machine::kXC30).cores_per_node;
  Harness h(Stack::kShmemCray, cores + 2);
  h.run([&] {
    auto& cd = conduit_of(h);
    cd.set_intra_node_direct(true);
    auto x = make_coarray<int>(h.rt(), {16});
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      EXPECT_FALSE(cd.direct_reachable(cores));  // first rank of node 1
      EXPECT_TRUE(cd.direct_reachable(1));
      const std::vector<int> src = {1, 2, 3};
      cd.iput(cores, x.offset(), 2, src.data(), 1, sizeof(int), src.size());
      cd.quiet();
      std::vector<int> got(3, 0);
      cd.iget(got.data(), 1, cores, x.offset(), 2, sizeof(int), got.size());
      EXPECT_EQ(got, src);
      EXPECT_EQ(obs::registry().value(0, "direct.iputs"), 0u);
      EXPECT_EQ(obs::registry().value(0, "direct.igets"), 0u);
    }
    h.rt().sync_all();
  });
}
