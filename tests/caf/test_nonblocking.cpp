// Nonblocking test probes (shmem_test analogues): caf::event_test and
// caf::sync_test. A failed probe must not block or advance the calling
// image's clock; a successful event_test consumes like event_wait; a
// sync_test round interoperates with a partner using plain sync_images.
#include <gtest/gtest.h>

#include <string>

#include "caf_test_util.hpp"
#include "sim/engine.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

class NonblockingStacks : public ::testing::TestWithParam<Stack> {};
INSTANTIATE_TEST_SUITE_P(Stacks, NonblockingStacks,
                         ::testing::ValuesIn(caftest::kAllStacks),
                         [](const auto& info) {
                           std::string s = caftest::to_string(info.param);
                           for (auto& c : s) if (c == '-') c = '_';
                           return s;
                         });

TEST_P(NonblockingStacks, EventTestProbesAndConsumes) {
  Harness h(GetParam(), 4);
  h.run([&] {
    auto& rt = h.rt();
    sim::Engine& eng = h.engine();
    CoEvent ev = rt.make_event();
    if (rt.this_image() == 1) {
      // Nothing posted yet: the probe fails without yielding.
      const sim::Time t0 = eng.now();
      EXPECT_FALSE(rt.event_test(ev));
      EXPECT_EQ(eng.now(), t0);
      // Poll until both posts from image 2 arrive, consuming them together.
      int spins = 0;
      while (!rt.event_test(ev, 2)) {
        eng.advance(50);
        ASSERT_LT(++spins, 1'000'000);
      }
      EXPECT_GT(spins, 0);  // the posts took wire time; some probes failed
      // Both posts were consumed by the successful probe.
      const sim::Time t1 = eng.now();
      EXPECT_FALSE(rt.event_test(ev));
      EXPECT_EQ(eng.now(), t1);
      EXPECT_EQ(rt.event_query(ev), 0);
    } else if (rt.this_image() == 2) {
      eng.advance(5'000);
      rt.event_post(ev, 1);
      rt.event_post(ev, 1);
    }
    rt.sync_all();
  });
}

TEST_P(NonblockingStacks, EventTestAgreesWithEventWaitLedger) {
  Harness h(GetParam(), 2);
  h.run([&] {
    auto& rt = h.rt();
    sim::Engine& eng = h.engine();
    CoEvent ev = rt.make_event();
    if (rt.this_image() == 1) {
      rt.event_wait(ev);  // consumes the first post
      int spins = 0;
      while (!rt.event_test(ev)) {  // then the probe consumes the second
        eng.advance(50);
        ASSERT_LT(++spins, 1'000'000);
      }
      EXPECT_EQ(rt.event_query(ev), 0);
    } else {
      rt.event_post(ev, 1);
      eng.advance(2'000);
      rt.event_post(ev, 1);
    }
    rt.sync_all();
  });
}

TEST_P(NonblockingStacks, SyncTestInteropsWithSyncImages) {
  Harness h(GetParam(), 4);
  h.run([&] {
    auto& rt = h.rt();
    sim::Engine& eng = h.engine();
    const int me = rt.this_image();
    // Round 1: image 1 probes, image 2 does a plain sync_images.
    if (me == 1) {
      int spins = 0;
      while (!rt.sync_test(2)) {
        eng.advance(50);
        ASSERT_LT(++spins, 1'000'000);
      }
      EXPECT_GT(spins, 0);
    } else if (me == 2) {
      eng.advance(3'000);
      const int partner[] = {1};
      rt.sync_images(partner);
    }
    rt.sync_all();
    // Round 2: both sides probe. Each first probe notifies the partner;
    // repeated probes are pure local reads until the partner's arrives.
    if (me == 1 || me == 2) {
      const int partner = me == 1 ? 2 : 1;
      if (me == 2) eng.advance(2'000);
      int spins = 0;
      while (!rt.sync_test(partner)) {
        eng.advance(50);
        ASSERT_LT(++spins, 1'000'000);
      }
    }
    rt.sync_all();
  });
}

TEST_P(NonblockingStacks, SyncTestRepeatedProbesDoNotYield) {
  Harness h(GetParam(), 2);
  h.run([&] {
    auto& rt = h.rt();
    sim::Engine& eng = h.engine();
    if (rt.this_image() == 1) {
      (void)rt.sync_test(2);  // opens the round (bounded round trip)
      const sim::Time t0 = eng.now();
      const bool r = rt.sync_test(2);  // later probes: single local read
      EXPECT_EQ(eng.now(), t0);
      int spins = 0;
      bool done = r;
      while (!done) {
        eng.advance(50);
        const sim::Time t1 = eng.now();
        done = rt.sync_test(2);
        EXPECT_EQ(eng.now(), t1);  // success or failure, the probe is local
        ASSERT_LT(++spins, 1'000'000);
      }
    } else {
      eng.advance(4'000);
      const int partner[] = {1};
      rt.sync_images(partner);
    }
    rt.sync_all();
  });
}
