// End-to-end fault-injection tests over the full CAF stack: deterministic
// replay under loss, Fortran-2018 failed-image semantics (image_status /
// sync_all(stat=) / RMA stat= variants), watchdog diagnostics, and
// symmetric-heap exhaustion reporting.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "caf_test_util.hpp"
#include "net/fault.hpp"
#include "shmem/heap.hpp"
#include "sim/engine.hpp"

using caftest::Harness;
using caftest::Stack;

namespace {

struct RunResult {
  std::size_t events = 0;
  std::uint64_t data_hash = 0;
  std::uint64_t trace_hash = 0;
  bool operator==(const RunResult&) const = default;
};

// A small ring workload under mixed loss/duplication/delay: every image
// puts into its right neighbour and reads from its left neighbour for a
// few synchronized rounds, folding what it read into an accumulator.
// cores_per_node + 2 images span two XC30 nodes, so the ring edges that
// cross the node boundary — and the barrier fan-ins — actually traverse
// the lossy wire; intra-node traffic bypasses the injector by design.
RunResult run_lossy_ring(std::uint64_t seed) {
  const int kImages =
      net::machine_profile(net::Machine::kXC30).cores_per_node + 2;
  net::FaultPlan plan;
  plan.with_seed(seed)
      .with_loss(0.02)
      .with_duplicates(0.01)
      .with_delays(0.05, 200, 2'000);
  Harness h(Stack::kShmemCray, kImages, {}, 2 << 20, plan);
  std::vector<std::int64_t> finals(kImages, 0);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();  // 1-based
    const int n = rt.num_images();
    const std::uint64_t off = rt.allocate_coarray_bytes(32);
    std::int64_t acc = me;
    for (int round = 0; round < 8; ++round) {
      const int right = me % n + 1;
      const int left = (me + n - 2) % n + 1;
      const std::int64_t v = acc * 1'000 + round;
      rt.put_bytes(right, off + 8 * (round % 4), &v, sizeof v);
      rt.sync_all();
      std::int64_t got = 0;
      rt.get_bytes(&got, left, off + 8 * (round % 4), sizeof got);
      acc += got;
      rt.sync_all();
    }
    finals[me - 1] = acc;
  });
  RunResult r;
  r.events = h.engine().events_processed();
  r.data_hash = 14695981039346656037ull;
  for (const std::int64_t v : finals) {
    r.data_hash ^= static_cast<std::uint64_t>(v);
    r.data_hash *= 1099511628211ull;
  }
  // Guard against the test passing vacuously: if no message ever reached
  // the injector, the trace hashes compare equal for the wrong reason.
  EXPECT_GT(h.injector()->counters().judged, 0u);
  r.trace_hash = h.injector()->trace_hash();
  return r;
}

}  // namespace

TEST(FaultDeterminism, SamePlanAndSeedReplaysBitIdentically) {
  const RunResult a = run_lossy_ring(0xD5);
  const RunResult b = run_lossy_ring(0xD5);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.data_hash, b.data_hash);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

TEST(FaultDeterminism, DifferentSeedsProduceDifferentTraces) {
  const RunResult a = run_lossy_ring(0xD5);
  const RunResult b = run_lossy_ring(0xD6);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

TEST(FailedImage, SurvivorsSeeStatFailedImageAndFinish) {
  net::FaultPlan plan;
  plan.kill_pe(2, 2'000'000);  // image 3 dies at 2 ms
  Harness h(Stack::kShmemCray, 4, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const std::uint64_t off = rt.allocate_coarray_bytes(8);
    if (me == 3) {
      // Victim: spins in stat-barriers until the injector kills it.
      for (;;) {
        h.engine().advance(100'000);
        (void)rt.sync_all_stat();
      }
    }
    // Survivors run a fixed number of rounds; the kill lands mid-loop and
    // every later round must report the failure instead of hanging.
    int st = caf::kStatOk;
    for (int k = 0; k < 30; ++k) {
      h.engine().advance(100'000);
      st = rt.sync_all_stat();
    }
    EXPECT_EQ(st, caf::kStatFailedImage);
    EXPECT_EQ(rt.image_status(3), caf::kStatFailedImage);
    EXPECT_EQ(rt.image_status(me), caf::kStatOk);
    const std::vector<int> failed = rt.failed_images();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], 3);
    std::int64_t v = 42;
    EXPECT_EQ(rt.put_bytes_stat(3, off, &v, sizeof v), caf::kStatFailedImage);
    std::int64_t g = 0;
    EXPECT_EQ(rt.get_bytes_stat(&g, 3, off, sizeof g), caf::kStatFailedImage);
    int astat = -1;
    EXPECT_EQ(rt.allocate_coarray_bytes(64, &astat), 0u);
    EXPECT_EQ(astat, caf::kStatFailedImage);
  });
  // The run itself completed: no DeadlockError escaped h.run().
  EXPECT_EQ(h.engine().failed_count(), 1);
}

// The write-combining stage + deferred quiet must not weaken failed-image
// reporting: a staged put whose target dies still surfaces as
// kStatFailedImage from the stat= variants and from sync stat= — never as
// a hang or a silent drop (this PR's aggregation tentpole, fault leg).
TEST(FailedImage, AggregationPreservesStatReporting) {
  net::FaultPlan plan;
  plan.kill_pe(2, 2'000'000);  // image 3 dies at 2 ms
  caf::Options opts;
  opts.rma.completion = caf::CompletionMode::kDeferred;
  opts.rma.write_combining = true;
  Harness h(Stack::kShmemCray, 4, opts, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const std::uint64_t off = rt.allocate_coarray_bytes(512);
    if (me == 3) {
      for (;;) {
        h.engine().advance(100'000);
        (void)rt.sync_all_stat();
      }
    }
    int st = caf::kStatOk;
    for (int k = 0; k < 30; ++k) {
      h.engine().advance(100'000);
      if (me == 1 && k < 10) {
        // Keep feeding small puts for the stage to combine — some flush
        // before the kill lands, some after.
        for (int i = 0; i < 8; ++i) {
          const std::int64_t v = k * 8 + i;
          (void)rt.put_bytes_stat(3, off + static_cast<std::uint64_t>(i) * 8,
                                  &v, 8);
        }
      }
      st = rt.sync_all_stat();
    }
    EXPECT_EQ(st, caf::kStatFailedImage);
    if (me == 1) EXPECT_GT(rt.stats().agg_staged, 0u);
    // Post-mortem stat= RMA through the pipeline: synchronous reporting.
    std::int64_t v = 42;
    EXPECT_EQ(rt.put_bytes_stat(3, off, &v, sizeof v), caf::kStatFailedImage);
    // Puts staged toward a peer that dies before the flush must not leave
    // the stage wedged: traffic to live images keeps flowing.
    if (me == 1) {
      const std::int64_t ok = 7;
      EXPECT_EQ(rt.put_bytes_stat(2, off, &ok, sizeof ok), caf::kStatOk);
    }
    (void)rt.sync_all_stat();
  });
  EXPECT_EQ(h.engine().failed_count(), 1);
}

TEST(FailedImage, WatchdogNamesStuckSurvivorAndDeadPeer) {
  net::FaultPlan plan;
  plan.kill_pe(1, 500'000);  // image 2 dies
  Harness h(Stack::kShmemCray, 2, {}, 2 << 20, plan);
  try {
    h.run([&] {
      auto& rt = h.rt();
      if (rt.this_image() == 2) {
        for (;;) h.engine().advance(50'000);
      }
      const int partner[] = {2};
      rt.sync_images(partner);  // plain (non-stat) sync: hangs on the corpse
    });
    FAIL() << "expected sim::FailedImageError";
  } catch (const sim::FailedImageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stalled after image failure"), std::string::npos)
        << what;
    EXPECT_NE(what.find("[pe 0]"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked in"), std::string::npos) << what;
    EXPECT_NE(what.find("failed images: pe 1"), std::string::npos) << what;
  }
}

TEST(Watchdog, PlainDeadlockListsBlockedOps) {
  Harness h(Stack::kShmemCray, 2);
  try {
    h.run([&] {
      auto& rt = h.rt();
      if (rt.this_image() == 1) {
        const int partner[] = {2};
        rt.sync_images(partner);  // image 2 never reciprocates
      }
    });
    FAIL() << "expected sim::DeadlockError";
  } catch (const sim::FailedImageError&) {
    FAIL() << "no image failed; expected plain DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("simulation deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("[pe 0]"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked in"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Symmetric-heap exhaustion
// ---------------------------------------------------------------------------

class HeapExhaustion : public ::testing::TestWithParam<Stack> {};

INSTANTIATE_TEST_SUITE_P(Conduits, HeapExhaustion,
                         ::testing::ValuesIn(caftest::kAllStacks),
                         [](const auto& info) {
                           std::string s = caftest::to_string(info.param);
                           for (auto& c : s) {
                             if (c == '-') c = '_';
                           }
                           return s;
                         });

TEST_P(HeapExhaustion, AllocateStatReportsOutOfMemoryAndHeapSurvives) {
  Harness h(GetParam(), 2, {}, /*heap=*/2 << 20);
  h.run([&] {
    auto& rt = h.rt();
    int stat = -1;
    EXPECT_EQ(rt.allocate_coarray_bytes(8 << 20, &stat), 0u);
    EXPECT_EQ(stat, caf::kStatOutOfMemory);
    // The collective replay log stays consistent: a smaller allocation
    // still succeeds on every image afterwards.
    int stat2 = -1;
    const std::uint64_t off = rt.allocate_coarray_bytes(1'024, &stat2);
    EXPECT_EQ(stat2, caf::kStatOk);
    std::memset(rt.local_addr(off), 0, 1'024);
    rt.sync_all();
  });
}

TEST_P(HeapExhaustion, ThrowingAllocateCarriesDiagnostics) {
  Harness h(GetParam(), 2, {}, /*heap=*/2 << 20);
  h.run([&] {
    auto& rt = h.rt();
    try {
      (void)rt.allocate_coarray_bytes(8 << 20);
      ADD_FAILURE() << "expected shmem::HeapExhaustedError";
    } catch (const shmem::HeapExhaustedError& e) {
      EXPECT_EQ(e.requested(), static_cast<std::uint64_t>(8 << 20));
      const std::string what = e.what();
      EXPECT_NE(what.find("cannot allocate"), std::string::npos) << what;
      EXPECT_NE(what.find("in use"), std::string::npos) << what;
    }
    rt.sync_all();
  });
}

TEST(HeapExhaustionNonsym, ManagedSlabThrowsAndStaysUsable) {
  Harness h(Stack::kShmemCray, 2);
  h.run([&] {
    auto& rt = h.rt();
    // The managed slab defaults to 256 KiB; a 1 MiB request must fail.
    EXPECT_THROW((void)rt.nonsym_alloc(1 << 20), shmem::HeapExhaustedError);
    const caf::RemotePtr p = rt.nonsym_alloc(64);
    rt.nonsym_free(p);
    rt.sync_all();
  });
}
