// RPC under failure: a target PE killed mid-RPC must surface
// STAT_FAILED_IMAGE through the initiator's future (on both the mailbox and
// the AM transport), and the RPC completion order must replay bit-
// identically for the same seed under message loss.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "caf_test_util.hpp"
#include "net/fault.hpp"
#include "sim/engine.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

namespace {

caf::Options rpc_opts() {
  caf::Options o;
  o.rpc.enabled = true;
  return o;
}

/// The last image busy-computes (never reaching a progress point) and is
/// killed at 1 ms; image 1 issues an RPC to it just before the kill, so the
/// request is in flight / undrained when the target dies. The future must
/// complete with kStatFailedImage once the failure detector declares the
/// death. The target sits on the second node: a same-node AM would be
/// delivered (and its handler run on the still-alive CPU) inside the
/// ~100 ns issue-to-kill window, while the cross-node hop guarantees
/// delivery lands after the kill on both transports.
void run_mid_rpc_kill(Stack s) {
  const int images = 26;  // XC30 packs 24 cores/node: images 25,26 spill over
  const int victim = images;
  net::FaultPlan plan;
  plan.with_seed(0xAB1E).kill_pe(/*pe=*/victim - 1, /*at=*/1'000'000);
  Harness h(s, images, rpc_opts(), 2 << 20, plan);
  bool checked = false;
  h.run([&] {
    auto& rt = h.rt();
    sim::Engine& eng = h.engine();
    const int me = rt.this_image();
    if (me == victim) {
      for (;;) eng.advance(50'000);  // killed mid-compute
    }
    if (me == 1) {
      // Issue as close to the kill as possible: the request is injected
      // while the target still counts as alive, and the reply never comes.
      while (eng.now() < 999'900) eng.advance(20);
      auto fut = rpc(
          rt, victim, [](std::int64_t x) -> std::int64_t { return x + 1; },
          std::int64_t{1});
      EXPECT_EQ(fut.wait(), kStatFailedImage);
      EXPECT_TRUE(fut.ready());
      EXPECT_EQ(fut.stat(), kStatFailedImage);
      // A future chained after the failure inherits the stat; the
      // continuation body is skipped.
      bool ran = false;
      auto chained = fut.then([&ran](std::int64_t) {
        ran = true;
        return std::int64_t{0};
      });
      EXPECT_EQ(chained.wait(), kStatFailedImage);
      EXPECT_FALSE(ran);
      checked = true;
    }
    // Every other image exits immediately; no global sync with the corpse.
  });
  EXPECT_TRUE(checked);
  EXPECT_EQ(h.engine().failed_count(), 1);
}

}  // namespace

TEST(RpcFaults, MidRpcKillSurfacesFailedImageMailbox) {
  run_mid_rpc_kill(Stack::kShmemCray);  // mailbox transport
}

TEST(RpcFaults, MidRpcKillSurfacesFailedImageAm) {
  run_mid_rpc_kill(Stack::kGasnet);  // AM transport
}

// ---------------------------------------------------------------------------
// Determinism under loss
// ---------------------------------------------------------------------------

namespace {

/// Every image issues a deterministic RPC stream across the node boundary
/// under 1% message loss and logs each operation's completion (in
/// completion order, as observed by then-continuations). Returns the
/// per-image logs.
std::vector<std::vector<std::uint64_t>> run_lossy_rpc(std::uint64_t seed) {
  const int images =
      net::machine_profile(net::Machine::kStampede).cores_per_node + 2;
  net::FaultPlan plan;
  plan.with_seed(seed).with_loss(0.01);
  Harness h(Stack::kShmemMvapich, images, rpc_opts(), 4 << 20, plan);
  std::vector<std::vector<std::uint64_t>> logs(
      static_cast<std::size_t>(images));
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const int n = rt.num_images();
    auto& log = logs[static_cast<std::size_t>(me - 1)];
    std::vector<future<void>> done;
    for (int u = 0; u < 40; ++u) {
      const int target = (me - 1 + u) % n + 1;
      auto fut = rpc(
          rt, target,
          [](std::int64_t a, std::int64_t b) -> std::int64_t {
            return a * 131 + b;
          },
          static_cast<std::int64_t>(target), static_cast<std::int64_t>(u));
      done.push_back(fut.then([&log, u](std::int64_t v) {
        log.push_back(static_cast<std::uint64_t>(u) << 32 |
                      static_cast<std::uint32_t>(v));
      }));
    }
    EXPECT_EQ(when_all(std::move(done)).wait(), kStatOk);
    rt.sync_all();
  });
  // Guard against vacuity: the lossy wire must actually have been used.
  EXPECT_GT(h.injector()->counters().judged, 0u);
  return logs;
}

}  // namespace

TEST(RpcFaults, CompletionOrderBitIdenticalUnderLoss) {
  const auto a = run_lossy_rpc(0xC0FFEE);
  const auto b = run_lossy_rpc(0xC0FFEE);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "completion log of image " << (i + 1);
  }
  // And the logs are complete: every operation's continuation ran.
  for (const auto& log : a) EXPECT_EQ(log.size(), 40u);
}
