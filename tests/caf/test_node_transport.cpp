// Integration tests for the node-local shared-segment transport
// (caf::Options::node -> fabric::Domain -> net::NodeChannel):
//
//   * the acceptance property — with every image on one node, a whole run
//     completes with ZERO fabric messages, every same-node op counted in
//     the node.elided_msgs family;
//   * cross-conduit conformance at non-pow2 image counts, transport on;
//   * SPSC ring backpressure/wraparound visible through the obs counters;
//   * same-node peer kill mid-put surfaces as kStatFailedImage;
//   * same-seed reruns stay byte-identical with the transport on, and the
//     on/off choice is itself observable in the recorded state;
//   * the caf::NodeHeap facade (direct pointers, NUMA queries, stats).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <tuple>

#include "caf_test_util.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

namespace {

caf::Options node_on() {
  caf::Options o;
  o.node.enabled = true;
  return o;
}

std::uint64_t counter_total(const char* name, int npes) {
  std::uint64_t total = 0;
  for (int pe = 0; pe < npes; ++pe) total += obs::registry().value(pe, name);
  return total;
}

std::uint64_t wire_records_total(int npes) {
  std::uint64_t total = 0;
  for (int pe = 0; pe < npes; ++pe) {
    total += obs::detail::session().wire_ring(pe).total();
  }
  return total;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

// The acceptance criterion of the transport: all 8 images share an XC30
// node, so every put/get/AMO — including the ones inside barriers and the
// collective allocator — must complete via the shared segment, with not a
// single message entering the fabric.
TEST(NodeTransport, SingleNodeRunElidesEveryFabricMessage) {
  const int images = 8;
  obs::enable({});  // record kMsgWire events (there must be none)
  {
    Harness h(Stack::kShmemCray, images, node_on());
    h.run([&] {
      Conduit& c = h.rt().conduit();
      const std::uint64_t off = c.allocate(256);
      c.barrier();
      if (c.rank() == 0) {
        const std::uint64_t puts0 = obs::registry().value(0, "node.puts");
        const std::uint64_t gets0 = obs::registry().value(0, "node.gets");
        const std::uint64_t amos0 = obs::registry().value(0, "node.amos");
        const std::uint64_t elided0 =
            obs::registry().value(0, "node.elided_msgs");
        std::int64_t v = 42;
        for (int i = 0; i < 5; ++i) {
          c.put(1, off + 8 * static_cast<std::uint64_t>(i), &v, sizeof v,
                /*nbi=*/false);
        }
        c.quiet();
        std::int64_t got = 0;
        for (int i = 0; i < 3; ++i) c.get(&got, 1, off, sizeof got);
        EXPECT_EQ(got, 42);
        (void)c.amo_fadd(2, off, 7);
        (void)c.amo_fadd(2, off, 7);
        EXPECT_EQ(obs::registry().value(0, "node.puts"), puts0 + 5);
        EXPECT_EQ(obs::registry().value(0, "node.gets"), gets0 + 3);
        EXPECT_EQ(obs::registry().value(0, "node.amos"), amos0 + 2);
        // Every one of the 10 ops was one elided fabric message.
        EXPECT_EQ(obs::registry().value(0, "node.elided_msgs"), elided0 + 10);
      }
      c.barrier();
      if (c.rank() == 2) {
        std::int64_t acc = 0;
        std::memcpy(&acc, c.segment(2) + off, sizeof acc);
        EXPECT_EQ(acc, 14);
      }
      c.barrier();
    });
    // Zero fabric messages for the entire run — barriers, the collective
    // allocator, and the explicit RMA above all rode the node transport.
    EXPECT_EQ(wire_records_total(images), 0u);
    EXPECT_GT(counter_total("node.elided_msgs", images), 0u);
    EXPECT_EQ(counter_total("node.elided_msgs", images),
              counter_total("node.puts", images) +
                  counter_total("node.gets", images) +
                  counter_total("node.amos", images) +
                  counter_total("node.scatters", images) +
                  counter_total("node.strided", images));
  }
  obs::disable();
}

// A multi-node layout still elides only the same-node pairs: traffic to the
// second node keeps using the fabric.
TEST(NodeTransport, CrossNodeTrafficStillUsesTheFabric) {
  const int images = 26;  // XC30: 24 images on node 0, 2 on node 1
  obs::enable({});
  {
    Harness h(Stack::kShmemCray, images, node_on());
    h.run([&] {
      Conduit& c = h.rt().conduit();
      const std::uint64_t off = c.allocate(64);
      c.barrier();
      if (c.rank() == 0) {
        std::int64_t v = 9;
        c.put(1, off, &v, sizeof v, false);   // same node: elided
        c.put(25, off, &v, sizeof v, false);  // node 1: real fabric message
        c.quiet();
      }
      c.barrier();
    });
    EXPECT_GT(counter_total("node.elided_msgs", images), 0u);
    EXPECT_GT(wire_records_total(images), 0u);
  }
  obs::disable();
}

// ---- cross-conduit conformance at non-pow2 image counts ----------------

class NodeConformance
    : public ::testing::TestWithParam<std::tuple<Stack, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Conduits, NodeConformance,
    ::testing::Combine(::testing::ValuesIn(caftest::kAllStacks),
                       ::testing::Values(6, 12)),
    [](const auto& info) {
      std::string s = caftest::to_string(std::get<0>(info.param));
      for (auto& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s + "_" + std::to_string(std::get<1>(info.param)) + "img";
    });

// Neighbor puts + a fetch-add fan-in + a runtime co_sum, all images on one
// node with the transport enabled: data must land exactly as on the fabric
// path, and the node path must actually have carried it.
TEST_P(NodeConformance, RingPutsAmoFanInAndCoSumMatch) {
  const auto [stack, images] = GetParam();
  Harness h(stack, images, node_on());
  h.run([&] {
    auto& rt = h.rt();
    Conduit& c = rt.conduit();
    const int me = c.rank();
    const std::uint64_t off = c.allocate(128);
    c.barrier();

    // Ring put: everyone stores its rank into the right neighbor's slot.
    const int right = (me + 1) % images;
    std::int64_t v = me;
    c.put(right, off, &v, sizeof v, false);
    c.quiet();
    c.barrier();
    std::int64_t left_val = -1;
    std::memcpy(&left_val, c.segment(me) + off, sizeof left_val);
    EXPECT_EQ(left_val, (me + images - 1) % images);

    // AMO fan-in onto rank 0's accumulator.
    (void)c.amo_fadd(0, off + 64, me + 1);
    c.barrier();
    if (me == 0) {
      std::int64_t acc = 0;
      std::memcpy(&acc, c.segment(0) + off + 64, sizeof acc);
      EXPECT_EQ(acc, static_cast<std::int64_t>(images) * (images + 1) / 2);
    }

    // Runtime-level collective over the transport.
    std::int64_t sum = rt.this_image();
    rt.co_sum(&sum, 1);
    EXPECT_EQ(sum, static_cast<std::int64_t>(images) * (images + 1) / 2);
    c.barrier();
  });
  fabric::Domain* d = h.rt().conduit().rma_domain();
  ASSERT_NE(d, nullptr);
  ASSERT_NE(d->node_transport(), nullptr);
  EXPECT_GT(counter_total("node.elided_msgs", images), 0u);
}

// ---- ring behavior under load ------------------------------------------

// A tiny ring flooded with back-to-back small puts must wrap and stall —
// backpressure is modeled, not assumed away — and still deliver in order.
TEST(NodeTransport, RingWrapsAndStallsUnderBackpressure) {
  caf::Options opts = node_on();
  opts.node.ring_slots = 2;
  opts.node.slot_bytes = 64;
  const int images = 4;
  Harness h(Stack::kShmemCray, images, opts);
  h.run([&] {
    Conduit& c = h.rt().conduit();
    const std::uint64_t off = c.allocate(1024);
    c.barrier();
    if (c.rank() == 0) {
      for (std::int64_t i = 0; i < 64; ++i) {
        c.put(1, off + 8 * static_cast<std::uint64_t>(i % 16), &i, sizeof i,
              /*nbi=*/true);
      }
      c.quiet();
    }
    c.barrier();
    if (c.rank() == 1) {
      std::int64_t last = 0;
      std::memcpy(&last, c.segment(1) + off + 8 * 15, sizeof last);
      EXPECT_EQ(last, 63);  // in-order: the final generation won
    }
    c.barrier();
  });
  const net::NodeChannel* ch = h.rt().conduit().rma_domain()->node_transport();
  ASSERT_NE(ch, nullptr);
  EXPECT_GT(ch->ring_wraps(), 0u);
  EXPECT_GT(ch->ring_stalls(), 0u);
  EXPECT_EQ(counter_total("node.ring_stalls", images), ch->ring_stalls());
}

// ---- failures on the node path -----------------------------------------

// Killing a same-node peer mid-stream: puts into the detached segment must
// surface as kStatFailedImage, not silently "succeed" through shared memory.
TEST(NodeTransport, SameNodePeerKillFailsSubsequentPuts) {
  const int images = 8;
  net::FaultPlan plan;
  plan.with_seed(0xA11CE);
  plan.kill_pe(2, 500'000);  // image 3, same node as everyone
  Harness h(Stack::kShmemCray, images, node_on(), 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    Conduit& c = rt.conduit();
    const std::uint64_t off = c.allocate(64);
    if (c.rank() == 0) {
      std::int64_t v = 5;
      // Before the kill the put lands normally.
      EXPECT_EQ(rt.put_bytes_stat(3, off, &v, sizeof v), kStatOk);
      h.engine().advance(1'000'000);  // past the kill
      EXPECT_EQ(rt.put_bytes_stat(3, off, &v, sizeof v), kStatFailedImage);
      std::int64_t g = 0;
      EXPECT_EQ(rt.get_bytes_stat(&g, 3, off, sizeof g), kStatFailedImage);
      // A live same-node neighbor keeps working.
      EXPECT_EQ(rt.put_bytes_stat(2, off, &v, sizeof v), kStatOk);
    }
  });
}

// ---- determinism --------------------------------------------------------

namespace {

// One fixed single-node workload; returns the FNV-1a hash of its Chrome
// trace. Counters are sampled before teardown so callers can also assert
// on the transport's footprint.
std::uint64_t traced_run_hash(bool transport_on, std::uint64_t* elided_out) {
  const int images = 24;  // one full XC30 node; non-pow2
  obs::enable({});
  caf::Options opts;
  opts.node.enabled = transport_on;
  std::uint64_t hash = 14695981039346656037ull;
  {
    Harness h(Stack::kShmemCray, images, opts);
    h.run([&] {
      auto& rt = h.rt();
      Conduit& c = rt.conduit();
      const int me = c.rank();
      const std::uint64_t off = c.allocate(256);
      c.barrier();
      for (int round = 0; round < 4; ++round) {
        std::int64_t v = me * 100 + round;
        c.put((me + 1) % images, off + 8 * static_cast<std::uint64_t>(round),
              &v, sizeof v, /*nbi=*/true);
        c.quiet();
        (void)c.amo_fadd((me + 5) % images, off + 64, 1);
        std::int64_t s = me;
        rt.co_sum(&s, 1);
      }
      c.barrier();
    });
    const std::string trace = obs::chrome_trace_json();
    hash = fnv1a(hash, trace.data(), trace.size());
    if (elided_out != nullptr) {
      *elided_out = counter_total("node.elided_msgs", images);
    }
  }
  obs::disable();
  return hash;
}

}  // namespace

TEST(NodeTransport, SameSeedRerunsAreByteIdenticalAndOnOffIsObservable) {
  std::uint64_t elided_a = 0, elided_b = 0, elided_off = 0;
  const std::uint64_t on_a = traced_run_hash(true, &elided_a);
  const std::uint64_t on_b = traced_run_hash(true, &elided_b);
  const std::uint64_t off = traced_run_hash(false, &elided_off);
  EXPECT_EQ(on_a, on_b) << "same-seed rerun diverged with the transport on";
  EXPECT_EQ(elided_a, elided_b);
  EXPECT_GT(elided_a, 0u);
  EXPECT_EQ(elided_off, 0u) << "transport off must not elide anything";
  EXPECT_NE(on_a, off)
      << "transport on/off must be distinguishable in the trace";
}

// ---- caf::NodeHeap facade ----------------------------------------------

TEST(NodeTransport, NodeHeapResolvesSameNodePointersAndReportsTopology) {
  const int images = 26;  // node 0 holds 24 images, node 1 the last two
  Harness h(Stack::kShmemCray, images, node_on());
  h.run([&] {
    auto& rt = h.rt();
    Conduit& c = rt.conduit();
    const std::uint64_t off = c.allocate(64);
    c.barrier();
    NodeHeap nh = rt.node_heap();
    ASSERT_TRUE(nh.enabled());
    const int me = rt.this_image();
    if (me == 1) {
      // Direct store into a same-node sibling (the shmem_ptr idiom).
      std::byte* p = nh.resolve(2, off);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(p, c.segment(1) + off);
      const std::int64_t magic = 0x5eed;
      std::memcpy(p, &magic, sizeof magic);
      // Cross-node images and out-of-segment offsets do not resolve.
      EXPECT_EQ(nh.resolve(26, off), nullptr);
      EXPECT_EQ(nh.resolve(2, c.segment_bytes()), nullptr);
      EXPECT_TRUE(nh.same_node(1, 24));
      EXPECT_FALSE(nh.same_node(1, 25));
      EXPECT_EQ(nh.cpu_domain(1), 0);
      EXPECT_EQ(nh.cpu_domain(24), 1);  // pe 23: second socket
      EXPECT_TRUE(nh.numa_local(2));
      EXPECT_FALSE(nh.numa_local(24));
      EXPECT_GT(nh.copy_cost(24, 4096), nh.copy_cost(2, 4096));
      const NodeHeapStats s = nh.stats();
      EXPECT_EQ(s.node, 0);
      EXPECT_EQ(s.images_on_node, 24);
      EXPECT_EQ(s.numa_domains, 2);
      ASSERT_EQ(s.images_per_domain.size(), 2u);
      EXPECT_EQ(s.images_per_domain[0], 12);
      EXPECT_EQ(s.images_per_domain[1], 12);
    }
    if (me == 26) {
      const NodeHeapStats s = rt.node_heap().stats();
      EXPECT_EQ(s.node, 1);
      EXPECT_EQ(s.images_on_node, 2);
    }
    c.barrier();
    if (me == 2) {
      std::int64_t got = 0;
      std::memcpy(&got, c.segment(1) + off, sizeof got);
      EXPECT_EQ(got, 0x5eed);
    }
    c.barrier();
  });
}

// Without the transport, NodeHeap degrades gracefully: nothing resolves,
// costs are zero, queries fall back to trivial answers.
TEST(NodeTransport, NodeHeapDisabledFallsBackGracefully) {
  Harness h(Stack::kGasnet, 4);
  h.run([&] {
    NodeHeap nh = h.rt().node_heap();
    EXPECT_FALSE(nh.enabled());
    EXPECT_EQ(nh.resolve(2, 0), nullptr);
    EXPECT_EQ(nh.copy_cost(2, 1 << 20), 0);
    EXPECT_EQ(nh.cpu_domain(3), 0);
    const NodeHeapStats s = nh.stats();
    EXPECT_EQ(s.images_on_node, 1);
  });
}
