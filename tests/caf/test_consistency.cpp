// Randomized memory-consistency property test, run over every conduit:
// images execute rounds of deterministic pseudo-random communication
// (contiguous puts, strided section puts, scalar puts, atomics) into
// conflict-free destinations, with sync all between rounds; the final
// memory of every image must equal a sequentially computed golden model.
#include <gtest/gtest.h>

#include <vector>

#include "caf_test_util.hpp"
#include "sim/rng.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

namespace {

constexpr int kImages = 6;
constexpr std::int64_t kRows = 24;   // row r belongs to writer image r%6 + ...
constexpr std::int64_t kCols = 16;
constexpr int kRounds = 4;

struct Op {
  int writer;       // 1-based image that performs the op
  int target;       // 1-based destination image
  int kind;         // 0 = contiguous row put, 1 = strided row put, 2 = scalar
  std::int64_t row; // row assigned to this writer (conflict-free)
  std::int64_t col_lo, col_hi, col_st;
  int value_seed;
};

/// Deterministically generates the ops of one round. Row ownership is
/// writer-unique so concurrent puts never overlap.
std::vector<Op> make_round(int round, std::uint64_t seed) {
  sim::Rng rng(seed * 7919 + static_cast<std::uint64_t>(round));
  std::vector<Op> ops;
  for (int w = 1; w <= kImages; ++w) {
    // Each writer owns rows where row % kImages == w-1.
    const int n_ops = 2 + static_cast<int>(rng.below(3));
    for (int k = 0; k < n_ops; ++k) {
      Op op;
      op.writer = w;
      op.target = 1 + static_cast<int>(rng.below(kImages));
      op.kind = static_cast<int>(rng.below(3));
      op.row = 1 + (w - 1) +
               kImages * static_cast<std::int64_t>(rng.below(kRows / kImages));
      op.col_lo = 1 + static_cast<std::int64_t>(rng.below(kCols / 2));
      op.col_hi = op.col_lo + static_cast<std::int64_t>(
                                  rng.below(static_cast<std::uint64_t>(
                                      kCols - op.col_lo + 1)));
      op.col_st = 1 + static_cast<std::int64_t>(rng.below(3));
      op.value_seed = static_cast<int>(rng.below(1 << 20));
      ops.push_back(op);
    }
  }
  return ops;
}

int op_value(const Op& op, std::int64_t i) {
  return op.value_seed + static_cast<int>(i) * 13 + op.writer;
}

/// Applies one op to a golden image-memory model.
void apply_golden(std::vector<std::vector<int>>& mem, const Op& op) {
  auto& tgt = mem[static_cast<std::size_t>(op.target - 1)];
  auto at = [&](std::int64_t r, std::int64_t c) -> int& {
    return tgt[static_cast<std::size_t>((c - 1) * kRows + (r - 1))];
  };
  switch (op.kind) {
    case 0:  // contiguous column segment within the row? use whole-row put
      for (std::int64_t c = 1; c <= kCols; ++c) at(op.row, c) = op_value(op, c);
      break;
    case 1:  // strided section put along columns of the row
      for (std::int64_t c = op.col_lo, i = 0; c <= op.col_hi; c += op.col_st, ++i)
        at(op.row, c) = op_value(op, i);
      break;
    default:  // scalar
      at(op.row, op.col_lo) = op_value(op, 0);
      break;
  }
}

}  // namespace

class Consistency : public ::testing::TestWithParam<Stack> {};
INSTANTIATE_TEST_SUITE_P(Stacks, Consistency,
                         ::testing::ValuesIn(caftest::kAllStacks),
                         [](const auto& info) {
                           std::string s = caftest::to_string(info.param);
                           for (auto& c : s) if (c == '-') c = '_';
                           return s;
                         });

TEST_P(Consistency, RandomProgramMatchesGoldenModel) {
  for (std::uint64_t seed : {11ull, 42ull}) {
    for (auto algo : {StridedAlgo::kNaive, StridedAlgo::kTwoDim}) {
      // Golden model.
      std::vector<std::vector<int>> golden(
          kImages, std::vector<int>(static_cast<std::size_t>(kRows * kCols), 0));
      for (int r = 0; r < kRounds; ++r) {
        for (const Op& op : make_round(r, seed)) apply_golden(golden, op);
      }

      Options opts;
      opts.strided = algo;
      Harness h(GetParam(), kImages, opts, 4 << 20);
      std::vector<std::vector<int>> actual(kImages);
      h.run([&] {
        auto x = make_coarray<int>(h.rt(), Shape{kRows, kCols});
        for (std::int64_t i = 0; i < x.size(); ++i) x.data()[i] = 0;
        h.rt().sync_all();
        const int me = h.rt().this_image();
        for (int r = 0; r < kRounds; ++r) {
          for (const Op& op : make_round(r, seed)) {
            if (op.writer != me) continue;
            switch (op.kind) {
              case 0: {
                // Whole-row put: a strided section with the row fixed.
                std::vector<int> vals;
                for (std::int64_t c = 1; c <= kCols; ++c) {
                  vals.push_back(op_value(op, c));
                }
                x.put_section(op.target,
                              Section{{op.row, op.row, 1}, {1, kCols, 1}},
                              vals.data());
                break;
              }
              case 1: {
                std::vector<int> vals;
                for (std::int64_t c = op.col_lo, i = 0; c <= op.col_hi;
                     c += op.col_st, ++i) {
                  vals.push_back(op_value(op, i));
                }
                if (!vals.empty()) {
                  x.put_section(
                      op.target,
                      Section{{op.row, op.row, 1},
                              {op.col_lo, op.col_hi, op.col_st}},
                      vals.data());
                }
                break;
              }
              default:
                x.put_scalar(op.target, {op.row, op.col_lo}, op_value(op, 0));
                break;
            }
          }
          h.rt().sync_all();
        }
        actual[me - 1].assign(x.data(), x.data() + x.size());
        h.rt().sync_all();
      });

      for (int img = 0; img < kImages; ++img) {
        ASSERT_EQ(actual[img], golden[img])
            << "image " << img + 1 << " seed " << seed << " algo "
            << static_cast<int>(algo) << " stack "
            << caftest::to_string(GetParam());
      }
    }
  }
}
