// Conduit conformance suite: exercises the raw caf::Conduit contract over
// every implementation (ShmemConduit, GasnetConduit, ArmciConduit) so that
// a new conduit can be validated against the exact semantics the runtime
// depends on, independent of the higher-level coarray machinery.
//
// Every case runs twice per conduit: once over a perfect wire, and once
// with 1% message loss injected — the reliable-delivery layer must make
// the loss invisible (same data lands, only timing differs).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <tuple>

#include "caf_test_util.hpp"
#include "obs/obs.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

namespace {

Conduit& conduit(Harness& h) { return h.rt().conduit(); }

class ConduitConformance
    : public ::testing::TestWithParam<std::tuple<Stack, int>> {
 protected:
  Harness make(int images) {
    const Stack stack = std::get<0>(GetParam());
    const int loss_pct = std::get<1>(GetParam());
    net::FaultPlan plan;
    if (loss_pct > 0) {
      plan.with_seed(0xC0FFEE).with_loss(loss_pct / 100.0);
    }
    return Harness(stack, images, {}, 2 << 20, plan);
  }
};

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Conduits, ConduitConformance,
    ::testing::Combine(::testing::ValuesIn(caftest::kAllStacks),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      std::string s = caftest::to_string(std::get<0>(info.param));
      for (auto& c : s) {
        if (c == '-') c = '_';
      }
      const int loss = std::get<1>(info.param);
      s += loss > 0 ? "_loss" + std::to_string(loss) + "pct" : "_clean";
      return s;
    });

TEST_P(ConduitConformance, IdentityAndSegments) {
  Harness h = make(6);
  h.run([&] {
    Conduit& c = conduit(h);
    EXPECT_EQ(c.nranks(), 6);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 6);
    EXPECT_GT(c.segment_bytes(), 0u);
    for (int r = 0; r < 6; ++r) EXPECT_NE(c.segment(r), nullptr);
  });
}

TEST_P(ConduitConformance, CollectiveAllocationIsSymmetricAndAligned) {
  Harness h = make(5);
  std::vector<std::uint64_t> offs(5);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t a = c.allocate(48);
    const std::uint64_t b = c.allocate(8);
    offs[c.rank()] = a ^ (b << 24);
    EXPECT_EQ(a % 8, 0u);
    c.deallocate(b);
    c.deallocate(a);
  });
  for (int i = 1; i < 5; ++i) EXPECT_EQ(offs[i], offs[0]);
}

TEST_P(ConduitConformance, PutHasLocalCompletionSemantics) {
  Harness h = make(4);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(64);
    c.barrier();
    if (c.rank() == 0) {
      std::int64_t v = 1234;
      c.put(1, off, &v, sizeof v, /*nbi=*/false);
      v = 0;  // source reusable immediately
      c.quiet();
    }
    c.barrier();
    if (c.rank() == 1) {
      std::int64_t got = 0;
      std::memcpy(&got, c.segment(1) + off, sizeof got);
      EXPECT_EQ(got, 1234);
    }
    c.barrier();
  });
}

TEST_P(ConduitConformance, NbiPutsCompleteAtQuiet) {
  Harness h = make(4);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(1024);
    c.barrier();
    if (c.rank() == 0) {
      std::vector<int> v(16);
      for (int i = 0; i < 16; ++i) {
        v[i] = 100 + i;
        c.put(2, off + i * 64, &v[i], sizeof(int), /*nbi=*/true);
      }
      c.quiet();
    }
    c.barrier();
    if (c.rank() == 2) {
      for (int i = 0; i < 16; ++i) {
        int got = 0;
        std::memcpy(&got, c.segment(2) + off + i * 64, sizeof got);
        EXPECT_EQ(got, 100 + i);
      }
    }
    c.barrier();
  });
}

TEST_P(ConduitConformance, GetReadsCurrentRemoteState) {
  Harness h = make(4);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(8);
    const std::int64_t mine = 5000 + c.rank();
    std::memcpy(c.segment(c.rank()) + off, &mine, sizeof mine);
    c.barrier();
    std::int64_t got = 0;
    c.get(&got, (c.rank() + 1) % 4, off, sizeof got);
    EXPECT_EQ(got, 5000 + (c.rank() + 1) % 4);
    c.barrier();
  });
}

TEST_P(ConduitConformance, StridedPutScatter) {
  Harness h = make(4);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(1024);
    std::memset(c.segment(c.rank()) + off, 0, 1024);
    c.barrier();
    if (c.rank() == 0) {
      std::vector<int> src(10);
      std::iota(src.begin(), src.end(), 700);
      c.iput(3, off, /*dst_stride=*/5, src.data(), /*src_stride=*/1,
             sizeof(int), 10);
      c.quiet();
    }
    c.barrier();
    if (c.rank() == 3) {
      for (int i = 0; i < 10; ++i) {
        int got = 0;
        std::memcpy(&got, c.segment(3) + off + i * 5 * sizeof(int), sizeof got);
        EXPECT_EQ(got, 700 + i);
      }
    }
    c.barrier();
  });
}

TEST_P(ConduitConformance, StridedGetGather) {
  Harness h = make(4);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(1024);
    auto* base = c.segment(c.rank()) + off;
    for (int i = 0; i < 32; ++i) {
      const int v = c.rank() * 100 + i;
      std::memcpy(base + i * sizeof(int), &v, sizeof v);
    }
    c.barrier();
    if (c.rank() == 1) {
      std::vector<int> dst(8, -1);
      c.iget(dst.data(), 1, 2, off, /*src_stride=*/4, sizeof(int), 8);
      for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], 200 + 4 * i);
    }
    c.barrier();
  });
}

TEST_P(ConduitConformance, AtomicsAreLinearizable) {
  Harness h = make(8);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(16);
    std::memset(c.segment(c.rank()) + off, 0, 16);
    c.barrier();
    // fadd: fetched values must be a permutation of partial sums.
    const std::int64_t fetched = c.amo_fadd(0, off, 1);
    EXPECT_GE(fetched, 0);
    EXPECT_LT(fetched, 8);
    c.barrier();
    std::int64_t total = 0;
    std::memcpy(&total, c.segment(0) + off, sizeof total);
    EXPECT_EQ(total, 8);
    c.barrier();
    // cswap: exactly one winner from 0.
    static int winners;
    if (c.rank() == 0) winners = 0;
    c.barrier();
    if (c.amo_cswap(0, off + 8, 0, c.rank() + 1) == 0) ++winners;
    c.barrier();
    if (c.rank() == 0) {
      EXPECT_EQ(winners, 1);
    }
    // swap returns the previous value.
    if (c.rank() == 0) {
      const std::int64_t prev = c.amo_swap(1, off, -9);
      std::int64_t now = 0;
      std::memcpy(&now, c.segment(1) + off, sizeof now);
      EXPECT_EQ(now, -9);
      (void)prev;
    }
    c.barrier();
  });
}

TEST_P(ConduitConformance, BitwiseAtomics) {
  Harness h = make(2);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(8);
    std::memset(c.segment(c.rank()) + off, 0, 8);
    c.barrier();
    if (c.rank() == 0) {
      EXPECT_EQ(c.amo_for(1, off, 0b1100), 0);
      EXPECT_EQ(c.amo_fand(1, off, 0b0110), 0b1100);
      EXPECT_EQ(c.amo_fxor(1, off, 0b0011), 0b0100);
      std::int64_t v = 0;
      std::memcpy(&v, c.segment(1) + off, sizeof v);
      EXPECT_EQ(v, 0b0111);
    }
    c.barrier();
  });
}

TEST_P(ConduitConformance, WaitUntilWakesOnEveryComparison) {
  Harness h = make(2);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(8 * 6);
    std::memset(c.segment(c.rank()) + off, 0, 8 * 6);
    c.barrier();
    struct Case {
      Cmp cmp;
      std::int64_t arg;
      std::int64_t write;
    };
    const Case cases[] = {
        {Cmp::kEq, 7, 7},   {Cmp::kNe, 0, 3},  {Cmp::kGt, 10, 11},
        {Cmp::kGe, 5, 5},   {Cmp::kLt, 0, -2}, {Cmp::kLe, -5, -6},
    };
    if (c.rank() == 1) {
      for (int i = 0; i < 6; ++i) {
        h.engine().advance(5'000);
        c.put(0, off + i * 8, &cases[i].write, 8, /*nbi=*/false);
        c.quiet();
      }
    } else {
      for (int i = 0; i < 6; ++i) {
        c.wait_until(off + i * 8, cases[i].cmp, cases[i].arg);
        std::int64_t v = 0;
        std::memcpy(&v, c.segment(0) + off + i * 8, sizeof v);
        EXPECT_EQ(v, cases[i].write) << "case " << i;
      }
    }
    c.barrier();
  });
}

TEST_P(ConduitConformance, BarrierIsAFullFence) {
  Harness h = make(6);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(8);
    std::memset(c.segment(c.rank()) + off, 0, 8);
    c.barrier();
    h.engine().advance(500 * (c.rank() + 1));
    c.barrier();
    EXPECT_GE(h.engine().now(), 3'000);
  });
}

// put_scatter: every record's bytes land at its destination offset after a
// quiet, regardless of how the conduit maps the scatter (hardware scatter,
// ARMCI vector put, MPI datatype, or a loop of nbi puts).
TEST_P(ConduitConformance, PutScatterDeliversAllRecords) {
  Harness h = make(4);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(1024);
    std::memset(c.segment(c.rank()) + off, 0, 1024);
    c.barrier();
    if (c.rank() == 0) {
      constexpr int kRecs = 16;
      std::int64_t vals[kRecs];
      fabric::ScatterRec recs[kRecs];
      for (int i = 0; i < kRecs; ++i) {
        vals[i] = 1000 + i;
        recs[i] = {off + static_cast<std::uint64_t>(i) * 32, 8,
                   static_cast<std::uint32_t>(i) * 8};
      }
      c.put_scatter(1, recs, kRecs, vals, sizeof vals);
      EXPECT_TRUE(c.pending(1));
      c.quiet();
      EXPECT_FALSE(c.pending(1));
      for (int i = 0; i < kRecs; ++i) {
        std::int64_t g = 0;
        c.get(&g, 1, off + static_cast<std::uint64_t>(i) * 32, 8);
        EXPECT_EQ(g, 1000 + i) << "record " << i;
      }
    }
    c.barrier();
    if (c.rank() == 1) {
      // The gaps between records stayed untouched.
      for (int i = 0; i < 16; ++i) {
        std::int64_t gap = -1;
        std::memcpy(&gap, c.segment(1) + off +
                              static_cast<std::uint64_t>(i) * 32 + 8, 8);
        EXPECT_EQ(gap, 0) << "gap after record " << i;
      }
    }
    c.barrier();
  });
}

// The outstanding-op tracker: quiet() with a clean tracker is elided (no
// transport fence), and puts mark exactly their target dirty.
TEST_P(ConduitConformance, QuietIsElidedWhenNoOpsAreInFlight) {
  Harness h = make(4);
  h.run([&] {
    Conduit& c = conduit(h);
    const std::uint64_t off = c.allocate(64);
    c.barrier();
    if (c.rank() == 0) {
      const std::uint64_t elided0 =
          obs::registry().value(0, "rma.quiet_elided");
      c.quiet();
      c.quiet();
      EXPECT_EQ(obs::registry().value(0, "rma.quiet_elided"), elided0 + 2);
      std::int64_t v = 5;
      c.put(2, off, &v, sizeof v, /*nbi=*/true);
      EXPECT_TRUE(c.pending(2));
      EXPECT_FALSE(c.pending(1));
      c.quiet();  // real fence: tracker dirty
      EXPECT_EQ(obs::registry().value(0, "rma.quiet_elided"), elided0 + 2);
      EXPECT_FALSE(c.pending_any());
    }
    c.barrier();
  });
}
