// Tests for the packed 20/36/8-bit remote pointers of §IV-D.
#include "caf/remote_ptr.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

using caf::RemotePtr;

TEST(RemotePtr, NullIsFalsy) {
  RemotePtr p;
  EXPECT_TRUE(p.is_null());
  EXPECT_FALSE(p);
  EXPECT_EQ(p.bits(), 0u);
}

TEST(RemotePtr, ImageZeroOffsetZeroIsNotNull) {
  // The valid flag distinguishes a real (0, 0) pointer from null.
  RemotePtr p(0, 0);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(p.image(), 0);
  EXPECT_EQ(p.offset(), 0u);
}

TEST(RemotePtr, FieldWidthsMatchPaper) {
  EXPECT_EQ(RemotePtr::kImageBits, 20);
  EXPECT_EQ(RemotePtr::kOffsetBits, 36);
  EXPECT_EQ(RemotePtr::kFlagBits, 8);
  EXPECT_EQ(RemotePtr::kImageBits + RemotePtr::kOffsetBits +
                RemotePtr::kFlagBits,
            64);
}

TEST(RemotePtr, ExtremesRoundTrip) {
  RemotePtr hi(static_cast<int>(RemotePtr::kMaxImage), RemotePtr::kMaxOffset,
               0xFE);
  EXPECT_EQ(hi.image(), static_cast<int>(RemotePtr::kMaxImage));
  EXPECT_EQ(hi.offset(), RemotePtr::kMaxOffset);
  EXPECT_EQ(hi.flags(), 0xFF);  // valid bit forced on
}

TEST(RemotePtr, BitsRoundTrip) {
  RemotePtr p(77, 123456, 0x10);
  RemotePtr q = RemotePtr::from_bits(p.bits());
  EXPECT_EQ(p, q);
  EXPECT_EQ(q.image(), 77);
  EXPECT_EQ(q.offset(), 123456u);
}

TEST(RemotePtrProperty, RandomRoundTrips) {
  sim::Rng rng(2025);
  for (int i = 0; i < 10'000; ++i) {
    const int image = static_cast<int>(rng.below(RemotePtr::kMaxImage + 1));
    const std::uint64_t off = rng.below(RemotePtr::kMaxOffset + 1);
    const auto flags = static_cast<std::uint8_t>(rng.below(256) & ~1u);
    RemotePtr p(image, off, flags);
    ASSERT_EQ(p.image(), image);
    ASSERT_EQ(p.offset(), off);
    ASSERT_EQ(p.flags() & ~RemotePtr::kValidFlag, flags);
    ASSERT_FALSE(p.is_null());
    ASSERT_EQ(RemotePtr::from_bits(p.bits()), p);
  }
}
