// Mid-collective image kills under background loss: a kill landing inside a
// team broadcast, team allreduce, or team sync must surface as
// kStatFailedImage on every live member — never a hang — and the survivor
// team formed afterwards must run clean collectives again. The resilient
// team paths stay pull-based (staged slots + pairwise counters) precisely
// so a dead image can vanish at any protocol step.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "caf_test_util.hpp"
#include "net/fault.hpp"

using caftest::Harness;
using caftest::Stack;

namespace {

// Two XC30 nodes so the 1% loss actually judges wire traffic (the injector
// skips intra-node messages by design).
int two_node_images() {
  return net::machine_profile(net::Machine::kXC30).cores_per_node + 2;
}

caf::Team full_team(int images) {
  caf::Team t;
  for (int i = 1; i <= images; ++i) t.members.push_back(i);
  return t;
}

}  // namespace

TEST(CollFaults, MidBroadcastKillReportsOnAllLiveMembers) {
  const int images = two_node_images();
  const int victim = 4;  // 1-based, node 0
  net::FaultPlan plan;
  plan.with_seed(0xB1).with_loss(0.01);
  plan.kill_pe(victim - 1, 1'500'000);
  Harness h(Stack::kShmemCray, images, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::Team all = full_team(images);
    if (me == victim) {
      // Dies mid-collective: keeps participating until the kill lands.
      for (;;) {
        h.engine().advance(100'000);
        int payload = 0;
        (void)rt.team_broadcast_bytes(all, &payload, sizeof payload, 1);
      }
    }
    bool saw_failure = false;
    for (int k = 0; k < 25; ++k) {
      h.engine().advance(100'000);
      int payload = me == 1 ? 1'000 + k : -1;
      const int st =
          rt.team_broadcast_bytes(all, &payload, sizeof payload, 1);
      if (st == caf::kStatFailedImage) {
        saw_failure = true;
      } else {
        ASSERT_EQ(st, caf::kStatOk);
        EXPECT_EQ(payload, 1'000 + k);  // clean rounds deliver root's data
      }
    }
    EXPECT_TRUE(saw_failure);  // the kill landed mid-run on every survivor
    // Survivor team: collectives come back clean.
    int st = -1;
    const caf::Team team = rt.form_team(&st);
    EXPECT_EQ(st, caf::kStatFailedImage);
    EXPECT_FALSE(team.contains(victim));
    int payload = me == 1 ? 77 : 0;
    EXPECT_EQ(rt.team_broadcast_bytes(team, &payload, sizeof payload, 1),
              caf::kStatOk);
    EXPECT_EQ(payload, 77);
  });
}

TEST(CollFaults, MidAllreduceKillReportsOnAllLiveMembers) {
  const int images = two_node_images();
  const int victim = images - 1;  // node 1: its gather pulls cross the wire
  net::FaultPlan plan;
  plan.with_seed(0xB2).with_loss(0.01);
  plan.kill_pe(victim - 1, 1'200'000);
  Harness h(Stack::kShmemCray, images, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::Team all = full_team(images);
    if (me == victim) {
      for (;;) {
        h.engine().advance(80'000);
        std::int64_t v = me;
        (void)rt.co_sum_team(all, &v, 1);
      }
    }
    const std::int64_t full_sum =
        static_cast<std::int64_t>(images) * (images + 1) / 2;
    bool saw_failure = false;
    for (int k = 0; k < 25; ++k) {
      h.engine().advance(80'000);
      std::int64_t v = me;
      const int st = rt.co_sum_team(all, &v, 1);
      if (st == caf::kStatFailedImage) {
        saw_failure = true;  // value may or may not include the victim
      } else {
        ASSERT_EQ(st, caf::kStatOk);
        EXPECT_EQ(v, full_sum);
      }
    }
    EXPECT_TRUE(saw_failure);
    int st = -1;
    const caf::Team team = rt.form_team(&st);
    EXPECT_EQ(st, caf::kStatFailedImage);
    std::int64_t v = me;
    EXPECT_EQ(rt.co_sum_team(team, &v, 1), caf::kStatOk);
    EXPECT_EQ(v, full_sum - victim);
  });
}

TEST(CollFaults, MidTeamSyncKillReportsOnAllLiveMembers) {
  const int images = two_node_images();
  const int victim = 2;
  net::FaultPlan plan;
  plan.with_seed(0xB3).with_loss(0.01);
  plan.kill_pe(victim - 1, 1'000'000);
  Harness h(Stack::kShmemCray, images, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::Team all = full_team(images);
    if (me == victim) {
      for (;;) {
        h.engine().advance(60'000);
        (void)rt.team_sync(all);
      }
    }
    bool saw_failure = false;
    for (int k = 0; k < 30; ++k) {
      h.engine().advance(60'000);
      const int st = rt.team_sync(all);
      if (st == caf::kStatFailedImage) saw_failure = true;
    }
    EXPECT_TRUE(saw_failure);
    EXPECT_EQ(rt.image_status(victim), caf::kStatFailedImage);
    int st = -1;
    const caf::Team team = rt.form_team(&st);
    EXPECT_EQ(st, caf::kStatFailedImage);
    EXPECT_EQ(team.num_images(), images - 1);
    EXPECT_EQ(rt.team_sync(team), caf::kStatOk);
  });
}
