// Shared harness for CAF runtime tests: builds a full stack (engine →
// fabric → conduit → runtime) for any of the three configurations the paper
// evaluates, so suites can run identical programs over:
//   * UHCAF over Cray SHMEM        (hardware strided, NIC atomics)
//   * UHCAF over MVAPICH2-X SHMEM  (software strided, NIC atomics)
//   * UHCAF over GASNet            (software strided, AM atomics)
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "caf/caf.hpp"
#include "net/fault.hpp"
#include "net/profiles.hpp"

namespace caftest {

enum class Stack { kShmemCray, kShmemMvapich, kGasnet, kArmci, kMpi3 };

inline const char* to_string(Stack s) {
  switch (s) {
    case Stack::kShmemCray: return "uhcaf-cray-shmem";
    case Stack::kShmemMvapich: return "uhcaf-mvapich2x-shmem";
    case Stack::kGasnet: return "uhcaf-gasnet";
    case Stack::kArmci: return "uhcaf-armci";
    case Stack::kMpi3: return "uhcaf-mpi3";
  }
  return "?";
}

class Harness {
 public:
  Harness(Stack stack, int images, caf::Options opts = {},
          std::size_t heap = 2 << 20, net::FaultPlan plan = {})
      : stack_(stack),
        fabric_(net::machine_profile(machine(stack)), images) {
    if (plan.active()) {
      // Detector/retransmit tunables flow Options -> plan -> injector; the
      // CAF_FD_* environment family then overrides either source.
      if (opts.fd) plan.fd = *opts.fd;
      plan.apply_env();
      injector_ = std::make_unique<net::FaultInjector>(
          plan, images, fabric_.profile().cores_per_node);
      fabric_.set_fault_injector(injector_.get());
      injector_->arm(engine_);
    }
    switch (stack) {
      case Stack::kShmemCray:
      case Stack::kShmemMvapich: {
        shmem_ = std::make_unique<shmem::World>(
            engine_, fabric_,
            net::sw_profile(stack == Stack::kShmemCray
                                ? net::Library::kShmemCray
                                : net::Library::kShmemMvapich,
                            machine(stack)),
            heap);
        conduit_ = std::make_unique<caf::ShmemConduit>(*shmem_);
        break;
      }
      case Stack::kGasnet: {
        gasnet_ = std::make_unique<gasnet::World>(
            engine_, fabric_,
            net::sw_profile(net::Library::kGasnet, machine(stack)), heap);
        conduit_ = std::make_unique<caf::GasnetConduit>(*gasnet_);
        break;
      }
      case Stack::kArmci: {
        armci_ = std::make_unique<armci::World>(
            engine_, fabric_,
            net::sw_profile(net::Library::kArmci, machine(stack)), heap);
        conduit_ = std::make_unique<caf::ArmciConduit>(*armci_);
        break;
      }
      case Stack::kMpi3: {
        mpi3_ = std::make_unique<mpi3::Window>(
            engine_, fabric_,
            net::sw_profile(net::Library::kMpi3, machine(stack)), heap);
        conduit_ = std::make_unique<caf::Mpi3Conduit>(*mpi3_);
        break;
      }
    }
    rt_ = std::make_unique<caf::Runtime>(*conduit_, opts);
  }

  static net::Machine machine(Stack s) {
    return s == Stack::kShmemMvapich || s == Stack::kArmci ||
                   s == Stack::kMpi3
               ? net::Machine::kStampede
               : net::Machine::kXC30;
  }

  caf::Runtime& rt() { return *rt_; }
  sim::Engine& engine() { return engine_; }
  net::Fabric& fabric() { return fabric_; }
  net::FaultInjector* injector() { return injector_.get(); }

  /// Launches `image_main` on every image (each calls rt().init() itself if
  /// `auto_init` is false; by default init is done for them).
  void run(const std::function<void()>& image_main, bool auto_init = true) {
    auto body = [this, image_main, auto_init] {
      if (auto_init) rt_->init();
      image_main();
    };
    if (shmem_) {
      shmem_->launch(body);
    } else if (gasnet_) {
      gasnet_->launch(body);
    } else if (armci_) {
      armci_->launch(body);
    } else {
      mpi3_->launch(body);
    }
    engine_.run();
  }

 private:
  Stack stack_;
  sim::Engine engine_{64 * 1024};
  net::Fabric fabric_;
  std::unique_ptr<net::FaultInjector> injector_;
  std::unique_ptr<shmem::World> shmem_;
  std::unique_ptr<gasnet::World> gasnet_;
  std::unique_ptr<armci::World> armci_;
  std::unique_ptr<mpi3::Window> mpi3_;
  std::unique_ptr<caf::Conduit> conduit_;
  std::unique_ptr<caf::Runtime> rt_;
};

inline constexpr Stack kAllStacks[] = {Stack::kShmemCray, Stack::kShmemMvapich,
                                       Stack::kGasnet, Stack::kArmci,
                                       Stack::kMpi3};

}  // namespace caftest
