// Determinism regression for the engine core: a 256-image run under a
// combined grey-failure plan (mid-run image kill + healable partition +
// straggler) must produce a byte-identical observable trace every time.
// The test checks two things:
//   * two in-process same-seed runs hash identically (no hidden host state
//     leaks into the simulation), and
//   * the hash matches a checked-in golden constant, pinning the engine's
//     global (time, seq) event pop order across refactors of the queue,
//     fiber, and delivery internals. If a change to src/sim or src/fabric
//     moves this hash, it changed simulated behavior — every BENCH_*.json
//     baseline is stale and the change needs a determinism review, not a
//     baseline bump.
// The hash covers the Chrome-trace JSON of the obs session (span-exact
// virtual timeline of every PE and wire message) and the engine's declared
// failure list (pe, declaration time).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "caf_test_util.hpp"
#include "net/fault.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

using caftest::Harness;
using caftest::Stack;

namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

caf::Team full_team(int images) {
  caf::Team t;
  for (int i = 1; i <= images; ++i) t.members.push_back(i);
  return t;
}

std::uint64_t faulty_run_hash() {
  const int images = 256;
  const int victim = 38;  // 1-based image; pe 37, node 2 on XC30
  net::FaultPlan plan;
  plan.with_seed(0xD5);
  plan.kill_pe(victim - 1, 1'200'000);
  plan.partition_nodes({1}, 300'000, 700'000);  // heals before the grace
  plan.straggle_pe(93, 1.7);
  obs::enable({});
  Harness h(Stack::kShmemCray, images, {}, 4 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::Team all = full_team(images);
    if (me == victim) {
      // Participates until the kill lands mid-collective.
      for (;;) {
        h.engine().advance(100'000);
        std::int64_t v = me;
        (void)rt.co_sum_team(all, &v, 1);
      }
    }
    for (int k = 0; k < 25; ++k) {
      h.engine().advance(100'000);
      std::int64_t v = me;
      const int st = rt.co_sum_team(all, &v, 1);
      ASSERT_TRUE(st == caf::kStatOk || st == caf::kStatFailedImage);
    }
  });
  std::uint64_t hash = kFnvOffset;
  const std::string trace = obs::chrome_trace_json();
  hash = fnv1a(hash, trace.data(), trace.size());
  for (const sim::PeFailure& f : h.engine().declared_failures()) {
    hash = fnv1a(hash, &f.pe, sizeof f.pe);
    hash = fnv1a(hash, &f.at, sizeof f.at);
  }
  obs::disable();
  return hash;
}

// Golden hash of the run above. Regenerate (and review!) with:
//   build/tests/test_faults --gtest_filter=Determinism.* (failure message
//   prints the new value).
constexpr std::uint64_t kGoldenHash = 0xe76e071d3f1a1575ull;

}  // namespace

TEST(Determinism, FaultyRunTraceIsByteIdentical) {
  const std::uint64_t a = faulty_run_hash();
  const std::uint64_t b = faulty_run_hash();
  EXPECT_EQ(a, b) << "same-seed rerun diverged within one process";
  EXPECT_EQ(a, kGoldenHash)
      << "trace hash changed: simulated behavior moved. New hash: 0x"
      << std::hex << a;
}
