// Tests for the nonblocking RMA pipeline (this PR's tentpole): cross-plan
// bit-identical strided memory (naive / 2dim / adaptive / aggregated, clean
// and under 1% loss), deferred-quiet semantics (read-your-writes, quiet
// elision, staging telemetry), run coalescing, and the MCS lock handoff
// latency regression guard for the nbi+single-flush collapse.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "caf_test_util.hpp"
#include "obs/obs.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

namespace {

/// One strided-put configuration under test: which plan and which
/// completion pipeline carries it.
struct PlanConfig {
  const char* name;
  StridedAlgo algo;
  CompletionMode completion;
  bool write_combining;
};

constexpr PlanConfig kPlanConfigs[] = {
    {"eager-naive", StridedAlgo::kNaive, CompletionMode::kEager, false},
    {"eager-2dim", StridedAlgo::kTwoDim, CompletionMode::kEager, false},
    {"eager-adaptive", StridedAlgo::kAdaptive, CompletionMode::kEager, false},
    {"eager-aggregate", StridedAlgo::kAggregate, CompletionMode::kEager, true},
    {"deferred-naive", StridedAlgo::kNaive, CompletionMode::kDeferred, false},
    {"deferred-adaptive", StridedAlgo::kAdaptive, CompletionMode::kDeferred,
     true},
    {"deferred-aggregate", StridedAlgo::kAggregate, CompletionMode::kDeferred,
     true},
};

struct StridedRun {
  std::vector<int> remote;
  std::vector<int> readback;
  StridedStats stats;
};

/// Puts `sec` of a coarray from image 1 into a cross-node image, reads it
/// back with get_section on the writer, and snapshots the remote memory.
StridedRun run_plan(Stack stack, const PlanConfig& cfg, Shape shape,
                    Section sec, double loss = 0.0) {
  Options opts;
  opts.strided = cfg.algo;
  opts.rma.completion = cfg.completion;
  opts.rma.write_combining = cfg.write_combining;
  net::FaultPlan plan;
  if (loss > 0.0) plan.with_seed(0xA66).with_loss(loss);
  constexpr int kImages = 18;
  constexpr int kTarget = 17;  // crosses the node boundary on every machine
  Harness h(stack, kImages, opts, 8 << 20, plan);
  auto out = std::make_shared<StridedRun>();
  h.run([&] {
    auto x = make_coarray<int>(h.rt(), shape);
    for (std::int64_t i = 0; i < x.size(); ++i) x.data()[i] = -1;
    h.rt().sync_all();
    const SectionDesc d = describe(shape, sec);
    if (h.rt().this_image() == 1) {
      std::vector<int> src(static_cast<std::size_t>(d.total));
      std::iota(src.begin(), src.end(), 100);
      out->stats = x.put_section(kTarget, sec, src.data());
      // Strict-mode read-your-writes straight through the pipeline: the
      // get must flush staged/in-flight puts before reading.
      out->readback.resize(static_cast<std::size_t>(d.total));
      x.get_section(out->readback.data(), kTarget, sec);
    }
    h.rt().sync_all();
    if (h.rt().this_image() == kTarget) {
      out->remote.assign(x.data(), x.data() + x.size());
    }
    h.rt().sync_all();
  });
  return std::move(*out);
}

std::vector<int> expected_remote(Shape shape, Section sec) {
  std::vector<int> ref(static_cast<std::size_t>(shape.size()), -1);
  const auto elems = linear_elements(describe(shape, sec));
  for (std::size_t i = 0; i < elems.size(); ++i) {
    ref[static_cast<std::size_t>(elems[i])] = 100 + static_cast<int>(i);
  }
  return ref;
}

}  // namespace

class RmaPipelineAllStacks : public ::testing::TestWithParam<Stack> {};
INSTANTIATE_TEST_SUITE_P(Stacks, RmaPipelineAllStacks,
                         ::testing::ValuesIn(caftest::kAllStacks),
                         [](const auto& info) {
                           std::string s = caftest::to_string(info.param);
                           for (auto& c : s) if (c == '-') c = '_';
                           return s;
                         });

// Satellite: every plan × pipeline combination writes bit-identical remote
// memory on every conduit, and the writer's strict-mode readback matches.
TEST_P(RmaPipelineAllStacks, AllPlansBitIdenticalRemoteMemory) {
  const Shape shape{20, 16, 6};
  const Section sec{{1, 19, 2}, {2, 16, 3}, {1, 6, 2}};
  const auto ref = expected_remote(shape, sec);
  const SectionDesc d = describe(shape, sec);
  std::vector<int> packed(static_cast<std::size_t>(d.total));
  std::iota(packed.begin(), packed.end(), 100);
  for (const auto& cfg : kPlanConfigs) {
    const auto run = run_plan(GetParam(), cfg, shape, sec);
    EXPECT_EQ(run.remote, ref) << cfg.name;
    EXPECT_EQ(run.readback, packed) << cfg.name;
  }
}

// Same property with 1% message loss: the reliable-delivery layer must make
// the loss invisible to every plan, including the scatter messages the
// write-combining stage emits.
TEST_P(RmaPipelineAllStacks, AllPlansBitIdenticalUnderLoss) {
  const Shape shape{16, 10, 4};
  const Section sec{{1, 15, 2}, {1, 10, 3}, {1, 4, 1}};
  const auto ref = expected_remote(shape, sec);
  for (const auto& cfg : kPlanConfigs) {
    const auto run = run_plan(GetParam(), cfg, shape, sec, /*loss=*/0.01);
    EXPECT_EQ(run.remote, ref) << cfg.name << " under 1% loss";
  }
}

// A matrix-oriented section whose innermost runs are adjacent in remote
// memory must collapse to a single message when run coalescing is on, and
// stay one-message-per-run when it is off.
TEST(RunCoalescing, MergesAdjacentRunsIntoOneMessage) {
  const Shape shape{32, 8};
  const Section sec{{1, 32, 1}, {1, 8, 1}};  // the full array: 8 adjacent runs
  for (const bool coalesce : {true, false}) {
    Options opts;
    opts.strided = StridedAlgo::kNaive;
    opts.rma.run_coalescing = coalesce;
    Harness h(Stack::kShmemCray, 4, opts, 8 << 20);
    StridedStats stats;
    h.run([&] {
      auto x = make_coarray<int>(h.rt(), shape);
      h.rt().sync_all();
      if (h.rt().this_image() == 1) {
        std::vector<int> src(32 * 8);
        std::iota(src.begin(), src.end(), 0);
        stats = x.put_section(2, sec, src.data());
        EXPECT_EQ(h.rt().stats().coalesced_runs, coalesce ? 7u : 0u);
      }
      h.rt().sync_all();
    });
    if (coalesce) {
      EXPECT_EQ(stats.messages, 1u);
      EXPECT_EQ(stats.coalesced, 7u);
    } else {
      EXPECT_EQ(stats.messages, 8u);
      EXPECT_EQ(stats.coalesced, 0u);
    }
  }
}

// Deferred pipeline observability: small puts are absorbed by the staging
// chunk (few scatter flushes), and quiets with a clean tracker are elided.
TEST(DeferredPipeline, StagingAndQuietElisionTelemetry) {
  Options opts;
  opts.rma.completion = CompletionMode::kDeferred;
  opts.rma.write_combining = true;
  Harness h(Stack::kShmemCray, 4, opts, 2 << 20);
  h.run([&] {
    auto& rt = h.rt();
    const std::uint64_t off = rt.allocate_coarray_bytes(4096);
    rt.sync_all();
    if (rt.this_image() == 1) {
      for (int i = 0; i < 64; ++i) {
        const std::int64_t v = i;
        rt.put_bytes(2, off + static_cast<std::uint64_t>(i) * 8, &v, 8);
      }
      EXPECT_TRUE(rt.conduit().pending(1) || rt.stats().agg_staged > 0);
    }
    rt.sync_all();
    if (rt.this_image() == 1) {
      // 64 × 8B coalesce into one 512B staged range → one scatter flush.
      EXPECT_EQ(rt.stats().agg_staged, 64u);
      EXPECT_EQ(rt.stats().agg_flushes, 1u);
      EXPECT_FALSE(rt.conduit().pending_any());
    }
    if (rt.this_image() == 2) {
      const auto* base =
          reinterpret_cast<const std::int64_t*>(rt.local_addr(off));
      for (int i = 0; i < 64; ++i) EXPECT_EQ(base[i], i);
    }
    // Quiet traffic drained: further completion points elide the quiet.
    const int me = rt.this_image() - 1;
    const std::uint64_t elided_before =
        obs::registry().value(me, "rma.quiet_elided");
    rt.sync_all();
    rt.sync_all();
    EXPECT_GT(obs::registry().value(me, "rma.quiet_elided"), elided_before);
    rt.sync_all();
  });
}

// Satellite: get_strided must not pay a quiet when the tracker shows no
// pending puts toward the source image.
TEST(DeferredPipeline, GetSkipsQuietWhenTrackerClean) {
  Harness h(Stack::kShmemCray, 4, {}, 2 << 20);
  h.run([&] {
    auto& rt = h.rt();
    const std::uint64_t off = rt.allocate_coarray_bytes(256);
    rt.sync_all();
    if (rt.this_image() == 1) {
      auto real_quiets = [] {
        return obs::registry().value(0, "rma.quiet_calls") -
               obs::registry().value(0, "rma.quiet_elided");
      };
      const auto quiets_before = real_quiets();
      std::int64_t v = 0;
      rt.get_bytes(&v, 2, off, sizeof v);
      EXPECT_EQ(real_quiets(), quiets_before);  // no pending puts → no quiet
    }
    rt.sync_all();
  });
}

// Regression guard for the MCS enqueue/handoff collapse (nbi issue + single
// flush). Ceilings are the measured pre-collapse latencies on this exact
// deterministic scenario (blocking puts + back-to-back quiets):
//   plain     handoff 2614 ns   10-cycle 8240 ns
//   resilient handoff 4417 ns   10-cycle 18280 ns
// The DES is deterministic, so any regression past the old implementation
// trips the bound exactly.
TEST(LockHandoffLatency, DoesNotRegressPastBlockingImplementation) {
  struct Probe {
    sim::Time handoff = 0;
    sim::Time cycle10 = 0;
  };
  auto run = [](bool resilient) {
    net::FaultPlan plan;
    if (resilient) {
      plan.with_seed(1).kill_pe(5, 100'000'000'000);  // never fires
    }
    Harness h(Stack::kShmemCray, 18, {}, 2 << 20, plan);
    Probe p;
    sim::Time t_unlock = 0, t_acq = 0;
    h.run([&] {
      auto& rt = h.rt();
      CoLock lck = rt.make_lock();
      const int me = rt.this_image();
      if (me == 17) rt.lock(lck, 1);  // cross-node holder
      rt.sync_all();
      if (me == 1) {
        rt.lock(lck, 1);  // queues behind image 17
        t_acq = h.engine().now();
        rt.unlock(lck, 1);
        const sim::Time t0 = h.engine().now();
        for (int i = 0; i < 10; ++i) {
          rt.lock(lck, 1);
          rt.unlock(lck, 1);
        }
        p.cycle10 = h.engine().now() - t0;
      } else if (me == 17) {
        h.engine().advance(200'000);  // image 1 is queued by now
        t_unlock = h.engine().now();
        rt.unlock(lck, 1);
      }
      rt.sync_all();
    });
    p.handoff = t_acq - t_unlock;
    return p;
  };
  const Probe plain = run(false);
  EXPECT_LE(plain.handoff, 2614);
  EXPECT_LE(plain.cycle10, 8240);
  const Probe res = run(true);
  EXPECT_LE(res.handoff, 4417);
  EXPECT_LE(res.cycle10, 18280);
}
