// Grey-failure integration tests over the full CAF stack: the runtime's
// membership view now comes from the in-band heartbeat detector, so every
// failure here is *observed* (with detection latency), never oracle-fed.
// Covers: collectives completing across a healable partition with no
// declarations, mid-kill collectives converging on the detector's verdict,
// the retransmit-exhaustion path under a permanent partition (stat=, not a
// hang), watchdog reports carrying the suspicion-state snapshot, and the
// Options::fd plumbing into the injector.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "caf_test_util.hpp"
#include "net/detector.hpp"
#include "net/fault.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

using caftest::Harness;
using caftest::Stack;

namespace {

int two_node_images() {
  return net::machine_profile(net::Machine::kXC30).cores_per_node + 2;
}

caf::Team full_team(int images) {
  caf::Team t;
  for (int i = 1; i <= images; ++i) t.members.push_back(i);
  return t;
}

std::uint64_t sum_counter(int images, const char* name) {
  std::uint64_t total = 0;
  for (int pe = 0; pe < images; ++pe) {
    total += obs::registry().counter(pe, name);
  }
  return total;
}

}  // namespace

// A partition that heals inside the suspicion grace window: collectives
// crossing the cut stall on retransmits, the far side turns suspect, the
// heal beacon recovers it, and nobody is ever declared failed. Every round
// must complete kStatOk with the root's payload intact.
TEST(GreyCollectives, CompleteAcrossHealablePartition) {
  const int images = two_node_images();
  net::FaultPlan plan;
  plan.with_seed(0xC1);
  plan.partition_nodes({1}, 200'000, 500'000);
  Harness h(Stack::kShmemCray, images, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::Team all = full_team(images);
    for (int k = 0; k < 20; ++k) {
      h.engine().advance(40'000);
      int payload = me == 1 ? 500 + k : -1;
      ASSERT_EQ(rt.team_broadcast_bytes(all, &payload, sizeof payload, 1),
                caf::kStatOk);
      EXPECT_EQ(payload, 500 + k);
      std::int64_t v = me;
      ASSERT_EQ(rt.co_sum_team(all, &v, 1), caf::kStatOk);
      EXPECT_EQ(v, static_cast<std::int64_t>(images) * (images + 1) / 2);
    }
    EXPECT_EQ(rt.failed_images().size(), 0u);
  });
  // The membership view never changed across the cut. (Suspicion dynamics
  // are unit-tested on a quiet rig; here piggybacked liveness evidence from
  // fibers that run ahead of the sweep events keeps chatty live PEs out of
  // suspect state entirely — which is exactly the conservative behaviour
  // the false-positive invariant wants.)
  EXPECT_EQ(h.engine().declared_count(), 0);
  EXPECT_EQ(obs::registry().counter(0, "fd.declared"), 0u);
  EXPECT_EQ(obs::registry().counter(0, "fd.false_positives"), 0u);
  EXPECT_GT(h.injector()->counters().partition_drops, 0u);  // cut was real
  // And the collectives actually exercised the tree distribution path.
  EXPECT_GT(sum_counter(images, "coll.tree_recv"), 0u);
  EXPECT_GT(sum_counter(images, "coll.tree_push"), 0u);
}

// A kill mid-collective: survivors keep completing rounds, see
// kStatFailedImage once the detector declares (strictly after the kill —
// detection has latency now), and the survivor team resumes clean tree
// collectives built from the new membership epoch.
TEST(GreyCollectives, KillConvergesOnDetectorVerdictAndTreeReforms) {
  const int images = two_node_images();
  const int victim = images - 1;  // node 1
  net::FaultPlan plan;
  plan.with_seed(0xC2);
  plan.kill_pe(victim - 1, 1'000'000);
  Harness h(Stack::kShmemCray, images, {}, 2 << 20, plan);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const caf::Team all = full_team(images);
    if (me == victim) {
      for (;;) {
        h.engine().advance(80'000);
        int payload = 0;
        (void)rt.team_broadcast_bytes(all, &payload, sizeof payload, 1);
      }
    }
    bool saw_failure = false;
    for (int k = 0; k < 30; ++k) {
      h.engine().advance(80'000);
      int payload = me == 1 ? 9'000 + k : -1;
      const int st =
          rt.team_broadcast_bytes(all, &payload, sizeof payload, 1);
      if (st == caf::kStatFailedImage) {
        saw_failure = true;
      } else {
        ASSERT_EQ(st, caf::kStatOk);
        EXPECT_EQ(payload, 9'000 + k);
      }
    }
    EXPECT_TRUE(saw_failure);
    EXPECT_EQ(rt.image_status(victim), caf::kStatFailedImage);
    int st = -1;
    const caf::Team team = rt.form_team(&st);
    EXPECT_EQ(st, caf::kStatFailedImage);
    EXPECT_FALSE(team.contains(victim));
    for (int k = 0; k < 3; ++k) {
      int payload = me == 1 ? 70 + k : 0;
      EXPECT_EQ(rt.team_broadcast_bytes(team, &payload, sizeof payload, 1),
                caf::kStatOk);
      EXPECT_EQ(payload, 70 + k);
    }
  });
  // The declaration came from the detector, after the kill.
  ASSERT_EQ(h.engine().declared_count(), 1);
  EXPECT_EQ(h.engine().declared_failures()[0].pe, victim - 1);
  EXPECT_GT(h.engine().declared_failures()[0].at, sim::Time{1'000'000});
  EXPECT_EQ(obs::registry().counter(0, "fd.false_positives"), 0u);
  EXPECT_GE(obs::registry().counter(0, "fd.detect_count"), 1u);
}

// Satellite (b) regression: an op whose retransmits run out under a
// permanent partition must surface kStatFailedImage — via transport
// exhaustion or the detector's suspicion path, whichever fires first —
// instead of retrying forever.
TEST(GreyFailures, PermanentPartitionSurfacesStatFailedImage) {
  const int images = two_node_images();
  net::FaultPlan plan;
  plan.with_seed(0xC3);
  plan.partition_nodes({1}, 300'000);  // never heals
  Harness h(Stack::kShmemCray, images, {}, 2 << 20, plan);
  const int far_first = images - 1;  // 1-based: first image on node 1
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    const std::uint64_t off = rt.allocate_coarray_bytes(16);
    if (me >= far_first) {
      // Far side: cut off from the observer, does only local work, exits.
      for (int k = 0; k < 10; ++k) h.engine().advance(100'000);
      return;
    }
    int st = caf::kStatOk;
    for (int k = 0; k < 40 && st == caf::kStatOk; ++k) {
      h.engine().advance(100'000);
      std::int64_t v = k;
      st = rt.put_bytes_stat(far_first, off, &v, sizeof v);
    }
    EXPECT_EQ(st, caf::kStatFailedImage);  // bounded, not forever
    // The per-op stat= is authoritative the moment the op gives up; the
    // membership view updates when the declaration (suspicion sweep or the
    // scheduled exhaustion event) lands in sim time — drain briefly.
    for (int k = 0;
         k < 20 && rt.image_status(far_first) != caf::kStatFailedImage; ++k) {
      h.engine().advance(100'000);
    }
    EXPECT_EQ(rt.image_status(far_first), caf::kStatFailedImage);
    // The sibling far image may be declared a sweep or two later.
    for (int k = 0; k < 20 && rt.failed_images().size() < 2; ++k) {
      h.engine().advance(100'000);
    }
    EXPECT_EQ(rt.failed_images().size(), 2u);  // both far images declared
    // Traffic between near-side images keeps flowing.
    if (me == 1) {
      std::int64_t ok = 7;
      EXPECT_EQ(rt.put_bytes_stat(2, off, &ok, sizeof ok), caf::kStatOk);
    }
  });
  EXPECT_EQ(h.engine().declared_count(), 2);
  for (const auto& f : h.engine().declared_failures()) {
    EXPECT_GT(f.at, sim::Time{300'000});
  }
  // Unreachable, not wrongly declared.
  EXPECT_EQ(obs::registry().counter(0, "fd.false_positives"), 0u);
}

// Satellite (c): a watchdog report fired after an image failure carries the
// detector's suspicion-state snapshot and the membership epoch.
TEST(GreyFailures, WatchdogReportIncludesDetectorSnapshot) {
  net::FaultPlan plan;
  plan.with_seed(0xC4);
  plan.kill_pe(1, 500'000);  // image 2 dies
  Harness h(Stack::kShmemCray, 2, {}, 2 << 20, plan);
  try {
    h.run([&] {
      auto& rt = h.rt();
      if (rt.this_image() == 2) {
        for (;;) h.engine().advance(50'000);
      }
      const int partner[] = {2};
      rt.sync_images(partner);  // plain (non-stat) sync: hangs on the corpse
    });
    FAIL() << "expected sim::FailedImageError";
  } catch (const sim::FailedImageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stalled after image failure"), std::string::npos)
        << what;
    EXPECT_NE(what.find("failure detector:"), std::string::npos) << what;
    EXPECT_NE(what.find("epoch="), std::string::npos) << what;
    EXPECT_NE(what.find("[pe 1] FAILED"), std::string::npos) << what;
  }
}

// Satellite (a): detector tunables flow caf::Options -> FaultPlan ->
// FaultInjector -> FailureDetector.
TEST(GreyFailures, OptionsFdPlumbsIntoDetector) {
  net::FaultPlan plan;
  plan.with_seed(0xC5);
  plan.kill_pe(1, 400'000);
  caf::Options opts;
  opts.fd = net::DetectorTunables{30'000, 3, 120'000};
  Harness h(Stack::kShmemCray, 4, opts, 2 << 20, plan);
  ASSERT_NE(h.injector(), nullptr);
  ASSERT_NE(h.injector()->detector(), nullptr);
  const net::FailureDetector& det = *h.injector()->detector();
  EXPECT_EQ(det.heartbeat_period(), 30'000);
  EXPECT_EQ(det.suspicion_grace(), 120'000);
  EXPECT_EQ(det.suspect_after(), sim::Time{3} * 30'000);
  h.run([&] {
    auto& rt = h.rt();
    if (rt.this_image() == 2) {
      for (;;) {
        h.engine().advance(50'000);
        (void)rt.sync_all_stat();
      }
    }
    int st = caf::kStatOk;
    for (int k = 0; k < 25; ++k) {
      h.engine().advance(50'000);
      st = rt.sync_all_stat();
    }
    EXPECT_EQ(st, caf::kStatFailedImage);
  });
  // Tighter tunables -> faster declaration: kill at 400 us, suspect_after
  // 90 us + grace 120 us, sweeps every 30 us.
  ASSERT_EQ(h.engine().declared_count(), 1);
  EXPECT_LT(h.engine().declared_failures()[0].at, sim::Time{800'000});
}
