// Runtime tests across all three conduit stacks: image inquiry, coarray
// allocation, RMA semantics, sync, non-symmetric slab, events, atomics, and
// collectives.
#include <gtest/gtest.h>

#include <numeric>

#include "caf_test_util.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

class RuntimeAllStacks : public ::testing::TestWithParam<Stack> {};

INSTANTIATE_TEST_SUITE_P(
    Stacks, RuntimeAllStacks, ::testing::ValuesIn(caftest::kAllStacks),
    [](const auto& info) {
      std::string s = caftest::to_string(info.param);
      for (auto& c : s) if (c == '-') c = '_';
      return s;
    });

TEST_P(RuntimeAllStacks, ImageInquiry) {
  Harness h(GetParam(), 12);
  std::vector<int> seen(13, 0);
  h.run([&] {
    EXPECT_EQ(h.rt().num_images(), 12);
    seen[h.rt().this_image()] = 1;
  });
  for (int i = 1; i <= 12; ++i) EXPECT_EQ(seen[i], 1) << "image " << i;
}

TEST_P(RuntimeAllStacks, Figure1Program) {
  // The left-hand CAF program of paper Figure 1.
  Harness h(GetParam(), 8);
  h.run([&] {
    auto coarray_x = make_coarray<int>(h.rt(), {4});
    auto coarray_y = make_coarray<int>(h.rt(), {4});
    const int my_image = h.rt().this_image();
    for (int i = 1; i <= 4; ++i) {
      coarray_x(i) = my_image;
      coarray_y(i) = 0;
    }
    h.rt().sync_all();
    coarray_y(2) = coarray_x.get_scalar(4, {3});  // coarray_x(3)[4]
    coarray_x.put_scalar(4, {1}, coarray_y(2));   // coarray_x(1)[4] = ...
    h.rt().sync_all();
    EXPECT_EQ(coarray_y(2), 4);
    if (my_image == 4) {
      EXPECT_EQ(coarray_x(1), 4);
    }
    h.rt().sync_all();
    free_coarray(h.rt(), coarray_y);
    free_coarray(h.rt(), coarray_x);
  });
}

TEST_P(RuntimeAllStacks, CoarrayOffsetsAreSymmetric) {
  Harness h(GetParam(), 6);
  std::vector<std::uint64_t> offs(6);
  h.run([&] {
    auto a = make_coarray<double>(h.rt(), {100});
    auto b = make_coarray<int>(h.rt(), {3, 3});
    offs[h.rt().this_image() - 1] = a.offset() ^ (b.offset() << 24);
  });
  for (int i = 1; i < 6; ++i) EXPECT_EQ(offs[i], offs[0]);
}

TEST_P(RuntimeAllStacks, StrictModelOrdersPutGet) {
  // Figure 4's sequence: put then read back must observe the put.
  Harness h(GetParam(), 4);
  h.run([&] {
    auto a = make_coarray<int>(h.rt(), {16});
    for (int i = 1; i <= 16; ++i) a(i) = 0;
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      std::vector<int> b(16, 9);
      a.put_contiguous(2, b.data(), 16);
      std::vector<int> c(16, -1);
      a.get_contiguous(c.data(), 2, 16);
      for (int v : c) EXPECT_EQ(v, 9);
    }
    h.rt().sync_all();
  });
}

TEST_P(RuntimeAllStacks, PutCapturesSourceImmediately) {
  // Figure 4 upper half: modifying the source after the put statement must
  // not change what lands remotely (local completion).
  Harness h(GetParam(), 3);
  h.run([&] {
    auto y = make_coarray<int>(h.rt(), {4});
    for (int i = 1; i <= 4; ++i) y(i) = 0;
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      std::vector<int> x(4, 3);
      y.put_contiguous(2, x.data(), 4);
      std::fill(x.begin(), x.end(), 0);  // coarray_x(:) = 0
    }
    h.rt().sync_all();
    if (h.rt().this_image() == 2) {
      for (int i = 1; i <= 4; ++i) EXPECT_EQ(y(i), 3);
    }
    h.rt().sync_all();
  });
}

TEST_P(RuntimeAllStacks, SyncImagesPairwise) {
  Harness h(GetParam(), 6);
  h.run([&] {
    const int me = h.rt().this_image();
    auto flag = make_coarray<std::int64_t>(h.rt(), {1});
    flag(1) = 0;
    h.rt().sync_all();
    // Odd/even partner handshake: image 2k+1 writes to 2k+2, then both sync.
    if (me % 2 == 1) {
      const int partner = me + 1;
      flag.put_scalar(partner, {1}, me);
      const int list[] = {partner};
      h.rt().sync_images(list);
    } else {
      const int partner = me - 1;
      const int list[] = {partner};
      h.rt().sync_images(list);
      EXPECT_EQ(flag(1), partner);
    }
    h.rt().sync_all();
  });
}

TEST_P(RuntimeAllStacks, NonSymmetricSlabAllocRemoteAccess) {
  // §IV-A: non-symmetric data carved from the managed buffer is remotely
  // accessible through packed pointers.
  Harness h(GetParam(), 4);
  h.run([&] {
    const int me = h.rt().this_image();
    auto box = make_coarray<std::int64_t>(h.rt(), {1});  // publish ptr bits
    RemotePtr mine = h.rt().nonsym_alloc(64);
    EXPECT_EQ(mine.image(), me - 1);
    auto* p = reinterpret_cast<std::int64_t*>(h.rt().local_addr(mine.offset()));
    *p = 1000 + me;
    box(1) = static_cast<std::int64_t>(mine.bits());
    h.rt().sync_all();
    // Read right neighbor's non-symmetric block through its published ptr.
    const int right = me % h.rt().num_images() + 1;
    const auto bits = static_cast<std::uint64_t>(box.get_scalar(right, {1}));
    const RemotePtr theirs = RemotePtr::from_bits(bits);
    EXPECT_EQ(theirs.image(), right - 1);
    std::int64_t v = 0;
    h.rt().get_bytes(&v, theirs.image() + 1, theirs.offset(), sizeof v);
    EXPECT_EQ(v, 1000 + right);
    h.rt().sync_all();
    h.rt().nonsym_free(mine);
  });
}

TEST_P(RuntimeAllStacks, AtomicsAcrossImages) {
  Harness h(GetParam(), 10);
  h.run([&] {
    AtomicCell cell(h.rt());
    (void)cell.fetch_add(1, 5);
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      EXPECT_EQ(cell.ref(1), 50);
    }
    h.rt().sync_all();
    // atomic_define / atomic_ref on a remote image.
    if (h.rt().this_image() == 2) cell.define(3, 12345);
    h.rt().sync_all();
    if (h.rt().this_image() == 3) {
      EXPECT_EQ(cell.ref(3), 12345);
    }
    h.rt().sync_all();
  });
}

TEST_P(RuntimeAllStacks, EventsPostWaitQuery) {
  Harness h(GetParam(), 4);
  h.run([&] {
    CoEvent ev = h.rt().make_event();
    const int me = h.rt().this_image();
    if (me != 1) {
      h.engine().advance(1'000 * me);  // staggered posts
      h.rt().event_post(ev, 1);
    } else {
      h.rt().event_wait(ev, 3);  // all three posts
      EXPECT_EQ(h.rt().event_query(ev), 0);
    }
    h.rt().sync_all();
  });
}

class RuntimeCollectives
    : public ::testing::TestWithParam<std::tuple<Stack, int>> {};

INSTANTIATE_TEST_SUITE_P(
    StacksAndSizes, RuntimeCollectives,
    ::testing::Combine(::testing::ValuesIn(caftest::kAllStacks),
                       ::testing::Values(1, 2, 5, 8, 16, 33)));

TEST_P(RuntimeCollectives, CoSumMatchesSerial) {
  auto [stack, n] = GetParam();
  Harness h(stack, n);
  h.run([&] {
    const int me = h.rt().this_image();
    double vals[3] = {me * 1.5, -me * 2.0, 1.0};
    h.rt().co_sum(vals, 3);
    double e0 = 0, e1 = 0;
    for (int i = 1; i <= h.rt().num_images(); ++i) {
      e0 += i * 1.5;
      e1 += -i * 2.0;
    }
    EXPECT_DOUBLE_EQ(vals[0], e0);
    EXPECT_DOUBLE_EQ(vals[1], e1);
    EXPECT_DOUBLE_EQ(vals[2], h.rt().num_images());
  });
}

TEST_P(RuntimeCollectives, CoMinMax) {
  auto [stack, n] = GetParam();
  Harness h(stack, n);
  h.run([&] {
    const int me = h.rt().this_image();
    int v = (me * 7) % 13;
    int vmax = v, vmin = v;
    h.rt().co_max(&vmax, 1);
    h.rt().co_min(&vmin, 1);
    int emax = 0, emin = 1 << 30;
    for (int i = 1; i <= h.rt().num_images(); ++i) {
      emax = std::max(emax, (i * 7) % 13);
      emin = std::min(emin, (i * 7) % 13);
    }
    EXPECT_EQ(vmax, emax);
    EXPECT_EQ(vmin, emin);
  });
}

TEST_P(RuntimeCollectives, CoBroadcast) {
  auto [stack, n] = GetParam();
  Harness h(stack, n);
  h.run([&] {
    const int src = std::min(2, h.rt().num_images());
    std::vector<int> data(100);
    if (h.rt().this_image() == src) {
      std::iota(data.begin(), data.end(), 5000);
    }
    h.rt().co_broadcast(data.data(), data.size(), src);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(data[i], 5000 + i);
  });
}

TEST(Runtime, CoBroadcastLargePayloadChunks) {
  // Exceeds the 8 KiB staging slot; exercises the chunking loop.
  Harness h(Stack::kShmemCray, 4);
  h.run([&] {
    std::vector<double> data(5000);  // 40 KB
    if (h.rt().this_image() == 1) {
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = i * 0.5;
    }
    h.rt().co_broadcast(data.data(), data.size(), 1);
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_DOUBLE_EQ(data[i], i * 0.5);
    }
  });
}

TEST(Runtime, CoBroadcastWithSkewedArrival) {
  // Regression: images reaching co_broadcast late (e.g. after contended
  // atomics serialized them) must not overwrite broadcast data that already
  // landed in their staging slot. Both the native and generic paths.
  for (bool native : {true, false}) {
    caf::Options opts;
    opts.use_native_collectives = native;
    Harness h(Stack::kShmemCray, 8, opts);
    h.run([&] {
      AtomicCell cell(h.rt());
      (void)cell.fetch_add(1, 5);  // serializes at image 1: images skew
      int b = h.rt().this_image();
      h.rt().co_broadcast(&b, 1, 1);
      EXPECT_EQ(b, 1) << "native=" << native << " image "
                      << h.rt().this_image();
      // And a second broadcast from a different, late source.
      double d[3] = {0, 0, 0};
      if (h.rt().this_image() == 7) {
        d[0] = 1.5;
        d[1] = -2.5;
        d[2] = 99.0;
      }
      h.rt().co_broadcast(d, 3, 7);
      EXPECT_DOUBLE_EQ(d[0], 1.5);
      EXPECT_DOUBLE_EQ(d[2], 99.0);
      h.rt().sync_all();
    });
  }
}

TEST(Runtime, NativeAndGenericCollectivesAgree) {
  for (bool native : {true, false}) {
    caf::Options opts;
    opts.use_native_collectives = native;
    Harness h(Stack::kShmemMvapich, 7, opts);
    h.run([&] {
      double v = h.rt().this_image() * 1.25;
      h.rt().co_sum(&v, 1);
      EXPECT_DOUBLE_EQ(v, 1.25 * (7 * 8 / 2));
      int b = h.rt().this_image() == 3 ? 99 : 0;
      h.rt().co_broadcast(&b, 1, 3);
      EXPECT_EQ(b, 99);
    });
  }
}

TEST(Runtime, RequiresInit) {
  Harness h(Stack::kShmemCray, 2);
  h.run(
      [&] {
        EXPECT_THROW(h.rt().sync_all(), std::logic_error);
        h.rt().init();
        h.rt().sync_all();
      },
      /*auto_init=*/false);
}

TEST(Runtime, RelaxedModelSkipsAutoQuiet) {
  // In relaxed mode a put's data need not be remotely visible when the call
  // returns; sync_memory() makes it so.
  caf::Options opts;
  opts.memory_model = caf::MemoryModel::kRelaxed;
  Harness h(Stack::kShmemCray, 2, opts);
  h.run([&] {
    auto x = make_coarray<int>(h.rt(), {1});
    x(1) = 0;
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      const sim::Time t0 = h.engine().now();
      x.put_scalar(2, {1}, 42);
      const sim::Time put_cost = h.engine().now() - t0;
      // No quiet: the call returns after local completion only, well under
      // the wire latency.
      EXPECT_LT(put_cost, h.fabric().profile().hw_latency);
      h.rt().sync_memory();
    }
    h.rt().sync_all();
    if (h.rt().this_image() == 2) {
      EXPECT_EQ(x(1), 42);
    }
    h.rt().sync_all();
  });
}

TEST(Runtime, StrictPutPaysQuiet) {
  caf::Options opts;  // strict by default
  // cores_per_node + 2 images, so the last image sits on the second node.
  const int cores = net::machine_profile(net::Machine::kXC30).cores_per_node;
  Harness h(Stack::kShmemCray, cores + 2, opts);
  h.run([&] {
    auto x = make_coarray<int>(h.rt(), {1});
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      const sim::Time t0 = h.engine().now();
      x.put_scalar(cores + 1, {1}, 42);
      EXPECT_GE(h.engine().now() - t0, h.fabric().profile().hw_latency);
    }
    h.rt().sync_all();
  });
}
