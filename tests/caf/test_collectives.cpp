// Conformance tests for the topology-aware collectives engine: every
// algorithm arm, on every conduit, must produce results bit-identical to a
// sequential ascending-rank fold — including a non-commutative (but
// associative) combiner, which exposes any arm that merges out of order.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "caf/collectives.hpp"
#include "caf/shmem_conduit.hpp"
#include "caf_test_util.hpp"

using caf::CollAlgo;
using caftest::Harness;
using caftest::Stack;

namespace {

caf::Options coll_opts(CollAlgo bcast, CollAlgo red) {
  caf::Options o;
  o.use_native_collectives = false;  // always exercise the engine
  o.coll.broadcast = bcast;
  o.coll.reduce = red;
  return o;
}

std::string stack_name(const ::testing::TestParamInfo<Stack>& info) {
  switch (info.param) {
    case Stack::kShmemCray: return "cray_shmem";
    case Stack::kShmemMvapich: return "mvapich_shmem";
    case Stack::kGasnet: return "gasnet";
    case Stack::kArmci: return "armci";
    case Stack::kMpi3: return "mpi3";
  }
  return "unknown";
}

// 2x2 integer matrices mod 1'000'003 under multiplication: associative but
// NON-commutative, so an arm that folds out of rank order computes a
// visibly different product.
constexpr std::int64_t kMod = 1'000'003;

struct Mat {
  std::int64_t m[4];
};

Mat mat_mul(const Mat& x, const Mat& y) {
  Mat r;
  r.m[0] = (x.m[0] * y.m[0] + x.m[1] * y.m[2]) % kMod;
  r.m[1] = (x.m[0] * y.m[1] + x.m[1] * y.m[3]) % kMod;
  r.m[2] = (x.m[2] * y.m[0] + x.m[3] * y.m[2]) % kMod;
  r.m[3] = (x.m[2] * y.m[1] + x.m[3] * y.m[3]) % kMod;
  return r;
}

Mat mat_of(int rank0, std::size_t i) {
  Mat v;
  for (int j = 0; j < 4; ++j) {
    v.m[j] = ((rank0 + 1) * 1'009 + static_cast<std::int64_t>(i) * 31 +
              j * 7 + 1) %
             kMod;
  }
  return v;
}

void mat_comb(void* a, const void* b) {
  Mat x, y;
  std::memcpy(&x, a, sizeof x);
  std::memcpy(&y, b, sizeof y);
  x = mat_mul(x, y);
  std::memcpy(a, &x, sizeof x);
}

std::int64_t bcast_val(int root0, std::size_t i) {
  return root0 * 1'000'003LL + static_cast<std::int64_t>(i) * 7 + 1;
}

class CollConformance : public ::testing::TestWithParam<Stack> {};
INSTANTIATE_TEST_SUITE_P(Conduits, CollConformance,
                         ::testing::ValuesIn(caftest::kAllStacks), stack_name);

}  // namespace

TEST_P(CollConformance, BroadcastArmsMatchReference) {
  // 24'000 bytes: the non-pipelined arms chunk (3 slots), kPipelined
  // actually streams. Two back-to-back broadcasts with different roots
  // stress the generation-parity slot banks.
  constexpr std::size_t kN = 3'000;
  for (const int images : {5, 17, 33}) {
    for (const CollAlgo arm :
         {CollAlgo::kFlat, CollAlgo::kBinomial, CollAlgo::kTwoLevel,
          CollAlgo::kPipelined}) {
      Harness h(GetParam(), images, coll_opts(arm, CollAlgo::kAuto));
      h.run([&] {
        auto& rt = h.rt();
        const int me0 = rt.this_image() - 1;
        const int rootA = 2 % images;
        const int rootB = images - 1;
        std::vector<std::int64_t> data(kN);
        for (std::size_t i = 0; i < kN; ++i) {
          data[i] = me0 == rootA ? bcast_val(rootA, i) : -1;
        }
        rt.co_broadcast(data.data(), kN, rootA + 1);
        for (std::size_t i = 0; i < kN; ++i) {
          ASSERT_EQ(data[i], bcast_val(rootA, i))
              << "arm=" << static_cast<int>(arm) << " images=" << images
              << " i=" << i;
        }
        // Immediately again from a different root, no intervening sync.
        if (me0 == rootB) {
          for (std::size_t i = 0; i < kN; ++i) data[i] = bcast_val(rootB, i);
        }
        rt.co_broadcast(data.data(), kN, rootB + 1);
        for (std::size_t i = 0; i < kN; ++i) {
          ASSERT_EQ(data[i], bcast_val(rootB, i))
              << "arm=" << static_cast<int>(arm) << " images=" << images
              << " i=" << i;
        }
        rt.sync_all();
      });
    }
  }
}

TEST_P(CollConformance, ReduceArmsMatchRankOrderFold) {
  // 400 * 32 B = 12'800 B: above one pipe chunk (kPipelined streams), and
  // several recursive-doubling/two-level chunks of rd_max_bytes.
  constexpr std::size_t kMats = 400;
  for (const int images : {5, 17, 33}) {
    // Sequential ascending-rank reference fold.
    std::vector<Mat> expect(kMats);
    for (std::size_t i = 0; i < kMats; ++i) {
      expect[i] = mat_of(0, i);
      for (int r = 1; r < images; ++r) {
        expect[i] = mat_mul(expect[i], mat_of(r, i));
      }
    }
    for (const CollAlgo arm :
         {CollAlgo::kFlat, CollAlgo::kBinomial, CollAlgo::kTwoLevel,
          CollAlgo::kRecursiveDoubling, CollAlgo::kPipelined}) {
      Harness h(GetParam(), images, coll_opts(CollAlgo::kAuto, arm));
      h.run([&] {
        auto& rt = h.rt();
        const int me0 = rt.this_image() - 1;
        std::vector<Mat> data(kMats);
        for (std::size_t i = 0; i < kMats; ++i) data[i] = mat_of(me0, i);
        rt.coll_engine()->allreduce(data.data(), kMats, sizeof(Mat), mat_comb);
        ASSERT_EQ(std::memcmp(data.data(), expect.data(),
                              kMats * sizeof(Mat)),
                  0)
            << "arm=" << static_cast<int>(arm) << " images=" << images;
        rt.sync_all();
      });
    }
  }
}

TEST_P(CollConformance, CoSumThroughRuntimeMatchesExact) {
  // The rerouted co_sum template over the auto-selected arm: exactly
  // representable doubles make any associative fold order bit-identical.
  constexpr std::size_t kN = 1'500;  // 12 KB: forces the pipelined path
  const int images = 18;
  Harness h(GetParam(), images, coll_opts(CollAlgo::kAuto, CollAlgo::kAuto));
  h.run([&] {
    auto& rt = h.rt();
    std::vector<double> data(kN);
    for (std::size_t i = 0; i < kN; ++i) {
      data[i] = rt.this_image() * 1.5 + static_cast<double>(i % 7);
    }
    rt.co_sum(data.data(), kN);
    const double ranksum = 1.5 * images * (images + 1) / 2;
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(data[i], ranksum + images * static_cast<double>(i % 7));
    }
    rt.sync_all();
  });
}

TEST(CollEngine, SelectorPricesFromProfile) {
  // Stampede (16 cores/node) at 33 images spans 3 nodes: small payloads
  // favor the hierarchical arms, large ones the pipelined tree.
  Harness multi(Stack::kShmemMvapich, 33, coll_opts(CollAlgo::kAuto,
                                                    CollAlgo::kAuto));
  multi.run([&] {
    auto* eng = multi.rt().coll_engine();
    ASSERT_NE(eng, nullptr);
    EXPECT_EQ(eng->num_nodes(), 3);
    EXPECT_EQ(eng->node_size(), 16);
    EXPECT_EQ(eng->pick_broadcast(64), CollAlgo::kTwoLevel);
    EXPECT_EQ(eng->pick_reduce(8), CollAlgo::kTwoLevel);
    EXPECT_EQ(eng->pick_broadcast(100'000), CollAlgo::kPipelined);
    EXPECT_EQ(eng->pick_reduce(100'000), CollAlgo::kPipelined);
    multi.rt().sync_all();
  });
  // 8 images on an XC30 node (24 cores) are a single node: no hierarchy to
  // exploit; small allreduces take recursive doubling.
  Harness single(Stack::kShmemCray, 8, coll_opts(CollAlgo::kAuto,
                                                 CollAlgo::kAuto));
  single.run([&] {
    auto* eng = single.rt().coll_engine();
    EXPECT_EQ(eng->num_nodes(), 1);
    EXPECT_EQ(eng->pick_broadcast(64), CollAlgo::kBinomial);
    EXPECT_EQ(eng->pick_reduce(8), CollAlgo::kRecursiveDoubling);
    single.rt().sync_all();
  });
}

TEST(CollEngine, TwoLevelOnlyLeadersTouchTheWire) {
  // 33 Stampede images = 3 nodes of 16/16/1. Broadcasting from image 6
  // (rank 5, mid-node): under the two-level arm the only images allowed to
  // send across nodes are the root (standing in for its node's leader) and
  // the other node leaders — ranks 5, 16, 32. A rotated binomial tree, by
  // contrast, scatters cross-node edges over arbitrary ranks.
  Harness h(Stack::kShmemMvapich, 33,
            coll_opts(CollAlgo::kTwoLevel, CollAlgo::kAuto));
  h.run([&] {
    auto& rt = h.rt();
    std::vector<std::int64_t> data(128, rt.this_image());
    rt.co_broadcast(data.data(), data.size(), 6);
    rt.sync_all();
    const auto& tele = rt.coll_engine()->telemetry();
    const int me0 = rt.this_image() - 1;
    if (me0 == 5) {
      EXPECT_GT(tele.inter_node_msgs, 0u);  // root feeds the other leaders
    } else if (me0 != 16 && me0 != 32) {
      EXPECT_EQ(tele.inter_node_msgs, 0u);
    }
  });
}

TEST(CollEngine, TwoLevelBroadcastBeatsBinomialAcrossNodes) {
  // The latency claim behind the selector's pricing: for small payloads on
  // a 3-node machine, one inter-node k-nomial hop plus intra-node fan-out
  // beats ceil(log2 33) = 6 serial wire hops.
  auto elapsed = [](CollAlgo arm) {
    Harness h(Stack::kShmemMvapich, 33, coll_opts(arm, CollAlgo::kAuto));
    sim::Time t = 0;
    h.run([&] {
      auto& rt = h.rt();
      std::int64_t v[8] = {};
      rt.sync_all();
      const sim::Time t0 = h.engine().now();
      for (int i = 0; i < 20; ++i) rt.co_broadcast(v, 8, 1);
      rt.sync_all();
      if (rt.this_image() == 1) t = h.engine().now() - t0;
    });
    return t;
  };
  EXPECT_LT(elapsed(CollAlgo::kTwoLevel), elapsed(CollAlgo::kBinomial));
}

TEST(CollEngine, IntraNodeStagesUseDirectPath) {
  // Cray SHMEM with shmem_ptr enabled: the two-level gather/fan-out stages
  // within a node are direct load/store-reachable, and the telemetry
  // records it.
  Harness h(Stack::kShmemCray, 6,
            coll_opts(CollAlgo::kTwoLevel, CollAlgo::kTwoLevel));
  h.run([&] {
    auto& cd = dynamic_cast<caf::ShmemConduit&>(h.rt().conduit());
    cd.set_intra_node_direct(true);
    auto& rt = h.rt();
    std::int64_t v = rt.this_image();
    rt.co_sum(&v, 1);
    EXPECT_EQ(v, 21);
    rt.sync_all();
    const auto& tele = rt.coll_engine()->telemetry();
    if (rt.this_image() != 1) {  // every non-leader sent intra-node
      EXPECT_GT(tele.intra_node_msgs, 0u);
      EXPECT_EQ(tele.direct_intra_msgs, tele.intra_node_msgs);
    }
    EXPECT_EQ(tele.inter_node_msgs, 0u);  // single node: nothing crossed
  });
}

TEST(CollEngine, HierarchicalBarrierSynchronizes) {
  // team_sync on a fault-free run takes the engine's dissemination barrier;
  // a late image must hold everyone back, across nodes.
  const int images = 34;  // 3 Stampede nodes, ragged last node
  Harness h(Stack::kShmemMvapich, images);
  h.run([&] {
    auto& rt = h.rt();
    caf::Team all;
    for (int i = 1; i <= images; ++i) all.members.push_back(i);
    for (int round = 1; round <= 3; ++round) {
      if (rt.this_image() == round) {
        h.engine().advance(100'000 * round);
      }
      EXPECT_EQ(rt.team_sync(all), caf::kStatOk);
      EXPECT_GE(h.engine().now(),
                static_cast<sim::Time>(100'000) * round);
    }
    EXPECT_EQ(rt.coll_engine()->telemetry().barriers, 3u);
  });
}

TEST(CollEngine, PipelinedTelemetryShowsStreaming) {
  // A 256 KB broadcast at depth 4 must actually overlap segments: every
  // interior image forwards 32 chunks per child.
  Harness h(Stack::kShmemMvapich, 9,
            coll_opts(CollAlgo::kPipelined, CollAlgo::kAuto));
  h.run([&] {
    auto& rt = h.rt();
    std::vector<std::int64_t> data(32'768);
    if (rt.this_image() == 1) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = bcast_val(0, i);
      }
    }
    rt.co_broadcast(data.data(), data.size(), 1);
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(data[i], bcast_val(0, i));
    }
    rt.sync_all();
    if (rt.this_image() == 1) {
      EXPECT_GE(rt.coll_engine()->telemetry().chunks_pipelined, 32u);
    }
  });
}
