// Tests for the runtime extensions: stat= lock variants, per-image
// communication statistics, and coarray-to-coarray section copies.
#include <gtest/gtest.h>

#include <numeric>

#include "caf_test_util.hpp"

using namespace caf;
using caftest::Harness;
using caftest::Stack;

TEST(StatVariants, LockStatCodes) {
  Harness h(Stack::kShmemCray, 4);
  h.run([&] {
    CoLock lck = h.rt().make_lock();
    if (h.rt().this_image() == 1) {
      EXPECT_EQ(h.rt().unlock_stat(lck, 2), kStatUnlocked);  // not held
      EXPECT_EQ(h.rt().lock_stat(lck, 2), kStatOk);
      EXPECT_EQ(h.rt().lock_stat(lck, 2), kStatLocked);      // double acquire
      EXPECT_EQ(h.rt().unlock_stat(lck, 2), kStatOk);
      EXPECT_EQ(h.rt().unlock_stat(lck, 2), kStatUnlocked);
    }
    h.rt().sync_all();
  });
}

TEST(Stats, CountsMatchOperations) {
  Harness h(Stack::kShmemCray, 4);
  h.run([&] {
    auto x = make_coarray<int>(h.rt(), {64});
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      h.rt().reset_stats();
      std::vector<int> buf(16, 7);
      x.put_contiguous(2, buf.data(), 16);          // 1 put, 64 bytes
      x.put_scalar(3, {5}, 9);                      // 1 put, 4 bytes
      (void)x.get_scalar(2, {1});                   // 1 get, 4 bytes
      const auto& s = h.rt().stats();
      EXPECT_EQ(s.puts, 2u);
      EXPECT_EQ(s.put_bytes, 64u + 4u);
      EXPECT_EQ(s.gets, 1u);
      EXPECT_EQ(s.get_bytes, 4u);
    }
    h.rt().sync_all();
  });
}

TEST(Stats, StridedCountersMatchStridedStats) {
  Harness h(Stack::kShmemCray, 4, {}, 8 << 20);
  h.run([&] {
    const Shape shape{40, 40};
    auto x = make_coarray<int>(h.rt(), shape);
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      h.rt().reset_stats();
      const Section sec{{1, 39, 2}, {1, 40, 2}};
      std::vector<int> src(20 * 20, 3);
      const auto st = x.put_section(2, sec, src.data());
      EXPECT_EQ(h.rt().stats().strided_puts, st.messages);
      EXPECT_EQ(h.rt().stats().put_bytes, st.elements * sizeof(int));
    }
    h.rt().sync_all();
  });
}

TEST(Stats, LockAndSyncCounters) {
  Harness h(Stack::kShmemCray, 4);
  h.run([&] {
    CoLock lck = h.rt().make_lock();
    h.rt().reset_stats();
    h.rt().lock(lck, 1);
    h.rt().unlock(lck, 1);
    h.rt().sync_all();
    h.rt().sync_all();
    EXPECT_EQ(h.rt().stats().locks_acquired, 1u);
    EXPECT_EQ(h.rt().stats().syncs, 2u);
  });
}

class CopySectionStacks : public ::testing::TestWithParam<Stack> {};
INSTANTIATE_TEST_SUITE_P(Stacks, CopySectionStacks,
                         ::testing::ValuesIn(caftest::kAllStacks),
                         [](const auto& info) {
                           std::string s = caftest::to_string(info.param);
                           for (auto& c : s) if (c == '-') c = '_';
                           return s;
                         });

TEST_P(CopySectionStacks, SectionToSectionPut) {
  // dst(2:20:2, 1:5)[2] = src(1:10, 3:7) — different shapes, same counts.
  Harness h(GetParam(), 4, {}, 8 << 20);
  h.run([&] {
    auto src = make_coarray<int>(h.rt(), {10, 8});
    auto dst = make_coarray<int>(h.rt(), {20, 6});
    for (std::int64_t i = 0; i < src.size(); ++i) {
      src.data()[i] = h.rt().this_image() * 1000 + static_cast<int>(i);
    }
    for (std::int64_t i = 0; i < dst.size(); ++i) dst.data()[i] = -1;
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      copy_section(dst, 2, Section{{2, 20, 2}, {1, 5, 1}}, src,
                   Section{{1, 10, 1}, {3, 7, 1}});
    }
    h.rt().sync_all();
    if (h.rt().this_image() == 2) {
      // Element (i,j) of the destination section came from src(i', j'+2).
      for (int j = 1; j <= 5; ++j) {
        for (int i = 1; i <= 10; ++i) {
          const int expect = 1000 + (i - 1) + (j + 1) * 10;
          EXPECT_EQ(dst(2 * i, j), expect) << i << "," << j;
        }
      }
      // Untouched holes stay -1.
      EXPECT_EQ(dst(1, 1), -1);
      EXPECT_EQ(dst(3, 1), -1);
    }
    h.rt().sync_all();
  });
}

TEST_P(CopySectionStacks, SectionFromRemote) {
  Harness h(GetParam(), 3, {}, 8 << 20);
  h.run([&] {
    auto x = make_coarray<double>(h.rt(), {12, 12});
    for (std::int64_t i = 0; i < x.size(); ++i) {
      x.data()[i] = h.rt().this_image() * 100.0 + static_cast<double>(i);
    }
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      auto local = make_coarray<double>(h.rt(), {6, 6});
      // local(1:3, 1:6) = x(1:12:4, 2:12:2)[3]
      copy_section_from(local, Section{{1, 3, 1}, {1, 6, 1}}, x, 3,
                        Section{{1, 12, 4}, {2, 12, 2}});
      for (int j = 1; j <= 6; ++j) {
        for (int i = 1; i <= 3; ++i) {
          const double expect = 300.0 + (4 * (i - 1)) + (2 * j - 1) * 12;
          EXPECT_DOUBLE_EQ(local(i, j), expect);
        }
      }
    } else {
      auto local = make_coarray<double>(h.rt(), {6, 6});  // collective pair
      (void)local;
    }
    h.rt().sync_all();
  });
}

TEST(CopySection, MismatchedCountsThrow) {
  Harness h(Stack::kShmemCray, 2);
  h.run([&] {
    auto a = make_coarray<int>(h.rt(), {10});
    auto b = make_coarray<int>(h.rt(), {10});
    h.rt().sync_all();
    if (h.rt().this_image() == 1) {
      EXPECT_THROW(copy_section(a, 2, Section{{1, 4, 1}}, b,
                                Section{{1, 6, 1}}),
                   std::invalid_argument);
    }
    h.rt().sync_all();
  });
}
