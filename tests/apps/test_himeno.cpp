// Tests for the Himeno solver: decomposition logic, numerical agreement
// between serial and decomposed runs, residual decrease, and conduit
// independence of the numerics.
#include "apps/himeno.hpp"

#include <gtest/gtest.h>

#include "caf_test_util.hpp"

using namespace apps::himeno;
using caftest::Harness;
using caftest::Stack;

namespace {

Result run_himeno(Stack stack, int images, Config base,
                  caf::StridedAlgo algo = caf::StridedAlgo::kNaive) {
  caf::Options opts;
  opts.strided = algo;
  Harness h(stack, images, opts, 8 << 20);
  const Config cfg = decompose(base, images);
  Result r;
  h.run([&] {
    Solver solver(h.rt(), cfg);
    r = solver.run();
    h.rt().sync_all();
  });
  return r;
}

}  // namespace

TEST(HimenoDecompose, PicksSquarishDivisibleGrids) {
  Config cfg;
  cfg.gy = 32;
  cfg.gz = 32;
  auto d4 = decompose(cfg, 4);
  EXPECT_EQ(d4.py * d4.pz, 4);
  EXPECT_EQ(d4.py, 2);
  auto d8 = decompose(cfg, 8);
  EXPECT_EQ(d8.py * d8.pz, 8);
  EXPECT_EQ(32 % d8.py, 0);
  EXPECT_EQ(32 % d8.pz, 0);
  EXPECT_THROW(decompose(cfg, 7 * 11), std::invalid_argument);
}

TEST(Himeno, ResidualDecreasesOverIterations) {
  Config cfg;
  cfg.gx = cfg.gy = cfg.gz = 16;
  cfg.iters = 1;
  const Result r1 = run_himeno(Stack::kShmemCray, 4, cfg);
  cfg.iters = 6;
  const Result r6 = run_himeno(Stack::kShmemCray, 4, cfg);
  EXPECT_GT(r1.gosa, 0.0);
  EXPECT_LT(r6.gosa, r1.gosa);
}

TEST(Himeno, DecomposedMatchesSerialGosa) {
  // The halo exchange must make a 2x2-image run numerically equivalent to
  // the single-image run (co_sum ordering differences are within 1e-12).
  Config cfg;
  cfg.gx = cfg.gy = cfg.gz = 16;
  cfg.iters = 3;
  const Result serial = run_himeno(Stack::kShmemCray, 1, cfg);
  const Result par4 = run_himeno(Stack::kShmemCray, 4, cfg);
  const Result par8 = run_himeno(Stack::kShmemCray, 8, cfg);
  EXPECT_NEAR(par4.gosa, serial.gosa, 1e-9 * std::max(1.0, serial.gosa));
  EXPECT_NEAR(par8.gosa, serial.gosa, 1e-9 * std::max(1.0, serial.gosa));
}

TEST(Himeno, NumericsIndependentOfConduitAndAlgo) {
  Config cfg;
  cfg.gx = cfg.gy = cfg.gz = 16;
  cfg.iters = 2;
  const Result ref = run_himeno(Stack::kShmemCray, 4, cfg);
  for (Stack s : caftest::kAllStacks) {
    for (auto algo : {caf::StridedAlgo::kNaive, caf::StridedAlgo::kTwoDim}) {
      const Result r = run_himeno(s, 4, cfg, algo);
      EXPECT_NEAR(r.gosa, ref.gosa, 1e-12)
          << caftest::to_string(s) << " algo " << static_cast<int>(algo);
    }
  }
}

TEST(Himeno, MoreImagesMoreMflops) {
  Config cfg;
  cfg.gx = cfg.gy = cfg.gz = 32;
  cfg.iters = 2;
  const Result r1 = run_himeno(Stack::kShmemMvapich, 1, cfg);
  const Result r16 = run_himeno(Stack::kShmemMvapich, 16, cfg);
  EXPECT_GT(r16.mflops, 2.0 * r1.mflops);
}

TEST(Himeno, ElapsedIsDeterministic) {
  Config cfg;
  cfg.gx = cfg.gy = cfg.gz = 16;
  cfg.iters = 2;
  const Result a = run_himeno(Stack::kGasnet, 4, cfg);
  const Result b = run_himeno(Stack::kGasnet, 4, cfg);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_DOUBLE_EQ(a.gosa, b.gosa);
}
