// Tests for the distributed hash table benchmark across all runtimes:
// conservation of updates (atomicity), determinism, and cross-runtime
// agreement on the final table contents.
#include "apps/dht_drivers.hpp"

#include <gtest/gtest.h>

#include "caf_test_util.hpp"

using namespace apps::dht;
using caftest::Harness;
using caftest::Stack;

namespace {

std::int64_t run_caf_dht(Stack stack, int images, const Config& cfg) {
  Harness h(stack, images, {}, 4 << 20);
  std::int64_t total = 0;
  h.run([&] {
    auto table = make_caf_table(h.rt(), cfg);
    table.run_updates();
    h.rt().sync_all();
    std::int64_t local = table.local_count_sum();
    h.rt().co_sum(&local, 1);
    total = local;
    h.rt().sync_all();
  });
  return total;
}

}  // namespace

class DhtAllStacks : public ::testing::TestWithParam<Stack> {};
INSTANTIATE_TEST_SUITE_P(Stacks, DhtAllStacks,
                         ::testing::ValuesIn(caftest::kAllStacks),
                         [](const auto& info) {
                           std::string s = caftest::to_string(info.param);
                           for (auto& c : s) if (c == '-') c = '_';
                           return s;
                         });

TEST_P(DhtAllStacks, NoUpdateIsLost) {
  Config cfg;
  cfg.updates_per_image = 20;
  cfg.buckets_per_image = 64;
  cfg.locks_per_image = 8;
  const int images = 12;
  EXPECT_EQ(run_caf_dht(GetParam(), images, cfg),
            static_cast<std::int64_t>(images) * cfg.updates_per_image);
}

TEST(Dht, HighContentionFewLocks) {
  // One lock per image: updates serialize heavily but must still all land.
  Config cfg;
  cfg.updates_per_image = 15;
  cfg.buckets_per_image = 16;
  cfg.locks_per_image = 1;
  EXPECT_EQ(run_caf_dht(Stack::kShmemCray, 16, cfg), 16 * 15);
}

TEST(Dht, CrayCafBaselineConserves) {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric(net::machine_profile(net::Machine::kXC30), 12);
  craycaf::Runtime rt(engine, fabric, 4 << 20);
  Config cfg;
  cfg.updates_per_image = 20;
  cfg.buckets_per_image = 64;
  cfg.locks_per_image = 8;
  double total = 0;
  rt.launch([&] {
    auto table = make_craycaf_table(rt, cfg);
    table.run_updates();
    rt.sync_all();
    double local = static_cast<double>(table.local_count_sum());
    rt.co_sum_f64(&local, 1);
    total = local;
    rt.sync_all();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(total, 12.0 * 20);
}

TEST(Dht, DeterministicAcrossRuns) {
  Config cfg;
  cfg.updates_per_image = 10;
  auto once = [&] {
    Harness h(Stack::kShmemCray, 8, {}, 4 << 20);
    sim::Time t = 0;
    h.run([&] {
      auto table = make_caf_table(h.rt(), cfg);
      table.run_updates();
      h.rt().sync_all();
      t = h.engine().now();
    });
    return t;
  };
  EXPECT_EQ(once(), once());
}

TEST(Dht, ShmemFasterThanGasnet) {
  // Figure 9's qualitative ordering on lock-heavy workloads.
  Config cfg;
  cfg.updates_per_image = 12;
  cfg.locks_per_image = 2;  // contention matters
  auto elapsed = [&](Stack stack) {
    Harness h(stack, 16, {}, 4 << 20);
    sim::Time t = 0;
    h.run([&] {
      auto table = make_caf_table(h.rt(), cfg);
      h.rt().sync_all();
      table.run_updates();
      h.rt().sync_all();
      t = h.engine().now();
    });
    return t;
  };
  EXPECT_LT(elapsed(Stack::kShmemCray), elapsed(Stack::kGasnet));
}
