// Replicated-DHT regressions: acknowledged increments must reconcile with
// table state after (1) a primary-image kill and (2) a *healable* network
// partition that lasts long enough for exhaustion evidence to declare the
// far side — writes redirect to the promoted primaries during the blackout
// and the post-heal reads (served by the survivors' replica chain, never
// the stale healed copies) must cover every acked increment. See
// DESIGN.md §4d and ISSUE satellite (d).
#include "apps/dht_replicated.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "caf_test_util.hpp"
#include "net/fault.hpp"
#include "obs/obs.hpp"

using apps::dhtr::Config;
using apps::dhtr::ReplicatedTable;
using caftest::Harness;
using caftest::Stack;

namespace {

std::uint64_t repl_sum(int images, const char* name) {
  std::uint64_t s = 0;
  for (int pe = 0; pe < images; ++pe) s += obs::registry().value(pe, name);
  return s;
}

net::FaultPlan bounded_plan() {
  net::FaultPlan plan;
  plan.retry.max_retransmits = 5;
  plan.retry.rto_min = 2'000;
  plan.retry.rto_max = 20'000;
  // Fast detector: declaration lands while the update stream is still
  // running, so failover happens mid-workload, not after it.
  plan.fd.heartbeat_period = 10'000;
  plan.fd.miss_threshold = 3;
  plan.fd.suspicion_grace = 50'000;
  return plan;
}

Config table_cfg() {
  Config cfg;
  cfg.buckets_per_image = 8;
  cfg.replication = 2;
  cfg.locks_per_image = 4;
  cfg.compute_ns = 200;
  return cfg;
}

}  // namespace

TEST(DhtReplicated, AckedIncrementsSurviveAPrimaryKill) {
  constexpr int kImages = 8;
  constexpr int kVictim0 = 4;  // primary of shard 4
  net::FaultPlan plan = bounded_plan();
  plan.kill_pe(kVictim0, 70'000);
  Harness h(Stack::kShmemCray, kImages, {}, 4 << 20, plan);
  obs::registry().clear();
  const Config cfg = table_cfg();
  std::vector<std::int64_t> acked(kImages + 1, 0);
  std::vector<std::int64_t> seen(kImages + 1, -1);
  const std::int64_t key = kVictim0 * cfg.buckets_per_image + 3;
  h.run([&] {
    auto& rt = h.rt();
    sim::Engine& eng = *sim::Engine::current();
    const int me = rt.this_image();
    ReplicatedTable table(rt, cfg);
    if (me == kVictim0 + 1) {
      eng.advance(2'000'000);
      return;
    }
    for (int u = 0; u < 20; ++u) {
      if (table.put_inc(key)) ++acked[static_cast<std::size_t>(me)];
      eng.advance(6'000);
    }
    // Barrier fixes the global acked total before anyone reads; then make
    // sure the declaration has landed so reads resolve the promoted chain.
    (void)rt.sync_all_stat();
    for (int i = 0; i < 500 && !eng.pe_declared(kVictim0); ++i) {
      eng.advance(10'000);
    }
    for (int round = 0; round < 64; ++round) {
      table.store().anti_entropy();
      if (table.store().under_replicated_local() == 0) break;
      eng.advance(20'000);
    }
    EXPECT_EQ(table.store().under_replicated_local(), 0) << "image " << me;
    std::int64_t v = -1;
    EXPECT_TRUE(table.get_count(key, &v));
    seen[static_cast<std::size_t>(me)] = v;
  });
  ASSERT_TRUE(h.engine().pe_declared(kVictim0));
  std::int64_t total_acked = 0;
  for (int img = 1; img <= kImages; ++img) {
    if (img == kVictim0 + 1) continue;
    total_acked += acked[static_cast<std::size_t>(img)];
  }
  EXPECT_GT(total_acked, 0);
  for (int img = 1; img <= kImages; ++img) {
    if (img == kVictim0 + 1) continue;
    EXPECT_GE(seen[static_cast<std::size_t>(img)], total_acked)
        << "image " << img;
  }
  EXPECT_GE(repl_sum(kImages, "repl.promotions"), 1u);
}

TEST(DhtReplicated, HealablePartitionRedirectsAndReconciles) {
  // Stampede, 18 images = node 0 (PEs 0-15) + node 1 (PEs 16, 17). The
  // partition isolates node 1 for 500 us — long enough that survivors'
  // retransmit exhaustion declares its images — then heals. The healed
  // images stay declared (no resurrection), so their table copies are
  // permanently stale; reads must be served by the promoted node-0 chain.
  constexpr int kImages = 18;
  net::FaultPlan plan = bounded_plan();
  plan.partition_nodes({1}, 100'000, 600'000);
  Harness h(Stack::kShmemMvapich, kImages, {}, 4 << 20, plan);
  obs::registry().clear();
  const Config cfg = table_cfg();
  std::vector<std::int64_t> acked16(kImages + 1, 0);
  std::vector<std::int64_t> acked17(kImages + 1, 0);
  std::vector<std::int64_t> seen16(kImages + 1, -1);
  std::vector<std::int64_t> seen17(kImages + 1, -1);
  const std::int64_t key16 = 16 * cfg.buckets_per_image + 1;  // home image 17
  const std::int64_t key17 = 17 * cfg.buckets_per_image + 5;  // home image 18
  h.run([&] {
    auto& rt = h.rt();
    sim::Engine& eng = *sim::Engine::current();
    const int me = rt.this_image();
    ReplicatedTable table(rt, cfg);
    if (me >= 17) {
      // Far side: passive through partition + heal. Its images get
      // declared via exhaustion evidence and must not write afterwards.
      eng.advance(2'500'000);
      return;
    }
    // Near side: everyone updates both far-homed keys across the whole
    // window — pre-partition acks land on the node-1 primaries, blackout
    // acks on the promoted node-0 primaries.
    for (int u = 0; u < 16; ++u) {
      if (table.put_inc(key16)) ++acked16[static_cast<std::size_t>(me)];
      if (table.put_inc(key17)) ++acked17[static_cast<std::size_t>(me)];
      eng.advance(40'000);
    }
    // Near-side barrier: acked totals are final before any verification
    // read (the declared far side is not waited on).
    (void)rt.sync_all_stat();
    for (int round = 0; round < 64; ++round) {
      table.store().anti_entropy();
      if (table.store().under_replicated_local() == 0) break;
      eng.advance(20'000);
    }
    EXPECT_EQ(table.store().under_replicated_local(), 0) << "image " << me;
    std::int64_t v = -1;
    EXPECT_TRUE(table.get_count(key16, &v));
    seen16[static_cast<std::size_t>(me)] = v;
    EXPECT_TRUE(table.get_count(key17, &v));
    seen17[static_cast<std::size_t>(me)] = v;
  });
  // The partition outlived the exhaustion budget: the far side is declared
  // even though its processes never died.
  EXPECT_TRUE(h.engine().pe_declared(16));
  EXPECT_TRUE(h.engine().pe_declared(17));
  std::int64_t total16 = 0, total17 = 0;
  for (int img = 1; img <= 16; ++img) {
    total16 += acked16[static_cast<std::size_t>(img)];
    total17 += acked17[static_cast<std::size_t>(img)];
  }
  EXPECT_GT(total16, 0);
  EXPECT_GT(total17, 0);
  for (int img = 1; img <= 16; ++img) {
    EXPECT_GE(seen16[static_cast<std::size_t>(img)], total16)
        << "image " << img;
    EXPECT_GE(seen17[static_cast<std::size_t>(img)], total17)
        << "image " << img;
  }
  EXPECT_GE(repl_sum(kImages, "repl.promotions"), 2u);
}
