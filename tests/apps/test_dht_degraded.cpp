// Degraded-mode DHT tests: a mid-run image kill must not lose survivors'
// updates — dead-owner traffic is redirected to the next live image in the
// ring (or skipped, with accounting), locks held by the corpse are
// reclaimed, and the survivor table contents reconcile with the per-image
// "dht.*" registry ledgers. Covered on both runtimes (UHCAF-over-SHMEM and
// the Cray-CAF baseline), mirroring the bench/fault_recovery harness.
#include "apps/dht_drivers.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "caf_test_util.hpp"
#include "net/fault.hpp"
#include "obs/obs.hpp"

using namespace apps::dht;
using caftest::Harness;
using caftest::Stack;

namespace {

Config degraded_cfg() {
  Config cfg;
  cfg.updates_per_image = 24;
  cfg.buckets_per_image = 32;
  cfg.locks_per_image = 4;
  cfg.hot_percent = 25;  // some lock contention, so reclamation can trigger
  cfg.hot_keys = 2;
  return cfg;
}

// Reconciles survivor ledgers (the "dht.*" registry counters plus the
// per-target applied_to vectors run_updates_resilient returns) against
// survivor table contents.
void check_conservation(int images, int victim,
                        const std::vector<std::vector<std::int64_t>>& applied,
                        const std::vector<std::int64_t>& counts,
                        const Config& cfg) {
  auto dht = [](int img, const char* name) {
    return static_cast<std::int64_t>(obs::registry().value(img - 1, name));
  };
  std::int64_t total_counts = 0;
  std::int64_t total_applied = 0;
  std::int64_t applied_to_victim = 0;
  std::int64_t total_redirected = 0;
  for (int img = 1; img <= images; ++img) {
    if (img == victim) continue;
    EXPECT_EQ(dht(img, "dht.attempted"), cfg.updates_per_image)
        << "image " << img;
    EXPECT_EQ(dht(img, "dht.applied") + dht(img, "dht.skipped"),
              dht(img, "dht.attempted"))
        << "image " << img;
    EXPECT_EQ(dht(img, "dht.applied_pre") + dht(img, "dht.applied_post"),
              dht(img, "dht.applied"))
        << "image " << img;
    total_applied += dht(img, "dht.applied");
    applied_to_victim += applied[static_cast<std::size_t>(img)]
                                [static_cast<std::size_t>(victim)];
    total_redirected += dht(img, "dht.redirected");
    total_counts += counts[static_cast<std::size_t>(img)];
    // Per-target lower bound: everything a survivor claims it applied to a
    // surviving target must be in that target's slice (the victim may have
    // landed extra updates before dying, never fewer).
  }
  for (int t = 1; t <= images; ++t) {
    if (t == victim) continue;
    std::int64_t claimed = 0;
    for (int u = 1; u <= images; ++u) {
      if (u == victim) continue;
      claimed += applied[static_cast<std::size_t>(u)]
                        [static_cast<std::size_t>(t)];
    }
    EXPECT_GE(counts[static_cast<std::size_t>(t)], claimed) << "target " << t;
  }
  // Global reconciliation: survivor tables hold exactly what survivors
  // applied to survivors, plus whatever the victim landed before dying
  // (bounded by its full quota).
  EXPECT_GE(total_counts, total_applied - applied_to_victim);
  EXPECT_LE(total_counts,
            total_applied - applied_to_victim + cfg.updates_per_image);
  // The kill lands mid-run, so some dead-owner traffic must actually have
  // been rerouted (this is deterministic; it guards against the test
  // passing vacuously with the victim untouched by any key).
  EXPECT_GT(total_redirected, 0);
}

}  // namespace

TEST(DhtDegraded, CafSurvivorsRedirectReclaimAndConserve) {
  const Config cfg = degraded_cfg();
  constexpr int kImages = 8;
  constexpr int kVictim = 5;
  net::FaultPlan plan;
  // Mid-run: table setup completes by ~10 us of virtual time and the update
  // loops run to ~60 us, so the kill lands with most updates still pending.
  plan.kill_pe(kVictim - 1, 25'000);
  Harness h(Stack::kShmemCray, kImages, {}, 4 << 20, plan);
  std::vector<std::vector<std::int64_t>> applied(kImages + 1);
  std::vector<std::int64_t> counts(kImages + 1, 0);
  h.run([&] {
    auto& rt = h.rt();
    const int me = rt.this_image();
    auto table = make_caf_table(rt, cfg);
    applied[static_cast<std::size_t>(me)] = table.run_updates_resilient();
    EXPECT_EQ(rt.sync_all_stat(), caf::kStatFailedImage);
    counts[static_cast<std::size_t>(me)] = table.local_count_sum();
  });
  check_conservation(kImages, kVictim, applied, counts, cfg);
}

TEST(DhtDegraded, CrayCafSurvivorsRedirectReclaimAndConserve) {
  const Config cfg = degraded_cfg();
  constexpr int kImages = 8;
  constexpr int kVictim = 5;
  net::FaultPlan plan;
  plan.kill_pe(kVictim - 1, 25'000);  // mid-run (setup ends ~5 us, see above)
  sim::Engine engine{64 * 1024};
  net::Fabric fabric(net::machine_profile(net::Machine::kXC30), kImages);
  net::FaultInjector injector(plan, kImages, fabric.profile().cores_per_node);
  craycaf::Runtime rt(engine, fabric, 4 << 20);
  fabric.set_fault_injector(&injector);
  injector.arm(engine);
  std::vector<std::vector<std::int64_t>> applied(kImages + 1);
  std::vector<std::int64_t> counts(kImages + 1, 0);
  rt.launch([&] {
    const int me = rt.this_image();
    auto table = make_craycaf_table(rt, cfg);
    const std::uint64_t done_off = rt.allocate(8);
    if (me == 1) std::memset(rt.local_addr(done_off), 0, 8);
    rt.sync_all();  // last vendor barrier before the kill can land
    applied[static_cast<std::size_t>(me)] = table.run_updates_resilient();
    // The vendor sync_all hangs once an image is dead, so survivors
    // rendezvous manually: bump an arrival counter on image 1 and poll it
    // until every live image has checked in.
    (void)rt.dmapp().afadd(0, done_off, 1);
    for (;;) {
      const auto arrived =
          static_cast<std::int64_t>(rt.dmapp().afadd(0, done_off, 0));
      if (arrived >= kImages - engine.failed_count()) break;
      engine.advance(100'000);
    }
    counts[static_cast<std::size_t>(me)] = table.local_count_sum();
  });
  engine.run();
  check_conservation(kImages, kVictim, applied, counts, cfg);
}
