// Integration tests for the OpenSHMEM implementation: symmetric allocation,
// RMA, strided RMA (both vendor behaviours), wait_until, atomics,
// collectives, and global locks.
#include "shmem/world.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "net/profiles.hpp"

using namespace shmem;

namespace {

struct Harness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  World world;

  explicit Harness(int npes, net::Machine m = net::Machine::kStampede,
                   net::Library lib = net::Library::kShmemMvapich,
                   std::size_t heap = 2 << 20)
      : fabric(net::machine_profile(m), npes),
        world(engine, fabric, net::sw_profile(lib, m), heap) {}

  void run(std::function<void()> pe_main) {
    world.launch(std::move(pe_main));
    engine.run();
  }
};

}  // namespace

TEST(ShmemWorld, PeIdentity) {
  Harness h(20);
  std::vector<int> seen(20, -1);
  h.run([&] {
    EXPECT_EQ(h.world.n_pes(), 20);
    seen[h.world.my_pe()] = h.world.my_pe();
  });
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ShmemWorld, ShmallocIsSymmetric) {
  Harness h(8);
  std::vector<std::uint64_t> offs(8);
  h.run([&] {
    auto* p = static_cast<int*>(h.world.shmalloc(64 * sizeof(int)));
    offs[h.world.my_pe()] = h.world.offset_of(p);
    auto* q = h.world.shmalloc(128);
    offs[h.world.my_pe()] += h.world.offset_of(q) << 20;  // mix both
    h.world.shfree(q);
    h.world.shfree(p);
  });
  for (int i = 1; i < 8; ++i) EXPECT_EQ(offs[i], offs[0]);
}

TEST(ShmemWorld, ShmallocMismatchDetected) {
  Harness h(2);
  EXPECT_THROW(
      h.run([&] {
        // PE 0 and PE 1 disagree on the size: a user error the collective
        // replay log must catch.
        (void)h.world.shmalloc(h.world.my_pe() == 0 ? 64 : 128);
      }),
      std::logic_error);
}

TEST(ShmemWorld, PutGetRoundTrip) {
  Harness h(32);
  h.run([&] {
    const int me = h.world.my_pe();
    const int n = h.world.n_pes();
    auto* buf = static_cast<int*>(h.world.shmalloc(4 * sizeof(int)));
    for (int i = 0; i < 4; ++i) buf[i] = me * 10 + i;
    h.world.barrier_all();
    // Put my values into my right neighbor's buffer; get from my left.
    const int right = (me + 1) % n;
    std::vector<int> mine(4);
    for (int i = 0; i < 4; ++i) mine[i] = me * 10 + i;
    // (puts target a scratch region to avoid racing the verification gets)
    auto* scratch = static_cast<int*>(h.world.shmalloc(4 * sizeof(int)));
    h.world.put(scratch, mine.data(), 4, right);
    h.world.quiet();
    h.world.barrier_all();
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(scratch[i], ((me - 1 + n) % n) * 10 + i);
    }
    // And a get of the right neighbor's original buffer.
    std::vector<int> got(4);
    h.world.get(got.data(), buf, 4, right);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], right * 10 + i);
    h.world.barrier_all();
    h.world.shfree(scratch);
    h.world.shfree(buf);
  });
}

TEST(ShmemWorld, Figure1Program) {
  // The exact program of paper Figure 1 (right side), via the object API.
  Harness h(8);
  h.run([&] {
    auto* coarray_x = static_cast<int*>(h.world.shmalloc(4 * sizeof(int)));
    auto* coarray_y = static_cast<int*>(h.world.shmalloc(4 * sizeof(int)));
    const int my_image = h.world.my_pe() + 1;  // CAF images are 1-based
    for (int i = 0; i < 4; ++i) {
      coarray_x[i] = my_image;
      coarray_y[i] = 0;
    }
    h.world.barrier_all();
    // coarray_y(2) = coarray_x(3)[4] : get element 3 (1-based) from image 4.
    h.world.get(&coarray_y[1], &coarray_x[2], 1, 3);
    // coarray_x(1)[4] = coarray_y(2) : put element into image 4.
    h.world.put(&coarray_x[0], &coarray_y[1], 1, 3);
    h.world.quiet();
    h.world.barrier_all();
    EXPECT_EQ(coarray_y[1], 4);  // image 4 stored my_image == 4
    if (my_image == 4) {
      EXPECT_EQ(coarray_x[0], 4);
    }
  });
}

TEST(ShmemWorld, IputScattersForBothVendors) {
  for (auto [m, lib] : {std::pair{net::Machine::kStampede,
                                  net::Library::kShmemMvapich},
                        std::pair{net::Machine::kXC30,
                                  net::Library::kShmemCray}}) {
    Harness h(32, m, lib);
    h.run([&] {
      auto* dst = static_cast<int*>(h.world.shmalloc(64 * sizeof(int)));
      std::fill_n(dst, 64, -1);
      h.world.barrier_all();
      if (h.world.my_pe() == 0) {
        std::vector<int> src(16);
        std::iota(src.begin(), src.end(), 1000);
        h.world.iput(dst, src.data(), /*dst_stride=*/4, /*src_stride=*/1, 16,
                     /*pe=*/16);
        h.world.quiet();
      }
      h.world.barrier_all();
      if (h.world.my_pe() == 16) {
        for (int i = 0; i < 16; ++i) {
          EXPECT_EQ(dst[4 * i], 1000 + i) << "vendor " << h.world.sw().name;
          if (i % 4 != 0) {
            EXPECT_EQ(dst[4 * i + 1], -1);
          }
        }
      }
      h.world.barrier_all();
      h.world.shfree(dst);
    });
  }
}

TEST(ShmemWorld, IgetGathersForBothVendors) {
  for (auto [m, lib] : {std::pair{net::Machine::kStampede,
                                  net::Library::kShmemMvapich},
                        std::pair{net::Machine::kXC30,
                                  net::Library::kShmemCray}}) {
    Harness h(32, m, lib);
    h.run([&] {
      auto* src = static_cast<int*>(h.world.shmalloc(64 * sizeof(int)));
      for (int i = 0; i < 64; ++i) src[i] = h.world.my_pe() * 1000 + i;
      h.world.barrier_all();
      if (h.world.my_pe() == 0) {
        std::vector<int> dst(8, -1);
        h.world.iget(dst.data(), src, /*dst_stride=*/1, /*src_stride=*/8, 8,
                     16);
        for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], 16'000 + 8 * i);
      }
      h.world.barrier_all();
      h.world.shfree(src);
    });
  }
}

TEST(ShmemWorld, CraySingleIputFasterThanMvapichLoop) {
  // The core §V-B-2 observation: hardware iput vs software loop.
  auto run_time = [](net::Machine m, net::Library lib) {
    Harness h(32, m, lib);
    sim::Time elapsed = 0;
    h.run([&] {
      auto* dst = static_cast<int*>(h.world.shmalloc(4096 * sizeof(int)));
      h.world.barrier_all();
      if (h.world.my_pe() == 0) {
        std::vector<int> src(1024, 7);
        const sim::Time t0 = h.engine.now();
        h.world.iput(dst, src.data(), 4, 1, 1024, 16);
        h.world.quiet();
        elapsed = h.engine.now() - t0;
      }
      h.world.barrier_all();
    });
    return elapsed;
  };
  const sim::Time cray = run_time(net::Machine::kXC30, net::Library::kShmemCray);
  const sim::Time mvapich =
      run_time(net::Machine::kStampede, net::Library::kShmemMvapich);
  EXPECT_LT(cray * 3, mvapich);
}

TEST(ShmemWorld, WaitUntilBlocksUntilRemoteWrite) {
  Harness h(17);
  h.run([&] {
    auto* flag = static_cast<std::int64_t*>(h.world.shmalloc(8));
    *flag = 0;
    h.world.barrier_all();
    if (h.world.my_pe() == 16) {
      h.world.engine().advance(50'000);
      std::int64_t one = 1;
      h.world.put(flag, &one, 1, 0);
      h.world.quiet();
    } else if (h.world.my_pe() == 0) {
      h.world.wait_until(flag, Cmp::kEq, 1);
      EXPECT_GE(h.engine.now(), 50'000);
      EXPECT_EQ(*flag, 1);
    }
    h.world.barrier_all();
  });
}

TEST(ShmemWorld, AtomicsSerializeCorrectly) {
  Harness h(48, net::Machine::kTitan, net::Library::kShmemCray);
  h.run([&] {
    auto* ctr = static_cast<std::int64_t*>(h.world.shmalloc(8));
    *ctr = 0;
    h.world.barrier_all();
    h.world.add(ctr, 2, 0);
    h.world.inc(ctr, 0);
    h.world.barrier_all();
    if (h.world.my_pe() == 0) {
      EXPECT_EQ(*ctr, 3 * 48);
    }
    h.world.barrier_all();
    // swap/cswap agreement: exactly one PE claims the token.
    auto* token = static_cast<std::int64_t*>(h.world.shmalloc(8));
    *token = 0;
    h.world.barrier_all();
    const std::int64_t prev =
        h.world.cswap(token, 0, h.world.my_pe() + 1, 0);
    static int winners = 0;
    if (prev == 0) ++winners;
    h.world.barrier_all();
    if (h.world.my_pe() == 0) {
      EXPECT_EQ(winners, 1);
    }
  });
}

TEST(ShmemWorld, BarrierActuallySynchronizes) {
  Harness h(16);
  h.run([&] {
    // Each PE arrives at a staggered time; all must leave no earlier than
    // the last arrival.
    const sim::Time arrive = 1'000 * (h.world.my_pe() + 1);
    h.engine.advance(arrive);
    h.world.barrier_all();
    EXPECT_GE(h.engine.now(), 16'000);
  });
}

class ShmemCollectives : public ::testing::TestWithParam<int> {};

TEST_P(ShmemCollectives, BroadcastReachesAllPes) {
  const int n = GetParam();
  Harness h(n);
  h.run([&] {
    auto* buf = static_cast<int*>(h.world.shmalloc(8 * sizeof(int)));
    const int root = n > 3 ? 3 : 0;
    if (h.world.my_pe() == root) {
      for (int i = 0; i < 8; ++i) buf[i] = 777 + i;
    } else {
      std::fill_n(buf, 8, -1);
    }
    h.world.barrier_all();
    h.world.broadcast(buf, 8 * sizeof(int), root);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(buf[i], 777 + i);
    h.world.barrier_all();
    h.world.shfree(buf);
  });
}

TEST_P(ShmemCollectives, SumReductionMatchesSerial) {
  const int n = GetParam();
  Harness h(n);
  h.run([&] {
    const int me = h.world.my_pe();
    auto* dst = static_cast<long*>(h.world.shmalloc(4 * sizeof(long)));
    long src[4] = {me + 1L, 2L * me, -me, me * me * 1L};
    h.world.reduce(dst, src, 4, ReduceOp::kSum);
    long e0 = 0, e1 = 0, e2 = 0, e3 = 0;
    for (int p = 0; p < n; ++p) {
      e0 += p + 1;
      e1 += 2 * p;
      e2 += -p;
      e3 += p * p;
    }
    EXPECT_EQ(dst[0], e0);
    EXPECT_EQ(dst[1], e1);
    EXPECT_EQ(dst[2], e2);
    EXPECT_EQ(dst[3], e3);
    h.world.barrier_all();
    h.world.shfree(dst);
  });
}

TEST_P(ShmemCollectives, MinMaxReductions) {
  const int n = GetParam();
  Harness h(n);
  h.run([&] {
    const int me = h.world.my_pe();
    auto* out = static_cast<double*>(h.world.shmalloc(sizeof(double)));
    double v = (me * 37 % n) + 0.5;
    h.world.reduce(out, &v, 1, ReduceOp::kMax);
    double expect_max = 0;
    for (int p = 0; p < n; ++p) expect_max = std::max(expect_max, (p * 37 % n) + 0.5);
    EXPECT_DOUBLE_EQ(out[0], expect_max);
    h.world.reduce(out, &v, 1, ReduceOp::kMin);
    double expect_min = 1e30;
    for (int p = 0; p < n; ++p) expect_min = std::min(expect_min, (p * 37 % n) + 0.5);
    EXPECT_DOUBLE_EQ(out[0], expect_min);
    h.world.barrier_all();
    h.world.shfree(out);
  });
}

INSTANTIATE_TEST_SUITE_P(PeCounts, ShmemCollectives,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 17, 33, 64));

TEST(ShmemWorld, FcollectGathersInRankOrder) {
  Harness h(12);
  h.run([&] {
    auto* dst = static_cast<int*>(h.world.shmalloc(12 * sizeof(int)));
    const int mine = 100 + h.world.my_pe();
    h.world.fcollect(dst, &mine, sizeof(int));
    for (int p = 0; p < 12; ++p) EXPECT_EQ(dst[p], 100 + p);
    h.world.barrier_all();
    h.world.shfree(dst);
  });
}

TEST(ShmemWorld, GlobalLockMutualExclusion) {
  Harness h(24, net::Machine::kTitan, net::Library::kShmemCray);
  int counter = 0;  // host-side; protected only by the simulated lock
  h.run([&] {
    auto* lock = static_cast<std::int64_t*>(h.world.shmalloc(8));
    *lock = 0;
    h.world.barrier_all();
    for (int round = 0; round < 3; ++round) {
      h.world.set_lock(lock);
      const int snapshot = counter;
      h.engine.advance(500);  // critical section work
      counter = snapshot + 1;
      h.world.clear_lock(lock);
    }
    h.world.barrier_all();
    if (h.world.my_pe() == 0) {
      EXPECT_EQ(counter, 24 * 3);
    }
  });
}

TEST(ShmemWorld, TestLockNonBlocking) {
  Harness h(2, net::Machine::kTitan, net::Library::kShmemCray);
  h.run([&] {
    auto* lock = static_cast<std::int64_t*>(h.world.shmalloc(8));
    h.world.barrier_all();
    if (h.world.my_pe() == 0) {
      EXPECT_EQ(h.world.test_lock(lock), 0);  // acquired
      EXPECT_EQ(h.world.test_lock(lock), 1);  // already held
      h.world.clear_lock(lock);
    }
    h.world.barrier_all();
  });
}

TEST(ShmemWorld, ShmemPtrOnlyWithinNode) {
  Harness h(32);
  h.run([&] {
    auto* x = static_cast<int*>(h.world.shmalloc(sizeof(int)));
    *x = h.world.my_pe();
    h.world.barrier_all();
    if (h.world.my_pe() == 0) {
      int* same_node = static_cast<int*>(h.world.ptr(x, 3));
      ASSERT_NE(same_node, nullptr);
      EXPECT_EQ(*same_node, 3);  // direct load from a same-node PE
      EXPECT_EQ(h.world.ptr(x, 16), nullptr);  // other node
    }
    h.world.barrier_all();
  });
}

TEST(ShmemWorld, QuietOrdersFigure4Sequence) {
  // Paper Figure 4: a(:)[2] = b(:) followed by c(:) = a(:)[2] requires
  // quiet between them; with quiet the get must see the put's data.
  Harness h(4);
  h.run([&] {
    auto* a = static_cast<int*>(h.world.shmalloc(16 * sizeof(int)));
    std::fill_n(a, 16, 0);
    std::vector<int> b(16, 9), c(16, -1);
    h.world.barrier_all();
    if (h.world.my_pe() == 0) {
      h.world.put(a, b.data(), 16, 1);
      h.world.quiet();  // remote completion before the read-back
      h.world.get(c.data(), a, 16, 1);
      for (int i = 0; i < 16; ++i) EXPECT_EQ(c[i], 9);
    }
    h.world.barrier_all();
  });
}
