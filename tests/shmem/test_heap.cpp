// Unit + property tests for the free-list allocator behind shmalloc and the
// CAF non-symmetric slab.
#include "shmem/heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sim/rng.hpp"

using shmem::FreeListAllocator;

TEST(Heap, AllocatesAlignedNonOverlapping) {
  FreeListAllocator a(0, 1 << 16);
  auto x = a.allocate(100);
  auto y = a.allocate(100);
  ASSERT_TRUE(x && y);
  EXPECT_EQ(*x % 16, 0u);
  EXPECT_EQ(*y % 16, 0u);
  EXPECT_GE(*y, *x + 100);
  EXPECT_TRUE(a.check_invariants());
}

TEST(Heap, RespectsBaseOffset) {
  FreeListAllocator a(4096, 8192);
  auto x = a.allocate(64);
  ASSERT_TRUE(x);
  EXPECT_GE(*x, 4096u);
  EXPECT_LT(*x + 64, 4096u + 8192u);
}

TEST(Heap, ZeroSizeAllocationsAreDistinct) {
  FreeListAllocator a(0, 4096);
  auto x = a.allocate(0);
  auto y = a.allocate(0);
  ASSERT_TRUE(x && y);
  EXPECT_NE(*x, *y);
}

TEST(Heap, ExhaustionReturnsNullopt) {
  FreeListAllocator a(0, 256);
  EXPECT_TRUE(a.allocate(128));
  EXPECT_TRUE(a.allocate(128));
  EXPECT_FALSE(a.allocate(1));
}

TEST(Heap, FreeEnablesReuse) {
  FreeListAllocator a(0, 256);
  auto x = a.allocate(256);
  ASSERT_TRUE(x);
  EXPECT_FALSE(a.allocate(16));
  a.release(*x);
  EXPECT_TRUE(a.allocate(256));
}

TEST(Heap, CoalescingMergesNeighbors) {
  FreeListAllocator a(0, 4096);
  auto x = a.allocate(1024);
  auto y = a.allocate(1024);
  auto z = a.allocate(1024);
  ASSERT_TRUE(x && y && z);
  // Free in an order that requires both forward and backward coalescing.
  a.release(*x);
  a.release(*z);
  a.release(*y);
  EXPECT_TRUE(a.check_invariants());
  auto big = a.allocate(4096);
  EXPECT_TRUE(big);
}

TEST(Heap, DoubleFreeThrows) {
  FreeListAllocator a(0, 4096);
  auto x = a.allocate(64);
  a.release(*x);
  EXPECT_THROW(a.release(*x), std::invalid_argument);
  EXPECT_THROW(a.release(12345), std::invalid_argument);
}

TEST(Heap, BytesInUseTracksLiveBlocks) {
  FreeListAllocator a(0, 1 << 16);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  auto x = a.allocate(100);  // rounds to 112
  EXPECT_EQ(a.bytes_in_use(), 112u);
  a.release(*x);
  EXPECT_EQ(a.bytes_in_use(), 0u);
}

// Property test: random alloc/free sequences keep invariants, never hand out
// overlapping blocks, and fully coalesce when everything is freed.
TEST(HeapProperty, RandomWorkloadMaintainsInvariants) {
  for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    sim::Rng rng(seed);
    FreeListAllocator a(0, 1 << 20);
    std::map<std::uint64_t, std::uint64_t> live;  // off -> requested size
    for (int step = 0; step < 4000; ++step) {
      const bool do_alloc = live.empty() || rng.below(100) < 60;
      if (do_alloc) {
        const std::uint64_t sz = 1 + rng.below(5000);
        auto off = a.allocate(sz);
        if (off) {
          // No overlap with any live block.
          for (const auto& [o, s] : live) {
            EXPECT_FALSE(*off < o + s && o < *off + sz)
                << "overlap at step " << step;
          }
          live[*off] = sz;
        }
      } else {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.below(live.size())));
        a.release(it->first);
        live.erase(it);
      }
      ASSERT_TRUE(a.check_invariants()) << "step " << step << " seed " << seed;
    }
    for (const auto& [o, s] : live) a.release(o);
    ASSERT_TRUE(a.check_invariants());
    EXPECT_EQ(a.bytes_in_use(), 0u);
    // Fully coalesced: one max-size allocation must succeed.
    EXPECT_TRUE(a.allocate((1 << 20) - 16));
  }
}
