// Tests for shmem_collect / shmem_alltoall.
#include <gtest/gtest.h>

#include <numeric>

#include "net/profiles.hpp"
#include "shmem/world.hpp"

using namespace shmem;

namespace {

struct Harness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  World world;

  explicit Harness(int npes)
      : fabric(net::machine_profile(net::Machine::kStampede), npes),
        world(engine, fabric,
              net::sw_profile(net::Library::kShmemMvapich,
                              net::Machine::kStampede),
              2 << 20) {}

  void run(std::function<void()> pe_main) {
    world.launch(std::move(pe_main));
    engine.run();
  }
};

}  // namespace

TEST(Collect, VariableSizesConcatenateInOrder) {
  Harness h(6);
  h.run([&] {
    const int me = h.world.my_pe();
    // PE p contributes p+1 ints: 0 | 1 1 | 2 2 2 | ...
    // (shmalloc is collective with identical sizes: allocate the max.)
    const std::size_t mine = static_cast<std::size_t>(me) + 1;
    auto* src = static_cast<int*>(h.world.shmalloc(6 * sizeof(int)));
    for (std::size_t i = 0; i < mine; ++i) src[i] = me * 100 + static_cast<int>(i);
    const std::size_t total = 1 + 2 + 3 + 4 + 5 + 6;
    auto* dst = static_cast<int*>(h.world.shmalloc(total * sizeof(int)));
    h.world.collect(dst, src, mine * sizeof(int));
    std::size_t k = 0;
    for (int p = 0; p < 6; ++p) {
      for (int i = 0; i <= p; ++i) {
        EXPECT_EQ(dst[k], p * 100 + i) << "slot " << k;
        ++k;
      }
    }
    h.world.barrier_all();
    h.world.shfree(dst);
    h.world.shfree(src);
  });
}

TEST(Collect, ZeroContributionAllowed) {
  Harness h(4);
  h.run([&] {
    const int me = h.world.my_pe();
    auto* src = static_cast<int*>(h.world.shmalloc(4 * sizeof(int)));
    src[0] = me;
    auto* dst = static_cast<int*>(h.world.shmalloc(4 * sizeof(int)));
    // PE 2 contributes nothing.
    const std::size_t mine = me == 2 ? 0 : sizeof(int);
    h.world.collect(dst, src, mine);
    const int expect[3] = {0, 1, 3};
    for (int i = 0; i < 3; ++i) EXPECT_EQ(dst[i], expect[i]);
    h.world.barrier_all();
    h.world.shfree(dst);
    h.world.shfree(src);
  });
}

TEST(Alltoall, TransposesBlocks) {
  Harness h(5);
  h.run([&] {
    const int me = h.world.my_pe();
    const std::size_t block = 2 * sizeof(int);
    auto* src = static_cast<int*>(h.world.shmalloc(5 * block));
    auto* dst = static_cast<int*>(h.world.shmalloc(5 * block));
    for (int p = 0; p < 5; ++p) {
      src[2 * p] = me * 10 + p;       // destined for PE p
      src[2 * p + 1] = -(me * 10 + p);
    }
    h.world.alltoall(dst, src, block);
    for (int p = 0; p < 5; ++p) {
      EXPECT_EQ(dst[2 * p], p * 10 + me);    // PE p's block for me
      EXPECT_EQ(dst[2 * p + 1], -(p * 10 + me));
    }
    h.world.barrier_all();
    h.world.shfree(dst);
    h.world.shfree(src);
  });
}

TEST(Alltoall, SelfBlockCorrect) {
  Harness h(3);
  h.run([&] {
    const int me = h.world.my_pe();
    auto* src = static_cast<long*>(h.world.shmalloc(3 * sizeof(long)));
    auto* dst = static_cast<long*>(h.world.shmalloc(3 * sizeof(long)));
    for (int p = 0; p < 3; ++p) src[p] = me * 1000 + p;
    h.world.alltoall(dst, src, sizeof(long));
    EXPECT_EQ(dst[me], me * 1000 + me);  // my own contribution to myself
    h.world.barrier_all();
    h.world.shfree(dst);
    h.world.shfree(src);
  });
}
