// Tests for the C-style OpenSHMEM shim (the Figure-1 style global-function
// API), including the classic active-set entry points.
#include "shmem/api.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "net/profiles.hpp"

namespace {

struct Harness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  shmem::World world;
  shmem::ApiGuard guard;

  explicit Harness(int npes)
      : fabric(net::machine_profile(net::Machine::kStampede), npes),
        world(engine, fabric,
              net::sw_profile(net::Library::kShmemMvapich,
                              net::Machine::kStampede),
              2 << 20),
        guard(world) {}

  void run(std::function<void()> pe_main) {
    world.launch(std::move(pe_main));
    engine.run();
  }
};

}  // namespace

TEST(CApi, RequiresBoundWorld) {
  EXPECT_THROW(shmem::current_world(), std::logic_error);
}

TEST(CApi, GuardRejectsDoubleBind) {
  Harness h(2);
  EXPECT_THROW(shmem::ApiGuard second(h.world), std::logic_error);
  h.run([] {});
}

TEST(CApi, TypedPutGetAndScalars) {
  Harness h(8);
  h.run([&] {
    start_pes(0);
    auto* d = static_cast<double*>(shmalloc(8 * sizeof(double)));
    auto* i = static_cast<int*>(shmalloc(4 * sizeof(int)));
    for (int k = 0; k < 8; ++k) d[k] = my_pe() * 10.0 + k;
    for (int k = 0; k < 4; ++k) i[k] = my_pe();
    shmem_barrier_all();
    if (my_pe() == 0) {
      double got[8];
      shmem_double_get(got, d, 8, 3);
      for (int k = 0; k < 8; ++k) EXPECT_DOUBLE_EQ(got[k], 30.0 + k);
      shmem_int_p(i, -7, 5);
      shmem_quiet();
      EXPECT_EQ(shmem_int_g(i, 5), -7);
      shmem_double_p(d, 3.25, 6);
      shmem_quiet();
      EXPECT_DOUBLE_EQ(shmem_double_g(d, 6), 3.25);
    }
    shmem_barrier_all();
    shfree(i);
    shfree(d);
  });
}

TEST(CApi, StridedDouble) {
  Harness h(4);
  h.run([&] {
    auto* buf = static_cast<double*>(shmalloc(32 * sizeof(double)));
    std::fill_n(buf, 32, -1.0);
    shmem_barrier_all();
    if (my_pe() == 0) {
      double src[8];
      for (int k = 0; k < 8; ++k) src[k] = k + 0.5;
      shmem_double_iput(buf, src, 4, 1, 8, 1);
      shmem_quiet();
      double back[8];
      shmem_double_iget(back, buf, 1, 4, 8, 1);
      for (int k = 0; k < 8; ++k) EXPECT_DOUBLE_EQ(back[k], k + 0.5);
    }
    shmem_barrier_all();
    shfree(buf);
  });
}

TEST(CApi, AtomicsAndWait) {
  Harness h(6);
  h.run([&] {
    auto* ctr = static_cast<long long*>(shmalloc(sizeof(long long)));
    *ctr = 0;
    shmem_barrier_all();
    shmem_longlong_inc(ctr, 0);
    shmem_longlong_add(ctr, 2, 0);
    if (my_pe() == 0) {
      shmem_longlong_wait_until(ctr, SHMEM_CMP_GE, 18);  // 6 * (1+2)
      EXPECT_GE(*ctr, 18);
    }
    shmem_barrier_all();
    if (my_pe() == 1) {
      EXPECT_EQ(shmem_longlong_fadd(ctr, 0, 0), 18);
      EXPECT_EQ(shmem_longlong_finc(ctr, 0), 18);
    }
    shmem_barrier_all();
    shfree(ctr);
  });
}

TEST(CApi, ActiveSetCollectives) {
  Harness h(8);
  h.run([&] {
    auto* pSync = static_cast<long long*>(
        shmalloc(shmem::kSyncSize * sizeof(long long)));
    auto* pWrk = static_cast<long long*>(
        shmalloc(shmem::kSyncSize * 2 * sizeof(long long)));
    auto* v = static_cast<long long*>(shmalloc(2 * sizeof(long long)));
    // Active set: the 4 even PEs.
    if (my_pe() % 2 == 0) {
      long long mine[2] = {my_pe() + 1LL, -1LL};
      shmem_longlong_sum_to_all(v, mine, 2, 0, 1, 4, pWrk, pSync);
      EXPECT_EQ(v[0], 1 + 3 + 5 + 7);
      EXPECT_EQ(v[1], -4);
      shmem_barrier(0, 1, 4, pSync);
      // Broadcast from relative root 1 (PE 2); buffers must be symmetric.
      v[0] = my_pe() == 2 ? 777 : 0;
      shmem_broadcast64(v, v, 1, 1, 0, 1, 4, pSync);
      EXPECT_EQ(v[0], 777);
    }
    shmem_barrier_all();
    shfree(v);
    shfree(pWrk);
    shfree(pSync);
  });
}

TEST(CApi, FcollectAndLocksAndPtr) {
  Harness h(6);
  int counter = 0;
  h.run([&] {
    auto* gathered = static_cast<long long*>(
        shmalloc(6 * sizeof(long long)));
    const long long mine = 40 + my_pe();
    shmem_fcollect64(gathered, &mine, 1);
    for (int p = 0; p < 6; ++p) EXPECT_EQ(gathered[p], 40 + p);
    auto* lock = static_cast<long long*>(shmalloc(sizeof(long long)));
    *lock = 0;
    shmem_barrier_all();
    shmem_set_lock(lock);
    const int snap = counter;
    h.engine.advance(300);
    counter = snap + 1;
    shmem_clear_lock(lock);
    shmem_barrier_all();
    EXPECT_EQ(counter, 6);
    // shmem_ptr within the node (6 PEs all on node 0).
    auto* peer = static_cast<long long*>(shmem_ptr(gathered, (my_pe() + 1) % 6));
    ASSERT_NE(peer, nullptr);
    EXPECT_EQ(peer[0], 40);
    shmem_barrier_all();
    shfree(lock);
    shfree(gathered);
  });
}
