// Tests for the OpenSHMEM active-set collectives (the classic PE_start /
// logPE_stride / PE_size triplet API with pSync/pWrk work arrays).
#include <gtest/gtest.h>

#include <numeric>

#include "net/profiles.hpp"
#include "shmem/world.hpp"

using namespace shmem;

namespace {

struct Harness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  World world;

  explicit Harness(int npes)
      : fabric(net::machine_profile(net::Machine::kXC30), npes),
        world(engine, fabric,
              net::sw_profile(net::Library::kShmemCray, net::Machine::kXC30),
              2 << 20) {}

  void run(std::function<void()> pe_main) {
    world.launch(std::move(pe_main));
    engine.run();
  }
};

}  // namespace

TEST(ActiveSet, TripletArithmetic) {
  ActiveSet as{4, 1, 5};  // PEs 4, 6, 8, 10, 12
  EXPECT_EQ(as.stride(), 2);
  EXPECT_EQ(as.world_pe(0), 4);
  EXPECT_EQ(as.world_pe(4), 12);
  EXPECT_EQ(as.rel_of(8), 2);
  EXPECT_EQ(as.rel_of(5), -1);   // off-stride
  EXPECT_EQ(as.rel_of(14), -1);  // past the set
  EXPECT_EQ(as.rel_of(2), -1);   // before pe_start
}

TEST(ActiveSet, SubsetBarrierDoesNotBlockOutsiders) {
  Harness h(16);
  h.run([&] {
    auto* pSync = static_cast<std::int64_t*>(
        h.world.shmalloc(kSyncSize * sizeof(std::int64_t)));
    const ActiveSet evens{0, 1, 8};  // PEs 0,2,...,14
    const int me = h.world.my_pe();
    if (me % 2 == 0) {
      h.engine.advance(1'000 * (me + 1));
      h.world.barrier(evens, pSync);
      EXPECT_GE(h.engine.now(), 15'000);  // waits for PE 14's arrival
    }
    // Odd PEs never touch the barrier and finish immediately.
    h.world.barrier_all();
    h.world.shfree(pSync);
  });
}

TEST(ActiveSet, StridedSubsetBroadcast) {
  Harness h(32);
  h.run([&] {
    auto* pSync = static_cast<std::int64_t*>(
        h.world.shmalloc(kSyncSize * sizeof(std::int64_t)));
    auto* buf = static_cast<int*>(h.world.shmalloc(4 * sizeof(int)));
    const ActiveSet quads{1, 2, 6};  // PEs 1,5,9,13,17,21
    const int me = h.world.my_pe();
    const int rel = quads.rel_of(me);
    std::fill_n(buf, 4, -1);
    h.world.barrier_all();
    if (rel >= 0) {
      if (rel == 2) {  // root is PE 9
        for (int i = 0; i < 4; ++i) buf[i] = 900 + i;
      }
      h.world.broadcast(quads, buf, buf, 4 * sizeof(int), /*root_rel=*/2,
                        pSync);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(buf[i], 900 + i) << "pe " << me;
    }
    h.world.barrier_all();
    // Non-members untouched.
    if (rel < 0) {
      for (int i = 0; i < 4; ++i) EXPECT_EQ(buf[i], -1);
    }
    h.world.barrier_all();
    h.world.shfree(buf);
    h.world.shfree(pSync);
  });
}

class ActiveSetToAll : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(SetSizes, ActiveSetToAll,
                         ::testing::Values(1, 2, 3, 6, 8, 13));

TEST_P(ActiveSetToAll, SumToAllOnSubset) {
  const int set_size = GetParam();
  Harness h(2 * set_size + 3);
  h.run([&] {
    auto* pSync = static_cast<std::int64_t*>(
        h.world.shmalloc(kSyncSize * sizeof(std::int64_t)));
    auto* pWrk = static_cast<long*>(
        h.world.shmalloc(kSyncSize * 2 * sizeof(long)));
    auto* data = static_cast<long*>(h.world.shmalloc(2 * sizeof(long)));
    const ActiveSet odds{1, 1, set_size};  // PEs 1,3,5,...
    const int me = h.world.my_pe();
    const int rel = odds.rel_of(me);
    h.world.barrier_all();
    if (rel >= 0) {
      long src[2] = {rel + 1L, -2L * rel};
      h.world.to_all(odds, data, src, 2, ReduceOp::kSum, pWrk, pSync);
      long e0 = 0, e1 = 0;
      for (int r = 0; r < set_size; ++r) {
        e0 += r + 1;
        e1 += -2 * r;
      }
      EXPECT_EQ(data[0], e0);
      EXPECT_EQ(data[1], e1);
    }
    h.world.barrier_all();
    h.world.shfree(data);
    h.world.shfree(pWrk);
    h.world.shfree(pSync);
  });
}

TEST(ActiveSet, RepeatedCollectivesReusePsync) {
  Harness h(8);
  h.run([&] {
    auto* pSync = static_cast<std::int64_t*>(
        h.world.shmalloc(kSyncSize * sizeof(std::int64_t)));
    auto* pWrk =
        static_cast<double*>(h.world.shmalloc(kSyncSize * sizeof(double)));
    auto* v = static_cast<double*>(h.world.shmalloc(sizeof(double)));
    const ActiveSet all{0, 0, 8};
    for (int round = 1; round <= 5; ++round) {
      double mine = h.world.my_pe() * 1.0 + round;
      h.world.to_all(all, v, &mine, 1, ReduceOp::kMax, pWrk, pSync);
      EXPECT_DOUBLE_EQ(v[0], 7.0 + round) << "round " << round;
      h.world.barrier(all, pSync);
    }
    h.world.barrier_all();
    h.world.shfree(v);
    h.world.shfree(pWrk);
    h.world.shfree(pSync);
  });
}

TEST(ActiveSet, NonMemberCallThrows) {
  Harness h(8);
  h.run([&] {
    auto* pSync = static_cast<std::int64_t*>(
        h.world.shmalloc(kSyncSize * sizeof(std::int64_t)));
    const ActiveSet firstFour{0, 0, 4};
    if (h.world.my_pe() >= 4) {
      EXPECT_THROW(h.world.barrier(firstFour, pSync), std::logic_error);
    }
    h.world.barrier_all();
    h.world.shfree(pSync);
  });
}

TEST(ActiveSet, OutOfRangeSetThrows) {
  Harness h(4);
  h.run([&] {
    auto* pSync = static_cast<std::int64_t*>(
        h.world.shmalloc(kSyncSize * sizeof(std::int64_t)));
    if (h.world.my_pe() == 0) {
      const ActiveSet tooBig{0, 0, 9};
      EXPECT_THROW(h.world.barrier(tooBig, pSync), std::invalid_argument);
    }
    h.world.barrier_all();
    h.world.shfree(pSync);
  });
}

TEST(ActiveSet, DisjointSetsRunConcurrently) {
  // Two disjoint active sets reduce independently at the same time.
  Harness h(16);
  h.run([&] {
    auto* pSync = static_cast<std::int64_t*>(
        h.world.shmalloc(kSyncSize * sizeof(std::int64_t)));
    auto* pWrk = static_cast<long*>(h.world.shmalloc(kSyncSize * sizeof(long)));
    auto* v = static_cast<long*>(h.world.shmalloc(sizeof(long)));
    const int me = h.world.my_pe();
    const ActiveSet low{0, 0, 8};
    const ActiveSet high{8, 0, 8};
    const ActiveSet& mine = me < 8 ? low : high;
    long x = me + 1;
    h.world.to_all(mine, v, &x, 1, ReduceOp::kSum, pWrk, pSync);
    EXPECT_EQ(v[0], me < 8 ? 36 : 100);  // 1..8 vs 9..16
    h.world.barrier_all();
    h.world.shfree(v);
    h.world.shfree(pWrk);
    h.world.shfree(pSync);
  });
}
