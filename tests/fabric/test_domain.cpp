// Integration tests for fabric::Domain: data actually moves between PE
// segments at the right virtual times, with correct completion semantics.
#include "fabric/domain.hpp"

#include <gtest/gtest.h>

#include "fabric/dmapp.hpp"
#include "fabric/verbs.hpp"

#include <cstring>
#include <numeric>

#include "net/profiles.hpp"

using namespace fabric;
using namespace sim::literals;

namespace {

struct World {
  sim::Engine engine;
  net::Fabric fabric;
  Domain domain;

  explicit World(int npes = 32,
                 net::Machine m = net::Machine::kStampede,
                 net::Library lib = net::Library::kShmemMvapich,
                 std::size_t seg = 1 << 20)
      : fabric(net::machine_profile(m), npes),
        domain(engine, fabric, net::sw_profile(lib, m), seg) {}
};

}  // namespace

TEST(Domain, PutMovesBytes) {
  World w;
  w.engine.spawn(0, [&] {
    int v = 424242;
    w.domain.put(16, 64, &v, sizeof v);
    w.domain.quiet();
  });
  w.engine.run();
  int got = 0;
  std::memcpy(&got, w.domain.segment(16) + 64, sizeof got);
  EXPECT_EQ(got, 424242);
}

TEST(Domain, PutCapturesSourceAtIssue) {
  // Local completion: mutating the source after put() returns must not
  // affect the delivered data (paper Figure 4 semantics).
  World w;
  w.engine.spawn(0, [&] {
    int v = 3;
    w.domain.put(16, 0, &v, sizeof v);
    v = 0;  // reuse immediately
    w.domain.quiet();
  });
  w.engine.run();
  int got = 0;
  std::memcpy(&got, w.domain.segment(16), sizeof got);
  EXPECT_EQ(got, 3);
}

TEST(Domain, DeliveryHappensAtModelTime) {
  World w;
  sim::Time t_after_quiet = -1;
  w.engine.spawn(0, [&] {
    int v = 7;
    w.domain.put(16, 0, &v, sizeof v);
    // Before quiet, virtual time is only the local completion.
    EXPECT_EQ(w.engine.now(), w.domain.sw().put_overhead);
    w.domain.quiet();
    t_after_quiet = w.engine.now();
  });
  w.engine.run();
  const auto& mp = w.fabric.profile();
  EXPECT_GE(t_after_quiet, w.domain.sw().put_overhead + mp.hw_latency);
}

TEST(Domain, GetReadsRemoteData) {
  World w;
  int got = 0;
  // PE 16 initializes its own segment locally at t=0 (plain host store);
  // PE 0 gets it.
  std::memcpy(w.domain.segment(16) + 128, "\xef\xbe\xad\xde", 4);
  w.engine.spawn(0, [&] {
    w.domain.get(&got, 16, 128, sizeof got);
    EXPECT_GT(w.engine.now(), 0);
  });
  w.engine.run();
  EXPECT_EQ(got, static_cast<int>(0xdeadbeef));
}

TEST(Domain, GetSnapshotsAtServiceTime) {
  // A put delivered before the get's service time must be visible; the
  // event ordering of the DES guarantees it.
  World w;
  int got = 0;
  w.engine.spawn(0, [&] {
    int v = 55;
    w.domain.put(16, 0, &v, sizeof v);
    w.domain.quiet();  // ensure delivery before the get below
    w.domain.get(&got, 16, 0, sizeof got);
  });
  w.engine.run();
  EXPECT_EQ(got, 55);
}

TEST(Domain, AmoFetchAddAccumulatesAcrossPes) {
  World w(48, net::Machine::kTitan, net::Library::kShmemCray);
  std::vector<std::uint64_t> fetched(48, ~0ull);
  for (int pe = 0; pe < 48; ++pe) {
    w.engine.spawn(pe, [&, pe] {
      fetched[pe] = w.domain.amo(AmoOp::kFetchAdd, 0, 0, 1);
    });
  }
  w.engine.run();
  std::uint64_t final = 0;
  std::memcpy(&final, w.domain.segment(0), sizeof final);
  EXPECT_EQ(final, 48u);
  // Fetched values are a permutation of 0..47 (atomicity).
  std::sort(fetched.begin(), fetched.end());
  for (std::uint64_t i = 0; i < 48; ++i) EXPECT_EQ(fetched[i], i);
}

TEST(Domain, AmoCompareSwapOnlyOneWinner) {
  World w(32, net::Machine::kTitan, net::Library::kShmemCray);
  int winners = 0;
  for (int pe = 0; pe < 32; ++pe) {
    w.engine.spawn(pe, [&, pe] {
      const std::uint64_t old =
          w.domain.amo(AmoOp::kCompareSwap, 0, 8, pe + 1, 0);
      if (old == 0) ++winners;
    });
  }
  w.engine.run();
  EXPECT_EQ(winners, 1);
}

TEST(Domain, AmoBitwiseOps) {
  World w;
  w.engine.spawn(0, [&] {
    w.domain.amo(AmoOp::kFetchOr, 16, 0, 0b1010);
    w.domain.amo(AmoOp::kFetchAnd, 16, 0, 0b0110);
    const std::uint64_t before = w.domain.amo(AmoOp::kFetchXor, 16, 0, 0b0011);
    EXPECT_EQ(before, 0b0010u);
  });
  w.engine.run();
  std::uint64_t final = 0;
  std::memcpy(&final, w.domain.segment(16), sizeof final);
  EXPECT_EQ(final, 0b0001u);
}

TEST(Domain, WriteHookFiresOnDelivery) {
  World w;
  std::vector<WriteEvent> events;
  w.domain.set_write_hook([&](const WriteEvent& e) { events.push_back(e); });
  w.engine.spawn(0, [&] {
    int v[4] = {1, 2, 3, 4};
    w.domain.put(16, 32, v, sizeof v);
    w.domain.amo(AmoOp::kFetchAdd, 17, 0, 5);
    w.domain.quiet();
  });
  w.engine.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].pe, 16);
  EXPECT_EQ(events[0].offset, 32u);
  EXPECT_EQ(events[0].len, 16u);
  EXPECT_EQ(events[1].pe, 17);
}

TEST(Domain, HwStridedPutScattersCorrectly) {
  World w(32, net::Machine::kXC30, net::Library::kShmemCray);
  w.engine.spawn(0, [&] {
    std::vector<int> src(10);
    std::iota(src.begin(), src.end(), 100);
    // Source stride 1 element, destination stride 3 elements.
    w.domain.iput_hw(16, 0, 3, src.data(), 1, sizeof(int), 10);
    w.domain.quiet();
  });
  w.engine.run();
  for (int i = 0; i < 10; ++i) {
    int got = 0;
    std::memcpy(&got, w.domain.segment(16) + i * 3 * sizeof(int), sizeof got);
    EXPECT_EQ(got, 100 + i);
  }
}

TEST(Domain, HwStridedGetGathersCorrectly) {
  World w(32, net::Machine::kXC30, net::Library::kShmemCray);
  for (int i = 0; i < 8; ++i) {
    const int v = 7 * i;
    std::memcpy(w.domain.segment(16) + i * 2 * sizeof(int), &v, sizeof v);
  }
  std::vector<int> dst(8, -1);
  w.engine.spawn(0, [&] {
    w.domain.iget_hw(dst.data(), 1, 16, 0, 2, sizeof(int), 8);
  });
  w.engine.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(dst[i], 7 * i);
}

TEST(Domain, QuietWaitsForAllOutstanding) {
  World w;
  w.engine.spawn(0, [&] {
    std::vector<char> buf(1 << 16, 'x');
    sim::Time last_local = 0;
    for (int i = 0; i < 8; ++i) {
      w.domain.put(16 + i, 0, buf.data(), buf.size(), /*pipelined=*/true);
      last_local = w.engine.now();
    }
    w.domain.quiet();
    EXPECT_GT(w.engine.now(), last_local);
    EXPECT_GE(w.engine.now(), w.domain.outstanding(0));
  });
  w.engine.run();
}

TEST(Domain, OutOfRangeAccessThrows) {
  World w(32, net::Machine::kStampede, net::Library::kShmemMvapich, 4096);
  w.engine.spawn(0, [&] {
    char c = 0;
    EXPECT_THROW(w.domain.put(16, 4096, &c, 1), std::out_of_range);
    EXPECT_THROW(w.domain.get(&c, 16, 5000, 1), std::out_of_range);
  });
  w.engine.run();
}

TEST(Verbs, ApiRoundTrip) {
  sim::Engine engine;
  net::Fabric fab(net::machine_profile(net::Machine::kStampede), 32);
  fabric::verbs::Hca hca(engine, fab, 1 << 16);
  engine.spawn(0, [&] {
    std::uint64_t v = 99;
    hca.rdma_write(16, 0, &v, sizeof v);
    hca.poll_cq_drain();
    std::uint64_t r = 0;
    hca.rdma_read(&r, 16, 0, sizeof r);
    EXPECT_EQ(r, 99u);
    EXPECT_EQ(hca.atomic_fetch_add(16, 0, 1), 99u);
    EXPECT_EQ(hca.atomic_cmp_swap(16, 0, 100, 7), 100u);
    hca.rdma_read(&r, 16, 0, sizeof r);
    EXPECT_EQ(r, 7u);
  });
  engine.run();
}

TEST(Dmapp, ApiRoundTripWithStrided) {
  sim::Engine engine;
  net::Fabric fab(net::machine_profile(net::Machine::kXC30), 32);
  fabric::dmapp::Context ctx(engine, fab, 1 << 16);
  engine.spawn(0, [&] {
    std::vector<long> src{1, 2, 3, 4, 5};
    ctx.iput(16, 0, 2, src.data(), 1, sizeof(long), src.size());
    ctx.gsync_wait();
    std::vector<long> back(5, 0);
    ctx.iget(back.data(), 1, 16, 0, 2, sizeof(long), 5);
    EXPECT_EQ(back, src);
    EXPECT_EQ(ctx.afadd(16, 8 * 9, 5), 0u);
    EXPECT_EQ(ctx.aswap(16, 8 * 9, 11), 5u);
    EXPECT_EQ(ctx.acswap(16, 8 * 9, 11, 13), 11u);
    EXPECT_EQ(ctx.afax(fabric::AmoOp::kFetchAnd, 16, 8 * 9, 0xF), 13u);
  });
  engine.run();
}
