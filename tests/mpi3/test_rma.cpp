// Tests for the MPI-3 RMA subset used in the Figure 2-3 conduit comparison.
#include "mpi3/rma.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "net/profiles.hpp"

using namespace mpi3;

namespace {

struct Harness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  Window win;

  explicit Harness(int ranks, net::Machine m = net::Machine::kStampede)
      : fabric(net::machine_profile(m), ranks),
        win(engine, fabric, net::sw_profile(net::Library::kMpi3, m), 1 << 20) {}

  void run(std::function<void()> main) {
    win.launch(std::move(main));
    engine.run();
  }
};

constexpr std::uint64_t kOff = mpi3::Window::reserved_bytes() + 64;

}  // namespace

TEST(Mpi3, PutThenFlushDelivers) {
  Harness h(32);
  h.run([&] {
    if (h.win.rank() == 0) {
      const double v = 2.718;
      h.win.put(&v, sizeof v, 16, kOff);
      h.win.flush_all();
      double check = 0;
      std::memcpy(&check, h.win.base(16) + kOff, sizeof check);
      EXPECT_DOUBLE_EQ(check, 2.718);
    }
    h.win.barrier();
  });
}

TEST(Mpi3, GetRoundTrip) {
  Harness h(32);
  h.run([&] {
    if (h.win.rank() == 16) {
      const int v = 321;
      std::memcpy(h.win.base(16) + kOff, &v, sizeof v);
    }
    h.win.barrier();
    if (h.win.rank() == 0) {
      int got = 0;
      h.win.get(&got, sizeof got, 16, kOff);
      EXPECT_EQ(got, 321);
    }
  });
}

TEST(Mpi3, FetchAndOpAccumulates) {
  Harness h(16);
  h.run([&] {
    (void)h.win.fetch_and_op_sum(2, 0, kOff);
    h.win.barrier();
    if (h.win.rank() == 0) {
      std::int64_t v = 0;
      std::memcpy(&v, h.win.base(0) + kOff, sizeof v);
      EXPECT_EQ(v, 32);
    }
  });
}

TEST(Mpi3, CompareAndSwapSingleWinner) {
  Harness h(16);
  int winners = 0;
  h.run([&] {
    if (h.win.compare_and_swap(0, h.win.rank() + 1, 0, kOff) == 0) ++winners;
    h.win.barrier();
  });
  EXPECT_EQ(winners, 1);
}

TEST(Mpi3, SmallPutSlowerThanShmem) {
  // The Figure 2 headline: MPI-3 put latency exceeds SHMEM's at small sizes.
  auto one_put_latency = [](net::Library lib) {
    net::Fabric f(net::machine_profile(net::Machine::kStampede), 32);
    const auto sw = net::sw_profile(lib, net::Machine::kStampede);
    return f.submit_put(0, 16, 8, sw, 0).delivered;
  };
  EXPECT_GT(one_put_latency(net::Library::kMpi3),
            one_put_latency(net::Library::kShmemMvapich));
}
