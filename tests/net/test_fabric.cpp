// Unit tests for the interconnect cost model: latency/bandwidth arithmetic,
// NIC serialization (contention), atomic-unit serialization, intra-node
// short-circuit, and profile sanity.
#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include "net/profiles.hpp"

using namespace net;
using sim::Time;

namespace {

Fabric make_fabric(Machine m = Machine::kStampede, int npes = 32) {
  return Fabric(machine_profile(m), npes);
}

}  // namespace

TEST(Fabric, NodeMapping) {
  Fabric f = make_fabric(Machine::kStampede, 48);
  EXPECT_EQ(f.node_of(0), 0);
  EXPECT_EQ(f.node_of(15), 0);
  EXPECT_EQ(f.node_of(16), 1);
  EXPECT_EQ(f.node_of(47), 2);
  EXPECT_TRUE(f.same_node(0, 15));
  EXPECT_FALSE(f.same_node(15, 16));
}

TEST(Fabric, PutLatencyComposition) {
  Fabric f = make_fabric();
  const auto& mp = f.profile();
  SwProfile sw = sw_profile(Library::kShmemMvapich, Machine::kStampede);
  auto c = f.submit_put(0, 16, 8, sw, 0);
  EXPECT_EQ(c.local_complete, sw.put_overhead);
  // delivered = overhead + occupancy + wire latency + rx gap
  const Time occ = sim::from_ns(8.0 / (mp.link_bytes_per_ns * sw.bw_efficiency));
  EXPECT_EQ(c.delivered, sw.put_overhead + occ + mp.hw_latency + mp.rx_msg_gap);
}

TEST(Fabric, LargePutsApproachLinkBandwidth) {
  Fabric f = make_fabric();
  SwProfile sw = sw_profile(Library::kShmemMvapich, Machine::kStampede);
  const std::size_t bytes = 4 << 20;
  auto c = f.submit_put(0, 16, bytes, sw, 0);
  const double secs = sim::to_sec(c.delivered);
  const double gbps = static_cast<double>(bytes) / 1e9 / secs;
  const double link = f.profile().link_bytes_per_ns * sw.bw_efficiency;
  EXPECT_GT(gbps, 0.9 * link);
  EXPECT_LE(gbps, link + 0.01);
}

TEST(Fabric, TxSerializationCreatesContention) {
  // Two senders on node 0 each send 1 MB at t=0: the second message's
  // delivery is pushed out by roughly one occupancy.
  Fabric f = make_fabric();
  SwProfile sw = sw_profile(Library::kShmemMvapich, Machine::kStampede);
  auto a = f.submit_put(0, 16, 1 << 20, sw, 0);
  auto b = f.submit_put(1, 17, 1 << 20, sw, 0);
  EXPECT_GT(b.delivered, a.delivered);
  EXPECT_NEAR(static_cast<double>(b.delivered - a.delivered),
              (1 << 20) / (f.profile().link_bytes_per_ns * sw.bw_efficiency),
              1'000.0);
}

TEST(Fabric, SixteenPairsSplitBandwidthEvenly) {
  Fabric f = make_fabric();
  SwProfile sw = sw_profile(Library::kShmemMvapich, Machine::kStampede);
  const std::size_t bytes = 1 << 20;
  sim::Time last = 0;
  for (int p = 0; p < 16; ++p) {
    last = std::max(last, f.submit_put(p, 16 + p, bytes, sw, 0).delivered);
  }
  const double agg = 16.0 * bytes / static_cast<double>(last);  // bytes/ns
  EXPECT_NEAR(agg, f.profile().link_bytes_per_ns * sw.bw_efficiency,
              0.2 * f.profile().link_bytes_per_ns);
}

TEST(Fabric, IntraNodeBypassesNic) {
  Fabric f = make_fabric();
  SwProfile sw = sw_profile(Library::kShmemMvapich, Machine::kStampede);
  auto remote = f.submit_put(0, 16, 4096, sw, 0);
  f.reset();
  auto local = f.submit_put(0, 1, 4096, sw, 0);
  EXPECT_LT(local.delivered, remote.delivered);
  // Local transfers must not consume NIC budget: a subsequent remote put
  // sees an idle link.
  auto remote2 = f.submit_put(2, 17, 4096, sw, 0);
  EXPECT_EQ(remote2.delivered, remote.delivered);
}

TEST(Fabric, GetIsARoundTrip) {
  Fabric f = make_fabric();
  SwProfile sw = sw_profile(Library::kShmemMvapich, Machine::kStampede);
  auto rt = f.submit_get(0, 16, 8, sw, 0);
  EXPECT_GT(rt.target_read, 0);
  EXPECT_GT(rt.complete, rt.target_read + f.profile().hw_latency);
  // A get of b bytes costs strictly more than a put of b bytes (extra hop).
  f.reset();
  auto put = f.submit_put(0, 16, 8, sw, 0);
  EXPECT_GT(rt.complete, put.delivered);
}

TEST(Fabric, AmoSerializesAtTargetPe) {
  // Many PEs hammering the same target PE with atomics serialize on its
  // atomic unit; the k-th completion grows linearly.
  Fabric f = make_fabric(Machine::kTitan, 64);
  SwProfile sw = sw_profile(Library::kShmemCray, Machine::kTitan);
  sim::Time prev = 0;
  std::vector<sim::Time> done;
  for (int p = 16; p < 48; ++p) {
    done.push_back(f.submit_amo(p, 0, sw, 0).target_read);
  }
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_GE(done[i], done[i - 1] + f.profile().nic_amo_gap);
  }
  (void)prev;
}

TEST(Fabric, AmoToDistinctTargetsDoesNotSerializeAtUnit) {
  Fabric f = make_fabric(Machine::kTitan, 64);
  SwProfile sw = sw_profile(Library::kShmemCray, Machine::kTitan);
  auto a = f.submit_amo(16, 0, sw, 0);
  auto b = f.submit_amo(17, 1, sw, 0);
  // Only the shared NIC rx gap separates them, not the atomic unit.
  EXPECT_LT(b.target_read - a.target_read, f.profile().nic_amo_gap);
}

TEST(Fabric, AmHandlerCostExceedsNicAmo) {
  Fabric f = make_fabric(Machine::kTitan, 64);
  SwProfile shmem = sw_profile(Library::kShmemCray, Machine::kTitan);
  SwProfile gasnet = sw_profile(Library::kGasnet, Machine::kTitan);
  auto nic = f.submit_amo(16, 0, shmem, 0);
  f.reset();
  auto am = f.submit_am(16, 0, 8, gasnet, 0);
  EXPECT_GT(am.complete, nic.complete);
}

TEST(Fabric, HwStridedBeatsSoftwareLoop) {
  // One hardware iput of 1000 elements vs 1000 individual puts.
  Fabric f = make_fabric(Machine::kXC30, 32);
  SwProfile cray = sw_profile(Library::kShmemCray, Machine::kXC30);
  auto hw = f.submit_strided_put(0, 16, 4, 1000, cray, 0);
  f.reset();
  sim::Time t = 0;
  for (int i = 0; i < 1000; ++i) {
    auto c = f.submit_put(0, 16, 4, cray, t);
    t = c.local_complete;
  }
  EXPECT_LT(hw.delivered, t);
  EXPECT_LT(hw.delivered * 5, t);  // at least ~5x faster
}

TEST(Fabric, PipelinedPutsPayOnlyInjectionGap) {
  Fabric f = make_fabric();
  SwProfile sw = sw_profile(Library::kShmemMvapich, Machine::kStampede);
  auto blocking = f.submit_put(0, 16, 8, sw, 0, /*pipelined=*/false);
  auto pipelined = f.submit_put(0, 16, 8, sw, blocking.local_complete,
                                /*pipelined=*/true);
  EXPECT_EQ(pipelined.local_complete - blocking.local_complete,
            sw.per_msg_gap);
}

TEST(Fabric, ResetClearsLinkState) {
  Fabric f = make_fabric();
  SwProfile sw = sw_profile(Library::kShmemMvapich, Machine::kStampede);
  auto first = f.submit_put(0, 16, 1 << 20, sw, 0);
  f.reset();
  auto again = f.submit_put(0, 16, 1 << 20, sw, 0);
  EXPECT_EQ(first.delivered, again.delivered);
}

TEST(Profiles, AllCombinationsConstruct) {
  for (Machine m : {Machine::kStampede, Machine::kTitan, Machine::kXC30}) {
    auto mp = machine_profile(m);
    EXPECT_GT(mp.cores_per_node, 0);
    EXPECT_GT(mp.link_bytes_per_ns, 0.0);
    for (Library l : {Library::kShmemMvapich, Library::kShmemCray,
                      Library::kGasnet, Library::kMpi3, Library::kDmapp,
                      Library::kCrayCaf}) {
      auto sw = sw_profile(l, m);
      EXPECT_GT(sw.put_overhead, 0);
      EXPECT_GT(sw.bw_efficiency, 0.0);
      EXPECT_LE(sw.bw_efficiency, 1.0);
    }
  }
}

TEST(Profiles, PaperOrderingsHold) {
  // Figure 2 orderings: SHMEM <= GASNet < MPI-3.0 issue overheads.
  auto shmem_s = sw_profile(Library::kShmemMvapich, Machine::kStampede);
  auto gasnet_s = sw_profile(Library::kGasnet, Machine::kStampede);
  auto mpi_s = sw_profile(Library::kMpi3, Machine::kStampede);
  EXPECT_LE(shmem_s.put_overhead, gasnet_s.put_overhead);
  EXPECT_LT(gasnet_s.put_overhead, mpi_s.put_overhead);
  // Cray SHMEM beats GASNet on Cray machines at small sizes.
  auto shmem_t = sw_profile(Library::kShmemCray, Machine::kTitan);
  auto gasnet_t = sw_profile(Library::kGasnet, Machine::kTitan);
  EXPECT_LT(shmem_t.put_overhead, gasnet_t.put_overhead);
  // SHMEM achieves the best large-message efficiency (Figure 3).
  EXPECT_GT(shmem_s.bw_efficiency, gasnet_s.bw_efficiency);
  EXPECT_GT(shmem_s.bw_efficiency, mpi_s.bw_efficiency);
  // Only DMAPP-based stacks have hardware strided transfers (§V-B-2).
  EXPECT_TRUE(sw_profile(Library::kShmemCray, Machine::kXC30).hw_strided);
  EXPECT_FALSE(sw_profile(Library::kShmemMvapich, Machine::kStampede).hw_strided);
  // GASNet has no remote atomics (§III): AM emulation.
  EXPECT_FALSE(gasnet_s.nic_amo);
  EXPECT_TRUE(shmem_s.nic_amo);
  // Native SHMEM selection.
  EXPECT_EQ(native_shmem(Machine::kStampede), Library::kShmemMvapich);
  EXPECT_EQ(native_shmem(Machine::kTitan), Library::kShmemCray);
}
