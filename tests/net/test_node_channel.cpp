// net::NodeChannel unit tests: the NUMA topology mapping (contiguous core ->
// domain, slice placement policies), the asymmetric local/remote cost model,
// SPSC ring FIFO + backpressure + wraparound accounting, and per-target AMO
// serialization. The channel is a pure timing oracle — no engine, no memory
// movement — so every case is plain arithmetic against the machine profile.
#include "net/node_channel.hpp"

#include <gtest/gtest.h>

#include "net/profiles.hpp"

using net::MachineProfile;
using net::NodeChannel;
using net::NodeRoundTrip;
using net::NodeTransportOptions;
using net::NumaPlacement;
using net::RingPush;

namespace {

MachineProfile stampede() {
  return net::machine_profile(net::Machine::kStampede);  // 16 cores, 2 domains
}

NodeTransportOptions on(NodeTransportOptions o = {}) {
  o.enabled = true;
  return o;
}

}  // namespace

TEST(NodeChannel, CoreToDomainMappingIsContiguous) {
  NodeChannel ch(stampede(), 64, on());
  ASSERT_EQ(ch.numa_domains(), 2);
  // 16 cores, 2 sockets: local ranks 0-7 -> domain 0, 8-15 -> domain 1.
  for (int local = 0; local < 16; ++local) {
    EXPECT_EQ(ch.domain_of(local), local < 8 ? 0 : 1) << "local " << local;
  }
  // The mapping repeats per node: pe 16 is node 1's core 0.
  EXPECT_EQ(ch.domain_of(16), 0);
  EXPECT_EQ(ch.domain_of(25), 1);
}

TEST(NodeChannel, PlacementPoliciesPlaceSlicesWhereAdvertised) {
  NodeTransportOptions local = on();
  local.placement = NumaPlacement::kLocalDomain;
  NodeTransportOptions inter = on();
  inter.placement = NumaPlacement::kInterleave;
  NodeTransportOptions dom0 = on();
  dom0.placement = NumaPlacement::kDomain0;

  NodeChannel first_touch(stampede(), 32, local);
  NodeChannel interleave(stampede(), 32, inter);
  NodeChannel naive(stampede(), 32, dom0);
  for (int pe = 0; pe < 32; ++pe) {
    // First-touch: a PE's slice lives with its own cores.
    EXPECT_EQ(first_touch.segment_domain(pe), first_touch.domain_of(pe));
    EXPECT_TRUE(first_touch.numa_local(pe, pe));
    // Interleave: consecutive local ranks alternate domains.
    EXPECT_EQ(interleave.segment_domain(pe), (pe % 16) % 2);
    // Naive allocator: one arena on domain 0.
    EXPECT_EQ(naive.segment_domain(pe), 0);
  }
  // Under kDomain0, only domain-0 cores access their slices locally.
  EXPECT_TRUE(naive.numa_local(0, 9));    // core domain 0 -> slice domain 0
  EXPECT_FALSE(naive.numa_local(9, 9));   // socket-1 core pays the link
}

TEST(NodeChannel, CrossDomainAccessCostsMore) {
  NodeChannel ch(stampede(), 32, on());
  const MachineProfile& mp = ch.machine();
  // pe 0 and pe 1 share domain 0; pe 9 lives in domain 1.
  EXPECT_EQ(ch.visibility(0, 1), mp.numa_local_latency);
  EXPECT_EQ(ch.visibility(0, 9), mp.numa_remote_latency);
  EXPECT_LT(mp.numa_local_latency, mp.numa_remote_latency);
  EXPECT_DOUBLE_EQ(ch.bytes_per_ns(0, 1), mp.numa_local_bytes_per_ns);
  EXPECT_DOUBLE_EQ(ch.bytes_per_ns(0, 9), mp.numa_remote_bytes_per_ns);

  const std::size_t n = 64 << 10;
  EXPECT_LT(ch.copy_cost(0, 1, n), ch.copy_cost(0, 9, n));
  EXPECT_LT(ch.copy_cost(0, 1, 1024), ch.copy_cost(0, 1, n));
  // Strided/scatter add per-element pointer math on top of the copy.
  EXPECT_EQ(ch.strided_cost(0, 1, 8, 100),
            ch.copy_cost(0, 1, 800) + 100 * NodeChannel::kElemGap);
  EXPECT_EQ(ch.scatter_cost(0, 1, 800, 10),
            ch.copy_cost(0, 1, 800) + 10 * NodeChannel::kElemGap);
}

TEST(NodeChannel, RingPushPricesStoreVisibilityPop) {
  NodeChannel ch(stampede(), 32, on());
  const RingPush p = ch.push(0, 1, 8, /*now=*/1000, /*write_cost=*/10,
                             /*pop_cost=*/NodeChannel::kRingPop);
  EXPECT_EQ(p.slots, 1);
  EXPECT_FALSE(p.stalled);
  EXPECT_EQ(p.producer_done, 1000 + 10);
  EXPECT_EQ(p.delivered, p.producer_done + ch.machine().numa_local_latency +
                             NodeChannel::kRingPop);
  EXPECT_EQ(ch.ring_pushes(), 1u);
  EXPECT_EQ(ch.ring_stalls(), 0u);
}

TEST(NodeChannel, MultiSlotMessagesConsumeProportionalSlots) {
  NodeTransportOptions o = on();
  o.slot_bytes = 128;
  NodeChannel ch(stampede(), 32, o);
  EXPECT_EQ(ch.slots_for(0), 1);
  EXPECT_EQ(ch.slots_for(128), 1);
  EXPECT_EQ(ch.slots_for(129), 2);
  EXPECT_EQ(ch.ring_write_cost(512), 4 * NodeChannel::kSlotWrite);
  const RingPush p = ch.push(0, 1, 512, 0, ch.ring_write_cost(512), 0);
  EXPECT_EQ(p.slots, 4);
}

TEST(NodeChannel, FullRingStallsProducerUntilConsumerRetires) {
  NodeTransportOptions o = on();
  o.ring_slots = 4;
  o.slot_bytes = 64;
  NodeChannel ch(stampede(), 32, o);
  // Four one-slot pushes at t=0 fill the ring without stalling.
  sim::Time first_retire = 0;
  for (int i = 0; i < 4; ++i) {
    const RingPush p = ch.push(0, 1, 8, 0, 10, 10);
    EXPECT_FALSE(p.stalled) << "push " << i;
    if (i == 0) first_retire = p.delivered;
  }
  // The fifth reuses slot 0 and must wait for its retirement.
  const RingPush p = ch.push(0, 1, 8, 0, 10, 10);
  EXPECT_TRUE(p.stalled);
  EXPECT_EQ(p.producer_done, first_retire + 10);
  EXPECT_EQ(ch.ring_stalls(), 1u);
  EXPECT_EQ(ch.ring_wraps(), 1u);  // head crossed the ring boundary once
}

TEST(NodeChannel, WraparoundAccountingCountsRevolutions) {
  NodeTransportOptions o = on();
  o.ring_slots = 4;
  o.slot_bytes = 64;
  NodeChannel ch(stampede(), 32, o);
  for (int i = 0; i < 12; ++i) (void)ch.push(0, 1, 8, i * 1'000'000, 10, 10);
  EXPECT_EQ(ch.ring_pushes(), 12u);
  EXPECT_EQ(ch.ring_wraps(), 3u);
  // Widely spaced pushes never contend even while wrapping.
  EXPECT_EQ(ch.ring_stalls(), 0u);
}

TEST(NodeChannel, RingsArePerOrderedPair) {
  NodeTransportOptions o = on();
  o.ring_slots = 2;
  NodeChannel ch(stampede(), 32, o);
  // Fill the 0->1 ring; the reverse direction and other pairs stay empty.
  (void)ch.push(0, 1, 8, 0, 10, 10);
  (void)ch.push(0, 1, 8, 0, 10, 10);
  EXPECT_FALSE(ch.push(1, 0, 8, 0, 10, 10).stalled);
  EXPECT_FALSE(ch.push(2, 1, 8, 0, 10, 10).stalled);
  EXPECT_TRUE(ch.push(0, 1, 8, 0, 10, 10).stalled);
}

TEST(NodeChannel, AmoSerializesPerTargetLine) {
  NodeChannel ch(stampede(), 32, on());
  const sim::Time vis = ch.machine().numa_local_latency;
  const NodeRoundTrip a =
      ch.amo(0, 2, 0, NodeChannel::kAmoIssue, NodeChannel::kAmoRmw);
  EXPECT_EQ(a.exec, NodeChannel::kAmoIssue + vis + NodeChannel::kAmoRmw);
  EXPECT_EQ(a.complete, a.exec + vis);
  // A concurrent AMO from another PE to the same line queues behind it.
  const NodeRoundTrip b =
      ch.amo(1, 2, 0, NodeChannel::kAmoIssue, NodeChannel::kAmoRmw);
  EXPECT_EQ(b.exec, a.exec + NodeChannel::kAmoRmw);
  // A different target's line is independent.
  const NodeRoundTrip c =
      ch.amo(1, 3, 0, NodeChannel::kAmoIssue, NodeChannel::kAmoRmw);
  EXPECT_EQ(c.exec, NodeChannel::kAmoIssue + vis + NodeChannel::kAmoRmw);
}

TEST(NodeChannel, GetSnapshotsAtExecAndStreamsBack) {
  NodeChannel ch(stampede(), 32, on());
  const NodeRoundTrip rt = ch.get(0, 9, 4096, /*now=*/500, /*issue_cost=*/20,
                                  /*extra_copy=*/14);
  EXPECT_EQ(rt.exec, 520);
  EXPECT_EQ(rt.complete,
            rt.exec + ch.machine().numa_remote_latency +
                sim::from_ns(4096.0 / ch.machine().numa_remote_bytes_per_ns) +
                14);
}
