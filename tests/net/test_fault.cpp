// net::FaultInjector + faulty-Fabric unit tests: determinism of the verdict
// stream, statistical sanity of the configured rates, and the reliable-
// delivery retransmit loop the Fabric runs when an injector is attached.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/profiles.hpp"

namespace {

net::FaultPlan mixed_plan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.with_seed(seed)
      .with_loss(0.10)
      .with_duplicates(0.05)
      .with_delays(0.20, 100, 5'000);
  return plan;
}

}  // namespace

TEST(FaultInjector, SamePlanYieldsIdenticalVerdictStream) {
  const net::FaultPlan plan = mixed_plan(42);
  net::FaultInjector a(plan, 8, 2);
  net::FaultInjector b(plan, 8, 2);
  for (int i = 0; i < 5'000; ++i) {
    const sim::Time t = 100 * i;
    const auto va = a.judge(i % 8, (i + 3) % 8, t);
    const auto vb = b.judge(i % 8, (i + 3) % 8, t);
    ASSERT_EQ(va.drop, vb.drop) << "judge " << i;
    ASSERT_EQ(va.duplicate, vb.duplicate) << "judge " << i;
    ASSERT_EQ(va.extra_delay, vb.extra_delay) << "judge " << i;
  }
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
  EXPECT_EQ(a.counters().dropped, b.counters().dropped);
  EXPECT_EQ(a.counters().duplicated, b.counters().duplicated);
  EXPECT_EQ(a.counters().delayed, b.counters().delayed);
  // All three fault classes actually fired at these rates.
  EXPECT_GT(a.counters().dropped, 0u);
  EXPECT_GT(a.counters().duplicated, 0u);
  EXPECT_GT(a.counters().delayed, 0u);
}

TEST(FaultInjector, ResetReplaysTheIdenticalVerdictStream) {
  net::FaultInjector inj(mixed_plan(42), 8, 2);
  auto drive = [&] {
    for (int i = 0; i < 5'000; ++i) {
      (void)inj.judge(i % 8, (i + 3) % 8, 100 * i);
    }
    return inj.trace_hash();
  };
  const std::uint64_t first = drive();
  const auto kills_before = inj.kill_time(3);
  inj.reset();
  EXPECT_EQ(inj.counters().judged, 0u);
  EXPECT_EQ(inj.trace_hash(), 0u);
  // The kill schedule is immutable plan state and survives the rewind.
  EXPECT_EQ(inj.kill_time(3), kills_before);
  EXPECT_EQ(drive(), first);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  net::FaultInjector a(mixed_plan(1), 4, 2);
  net::FaultInjector b(mixed_plan(2), 4, 2);
  for (int i = 0; i < 1'000; ++i) {
    (void)a.judge(0, 2, 10 * i);
    (void)b.judge(0, 2, 10 * i);
  }
  EXPECT_NE(a.trace_hash(), b.trace_hash());
}

TEST(FaultInjector, DropRateIsApproximatelyRespected) {
  net::FaultPlan plan;
  plan.with_seed(7).with_loss(0.25);
  net::FaultInjector inj(plan, 4, 2);
  const int n = 20'000;
  for (int i = 0; i < n; ++i) (void)inj.judge(0, 2, i);
  const double observed =
      static_cast<double>(inj.counters().dropped) / static_cast<double>(n);
  EXPECT_NEAR(observed, 0.25, 0.02);
  EXPECT_EQ(inj.counters().judged, static_cast<std::uint64_t>(n));
}

TEST(FaultInjector, KillScheduleGatesPeDeath) {
  net::FaultPlan plan;
  plan.kill_pe(3, 5'000);
  net::FaultInjector inj(plan, 8, 2);
  EXPECT_FALSE(inj.pe_dead(3, 4'999));
  EXPECT_TRUE(inj.pe_dead(3, 5'000));
  EXPECT_TRUE(inj.pe_dead(3, 1'000'000));
  EXPECT_EQ(inj.kill_time(3), 5'000);
  EXPECT_FALSE(inj.pe_dead(0, net::FaultInjector::kNever - 1));
  EXPECT_EQ(inj.kill_time(0), net::FaultInjector::kNever);
}

TEST(FaultInjector, NodeKillTakesAllItsPes) {
  net::FaultPlan plan;
  plan.kill_node(1, 9'000);  // with 2 cores/node: pes 2 and 3
  net::FaultInjector inj(plan, 6, 2);
  EXPECT_TRUE(inj.pe_dead(2, 9'000));
  EXPECT_TRUE(inj.pe_dead(3, 9'000));
  EXPECT_FALSE(inj.pe_dead(0, 9'000));
  EXPECT_FALSE(inj.pe_dead(4, 9'000));
}

TEST(FaultInjector, BackoffEscalatesThenCaps) {
  net::FaultInjector inj(mixed_plan(3), 4, 2);
  const sim::Time d0 = inj.backoff_delay(0, 1'000.0);
  const sim::Time d3 = inj.backoff_delay(3, 1'000.0);
  const sim::Time d6 = inj.backoff_delay(6, 1'000.0);
  const sim::Time d9 = inj.backoff_delay(9, 1'000.0);
  EXPECT_LT(d0, d3);
  EXPECT_LT(d3, d6);
  // Past max_backoff_exp the factor stops growing; only jitter differs.
  EXPECT_LE(d9, d6 + d6 / 4);
  EXPECT_GE(d9, d6 - d6 / 4);
}

// ---------------------------------------------------------------------------
// Fabric integration
// ---------------------------------------------------------------------------

namespace {

struct FabricPair {
  net::MachineProfile mp = net::machine_profile(net::Machine::kXC30);
  net::SwProfile sw =
      net::sw_profile(net::Library::kShmemCray, net::Machine::kXC30);
  int npes = 0;
  int remote = 0;  // a PE on another node than PE 0

  FabricPair() {
    npes = 2 * mp.cores_per_node;
    remote = mp.cores_per_node;  // first PE of node 1
  }
};

}  // namespace

TEST(FaultyFabric, ZeroRateInjectorIsBitIdenticalToCleanFabric) {
  FabricPair fp;
  net::Fabric clean(fp.mp, fp.npes);
  net::Fabric faulty(fp.mp, fp.npes);
  net::FaultInjector inj(net::FaultPlan{}, fp.npes, fp.mp.cores_per_node);
  faulty.set_fault_injector(&inj);
  sim::Time t = 0;
  for (std::size_t bytes : {8u, 512u, 65'536u}) {
    const auto c0 = clean.submit_put(0, fp.remote, bytes, fp.sw, t);
    const auto c1 = faulty.submit_put(0, fp.remote, bytes, fp.sw, t);
    EXPECT_EQ(c0.local_complete, c1.local_complete) << bytes;
    EXPECT_EQ(c0.delivered, c1.delivered) << bytes;
    EXPECT_TRUE(c1.ok);
    EXPECT_EQ(c1.attempts, 1);
    const auto g0 = clean.submit_get(0, fp.remote, bytes, fp.sw, t);
    const auto g1 = faulty.submit_get(0, fp.remote, bytes, fp.sw, t);
    EXPECT_EQ(g0.complete, g1.complete) << bytes;
    const auto a0 = clean.submit_amo(0, fp.remote, fp.sw, t);
    const auto a1 = faulty.submit_amo(0, fp.remote, fp.sw, t);
    EXPECT_EQ(a0.complete, a1.complete) << bytes;
    t = c0.delivered + 10'000;
  }
}

TEST(FaultyFabric, TotalLossExhaustsRetransmitsAndGivesUp) {
  FabricPair fp;
  net::FaultPlan plan;
  plan.with_seed(11).with_loss(1.0);
  net::Fabric fab(fp.mp, fp.npes);
  net::FaultInjector inj(plan, fp.npes, fp.mp.cores_per_node);
  fab.set_fault_injector(&inj);
  const auto c = fab.submit_put(0, fp.remote, 4'096, fp.sw, 0);
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.attempts, 1 + plan.retry.max_retransmits);
  // The give-up point reflects all the timeouts burned waiting for acks.
  EXPECT_GT(c.delivered, c.local_complete);
  const auto g = fab.submit_get(0, fp.remote, 4'096, fp.sw, 0);
  EXPECT_FALSE(g.ok);
  const auto a = fab.submit_amo(0, fp.remote, fp.sw, 0);
  EXPECT_FALSE(a.ok);
}

TEST(FaultyFabric, ModerateLossAlwaysDeliversWithRetries) {
  FabricPair fp;
  net::FaultPlan plan;
  plan.with_seed(13).with_loss(0.30);
  net::Fabric fab(fp.mp, fp.npes);
  net::FaultInjector inj(plan, fp.npes, fp.mp.cores_per_node);
  fab.set_fault_injector(&inj);
  sim::Time t = 0;
  std::int64_t total_attempts = 0;
  const int ops = 200;
  for (int i = 0; i < ops; ++i) {
    const auto c = fab.submit_put(0, fp.remote, 1'024, fp.sw, t);
    ASSERT_TRUE(c.ok) << "op " << i;
    total_attempts += c.attempts;
    t = c.delivered;
  }
  // 30% loss must have forced a healthy number of retransmissions.
  EXPECT_GT(total_attempts, ops + ops / 10);
}

TEST(FaultyFabric, DeadDestinationFailsEveryOp) {
  FabricPair fp;
  net::FaultPlan plan;
  plan.kill_pe(fp.remote, 0);  // dead from t=0
  net::Fabric fab(fp.mp, fp.npes);
  net::FaultInjector inj(plan, fp.npes, fp.mp.cores_per_node);
  fab.set_fault_injector(&inj);
  EXPECT_FALSE(fab.submit_put(0, fp.remote, 64, fp.sw, 1'000).ok);
  EXPECT_FALSE(fab.submit_get(0, fp.remote, 64, fp.sw, 1'000).ok);
  EXPECT_FALSE(fab.submit_amo(0, fp.remote, fp.sw, 1'000).ok);
  // A live destination on the same fabric still works.
  EXPECT_TRUE(fab.submit_put(0, fp.remote + 1, 64, fp.sw, 1'000).ok);
}

TEST(FaultyFabric, IntraNodeTrafficBypassesInjection) {
  FabricPair fp;
  if (fp.mp.cores_per_node < 2) GTEST_SKIP() << "one core per node";
  net::FaultPlan plan;
  plan.with_seed(17).with_loss(1.0);
  net::Fabric fab(fp.mp, fp.npes);
  net::FaultInjector inj(plan, fp.npes, fp.mp.cores_per_node);
  fab.set_fault_injector(&inj);
  const auto c = fab.submit_put(0, 1, 256, fp.sw, 0);
  EXPECT_TRUE(c.ok);
  EXPECT_EQ(c.attempts, 1);
  EXPECT_EQ(inj.counters().judged, 0u);
}

TEST(FaultyFabric, DuplicatesChargeExtraLinkOccupancy) {
  FabricPair fp;
  net::FaultPlan dup_plan;
  dup_plan.with_seed(19).with_duplicates(1.0);
  net::Fabric clean(fp.mp, fp.npes);
  net::Fabric duped(fp.mp, fp.npes);
  net::FaultInjector inj(dup_plan, fp.npes, fp.mp.cores_per_node);
  duped.set_fault_injector(&inj);
  // Back-to-back submissions at t=0: the duplicated stream must queue behind
  // its own ghost copies and finish later than the clean stream.
  sim::Time last_clean = 0;
  sim::Time last_duped = 0;
  for (int i = 0; i < 10; ++i) {
    last_clean = clean.submit_put(0, fp.remote, 8'192, fp.sw, 0).delivered;
    last_duped = duped.submit_put(0, fp.remote, 8'192, fp.sw, 0).delivered;
  }
  EXPECT_GT(last_duped, last_clean);
}

// ---------------------------------------------------------------------------
// CAF_FD_* environment validation: a malformed override is a configuration
// error (std::invalid_argument naming the variable), never a silent default.
// ---------------------------------------------------------------------------

namespace {

/// Sets one environment variable for the duration of a scope and always
/// restores the previous state, so a throwing apply_env() cannot leak a
/// poisoned value into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

}  // namespace

TEST(FaultEnv, WellFormedOverridesAreApplied) {
  ScopedEnv period("CAF_FD_PERIOD_NS", "25000");
  ScopedEnv miss("CAF_FD_MISS", "7");
  ScopedEnv grace("CAF_FD_GRACE_NS", "0");
  ScopedEnv adaptive("CAF_FD_ADAPTIVE", "no");
  net::FaultPlan plan;
  plan.apply_env();
  EXPECT_EQ(plan.fd.heartbeat_period, 25'000);
  EXPECT_EQ(plan.fd.miss_threshold, 7);
  EXPECT_EQ(plan.fd.suspicion_grace, 0);
  EXPECT_FALSE(plan.retry.adaptive);
}

TEST(FaultEnv, UnitSuffixIsRejectedNotTruncated) {
  // strtoll would happily parse the "50" prefix of "50us"; the validator
  // must refuse the trailing garbage instead of installing 50ns.
  ScopedEnv period("CAF_FD_PERIOD_NS", "50us");
  net::FaultPlan plan;
  EXPECT_THROW(plan.apply_env(), std::invalid_argument);
}

TEST(FaultEnv, NonNumericValueIsRejected) {
  ScopedEnv miss("CAF_FD_MISS", "three");
  net::FaultPlan plan;
  EXPECT_THROW(plan.apply_env(), std::invalid_argument);
}

TEST(FaultEnv, OutOfRangeValuesAreRejected) {
  {
    ScopedEnv period("CAF_FD_PERIOD_NS", "0");  // must be positive
    net::FaultPlan plan;
    EXPECT_THROW(plan.apply_env(), std::invalid_argument);
  }
  {
    ScopedEnv miss("CAF_FD_MISS", "-2");
    net::FaultPlan plan;
    EXPECT_THROW(plan.apply_env(), std::invalid_argument);
  }
  {
    ScopedEnv grace("CAF_FD_GRACE_NS", "-1");  // grace may be 0, not < 0
    net::FaultPlan plan;
    EXPECT_THROW(plan.apply_env(), std::invalid_argument);
  }
}

TEST(FaultEnv, MalformedBooleanIsRejected) {
  ScopedEnv adaptive("CAF_FD_ADAPTIVE", "maybe");
  net::FaultPlan plan;
  EXPECT_THROW(plan.apply_env(), std::invalid_argument);
}

TEST(FaultEnv, InvertedRtoClampIsRejected) {
  ScopedEnv lo("CAF_FD_RTO_MIN_NS", "500000");
  ScopedEnv hi("CAF_FD_RTO_MAX_NS", "10000");
  net::FaultPlan plan;
  EXPECT_THROW(plan.apply_env(), std::invalid_argument);
}

TEST(FaultEnv, DiagnosticNamesTheVariableAndValue) {
  ScopedEnv period("CAF_FD_PERIOD_NS", "50us");
  net::FaultPlan plan;
  try {
    plan.apply_env();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CAF_FD_PERIOD_NS"), std::string::npos) << what;
    EXPECT_NE(what.find("50us"), std::string::npos) << what;
  }
}
