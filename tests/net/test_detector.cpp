// net::FailureDetector unit tests: the alive -> suspect -> failed state
// machine against modeled heartbeats, straggler immunity, suspect recovery
// across a partition heal, transport-evidence declaration, and same-seed
// determinism of the declared membership view.
#include <gtest/gtest.h>

#include <string>

#include "net/detector.hpp"
#include "net/fault.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace {

std::uint64_t fd_counter(const char* name) {
  return obs::registry().counter(0, name);
}

/// Arms `plan` on a fresh engine (no fibers: the detector's sweeps and the
/// kill schedule are plain engine events) and runs it to quiescence.
struct DetectorRig {
  sim::Engine engine{64 * 1024};
  net::FaultInjector inj;

  DetectorRig(net::FaultPlan plan, int npes, int cores_per_node)
      : inj(std::move(plan), npes, cores_per_node) {
    obs::reset();
    inj.arm(engine);
  }

  net::FailureDetector& det() { return *inj.detector(); }
};

}  // namespace

TEST(FailureDetector, DeclaresKilledPeThroughHeartbeatLoss) {
  net::FaultPlan plan;
  plan.kill_pe(2, 300'000);
  DetectorRig rig(std::move(plan), 8, 2);
  EXPECT_TRUE(rig.engine.deferred_failure_declaration());
  rig.engine.run();
  // The kill itself no longer declares; the detector did, after the suspect
  // threshold (4 x 50 us past the last beacon) plus the suspicion grace.
  EXPECT_TRUE(rig.engine.pe_declared(2));
  EXPECT_EQ(rig.engine.declared_count(), 1);
  EXPECT_GE(rig.engine.membership_epoch(), 1u);
  EXPECT_EQ(rig.det().state_of(2), net::FailureDetector::State::kFailed);
  ASSERT_EQ(rig.engine.declared_failures().size(), 1u);
  const auto& f = rig.engine.declared_failures()[0];
  EXPECT_EQ(f.pe, 2);
  EXPECT_GT(f.at, sim::Time{300'000});  // detection lags ground truth
  EXPECT_EQ(fd_counter("fd.declared"), 1u);
  EXPECT_EQ(fd_counter("fd.false_positives"), 0u);
  EXPECT_EQ(fd_counter("fd.detect_count"), 1u);
  EXPECT_GT(fd_counter("fd.detect_latency_ns_total"), 0u);
  // Everyone else stayed alive the whole run.
  for (int pe = 0; pe < 8; ++pe) {
    if (pe == 2) continue;
    EXPECT_FALSE(rig.engine.pe_declared(pe)) << "pe " << pe;
  }
}

TEST(FailureDetector, StragglerWithinGraceIsNeverSuspected) {
  net::FaultPlan plan;
  plan.straggle_pe(1, 8.0);
  // A kill elsewhere keeps the sweeps running long enough that a straggler
  // false positive would have had every opportunity to fire.
  plan.kill_pe(5, 400'000);
  DetectorRig rig(std::move(plan), 8, 2);
  // The suspicion threshold auto-raises above the slowest beacon interval.
  EXPECT_GE(rig.det().suspect_after(),
            sim::from_ns(1.5 * 8.0 * 50'000.0));
  rig.engine.run();
  EXPECT_EQ(rig.det().state_of(1), net::FailureDetector::State::kAlive);
  EXPECT_FALSE(rig.engine.pe_declared(1));
  EXPECT_TRUE(rig.engine.pe_declared(5));
  EXPECT_EQ(fd_counter("fd.false_positives"), 0u);
}

TEST(FailureDetector, SuspectRecoversWhenPartitionHeals) {
  net::FaultPlan plan;
  plan.partition_nodes({1}, 100'000, 500'000);  // pes 2,3 cut off, then back
  DetectorRig rig(std::move(plan), 4, 2);
  rig.engine.run();
  // Both far-side PEs went suspect during the cut, then their first
  // post-heal beacon recovered them; nobody was declared.
  EXPECT_EQ(rig.det().state_of(2), net::FailureDetector::State::kAlive);
  EXPECT_EQ(rig.det().state_of(3), net::FailureDetector::State::kAlive);
  EXPECT_EQ(rig.engine.declared_count(), 0);
  EXPECT_GE(fd_counter("fd.suspects"), 2u);
  EXPECT_GE(fd_counter("fd.recoveries"), 2u);
  EXPECT_EQ(fd_counter("fd.declared"), 0u);
  EXPECT_EQ(fd_counter("fd.false_positives"), 0u);
}

TEST(FailureDetector, PermanentPartitionDeclaresTheFarSide) {
  net::FaultPlan plan;
  plan.partition_nodes({2}, 200'000);  // pes 4,5; never heals
  DetectorRig rig(std::move(plan), 6, 2);
  rig.engine.run();
  EXPECT_TRUE(rig.engine.pe_declared(4));
  EXPECT_TRUE(rig.engine.pe_declared(5));
  EXPECT_EQ(rig.engine.declared_count(), 2);
  // Unreachable != wrongly declared: the far side of an unhealed partition
  // is a correct declaration, not a false positive.
  EXPECT_EQ(fd_counter("fd.false_positives"), 0u);
}

TEST(FailureDetector, ExhaustionEvidenceDeclaresImmediately) {
  net::FaultPlan plan;
  plan.straggle_pe(3, 2.0);  // any grey feature arms the detector
  DetectorRig rig(std::move(plan), 8, 2);
  rig.engine.schedule(10'000, [&] {
    rig.det().report_exhaustion(0, 6, sim::Time{10'000});
  });
  rig.engine.run();
  EXPECT_TRUE(rig.engine.pe_declared(6));
  EXPECT_EQ(rig.det().state_of(6), net::FailureDetector::State::kFailed);
  EXPECT_EQ(fd_counter("fd.evidence_declared"), 1u);
  // PE 6 was alive and reachable per the plan: this is the false-positive
  // path the chaos invariants watch.
  EXPECT_EQ(fd_counter("fd.false_positives"), 1u);
}

TEST(FailureDetector, SameSeedYieldsIdenticalDeclarations) {
  auto run_once = [](std::uint64_t seed) {
    net::FaultPlan plan;
    plan.with_seed(seed)
        .kill_pe(1, 250'000)
        .flaky_link(0, 1, 0.30, 0.5, 0, net::kTimeNever)
        .straggle_pe(4, 3.0);
    DetectorRig rig(std::move(plan), 6, 2);
    rig.engine.run();
    return rig.engine.declared_failures();
  };
  const auto a = run_once(77);
  const auto b = run_once(77);
  const auto c = run_once(78);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pe, b[i].pe);
    EXPECT_EQ(a[i].at, b[i].at);
  }
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].pe, 1);
  ASSERT_EQ(c.size(), 1u);
  // A different seed shifts the beacon-loss draws; detection time may move
  // but the declared membership itself must not.
  EXPECT_EQ(c[0].pe, 1);
}

TEST(FailureDetector, SnapshotNamesSuspectsAndEpoch) {
  net::FaultPlan plan;
  plan.kill_pe(3, 100'000);
  DetectorRig rig(std::move(plan), 4, 2);
  rig.engine.run();
  const std::string snap = rig.det().snapshot();
  EXPECT_NE(snap.find("failure detector:"), std::string::npos);
  EXPECT_NE(snap.find("epoch="), std::string::npos);
  EXPECT_NE(snap.find("[pe 3] FAILED"), std::string::npos);
}

TEST(FailureDetector, TunablesApplyFromEnvironment) {
  ::setenv("CAF_FD_PERIOD_NS", "25000", 1);
  ::setenv("CAF_FD_MISS", "8", 1);
  ::setenv("CAF_FD_GRACE_NS", "400000", 1);
  ::setenv("CAF_FD_RTO_MIN_NS", "7000", 1);
  ::setenv("CAF_FD_RTO_MAX_NS", "900000", 1);
  ::setenv("CAF_FD_ADAPTIVE", "0", 1);
  ::setenv("CAF_FD_MAX_RETRANS", "5", 1);
  net::FaultPlan plan;
  plan.apply_env();
  EXPECT_EQ(plan.fd.heartbeat_period, 25'000);
  EXPECT_EQ(plan.fd.miss_threshold, 8);
  EXPECT_EQ(plan.fd.suspicion_grace, 400'000);
  EXPECT_EQ(plan.retry.rto_min, 7'000);
  EXPECT_EQ(plan.retry.rto_max, 900'000);
  EXPECT_FALSE(plan.retry.adaptive);
  EXPECT_EQ(plan.retry.max_retransmits, 5);
  ::unsetenv("CAF_FD_PERIOD_NS");
  ::unsetenv("CAF_FD_MISS");
  ::unsetenv("CAF_FD_GRACE_NS");
  ::unsetenv("CAF_FD_RTO_MIN_NS");
  ::unsetenv("CAF_FD_RTO_MAX_NS");
  ::unsetenv("CAF_FD_ADAPTIVE");
  ::unsetenv("CAF_FD_MAX_RETRANS");
  // And the detector honors them.
  plan.kill_pe(0, 50'000);
  DetectorRig rig(std::move(plan), 4, 2);
  EXPECT_EQ(rig.det().heartbeat_period(), 25'000);
  EXPECT_EQ(rig.det().suspicion_grace(), 400'000);
  EXPECT_EQ(rig.det().suspect_after(), sim::Time{8} * 25'000);
}

TEST(FaultInjector, AdaptiveRtoTracksSampledRtt) {
  net::FaultPlan plan;
  plan.with_seed(11).straggle_pe(0, 1.0);  // no-op straggler, keeps plan grey
  plan.retry.jitter = 0.0;                 // deterministic timeouts
  net::FaultInjector inj(plan, 4, 2);
  // Unsampled pair: static backoff base.
  const sim::Time cold = inj.retrans_timeout(0, 2, 0, 1'000.0);
  // Feed clean first-attempt samples; Karn's rule ignores the ambiguous one.
  for (int i = 0; i < 8; ++i) inj.record_rtt(0, 2, 2'000, /*attempts=*/1);
  inj.record_rtt(0, 2, 500'000, /*attempts=*/3);  // ignored
  EXPECT_GT(inj.srtt(0, 2), 0);
  EXPECT_LT(inj.srtt(0, 2), 3'000);
  const sim::Time warm = inj.retrans_timeout(0, 2, 0, 1'000.0);
  // srtt + 4*rttvar on a ~2 us RTT sits at the 5 us floor < the static
  // (20 us + 2 us) base.
  EXPECT_LT(warm, cold);
  EXPECT_GE(warm, plan.retry.rto_min);
  // Pairs without samples keep the static base.
  EXPECT_EQ(inj.retrans_timeout(2, 0, 0, 1'000.0), cold);
}
