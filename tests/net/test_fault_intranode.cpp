// Regression tests for the same-node fault bypass in net::Fabric (the
// `faults_ == nullptr || same_node(...)` short-circuit): with
// FaultPlan::honor_intra_node_faults(), same-node traffic must observe
// scheduled PE kills (the shared segment detaches — stores fault instead of
// landing) and straggler dilation (the copy is producer CPU work). With the
// flag at its default, legacy behavior is preserved bit-for-bit so every
// checked-in golden trace and BENCH baseline stays valid.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fabric/domain.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/profiles.hpp"

using namespace fabric;

namespace {

// Domain-level world on Stampede (16 cores/node): PEs 0..15 share node 0.
struct World {
  sim::Engine engine;
  net::Fabric fabric;
  Domain domain;
  std::unique_ptr<net::FaultInjector> injector;

  explicit World(net::FaultPlan plan = {}, int npes = 32)
      : fabric(net::machine_profile(net::Machine::kStampede), npes),
        domain(engine, fabric,
               net::sw_profile(net::Library::kShmemMvapich,
                               net::Machine::kStampede),
               1 << 20) {
    if (plan.active()) {
      injector = std::make_unique<net::FaultInjector>(
          plan, npes, fabric.profile().cores_per_node);
      fabric.set_fault_injector(injector.get());
      injector->arm(engine);
    }
  }
};

net::FaultPlan kill_plan(bool honor_intra_node) {
  net::FaultPlan plan;
  plan.with_seed(0xFA17).kill_pe(/*pe=*/3, /*at=*/1'000);
  plan.intra_node_faults = honor_intra_node;
  return plan;
}

}  // namespace

TEST(IntraNodeFaults, OptInKillDetachesSameNodePutTarget) {
  World w(kill_plan(true));
  bool failed = false;
  w.engine.spawn(0, [&] {
    w.engine.advance(5'000);  // PE 3 (same node) is dead by now
    int v = 7;
    try {
      w.domain.put(3, 0, &v, sizeof v);
      w.domain.quiet();
    } catch (const PeerFailedError& e) {
      failed = true;
      EXPECT_STREQ(e.op(), "put");
      EXPECT_EQ(e.dst_pe(), 3);
      // Shared memory has no retransmit: the segment is gone, one attempt.
      EXPECT_EQ(e.attempts(), 1);
    }
  });
  w.engine.run();
  EXPECT_TRUE(failed) << "put into a dead same-node peer must fail";
  int got = 0;
  std::memcpy(&got, w.domain.segment(3), sizeof got);
  EXPECT_EQ(got, 0) << "the store must not land in the detached segment";
}

TEST(IntraNodeFaults, OptInKillFailsSameNodeGetAndAmo) {
  World w(kill_plan(true));
  int get_failures = 0;
  w.engine.spawn(0, [&] {
    w.engine.advance(5'000);
    int v = 0;
    try {
      w.domain.get(&v, 3, 0, sizeof v);
    } catch (const PeerFailedError& e) {
      ++get_failures;
      EXPECT_STREQ(e.op(), "get");
    }
    try {
      (void)w.domain.amo(AmoOp::kFetchAdd, 3, 0, 1);
    } catch (const PeerFailedError& e) {
      ++get_failures;
      EXPECT_STREQ(e.op(), "amo");
    }
  });
  w.engine.run();
  EXPECT_EQ(get_failures, 2);
}

TEST(IntraNodeFaults, OptInKillBeforeDeliveryStillLands) {
  // A put whose delivery completes before the scheduled kill is unaffected.
  World w(kill_plan(true));
  w.engine.spawn(0, [&] {
    int v = 11;
    w.domain.put(3, 0, &v, sizeof v);  // issued at t=0, delivered << 1000ns
    w.domain.quiet();
    EXPECT_LT(w.engine.now(), 1'000);
  });
  w.engine.run();
  int got = 0;
  std::memcpy(&got, w.domain.segment(3), sizeof got);
  EXPECT_EQ(got, 11);
}

TEST(IntraNodeFaults, DefaultBypassPreservesLegacySameNodeBehavior) {
  // With the flag at its default (off), a same-node put to a scheduled-dead
  // PE behaves exactly as on a fault-free fabric: it lands, and the virtual
  // timeline is bit-identical to a world with no injector at all.
  sim::Time with_faults = -1, without = -1;
  auto program = [](World& w, sim::Time* done) {
    w.engine.spawn(0, [&w, done] {
      w.engine.advance(5'000);
      std::vector<char> buf(4096, 'x');
      w.domain.put(3, 0, buf.data(), buf.size());
      w.domain.quiet();
      int v = 0;
      w.domain.get(&v, 3, 0, sizeof v);
      *done = w.engine.now();
    });
    w.engine.run();
  };
  {
    World w(kill_plan(false));
    program(w, &with_faults);
    char got = 0;
    std::memcpy(&got, w.domain.segment(3), 1);
    EXPECT_EQ(got, 'x') << "legacy bypass: the put still lands";
  }
  {
    World w;  // no injector
    program(w, &without);
  }
  EXPECT_EQ(with_faults, without)
      << "default-off must keep the same-node timeline bit-identical";
}

TEST(IntraNodeFaults, OptInStragglerDilatesSameNodeCopies) {
  // A straggler's shared-memory copy is producer CPU work and stretches by
  // the dilation factor; without the opt-in it runs at full speed (the bug
  // this suite pins down).
  auto timed_put = [](net::FaultPlan plan) {
    World w(std::move(plan));
    sim::Time done = -1;
    w.engine.spawn(0, [&] {
      std::vector<char> buf(256 << 10, 'y');  // big enough to dominate
      w.domain.put(1, 0, buf.data(), buf.size());
      w.domain.quiet();
      done = w.engine.now();
    });
    w.engine.run();
    return done;
  };
  net::FaultPlan slow;
  slow.with_seed(1).straggle_pe(0, 3.0);
  slow.intra_node_faults = true;
  net::FaultPlan legacy;
  legacy.with_seed(1).straggle_pe(0, 3.0);

  const sim::Time dilated = timed_put(slow);
  const sim::Time bypass = timed_put(legacy);
  const sim::Time clean = timed_put({});
  // Legacy behavior dilates only the CPU issue overhead (a few hundred ns);
  // the copy itself — the dominant term — ran at full speed. That gap is
  // the bug this flag fixes.
  EXPECT_LT(bypass - clean, (dilated - clean) / 10)
      << "default-off must keep the same-node copy undilated";
  EXPECT_GT(dilated, 2 * clean)
      << "opt-in must stretch the same-node copy by ~the dilation factor";
}

TEST(IntraNodeFaults, BuilderSetsTheFlag) {
  net::FaultPlan plan;
  EXPECT_FALSE(plan.intra_node_faults);
  plan.honor_intra_node_faults();
  EXPECT_TRUE(plan.intra_node_faults);
  net::FaultInjector inj(plan, 4, 2);
  EXPECT_TRUE(inj.intra_node_faults());
}
