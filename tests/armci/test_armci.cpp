// Tests for the ARMCI-like substrate: collective allocation, contiguous and
// multi-level strided transfers (PutS/GetS), Rmw, mutexes, fences.
#include "armci/armci.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "net/profiles.hpp"

using namespace armci;

namespace {

struct Harness {
  sim::Engine engine{64 * 1024};
  net::Fabric fabric;
  World world;

  explicit Harness(int nproc, net::Machine m = net::Machine::kStampede)
      : fabric(net::machine_profile(m), nproc),
        world(engine, fabric, net::sw_profile(net::Library::kArmci, m),
              1 << 20) {}

  void run(std::function<void()> main) {
    world.launch(std::move(main));
    engine.run();
  }
};

}  // namespace

TEST(Armci, CollectiveMallocSymmetricOffsets) {
  Harness h(8);
  std::vector<std::uint64_t> offs(8);
  h.run([&] {
    const std::uint64_t a = h.world.malloc_collective(128);
    const std::uint64_t b = h.world.malloc_collective(64);
    offs[h.world.me()] = a ^ (b << 20);
    h.world.free_collective(b);
    h.world.free_collective(a);
  });
  for (int i = 1; i < 8; ++i) EXPECT_EQ(offs[i], offs[0]);
}

TEST(Armci, PutGetFence) {
  Harness h(32);
  h.run([&] {
    const std::uint64_t off = h.world.malloc_collective(256);
    if (h.world.me() == 0) {
      std::vector<int> v(16);
      std::iota(v.begin(), v.end(), 90);
      h.world.put(16, off, v.data(), v.size() * sizeof(int));
      h.world.fence(16);
      std::vector<int> back(16, 0);
      h.world.get(back.data(), 16, off, back.size() * sizeof(int));
      EXPECT_EQ(back, v);
    }
    h.world.barrier();
  });
}

TEST(Armci, PutSOneLevelStride) {
  Harness h(32);
  h.run([&] {
    const std::uint64_t off = h.world.malloc_collective(4096);
    std::memset(h.world.base(h.world.me()) + off, 0, 4096);
    h.world.barrier();
    if (h.world.me() == 0) {
      // 8 runs of 8 bytes, destination stride 32 bytes.
      std::vector<std::int64_t> src(8);
      std::iota(src.begin(), src.end(), 100);
      StridedDesc d;
      d.stride_levels = 1;
      d.counts[0] = 8;
      d.counts[1] = 8;
      d.src_strides[0] = 8;
      d.dst_strides[0] = 32;
      h.world.puts(16, off, src.data(), d);
      h.world.all_fence();
    }
    h.world.barrier();
    if (h.world.me() == 16) {
      for (int i = 0; i < 8; ++i) {
        std::int64_t v = 0;
        std::memcpy(&v, h.world.base(16) + off + i * 32, sizeof v);
        EXPECT_EQ(v, 100 + i);
      }
    }
    h.world.barrier();
  });
}

TEST(Armci, PutSTwoLevelPatch) {
  // A 2-level descriptor: a 4x3 patch of 8-byte runs — the Global Arrays
  // style N-d block transfer.
  Harness h(4);
  h.run([&] {
    const std::uint64_t off = h.world.malloc_collective(4096);
    std::memset(h.world.base(h.world.me()) + off, 0, 4096);
    h.world.barrier();
    if (h.world.me() == 0) {
      std::vector<std::int64_t> src(12);
      std::iota(src.begin(), src.end(), 0);
      StridedDesc d;
      d.stride_levels = 2;
      d.counts[0] = 8;           // run bytes
      d.counts[1] = 4;           // runs per row
      d.counts[2] = 3;           // rows
      d.src_strides[0] = 8;      // packed source
      d.src_strides[1] = 32;
      d.dst_strides[0] = 16;     // every other slot
      d.dst_strides[1] = 128;    // row pitch
      h.world.puts(1, off, src.data(), d);
      h.world.all_fence();
    }
    h.world.barrier();
    if (h.world.me() == 1) {
      for (int row = 0; row < 3; ++row) {
        for (int run = 0; run < 4; ++run) {
          std::int64_t v = 0;
          std::memcpy(&v, h.world.base(1) + off + row * 128 + run * 16, 8);
          EXPECT_EQ(v, row * 4 + run);
        }
      }
    }
    h.world.barrier();
  });
}

TEST(Armci, GetSGathersPatch) {
  Harness h(4);
  h.run([&] {
    const std::uint64_t off = h.world.malloc_collective(4096);
    auto* mine = h.world.base(h.world.me()) + off;
    for (int i = 0; i < 64; ++i) {
      const std::int64_t v = h.world.me() * 1000 + i;
      std::memcpy(mine + i * 8, &v, 8);
    }
    h.world.barrier();
    if (h.world.me() == 0) {
      std::vector<std::int64_t> dst(6, -1);
      StridedDesc d;
      d.stride_levels = 1;
      d.counts[0] = 8;
      d.counts[1] = 6;
      d.src_strides[0] = 24;  // every third int64
      d.dst_strides[0] = 8;   // packed
      h.world.gets(dst.data(), 2, off, d);
      for (int i = 0; i < 6; ++i) EXPECT_EQ(dst[i], 2000 + 3 * i);
    }
    h.world.barrier();
  });
}

TEST(Armci, RmwFetchAddAndSwap) {
  Harness h(16);
  h.run([&] {
    const std::uint64_t off = h.world.malloc_collective(8);
    std::memset(h.world.base(h.world.me()) + off, 0, 8);
    h.world.barrier();
    (void)h.world.rmw_fetch_add(0, off, 3);
    h.world.barrier();
    if (h.world.me() == 0) {
      std::int64_t v = 0;
      std::memcpy(&v, h.world.base(0) + off, 8);
      EXPECT_EQ(v, 48);
      EXPECT_EQ(h.world.rmw_swap(0, off, -1), 48);
      std::memcpy(&v, h.world.base(0) + off, 8);
      EXPECT_EQ(v, -1);
    }
    h.world.barrier();
  });
}

TEST(Armci, MutexMutualExclusion) {
  Harness h(12);
  int counter = 0;
  h.run([&] {
    h.world.create_mutexes(2);
    for (int round = 0; round < 3; ++round) {
      h.world.lock(1, 0);  // mutex 1 hosted on process 0
      const int snap = counter;
      h.engine.advance(400);
      counter = snap + 1;
      h.world.unlock(1, 0);
    }
    h.world.barrier();
  });
  EXPECT_EQ(counter, 36);
}

TEST(Armci, MutexesPerProcessAreIndependent) {
  Harness h(6);
  h.run([&] {
    h.world.create_mutexes(1);
    // Everyone may simultaneously hold mutex 0 of a *different* process.
    const int target = h.world.me();
    h.world.lock(0, target);
    h.engine.advance(1'000);
    h.world.unlock(0, target);
    h.world.barrier();
  });
}
