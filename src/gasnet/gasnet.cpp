#include "gasnet/gasnet.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace gasnet {

World::World(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
             std::size_t seg_bytes)
    : engine_(engine) {
  if (seg_bytes <= reserved_bytes()) {
    throw std::invalid_argument("gasnet::World: segment too small");
  }
  domain_ = std::make_unique<fabric::Domain>(engine, fabric, std::move(sw),
                                             seg_bytes);
  domain_->set_write_hook([this](const fabric::WriteEvent& ev) { on_write(ev); });
  watchers_.resize(domain_->npes());
  barrier_gen_.assign(domain_->npes(), 0);
  barrier_flags_off_ = 0;
  // GASNet barriers are AM-based in every conduit: the notify message runs
  // a handler on the target CPU that bumps the round flag.
  barrier_handler_ = register_handler(
      [this](const Token& tok, std::span<const std::byte>, std::uint64_t off,
             std::uint64_t gen) -> std::uint64_t {
        const auto g = static_cast<std::int64_t>(gen);
        domain_->poke(tok.dst_node, off, &g, sizeof g, tok.when);
        return 0;
      });
}

World::~World() = default;

void World::launch(std::function<void()> node_main) {
  for (int node = 0; node < nodes(); ++node) {
    engine_.spawn(node, node_main);
  }
}

int World::mynode() const {
  sim::Fiber* f = engine_.current_fiber();
  assert(f != nullptr && "gasnet calls require a node fiber context");
  return f->pe();
}

void World::put(int node, std::uint64_t dst_off, const void* src,
                std::size_t n) {
  // gasnet_put blocks until remote completion.
  const auto c = domain_->put(node, dst_off, src, n, /*pipelined=*/false);
  engine_.advance_to(c.delivered);
}

void World::put_nbi(int node, std::uint64_t dst_off, const void* src,
                    std::size_t n) {
  domain_->put(node, dst_off, src, n, /*pipelined=*/true);
}

void World::put_scatter_nbi(int node, const fabric::ScatterRec* recs,
                            std::size_t nrecs, const void* payload,
                            std::size_t payload_bytes) {
  domain_->put_scatter(node, recs, nrecs, payload, payload_bytes,
                       /*pipelined=*/true);
}

void World::get(void* dst, int node, std::uint64_t src_off, std::size_t n) {
  domain_->get(dst, node, src_off, n);
}

void World::wait_syncnbi_puts() { domain_->quiet(); }

int World::register_handler(Handler fn) {
  handlers_.push_back(std::move(fn));
  return static_cast<int>(handlers_.size()) - 1;
}

void World::am_request(int node, int handler, std::uint64_t arg0,
                       std::uint64_t arg1, const void* payload,
                       std::size_t payload_bytes) {
  assert(handler >= 0 && handler < static_cast<int>(handlers_.size()));
  const int me = mynode();
  const auto rt = domain_->fabric().submit_am(me, node, payload_bytes,
                                              domain_->sw(), engine_.now());
  if (!rt.ok) {
    engine_.advance(domain_->sw().put_overhead);
    throw fabric::PeerFailedError("am", me, node, rt.attempts, rt.complete);
  }
  std::vector<std::byte> data(payload_bytes);
  if (payload_bytes > 0) std::memcpy(data.data(), payload, payload_bytes);
  engine_.schedule(rt.target_read, [this, handler, me, node, arg0, arg1,
                                    p = std::move(data), t = rt.target_read] {
    Token tok{*this, me, node, t};
    (void)handlers_[handler](tok, std::span<const std::byte>(p), arg0, arg1);
  });
  // Request injection costs the sender one put overhead.
  engine_.advance(domain_->sw().put_overhead);
}

std::uint64_t World::am_request_reply(int node, int handler,
                                      std::uint64_t arg0, std::uint64_t arg1,
                                      const void* payload,
                                      std::size_t payload_bytes) {
  assert(handler >= 0 && handler < static_cast<int>(handlers_.size()));
  const int me = mynode();
  const auto rt = domain_->fabric().submit_am(me, node, payload_bytes,
                                              domain_->sw(), engine_.now());
  if (!rt.ok) {
    engine_.advance_to(rt.complete);
    throw fabric::PeerFailedError("am_reply", me, node, rt.attempts,
                                  rt.complete);
  }
  std::vector<std::byte> data(payload_bytes);
  if (payload_bytes > 0) std::memcpy(data.data(), payload, payload_bytes);
  sim::Fiber* f = engine_.current_fiber();
  f->set_block_op("gasnet_am_reply", node);
  auto reply = std::make_shared<std::uint64_t>(0);
  engine_.schedule(rt.target_read, [this, handler, me, node, arg0, arg1, reply,
                                    p = std::move(data), t = rt.target_read] {
    Token tok{*this, me, node, t};
    *reply = handlers_[handler](tok, std::span<const std::byte>(p), arg0, arg1);
  });
  engine_.schedule(rt.complete,
                   [this, f, rt] { engine_.resume(*f, rt.complete); });
  engine_.block();
  return *reply;
}

std::int64_t World::load_i64(int node, std::uint64_t off) const {
  std::int64_t v = 0;
  std::memcpy(&v, domain_->segment(node) + off, sizeof v);
  return v;
}

void World::block_until(std::uint64_t off,
                        const std::function<bool(std::int64_t)>& pred) {
  const int me = mynode();
  while (!pred(load_i64(me, off))) {
    watchers_[me].push_back(
        {off, sizeof(std::int64_t), engine_.current_fiber()});
    engine_.current_fiber()->set_block_op("gasnet_block_until");
    engine_.block();
  }
}

void World::on_write(const fabric::WriteEvent& ev) {
  auto& list = watchers_[ev.pe];
  if (list.empty()) return;
  std::vector<sim::Fiber*> to_wake;
  for (auto it = list.begin(); it != list.end();) {
    const bool overlap =
        it->off < ev.offset + ev.len && ev.offset < it->off + it->len;
    if (overlap) {
      to_wake.push_back(it->fiber);
      it = list.erase(it);
    } else {
      ++it;
    }
  }
  for (sim::Fiber* f : to_wake) engine_.resume(*f, ev.time);
}

void World::barrier() {
  const int me = mynode();
  const int n = nodes();
  if (n == 1) return;
  const std::int64_t gen = ++barrier_gen_[me];
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    assert(round < kMaxRounds);
    const int peer = (me + dist) % n;
    const std::uint64_t flag_off =
        barrier_flags_off_ + static_cast<std::uint64_t>(round) * sizeof(std::int64_t);
    am_request(peer, barrier_handler_, flag_off,
               static_cast<std::uint64_t>(gen));
    block_until(flag_off, [gen](std::int64_t v) { return v >= gen; });
  }
}

}  // namespace gasnet
