// gasnet::World — a GASNet-core-like conduit.
//
// GASNet is the baseline communication layer UHCAF used before this paper's
// OpenSHMEM port (Table I: UHCAF runs over GASNet or ARMCI), and the
// comparator in Figures 2-3 and 6-10. The surface implemented here follows
// the GASNet core + extended API style:
//
//   * gasnet_put / put_bulk   — blocking until *remote* completion;
//   * put_nbi                 — non-blocking implicit; source reusable on
//                               return; completed by wait_syncnbi_puts();
//   * gasnet_get              — blocking read;
//   * active messages         — short/medium requests dispatched to a
//                               registered handler on the target "CPU", with
//                               an optional 64-bit reply.
//
// Crucially for the paper's analysis, GASNet has *no remote atomics*: the
// CAF runtime must emulate them with AM round-trips that serialize on the
// target CPU (see Fabric::submit_am). This is what makes locks over GASNet
// slower than over SHMEM in Figure 8.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fabric/domain.hpp"
#include "net/profiles.hpp"

namespace gasnet {

class World;

/// Handler context: identifies the requesting node and carries the virtual
/// time at which the handler runs (needed to timestamp memory mutations).
struct Token {
  World& world;
  int src_node;  ///< requester
  int dst_node;  ///< node the handler is executing on
  sim::Time when;
};

/// An AM handler receives the token, an optional medium payload, and two
/// 64-bit arguments; its return value is delivered to a requester waiting on
/// am_request_reply (ignored for plain am_request).
using Handler = std::function<std::uint64_t(
    const Token&, std::span<const std::byte> payload, std::uint64_t arg0,
    std::uint64_t arg1)>;

class World {
 public:
  World(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
        std::size_t seg_bytes);
  ~World();

  void launch(std::function<void()> node_main);

  int mynode() const;
  int nodes() const { return domain_->npes(); }
  sim::Engine& engine() { return engine_; }
  fabric::Domain& domain() { return *domain_; }

  /// Attached segment base for `node` (GASNet segment-everything style:
  /// offsets are symmetric across nodes).
  std::byte* seg(int node) { return domain_->segment(node); }
  std::size_t seg_bytes() const { return domain_->segment_bytes(); }

  // ---- extended API: one-sided memory ----
  /// Blocking put: returns only when the data is in remote memory.
  void put(int node, std::uint64_t dst_off, const void* src, std::size_t n);
  /// Non-blocking implicit put: local completion only.
  void put_nbi(int node, std::uint64_t dst_off, const void* src,
               std::size_t n);
  /// Access-region write combining: many small updates shipped as ONE
  /// pipelined message (the GASNet VIS / access-region idiom), scattered at
  /// the target per `recs`. Completes with wait_syncnbi_puts().
  void put_scatter_nbi(int node, const fabric::ScatterRec* recs,
                       std::size_t nrecs, const void* payload,
                       std::size_t payload_bytes);
  /// Blocking get.
  void get(void* dst, int node, std::uint64_t src_off, std::size_t n);
  /// Completes all outstanding nbi puts from this node.
  void wait_syncnbi_puts();

  // ---- core API: active messages ----
  /// Registers `fn` and returns its handler index.
  int register_handler(Handler fn);
  /// Fire-and-forget AM request (short or medium, depending on payload).
  void am_request(int node, int handler, std::uint64_t arg0,
                  std::uint64_t arg1, const void* payload = nullptr,
                  std::size_t payload_bytes = 0);
  /// AM request that blocks for the handler's 64-bit reply. This is the
  /// primitive CAF-over-GASNet uses to emulate remote atomics.
  std::uint64_t am_request_reply(int node, int handler, std::uint64_t arg0,
                                 std::uint64_t arg1,
                                 const void* payload = nullptr,
                                 std::size_t payload_bytes = 0);

  /// Barrier (gasnet_barrier_notify/wait rolled into one, dissemination
  /// over nbi puts + local spinning).
  void barrier();

  /// Blocks the calling fiber until the int64 at `off` in the local segment
  /// satisfies `pred` (used by layered runtimes to spin on AM-written
  /// flags). Equivalent to GASNET_BLOCKUNTIL.
  void block_until(std::uint64_t off,
                   const std::function<bool(std::int64_t)>& pred);

 private:
  struct Watcher {
    std::uint64_t off;
    std::size_t len;
    sim::Fiber* fiber;
  };

  void on_write(const fabric::WriteEvent& ev);
  std::int64_t load_i64(int node, std::uint64_t off) const;

  sim::Engine& engine_;
  std::unique_ptr<fabric::Domain> domain_;
  std::vector<Handler> handlers_;
  std::vector<std::vector<Watcher>> watchers_;
  std::vector<std::int64_t> barrier_gen_;
  std::uint64_t barrier_flags_off_ = 0;  // first kMaxRounds int64s of segment
  int barrier_handler_ = -1;
  static constexpr int kMaxRounds = 16;

 public:
  /// Bytes of segment reserved for the conduit's own barrier flags;
  /// layered code must allocate at or beyond this offset.
  static constexpr std::size_t reserved_bytes() {
    return kMaxRounds * sizeof(std::int64_t);
  }
};

}  // namespace gasnet
