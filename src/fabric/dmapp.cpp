#include "fabric/dmapp.hpp"

namespace fabric::dmapp {

Context::Context(sim::Engine& engine, net::Fabric& fabric,
                 std::size_t seg_bytes, net::SwProfile sw)
    : domain_(engine, fabric, std::move(sw), seg_bytes) {}

}  // namespace fabric::dmapp
