// fabric::verbs — an InfiniBand-verbs-flavored RDMA interface.
//
// This is the system-level API under MVAPICH2-X on Stampede (paper §III).
// It exposes the subset of verbs semantics the OpenSHMEM/MPI stacks rely
// on: registered memory regions, RDMA WRITE/READ work requests with
// local-completion semantics, HCA-executed 64-bit atomics (fetch-add and
// compare-and-swap — the only two IB atomics), and completion polling.
//
// There is no hardware strided capability: scatter/gather of strided data
// must be looped in software by the layer above (this is exactly why
// MVAPICH2-X's shmem_iput degenerates to a series of contiguous puts in
// Figure 7 and the Himeno discussion).
#pragma once

#include <cstdint>
#include <memory>

#include "fabric/domain.hpp"
#include "net/profiles.hpp"

namespace fabric::verbs {

class Hca {
 public:
  /// Creates an HCA with one registered memory region of `mr_bytes` per PE.
  /// The software profile defaults to the MVAPICH2-X stack on Stampede.
  Hca(sim::Engine& engine, net::Fabric& fabric, std::size_t mr_bytes,
      net::SwProfile sw = net::sw_profile(net::Library::kShmemMvapich,
                                          net::Machine::kStampede));

  Domain& domain() { return domain_; }
  int npes() const { return domain_.npes(); }

  /// Registered-memory base for `pe` (symmetric offsets across PEs).
  std::byte* mr(int pe) { return domain_.segment(pe); }

  /// Posts an RDMA WRITE. Returns once the source buffer is reusable.
  /// `signaled == false` posts on the non-blocking path (gap-limited).
  void rdma_write(int dst_pe, std::uint64_t dst_off, const void* src,
                  std::size_t n, bool signaled = true) {
    domain_.put(dst_pe, dst_off, src, n, /*pipelined=*/!signaled);
  }

  /// Posts an RDMA READ and waits for its completion.
  void rdma_read(void* dst, int src_pe, std::uint64_t src_off, std::size_t n) {
    domain_.get(dst, src_pe, src_off, n);
  }

  /// IB atomic fetch-and-add on a 64-bit remote location.
  std::uint64_t atomic_fetch_add(int pe, std::uint64_t off, std::uint64_t v) {
    return domain_.amo(AmoOp::kFetchAdd, pe, off, v);
  }

  /// IB atomic compare-and-swap on a 64-bit remote location.
  std::uint64_t atomic_cmp_swap(int pe, std::uint64_t off, std::uint64_t cmp,
                                std::uint64_t swp) {
    return domain_.amo(AmoOp::kCompareSwap, pe, off, swp, cmp);
  }

  /// Drains the completion queue: all posted writes are remotely complete
  /// when this returns (the building block for shmem_quiet).
  void poll_cq_drain() { domain_.quiet(); }

 private:
  Domain domain_;
};

}  // namespace fabric::verbs
