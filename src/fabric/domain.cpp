#include "fabric/domain.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cassert>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "net/fault.hpp"
#include "obs/obs.hpp"

namespace fabric {

namespace {
std::string peer_failed_msg(const char* op, int src_pe, int dst_pe,
                            int attempts, sim::Time t) {
  std::ostringstream os;
  os << op << " from pe " << src_pe << " to pe " << dst_pe << " failed after "
     << attempts << " attempt(s) at t=" << sim::format_time(t)
     << " (retransmit budget exhausted; peer dead or sustained loss)";
  return os.str();
}
}  // namespace

PeerFailedError::PeerFailedError(const char* op, int src_pe, int dst_pe,
                                 int attempts, sim::Time t)
    : std::runtime_error(peer_failed_msg(op, src_pe, dst_pe, attempts, t)),
      op_(op),
      src_pe_(src_pe),
      dst_pe_(dst_pe),
      attempts_(attempts),
      time_(t) {}

Domain::ZeroedBuffer::ZeroedBuffer(std::size_t n)
    : p_(static_cast<std::byte*>(std::calloc(n ? n : 1, 1))) {
  if (p_ == nullptr) throw std::bad_alloc();
}

Domain::ZeroedBuffer::~ZeroedBuffer() { std::free(p_); }

Domain::Domain(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
               std::size_t segment_bytes)
    : engine_(engine),
      fabric_(fabric),
      sw_(std::move(sw)),
      segment_bytes_(segment_bytes) {
  segments_.reserve(fabric_.npes());
  for (int i = 0; i < fabric_.npes(); ++i) {
    segments_.emplace_back(segment_bytes_);
  }
  outstanding_.assign(fabric_.npes(), 0);
}

std::byte* Domain::segment(int pe) {
  assert(pe >= 0 && pe < npes());
  return segments_[pe].data();
}

const std::byte* Domain::segment(int pe) const {
  assert(pe >= 0 && pe < npes());
  return segments_[pe].data();
}

int Domain::current_pe() const {
  sim::Fiber* f = engine_.current_fiber();
  assert(f != nullptr && "fabric operations require a PE fiber context");
  return f->pe();
}

void Domain::note_outstanding(int src_pe, sim::Time t) {
  outstanding_[src_pe] = std::max(outstanding_[src_pe], t);
}

void Domain::enable_node_transport(const net::NodeTransportOptions& opts) {
  if (!opts.enabled || node_ != nullptr) return;
  node_ = std::make_unique<net::NodeChannel>(fabric_.profile(), fabric_.npes(),
                                             opts);
}

Domain::NodeTele& Domain::node_tele(int pe) {
  if (node_tele_.empty()) node_tele_.resize(static_cast<std::size_t>(npes()));
  NodeTele& t = node_tele_[static_cast<std::size_t>(pe)];
  if (t.puts == nullptr) {
    auto& reg = obs::registry();
    t.puts = &reg.counter(pe, "node.puts");
    t.gets = &reg.counter(pe, "node.gets");
    t.amos = &reg.counter(pe, "node.amos");
    t.scatters = &reg.counter(pe, "node.scatters");
    t.strided = &reg.counter(pe, "node.strided");
    t.ring_msgs = &reg.counter(pe, "node.ring_msgs");
    t.ring_stalls = &reg.counter(pe, "node.ring_stalls");
    t.bulk_msgs = &reg.counter(pe, "node.bulk_msgs");
    t.numa_remote = &reg.counter(pe, "node.numa_remote");
    t.elided_msgs = &reg.counter(pe, "node.elided_msgs");
    t.elided_bytes = &reg.counter(pe, "node.elided_bytes");
  }
  return t;
}

net::PutCompletion Domain::node_oneway(const char* op, int me, int dst_pe,
                                       std::size_t wire_bytes,
                                       sim::Time extra_copy, NodeTele& t) {
  net::NodeChannel& ch = *node_;
  net::FaultInjector* fi = fabric_.fault_injector();
  const sim::Time now = engine_.now();
  sim::Time local_complete;
  sim::Time delivered;
  if (extra_copy == 0 && ch.ring_eligible(wire_bytes)) {
    sim::Time wc = ch.ring_write_cost(wire_bytes);
    sim::Time pc = net::NodeChannel::kRingPop;
    if (fi != nullptr) {
      wc = fi->dilate(me, wc);       // producer stores the slots
      pc = fi->dilate(dst_pe, pc);   // consumer pops them
    }
    const net::RingPush p = ch.push(me, dst_pe, wire_bytes, now, wc, pc);
    local_complete = p.producer_done;
    delivered = p.delivered;
    ++*t.ring_msgs;
    if (p.stalled) ++*t.ring_stalls;
  } else {
    sim::Time copy = ch.copy_cost(me, dst_pe, wire_bytes) + extra_copy;
    if (fi != nullptr) copy = fi->dilate(me, copy);
    local_complete = now + copy;
    delivered = local_complete + ch.visibility(me, dst_pe);
    ++*t.bulk_msgs;
  }
  if (!ch.numa_local(me, dst_pe)) ++*t.numa_remote;
  if (fi != nullptr) {
    if (fi->pe_dead(dst_pe, delivered)) {
      // The peer's shared segment is detached before the bytes land; a
      // shared-memory store cannot be retransmitted.
      fi->note_exhaustion(me, dst_pe, delivered);
      engine_.advance_to(local_complete);
      throw PeerFailedError(op, me, dst_pe, 1, delivered);
    }
    fi->note_delivery(me, dst_pe, delivered);
  }
  ++*t.elided_msgs;
  *t.elided_bytes += wire_bytes;
  return {local_complete, delivered, true, 1};
}

Domain::PendingMsg* Domain::MsgPool::acquire() {
  if (free_ != nullptr) {
    PendingMsg* m = free_;
    free_ = m->next;
    return m;
  }
  if (bump_left_ == 0) {
    // for_overwrite: every field is written by the issue site.
    slabs_.push_back(std::make_unique_for_overwrite<Slab>());
    bump_ = slabs_.back()->msgs;
    bump_left_ = kSlabMsgs;
  }
  --bump_left_;
  return bump_++;
}

std::byte* Domain::BufPool::acquire(std::size_t n, std::uint8_t* cls_out) {
  // Pow2 size classes, 16-byte minimum (the free-list link lives in the
  // buffer's first bytes, and scatter records need 8-byte alignment, which
  // malloc already guarantees per class).
  const auto cls = static_cast<std::uint8_t>(
      std::bit_width(std::max<std::size_t>(n, 16) - 1));
  assert(cls < sizeof(free_) / sizeof(free_[0]));
  *cls_out = cls;
  std::byte*& fl = free_[cls];
  if (fl != nullptr) {
    std::byte* p = fl;
    std::memcpy(&fl, p, sizeof fl);
    return p;
  }
  auto* p = static_cast<std::byte*>(std::malloc(std::size_t{1} << cls));
  if (p == nullptr) throw std::bad_alloc();
  all_.push_back(p);
  return p;
}

void Domain::BufPool::release(std::byte* p, std::uint8_t cls) {
  std::memcpy(p, &free_[cls], sizeof(std::byte*));
  free_[cls] = p;
}

Domain::BufPool::~BufPool() {
  for (std::byte* p : all_) std::free(p);
}

namespace {
std::size_t hash_dst(int dst) {
  return static_cast<std::size_t>(
      static_cast<std::uint64_t>(dst) * 0x9E3779B97F4A7C15ull >> 32);
}
}  // namespace

std::uint32_t Domain::pair_id(int src_pe, int dst_pe) {
  if (pair_map_.empty()) pair_map_.resize(static_cast<std::size_t>(npes()));
  PairTable& tbl = pair_map_[static_cast<std::size_t>(src_pe)];
  if (tbl.slots.empty()) tbl.slots.assign(8, PairSlot{-1, 0});
  std::size_t mask = tbl.slots.size() - 1;
  std::size_t i = hash_dst(dst_pe) & mask;
  while (tbl.slots[i].dst >= 0) {
    if (tbl.slots[i].dst == dst_pe) return tbl.slots[i].id;
    i = (i + 1) & mask;
  }
  // First put on this pair: mint a dense id (first-touch order, which is
  // deterministic) and grow its SoA stream state.
  const auto id = static_cast<std::uint32_t>(fifo_last_.size());
  fifo_last_.push_back(0);
  head_.push_back(nullptr);
  tail_.push_back(nullptr);
  if ((tbl.count + 1) * 2 > tbl.slots.size()) {
    std::vector<PairSlot> old = std::move(tbl.slots);
    tbl.slots.assign(old.size() * 2, PairSlot{-1, 0});
    mask = tbl.slots.size() - 1;
    for (const PairSlot& s : old) {
      if (s.dst < 0) continue;
      std::size_t j = hash_dst(s.dst) & mask;
      while (tbl.slots[j].dst >= 0) j = (j + 1) & mask;
      tbl.slots[j] = s;
    }
    i = hash_dst(dst_pe) & mask;
    while (tbl.slots[i].dst >= 0) i = (i + 1) & mask;
  }
  tbl.slots[i] = PairSlot{dst_pe, id};
  ++tbl.count;
  return id;
}

void Domain::stream_fire_tramp(void* ctx, std::uint64_t pair, std::uint64_t) {
  static_cast<Domain*>(ctx)->stream_fire(static_cast<std::uint32_t>(pair));
}

void Domain::stream_append(std::uint32_t pair, PendingMsg* m) {
  m->next = nullptr;
  if (tail_[pair] != nullptr) {
    // Stream busy: the armed event for the current head will re-arm for us.
    tail_[pair]->next = m;
    tail_[pair] = m;
    return;
  }
  head_[pair] = tail_[pair] = m;
  engine_.schedule_raw_reserved(m->t, m->seq, &stream_fire_tramp, this, pair);
}

void Domain::stream_fire(std::uint32_t pair) {
  PendingMsg* m = head_[pair];
  head_[pair] = m->next;
  if (head_[pair] == nullptr) {
    tail_[pair] = nullptr;
  } else {
    // Successors have strictly later clamped times and their own reserved
    // seqs, so re-arming now reproduces the exact (t, seq) pop position a
    // dedicated event would have had.
    engine_.schedule_raw_reserved(head_[pair]->t, head_[pair]->seq,
                                  &stream_fire_tramp, this, pair);
  }
  apply(*m);
  buf_pool_.release(m->buf, m->buf_cls);
  msg_pool_.release(m);
}

void Domain::apply(const PendingMsg& m) {
  std::byte* seg = segments_[m.dst_pe].data();
  switch (m.op) {
    case PendingMsg::Op::kContig:
      assert(m.dst_off + m.payload_bytes <= segment_bytes_);
      std::memcpy(seg + m.dst_off, m.buf, m.payload_bytes);
      if (write_hook_) write_hook_({m.dst_pe, m.dst_off, m.payload_bytes, m.t});
      break;
    case PendingMsg::Op::kScatter: {
      const auto* recs = reinterpret_cast<const ScatterRec*>(m.buf);
      const std::byte* payload = m.buf + m.payload_off;
      for (std::uint32_t i = 0; i < m.nelems; ++i) {
        const ScatterRec& r = recs[i];
        std::memcpy(seg + r.dst_off, payload + r.payload_off, r.len);
        if (write_hook_) write_hook_({m.dst_pe, r.dst_off, r.len, m.t});
      }
      break;
    }
    case PendingMsg::Op::kStrided:
      for (std::uint32_t i = 0; i < m.nelems; ++i) {
        const std::uint64_t off =
            m.dst_off +
            i * static_cast<std::uint64_t>(m.dst_stride) * m.elem_bytes;
        std::memcpy(seg + off, m.buf + std::size_t{i} * m.elem_bytes,
                    m.elem_bytes);
        if (write_hook_) write_hook_({m.dst_pe, off, m.elem_bytes, m.t});
      }
      break;
  }
}

void Domain::poke(int dst_pe, std::uint64_t dst_off, const void* src,
                  std::size_t n, sim::Time t) {
  assert(dst_off + n <= segment_bytes_);
  std::memcpy(segments_[dst_pe].data() + dst_off, src, n);
  if (write_hook_) write_hook_({dst_pe, dst_off, n, t});
}

net::PutCompletion Domain::put(int dst_pe, std::uint64_t dst_off,
                               const void* src, std::size_t n,
                               bool pipelined) {
  const int me = current_pe();
  if (dst_off + n > segment_bytes_) {
    throw std::out_of_range("fabric::Domain::put beyond segment");
  }
  if (node_routed(me, dst_pe)) {
    // Node-local path: ring or NUMA memcpy, no fabric message. The producer
    // pays the copy either way, so nbi and blocking puts price identically.
    NodeTele& nt = node_tele(me);
    const net::PutCompletion c = node_oneway("put", me, dst_pe, n, 0, nt);
    ++*nt.puts;
    const std::uint32_t pair = pair_id(me, dst_pe);
    const sim::Time d = clamp_in_order(pair, c.delivered);
    note_outstanding(me, d);
    PendingMsg* m = msg_pool_.acquire();
    m->t = d;
    m->dst_pe = dst_pe;
    m->op = PendingMsg::Op::kContig;
    m->dst_off = dst_off;
    m->payload_bytes = static_cast<std::uint32_t>(n);
    m->buf = buf_pool_.acquire(n, &m->buf_cls);
    std::memcpy(m->buf, src, n);
    m->seq = engine_.reserve_seq();
    stream_append(pair, m);
    engine_.advance_to(c.local_complete);
    return {c.local_complete, d, true, 1};
  }
  auto c = fabric_.submit_put(me, dst_pe, n, sw_, engine_.now(), pipelined);
  if (!c.ok) {
    // Don't record the give-up time as outstanding: the bytes never landed,
    // and quiet() must not stall on them.
    engine_.advance_to(c.local_complete);
    throw PeerFailedError("put", me, dst_pe, c.attempts, c.delivered);
  }
  const std::uint32_t pair = pair_id(me, dst_pe);
  c.delivered = clamp_in_order(pair, c.delivered);
  note_outstanding(me, c.delivered);
  // Capture the payload now: OpenSHMEM putmem guarantees the source buffer
  // is reusable on return.
  PendingMsg* m = msg_pool_.acquire();
  m->t = c.delivered;
  m->dst_pe = dst_pe;
  m->op = PendingMsg::Op::kContig;
  m->dst_off = dst_off;
  m->payload_bytes = static_cast<std::uint32_t>(n);
  m->buf = buf_pool_.acquire(n, &m->buf_cls);
  std::memcpy(m->buf, src, n);
  m->seq = engine_.reserve_seq();
  stream_append(pair, m);
  engine_.advance_to(c.local_complete);
  return c;
}

net::PutCompletion Domain::put_scatter(int dst_pe, const ScatterRec* recs,
                                       std::size_t nrecs, const void* payload,
                                       std::size_t payload_bytes,
                                       bool pipelined) {
  const int me = current_pe();
  for (std::size_t i = 0; i < nrecs; ++i) {
    if (recs[i].dst_off + recs[i].len > segment_bytes_ ||
        static_cast<std::size_t>(recs[i].payload_off) + recs[i].len >
            payload_bytes) {
      throw std::out_of_range("fabric::Domain::put_scatter beyond segment");
    }
  }
  if (node_routed(me, dst_pe)) {
    // Node-local vectored put: one copy of the packed payload plus
    // per-record pointer math; the (offset, length) headers never exist —
    // there is no wire message to carry them.
    NodeTele& nt = node_tele(me);
    const net::PutCompletion c = node_oneway(
        "put_scatter", me, dst_pe, payload_bytes,
        static_cast<sim::Time>(nrecs) * net::NodeChannel::kElemGap, nt);
    ++*nt.scatters;
    const std::uint32_t pair = pair_id(me, dst_pe);
    const sim::Time d = clamp_in_order(pair, c.delivered);
    note_outstanding(me, d);
    const std::size_t hdr = nrecs * sizeof(ScatterRec);
    PendingMsg* m = msg_pool_.acquire();
    m->t = d;
    m->dst_pe = dst_pe;
    m->op = PendingMsg::Op::kScatter;
    m->nelems = static_cast<std::uint32_t>(nrecs);
    m->payload_bytes = static_cast<std::uint32_t>(payload_bytes);
    m->payload_off = static_cast<std::uint32_t>(hdr);
    m->buf = buf_pool_.acquire(hdr + payload_bytes, &m->buf_cls);
    std::memcpy(m->buf, recs, hdr);
    std::memcpy(m->buf + hdr, payload, payload_bytes);
    m->seq = engine_.reserve_seq();
    stream_append(pair, m);
    engine_.advance_to(c.local_complete);
    return {c.local_complete, d, true, 1};
  }
  // One wire message: packed payload plus an (offset, length) header per
  // record. The whole vector shares a single injection cost — that is the
  // entire point of write combining.
  const std::size_t wire = payload_bytes + nrecs * kScatterRecWire;
  auto c = fabric_.submit_put(me, dst_pe, wire, sw_, engine_.now(), pipelined);
  if (!c.ok) {
    engine_.advance_to(c.local_complete);
    throw PeerFailedError("put_scatter", me, dst_pe, c.attempts, c.delivered);
  }
  const std::uint32_t pair = pair_id(me, dst_pe);
  c.delivered = clamp_in_order(pair, c.delivered);
  note_outstanding(me, c.delivered);
  // Pack records then payload into one pooled buffer.
  const std::size_t hdr = nrecs * sizeof(ScatterRec);
  PendingMsg* m = msg_pool_.acquire();
  m->t = c.delivered;
  m->dst_pe = dst_pe;
  m->op = PendingMsg::Op::kScatter;
  m->nelems = static_cast<std::uint32_t>(nrecs);
  m->payload_bytes = static_cast<std::uint32_t>(payload_bytes);
  m->payload_off = static_cast<std::uint32_t>(hdr);
  m->buf = buf_pool_.acquire(hdr + payload_bytes, &m->buf_cls);
  std::memcpy(m->buf, recs, hdr);
  std::memcpy(m->buf + hdr, payload, payload_bytes);
  m->seq = engine_.reserve_seq();
  stream_append(pair, m);
  engine_.advance_to(c.local_complete);
  return c;
}

void Domain::get(void* dst, int src_pe, std::uint64_t src_off, std::size_t n) {
  const int me = current_pe();
  if (src_off + n > segment_bytes_) {
    throw std::out_of_range("fabric::Domain::get beyond segment");
  }
  if (node_routed(me, src_pe)) {
    // Node-local read: the caller's own core streams the bytes out of the
    // peer's shared segment — no request message, no NIC.
    net::NodeChannel& ch = *node_;
    net::FaultInjector* fi = fabric_.fault_injector();
    NodeTele& nt = node_tele(me);
    sim::Time issue = net::NodeChannel::kBulkIssue;
    if (fi != nullptr) issue = fi->dilate(me, issue);
    const net::NodeRoundTrip rt = ch.get(me, src_pe, n, engine_.now(), issue);
    if (fi != nullptr && fi->pe_dead(src_pe, rt.exec)) {
      // Loading from a detached segment faults; no retry can help.
      fi->note_exhaustion(me, src_pe, rt.exec);
      engine_.advance_to(rt.exec);
      throw PeerFailedError("get", me, src_pe, 1, rt.exec);
    }
    ++*nt.gets;
    ++*nt.elided_msgs;
    *nt.elided_bytes += n;
    if (!ch.numa_local(me, src_pe)) ++*nt.numa_remote;
    sim::Fiber* f = engine_.current_fiber();
    f->set_block_op("get", src_pe);
    engine_.schedule(rt.exec, [this, f, dst, src_pe, src_off, n, rt] {
      auto snapshot = std::make_shared<std::vector<std::byte>>(n);
      std::memcpy(snapshot->data(), segments_[src_pe].data() + src_off, n);
      engine_.schedule(rt.complete, [this, f, dst, snapshot, rt] {
        std::memcpy(dst, snapshot->data(), snapshot->size());
        engine_.resume(*f, rt.complete);
      });
    });
    engine_.block();
    return;
  }
  const auto rt = fabric_.submit_get(me, src_pe, n, sw_, engine_.now());
  if (!rt.ok) {
    engine_.advance_to(rt.complete);
    throw PeerFailedError("get", me, src_pe, rt.attempts, rt.complete);
  }
  sim::Fiber* f = engine_.current_fiber();
  f->set_block_op("get", src_pe);
  // Snapshot target memory at the moment the NIC services the read, then
  // hand the bytes to the blocked initiator at reply time.
  engine_.schedule(rt.target_read, [this, f, dst, src_pe, src_off, n, rt] {
    auto snapshot = std::make_shared<std::vector<std::byte>>(n);
    std::memcpy(snapshot->data(), segments_[src_pe].data() + src_off, n);
    engine_.schedule(rt.complete, [this, f, dst, snapshot, rt] {
      std::memcpy(dst, snapshot->data(), snapshot->size());
      engine_.resume(*f, rt.complete);
    });
  });
  engine_.block();
}

void Domain::iput_hw(int dst_pe, std::uint64_t dst_off,
                     std::ptrdiff_t dst_stride, const void* src,
                     std::ptrdiff_t src_stride, std::size_t elem_bytes,
                     std::size_t nelems, bool pipelined) {
  assert(sw_.hw_strided && "iput_hw requires a hardware-strided profile");
  const int me = current_pe();
  if (nelems == 0) return;
  const std::uint64_t span =
      dst_off + (nelems - 1) * static_cast<std::uint64_t>(dst_stride) * elem_bytes +
      elem_bytes;
  if (span > segment_bytes_) {
    throw std::out_of_range("fabric::Domain::iput_hw beyond segment");
  }
  if (node_routed(me, dst_pe)) {
    // Node-local strided put: the producer core walks both strides itself;
    // the NIC's scatter engine is not involved.
    NodeTele& nt = node_tele(me);
    const net::PutCompletion c = node_oneway(
        "iput", me, dst_pe, elem_bytes * nelems,
        static_cast<sim::Time>(nelems) * net::NodeChannel::kElemGap, nt);
    ++*nt.strided;
    const std::uint32_t pair = pair_id(me, dst_pe);
    const sim::Time d = clamp_in_order(pair, c.delivered);
    note_outstanding(me, d);
    PendingMsg* m = msg_pool_.acquire();
    m->t = d;
    m->dst_pe = dst_pe;
    m->op = PendingMsg::Op::kStrided;
    m->dst_off = dst_off;
    m->dst_stride = dst_stride;
    m->elem_bytes = static_cast<std::uint32_t>(elem_bytes);
    m->nelems = static_cast<std::uint32_t>(nelems);
    m->payload_bytes = static_cast<std::uint32_t>(elem_bytes * nelems);
    m->buf = buf_pool_.acquire(elem_bytes * nelems, &m->buf_cls);
    const auto* sp = static_cast<const std::byte*>(src);
    for (std::size_t i = 0; i < nelems; ++i) {
      std::memcpy(m->buf + i * elem_bytes,
                  sp + static_cast<std::ptrdiff_t>(i) * src_stride *
                          static_cast<std::ptrdiff_t>(elem_bytes),
                  elem_bytes);
    }
    m->seq = engine_.reserve_seq();
    stream_append(pair, m);
    engine_.advance_to(c.local_complete);
    return;
  }
  auto c = fabric_.submit_strided_put(me, dst_pe, elem_bytes, nelems,
                                      sw_, engine_.now(), pipelined);
  if (!c.ok) {
    engine_.advance_to(c.local_complete);
    throw PeerFailedError("iput", me, dst_pe, c.attempts, c.delivered);
  }
  const std::uint32_t pair = pair_id(me, dst_pe);
  c.delivered = clamp_in_order(pair, c.delivered);
  note_outstanding(me, c.delivered);
  // Gather the source elements at issue time; scatter happens at delivery.
  PendingMsg* m = msg_pool_.acquire();
  m->t = c.delivered;
  m->dst_pe = dst_pe;
  m->op = PendingMsg::Op::kStrided;
  m->dst_off = dst_off;
  m->dst_stride = dst_stride;
  m->elem_bytes = static_cast<std::uint32_t>(elem_bytes);
  m->nelems = static_cast<std::uint32_t>(nelems);
  m->payload_bytes = static_cast<std::uint32_t>(elem_bytes * nelems);
  m->buf = buf_pool_.acquire(elem_bytes * nelems, &m->buf_cls);
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < nelems; ++i) {
    std::memcpy(m->buf + i * elem_bytes,
                s + static_cast<std::ptrdiff_t>(i) * src_stride *
                        static_cast<std::ptrdiff_t>(elem_bytes),
                elem_bytes);
  }
  m->seq = engine_.reserve_seq();
  stream_append(pair, m);
  engine_.advance_to(c.local_complete);
}

void Domain::iget_hw(void* dst, std::ptrdiff_t dst_stride, int src_pe,
                     std::uint64_t src_off, std::ptrdiff_t src_stride,
                     std::size_t elem_bytes, std::size_t nelems) {
  assert(sw_.hw_strided && "iget_hw requires a hardware-strided profile");
  const int me = current_pe();
  if (nelems == 0) return;
  if (node_routed(me, src_pe)) {
    net::NodeChannel& ch = *node_;
    net::FaultInjector* fi = fabric_.fault_injector();
    NodeTele& nt = node_tele(me);
    sim::Time issue = net::NodeChannel::kBulkIssue;
    sim::Time gaps =
        static_cast<sim::Time>(nelems) * net::NodeChannel::kElemGap;
    if (fi != nullptr) {
      issue = fi->dilate(me, issue);
      gaps = fi->dilate(me, gaps);
    }
    const net::NodeRoundTrip rt =
        ch.get(me, src_pe, elem_bytes * nelems, engine_.now(), issue, gaps);
    if (fi != nullptr && fi->pe_dead(src_pe, rt.exec)) {
      fi->note_exhaustion(me, src_pe, rt.exec);
      engine_.advance_to(rt.exec);
      throw PeerFailedError("iget", me, src_pe, 1, rt.exec);
    }
    ++*nt.gets;
    ++*nt.strided;
    ++*nt.elided_msgs;
    *nt.elided_bytes += elem_bytes * nelems;
    if (!ch.numa_local(me, src_pe)) ++*nt.numa_remote;
    sim::Fiber* f = engine_.current_fiber();
    f->set_block_op("iget", src_pe);
    engine_.schedule(rt.exec, [this, f, dst, dst_stride, src_pe, src_off,
                               src_stride, elem_bytes, nelems, rt] {
      auto snapshot =
          std::make_shared<std::vector<std::byte>>(elem_bytes * nelems);
      for (std::size_t i = 0; i < nelems; ++i) {
        const std::uint64_t off =
            src_off + i * static_cast<std::uint64_t>(src_stride) * elem_bytes;
        std::memcpy(snapshot->data() + i * elem_bytes,
                    segments_[src_pe].data() + off, elem_bytes);
      }
      engine_.schedule(rt.complete, [this, f, dst, dst_stride, elem_bytes,
                                     nelems, snapshot, rt] {
        auto* d = static_cast<std::byte*>(dst);
        for (std::size_t i = 0; i < nelems; ++i) {
          std::memcpy(d + static_cast<std::ptrdiff_t>(i) * dst_stride *
                              static_cast<std::ptrdiff_t>(elem_bytes),
                      snapshot->data() + i * elem_bytes, elem_bytes);
        }
        engine_.resume(*f, rt.complete);
      });
    });
    engine_.block();
    return;
  }
  const auto rt = fabric_.submit_strided_get(me, src_pe, elem_bytes, nelems,
                                             sw_, engine_.now());
  if (!rt.ok) {
    engine_.advance_to(rt.complete);
    throw PeerFailedError("iget", me, src_pe, rt.attempts, rt.complete);
  }
  sim::Fiber* f = engine_.current_fiber();
  f->set_block_op("iget", src_pe);
  engine_.schedule(rt.target_read, [this, f, dst, dst_stride, src_pe, src_off,
                                    src_stride, elem_bytes, nelems, rt] {
    auto snapshot = std::make_shared<std::vector<std::byte>>(elem_bytes * nelems);
    for (std::size_t i = 0; i < nelems; ++i) {
      const std::uint64_t off =
          src_off + i * static_cast<std::uint64_t>(src_stride) * elem_bytes;
      std::memcpy(snapshot->data() + i * elem_bytes,
                  segments_[src_pe].data() + off, elem_bytes);
    }
    engine_.schedule(rt.complete, [this, f, dst, dst_stride, elem_bytes,
                                   nelems, snapshot, rt] {
      auto* d = static_cast<std::byte*>(dst);
      for (std::size_t i = 0; i < nelems; ++i) {
        std::memcpy(d + static_cast<std::ptrdiff_t>(i) * dst_stride *
                            static_cast<std::ptrdiff_t>(elem_bytes),
                    snapshot->data() + i * elem_bytes, elem_bytes);
      }
      engine_.resume(*f, rt.complete);
    });
  });
  engine_.block();
}

std::uint64_t Domain::amo(AmoOp op, int dst_pe, std::uint64_t dst_off,
                          std::uint64_t operand, std::uint64_t cond) {
  const int me = current_pe();
  if (dst_off + sizeof(std::uint64_t) > segment_bytes_) {
    throw std::out_of_range("fabric::Domain::amo beyond segment");
  }
  sim::Time exec_at;
  sim::Time complete_at;
  if (node_routed(me, dst_pe)) {
    // Node-local atomic: a CPU lock-prefixed RMW on the owner's cache line,
    // serialized per target PE inside the channel. The NIC atomic unit (or
    // AM handler) is never involved.
    net::NodeChannel& ch = *node_;
    net::FaultInjector* fi = fabric_.fault_injector();
    NodeTele& nt = node_tele(me);
    sim::Time issue = net::NodeChannel::kAmoIssue;
    sim::Time rmw = net::NodeChannel::kAmoRmw;
    if (fi != nullptr) {
      issue = fi->dilate(me, issue);
      rmw = fi->dilate(me, rmw);
    }
    const net::NodeRoundTrip rt = ch.amo(me, dst_pe, engine_.now(), issue, rmw);
    if (fi != nullptr) {
      if (fi->pe_dead(dst_pe, rt.exec)) {
        fi->note_exhaustion(me, dst_pe, rt.exec);
        engine_.advance_to(rt.exec);
        throw PeerFailedError("amo", me, dst_pe, 1, rt.exec);
      }
      fi->note_delivery(me, dst_pe, rt.exec);
    }
    ++*nt.amos;
    ++*nt.elided_msgs;
    *nt.elided_bytes += sizeof(std::uint64_t);
    if (!ch.numa_local(me, dst_pe)) ++*nt.numa_remote;
    exec_at = rt.exec;
    complete_at = rt.complete;
  } else {
    const auto rt = fabric_.submit_amo(me, dst_pe, sw_, engine_.now());
    if (!rt.ok) {
      engine_.advance_to(rt.complete);
      throw PeerFailedError("amo", me, dst_pe, rt.attempts, rt.complete);
    }
    exec_at = rt.target_read;
    complete_at = rt.complete;
  }
  note_outstanding(me, exec_at);
  sim::Fiber* f = engine_.current_fiber();
  f->set_block_op("amo", dst_pe);
  auto fetched = std::make_shared<std::uint64_t>(0);
  engine_.schedule(exec_at, [this, op, dst_pe, dst_off, operand, cond,
                             fetched, t = exec_at] {
    std::uint64_t old = 0;
    std::byte* addr = segments_[dst_pe].data() + dst_off;
    std::memcpy(&old, addr, sizeof old);
    *fetched = old;
    std::uint64_t neu = old;
    bool store = true;
    switch (op) {
      case AmoOp::kSwap: neu = operand; break;
      case AmoOp::kCompareSwap:
        if (old == cond) neu = operand; else store = false;
        break;
      case AmoOp::kFetchAdd: neu = old + operand; break;
      case AmoOp::kFetchAnd: neu = old & operand; break;
      case AmoOp::kFetchOr: neu = old | operand; break;
      case AmoOp::kFetchXor: neu = old ^ operand; break;
    }
    if (store) {
      std::memcpy(addr, &neu, sizeof neu);
      if (write_hook_) write_hook_({dst_pe, dst_off, sizeof neu, t});
    }
  });
  engine_.schedule(complete_at,
                   [this, f, complete_at] { engine_.resume(*f, complete_at); });
  engine_.block();
  return *fetched;
}

void Domain::quiet() {
  const int me = current_pe();
  engine_.advance_to(outstanding_[me]);
}

}  // namespace fabric
