#include "fabric/domain.hpp"

#include <algorithm>
#include <cstdlib>
#include <cassert>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace fabric {

namespace {
std::string peer_failed_msg(const char* op, int src_pe, int dst_pe,
                            int attempts, sim::Time t) {
  std::ostringstream os;
  os << op << " from pe " << src_pe << " to pe " << dst_pe << " failed after "
     << attempts << " attempt(s) at t=" << sim::format_time(t)
     << " (retransmit budget exhausted; peer dead or sustained loss)";
  return os.str();
}
}  // namespace

PeerFailedError::PeerFailedError(const char* op, int src_pe, int dst_pe,
                                 int attempts, sim::Time t)
    : std::runtime_error(peer_failed_msg(op, src_pe, dst_pe, attempts, t)),
      op_(op),
      src_pe_(src_pe),
      dst_pe_(dst_pe),
      attempts_(attempts),
      time_(t) {}

Domain::ZeroedBuffer::ZeroedBuffer(std::size_t n)
    : p_(static_cast<std::byte*>(std::calloc(n ? n : 1, 1))) {
  if (p_ == nullptr) throw std::bad_alloc();
}

Domain::ZeroedBuffer::~ZeroedBuffer() { std::free(p_); }

Domain::Domain(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
               std::size_t segment_bytes)
    : engine_(engine),
      fabric_(fabric),
      sw_(std::move(sw)),
      segment_bytes_(segment_bytes) {
  segments_.reserve(fabric_.npes());
  for (int i = 0; i < fabric_.npes(); ++i) {
    segments_.emplace_back(segment_bytes_);
  }
  outstanding_.assign(fabric_.npes(), 0);
}

std::byte* Domain::segment(int pe) {
  assert(pe >= 0 && pe < npes());
  return segments_[pe].data();
}

const std::byte* Domain::segment(int pe) const {
  assert(pe >= 0 && pe < npes());
  return segments_[pe].data();
}

int Domain::current_pe() const {
  sim::Fiber* f = engine_.current_fiber();
  assert(f != nullptr && "fabric operations require a PE fiber context");
  return f->pe();
}

void Domain::note_outstanding(int src_pe, sim::Time t) {
  outstanding_[src_pe] = std::max(outstanding_[src_pe], t);
}

sim::Time Domain::in_order_delivery(int src_pe, int dst_pe, sim::Time delivered) {
  if (fifo_.empty()) fifo_.resize(static_cast<std::size_t>(npes()));
  auto& row = fifo_[static_cast<std::size_t>(src_pe)];
  if (row.empty()) row.assign(static_cast<std::size_t>(npes()), 0);
  sim::Time& last = row[static_cast<std::size_t>(dst_pe)];
  // Clamping only ever delays a message to strictly after the latest
  // delivery already scheduled on this pair. Strictly: a timestamp tie
  // would let a later message's memcpy run in the same event batch as the
  // earlier one's wake, and a waiter woken by a data+flag pair must get to
  // consume the slot before the pair's next generation lands on it.
  last = delivered > last ? delivered : last + 1;
  return last;
}

void Domain::deliver(int dst_pe, std::uint64_t dst_off,
                     std::vector<std::byte> data, sim::Time t) {
  engine_.schedule(t, [this, dst_pe, dst_off, payload = std::move(data), t] {
    assert(dst_off + payload.size() <= segment_bytes_);
    std::memcpy(segments_[dst_pe].data() + dst_off, payload.data(),
                payload.size());
    if (write_hook_) write_hook_({dst_pe, dst_off, payload.size(), t});
  });
}

void Domain::poke(int dst_pe, std::uint64_t dst_off, const void* src,
                  std::size_t n, sim::Time t) {
  assert(dst_off + n <= segment_bytes_);
  std::memcpy(segments_[dst_pe].data() + dst_off, src, n);
  if (write_hook_) write_hook_({dst_pe, dst_off, n, t});
}

net::PutCompletion Domain::put(int dst_pe, std::uint64_t dst_off,
                               const void* src, std::size_t n,
                               bool pipelined) {
  const int me = current_pe();
  if (dst_off + n > segment_bytes_) {
    throw std::out_of_range("fabric::Domain::put beyond segment");
  }
  auto c = fabric_.submit_put(me, dst_pe, n, sw_, engine_.now(), pipelined);
  if (!c.ok) {
    // Don't record the give-up time as outstanding: the bytes never landed,
    // and quiet() must not stall on them.
    engine_.advance_to(c.local_complete);
    throw PeerFailedError("put", me, dst_pe, c.attempts, c.delivered);
  }
  c.delivered = in_order_delivery(me, dst_pe, c.delivered);
  note_outstanding(me, c.delivered);
  // Capture the payload now: OpenSHMEM putmem guarantees the source buffer
  // is reusable on return.
  std::vector<std::byte> data(n);
  std::memcpy(data.data(), src, n);
  deliver(dst_pe, dst_off, std::move(data), c.delivered);
  engine_.advance_to(c.local_complete);
  return c;
}

net::PutCompletion Domain::put_scatter(int dst_pe, const ScatterRec* recs,
                                       std::size_t nrecs, const void* payload,
                                       std::size_t payload_bytes,
                                       bool pipelined) {
  const int me = current_pe();
  for (std::size_t i = 0; i < nrecs; ++i) {
    if (recs[i].dst_off + recs[i].len > segment_bytes_ ||
        static_cast<std::size_t>(recs[i].payload_off) + recs[i].len >
            payload_bytes) {
      throw std::out_of_range("fabric::Domain::put_scatter beyond segment");
    }
  }
  // One wire message: packed payload plus an (offset, length) header per
  // record. The whole vector shares a single injection cost — that is the
  // entire point of write combining.
  const std::size_t wire = payload_bytes + nrecs * kScatterRecWire;
  auto c = fabric_.submit_put(me, dst_pe, wire, sw_, engine_.now(), pipelined);
  if (!c.ok) {
    engine_.advance_to(c.local_complete);
    throw PeerFailedError("put_scatter", me, dst_pe, c.attempts, c.delivered);
  }
  c.delivered = in_order_delivery(me, dst_pe, c.delivered);
  note_outstanding(me, c.delivered);
  std::vector<std::byte> data(payload_bytes);
  std::memcpy(data.data(), payload, payload_bytes);
  std::vector<ScatterRec> rv(recs, recs + nrecs);
  engine_.schedule(c.delivered, [this, dst_pe, rv = std::move(rv),
                                 data = std::move(data), t = c.delivered] {
    for (const ScatterRec& r : rv) {
      std::memcpy(segments_[dst_pe].data() + r.dst_off,
                  data.data() + r.payload_off, r.len);
      if (write_hook_) write_hook_({dst_pe, r.dst_off, r.len, t});
    }
  });
  engine_.advance_to(c.local_complete);
  return c;
}

void Domain::get(void* dst, int src_pe, std::uint64_t src_off, std::size_t n) {
  const int me = current_pe();
  if (src_off + n > segment_bytes_) {
    throw std::out_of_range("fabric::Domain::get beyond segment");
  }
  const auto rt = fabric_.submit_get(me, src_pe, n, sw_, engine_.now());
  if (!rt.ok) {
    engine_.advance_to(rt.complete);
    throw PeerFailedError("get", me, src_pe, rt.attempts, rt.complete);
  }
  sim::Fiber* f = engine_.current_fiber();
  f->set_block_op("get", src_pe);
  // Snapshot target memory at the moment the NIC services the read, then
  // hand the bytes to the blocked initiator at reply time.
  engine_.schedule(rt.target_read, [this, f, dst, src_pe, src_off, n, rt] {
    auto snapshot = std::make_shared<std::vector<std::byte>>(n);
    std::memcpy(snapshot->data(), segments_[src_pe].data() + src_off, n);
    engine_.schedule(rt.complete, [this, f, dst, snapshot, rt] {
      std::memcpy(dst, snapshot->data(), snapshot->size());
      engine_.resume(*f, rt.complete);
    });
  });
  engine_.block();
}

void Domain::iput_hw(int dst_pe, std::uint64_t dst_off,
                     std::ptrdiff_t dst_stride, const void* src,
                     std::ptrdiff_t src_stride, std::size_t elem_bytes,
                     std::size_t nelems, bool pipelined) {
  assert(sw_.hw_strided && "iput_hw requires a hardware-strided profile");
  const int me = current_pe();
  if (nelems == 0) return;
  const std::uint64_t span =
      dst_off + (nelems - 1) * static_cast<std::uint64_t>(dst_stride) * elem_bytes +
      elem_bytes;
  if (span > segment_bytes_) {
    throw std::out_of_range("fabric::Domain::iput_hw beyond segment");
  }
  auto c = fabric_.submit_strided_put(me, dst_pe, elem_bytes, nelems,
                                      sw_, engine_.now(), pipelined);
  if (!c.ok) {
    engine_.advance_to(c.local_complete);
    throw PeerFailedError("iput", me, dst_pe, c.attempts, c.delivered);
  }
  c.delivered = in_order_delivery(me, dst_pe, c.delivered);
  note_outstanding(me, c.delivered);
  // Gather the source elements at issue time.
  std::vector<std::byte> data(elem_bytes * nelems);
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < nelems; ++i) {
    std::memcpy(data.data() + i * elem_bytes,
                s + static_cast<std::ptrdiff_t>(i) * src_stride *
                        static_cast<std::ptrdiff_t>(elem_bytes),
                elem_bytes);
  }
  // Scatter at the target at delivery time.
  engine_.schedule(c.delivered, [this, dst_pe, dst_off, dst_stride, elem_bytes,
                                 nelems, payload = std::move(data),
                                 t = c.delivered] {
    for (std::size_t i = 0; i < nelems; ++i) {
      const std::uint64_t off =
          dst_off + i * static_cast<std::uint64_t>(dst_stride) * elem_bytes;
      std::memcpy(segments_[dst_pe].data() + off,
                  payload.data() + i * elem_bytes, elem_bytes);
      if (write_hook_) write_hook_({dst_pe, off, elem_bytes, t});
    }
  });
  engine_.advance_to(c.local_complete);
}

void Domain::iget_hw(void* dst, std::ptrdiff_t dst_stride, int src_pe,
                     std::uint64_t src_off, std::ptrdiff_t src_stride,
                     std::size_t elem_bytes, std::size_t nelems) {
  assert(sw_.hw_strided && "iget_hw requires a hardware-strided profile");
  const int me = current_pe();
  if (nelems == 0) return;
  const auto rt = fabric_.submit_strided_get(me, src_pe, elem_bytes, nelems,
                                             sw_, engine_.now());
  if (!rt.ok) {
    engine_.advance_to(rt.complete);
    throw PeerFailedError("iget", me, src_pe, rt.attempts, rt.complete);
  }
  sim::Fiber* f = engine_.current_fiber();
  f->set_block_op("iget", src_pe);
  engine_.schedule(rt.target_read, [this, f, dst, dst_stride, src_pe, src_off,
                                    src_stride, elem_bytes, nelems, rt] {
    auto snapshot = std::make_shared<std::vector<std::byte>>(elem_bytes * nelems);
    for (std::size_t i = 0; i < nelems; ++i) {
      const std::uint64_t off =
          src_off + i * static_cast<std::uint64_t>(src_stride) * elem_bytes;
      std::memcpy(snapshot->data() + i * elem_bytes,
                  segments_[src_pe].data() + off, elem_bytes);
    }
    engine_.schedule(rt.complete, [this, f, dst, dst_stride, elem_bytes,
                                   nelems, snapshot, rt] {
      auto* d = static_cast<std::byte*>(dst);
      for (std::size_t i = 0; i < nelems; ++i) {
        std::memcpy(d + static_cast<std::ptrdiff_t>(i) * dst_stride *
                            static_cast<std::ptrdiff_t>(elem_bytes),
                    snapshot->data() + i * elem_bytes, elem_bytes);
      }
      engine_.resume(*f, rt.complete);
    });
  });
  engine_.block();
}

std::uint64_t Domain::amo(AmoOp op, int dst_pe, std::uint64_t dst_off,
                          std::uint64_t operand, std::uint64_t cond) {
  const int me = current_pe();
  if (dst_off + sizeof(std::uint64_t) > segment_bytes_) {
    throw std::out_of_range("fabric::Domain::amo beyond segment");
  }
  const auto rt = fabric_.submit_amo(me, dst_pe, sw_, engine_.now());
  if (!rt.ok) {
    engine_.advance_to(rt.complete);
    throw PeerFailedError("amo", me, dst_pe, rt.attempts, rt.complete);
  }
  note_outstanding(me, rt.target_read);
  sim::Fiber* f = engine_.current_fiber();
  f->set_block_op("amo", dst_pe);
  auto fetched = std::make_shared<std::uint64_t>(0);
  engine_.schedule(rt.target_read, [this, op, dst_pe, dst_off, operand, cond,
                                    fetched, t = rt.target_read] {
    std::uint64_t old = 0;
    std::byte* addr = segments_[dst_pe].data() + dst_off;
    std::memcpy(&old, addr, sizeof old);
    *fetched = old;
    std::uint64_t neu = old;
    bool store = true;
    switch (op) {
      case AmoOp::kSwap: neu = operand; break;
      case AmoOp::kCompareSwap:
        if (old == cond) neu = operand; else store = false;
        break;
      case AmoOp::kFetchAdd: neu = old + operand; break;
      case AmoOp::kFetchAnd: neu = old & operand; break;
      case AmoOp::kFetchOr: neu = old | operand; break;
      case AmoOp::kFetchXor: neu = old ^ operand; break;
    }
    if (store) {
      std::memcpy(addr, &neu, sizeof neu);
      if (write_hook_) write_hook_({dst_pe, dst_off, sizeof neu, t});
    }
  });
  engine_.schedule(rt.complete, [this, f, rt] { engine_.resume(*f, rt.complete); });
  engine_.block();
  return *fetched;
}

void Domain::quiet() {
  const int me = current_pe();
  engine_.advance_to(outstanding_[me]);
}

}  // namespace fabric
