#include "fabric/verbs.hpp"

namespace fabric::verbs {

Hca::Hca(sim::Engine& engine, net::Fabric& fabric, std::size_t mr_bytes,
         net::SwProfile sw)
    : domain_(engine, fabric, std::move(sw), mr_bytes) {}

}  // namespace fabric::verbs
