// fabric::dmapp — a Cray-DMAPP-flavored one-sided interface.
//
// DMAPP is the system API under Cray SHMEM, Cray CAF, and Cray UPC on
// Gemini/Aries machines (paper §I, §III, Table I). Its distinguishing
// capabilities, which the paper's results depend on, are:
//
//   * hardware scatter/gather: dmapp_iput/iget move 1-D strided element
//     lists in a single NIC transaction (this is why Cray's shmem_iput is
//     fast and why the 2dim_strided algorithm wins on the XC30, Figure 6);
//   * a rich NIC-executed AMO set (AFADD, ACSWAP, AAX — fetch-add,
//     compare-swap, and bitwise ops);
//   * explicit global sync (gsync) for remote completion.
//
// Blocking and non-blocking-implicit (nbi) variants mirror the real API's
// dmapp_put / dmapp_put_nbi split.
#pragma once

#include <cstdint>

#include "fabric/domain.hpp"
#include "net/profiles.hpp"

namespace fabric::dmapp {

class Context {
 public:
  /// One symmetric data segment of `seg_bytes` per PE. Profile defaults to
  /// raw DMAPP on a Cray XC30 (Aries).
  Context(sim::Engine& engine, net::Fabric& fabric, std::size_t seg_bytes,
          net::SwProfile sw = net::sw_profile(net::Library::kDmapp,
                                              net::Machine::kXC30));

  Domain& domain() { return domain_; }
  int npes() const { return domain_.npes(); }
  std::byte* seg(int pe) { return domain_.segment(pe); }

  // ---- contiguous ----
  void put(int pe, std::uint64_t dst_off, const void* src, std::size_t n) {
    domain_.put(pe, dst_off, src, n, /*pipelined=*/false);
  }
  void put_nbi(int pe, std::uint64_t dst_off, const void* src, std::size_t n) {
    domain_.put(pe, dst_off, src, n, /*pipelined=*/true);
  }
  void get(void* dst, int pe, std::uint64_t src_off, std::size_t n) {
    domain_.get(dst, pe, src_off, n);
  }

  // ---- hardware strided (strides in elements, as in dmapp_iput) ----
  void iput(int pe, std::uint64_t dst_off, std::ptrdiff_t dst_stride,
            const void* src, std::ptrdiff_t src_stride,
            std::size_t elem_bytes, std::size_t nelems) {
    domain_.iput_hw(pe, dst_off, dst_stride, src, src_stride, elem_bytes,
                    nelems, /*pipelined=*/false);
  }
  void iput_nbi(int pe, std::uint64_t dst_off, std::ptrdiff_t dst_stride,
                const void* src, std::ptrdiff_t src_stride,
                std::size_t elem_bytes, std::size_t nelems) {
    domain_.iput_hw(pe, dst_off, dst_stride, src, src_stride, elem_bytes,
                    nelems, /*pipelined=*/true);
  }
  void iget(void* dst, std::ptrdiff_t dst_stride, int pe,
            std::uint64_t src_off, std::ptrdiff_t src_stride,
            std::size_t elem_bytes, std::size_t nelems) {
    domain_.iget_hw(dst, dst_stride, pe, src_off, src_stride, elem_bytes,
                    nelems);
  }

  // ---- NIC atomics ----
  std::uint64_t afadd(int pe, std::uint64_t off, std::uint64_t v) {
    return domain_.amo(AmoOp::kFetchAdd, pe, off, v);
  }
  std::uint64_t acswap(int pe, std::uint64_t off, std::uint64_t cmp,
                       std::uint64_t swp) {
    return domain_.amo(AmoOp::kCompareSwap, pe, off, swp, cmp);
  }
  std::uint64_t afax(AmoOp bitop, int pe, std::uint64_t off,
                     std::uint64_t mask) {
    return domain_.amo(bitop, pe, off, mask);
  }
  std::uint64_t aswap(int pe, std::uint64_t off, std::uint64_t v) {
    return domain_.amo(AmoOp::kSwap, pe, off, v);
  }

  /// Waits for global completion of all NBI transfers from this PE.
  void gsync_wait() { domain_.quiet(); }

 private:
  Domain domain_;
};

}  // namespace fabric::dmapp
