// Domain: the functional core of every simulated RDMA-capable fabric API.
//
// A Domain binds together the DES engine, a net::Fabric timing oracle, and a
// software profile, and actually moves bytes between the registered memory
// segments of simulated PEs at the virtual times the oracle dictates:
//
//   * put        — payload captured at issue (OpenSHMEM local-completion
//                  semantics), memcpy'd into the target segment at delivery.
//   * get        — target memory snapshotted at the request's service time,
//                  initiator blocked until the reply arrives.
//   * amo        — read-modify-write executed in the delivery event at the
//                  target (atomicity is trivial: one event at a time).
//   * iput/iget  — NIC-offloaded 1-D strided transfers (only when the
//                  profile has hw_strided; software stacks loop puts above).
//   * quiet      — block until every remote completion this PE issued has
//                  landed.
//
// A write hook fires on every remote update of a PE's segment so higher
// layers can implement shmem_wait_until without polling.
//
// The vendor-style APIs (fabric::verbs, fabric::dmapp), the OpenSHMEM
// transports, and the MPI-3 RMA subset are all thin veneers over Domain with
// different profiles and capability surfaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "net/model.hpp"
#include "net/node_channel.hpp"
#include "sim/engine.hpp"

namespace fabric {

/// Thrown by one-sided operations when the reliable-delivery layer gave up:
/// the retransmit budget was exhausted because the peer is dead (or loss is
/// sustained beyond the RetryPolicy's budget). Carries enough context for
/// runtimes to map it to language-level failure codes (STAT_FAILED_IMAGE).
class PeerFailedError : public std::runtime_error {
 public:
  PeerFailedError(const char* op, int src_pe, int dst_pe, int attempts,
                  sim::Time t);

  const char* op() const { return op_; }
  int src_pe() const { return src_pe_; }
  int dst_pe() const { return dst_pe_; }
  int attempts() const { return attempts_; }
  sim::Time time() const { return time_; }

 private:
  const char* op_;
  int src_pe_;
  int dst_pe_;
  int attempts_;
  sim::Time time_;
};

/// Remote atomic operation kinds (the OpenSHMEM/DMAPP AMO set used by the
/// paper: swap, compare-and-swap, fetch-add, fetch-inc, and bitwise ops).
enum class AmoOp {
  kSwap,
  kCompareSwap,
  kFetchAdd,
  kFetchAnd,
  kFetchOr,
  kFetchXor,
};

/// One record of a scatter (write-combining) put: `len` payload bytes
/// starting at `payload_off` in the packed payload land at `dst_off` in the
/// target segment. Mirrors the iovec-style descriptors of ARMCI_PutV, MPI
/// indexed datatypes, and the GASNet access-region idiom.
struct ScatterRec {
  std::uint64_t dst_off;    ///< destination offset in the target segment
  std::uint32_t len;        ///< bytes for this record
  std::uint32_t payload_off;///< source offset in the packed payload
};

/// Wire overhead charged per scatter record: an (offset, length) header
/// travels with each record in the packed message.
inline constexpr std::size_t kScatterRecWire = 12;

/// Notification of a remote update to a PE's segment.
struct WriteEvent {
  int pe;                 ///< segment owner
  std::uint64_t offset;   ///< first byte updated
  std::size_t len;        ///< bytes updated
  sim::Time time;         ///< virtual delivery time
};

class Domain {
 public:
  /// One segment of `segment_bytes` is allocated per PE; segments are
  /// symmetric (same size, addressable by (pe, offset)).
  Domain(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
         std::size_t segment_bytes);

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  int npes() const { return fabric_.npes(); }
  std::size_t segment_bytes() const { return segment_bytes_; }
  const net::SwProfile& sw() const { return sw_; }
  net::Fabric& fabric() { return fabric_; }
  sim::Engine& engine() { return engine_; }

  /// Base address of `pe`'s segment (host pointer; valid for local reads
  /// and for the delivery machinery).
  std::byte* segment(int pe);
  const std::byte* segment(int pe) const;

  /// Registers the hook invoked at every remote write/AMO delivery.
  void set_write_hook(std::function<void(const WriteEvent&)> hook) {
    write_hook_ = std::move(hook);
  }

  /// Enables the node-local shared-segment transport: same-node puts, gets,
  /// strided/scatter transfers, and AMOs complete via direct memory
  /// operations priced by a net::NodeChannel (SPSC rings for small
  /// messages, NUMA-aware memcpy for bulk) and produce zero fabric
  /// messages. Byte movement still rides the per-pair in-order streams, so
  /// delivery ordering — and with it same-seed reproducibility — is
  /// unchanged. Elided fabric traffic is counted under the obs `node.*`
  /// family. No-op when `opts.enabled` is false; idempotent.
  void enable_node_transport(const net::NodeTransportOptions& opts);
  /// The active node transport, or nullptr when disabled.
  net::NodeChannel* node_transport() { return node_.get(); }
  const net::NodeChannel* node_transport() const { return node_.get(); }

  // ---- one-sided operations; must be called from the issuing PE's fiber ----

  /// Contiguous put. Returns after local completion (source reusable);
  /// remote completion is tracked for quiet(). If `pipelined`, the call
  /// models a non-blocking-implicit (nbi) injection. The returned times let
  /// callers with stronger semantics (e.g. GASNet's remotely-blocking
  /// gasnet_put) wait for the delivery themselves.
  net::PutCompletion put(int dst_pe, std::uint64_t dst_off, const void* src,
                         std::size_t n, bool pipelined = false);

  /// Writes `n` bytes into `dst_pe`'s segment immediately (at the current
  /// scheduler event's virtual time `t`) and fires the write hook. Used by
  /// active-message handlers, which mutate target memory from the scheduler
  /// context rather than through the NIC.
  void poke(int dst_pe, std::uint64_t dst_off, const void* src, std::size_t n,
            sim::Time t);

  /// Contiguous get; blocks the calling fiber until data is available.
  void get(void* dst, int src_pe, std::uint64_t src_off, std::size_t n);

  /// Vectored (write-combining) put: a single wire message carrying a packed
  /// payload plus kScatterRecWire bytes of header per record; each record is
  /// applied (memcpy + write hook) at delivery. This is the transport for
  /// iovec-style interfaces (ARMCI_PutV, MPI indexed datatypes, GASNet
  /// access regions) and the CAF runtime's aggregation buffer.
  net::PutCompletion put_scatter(int dst_pe, const ScatterRec* recs,
                                 std::size_t nrecs, const void* payload,
                                 std::size_t payload_bytes,
                                 bool pipelined = true);

  /// NIC-offloaded 1-D strided put: nelems elements of elem_bytes, source
  /// stride sst elements, destination stride dst elements (strides in
  /// *elements* as in shmem_iput). Requires sw().hw_strided.
  void iput_hw(int dst_pe, std::uint64_t dst_off, std::ptrdiff_t dst_stride,
               const void* src, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems,
               bool pipelined = false);

  /// NIC-offloaded 1-D strided get; blocks until complete.
  void iget_hw(void* dst, std::ptrdiff_t dst_stride, int src_pe,
               std::uint64_t src_off, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems);

  /// 64-bit remote atomic; blocks until the fetched value returns.
  /// `operand` is the swap/add/mask value; `cond` only used by kCompareSwap.
  std::uint64_t amo(AmoOp op, int dst_pe, std::uint64_t dst_off,
                    std::uint64_t operand, std::uint64_t cond = 0);

  /// Blocks until all puts/AMOs issued by this PE have remotely completed.
  void quiet();

  /// Ordering fence. In this model fence is implemented as quiet (the
  /// strongest legal implementation; see DESIGN.md).
  void fence() { quiet(); }

  /// Largest remote-completion timestamp outstanding for `pe`.
  sim::Time outstanding(int pe) const { return outstanding_[pe]; }

 private:
  int current_pe() const;
  void note_outstanding(int src_pe, sim::Time t);

  // ---- node-local transport ----
  //
  // When node_ is set and the destination shares the issuing PE's node, the
  // one-sided ops below route through it: the NodeChannel supplies
  // (local_complete, delivered) times — ring push or NUMA memcpy — and the
  // message then joins the same pair stream/clamp machinery as fabric
  // traffic. Faults are always honored on this path (the shared segment of
  // a killed peer is detached; stragglers copy slowly).

  bool node_routed(int src_pe, int dst_pe) const {
    return node_ != nullptr && fabric_.same_node(src_pe, dst_pe);
  }
  /// Cached per-PE obs counter handles for the node.* family.
  struct NodeTele {
    std::uint64_t* puts = nullptr;
    std::uint64_t* gets = nullptr;
    std::uint64_t* amos = nullptr;
    std::uint64_t* scatters = nullptr;
    std::uint64_t* strided = nullptr;
    std::uint64_t* ring_msgs = nullptr;
    std::uint64_t* ring_stalls = nullptr;
    std::uint64_t* bulk_msgs = nullptr;
    std::uint64_t* numa_remote = nullptr;
    std::uint64_t* elided_msgs = nullptr;
    std::uint64_t* elided_bytes = nullptr;
  };
  NodeTele& node_tele(int pe);
  /// Prices a same-node one-way transfer (ring when small and contiguous,
  /// NUMA memcpy otherwise) with fault dilation, bumps ring/bulk telemetry,
  /// and fails if the peer's segment is detached before delivery.
  /// `extra_copy` carries per-element/record gaps (forces the bulk path).
  /// Returns {local_complete, delivered}.
  net::PutCompletion node_oneway(const char* op, int me, int dst_pe,
                                 std::size_t wire_bytes, sim::Time extra_copy,
                                 NodeTele& t);

  // ---- pair streams ----
  //
  // All puts (contiguous, scatter, strided) ride per-(src, dst) in-order
  // delivery streams. A pair gets a dense pair id on first use (per-src
  // open-addressed map, SoA state arrays indexed by pair id — no nested
  // npes-sized rows, which at 16k PEs used to cost gigabytes). Each queued
  // message is a pooled PendingMsg with a pooled payload buffer; exactly
  // one engine event per stream is armed at a time, carrying the head
  // message's *reserved* sequence number so the global (time, seq) pop
  // order — and therefore every simulated result — is byte-identical to
  // scheduling one closure event per message.

  struct PendingMsg {
    enum class Op : std::uint8_t { kContig, kScatter, kStrided };

    PendingMsg* next;       ///< FIFO link within the pair stream
    sim::Time t;            ///< clamped delivery time
    std::uint64_t seq;      ///< engine seq reserved at the issue site
    int dst_pe;
    Op op;
    std::uint8_t buf_cls;   ///< payload buffer size class (log2 capacity)
    std::uint32_t elem_bytes;    // kStrided
    std::uint32_t nelems;        // kStrided: elements; kScatter: records
    std::uint64_t dst_off;       // kContig / kStrided base offset
    std::ptrdiff_t dst_stride;   // kStrided, in elements
    std::uint32_t payload_bytes; // payload length within buf
    std::uint32_t payload_off;   // kScatter: payload start (after records)
    std::byte* buf;              ///< pooled; records (scatter) + payload
  };

  /// Slab pool of PendingMsg nodes (free list; no per-message heap traffic
  /// in steady state).
  class MsgPool {
   public:
    PendingMsg* acquire();
    void release(PendingMsg* m) {
      m->next = free_;
      free_ = m;
    }

   private:
    static constexpr std::size_t kSlabMsgs = 256;
    struct Slab {
      PendingMsg msgs[kSlabMsgs];
    };
    std::vector<std::unique_ptr<Slab>> slabs_;
    PendingMsg* free_ = nullptr;
    PendingMsg* bump_ = nullptr;
    std::size_t bump_left_ = 0;
  };

  /// Power-of-two size-class pool for payload buffers. Buffers are recycled
  /// through per-class free lists (the next pointer lives in the buffer's
  /// first bytes while free); everything is freed at Domain teardown.
  class BufPool {
   public:
    std::byte* acquire(std::size_t n, std::uint8_t* cls_out);
    void release(std::byte* p, std::uint8_t cls);
    ~BufPool();

   private:
    std::byte* free_[48] = {};
    std::vector<std::byte*> all_;
  };

  /// Dense pair ids: per-src open-addressed map dst -> id (linear probing,
  /// power-of-two capacity). Communication degree per PE is small in every
  /// workload (tree fan-ins, halo neighbors), so tables stay tiny.
  std::uint32_t pair_id(int src_pe, int dst_pe);

  /// In-order (RC-style) delivery clamp for one pair: a message never lands
  /// before an earlier message on the same pair, even when the timing
  /// oracle produced an inversion (size inversion on the intra-node path,
  /// loss retransmits). Strictly increasing: a timestamp tie would let a
  /// later message's memcpy run in the same event batch as the earlier
  /// one's wake, and a waiter woken by a data+flag pair must get to consume
  /// the slot before the pair's next generation lands on it. This is the
  /// same-pair point-to-point ordering real RDMA transports give, and the
  /// property the CAF deferred-quiet pipeline relies on for WAW safety.
  sim::Time clamp_in_order(std::uint32_t pair, sim::Time delivered) {
    sim::Time& last = fifo_last_[pair];
    last = delivered > last ? delivered : last + 1;
    return last;
  }

  /// Queues `m` on its pair stream; arms the stream's delivery event if the
  /// stream was idle. `m->t`/`m->seq` must already be set.
  void stream_append(std::uint32_t pair, PendingMsg* m);
  /// Delivery event body: applies the head message of `pair`, recycles it,
  /// and re-arms the stream for the next message (at its own reserved seq).
  void stream_fire(std::uint32_t pair);
  static void stream_fire_tramp(void* ctx, std::uint64_t pair, std::uint64_t);
  void apply(const PendingMsg& m);

  /// Zero-initialized segment storage backed by calloc so large segments
  /// get lazily-zeroed pages from the OS (simulations with thousands of
  /// PEs would otherwise spend their time memset-ing untouched memory).
  class ZeroedBuffer {
   public:
    ZeroedBuffer() = default;
    explicit ZeroedBuffer(std::size_t n);
    ~ZeroedBuffer();
    ZeroedBuffer(ZeroedBuffer&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
    ZeroedBuffer& operator=(ZeroedBuffer&& o) noexcept {
      std::swap(p_, o.p_);
      return *this;
    }
    ZeroedBuffer(const ZeroedBuffer&) = delete;
    ZeroedBuffer& operator=(const ZeroedBuffer&) = delete;
    std::byte* data() { return p_; }
    const std::byte* data() const { return p_; }

   private:
    std::byte* p_ = nullptr;
  };

  sim::Engine& engine_;
  net::Fabric& fabric_;
  std::unique_ptr<net::NodeChannel> node_;  ///< null = fabric-only (default)
  std::vector<NodeTele> node_tele_;
  net::SwProfile sw_;
  std::size_t segment_bytes_;
  std::vector<ZeroedBuffer> segments_;
  std::vector<sim::Time> outstanding_;

  MsgPool msg_pool_;
  BufPool buf_pool_;
  struct PairSlot {
    int dst;           ///< -1 marks an empty slot
    std::uint32_t id;
  };
  struct PairTable {
    std::vector<PairSlot> slots;  ///< power-of-two, linear probing
    std::uint32_t count = 0;
  };
  std::vector<PairTable> pair_map_;   ///< per-src dst -> dense pair id
  // SoA per-pair stream state, indexed by pair id.
  std::vector<sim::Time> fifo_last_;  ///< latest delivery scheduled on pair
  std::vector<PendingMsg*> head_;     ///< oldest queued message (FIFO)
  std::vector<PendingMsg*> tail_;

  std::function<void(const WriteEvent&)> write_hook_;
};

}  // namespace fabric
