#include "mpi3/rma.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace mpi3 {

Window::Window(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
               std::size_t win_bytes)
    : engine_(engine) {
  if (win_bytes <= reserved_bytes()) {
    throw std::invalid_argument("mpi3::Window: window too small");
  }
  domain_ = std::make_unique<fabric::Domain>(engine, fabric, std::move(sw),
                                             win_bytes);
  domain_->set_write_hook([this](const fabric::WriteEvent& ev) { on_write(ev); });
  watchers_.resize(domain_->npes());
  barrier_gen_.assign(domain_->npes(), 0);
  const std::uint64_t base = (reserved_bytes() + 15) & ~std::uint64_t{15};
  allocator_ = std::make_unique<shmem::FreeListAllocator>(base,
                                                          win_bytes - base);
  alloc_cursor_.assign(domain_->npes(), 0);
}

Window::~Window() = default;

void Window::launch(std::function<void()> rank_main) {
  for (int r = 0; r < size(); ++r) engine_.spawn(r, rank_main);
}

int Window::rank() const {
  sim::Fiber* f = engine_.current_fiber();
  assert(f != nullptr);
  return f->pe();
}

void Window::put(const void* origin, std::size_t n, int target_rank,
                 std::uint64_t target_off) {
  domain_->put(target_rank, target_off, origin, n, /*pipelined=*/false);
}

void Window::get(void* origin, std::size_t n, int target_rank,
                 std::uint64_t target_off) {
  domain_->get(origin, target_rank, target_off, n);
}

void Window::put_scatter(const fabric::ScatterRec* recs, std::size_t nrecs,
                         const void* payload, std::size_t payload_bytes,
                         int target_rank) {
  // A single MPI_Put with an indexed datatype pays one call overhead, not
  // one per record — model it as one non-pipelined injection.
  domain_->put_scatter(target_rank, recs, nrecs, payload, payload_bytes,
                       /*pipelined=*/false);
}

std::int64_t Window::fetch_and_op_sum(std::int64_t operand, int target_rank,
                                      std::uint64_t target_off) {
  return static_cast<std::int64_t>(
      domain_->amo(fabric::AmoOp::kFetchAdd, target_rank, target_off,
                   static_cast<std::uint64_t>(operand)));
}

std::int64_t Window::compare_and_swap(std::int64_t compare, std::int64_t value,
                                      int target_rank,
                                      std::uint64_t target_off) {
  return static_cast<std::int64_t>(
      domain_->amo(fabric::AmoOp::kCompareSwap, target_rank, target_off,
                   static_cast<std::uint64_t>(value),
                   static_cast<std::uint64_t>(compare)));
}

std::int64_t Window::fetch_and_op_replace(std::int64_t value, int target_rank,
                                          std::uint64_t target_off) {
  return static_cast<std::int64_t>(
      domain_->amo(fabric::AmoOp::kSwap, target_rank, target_off,
                   static_cast<std::uint64_t>(value)));
}

std::int64_t Window::fetch_and_op_band(std::int64_t mask, int target_rank,
                                       std::uint64_t target_off) {
  return static_cast<std::int64_t>(
      domain_->amo(fabric::AmoOp::kFetchAnd, target_rank, target_off,
                   static_cast<std::uint64_t>(mask)));
}

std::int64_t Window::fetch_and_op_bor(std::int64_t mask, int target_rank,
                                      std::uint64_t target_off) {
  return static_cast<std::int64_t>(
      domain_->amo(fabric::AmoOp::kFetchOr, target_rank, target_off,
                   static_cast<std::uint64_t>(mask)));
}

std::int64_t Window::fetch_and_op_bxor(std::int64_t mask, int target_rank,
                                       std::uint64_t target_off) {
  return static_cast<std::int64_t>(
      domain_->amo(fabric::AmoOp::kFetchXor, target_rank, target_off,
                   static_cast<std::uint64_t>(mask)));
}

void Window::flush_all() { domain_->quiet(); }

std::uint64_t Window::allocate_collective(std::size_t bytes) {
  const int me = rank();
  const std::size_t cursor = alloc_cursor_[me];
  if (cursor == alloc_log_.size()) {
    auto got = allocator_->allocate(bytes);
    // Failures are logged too (result = kAllocFailed) so replaying ranks
    // observe the same failure at the same op index; later, smaller
    // allocations still succeed.
    alloc_log_.push_back({false, bytes, got ? *got : kAllocFailed});
  }
  alloc_cursor_[me] = cursor + 1;
  const AllocOp op = alloc_log_[cursor];  // copy: log grows during barrier
  if (op.is_free || op.arg != bytes) {
    throw std::logic_error("mpi3 allocate: collective mismatch");
  }
  if (op.result == kAllocFailed) {
    throw shmem::HeapExhaustedError("mpi3 allocate", bytes,
                                    allocator_->bytes_in_use(),
                                    allocator_->capacity());
  }
  barrier();
  return op.result;
}

void Window::free_collective(std::uint64_t off) {
  const std::size_t cursor = alloc_cursor_[rank()]++;
  if (cursor == alloc_log_.size()) {
    allocator_->release(off);
    alloc_log_.push_back({true, off, 0});
  }
  const AllocOp op = alloc_log_[cursor];
  if (!op.is_free || op.arg != off) {
    throw std::logic_error("mpi3 free: collective mismatch");
  }
  barrier();
}

void Window::wait_until_local(
    std::uint64_t off, const std::function<bool(std::int64_t)>& pred) {
  const int me = rank();
  auto load = [&] {
    std::int64_t v = 0;
    std::memcpy(&v, domain_->segment(me) + off, sizeof v);
    return v;
  };
  while (!pred(load())) {
    watchers_[me].push_back({off, engine_.current_fiber()});
    engine_.current_fiber()->set_block_op("mpi3_wait_until");
    engine_.block();
  }
}

void Window::block_until_ge(std::uint64_t off, std::int64_t gen) {
  wait_until_local(off, [gen](std::int64_t v) { return v >= gen; });
}

void Window::on_write(const fabric::WriteEvent& ev) {
  auto& list = watchers_[ev.pe];
  if (list.empty()) return;
  std::vector<sim::Fiber*> to_wake;
  for (auto it = list.begin(); it != list.end();) {
    if (it->off >= ev.offset && it->off < ev.offset + ev.len) {
      to_wake.push_back(it->fiber);
      it = list.erase(it);
    } else {
      ++it;
    }
  }
  for (sim::Fiber* f : to_wake) engine_.resume(*f, ev.time);
}

void Window::barrier() {
  const int me = rank();
  const int n = size();
  if (n == 1) return;
  const std::int64_t gen = ++barrier_gen_[me];
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    assert(round < 16);
    const int peer = (me + dist) % n;
    const std::uint64_t off =
        static_cast<std::uint64_t>(round) * sizeof(std::int64_t);
    put(&gen, sizeof gen, peer, off);
    block_until_ge(off, gen);
  }
}

}  // namespace mpi3
