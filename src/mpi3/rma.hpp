// mpi3::Window — the MPI-3.0 one-sided (RMA) subset used as the third
// conduit in the paper's motivation study (Figures 2-3).
//
// Models the passive-target usage PGAS runtimes employ: a window created
// over a symmetric buffer, MPI_Win_lock_all once at startup, MPI_Put /
// MPI_Get / MPI_Fetch_and_op / MPI_Compare_and_swap, and
// MPI_Win_flush(_all) for completion. The software profile charges the
// heavier per-operation path of an MPI library (window bookkeeping, datatype
// checks, target synchronization rules), which is exactly the latency gap
// Figure 2 shows at small sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "fabric/domain.hpp"
#include "net/profiles.hpp"
#include "shmem/heap.hpp"

namespace mpi3 {

class Window {
 public:
  /// Creates a window of `win_bytes` on every rank (MPI_Win_allocate over
  /// COMM_WORLD) and enters a passive-target lock_all epoch.
  Window(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
         std::size_t win_bytes);
  ~Window();

  void launch(std::function<void()> rank_main);

  int rank() const;
  int size() const { return domain_->npes(); }
  sim::Engine& engine() { return engine_; }
  fabric::Domain& domain() { return *domain_; }
  std::byte* base(int rank) { return domain_->segment(rank); }

  /// MPI_Put: origin buffer reusable on return; remote completion requires
  /// flush. (MPI says reuse needs flush too; the simulated payload capture
  /// is strictly stronger and benign.)
  void put(const void* origin, std::size_t n, int target_rank,
           std::uint64_t target_off);
  /// MPI_Get followed by MPI_Win_flush(target): blocking read.
  void get(void* origin, std::size_t n, int target_rank,
           std::uint64_t target_off);
  /// MPI_Put with an indexed datatype: one RMA call ships the packed payload
  /// and scatters it per `recs`. Remote completion requires flush, like put.
  void put_scatter(const fabric::ScatterRec* recs, std::size_t nrecs,
                   const void* payload, std::size_t payload_bytes,
                   int target_rank);
  /// MPI_Fetch_and_op(MPI_SUM) on a 64-bit target.
  std::int64_t fetch_and_op_sum(std::int64_t operand, int target_rank,
                                std::uint64_t target_off);
  /// MPI_Compare_and_swap on a 64-bit target.
  std::int64_t compare_and_swap(std::int64_t compare, std::int64_t value,
                                int target_rank, std::uint64_t target_off);
  /// MPI_Fetch_and_op(MPI_REPLACE): atomic swap.
  std::int64_t fetch_and_op_replace(std::int64_t value, int target_rank,
                                    std::uint64_t target_off);
  /// MPI_Fetch_and_op(MPI_BAND / MPI_BOR / MPI_BXOR).
  std::int64_t fetch_and_op_band(std::int64_t mask, int target_rank,
                                 std::uint64_t target_off);
  std::int64_t fetch_and_op_bor(std::int64_t mask, int target_rank,
                                std::uint64_t target_off);
  std::int64_t fetch_and_op_bxor(std::int64_t mask, int target_rank,
                                 std::uint64_t target_off);
  /// MPI_Win_flush_all: all outstanding RMA from this rank complete.
  void flush_all();
  /// Collective window-memory allocation (MPI_Win_allocate_shared style
  /// bookkeeping): every rank calls with the same size, all receive the
  /// same offset. Includes a barrier.
  std::uint64_t allocate_collective(std::size_t bytes);
  void free_collective(std::uint64_t off);
  /// Blocks until the local int64 at `off` satisfies `pred` (an MPI_Win
  /// passive-target progress wait; used by layered runtimes).
  void wait_until_local(std::uint64_t off,
                        const std::function<bool(std::int64_t)>& pred);
  /// MPI_Barrier over COMM_WORLD (dissemination on flags in the window's
  /// reserved prefix).
  void barrier();

  static constexpr std::size_t reserved_bytes() { return 16 * sizeof(std::int64_t); }

 private:
  void block_until_ge(std::uint64_t off, std::int64_t gen);
  void on_write(const fabric::WriteEvent& ev);

  struct Watcher {
    std::uint64_t off;
    sim::Fiber* fiber;
  };

  sim::Engine& engine_;
  std::unique_ptr<fabric::Domain> domain_;
  std::vector<std::vector<Watcher>> watchers_;
  std::vector<std::int64_t> barrier_gen_;

  // collective allocation replay (like the other worlds)
  std::unique_ptr<shmem::FreeListAllocator> allocator_;
  struct AllocOp {
    bool is_free;
    std::uint64_t arg;
    std::uint64_t result;  // offset, or kAllocFailed when the alloc failed
  };
  static constexpr std::uint64_t kAllocFailed = ~std::uint64_t{0};
  std::vector<AllocOp> alloc_log_;
  std::vector<std::size_t> alloc_cursor_;
};

}  // namespace mpi3
