// First-fit free-list allocator over an abstract [0, capacity) byte range.
//
// Used twice in this repository, mirroring the paper's two allocation
// domains:
//   * the OpenSHMEM symmetric heap (shmalloc/shfree, §IV-A) — one shared
//     allocator instance produces identical offsets on every PE because
//     shmalloc is collective with identical sizes;
//   * the CAF managed buffer for non-symmetric remotely-accessible data
//     (§IV-A), carved per image out of a pre-shmalloc'ed slab.
//
// Offset-based (not pointer-based) so a single instance can describe
// allocations that exist at the same offset in many PEs' segments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <new>
#include <optional>
#include <sstream>
#include <string>

namespace shmem {

/// Thrown when a symmetric-heap or managed-slab allocation cannot be
/// satisfied. Derives from std::bad_alloc so legacy catch sites keep
/// working, but carries a descriptive message (which heap, requested size,
/// current usage) instead of the mute "std::bad_alloc". Runtimes that offer
/// stat= out-parameters (CAF allocate) catch it and return an error code.
class HeapExhaustedError : public std::bad_alloc {
 public:
  HeapExhaustedError(const std::string& where, std::uint64_t requested,
                     std::uint64_t in_use, std::uint64_t capacity)
      : requested_(requested), in_use_(in_use), capacity_(capacity) {
    std::ostringstream os;
    os << where << ": cannot allocate " << requested << " bytes (" << in_use
       << " of " << capacity << " in use)";
    msg_ = os.str();
  }

  const char* what() const noexcept override { return msg_.c_str(); }
  std::uint64_t requested() const { return requested_; }
  std::uint64_t in_use() const { return in_use_; }
  std::uint64_t capacity() const { return capacity_; }

 private:
  std::string msg_;
  std::uint64_t requested_;
  std::uint64_t in_use_;
  std::uint64_t capacity_;
};

class FreeListAllocator {
 public:
  /// Manages [base, base+capacity). All results are >= base and aligned to
  /// `alignment` (a power of two).
  FreeListAllocator(std::uint64_t base, std::uint64_t capacity,
                    std::uint64_t alignment = 16);

  /// Allocates `bytes` (rounded up to the alignment); returns std::nullopt
  /// when no suitable hole exists.
  std::optional<std::uint64_t> allocate(std::uint64_t bytes);

  /// Releases a block previously returned by allocate(). Throws
  /// std::invalid_argument for unknown offsets (double free / corruption).
  void release(std::uint64_t offset);

  std::uint64_t bytes_in_use() const { return in_use_; }
  std::uint64_t capacity() const { return capacity_; }
  std::size_t live_blocks() const { return sizes_.size(); }

  /// Invariant check used by property tests: free holes are disjoint,
  /// sorted, coalesced, and free+used == capacity.
  bool check_invariants() const;

 private:
  std::uint64_t align_up(std::uint64_t v) const {
    return (v + alignment_ - 1) & ~(alignment_ - 1);
  }

  std::uint64_t base_;
  std::uint64_t capacity_;
  std::uint64_t alignment_;
  std::map<std::uint64_t, std::uint64_t> holes_;  // offset -> size
  std::map<std::uint64_t, std::uint64_t> sizes_;  // live offset -> size
  std::uint64_t in_use_ = 0;
};

}  // namespace shmem
