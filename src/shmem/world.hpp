// shmem::World — an OpenSHMEM library implementation for simulated PEs.
//
// This is the communication layer the paper proposes CAF be built on. The
// surface follows the OpenSHMEM 1.x specification style (the routines in
// paper Table II), implemented over a fabric::Domain whose profile decides
// the vendor behaviour:
//
//   * Cray SHMEM      — DMAPP profile: shmem_iput/iget are single
//                       NIC-offloaded transactions (hw_strided);
//   * MVAPICH2-X SHMEM — verbs profile: shmem_iput/iget loop contiguous
//                       puts/gets in software (the behaviour Figure 7 and
//                       the Himeno discussion hinge on).
//
// Symmetric heap pointers returned by shmalloc() are host pointers into the
// calling PE's segment; any symmetric address can be passed as a target to
// RMA routines with a PE number, exactly like the real API.
//
// All methods must be called from a PE fiber (spawned via launch()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "fabric/domain.hpp"
#include "net/profiles.hpp"
#include "shmem/heap.hpp"

namespace shmem {

/// Comparison operators for shmem_wait_until.
enum class Cmp { kEq, kNe, kGt, kGe, kLt, kLe };

/// Reduction operators for the to_all collectives.
enum class ReduceOp { kSum, kProd, kMin, kMax, kAnd, kOr, kXor };

/// An OpenSHMEM active set: the PEs PE_start + k*2^logPE_stride for
/// k in [0, PE_size). The classic triplet addressing of the 1.x
/// collectives.
struct ActiveSet {
  int pe_start = 0;
  int log_pe_stride = 0;
  int pe_size = 1;

  int stride() const { return 1 << log_pe_stride; }
  int world_pe(int rel) const { return pe_start + rel * stride(); }
  /// Relative rank of a world PE in this set, or -1 if not a member.
  int rel_of(int pe) const {
    const int d = pe - pe_start;
    if (d < 0 || d % stride() != 0) return -1;
    const int rel = d / stride();
    return rel < pe_size ? rel : -1;
  }
};

/// Minimum pSync length (in int64 slots) our collectives require — one per
/// dissemination/tree round plus one broadcast flag (covers 2^16 PEs).
inline constexpr std::size_t kSyncSize = 17;

class World {
 public:
  /// Builds a SHMEM world of fabric.npes() PEs with `heap_bytes` of
  /// symmetric heap each (internal collective state is carved from the
  /// start of the heap).
  World(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
        std::size_t heap_bytes);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Spawns one fiber per PE running `pe_main`; equivalent to launching an
  /// SPMD OpenSHMEM program (start_pes). Call engine.run() afterwards.
  void launch(std::function<void()> pe_main);

  // ---- setup & query (shmem_my_pe / shmem_n_pes) ----
  int my_pe() const;
  int n_pes() const { return domain_->npes(); }
  sim::Engine& engine() { return engine_; }
  fabric::Domain& domain() { return *domain_; }
  const net::SwProfile& sw() const { return domain_->sw(); }

  // ---- symmetric memory (shmalloc / shfree); collective calls ----
  void* shmalloc(std::size_t bytes);
  void shfree(void* ptr);

  /// shmem_ptr: direct load/store access to `pe`'s copy of a symmetric
  /// object when `pe` is on the caller's node; nullptr otherwise.
  void* ptr(void* sym, int pe);

  // ---- RMA: contiguous ----
  void putmem(void* dst, const void* src, std::size_t n, int pe);
  void getmem(void* dst, const void* src, std::size_t n, int pe);
  void putmem_nbi(void* dst, const void* src, std::size_t n, int pe);
  /// shmemx-style vectored nbi put: the packed payload is delivered as ONE
  /// pipelined message and scattered at the target per `recs` (write
  /// combining). Records carry symmetric-heap offsets directly.
  void putmem_scatter_nbi(int pe, const fabric::ScatterRec* recs,
                          std::size_t nrecs, const void* payload,
                          std::size_t payload_bytes);

  template <typename T>
  void put(T* dst, const T* src, std::size_t nelems, int pe) {
    putmem(dst, src, nelems * sizeof(T), pe);
  }
  template <typename T>
  void get(T* dst, const T* src, std::size_t nelems, int pe) {
    getmem(dst, const_cast<T*>(src), nelems * sizeof(T), pe);
  }
  /// shmem_p / shmem_g single-element convenience.
  template <typename T>
  void p(T* dst, T value, int pe) {
    putmem(dst, &value, sizeof(T), pe);
  }
  template <typename T>
  T g(const T* src, int pe) {
    T v{};
    getmem(&v, const_cast<T*>(src), sizeof(T), pe);
    return v;
  }

  // ---- RMA: 1-D strided (shmem_iput / shmem_iget; strides in elements) ----
  void iputmem(void* dst, const void* src, std::ptrdiff_t dst_stride,
               std::ptrdiff_t src_stride, std::size_t elem_bytes,
               std::size_t nelems, int pe);
  void igetmem(void* dst, const void* src, std::ptrdiff_t dst_stride,
               std::ptrdiff_t src_stride, std::size_t elem_bytes,
               std::size_t nelems, int pe);
  template <typename T>
  void iput(T* dst, const T* src, std::ptrdiff_t dst_stride,
            std::ptrdiff_t src_stride, std::size_t nelems, int pe) {
    iputmem(dst, src, dst_stride, src_stride, sizeof(T), nelems, pe);
  }
  template <typename T>
  void iget(T* dst, const T* src, std::ptrdiff_t dst_stride,
            std::ptrdiff_t src_stride, std::size_t nelems, int pe) {
    igetmem(dst, const_cast<T*>(src), dst_stride, src_stride, sizeof(T),
            nelems, pe);
  }

  // ---- memory ordering ----
  void quiet();
  void fence();

  // ---- point-to-point sync (shmem_wait_until on 64-bit symmetric vars) ----
  void wait_until(const std::int64_t* ivar, Cmp cmp, std::int64_t value);

  // ---- atomics (64-bit, as used by the paper's lock design §IV-D) ----
  std::int64_t swap(std::int64_t* target, std::int64_t value, int pe);
  std::int64_t cswap(std::int64_t* target, std::int64_t cond,
                     std::int64_t value, int pe);
  std::int64_t fadd(std::int64_t* target, std::int64_t value, int pe);
  std::int64_t finc(std::int64_t* target, int pe);
  void add(std::int64_t* target, std::int64_t value, int pe);
  void inc(std::int64_t* target, int pe);
  std::int64_t fetch_and(std::int64_t* target, std::int64_t mask, int pe);
  std::int64_t fetch_or(std::int64_t* target, std::int64_t mask, int pe);
  std::int64_t fetch_xor(std::int64_t* target, std::int64_t mask, int pe);

  // ---- collectives over all PEs ----
  void barrier_all();
  /// Broadcasts nbytes from root's `buf` into every PE's `buf` (including
  /// the root's own, unlike shmem_broadcast32 — documented deviation kept
  /// for the CAF co_broadcast mapping).
  void broadcast(void* buf, std::size_t nbytes, int root);
  /// Element-wise reduction of `nelems` elements of T from src into dst on
  /// every PE (shmem_<T>_<op>_to_all with the whole world as active set).
  template <typename T>
  void reduce(T* dst, const T* src, std::size_t nelems, ReduceOp op);
  /// Concatenates nbytes from every PE (rank order) into dst on all PEs
  /// (shmem_fcollect).
  void fcollect(void* dst, const void* src, std::size_t nbytes);

  /// shmem_collect: like fcollect but each PE may contribute a different
  /// number of bytes; contributions are concatenated in PE order. The
  /// sizes are exchanged internally first.
  void collect(void* dst, const void* src, std::size_t nbytes);

  /// shmem_alltoall: PE i's j-th block of `block_bytes` lands in PE j's
  /// dst at block i. dst must hold n_pes()*block_bytes.
  void alltoall(void* dst, const void* src, std::size_t block_bytes);

  // ---- active-set collectives (shmem_barrier / shmem_broadcast64 /
  //      shmem_<T>_<op>_to_all with PE_start, logPE_stride, PE_size) ----

  /// shmem_barrier over an active set; pSync is a symmetric array of at
  /// least kSyncSize int64 slots, dedicated to this set.
  void barrier(const ActiveSet& as, std::int64_t* pSync);

  /// shmem_broadcast: root is *relative* to the active set, data lands in
  /// every member's dst (including the root's, as with broadcast()).
  void broadcast(const ActiveSet& as, void* dst, const void* src,
                 std::size_t nbytes, int root_rel, std::int64_t* pSync);

  /// shmem_<T>_<op>_to_all over an active set. pWrk is a symmetric staging
  /// array; this implementation requires pWrk to hold at least
  /// ceil(log2(PE_size)) * nelems elements (a documented strengthening of
  /// the spec's minimum, traded for slot-per-level overlap safety).
  template <typename T>
  void to_all(const ActiveSet& as, T* dst, const T* src, std::size_t nelems,
              ReduceOp op, T* pWrk, std::int64_t* pSync);

  // ---- OpenSHMEM global locks (single logical entity; §IV-D explains why
  //      these are NOT suitable for CAF locks) ----
  void set_lock(std::int64_t* lock);
  void clear_lock(std::int64_t* lock);
  int test_lock(std::int64_t* lock);

  // ---- introspection for tests/benches ----
  std::uint64_t offset_of(const void* sym) const;
  std::size_t heap_user_bytes() const;

 private:
  struct Watcher {
    std::uint64_t off;
    std::size_t len;
    sim::Fiber* fiber;
  };
  struct CollectiveState;  // per-PE internal offsets & generation counters

  std::uint64_t sym_off(const void* ptr, const char* what) const;
  void reduce_bytes(void* dst, const void* src, std::size_t nelems,
                    std::size_t elem_bytes,
                    const std::function<void(void*, const void*)>& combine);
  void to_all_bytes(const ActiveSet& as, void* dst, const void* src,
                    std::size_t nelems, std::size_t elem_bytes,
                    const std::function<void(void*, const void*)>& combine_all,
                    std::byte* pWrk, std::int64_t* pSync);
  /// Per-(PE, pSync) monotone generation counters for active-set flags.
  std::int64_t next_psync_gen(int pe, std::uint64_t psync_off);
  void validate_member(const ActiveSet& as, const char* what) const;
  void on_write(const fabric::WriteEvent& ev);
  std::int64_t load_i64(int pe, std::uint64_t off) const;

  sim::Engine& engine_;
  std::unique_ptr<fabric::Domain> domain_;
  std::unique_ptr<FreeListAllocator> allocator_;

  // Collective-allocation log: shmalloc/shfree are collective; the first
  // arriving PE performs the operation, later PEs replay the result.
  struct AllocOp {
    bool is_free;
    std::uint64_t arg;     // size for alloc, offset for free
    std::uint64_t result;  // offset for alloc, or kAllocFailed
  };
  static constexpr std::uint64_t kAllocFailed = ~std::uint64_t{0};
  std::vector<AllocOp> alloc_log_;
  std::vector<std::size_t> alloc_cursor_;  // per PE

  std::vector<std::vector<Watcher>> watchers_;  // per PE
  std::vector<std::unique_ptr<CollectiveState>> coll_;
  std::vector<std::unordered_map<std::uint64_t, std::int64_t>> psync_gens_;

  // Internal symmetric layout (offsets within each segment).
  std::uint64_t internal_bytes_ = 0;
  std::uint64_t barrier_flags_off_ = 0;   // kMaxRounds int64
  std::uint64_t bcast_flag_off_ = 0;      // 1 int64
  std::uint64_t reduce_flags_off_ = 0;    // kMaxRounds int64
  std::uint64_t reduce_slots_off_ = 0;    // kMaxRounds * kReduceSlotBytes

  static constexpr int kMaxRounds = 16;   // supports up to 65536 PEs
  static constexpr std::size_t kReduceSlotBytes = 8192;
};

namespace detail {

/// Element-wise combiner shared by reduce() and to_all().
template <typename T>
std::function<void(void*, const void*)> make_combiner(std::size_t nelems,
                                                      ReduceOp op) {
  auto combine_one = [op](void* acc_p, const void* in_p) {
    T acc;
    T in;
    std::memcpy(&acc, acc_p, sizeof(T));
    std::memcpy(&in, in_p, sizeof(T));
    switch (op) {
      case ReduceOp::kSum: acc = acc + in; break;
      case ReduceOp::kProd: acc = acc * in; break;
      case ReduceOp::kMin: acc = in < acc ? in : acc; break;
      case ReduceOp::kMax: acc = acc < in ? in : acc; break;
      case ReduceOp::kAnd:
      case ReduceOp::kOr:
      case ReduceOp::kXor:
        if constexpr (std::is_integral_v<T>) {
          if (op == ReduceOp::kAnd) acc = acc & in;
          if (op == ReduceOp::kOr) acc = acc | in;
          if (op == ReduceOp::kXor) acc = acc ^ in;
        }
        break;
    }
    std::memcpy(acc_p, &acc, sizeof(T));
  };
  return [combine_one, nelems](void* a, const void* b) {
    auto* ap = static_cast<std::byte*>(a);
    const auto* bp = static_cast<const std::byte*>(b);
    for (std::size_t i = 0; i < nelems; ++i) {
      combine_one(ap + i * sizeof(T), bp + i * sizeof(T));
    }
  };
}

}  // namespace detail

template <typename T>
void World::to_all(const ActiveSet& as, T* dst, const T* src,
                   std::size_t nelems, ReduceOp op, T* pWrk,
                   std::int64_t* pSync) {
  static_assert(std::is_trivially_copyable_v<T>);
  // pWrk size is validated in bytes against the tree depth inside
  // to_all_bytes; callers size it with log2(PE_size)*nelems elements.
  to_all_bytes(as, dst, src, nelems, sizeof(T),
               detail::make_combiner<T>(nelems, op),
               reinterpret_cast<std::byte*>(pWrk), pSync);
}

template <typename T>
void World::reduce(T* dst, const T* src, std::size_t nelems, ReduceOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  reduce_bytes(dst, src, nelems, sizeof(T),
               detail::make_combiner<T>(nelems, op));
}

}  // namespace shmem
