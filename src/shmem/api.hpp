// C-style OpenSHMEM shim, mirroring the right-hand side of paper Figure 1.
//
// The object API (shmem::World) is the primary interface; this shim binds
// classic global-function names (start_pes, shmalloc, shmem_int_put, ...) to
// a thread-local "current world" so example programs can be written exactly
// like the paper's OpenSHMEM listing. Bind a world with ApiGuard before
// launching PEs.
#pragma once

#include <cstddef>

#include "shmem/world.hpp"

namespace shmem {

/// RAII binding of the C-style API to a World for the guard's lifetime.
class ApiGuard {
 public:
  explicit ApiGuard(World& w);
  ~ApiGuard();
  ApiGuard(const ApiGuard&) = delete;
  ApiGuard& operator=(const ApiGuard&) = delete;
};

/// The world currently bound (never nullptr inside API functions; throws
/// std::logic_error when unbound).
World& current_world();

}  // namespace shmem

// ---- classic SGI/OpenSHMEM spellings --------------------------------------

/// No-op initializer kept for source compatibility with Figure 1; PEs are
/// launched by World::launch.
void start_pes(int npes_hint);

int my_pe();
int num_pes();

void* shmalloc(std::size_t bytes);
void shfree(void* ptr);

void shmem_barrier_all();
void shmem_quiet();
void shmem_fence();

void shmem_putmem(void* dst, const void* src, std::size_t n, int pe);
void shmem_getmem(void* dst, const void* src, std::size_t n, int pe);

void shmem_int_put(int* dst, const int* src, std::size_t nelems, int pe);
void shmem_int_get(int* dst, const int* src, std::size_t nelems, int pe);
void shmem_int_iput(int* dst, const int* src, std::ptrdiff_t dst_stride,
                    std::ptrdiff_t src_stride, std::size_t nelems, int pe);
void shmem_int_iget(int* dst, const int* src, std::ptrdiff_t dst_stride,
                    std::ptrdiff_t src_stride, std::size_t nelems, int pe);

long long shmem_longlong_swap(long long* target, long long value, int pe);
long long shmem_longlong_cswap(long long* target, long long cond,
                               long long value, int pe);
long long shmem_longlong_fadd(long long* target, long long value, int pe);
long long shmem_longlong_finc(long long* target, int pe);
void shmem_longlong_add(long long* target, long long value, int pe);
void shmem_longlong_inc(long long* target, int pe);

// typed put/get for the other common element types
void shmem_double_put(double* dst, const double* src, std::size_t nelems,
                      int pe);
void shmem_double_get(double* dst, const double* src, std::size_t nelems,
                      int pe);
void shmem_long_put(long* dst, const long* src, std::size_t nelems, int pe);
void shmem_long_get(long* dst, const long* src, std::size_t nelems, int pe);
void shmem_double_iput(double* dst, const double* src,
                       std::ptrdiff_t dst_stride, std::ptrdiff_t src_stride,
                       std::size_t nelems, int pe);
void shmem_double_iget(double* dst, const double* src,
                       std::ptrdiff_t dst_stride, std::ptrdiff_t src_stride,
                       std::size_t nelems, int pe);

// single-element convenience (shmem_p / shmem_g)
void shmem_int_p(int* dst, int value, int pe);
int shmem_int_g(const int* src, int pe);
void shmem_double_p(double* dst, double value, int pe);
double shmem_double_g(const double* src, int pe);

// point-to-point sync
void shmem_longlong_wait_until(long long* ivar, int cmp, long long value);
// cmp constants (SHMEM_CMP_*)
inline constexpr int SHMEM_CMP_EQ = 0;
inline constexpr int SHMEM_CMP_NE = 1;
inline constexpr int SHMEM_CMP_GT = 2;
inline constexpr int SHMEM_CMP_GE = 3;
inline constexpr int SHMEM_CMP_LT = 4;
inline constexpr int SHMEM_CMP_LE = 5;

// classic active-set collectives
void shmem_barrier(int PE_start, int logPE_stride, int PE_size,
                   long long* pSync);
void shmem_broadcast64(void* dst, const void* src, std::size_t nelems,
                       int PE_root, int PE_start, int logPE_stride,
                       int PE_size, long long* pSync);
void shmem_longlong_sum_to_all(long long* dst, const long long* src,
                               std::size_t nreduce, int PE_start,
                               int logPE_stride, int PE_size, long long* pWrk,
                               long long* pSync);
void shmem_double_max_to_all(double* dst, const double* src,
                             std::size_t nreduce, int PE_start,
                             int logPE_stride, int PE_size, double* pWrk,
                             long long* pSync);

// whole-world collectives and locks
void shmem_fcollect64(void* dst, const void* src, std::size_t nelems);
void shmem_set_lock(long long* lock);
void shmem_clear_lock(long long* lock);
int shmem_test_lock(long long* lock);

// shmem_ptr
void* shmem_ptr(void* sym, int pe);
