#include "shmem/heap.hpp"

#include <cassert>
#include <stdexcept>

namespace shmem {

FreeListAllocator::FreeListAllocator(std::uint64_t base, std::uint64_t capacity,
                                     std::uint64_t alignment)
    : base_(base), capacity_(capacity), alignment_(alignment) {
  assert((alignment & (alignment - 1)) == 0 && "alignment must be power of 2");
  assert(align_up(base) == base && "base must be aligned");
  if (capacity > 0) holes_[base] = capacity;
}

std::optional<std::uint64_t> FreeListAllocator::allocate(std::uint64_t bytes) {
  const std::uint64_t need = align_up(bytes == 0 ? alignment_ : bytes);
  for (auto it = holes_.begin(); it != holes_.end(); ++it) {
    if (it->second >= need) {
      const std::uint64_t off = it->first;
      const std::uint64_t remaining = it->second - need;
      holes_.erase(it);
      if (remaining > 0) holes_[off + need] = remaining;
      sizes_[off] = need;
      in_use_ += need;
      return off;
    }
  }
  return std::nullopt;
}

void FreeListAllocator::release(std::uint64_t offset) {
  auto it = sizes_.find(offset);
  if (it == sizes_.end()) {
    throw std::invalid_argument("FreeListAllocator::release: unknown block");
  }
  std::uint64_t off = offset;
  std::uint64_t size = it->second;
  sizes_.erase(it);
  in_use_ -= size;
  // Coalesce with the following hole.
  auto next = holes_.lower_bound(off);
  if (next != holes_.end() && off + size == next->first) {
    size += next->second;
    next = holes_.erase(next);
  }
  // Coalesce with the preceding hole.
  if (next != holes_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == off) {
      prev->second += size;
      return;
    }
  }
  holes_[off] = size;
}

bool FreeListAllocator::check_invariants() const {
  std::uint64_t free_total = 0;
  std::uint64_t prev_end = base_;
  bool first = true;
  for (const auto& [off, size] : holes_) {
    if (size == 0) return false;
    if (!first && off <= prev_end) return false;  // overlap or not coalesced
    // Adjacent holes must have a live block between them (coalescing).
    if (!first && off == prev_end) return false;
    prev_end = off + size;
    free_total += size;
    first = false;
  }
  if (prev_end > base_ + capacity_) return false;
  return free_total + in_use_ == capacity_;
}

}  // namespace shmem
