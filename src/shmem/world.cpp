#include "shmem/world.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace shmem {

namespace {

bool compare_i64(std::int64_t v, Cmp cmp, std::int64_t ref) {
  switch (cmp) {
    case Cmp::kEq: return v == ref;
    case Cmp::kNe: return v != ref;
    case Cmp::kGt: return v > ref;
    case Cmp::kGe: return v >= ref;
    case Cmp::kLt: return v < ref;
    case Cmp::kLe: return v <= ref;
  }
  return false;
}

}  // namespace

struct World::CollectiveState {
  std::int64_t barrier_gen = 0;
  std::int64_t bcast_gen = 0;
  std::int64_t reduce_gen = 0;
};

World::World(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
             std::size_t heap_bytes)
    : engine_(engine) {
  // Internal symmetric layout at the base of every segment.
  std::uint64_t off = 0;
  barrier_flags_off_ = off;
  off += kMaxRounds * sizeof(std::int64_t);
  bcast_flag_off_ = off;
  off += sizeof(std::int64_t);
  reduce_flags_off_ = off;
  off += kMaxRounds * sizeof(std::int64_t);
  reduce_slots_off_ = off;
  off += kMaxRounds * kReduceSlotBytes;
  internal_bytes_ = (off + 15) & ~std::uint64_t{15};
  if (heap_bytes <= internal_bytes_) {
    throw std::invalid_argument(
        "shmem::World: heap too small for internal collective state (need > " +
        std::to_string(internal_bytes_) + " bytes)");
  }

  domain_ = std::make_unique<fabric::Domain>(engine, fabric, std::move(sw),
                                             heap_bytes);
  domain_->set_write_hook([this](const fabric::WriteEvent& ev) { on_write(ev); });
  allocator_ = std::make_unique<FreeListAllocator>(internal_bytes_,
                                                   heap_bytes - internal_bytes_);
  alloc_cursor_.assign(domain_->npes(), 0);
  watchers_.resize(domain_->npes());
  psync_gens_.resize(domain_->npes());
  coll_.reserve(domain_->npes());
  for (int i = 0; i < domain_->npes(); ++i) {
    coll_.push_back(std::make_unique<CollectiveState>());
  }
}

World::~World() = default;

void World::launch(std::function<void()> pe_main) {
  for (int pe = 0; pe < n_pes(); ++pe) {
    engine_.spawn(pe, pe_main);
  }
}

int World::my_pe() const {
  sim::Fiber* f = engine_.current_fiber();
  assert(f != nullptr && "shmem calls require a PE fiber context");
  return f->pe();
}

std::uint64_t World::sym_off(const void* ptr, const char* what) const {
  const auto* base = domain_->segment(my_pe());
  const auto* p = static_cast<const std::byte*>(ptr);
  if (p < base || p >= base + domain_->segment_bytes()) {
    throw std::invalid_argument(std::string(what) +
                                ": address is not a symmetric heap address");
  }
  return static_cast<std::uint64_t>(p - base);
}

std::uint64_t World::offset_of(const void* sym) const {
  return sym_off(sym, "offset_of");
}

std::size_t World::heap_user_bytes() const {
  return domain_->segment_bytes() - internal_bytes_;
}

// ---------------------------------------------------------------------------
// Symmetric allocation (collective)
// ---------------------------------------------------------------------------

void* World::shmalloc(std::size_t bytes) {
  const int me = my_pe();
  const std::size_t cursor = alloc_cursor_[me];
  if (cursor == alloc_log_.size()) {
    auto got = allocator_->allocate(bytes);
    // Failures are logged too (result = kAllocFailed): PEs are not
    // synchronized here, so a replaying PE must observe the same failure at
    // the same op index. Later, smaller shmallocs still succeed.
    alloc_log_.push_back({false, bytes, got ? *got : kAllocFailed});
  }
  alloc_cursor_[me] = cursor + 1;
  // Copy, not reference: other PEs append to the log while we sit in the
  // barrier below, which can reallocate the vector.
  const AllocOp op = alloc_log_[cursor];
  if (op.is_free || op.arg != bytes) {
    throw std::logic_error(
        "shmalloc: collective call mismatch across PEs (differing sizes or "
        "interleaved shfree)");
  }
  if (op.result == kAllocFailed) {
    // No barrier: every PE throws at this op, so none reaches it.
    throw HeapExhaustedError("shmalloc (symmetric heap)", bytes,
                             allocator_->bytes_in_use(),
                             allocator_->capacity());
  }
  // The specification gives shmalloc an implicit barrier: all PEs own the
  // block when any PE returns.
  barrier_all();
  return domain_->segment(me) + op.result;
}

void World::shfree(void* ptr) {
  const int me = my_pe();
  const std::uint64_t off = sym_off(ptr, "shfree");
  const std::size_t cursor = alloc_cursor_[me]++;
  if (cursor == alloc_log_.size()) {
    allocator_->release(off);
    alloc_log_.push_back({true, off, 0});
  }
  const AllocOp op = alloc_log_[cursor];  // copy; see shmalloc
  if (!op.is_free || op.arg != off) {
    throw std::logic_error("shfree: collective call mismatch across PEs");
  }
  barrier_all();
}

void* World::ptr(void* sym, int pe) {
  const std::uint64_t off = sym_off(sym, "shmem_ptr");
  if (!domain_->fabric().same_node(my_pe(), pe)) return nullptr;
  return domain_->segment(pe) + off;
}

// ---------------------------------------------------------------------------
// RMA
// ---------------------------------------------------------------------------

void World::putmem(void* dst, const void* src, std::size_t n, int pe) {
  domain_->put(pe, sym_off(dst, "putmem"), src, n, /*pipelined=*/false);
}

void World::putmem_nbi(void* dst, const void* src, std::size_t n, int pe) {
  domain_->put(pe, sym_off(dst, "putmem_nbi"), src, n, /*pipelined=*/true);
}

void World::putmem_scatter_nbi(int pe, const fabric::ScatterRec* recs,
                               std::size_t nrecs, const void* payload,
                               std::size_t payload_bytes) {
  domain_->put_scatter(pe, recs, nrecs, payload, payload_bytes,
                       /*pipelined=*/true);
}

void World::getmem(void* dst, const void* src, std::size_t n, int pe) {
  domain_->get(dst, pe, sym_off(src, "getmem"), n);
}

void World::iputmem(void* dst, const void* src, std::ptrdiff_t dst_stride,
                    std::ptrdiff_t src_stride, std::size_t elem_bytes,
                    std::size_t nelems, int pe) {
  if (nelems == 0) return;
  const std::uint64_t dst_off = sym_off(dst, "iput");
  if (domain_->sw().hw_strided) {
    // Cray SHMEM: one DMAPP scatter transaction.
    domain_->iput_hw(pe, dst_off, dst_stride, src, src_stride, elem_bytes,
                     nelems, /*pipelined=*/false);
    return;
  }
  // MVAPICH2-X SHMEM: a software loop of contiguous blocking puts (paper
  // §V-B-2: "shmem_iput ... performing multiple shmem_putmem calls
  // underneath" — which is why naive and 2dim_strided coincide there).
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < nelems; ++i) {
    const std::uint64_t doff =
        dst_off + i * static_cast<std::uint64_t>(dst_stride) * elem_bytes;
    domain_->put(pe, doff,
                 s + static_cast<std::ptrdiff_t>(i) * src_stride *
                         static_cast<std::ptrdiff_t>(elem_bytes),
                 elem_bytes, /*pipelined=*/false);
  }
}

void World::igetmem(void* dst, const void* src, std::ptrdiff_t dst_stride,
                    std::ptrdiff_t src_stride, std::size_t elem_bytes,
                    std::size_t nelems, int pe) {
  if (nelems == 0) return;
  const std::uint64_t src_off = sym_off(src, "iget");
  if (domain_->sw().hw_strided) {
    domain_->iget_hw(dst, dst_stride, pe, src_off, src_stride, elem_bytes,
                     nelems);
    return;
  }
  auto* d = static_cast<std::byte*>(dst);
  for (std::size_t i = 0; i < nelems; ++i) {
    const std::uint64_t soff =
        src_off + i * static_cast<std::uint64_t>(src_stride) * elem_bytes;
    domain_->get(d + static_cast<std::ptrdiff_t>(i) * dst_stride *
                         static_cast<std::ptrdiff_t>(elem_bytes),
                 pe, soff, elem_bytes);
  }
}

void World::quiet() { domain_->quiet(); }
void World::fence() { domain_->fence(); }

// ---------------------------------------------------------------------------
// Point-to-point synchronization
// ---------------------------------------------------------------------------

std::int64_t World::load_i64(int pe, std::uint64_t off) const {
  std::int64_t v = 0;
  std::memcpy(&v, domain_->segment(pe) + off, sizeof v);
  return v;
}

void World::wait_until(const std::int64_t* ivar, Cmp cmp, std::int64_t value) {
  const int me = my_pe();
  const std::uint64_t off = sym_off(ivar, "wait_until");
  while (!compare_i64(load_i64(me, off), cmp, value)) {
    watchers_[me].push_back({off, sizeof(std::int64_t),
                             engine_.current_fiber()});
    engine_.current_fiber()->set_block_op("shmem_wait_until");
    engine_.block();
  }
}

void World::on_write(const fabric::WriteEvent& ev) {
  auto& list = watchers_[ev.pe];
  if (list.empty()) return;
  std::vector<sim::Fiber*> to_wake;
  for (auto it = list.begin(); it != list.end();) {
    const bool overlap =
        it->off < ev.offset + ev.len && ev.offset < it->off + it->len;
    if (overlap) {
      to_wake.push_back(it->fiber);
      it = list.erase(it);
    } else {
      ++it;
    }
  }
  for (sim::Fiber* f : to_wake) engine_.resume(*f, ev.time);
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

std::int64_t World::swap(std::int64_t* target, std::int64_t value, int pe) {
  return static_cast<std::int64_t>(domain_->amo(
      fabric::AmoOp::kSwap, pe, sym_off(target, "swap"),
      static_cast<std::uint64_t>(value)));
}

std::int64_t World::cswap(std::int64_t* target, std::int64_t cond,
                          std::int64_t value, int pe) {
  return static_cast<std::int64_t>(domain_->amo(
      fabric::AmoOp::kCompareSwap, pe, sym_off(target, "cswap"),
      static_cast<std::uint64_t>(value), static_cast<std::uint64_t>(cond)));
}

std::int64_t World::fadd(std::int64_t* target, std::int64_t value, int pe) {
  return static_cast<std::int64_t>(domain_->amo(
      fabric::AmoOp::kFetchAdd, pe, sym_off(target, "fadd"),
      static_cast<std::uint64_t>(value)));
}

std::int64_t World::finc(std::int64_t* target, int pe) {
  return fadd(target, 1, pe);
}

void World::add(std::int64_t* target, std::int64_t value, int pe) {
  (void)fadd(target, value, pe);
}

void World::inc(std::int64_t* target, int pe) { (void)finc(target, pe); }

std::int64_t World::fetch_and(std::int64_t* target, std::int64_t mask, int pe) {
  return static_cast<std::int64_t>(domain_->amo(
      fabric::AmoOp::kFetchAnd, pe, sym_off(target, "fetch_and"),
      static_cast<std::uint64_t>(mask)));
}

std::int64_t World::fetch_or(std::int64_t* target, std::int64_t mask, int pe) {
  return static_cast<std::int64_t>(domain_->amo(
      fabric::AmoOp::kFetchOr, pe, sym_off(target, "fetch_or"),
      static_cast<std::uint64_t>(mask)));
}

std::int64_t World::fetch_xor(std::int64_t* target, std::int64_t mask, int pe) {
  return static_cast<std::int64_t>(domain_->amo(
      fabric::AmoOp::kFetchXor, pe, sym_off(target, "fetch_xor"),
      static_cast<std::uint64_t>(mask)));
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

void World::barrier_all() {
  const int me = my_pe();
  const int n = n_pes();
  if (n == 1) return;
  auto& cs = *coll_[me];
  const std::int64_t gen = ++cs.barrier_gen;
  // Dissemination barrier: log2(n) rounds; in round r notify (me + 2^r) and
  // wait for (me - 2^r). Flag values are monotone generations, so slots are
  // reusable without sense reversal.
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    assert(round < kMaxRounds);
    const int peer = (me + dist) % n;
    auto* flag_addr = reinterpret_cast<std::int64_t*>(
        domain_->segment(me) + barrier_flags_off_) + round;
    putmem_nbi(flag_addr, &gen, sizeof gen, peer);
    wait_until(flag_addr, Cmp::kGe, gen);
  }
}

void World::broadcast(void* buf, std::size_t nbytes, int root) {
  const int me = my_pe();
  const int n = n_pes();
  auto& cs = *coll_[me];
  const std::int64_t gen = ++cs.bcast_gen;
  if (n == 1) return;
  const int vrank = (me - root + n) % n;
  auto* flag_addr = reinterpret_cast<std::int64_t*>(domain_->segment(me) +
                                                    bcast_flag_off_);
  // Binomial tree on virtual ranks (root == vrank 0).
  int mask = 1;
  if (vrank != 0) {
    while (!(vrank & mask)) mask <<= 1;
    wait_until(flag_addr, Cmp::kGe, gen);  // parent delivered data + flag
  } else {
    while (mask < n) mask <<= 1;
  }
  // Forward to children: vrank + m for each m = mask/2 ... 1.
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vrank + m < n) {
      const int child = (vrank + m + root) % n;
      // Same-pair deliveries are FIFO, so the flag trips only after the
      // data landed; skipping the quiet lets the root stream all subtree
      // sends back-to-back instead of paying a round trip per child.
      putmem_nbi(buf, buf, nbytes, child);
      putmem_nbi(flag_addr, &gen, sizeof gen, child);
    }
  }
}

void World::reduce_bytes(
    void* dst, const void* src, std::size_t nelems, std::size_t elem_bytes,
    const std::function<void(void*, const void*)>& combine_all) {
  const std::size_t bytes = nelems * elem_bytes;
  if (bytes > kReduceSlotBytes) {
    throw std::invalid_argument("reduce: payload exceeds internal slot");
  }
  const int me = my_pe();
  const int n = n_pes();
  if (dst != src) std::memmove(dst, src, bytes);
  if (n == 1) return;
  auto& cs = *coll_[me];
  const std::int64_t gen = ++cs.reduce_gen;
  // Binomial combine toward PE 0, one slot+flag per tree level, then
  // broadcast the result (§IV footnote: UHCAF reductions are built from
  // one-sided operations).
  int level = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++level) {
    assert(level < kMaxRounds);
    if (me & mask) {
      const int peer = me - mask;
      auto* slot = domain_->segment(me) + reduce_slots_off_ +
                   static_cast<std::size_t>(level) * kReduceSlotBytes;
      putmem_nbi(slot, dst, bytes, peer);
      // FIFO same-pair delivery orders the slot write before the flag.
      auto* flag = reinterpret_cast<std::int64_t*>(
          domain_->segment(me) + reduce_flags_off_) + level;
      putmem_nbi(flag, &gen, sizeof gen, peer);
      break;  // sent up; wait for the broadcast
    }
    if (me + mask < n) {
      auto* flag = reinterpret_cast<std::int64_t*>(
          domain_->segment(me) + reduce_flags_off_) + level;
      wait_until(flag, Cmp::kGe, gen);
      const auto* slot = domain_->segment(me) + reduce_slots_off_ +
                         static_cast<std::size_t>(level) * kReduceSlotBytes;
      combine_all(dst, slot);
    }
  }
  broadcast(dst, bytes, 0);
}

void World::fcollect(void* dst, const void* src, std::size_t nbytes) {
  const int me = my_pe();
  const int n = n_pes();
  auto* d = static_cast<std::byte*>(dst);
  for (int pe = 0; pe < n; ++pe) {
    putmem(d + static_cast<std::size_t>(me) * nbytes, src, nbytes, pe);
  }
  quiet();
  barrier_all();
}

void World::collect(void* dst, const void* src, std::size_t nbytes) {
  const int me = my_pe();
  const int n = n_pes();
  // Exchange contribution sizes through an internal reduce slot: reuse the
  // level-0 reduce slot as an n-wide size table (fits for n <= slot/8).
  if (static_cast<std::size_t>(n) * sizeof(std::int64_t) > kReduceSlotBytes) {
    throw std::invalid_argument("collect: too many PEs for the size table");
  }
  auto* sizes = reinterpret_cast<std::int64_t*>(domain_->segment(me) +
                                                reduce_slots_off_);
  const std::int64_t mine = static_cast<std::int64_t>(nbytes);
  for (int pe = 0; pe < n; ++pe) {
    putmem_nbi(&sizes[me], &mine, sizeof mine, pe);
  }
  quiet();
  barrier_all();
  std::uint64_t my_off = 0;
  for (int pe = 0; pe < me; ++pe) {
    my_off += static_cast<std::uint64_t>(sizes[pe]);
  }
  auto* d = static_cast<std::byte*>(dst);
  for (int pe = 0; pe < n; ++pe) {
    if (nbytes > 0) putmem_nbi(d + my_off, src, nbytes, pe);
  }
  quiet();
  barrier_all();
}

void World::alltoall(void* dst, const void* src, std::size_t block_bytes) {
  const int me = my_pe();
  const int n = n_pes();
  auto* d = static_cast<std::byte*>(dst);
  const auto* s = static_cast<const std::byte*>(src);
  for (int pe = 0; pe < n; ++pe) {
    putmem_nbi(d + static_cast<std::size_t>(me) * block_bytes,
               s + static_cast<std::size_t>(pe) * block_bytes, block_bytes,
               pe);
  }
  quiet();
  barrier_all();
}

// ---------------------------------------------------------------------------
// Active-set collectives (classic PE_start/logPE_stride/PE_size triplets)
// ---------------------------------------------------------------------------

std::int64_t World::next_psync_gen(int pe, std::uint64_t psync_off) {
  return ++psync_gens_[pe][psync_off];
}

void World::validate_member(const ActiveSet& as, const char* what) const {
  if (as.pe_size < 1 || as.pe_start < 0 ||
      as.world_pe(as.pe_size - 1) >= n_pes()) {
    throw std::invalid_argument(std::string(what) + ": active set out of range");
  }
  if (as.rel_of(my_pe()) < 0) {
    throw std::logic_error(std::string(what) +
                           ": calling PE is not in the active set");
  }
}

void World::barrier(const ActiveSet& as, std::int64_t* pSync) {
  validate_member(as, "shmem_barrier");
  const int me = my_pe();
  const int rel = as.rel_of(me);
  const int n = as.pe_size;
  if (n == 1) return;
  const std::uint64_t psync_off = sym_off(pSync, "shmem_barrier pSync");
  const std::int64_t gen = next_psync_gen(me, psync_off);
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    assert(round < static_cast<int>(kSyncSize) - 1);
    const int peer = as.world_pe((rel + dist) % n);
    auto* flag = pSync + round;
    putmem_nbi(flag, &gen, sizeof gen, peer);
    wait_until(flag, Cmp::kGe, gen);
  }
}

void World::broadcast(const ActiveSet& as, void* dst, const void* src,
                      std::size_t nbytes, int root_rel, std::int64_t* pSync) {
  validate_member(as, "shmem_broadcast");
  const int me = my_pe();
  const int rel = as.rel_of(me);
  const int n = as.pe_size;
  const std::uint64_t psync_off = sym_off(pSync, "shmem_broadcast pSync");
  const std::int64_t gen = next_psync_gen(me, psync_off);
  if (rel == root_rel && dst != src) std::memmove(dst, src, nbytes);
  if (n == 1) return;
  const int vrank = (rel - root_rel + n) % n;
  auto* flag = pSync + (kSyncSize - 1);
  int mask = 1;
  if (vrank != 0) {
    while (!(vrank & mask)) mask <<= 1;
    wait_until(flag, Cmp::kGe, gen);
  } else {
    while (mask < n) mask <<= 1;
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vrank + m < n) {
      const int child = as.world_pe((vrank + m + root_rel) % n);
      putmem_nbi(dst, dst, nbytes, child);
      quiet();
      putmem_nbi(flag, &gen, sizeof gen, child);
    }
  }
}

void World::to_all_bytes(
    const ActiveSet& as, void* dst, const void* src, std::size_t nelems,
    std::size_t elem_bytes,
    const std::function<void(void*, const void*)>& combine_all,
    std::byte* pWrk, std::int64_t* pSync) {
  validate_member(as, "shmem_to_all");
  const int me = my_pe();
  const int rel = as.rel_of(me);
  const int n = as.pe_size;
  const std::size_t nbytes = nelems * elem_bytes;
  if (dst != src) std::memmove(dst, src, nbytes);
  if (n == 1) return;
  const std::uint64_t psync_off = sym_off(pSync, "shmem_to_all pSync");
  (void)sym_off(pWrk, "shmem_to_all pWrk");
  const std::int64_t gen = next_psync_gen(me, psync_off);
  // Binomial combine toward relative rank 0 with one pWrk slot per tree
  // level (pWrk must hold ceil(log2(n)) * nelems elements), then broadcast.
  int level = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++level) {
    assert(level < static_cast<int>(kSyncSize) - 1);
    std::byte* slot = pWrk + static_cast<std::size_t>(level) * nbytes;
    auto* flag = pSync + level;
    if (rel & mask) {
      const int peer = as.world_pe(rel - mask);
      putmem_nbi(slot, dst, nbytes, peer);
      quiet();
      putmem_nbi(flag, &gen, sizeof gen, peer);
      break;
    }
    if (rel + mask < n) {
      wait_until(flag, Cmp::kGe, gen);
      combine_all(dst, slot);
    }
  }
  broadcast(as, dst, dst, nbytes, /*root_rel=*/0, pSync);
}

// ---------------------------------------------------------------------------
// OpenSHMEM global locks (test/set/clear) — a single logical lock entity.
// ---------------------------------------------------------------------------

void World::set_lock(std::int64_t* lock) {
  // The canonical portable implementation spins with compare-and-swap on
  // PE 0's copy of the lock word. This treats the symmetric variable as one
  // global lock — exactly the property (§IV-D) that makes the OpenSHMEM
  // lock API unsuitable for CAF's per-image locks.
  const std::int64_t ticket = my_pe() + 1;
  sim::Time backoff = 200;
  while (cswap(lock, 0, ticket, 0) != 0) {
    engine_.advance(backoff);
    backoff = std::min<sim::Time>(backoff * 2, 20'000);
  }
}

void World::clear_lock(std::int64_t* lock) {
  const std::int64_t ticket = my_pe() + 1;
  const std::int64_t prev = cswap(lock, ticket, 0, 0);
  if (prev != ticket) {
    throw std::logic_error("clear_lock: calling PE does not hold the lock");
  }
}

int World::test_lock(std::int64_t* lock) {
  return cswap(lock, 0, my_pe() + 1, 0) == 0 ? 0 : 1;
}

}  // namespace shmem
