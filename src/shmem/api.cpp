#include "shmem/api.hpp"

#include <stdexcept>

namespace shmem {

namespace {
thread_local World* g_world = nullptr;
}

ApiGuard::ApiGuard(World& w) {
  if (g_world != nullptr) {
    throw std::logic_error("shmem::ApiGuard: a world is already bound");
  }
  g_world = &w;
}

ApiGuard::~ApiGuard() { g_world = nullptr; }

World& current_world() {
  if (g_world == nullptr) {
    throw std::logic_error("shmem C API used with no bound World");
  }
  return *g_world;
}

}  // namespace shmem

using shmem::current_world;

void start_pes(int /*npes_hint*/) {}

int my_pe() { return current_world().my_pe(); }
int num_pes() { return current_world().n_pes(); }

void* shmalloc(std::size_t bytes) { return current_world().shmalloc(bytes); }
void shfree(void* ptr) { current_world().shfree(ptr); }

void shmem_barrier_all() { current_world().barrier_all(); }
void shmem_quiet() { current_world().quiet(); }
void shmem_fence() { current_world().fence(); }

void shmem_putmem(void* dst, const void* src, std::size_t n, int pe) {
  current_world().putmem(dst, src, n, pe);
}
void shmem_getmem(void* dst, const void* src, std::size_t n, int pe) {
  current_world().getmem(dst, src, n, pe);
}

void shmem_int_put(int* dst, const int* src, std::size_t nelems, int pe) {
  current_world().put(dst, src, nelems, pe);
}
void shmem_int_get(int* dst, const int* src, std::size_t nelems, int pe) {
  current_world().get(dst, src, nelems, pe);
}
void shmem_int_iput(int* dst, const int* src, std::ptrdiff_t dst_stride,
                    std::ptrdiff_t src_stride, std::size_t nelems, int pe) {
  current_world().iput(dst, src, dst_stride, src_stride, nelems, pe);
}
void shmem_int_iget(int* dst, const int* src, std::ptrdiff_t dst_stride,
                    std::ptrdiff_t src_stride, std::size_t nelems, int pe) {
  current_world().iget(dst, src, dst_stride, src_stride, nelems, pe);
}

long long shmem_longlong_swap(long long* target, long long value, int pe) {
  return current_world().swap(reinterpret_cast<std::int64_t*>(target), value,
                              pe);
}
long long shmem_longlong_cswap(long long* target, long long cond,
                               long long value, int pe) {
  return current_world().cswap(reinterpret_cast<std::int64_t*>(target), cond,
                               value, pe);
}
long long shmem_longlong_fadd(long long* target, long long value, int pe) {
  return current_world().fadd(reinterpret_cast<std::int64_t*>(target), value,
                              pe);
}
long long shmem_longlong_finc(long long* target, int pe) {
  return current_world().finc(reinterpret_cast<std::int64_t*>(target), pe);
}
void shmem_longlong_add(long long* target, long long value, int pe) {
  current_world().add(reinterpret_cast<std::int64_t*>(target), value, pe);
}
void shmem_longlong_inc(long long* target, int pe) {
  current_world().inc(reinterpret_cast<std::int64_t*>(target), pe);
}

void shmem_double_put(double* dst, const double* src, std::size_t nelems,
                      int pe) {
  current_world().put(dst, src, nelems, pe);
}
void shmem_double_get(double* dst, const double* src, std::size_t nelems,
                      int pe) {
  current_world().get(dst, src, nelems, pe);
}
void shmem_long_put(long* dst, const long* src, std::size_t nelems, int pe) {
  current_world().put(dst, src, nelems, pe);
}
void shmem_long_get(long* dst, const long* src, std::size_t nelems, int pe) {
  current_world().get(dst, src, nelems, pe);
}
void shmem_double_iput(double* dst, const double* src,
                       std::ptrdiff_t dst_stride, std::ptrdiff_t src_stride,
                       std::size_t nelems, int pe) {
  current_world().iput(dst, src, dst_stride, src_stride, nelems, pe);
}
void shmem_double_iget(double* dst, const double* src,
                       std::ptrdiff_t dst_stride, std::ptrdiff_t src_stride,
                       std::size_t nelems, int pe) {
  current_world().iget(dst, src, dst_stride, src_stride, nelems, pe);
}

void shmem_int_p(int* dst, int value, int pe) {
  current_world().p(dst, value, pe);
}
int shmem_int_g(const int* src, int pe) {
  return current_world().g(src, pe);
}
void shmem_double_p(double* dst, double value, int pe) {
  current_world().p(dst, value, pe);
}
double shmem_double_g(const double* src, int pe) {
  return current_world().g(src, pe);
}

void shmem_longlong_wait_until(long long* ivar, int cmp, long long value) {
  current_world().wait_until(reinterpret_cast<std::int64_t*>(ivar),
                             static_cast<shmem::Cmp>(cmp), value);
}

void shmem_barrier(int PE_start, int logPE_stride, int PE_size,
                   long long* pSync) {
  current_world().barrier(shmem::ActiveSet{PE_start, logPE_stride, PE_size},
                          reinterpret_cast<std::int64_t*>(pSync));
}
void shmem_broadcast64(void* dst, const void* src, std::size_t nelems,
                       int PE_root, int PE_start, int logPE_stride,
                       int PE_size, long long* pSync) {
  current_world().broadcast(shmem::ActiveSet{PE_start, logPE_stride, PE_size},
                            dst, src, nelems * 8, PE_root,
                            reinterpret_cast<std::int64_t*>(pSync));
}
void shmem_longlong_sum_to_all(long long* dst, const long long* src,
                               std::size_t nreduce, int PE_start,
                               int logPE_stride, int PE_size, long long* pWrk,
                               long long* pSync) {
  current_world().to_all(shmem::ActiveSet{PE_start, logPE_stride, PE_size},
                         reinterpret_cast<std::int64_t*>(dst),
                         reinterpret_cast<const std::int64_t*>(src), nreduce,
                         shmem::ReduceOp::kSum,
                         reinterpret_cast<std::int64_t*>(pWrk),
                         reinterpret_cast<std::int64_t*>(pSync));
}
void shmem_double_max_to_all(double* dst, const double* src,
                             std::size_t nreduce, int PE_start,
                             int logPE_stride, int PE_size, double* pWrk,
                             long long* pSync) {
  current_world().to_all(shmem::ActiveSet{PE_start, logPE_stride, PE_size},
                         dst, src, nreduce, shmem::ReduceOp::kMax, pWrk,
                         reinterpret_cast<std::int64_t*>(pSync));
}

void shmem_fcollect64(void* dst, const void* src, std::size_t nelems) {
  current_world().fcollect(dst, src, nelems * 8);
}
void shmem_set_lock(long long* lock) {
  current_world().set_lock(reinterpret_cast<std::int64_t*>(lock));
}
void shmem_clear_lock(long long* lock) {
  current_world().clear_lock(reinterpret_cast<std::int64_t*>(lock));
}
int shmem_test_lock(long long* lock) {
  return current_world().test_lock(reinterpret_cast<std::int64_t*>(lock));
}

void* shmem_ptr(void* sym, int pe) { return current_world().ptr(sym, pe); }
