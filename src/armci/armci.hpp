// armci::World — an ARMCI-like one-sided communication library.
//
// ARMCI (the Aggregate Remote Memory Copy Interface) is the other conduit
// UHCAF supports besides GASNet (paper Table I), and historically the
// runtime layer under Global Arrays. Its API differs from both GASNet and
// OpenSHMEM in ways that matter to a CAF runtime:
//
//   * collective memory registration  — ARMCI_Malloc returns the vector of
//     every process's base address (not symmetric offsets);
//   * native *strided* transfers      — ARMCI_PutS/GetS take per-dimension
//     stride and count arrays and move an N-dimensional patch in one call
//     (software-aggregated on most networks: the library pipelines the
//     contiguous runs, paying one injection gap per run);
//   * read-modify-write              — ARMCI_Rmw (fetch-add / swap only);
//   * mutexes                        — ARMCI_Create_mutexes / Lock(m, proc)
//     give per-process lock instances, which is actually a natural fit for
//     CAF locks (unlike OpenSHMEM's single global lock entity);
//   * ordering                       — ARMCI_Fence(proc) / AllFence.
//
// The simulation maps onto the same fabric::Domain machinery with its own
// software profile.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fabric/domain.hpp"
#include "net/profiles.hpp"
#include "shmem/heap.hpp"

namespace armci {

inline constexpr int kMaxStridedDims = 7;

/// Descriptor for ARMCI_PutS/GetS: counts[0] is the contiguous run length
/// in BYTES; counts[i>0] are repetition counts; strides[i] are byte strides
/// between consecutive blocks at level i (ARMCI's stride_levels convention).
struct StridedDesc {
  int stride_levels = 0;  // 0 => contiguous
  std::array<std::int64_t, kMaxStridedDims> counts{};
  std::array<std::int64_t, kMaxStridedDims> src_strides{};
  std::array<std::int64_t, kMaxStridedDims> dst_strides{};
};

class World {
 public:
  World(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
        std::size_t seg_bytes);
  ~World();

  void launch(std::function<void()> proc_main);

  int me() const;
  int nproc() const { return domain_->npes(); }
  sim::Engine& engine() { return engine_; }
  fabric::Domain& domain() { return *domain_; }
  std::byte* base(int proc) { return domain_->segment(proc); }
  std::size_t seg_bytes() const { return domain_->segment_bytes(); }

  /// ARMCI_Malloc: collective; every process contributes `bytes` and learns
  /// the offset (identical across processes in this model, like a
  /// symmetric allocation; real ARMCI returns per-process pointers).
  std::uint64_t malloc_collective(std::size_t bytes);
  void free_collective(std::uint64_t off);

  // ---- contiguous one-sided ----
  void put(int proc, std::uint64_t dst_off, const void* src, std::size_t n);
  void nb_put(int proc, std::uint64_t dst_off, const void* src, std::size_t n);
  void get(void* dst, int proc, std::uint64_t src_off, std::size_t n);

  /// ARMCI_PutV: vectored put. The descriptor list and packed payload move
  /// as ONE pipelined message; completion via fence/all_fence.
  void putv(int proc, const fabric::ScatterRec* recs, std::size_t nrecs,
            const void* payload, std::size_t payload_bytes);

  // ---- strided (ARMCI_PutS / ARMCI_GetS) ----
  /// Moves the N-d patch described by `d` from local memory at `src` into
  /// `proc`'s segment at dst_off. The library walks the contiguous runs and
  /// pipelines one injection per run (ARMCI's software aggregation).
  void puts(int proc, std::uint64_t dst_off, const void* src,
            const StridedDesc& d);
  void gets(void* dst, int proc, std::uint64_t src_off, const StridedDesc& d);

  // ---- RMW (ARMCI_Rmw): fetch-and-add and swap on 64-bit ----
  std::int64_t rmw_fetch_add(int proc, std::uint64_t off, std::int64_t v);
  std::int64_t rmw_swap(int proc, std::uint64_t off, std::int64_t v);

  // ---- ordering ----
  void fence(int proc);   ///< complete all ops to `proc` (modeled as quiet)
  void all_fence();       ///< complete all outstanding ops

  // ---- mutexes (ARMCI_Create_mutexes / Lock / Unlock) ----
  /// Collective: creates `count` mutexes hosted on every process; returns
  /// the handle base. Mutex m of process p is locked via lock(m, p).
  int create_mutexes(int count);
  void lock(int mutex, int proc);
  void unlock(int mutex, int proc);

  // ---- barrier (ARMCI relies on the host runtime; provided for tests) ----
  void barrier();

  /// Blocks until the int64 at `off` in the local segment satisfies `pred`
  /// (woken by remote deliveries; used by layered runtimes).
  void wait_until_local(std::uint64_t off,
                        const std::function<bool(std::int64_t)>& pred);

 private:
  struct Watcher {
    std::uint64_t off;
    sim::Fiber* fiber;
  };
  void wait_local_ge(std::uint64_t off, std::int64_t value);
  void on_write(const fabric::WriteEvent& ev);

  sim::Engine& engine_;
  std::unique_ptr<fabric::Domain> domain_;

  // collective allocation replay (ARMCI_Malloc is collective)
  std::uint64_t alloc_bump_;
  struct AllocOp {
    bool is_free;
    std::uint64_t arg;
    std::uint64_t result;  // offset, or kAllocFailed when the alloc failed
  };
  static constexpr std::uint64_t kAllocFailed = ~std::uint64_t{0};
  std::vector<AllocOp> alloc_log_;
  std::vector<std::size_t> alloc_cursor_;
  std::unique_ptr<shmem::FreeListAllocator> allocator_;

  std::vector<std::vector<Watcher>> watchers_;
  std::vector<std::int64_t> barrier_gen_;
  std::uint64_t barrier_flags_off_ = 0;
  std::uint64_t mutex_off_ = 0;  // packed ticket words, one per mutex
  int mutexes_ = 0;
  std::vector<char> mutex_created_;  // per-process: collective-call guard
  static constexpr int kMaxRounds = 16;

 public:
  static constexpr std::size_t reserved_bytes() {
    return kMaxRounds * sizeof(std::int64_t);
  }
};

}  // namespace armci
