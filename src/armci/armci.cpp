#include "armci/armci.hpp"

#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

#include "shmem/heap.hpp"

namespace armci {

World::World(sim::Engine& engine, net::Fabric& fabric, net::SwProfile sw,
             std::size_t seg_bytes)
    : engine_(engine) {
  if (seg_bytes <= reserved_bytes()) {
    throw std::invalid_argument("armci::World: segment too small");
  }
  domain_ = std::make_unique<fabric::Domain>(engine, fabric, std::move(sw),
                                             seg_bytes);
  domain_->set_write_hook([this](const fabric::WriteEvent& ev) { on_write(ev); });
  const std::uint64_t base = (reserved_bytes() + 15) & ~std::uint64_t{15};
  alloc_bump_ = base;
  allocator_ = std::make_unique<shmem::FreeListAllocator>(base,
                                                          seg_bytes - base);
  alloc_cursor_.assign(domain_->npes(), 0);
  watchers_.resize(domain_->npes());
  barrier_gen_.assign(domain_->npes(), 0);
  mutex_created_.assign(domain_->npes(), 0);
}

World::~World() = default;

void World::launch(std::function<void()> proc_main) {
  for (int p = 0; p < nproc(); ++p) engine_.spawn(p, proc_main);
}

int World::me() const {
  sim::Fiber* f = engine_.current_fiber();
  assert(f != nullptr && "armci calls require a process fiber context");
  return f->pe();
}

std::uint64_t World::malloc_collective(std::size_t bytes) {
  const int r = me();
  const std::size_t cursor = alloc_cursor_[r];
  if (cursor == alloc_log_.size()) {
    auto got = allocator_->allocate(bytes);
    // Failures are logged too (result = kAllocFailed) so replaying ranks
    // observe the same failure at the same op index; later, smaller
    // allocations still succeed.
    alloc_log_.push_back({false, bytes, got ? *got : kAllocFailed});
  }
  alloc_cursor_[r] = cursor + 1;
  const AllocOp op = alloc_log_[cursor];  // copy: log grows during barrier
  if (op.is_free || op.arg != bytes) {
    throw std::logic_error("ARMCI_Malloc: collective mismatch");
  }
  if (op.result == kAllocFailed) {
    throw shmem::HeapExhaustedError("ARMCI_Malloc", bytes,
                                    allocator_->bytes_in_use(),
                                    allocator_->capacity());
  }
  barrier();
  return op.result;
}

void World::free_collective(std::uint64_t off) {
  const std::size_t cursor = alloc_cursor_[me()]++;
  if (cursor == alloc_log_.size()) {
    allocator_->release(off);
    alloc_log_.push_back({true, off, 0});
  }
  const AllocOp op = alloc_log_[cursor];
  if (!op.is_free || op.arg != off) {
    throw std::logic_error("ARMCI_Free: collective mismatch");
  }
  barrier();
}

void World::put(int proc, std::uint64_t dst_off, const void* src,
                std::size_t n) {
  domain_->put(proc, dst_off, src, n, /*pipelined=*/false);
}

void World::nb_put(int proc, std::uint64_t dst_off, const void* src,
                   std::size_t n) {
  domain_->put(proc, dst_off, src, n, /*pipelined=*/true);
}

void World::putv(int proc, const fabric::ScatterRec* recs, std::size_t nrecs,
                 const void* payload, std::size_t payload_bytes) {
  domain_->put_scatter(proc, recs, nrecs, payload, payload_bytes,
                       /*pipelined=*/true);
}

void World::get(void* dst, int proc, std::uint64_t src_off, std::size_t n) {
  domain_->get(dst, proc, src_off, n);
}

void World::puts(int proc, std::uint64_t dst_off, const void* src,
                 const StridedDesc& d) {
  // ARMCI software aggregation: walk the patch's contiguous runs (counts[0]
  // bytes each) and pipeline one nb injection per run.
  if (d.stride_levels == 0) {
    put(proc, dst_off, src, static_cast<std::size_t>(d.counts[0]));
    return;
  }
  std::array<std::int64_t, kMaxStridedDims> idx{};
  const auto* s = static_cast<const std::byte*>(src);
  std::int64_t runs = 1;
  for (int l = 1; l <= d.stride_levels; ++l) runs *= d.counts[l];
  for (std::int64_t r = 0; r < runs; ++r) {
    std::int64_t soff = 0;
    std::int64_t doff = 0;
    for (int l = 1; l <= d.stride_levels; ++l) {
      soff += idx[l] * d.src_strides[l - 1];
      doff += idx[l] * d.dst_strides[l - 1];
    }
    domain_->put(proc, dst_off + static_cast<std::uint64_t>(doff), s + soff,
                 static_cast<std::size_t>(d.counts[0]), /*pipelined=*/true);
    for (int l = 1; l <= d.stride_levels; ++l) {
      if (++idx[l] < d.counts[l]) break;
      idx[l] = 0;
    }
  }
  // ARMCI_PutS is blocking: local completion of every run.
}

void World::gets(void* dst, int proc, std::uint64_t src_off,
                 const StridedDesc& d) {
  if (d.stride_levels == 0) {
    get(dst, proc, src_off, static_cast<std::size_t>(d.counts[0]));
    return;
  }
  std::array<std::int64_t, kMaxStridedDims> idx{};
  auto* dd = static_cast<std::byte*>(dst);
  std::int64_t runs = 1;
  for (int l = 1; l <= d.stride_levels; ++l) runs *= d.counts[l];
  for (std::int64_t r = 0; r < runs; ++r) {
    std::int64_t soff = 0;
    std::int64_t doff = 0;
    for (int l = 1; l <= d.stride_levels; ++l) {
      soff += idx[l] * d.src_strides[l - 1];
      doff += idx[l] * d.dst_strides[l - 1];
    }
    domain_->get(dd + doff, proc, src_off + static_cast<std::uint64_t>(soff),
                 static_cast<std::size_t>(d.counts[0]));
    for (int l = 1; l <= d.stride_levels; ++l) {
      if (++idx[l] < d.counts[l]) break;
      idx[l] = 0;
    }
  }
}

std::int64_t World::rmw_fetch_add(int proc, std::uint64_t off, std::int64_t v) {
  return static_cast<std::int64_t>(
      domain_->amo(fabric::AmoOp::kFetchAdd, proc, off,
                   static_cast<std::uint64_t>(v)));
}

std::int64_t World::rmw_swap(int proc, std::uint64_t off, std::int64_t v) {
  return static_cast<std::int64_t>(domain_->amo(
      fabric::AmoOp::kSwap, proc, off, static_cast<std::uint64_t>(v)));
}

void World::fence(int /*proc*/) {
  // Per-destination fences are modeled at full strength (see DESIGN.md on
  // fence == quiet).
  domain_->quiet();
}

void World::all_fence() { domain_->quiet(); }

int World::create_mutexes(int count) {
  // Collective: every process calls once.
  if (mutex_created_[me()]) {
    throw std::logic_error("ARMCI_Create_mutexes: already created");
  }
  mutex_created_[me()] = 1;
  mutex_off_ = malloc_collective(static_cast<std::size_t>(count) *
                                 sizeof(std::int64_t));
  std::memset(domain_->segment(me()) + mutex_off_, 0,
              static_cast<std::size_t>(count) * sizeof(std::int64_t));
  mutexes_ = count;
  barrier();
  return 0;
}

void World::lock(int mutex, int proc) {
  assert(mutex >= 0 && mutex < mutexes_);
  // Packed ticket mutex, like ARMCI's default implementation: fetch-add a
  // ticket, then poll remotely with backoff.
  constexpr std::int64_t kTicketOne = std::int64_t{1} << 32;
  const std::uint64_t off =
      mutex_off_ + static_cast<std::uint64_t>(mutex) * sizeof(std::int64_t);
  const std::int64_t grabbed = rmw_fetch_add(proc, off, kTicketOne);
  const std::int64_t my_ticket = grabbed >> 32;
  std::int64_t serving = grabbed & 0xffffffff;
  while (serving != my_ticket) {
    engine_.advance(2'000 * std::max<std::int64_t>(1, my_ticket - serving));
    serving = rmw_fetch_add(proc, off, 0) & 0xffffffff;
  }
}

void World::unlock(int mutex, int proc) {
  assert(mutex >= 0 && mutex < mutexes_);
  const std::uint64_t off =
      mutex_off_ + static_cast<std::uint64_t>(mutex) * sizeof(std::int64_t);
  (void)rmw_fetch_add(proc, off, 1);
}

void World::wait_local_ge(std::uint64_t off, std::int64_t value) {
  wait_until_local(off, [value](std::int64_t v) { return v >= value; });
}

void World::wait_until_local(std::uint64_t off,
                             const std::function<bool(std::int64_t)>& pred) {
  const int r = me();
  auto load = [&] {
    std::int64_t v = 0;
    std::memcpy(&v, domain_->segment(r) + off, sizeof v);
    return v;
  };
  while (!pred(load())) {
    watchers_[r].push_back({off, engine_.current_fiber()});
    engine_.current_fiber()->set_block_op("armci_wait_until");
    engine_.block();
  }
}

void World::on_write(const fabric::WriteEvent& ev) {
  auto& list = watchers_[ev.pe];
  if (list.empty()) return;
  std::vector<sim::Fiber*> wake;
  for (auto it = list.begin(); it != list.end();) {
    if (it->off >= ev.offset && it->off < ev.offset + ev.len) {
      wake.push_back(it->fiber);
      it = list.erase(it);
    } else {
      ++it;
    }
  }
  for (sim::Fiber* f : wake) engine_.resume(*f, ev.time);
}

void World::barrier() {
  const int r = me();
  const int n = nproc();
  if (n == 1) return;
  domain_->quiet();
  const std::int64_t gen = ++barrier_gen_[r];
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    assert(round < kMaxRounds);
    const int peer = (r + dist) % n;
    const std::uint64_t off =
        barrier_flags_off_ + static_cast<std::uint64_t>(round) * sizeof(std::int64_t);
    domain_->put(peer, off, &gen, sizeof gen, /*pipelined=*/true);
    wait_local_ge(off, gen);
  }
}

}  // namespace armci
