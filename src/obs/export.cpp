#include "obs/export.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/analyzer.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace obs {

namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Minimal JSON string escaping (names here are ASCII identifiers, but a
/// user-supplied phase name could contain anything).
std::string jstr(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Microsecond rendering of a ns timestamp with ns precision kept.
void append_us(std::string& out, sim::Time ns) {
  append(out, "%" PRId64 ".%03d", ns / 1000,
         static_cast<int>(ns % 1000));
}

void emit_span(std::string& out, bool& first, int pid, int tid,
               const Event& e, const std::vector<std::string>& phase_names) {
  if (!first) out += ",\n";
  first = false;
  const auto cat = static_cast<Cat>(e.cat);
  if (cat == Cat::kPhase) {
    const std::size_t id = e.a;
    const std::string& name =
        id < phase_names.size() ? phase_names[id] : "?";
    append(out, "{\"name\":%s,\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
                "\"tid\":%d,\"ts\":",
           jstr(name).c_str(), pid, tid);
    append_us(out, e.t0);
    out += "}";
    return;
  }
  append(out, "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
              "\"tid\":%d,\"ts\":",
         cat_name(cat), group_name(group_of(cat)), pid, tid);
  append_us(out, e.t0);
  out += ",\"dur\":";
  append_us(out, e.t1 - e.t0);
  append(out, ",\"args\":{\"bytes\":%" PRIu64 ",\"peer\":%u}}",
         e.a, e.b);
}

}  // namespace

std::string chrome_trace_json() {
  auto& s = detail::session();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  // Track-name metadata so chrome://tracing labels the rows.
  for (std::size_t pe = 0; pe < s.rings.size(); ++pe) {
    if (s.rings[pe].size() == 0) continue;
    if (!first) out += ",\n";
    first = false;
    append(out, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":%zu,\"args\":{\"name\":\"PE %zu\"}}",
           pe, pe);
  }
  for (std::size_t pe = 0; pe < s.wire_rings.size(); ++pe) {
    if (s.wire_rings[pe].size() == 0) continue;
    if (!first) out += ",\n";
    first = false;
    append(out, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                "\"tid\":%zu,\"args\":{\"name\":\"fabric from PE %zu\"}}",
           pe, pe);
  }
  for (std::size_t pe = 0; pe < s.rings.size(); ++pe) {
    s.rings[pe].for_each([&](const Event& e) {
      emit_span(out, first, 0, static_cast<int>(pe), e, s.phase_names);
    });
  }
  for (std::size_t pe = 0; pe < s.wire_rings.size(); ++pe) {
    s.wire_rings[pe].for_each([&](const Event& e) {
      emit_span(out, first, 1, static_cast<int>(pe), e, s.phase_names);
    });
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

void sync_engine_counters() {
  const sim::EngineStats st = sim::last_engine_stats();
  Registry& reg = registry();
  reg.counter(0, "engine.events") = st.events;
  reg.counter(0, "engine.switches") = st.switches;
  reg.counter(0, "engine.event_pool_hits") = st.event_pool_hits;
  reg.counter(0, "engine.stack_bytes_peak") = st.stack_bytes_peak;
}

std::string stats_json() {
  sync_engine_counters();
  auto& s = detail::session();
  std::string out = "{\n\"counters\":{";
  // Counters grouped by name: "name": {"pe": value, ...}.
  bool first_name = true;
  std::string cur;
  s.registry.for_each_counter(
      [&](const std::string& name, int pe, std::uint64_t v) {
        if (name != cur) {
          if (!cur.empty()) out += "},\n";
          else out += "\n";
          append(out, "%s:{", jstr(name).c_str());
          cur = name;
          first_name = false;
        } else {
          out += ",";
        }
        append(out, "\"%d\":%" PRIu64, pe, v);
      });
  if (!cur.empty()) out += "}";
  (void)first_name;
  out += "\n},\n\"histograms\":{";
  cur.clear();
  s.registry.for_each_hist(
      [&](const std::string& name, int pe, const Hist& h) {
        if (name != cur) {
          if (!cur.empty()) out += "},\n";
          else out += "\n";
          append(out, "%s:{", jstr(name).c_str());
          cur = name;
        } else {
          out += ",";
        }
        append(out, "\"%d\":{\"count\":%" PRIu64 ",\"sum_ns\":%" PRIu64
                    ",\"buckets\":{",
               pe, h.count(), h.sum_ns());
        bool fb = true;
        for (int b = 0; b < Hist::kBuckets; ++b) {
          if (h.bucket(b) == 0) continue;
          if (!fb) out += ",";
          fb = false;
          append(out, "\"%" PRIu64 "\":%" PRIu64, Hist::bucket_lo(b),
                 h.bucket(b));
        }
        out += "}}";
      });
  if (!cur.empty()) out += "}";
  out += "\n},\n\"attribution\":[";
  const Attribution at = analyze();
  bool fr = true;
  auto emit_row = [&](const AttributionRow& r) {
    if (!fr) out += ",";
    fr = false;
    append(out, "\n{\"phase\":%s,\"pes\":%" PRIu64 ",\"wall_ns\":%.0f",
           jstr(r.phase).c_str(), r.pes, r.wall_ns);
    for (std::size_t g = 0; g < r.by_group.size(); ++g) {
      append(out, ",\"%s_ns\":%.0f", group_name(static_cast<Group>(g)),
             r.by_group[g]);
    }
    out += "}";
  };
  for (const auto& r : at.phases) emit_row(r);
  emit_row(at.total);
  append(out, "\n],\n\"coverage\":%.6f\n}\n", at.coverage());
  return out;
}

bool write_chrome_trace(const char* path) {
  std::string p = path != nullptr ? path : config().trace_path;
  if (p.empty()) return false;
  std::FILE* f = std::fopen(p.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return n == json.size();
}

}  // namespace obs
