// Critical-path / wait-time analyzer over the session's per-PE rings.
//
// For every PE the span records are re-nested by (t0, t1) and each span's
// SELF time (duration minus enclosed children) is attributed to its
// category group — wire, quiet-stall, lock-wait, sync-stall, coll-stall.
// Whatever a PE's top-level spans do not cover is compute (local work /
// idle). Phase markers partition each PE's timeline; a span belongs to the
// phase containing its start. The result is the per-phase
// compute/wire/quiet/lock/sync/collective split the figure harnesses print.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace obs {

/// One row of the attribution table: a phase's wall time summed over PEs
/// and its split across groups (Group::kCompute..kCollStall), in ns.
struct AttributionRow {
  std::string phase;
  std::uint64_t pes = 0;  ///< PEs that spent time in this phase
  double wall_ns = 0;
  std::array<double, static_cast<std::size_t>(Group::kCount)> by_group{};
};

struct Attribution {
  std::vector<AttributionRow> phases;  ///< first-marker order; "(run)" when
                                       ///< a PE has no markers
  AttributionRow total;                ///< sums over all phases

  /// Fraction of wall time attributed to a named group (compute included);
  /// < 1 only where clamping discarded malformed nesting.
  double coverage() const;

  /// Formatted per-phase table (percentages of each phase's wall).
  std::string table() const;
};

/// Analyzes the current session. Deterministic for a deterministic run.
Attribution analyze();

}  // namespace obs
