#include "obs/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace obs {

namespace {

constexpr std::size_t kGroups = static_cast<std::size_t>(Group::kCount);

struct PhaseAcc {
  std::uint64_t pes = 0;
  double wall = 0;
  std::array<double, kGroups> by_group{};
};

/// Per-PE sweep state: one open span and the total duration of its direct
/// children (for self-time subtraction).
struct Open {
  Event e;
  sim::Time child = 0;
};

}  // namespace

Attribution analyze() {
  auto& s = detail::session();

  // Phase names in interning order; index 0 reserved for the implicit
  // pre-first-marker / marker-free phase.
  std::vector<std::string> names;
  names.emplace_back("(run)");
  for (const auto& n : s.phase_names) names.push_back(n);

  std::map<std::string, PhaseAcc> acc;  // keyed by phase name
  std::vector<std::string> order;       // first-seen emission order

  auto touch = [&](const std::string& name) -> PhaseAcc& {
    auto it = acc.find(name);
    if (it == acc.end()) {
      it = acc.emplace(name, PhaseAcc{}).first;
      order.push_back(name);
    }
    return it->second;
  };

  for (std::size_t pe = 0; pe < s.rings.size(); ++pe) {
    const Ring& ring = s.rings[pe];
    if (ring.size() == 0) continue;

    std::vector<Event> spans;
    std::vector<Event> marks;  // kPhase instants
    spans.reserve(ring.size());
    sim::Time pe_end = 0;
    ring.for_each([&](const Event& e) {
      pe_end = std::max(pe_end, e.t1);
      if (e.cat == static_cast<std::uint16_t>(Cat::kPhase)) {
        marks.push_back(e);
      } else {
        spans.push_back(e);
      }
    });

    // Phase boundaries on this PE: [0, m0), [m0, m1), ..., [mk, pe_end].
    // bounds[i] is the start of phase segment i; segment 0 is implicit.
    std::sort(marks.begin(), marks.end(),
              [](const Event& a, const Event& b) { return a.t0 < b.t0; });
    std::vector<sim::Time> bounds{0};
    std::vector<std::uint32_t> seg_name{0};  // index into `names`
    for (const Event& m : marks) {
      bounds.push_back(m.t0);
      seg_name.push_back(static_cast<std::uint32_t>(m.a) + 1);
    }
    auto segment_of = [&](sim::Time t) -> std::size_t {
      // Last segment whose start is <= t.
      const auto it = std::upper_bound(bounds.begin(), bounds.end(), t);
      return static_cast<std::size_t>(it - bounds.begin()) - 1;
    };

    // Per-segment accumulation for this PE.
    const std::size_t nseg = bounds.size();
    std::vector<std::array<double, kGroups>> seg_group(nseg);
    std::vector<double> seg_covered(nseg, 0.0);  // top-level span time

    // Re-nest: sort by start, longest-first on ties, and sweep a stack.
    std::sort(spans.begin(), spans.end(), [](const Event& a, const Event& b) {
      if (a.t0 != b.t0) return a.t0 < b.t0;
      return a.t1 > b.t1;
    });
    std::vector<Open> stack;
    auto close = [&](const Open& o) {
      const sim::Time dur = o.e.t1 - o.e.t0;
      const sim::Time self = std::max<sim::Time>(0, dur - o.child);
      const std::size_t seg = segment_of(o.e.t0);
      const auto g = static_cast<std::size_t>(
          group_of(static_cast<Cat>(o.e.cat)));
      seg_group[seg][g] += static_cast<double>(self);
      if (stack.empty()) {
        seg_covered[seg] += static_cast<double>(dur);
      } else {
        stack.back().child += dur;
      }
    };
    for (const Event& e : spans) {
      while (!stack.empty() && stack.back().e.t1 <= e.t0) {
        const Open top = stack.back();
        stack.pop_back();
        close(top);
      }
      stack.push_back({e, 0});
    }
    while (!stack.empty()) {
      const Open top = stack.back();
      stack.pop_back();
      close(top);
    }

    // Fold this PE's segments into the global per-phase accumulators;
    // compute = segment wall minus top-level covered time.
    std::vector<bool> seen(names.size(), false);
    for (std::size_t i = 0; i < nseg; ++i) {
      const sim::Time seg_end = i + 1 < nseg ? bounds[i + 1] : pe_end;
      const double wall = static_cast<double>(
          std::max<sim::Time>(0, seg_end - bounds[i]));
      bool any = wall > 0;
      for (const double v : seg_group[i]) any = any || v > 0;
      if (!any) continue;
      PhaseAcc& pa = touch(names[seg_name[i]]);
      pa.wall += wall;
      for (std::size_t g = 0; g < kGroups; ++g) {
        pa.by_group[g] += seg_group[i][g];
      }
      pa.by_group[static_cast<std::size_t>(Group::kCompute)] +=
          std::max(0.0, wall - seg_covered[i]);
      if (!seen[seg_name[i]]) {
        seen[seg_name[i]] = true;
        ++pa.pes;
      }
    }
  }

  Attribution out;
  out.total.phase = "(total)";
  for (const auto& name : order) {
    const PhaseAcc& pa = acc[name];
    AttributionRow row;
    row.phase = name;
    row.pes = pa.pes;
    row.wall_ns = pa.wall;
    row.by_group = pa.by_group;
    out.total.wall_ns += pa.wall;
    out.total.pes = std::max(out.total.pes, pa.pes);
    for (std::size_t g = 0; g < kGroups; ++g) {
      out.total.by_group[g] += pa.by_group[g];
    }
    out.phases.push_back(std::move(row));
  }
  return out;
}

double Attribution::coverage() const {
  if (total.wall_ns <= 0) return 1.0;
  double attributed = 0;
  for (const double v : total.by_group) attributed += v;
  return attributed / total.wall_ns;
}

std::string Attribution::table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-12s %4s %12s", "phase", "PEs",
                "wall (us)");
  out += line;
  for (std::size_t g = 0; g < kGroups; ++g) {
    std::snprintf(line, sizeof line, " %12s",
                  group_name(static_cast<Group>(g)));
    out += line;
  }
  out += '\n';
  auto emit = [&](const AttributionRow& r) {
    std::snprintf(line, sizeof line, "%-12s %4llu %12.1f", r.phase.c_str(),
                  static_cast<unsigned long long>(r.pes), r.wall_ns / 1e3);
    out += line;
    for (std::size_t g = 0; g < kGroups; ++g) {
      const double pct = r.wall_ns > 0 ? 100.0 * r.by_group[g] / r.wall_ns : 0;
      std::snprintf(line, sizeof line, " %11.1f%%", pct);
      out += line;
    }
    out += '\n';
  };
  for (const auto& r : phases) emit(r);
  emit(total);
  char cov[128];
  std::snprintf(cov, sizeof cov,
                "attribution coverage: %.1f%% of wall time\n",
                100.0 * coverage());
  out += cov;
  return out;
}

}  // namespace obs
