// obs — the runtime's unified observability substrate.
//
// One global Session serves every layer of a simulated stack:
//
//   * a per-PE event Ring of fixed-size binary records stamped with the
//     sim clock — RAII Spans (RMA ops, quiet/fence, lock acquire/handoff,
//     collective stages) land in the issuing PE's ring, fabric-level
//     message send→deliver records in a separate per-PE wire ring (wire
//     events overlap arbitrarily and must not disturb span nesting);
//   * a Registry of named counters and log2-bucketed latency histograms —
//     the single home for what used to be ad-hoc telemetry structs
//     (RmaTelemetry, DirectTelemetry, the DHT degraded-mode ledgers).
//     Counters are always on: callers cache a stable `std::uint64_t*`
//     handle once and bump it at plain-field-increment cost;
//   * exporters (export.hpp) and a critical-path analyzer (analyzer.hpp)
//     that run over the merged rings after a sim run.
//
// Tracing (spans, wire events, histograms) is off by default and compiles
// to a single extern-bool test per instrumentation point; it is enabled
// with CAF_TRACE=<path> (init_from_env), caf::Options::trace, or enable().
// Fabric construction/reset clears the whole session state so back-to-back
// sim runs start from zero and same-seed reruns trace byte-identically.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace obs {

/// Span / event taxonomy. Values are stable binary record tags.
enum class Cat : std::uint16_t {
  kPut = 0,
  kGet,
  kIput,
  kIget,
  kScatter,
  kAmo,
  kQuiet,        ///< a real (non-elided) transport fence
  kFence,        ///< runtime completion point (agg flush + quiet)
  kLockAcquire,
  kLockHandoff,
  kSyncWait,     ///< sync_images / event wait
  kBarrier,
  kBroadcast,
  kReduce,
  kCollStage,    ///< one wait inside a collective arm (tree/ring stage)
  kMsgWire,      ///< fabric message send→deliver (wire ring only)
  kPhase,        ///< instant phase marker; `a` = interned name id
  kReplPull,     ///< replica anti-entropy pull (lock + snapshot + install)
  kRpcSend,      ///< RPC request injection (serialize + mailbox put / AM)
  kRpcExec,      ///< RPC handler execution at the target
  kRpcWait,      ///< future wait (progress-poll + block on the doorbell)
  kCount
};

const char* cat_name(Cat c);

/// Wall-time attribution buckets used by the analyzer.
enum class Group : std::uint8_t {
  kCompute = 0,  ///< no span open (local work, idle)
  kWire,         ///< RMA issue/transfer (put/get/strided/scatter/amo)
  kQuietStall,   ///< quiet / fence completion waits
  kLockWait,     ///< lock acquire + handoff
  kSyncStall,    ///< sync_images / event waits
  kCollStall,    ///< barrier / broadcast / reduction stages
  kCount
};

const char* group_name(Group g);
Group group_of(Cat c);

/// One binary trace record (32 bytes). For spans, [t0,t1] brackets the
/// operation on the issuing PE's clock; `a` carries the payload bytes (or
/// the phase-name id), `b` the peer rank, `depth` the span nesting level.
struct Event {
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::uint64_t a = 0;
  std::uint32_t b = 0;
  std::uint16_t cat = 0;
  std::uint16_t depth = 0;
};

/// Fixed-capacity event buffer: grows lazily up to `capacity` records,
/// then wraps, dropping the oldest. Spans are recorded at span END, so on
/// wraparound children drop before their parents — the analyzer tolerates
/// missing children (their time re-appears as parent self-time).
class Ring {
 public:
  explicit Ring(std::size_t capacity = 0) : cap_(capacity) {}

  void set_capacity(std::size_t cap) { cap_ = cap; }
  std::size_t capacity() const { return cap_; }

  void push(const Event& e) {
    if (cap_ == 0) return;
    if (buf_.size() < cap_) {
      buf_.push_back(e);
    } else {
      buf_[head_] = e;
      head_ = (head_ + 1) % cap_;
    }
    ++total_;
  }

  /// Records currently retained (≤ capacity).
  std::size_t size() const { return buf_.size(); }
  /// Records pushed over the ring's lifetime.
  std::uint64_t total() const { return total_; }
  bool wrapped() const { return total_ > buf_.size(); }

  /// Visits retained records oldest-first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = buf_.size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(buf_[(head_ + i) % n]);
    }
  }

  void clear() {
    buf_.clear();
    head_ = 0;
    total_ = 0;
  }

 private:
  std::vector<Event> buf_;
  std::size_t cap_;
  std::size_t head_ = 0;  ///< oldest record once wrapped
  std::uint64_t total_ = 0;
};

/// Log2-bucketed latency histogram: bucket i counts durations whose
/// nanosecond value has bit-width i, i.e. d in [2^(i-1), 2^i). Bucket 0
/// counts non-positive durations.
class Hist {
 public:
  static constexpr int kBuckets = 65;

  static int bucket_of(sim::Time d) {
    if (d <= 0) return 0;
    return std::bit_width(static_cast<std::uint64_t>(d));
  }
  /// Inclusive lower edge of bucket `b` (0 for the degenerate bucket).
  static std::uint64_t bucket_lo(int b) {
    return b <= 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  void record(sim::Time d) {
    ++buckets_[static_cast<std::size_t>(bucket_of(d))];
    ++count_;
    if (d > 0) sum_ += static_cast<std::uint64_t>(d);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum_ns() const { return sum_; }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }

  /// Quantile estimate from the log2 buckets: finds the bucket holding the
  /// q-th sample and interpolates linearly inside it (buckets are factor-2
  /// wide, so the estimate is within 2x of the true order statistic — the
  /// standard accuracy/size trade of log-bucketed serving histograms).
  /// Returns 0 for an empty histogram; q is clamped to [0, 1].
  std::uint64_t quantile(double q) const {
    if (count_ == 0) return 0;
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    const double target = q * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
      if (n == 0) continue;
      if (static_cast<double>(seen + n) >= target) {
        const std::uint64_t lo = bucket_lo(b);
        const std::uint64_t hi = b == 0 ? 0 : lo * 2 - 1;
        const double frac =
            (target - static_cast<double>(seen)) / static_cast<double>(n);
        return lo + static_cast<std::uint64_t>(
                        frac * static_cast<double>(hi - lo));
      }
      seen += n;
    }
    return bucket_lo(kBuckets - 1);
  }

  void clear() {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Named (counter | histogram) store, keyed by (name, pe). Handles returned
/// by counter()/hist() stay valid for the process lifetime: per-name slots
/// live in deques (growth never moves existing elements) and clear() zeroes
/// in place instead of deallocating — callers cache the pointer once and
/// increment at plain-field cost.
class Registry {
 public:
  std::uint64_t& counter(int pe, std::string_view name);
  Hist& hist(int pe, std::string_view name);

  /// Counter value, 0 when the (name, pe) cell was never touched.
  std::uint64_t value(int pe, std::string_view name) const;

  /// Zeroes every counter and histogram in place (handles stay valid).
  void clear();

  /// Visits counters as fn(name, pe, value), names in lexical order,
  /// zero-valued cells skipped.
  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    for (const auto& [name, slots] : counters_) {
      for (std::size_t pe = 0; pe < slots.size(); ++pe) {
        if (slots[pe] != 0) fn(name, static_cast<int>(pe), slots[pe]);
      }
    }
  }

  /// Visits histograms as fn(name, pe, hist), empty ones skipped.
  template <typename Fn>
  void for_each_hist(Fn&& fn) const {
    for (const auto& [name, slots] : hists_) {
      for (std::size_t pe = 0; pe < slots.size(); ++pe) {
        if (slots[pe].count() != 0) fn(name, static_cast<int>(pe), slots[pe]);
      }
    }
  }

 private:
  std::map<std::string, std::deque<std::uint64_t>, std::less<>> counters_;
  std::map<std::string, std::deque<Hist>, std::less<>> hists_;
};

/// Tracing configuration.
struct Config {
  std::string trace_path;           ///< Chrome-trace output ("" = don't write)
  std::size_t ring_events = 65536;  ///< per-PE ring capacity (records)
};

namespace detail {
extern bool g_tracing;

struct Session {
  Config cfg;
  Registry registry;
  std::vector<Ring> rings;       ///< per PE: spans + phase markers
  std::vector<Ring> wire_rings;  ///< per source PE: fabric kMsgWire records
  std::vector<std::uint32_t> depth;  ///< per PE: open-span count
  std::vector<std::string> phase_names;
  std::map<std::string, std::uint32_t, std::less<>> phase_ids;

  Ring& ring(int pe);
  Ring& wire_ring(int pe);
};

Session& session();
}  // namespace detail

/// True while tracing is enabled — the single guard every instrumentation
/// point tests before doing any work.
inline bool enabled() { return detail::g_tracing; }

/// Turns tracing on with `cfg` (rings allocate lazily per PE).
void enable(Config cfg = {});
void disable();

/// Reads CAF_TRACE; when set (non-empty), enables tracing with the value
/// as the Chrome-trace output path.
void init_from_env();

const Config& config();
Registry& registry();

/// Clears all session state — rings, registry values, phase table — while
/// keeping the enabled flag and configuration. Invoked by Fabric
/// construction/reset so every sim run starts from zero.
void reset();

/// Instant phase marker on the calling PE (no-op unless tracing and on a
/// fiber). Phases partition each PE's timeline for the analyzer.
void phase(const char* name);

/// Fabric-level message record: `bytes` from src_pe to dst_pe, sent at t0,
/// delivered at t1. Lands in src_pe's wire ring.
void wire_event(int src_pe, int dst_pe, std::uint64_t bytes, sim::Time t0,
                sim::Time t1);

/// RAII span: brackets one operation on the calling PE's clock. Inactive
/// (zero work beyond the enabled() test) when tracing is off or the caller
/// is not on a fiber (scheduler-context handlers are not attributable to a
/// PE timeline).
class Span {
 public:
  explicit Span(Cat cat, std::uint64_t a = 0, std::uint32_t b = 0) {
    if (enabled()) begin(cat, a, b);
  }
  ~Span() {
    if (pe_ >= 0) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(Cat cat, std::uint64_t a, std::uint32_t b);
  void end();

  sim::Time t0_ = 0;
  std::uint64_t a_ = 0;
  std::uint32_t b_ = 0;
  std::int32_t pe_ = -1;  ///< -1 = inactive
  Cat cat_ = Cat::kPut;
};

}  // namespace obs
