// Exporters over the obs session: Chrome-trace JSON (chrome://tracing /
// Perfetto "traceEvents" format, one track per PE, spans nested by layer)
// and a machine-readable stats JSON for the bench harnesses.
#pragma once

#include <string>

namespace obs {

/// Chrome-trace JSON of the current session: pid 0 = PE timelines (one tid
/// per PE, "X" complete events, phase markers as "i" instants), pid 1 =
/// fabric wire messages per source PE. ts/dur are microseconds of sim
/// time. Output is deterministic: same session state → same bytes.
std::string chrome_trace_json();

/// Machine-readable stats: registry counters, histogram summaries, and the
/// analyzer's per-phase attribution rows. Engine-core counters are synced
/// into the registry first (see sync_engine_counters).
std::string stats_json();

/// Copies the DES engine core's health counters — events processed, fiber
/// context switches, event-pool hits, peak pooled stack bytes — into the
/// registry as "engine.*" counters at pe 0 (the engine is a host-side
/// singleton, not a per-PE resource). Values come from the running engine,
/// or from the last engine that finished run() on this thread.
void sync_engine_counters();

/// Writes chrome_trace_json() to `path`, or to config().trace_path when
/// `path` is null. Returns false (writing nothing) when no path is
/// configured or the file cannot be opened.
bool write_chrome_trace(const char* path = nullptr);

}  // namespace obs
