#include "obs/obs.hpp"

#include <cstdlib>

namespace obs {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kPut: return "put";
    case Cat::kGet: return "get";
    case Cat::kIput: return "iput";
    case Cat::kIget: return "iget";
    case Cat::kScatter: return "put_scatter";
    case Cat::kAmo: return "amo";
    case Cat::kQuiet: return "quiet";
    case Cat::kFence: return "fence";
    case Cat::kLockAcquire: return "lock_acquire";
    case Cat::kLockHandoff: return "lock_handoff";
    case Cat::kSyncWait: return "sync_wait";
    case Cat::kBarrier: return "barrier";
    case Cat::kBroadcast: return "broadcast";
    case Cat::kReduce: return "reduce";
    case Cat::kCollStage: return "coll_stage";
    case Cat::kMsgWire: return "msg_wire";
    case Cat::kPhase: return "phase";
    case Cat::kReplPull: return "repl_pull";
    case Cat::kRpcSend: return "rpc_send";
    case Cat::kRpcExec: return "rpc_exec";
    case Cat::kRpcWait: return "rpc_wait";
    case Cat::kCount: break;
  }
  return "?";
}

const char* group_name(Group g) {
  switch (g) {
    case Group::kCompute: return "compute";
    case Group::kWire: return "wire";
    case Group::kQuietStall: return "quiet-stall";
    case Group::kLockWait: return "lock-wait";
    case Group::kSyncStall: return "sync-stall";
    case Group::kCollStall: return "coll-stall";
    case Group::kCount: break;
  }
  return "?";
}

Group group_of(Cat c) {
  switch (c) {
    case Cat::kPut:
    case Cat::kGet:
    case Cat::kIput:
    case Cat::kIget:
    case Cat::kScatter:
    case Cat::kAmo:
    case Cat::kMsgWire:
    case Cat::kReplPull:  ///< an AE pull is wire work end to end
    case Cat::kRpcSend:   ///< request injection is wire-bound work
      return Group::kWire;
    case Cat::kRpcExec:
      return Group::kCompute;
    case Cat::kRpcWait:
      return Group::kSyncStall;
    case Cat::kQuiet:
    case Cat::kFence:
      return Group::kQuietStall;
    case Cat::kLockAcquire:
    case Cat::kLockHandoff:
      return Group::kLockWait;
    case Cat::kSyncWait:
      return Group::kSyncStall;
    case Cat::kBarrier:
    case Cat::kBroadcast:
    case Cat::kReduce:
    case Cat::kCollStage:
      return Group::kCollStall;
    case Cat::kPhase:
    case Cat::kCount:
      break;
  }
  return Group::kCompute;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::uint64_t& Registry::counter(int pe, std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::deque<std::uint64_t>())
             .first;
  }
  auto& slots = it->second;
  // deque growth at the end never moves existing elements, so previously
  // handed-out &slots[i] stay valid.
  while (slots.size() <= static_cast<std::size_t>(pe)) slots.push_back(0);
  return slots[static_cast<std::size_t>(pe)];
}

Hist& Registry::hist(int pe, std::string_view name) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), std::deque<Hist>()).first;
  }
  auto& slots = it->second;
  while (slots.size() <= static_cast<std::size_t>(pe)) slots.emplace_back();
  return slots[static_cast<std::size_t>(pe)];
}

std::uint64_t Registry::value(int pe, std::string_view name) const {
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  const auto& slots = it->second;
  if (static_cast<std::size_t>(pe) >= slots.size()) return 0;
  return slots[static_cast<std::size_t>(pe)];
}

void Registry::clear() {
  for (auto& [name, slots] : counters_) {
    for (auto& v : slots) v = 0;
  }
  for (auto& [name, slots] : hists_) {
    for (auto& h : slots) h.clear();
  }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

namespace detail {

bool g_tracing = false;

Session& session() {
  static Session s;
  return s;
}

Ring& Session::ring(int pe) {
  if (rings.size() <= static_cast<std::size_t>(pe)) {
    rings.resize(static_cast<std::size_t>(pe) + 1, Ring(cfg.ring_events));
  }
  return rings[static_cast<std::size_t>(pe)];
}

Ring& Session::wire_ring(int pe) {
  if (wire_rings.size() <= static_cast<std::size_t>(pe)) {
    wire_rings.resize(static_cast<std::size_t>(pe) + 1, Ring(cfg.ring_events));
  }
  return wire_rings[static_cast<std::size_t>(pe)];
}

}  // namespace detail

void enable(Config cfg) {
  auto& s = detail::session();
  s.cfg = std::move(cfg);
  s.rings.clear();
  s.wire_rings.clear();
  s.depth.clear();
  detail::g_tracing = true;
}

void disable() { detail::g_tracing = false; }

void init_from_env() {
  const char* path = std::getenv("CAF_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  Config cfg;
  cfg.trace_path = path;
  enable(std::move(cfg));
}

const Config& config() { return detail::session().cfg; }

Registry& registry() { return detail::session().registry; }

void reset() {
  auto& s = detail::session();
  s.registry.clear();
  for (auto& r : s.rings) r.clear();
  for (auto& r : s.wire_rings) r.clear();
  for (auto& d : s.depth) d = 0;
  s.phase_names.clear();
  s.phase_ids.clear();
}

namespace {

/// PE of the currently running fiber, or -1 on the scheduler context (or
/// outside any engine) — events there have no attributable timeline.
int fiber_pe() {
  sim::Engine* eng = sim::Engine::current();
  if (eng == nullptr) return -1;
  sim::Fiber* f = eng->current_fiber();
  return f == nullptr ? -1 : f->pe();
}

}  // namespace

void phase(const char* name) {
  if (!enabled()) return;
  const int pe = fiber_pe();
  if (pe < 0) return;
  auto& s = detail::session();
  std::uint32_t id = 0;
  const auto it = s.phase_ids.find(name);
  if (it != s.phase_ids.end()) {
    id = it->second;
  } else {
    id = static_cast<std::uint32_t>(s.phase_names.size());
    s.phase_names.emplace_back(name);
    s.phase_ids.emplace(name, id);
  }
  Event e;
  e.t0 = e.t1 = sim::Engine::current()->now();
  e.a = id;
  e.cat = static_cast<std::uint16_t>(Cat::kPhase);
  s.ring(pe).push(e);
}

void wire_event(int src_pe, int dst_pe, std::uint64_t bytes, sim::Time t0,
                sim::Time t1) {
  if (!enabled()) return;
  Event e;
  e.t0 = t0;
  e.t1 = t1;
  e.a = bytes;
  e.b = static_cast<std::uint32_t>(dst_pe);
  e.cat = static_cast<std::uint16_t>(Cat::kMsgWire);
  detail::session().wire_ring(src_pe).push(e);
}

void Span::begin(Cat cat, std::uint64_t a, std::uint32_t b) {
  const int pe = fiber_pe();
  if (pe < 0) return;
  pe_ = pe;
  cat_ = cat;
  a_ = a;
  b_ = b;
  t0_ = sim::Engine::current()->now();
  auto& s = detail::session();
  if (s.depth.size() <= static_cast<std::size_t>(pe)) {
    s.depth.resize(static_cast<std::size_t>(pe) + 1, 0);
  }
  ++s.depth[static_cast<std::size_t>(pe)];
}

void Span::end() {
  auto& s = detail::session();
  const auto pe = static_cast<std::size_t>(pe_);
  std::uint32_t depth = 0;
  if (pe < s.depth.size() && s.depth[pe] > 0) {
    depth = --s.depth[pe];
  }
  // The fiber is still current in the destructor's scope, so now() is the
  // span's end on this PE's clock. Guard anyway: a span unwound by a PE
  // kill may run its destructor after the fiber was torn down.
  sim::Engine* eng = sim::Engine::current();
  if (eng == nullptr || eng->current_fiber() == nullptr) return;
  Event e;
  e.t0 = t0_;
  e.t1 = eng->now();
  e.a = a_;
  e.b = b_;
  e.cat = static_cast<std::uint16_t>(cat_);
  e.depth = static_cast<std::uint16_t>(depth);
  s.ring(pe_).push(e);
  if (enabled()) {
    // Per-category latency histogram, named "lat.<cat>".
    static const std::array<const char*, static_cast<std::size_t>(Cat::kCount)>
        kLatNames = {"lat.put",          "lat.get",       "lat.iput",
                     "lat.iget",         "lat.put_scatter", "lat.amo",
                     "lat.quiet",        "lat.fence",     "lat.lock_acquire",
                     "lat.lock_handoff", "lat.sync_wait", "lat.barrier",
                     "lat.broadcast",    "lat.reduce",    "lat.coll_stage",
                     "lat.msg_wire",     "lat.phase",     "lat.repl_pull",
                     "lat.rpc_send",     "lat.rpc_exec",  "lat.rpc_wait"};
    s.registry.hist(pe_, kLatNames[static_cast<std::size_t>(cat_)])
        .record(e.t1 - e.t0);
  }
}

}  // namespace obs
