#include "craycaf/craycaf.hpp"

#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

namespace craycaf {

Runtime::Runtime(sim::Engine& engine, net::Fabric& fabric,
                 std::size_t heap_bytes, net::Machine machine)
    : engine_(engine), allocator_(0, 0) {
  ctx_ = std::make_unique<fabric::dmapp::Context>(
      engine, fabric, heap_bytes,
      net::sw_profile(net::Library::kCrayCaf, machine));
  // Internal symmetric prefix: barrier flags, collective flags + slots.
  std::uint64_t off = 0;
  barrier_flags_off_ = off;
  off += kMaxRounds * sizeof(std::int64_t);
  coll_flags_off_ = off;
  off += (kMaxRounds + 1) * sizeof(std::int64_t);
  coll_slots_off_ = off;
  off += (kMaxRounds + 1) * kSlotBytes;
  internal_bytes_ = (off + 15) & ~std::uint64_t{15};
  if (heap_bytes <= internal_bytes_) {
    throw std::invalid_argument("craycaf::Runtime: heap too small");
  }
  allocator_ =
      shmem::FreeListAllocator(internal_bytes_, heap_bytes - internal_bytes_);
  alloc_cursor_.assign(ctx_->npes(), 0);
  watchers_.resize(ctx_->npes());
  barrier_gen_.assign(ctx_->npes(), 0);
  coll_gen_.assign(ctx_->npes(), 0);
  ctx_->domain().set_write_hook(
      [this](const fabric::WriteEvent& ev) { on_write(ev); });
}

Runtime::~Runtime() = default;

void Runtime::launch(std::function<void()> image_main) {
  for (int pe = 0; pe < ctx_->npes(); ++pe) engine_.spawn(pe, image_main);
}

int Runtime::me() const {
  sim::Fiber* f = engine_.current_fiber();
  assert(f != nullptr);
  return f->pe();
}

int Runtime::this_image() const { return me() + 1; }

std::byte* Runtime::local_addr(std::uint64_t off) {
  return ctx_->domain().segment(me()) + off;
}

std::uint64_t Runtime::allocate(std::size_t bytes) {
  const std::size_t cursor = alloc_cursor_[me()]++;
  if (cursor == alloc_log_.size()) {
    auto got = allocator_.allocate(bytes);
    if (!got) throw std::bad_alloc();
    alloc_log_.push_back({false, bytes, *got});
  }
  const AllocOp op = alloc_log_[cursor];  // copy: log grows during barrier
  if (op.is_free || op.arg != bytes) {
    throw std::logic_error("craycaf allocate: collective mismatch");
  }
  sync_all();
  return op.result;
}

void Runtime::deallocate(std::uint64_t off) {
  const std::size_t cursor = alloc_cursor_[me()]++;
  if (cursor == alloc_log_.size()) {
    allocator_.release(off);
    alloc_log_.push_back({true, off, 0});
  }
  const AllocOp op = alloc_log_[cursor];
  if (!op.is_free || op.arg != off) {
    throw std::logic_error("craycaf deallocate: collective mismatch");
  }
  sync_all();
}

void Runtime::put_bytes(int image, std::uint64_t dst_off, const void* src,
                        std::size_t n) {
  ctx_->put(image - 1, dst_off, src, n);
  ctx_->gsync_wait();  // Cray CAF also enforces CAF completion ordering
}

void Runtime::put_bytes_nbi(int image, std::uint64_t dst_off, const void* src,
                            std::size_t n) {
  // Deferred-completion statement: the Fortran runtime still pays its
  // per-statement descriptor setup (a blocking-local dmapp_put), only the
  // gsync is deferred. The 45 ns nbi gap is reserved for the runtime's
  // *internal* strided element pipeline.
  ctx_->put(image - 1, dst_off, src, n);
}

void Runtime::get_bytes(void* dst, int image, std::uint64_t src_off,
                        std::size_t n) {
  ctx_->gsync_wait();
  ctx_->get(dst, image - 1, src_off, n);
}

void Runtime::put_strided_1d(int image, std::uint64_t dst_off,
                             std::ptrdiff_t dst_stride, const void* src,
                             std::ptrdiff_t src_stride, std::size_t elem_bytes,
                             std::size_t nelems) {
  // Vendor path: pipeline one nbi put per element (kCrayCaf per_msg_gap),
  // then globally sync. Cheaper than blocking per-element puts, slower than
  // a single NIC scatter.
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < nelems; ++i) {
    ctx_->put_nbi(image - 1,
                  dst_off + i * static_cast<std::uint64_t>(dst_stride) *
                                elem_bytes,
                  s + static_cast<std::ptrdiff_t>(i) * src_stride *
                          static_cast<std::ptrdiff_t>(elem_bytes),
                  elem_bytes);
  }
  ctx_->gsync_wait();
}

void Runtime::wait_local_ge(std::uint64_t off, std::int64_t value) {
  const int r = me();
  auto load = [&] {
    std::int64_t v = 0;
    std::memcpy(&v, ctx_->domain().segment(r) + off, sizeof v);
    return v;
  };
  while (load() < value) {
    watchers_[r].push_back({off, engine_.current_fiber()});
    engine_.block();
  }
}

void Runtime::on_write(const fabric::WriteEvent& ev) {
  auto& list = watchers_[ev.pe];
  if (list.empty()) return;
  std::vector<sim::Fiber*> wake;
  for (auto it = list.begin(); it != list.end();) {
    if (it->off >= ev.offset && it->off < ev.offset + ev.len) {
      wake.push_back(it->fiber);
      it = list.erase(it);
    } else {
      ++it;
    }
  }
  for (sim::Fiber* f : wake) engine_.resume(*f, ev.time);
}

void Runtime::sync_all() {
  ctx_->gsync_wait();
  const int r = me();
  const int n = ctx_->npes();
  if (n == 1) return;
  const std::int64_t gen = ++barrier_gen_[r];
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    assert(round < kMaxRounds);
    const int peer = (r + dist) % n;
    const std::uint64_t off =
        barrier_flags_off_ + static_cast<std::uint64_t>(round) * sizeof(std::int64_t);
    ctx_->put_nbi(peer, off, &gen, sizeof gen);
    wait_local_ge(off, gen);
  }
}

CoLock Runtime::make_lock() {
  const std::uint64_t off = allocate(2 * sizeof(std::int64_t));
  std::memset(local_addr(off), 0, 2 * sizeof(std::int64_t));
  sync_all();
  return CoLock{off};
}

void Runtime::lock(CoLock lck, int image) {
  // Packed centralized ticket lock: one 64-bit word holds the next ticket
  // (high 32 bits) and now_serving (low 32 bits), so the uncontended
  // acquire is a single NIC fetch-add. Under contention every waiter must
  // keep *remotely polling* the word with atomic reads that serialize on
  // the target NIC's AMO unit — the behaviour the MCS queue's local
  // spinning avoids, and the source of Figure 8's gap.
  constexpr std::int64_t kTicketOne = std::int64_t{1} << 32;
  const std::int64_t grabbed = ctx_->afadd(image - 1, lck.off, kTicketOne);
  const std::int64_t my_ticket = grabbed >> 32;
  std::int64_t serving = grabbed & 0xffffffff;
  // Poll interval ~1.5x the AMO round-trip to the lock's home, scaled by
  // queue distance to bound the poll storm.
  const auto& mp = ctx_->domain().fabric().profile();
  const bool local = ctx_->domain().fabric().same_node(me(), image - 1);
  const sim::Time rt_est = ctx_->domain().sw().amo_overhead +
                           2 * (local ? mp.local_latency : mp.hw_latency) +
                           mp.nic_amo_gap;
  while (serving != my_ticket) {
    engine_.advance(rt_est *
                    std::max<std::int64_t>(1, my_ticket - serving));
    serving =
        static_cast<std::int64_t>(ctx_->afadd(image - 1, lck.off, 0)) &
        0xffffffff;
  }
}

void Runtime::unlock(CoLock lck, int image) {
  (void)ctx_->afadd(image - 1, lck.off, 1);  // bump now_serving
}

void Runtime::co_sum_f64(double* data, std::size_t nelems) {
  const std::size_t nbytes = nelems * sizeof(double);
  assert(nbytes <= kSlotBytes);
  const int r = me();
  const int n = ctx_->npes();
  if (n == 1) return;
  const std::int64_t gen = ++coll_gen_[r];
  int level = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++level) {
    assert(level < kMaxRounds);
    const std::uint64_t slot =
        coll_slots_off_ + static_cast<std::uint64_t>(level) * kSlotBytes;
    const std::uint64_t flag =
        coll_flags_off_ + static_cast<std::uint64_t>(level) * sizeof(std::int64_t);
    if (r & mask) {
      const int peer = r - mask;
      ctx_->put(peer, slot, data, nbytes);
      ctx_->gsync_wait();
      ctx_->put_nbi(peer, flag, &gen, sizeof gen);
      break;
    }
    if (r + mask < n) {
      wait_local_ge(flag, gen);
      const auto* in = reinterpret_cast<const double*>(
          ctx_->domain().segment(r) + slot);
      for (std::size_t i = 0; i < nelems; ++i) data[i] += in[i];
    }
  }
  // Broadcast the result down a binomial tree.
  const std::uint64_t bslot =
      coll_slots_off_ + static_cast<std::uint64_t>(kMaxRounds) * kSlotBytes;
  const std::uint64_t bflag =
      coll_flags_off_ + static_cast<std::uint64_t>(kMaxRounds) * sizeof(std::int64_t);
  std::memcpy(local_addr(bslot), data, nbytes);
  int mask = 1;
  if (r != 0) {
    while (!(r & mask)) mask <<= 1;
    wait_local_ge(bflag, gen);
  } else {
    while (mask < n) mask <<= 1;
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (r + m < n) {
      ctx_->put(r + m, bslot, local_addr(bslot), nbytes);
      ctx_->gsync_wait();
      ctx_->put_nbi(r + m, bflag, &gen, sizeof gen);
    }
  }
  std::memcpy(data, local_addr(bslot), nbytes);
}

}  // namespace craycaf
