#include "craycaf/craycaf.hpp"

#include <cassert>
#include <cstring>
#include <new>
#include <stdexcept>

namespace craycaf {

Runtime::Runtime(sim::Engine& engine, net::Fabric& fabric,
                 std::size_t heap_bytes, net::Machine machine)
    : engine_(engine), allocator_(0, 0) {
  ctx_ = std::make_unique<fabric::dmapp::Context>(
      engine, fabric, heap_bytes,
      net::sw_profile(net::Library::kCrayCaf, machine));
  // Internal symmetric prefix: barrier flags, collective flags + slots.
  std::uint64_t off = 0;
  barrier_flags_off_ = off;
  off += kMaxRounds * sizeof(std::int64_t);
  coll_flags_off_ = off;
  off += (kMaxRounds + 1) * sizeof(std::int64_t);
  coll_slots_off_ = off;
  off += (kMaxRounds + 1) * kSlotBytes;
  internal_bytes_ = (off + 15) & ~std::uint64_t{15};
  if (heap_bytes <= internal_bytes_) {
    throw std::invalid_argument("craycaf::Runtime: heap too small");
  }
  allocator_ =
      shmem::FreeListAllocator(internal_bytes_, heap_bytes - internal_bytes_);
  alloc_cursor_.assign(ctx_->npes(), 0);
  watchers_.resize(ctx_->npes());
  barrier_gen_.assign(ctx_->npes(), 0);
  coll_gen_.assign(ctx_->npes(), 0);
  held_tickets_.resize(static_cast<std::size_t>(ctx_->npes()));
  ctx_->domain().set_write_hook(
      [this](const fabric::WriteEvent& ev) { on_write(ev); });
}

Runtime::~Runtime() = default;

void Runtime::launch(std::function<void()> image_main) {
  resilient_ = engine_.kills_armed();
  for (int pe = 0; pe < ctx_->npes(); ++pe) engine_.spawn(pe, image_main);
}

int Runtime::me() const {
  sim::Fiber* f = engine_.current_fiber();
  assert(f != nullptr);
  return f->pe();
}

int Runtime::this_image() const { return me() + 1; }

std::byte* Runtime::local_addr(std::uint64_t off) {
  return ctx_->domain().segment(me()) + off;
}

std::uint64_t Runtime::allocate(std::size_t bytes) {
  const std::size_t cursor = alloc_cursor_[me()]++;
  if (cursor == alloc_log_.size()) {
    auto got = allocator_.allocate(bytes);
    if (!got) throw std::bad_alloc();
    alloc_log_.push_back({false, bytes, *got});
  }
  const AllocOp op = alloc_log_[cursor];  // copy: log grows during barrier
  if (op.is_free || op.arg != bytes) {
    throw std::logic_error("craycaf allocate: collective mismatch");
  }
  sync_all();
  return op.result;
}

void Runtime::deallocate(std::uint64_t off) {
  const std::size_t cursor = alloc_cursor_[me()]++;
  if (cursor == alloc_log_.size()) {
    allocator_.release(off);
    alloc_log_.push_back({true, off, 0});
  }
  const AllocOp op = alloc_log_[cursor];
  if (!op.is_free || op.arg != off) {
    throw std::logic_error("craycaf deallocate: collective mismatch");
  }
  sync_all();
}

void Runtime::put_bytes(int image, std::uint64_t dst_off, const void* src,
                        std::size_t n) {
  ctx_->put(image - 1, dst_off, src, n);
  ctx_->gsync_wait();  // Cray CAF also enforces CAF completion ordering
}

void Runtime::put_bytes_nbi(int image, std::uint64_t dst_off, const void* src,
                            std::size_t n) {
  // Deferred-completion statement: the Fortran runtime still pays its
  // per-statement descriptor setup (a blocking-local dmapp_put), only the
  // gsync is deferred. The 45 ns nbi gap is reserved for the runtime's
  // *internal* strided element pipeline.
  ctx_->put(image - 1, dst_off, src, n);
}

void Runtime::get_bytes(void* dst, int image, std::uint64_t src_off,
                        std::size_t n) {
  ctx_->gsync_wait();
  ctx_->get(dst, image - 1, src_off, n);
}

void Runtime::put_strided_1d(int image, std::uint64_t dst_off,
                             std::ptrdiff_t dst_stride, const void* src,
                             std::ptrdiff_t src_stride, std::size_t elem_bytes,
                             std::size_t nelems) {
  // Vendor path: pipeline one nbi put per element (kCrayCaf per_msg_gap),
  // then globally sync. Cheaper than blocking per-element puts, slower than
  // a single NIC scatter.
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < nelems; ++i) {
    ctx_->put_nbi(image - 1,
                  dst_off + i * static_cast<std::uint64_t>(dst_stride) *
                                elem_bytes,
                  s + static_cast<std::ptrdiff_t>(i) * src_stride *
                          static_cast<std::ptrdiff_t>(elem_bytes),
                  elem_bytes);
  }
  ctx_->gsync_wait();
}

void Runtime::wait_local_ge(std::uint64_t off, std::int64_t value) {
  const int r = me();
  auto load = [&] {
    std::int64_t v = 0;
    std::memcpy(&v, ctx_->domain().segment(r) + off, sizeof v);
    return v;
  };
  while (load() < value) {
    watchers_[r].push_back({off, engine_.current_fiber()});
    engine_.block();
  }
}

void Runtime::on_write(const fabric::WriteEvent& ev) {
  auto& list = watchers_[ev.pe];
  if (list.empty()) return;
  std::vector<sim::Fiber*> wake;
  for (auto it = list.begin(); it != list.end();) {
    if (it->off >= ev.offset && it->off < ev.offset + ev.len) {
      wake.push_back(it->fiber);
      it = list.erase(it);
    } else {
      ++it;
    }
  }
  for (sim::Fiber* f : wake) engine_.resume(*f, ev.time);
}

void Runtime::sync_all() {
  ctx_->gsync_wait();
  const int r = me();
  const int n = ctx_->npes();
  if (n == 1) return;
  const std::int64_t gen = ++barrier_gen_[r];
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    assert(round < kMaxRounds);
    const int peer = (r + dist) % n;
    const std::uint64_t off =
        barrier_flags_off_ + static_cast<std::uint64_t>(round) * sizeof(std::int64_t);
    ctx_->put_nbi(peer, off, &gen, sizeof gen);
    wait_local_ge(off, gen);
  }
}

int Runtime::image_status(int image) {
  return engine_.pe_failed(image - 1) ? kStatFailedImage : kStatOk;
}

int Runtime::put_bytes_stat(int image, std::uint64_t dst_off, const void* src,
                            std::size_t n) {
  if (engine_.pe_failed(image - 1)) return kStatFailedImage;
  try {
    put_bytes(image, dst_off, src, n);
  } catch (const fabric::PeerFailedError&) {
    return kStatFailedImage;
  }
  return kStatOk;
}

int Runtime::get_bytes_stat(void* dst, int image, std::uint64_t src_off,
                            std::size_t n) {
  if (engine_.pe_failed(image - 1)) return kStatFailedImage;
  try {
    get_bytes(dst, image, src_off, n);
  } catch (const fabric::PeerFailedError&) {
    return kStatFailedImage;
  }
  return kStatOk;
}

namespace {
/// Owner-ring slot values: ticket * kRingTagBase + image + 1, so a waiter
/// can tell the *current* ticket's owner entry from a stale one left by a
/// skipped (dead) previous occupant of the slot.
constexpr std::int64_t kRingTagBase = std::int64_t{1} << 21;
}  // namespace

CoLock Runtime::make_lock() {
  // Resilient cells append an owner ring of npes+1 slots: at most npes
  // tickets are outstanding (one per image per lock), so ticket t and
  // t + ring never coexist.
  const std::size_t words =
      resilient_ ? 2 + static_cast<std::size_t>(ctx_->npes()) + 1 : 2;
  const std::uint64_t off = allocate(words * sizeof(std::int64_t));
  std::memset(local_addr(off), 0, words * sizeof(std::int64_t));
  sync_all();
  return CoLock{off};
}

void Runtime::lock(CoLock lck, int image) {
  if (resilient_) {
    bool reclaimed = false;
    if (ticket_lock(lck, image, &reclaimed) != kStatOk) {
      throw std::runtime_error("craycaf lock: lock image has failed");
    }
    return;
  }
  // Packed centralized ticket lock: one 64-bit word holds the next ticket
  // (high 32 bits) and now_serving (low 32 bits), so the uncontended
  // acquire is a single NIC fetch-add. Under contention every waiter must
  // keep *remotely polling* the word with atomic reads that serialize on
  // the target NIC's AMO unit — the behaviour the MCS queue's local
  // spinning avoids, and the source of Figure 8's gap.
  constexpr std::int64_t kTicketOne = std::int64_t{1} << 32;
  const std::int64_t grabbed = ctx_->afadd(image - 1, lck.off, kTicketOne);
  const std::int64_t my_ticket = grabbed >> 32;
  std::int64_t serving = grabbed & 0xffffffff;
  // Poll interval ~1.5x the AMO round-trip to the lock's home, scaled by
  // queue distance to bound the poll storm.
  const auto& mp = ctx_->domain().fabric().profile();
  const bool local = ctx_->domain().fabric().same_node(me(), image - 1);
  const sim::Time rt_est = ctx_->domain().sw().amo_overhead +
                           2 * (local ? mp.local_latency : mp.hw_latency) +
                           mp.nic_amo_gap;
  while (serving != my_ticket) {
    engine_.advance(rt_est *
                    std::max<std::int64_t>(1, my_ticket - serving));
    serving =
        static_cast<std::int64_t>(ctx_->afadd(image - 1, lck.off, 0)) &
        0xffffffff;
  }
}

void Runtime::unlock(CoLock lck, int image) {
  if (resilient_) {
    if (ticket_unlock(lck, image) == kStatFailedImage) {
      throw std::runtime_error("craycaf unlock: lock image has failed");
    }
    return;
  }
  (void)ctx_->afadd(image - 1, lck.off, 1);  // bump now_serving
}

int Runtime::lock_stat(CoLock lck, int image) {
  bool reclaimed = false;
  const int st = ticket_lock(lck, image, &reclaimed);
  if (st != kStatOk) return st;
  return reclaimed ? kStatFailedImage : kStatOk;
}

int Runtime::unlock_stat(CoLock lck, int image) {
  return ticket_unlock(lck, image);
}

int Runtime::ticket_lock(CoLock lck, int image, bool* reclaimed) {
  const int home = image - 1;
  if (engine_.pe_failed(home)) return kStatFailedImage;
  const std::int64_t ring = ctx_->npes() + 1;
  const auto& mp = ctx_->domain().fabric().profile();
  const bool local = ctx_->domain().fabric().same_node(me(), home);
  const sim::Time rt_est = ctx_->domain().sw().amo_overhead +
                           2 * (local ? mp.local_latency : mp.hw_latency) +
                           mp.nic_amo_gap;
  constexpr std::int64_t kTicketOne = std::int64_t{1} << 32;
  auto slot_off = [&](std::int64_t ticket) {
    return lck.off + 16 +
           static_cast<std::uint64_t>(ticket % ring) * sizeof(std::int64_t);
  };
  try {
    const std::int64_t grabbed = ctx_->afadd(home, lck.off, kTicketOne);
    const std::int64_t my_ticket = grabbed >> 32;
    // Publish my owner-ring slot BEFORE polling: once now_serving reaches
    // my_ticket, any other waiter must be able to see who holds that turn.
    const std::int64_t tag = my_ticket * kRingTagBase + (me() + 1);
    ctx_->put(home, slot_off(my_ticket), &tag, sizeof tag);
    ctx_->gsync_wait();

    std::int64_t packed = grabbed;
    std::int64_t last_packed = -1;
    int stagnant = 0;
    while ((packed & 0xffffffff) != my_ticket) {
      const std::int64_t serving = packed & 0xffffffff;
      // Who owns the serving ticket? Authoritative only when the slot's
      // embedded ticket matches: a waiter may not have published yet.
      std::int64_t sv = 0;
      ctx_->get(&sv, home, slot_off(serving), sizeof sv);
      const std::int64_t slot_ticket = sv / kRingTagBase;
      const int slot_image0 = static_cast<int>(sv % kRingTagBase) - 1;
      bool bump = false;
      if (sv != 0 && slot_ticket == serving) {
        // Current holder identified; skip its turn iff it is dead.
        if (engine_.pe_failed(slot_image0)) bump = true;
      } else {
        // Slot stale or unpublished. If the lock word has not moved for a
        // while and some image has failed, assume the serving grabber died
        // between its fetch-add and its slot publish, and skip its turn.
        // (Window: a live publisher delayed pathologically long could be
        // wrongly skipped; see DESIGN.md Known limits.)
        if (packed == last_packed) ++stagnant;
        else stagnant = 0;
        if (stagnant >= 8 && engine_.failed_count() > 0) bump = true;
      }
      last_packed = packed;
      if (bump) {
        const std::int64_t seen =
            ctx_->acswap(home, lck.off, packed, packed + 1);
        if (seen == packed) {
          *reclaimed = true;  // this waiter retired the dead holder's turn
          stagnant = 0;
        }
        packed = (seen == packed) ? packed + 1 : seen;
        continue;
      }
      engine_.advance(rt_est *
                      std::max<std::int64_t>(1, my_ticket - serving));
      packed = ctx_->afadd(home, lck.off, 0);
    }
    held_tickets_[static_cast<std::size_t>(me())][lck.off] = my_ticket;
  } catch (const fabric::PeerFailedError&) {
    return kStatFailedImage;
  }
  return kStatOk;
}

int Runtime::ticket_unlock(CoLock lck, int image) {
  const int home = image - 1;
  auto& held = held_tickets_[static_cast<std::size_t>(me())];
  const auto it = held.find(lck.off);
  if (it == held.end()) return kStatUnlocked;
  const std::int64_t my_ticket = it->second;
  held.erase(it);
  if (engine_.pe_failed(home)) return kStatFailedImage;
  const std::int64_t ring = ctx_->npes() + 1;
  const std::uint64_t my_slot =
      lck.off + 16 +
      static_cast<std::uint64_t>(my_ticket % ring) * sizeof(std::int64_t);
  try {
    // Retire my slot before bumping now_serving: the next waiter must never
    // read my (now stale) tag as the owner of a later ticket in this slot.
    const std::int64_t zero = 0;
    ctx_->put(home, my_slot, &zero, sizeof zero);
    ctx_->gsync_wait();
    (void)ctx_->afadd(home, lck.off, 1);
  } catch (const fabric::PeerFailedError&) {
    return kStatFailedImage;
  }
  return kStatOk;
}

void Runtime::co_sum_f64(double* data, std::size_t nelems) {
  const std::size_t nbytes = nelems * sizeof(double);
  assert(nbytes <= kSlotBytes);
  const int r = me();
  const int n = ctx_->npes();
  if (n == 1) return;
  const std::int64_t gen = ++coll_gen_[r];
  int level = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++level) {
    assert(level < kMaxRounds);
    const std::uint64_t slot =
        coll_slots_off_ + static_cast<std::uint64_t>(level) * kSlotBytes;
    const std::uint64_t flag =
        coll_flags_off_ + static_cast<std::uint64_t>(level) * sizeof(std::int64_t);
    if (r & mask) {
      const int peer = r - mask;
      ctx_->put(peer, slot, data, nbytes);
      ctx_->gsync_wait();
      ctx_->put_nbi(peer, flag, &gen, sizeof gen);
      break;
    }
    if (r + mask < n) {
      wait_local_ge(flag, gen);
      const auto* in = reinterpret_cast<const double*>(
          ctx_->domain().segment(r) + slot);
      for (std::size_t i = 0; i < nelems; ++i) data[i] += in[i];
    }
  }
  // Broadcast the result down a binomial tree.
  const std::uint64_t bslot =
      coll_slots_off_ + static_cast<std::uint64_t>(kMaxRounds) * kSlotBytes;
  const std::uint64_t bflag =
      coll_flags_off_ + static_cast<std::uint64_t>(kMaxRounds) * sizeof(std::int64_t);
  std::memcpy(local_addr(bslot), data, nbytes);
  int mask = 1;
  if (r != 0) {
    while (!(r & mask)) mask <<= 1;
    wait_local_ge(bflag, gen);
  } else {
    while (mask < n) mask <<= 1;
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (r + m < n) {
      ctx_->put(r + m, bslot, local_addr(bslot), nbytes);
      ctx_->gsync_wait();
      ctx_->put_nbi(r + m, bflag, &gen, sizeof gen);
    }
  }
  std::memcpy(data, local_addr(bslot), nbytes);
}

}  // namespace craycaf
