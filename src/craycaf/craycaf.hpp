// craycaf::Runtime — a model of Cray's Fortran coarray runtime over DMAPP.
//
// This is the vendor baseline the paper compares against on the XC30 and
// Titan (Figures 6, 8, 9; Table I: Cray-CAF uses Cray's DMAPP API). It is an
// independent implementation — not a Conduit behind caf::Runtime — because
// the comparison hinges on its *different design choices*:
//
//   * every operation pays the Fortran runtime's descriptor-setup overhead
//     above raw DMAPP (folded into the kCrayCaf software profile);
//   * strided transfers use a pipelined per-element nbi-put path rather
//     than 1-D NIC scatter along a chosen base dimension — this is what the
//     2dim_strided algorithm beats by ~3x in Figure 6(c,d);
//   * coarray locks are centralized ticket locks: a fetch-add to take a
//     ticket, then remote polling of now_serving — fair, but each waiter
//     keeps touching the lock holder's image, unlike the MCS queue's
//     local spinning (Figure 8's ~22% average gap).
//
// Image indices are 1-based, like the caf::Runtime API.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fabric/dmapp.hpp"
#include "net/profiles.hpp"
#include "shmem/heap.hpp"

namespace craycaf {

/// Stat codes, numerically aligned with caf::StatCode so the templated
/// apps can treat both runtimes uniformly.
inline constexpr int kStatOk = 0;
inline constexpr int kStatUnlocked = 2;
inline constexpr int kStatFailedImage = 4;

/// A coarray lock variable: two symmetric words (next_ticket, now_serving).
/// Under failure recovery (kills armed) the cell grows an owner ring of
/// num_images()+1 words: owners[ticket % ring] records which image grabbed
/// that ticket, so survivors can tell a dead holder's turn from a live one.
struct CoLock {
  std::uint64_t off = 0;
};

class Runtime {
 public:
  Runtime(sim::Engine& engine, net::Fabric& fabric, std::size_t heap_bytes,
          net::Machine machine = net::Machine::kXC30);
  ~Runtime();

  void launch(std::function<void()> image_main);

  int this_image() const;   // 1-based
  int num_images() const { return ctx_->npes(); }
  sim::Engine& engine() { return engine_; }
  fabric::dmapp::Context& dmapp() { return *ctx_; }

  // ---- collective symmetric allocation ----
  std::uint64_t allocate(std::size_t bytes);
  void deallocate(std::uint64_t off);
  std::byte* local_addr(std::uint64_t off);

  // ---- co-indexed RMA (runtime inserts gsync for CAF ordering) ----
  void put_bytes(int image, std::uint64_t dst_off, const void* src,
                 std::size_t n);
  void get_bytes(void* dst, int image, std::uint64_t src_off, std::size_t n);
  /// Pipelined put without the per-statement gsync (the runtime's deferred
  /// mode); complete with sync_memory().
  void put_bytes_nbi(int image, std::uint64_t dst_off, const void* src,
                     std::size_t n);
  void sync_memory() { dmapp().gsync_wait(); }

  /// Vendor strided put: pipelined per-element nbi puts along the section
  /// (elements described like shmem_iput: strides in elements).
  void put_strided_1d(int image, std::uint64_t dst_off,
                      std::ptrdiff_t dst_stride, const void* src,
                      std::ptrdiff_t src_stride, std::size_t elem_bytes,
                      std::size_t nelems);

  // ---- synchronization ----
  void sync_all();

  // ---- failed-image inquiry & stat= RMA (failure-recovery support) ----
  /// kStatFailedImage when `image` (1-based) has failed, else kStatOk.
  int image_status(int image);
  int put_bytes_stat(int image, std::uint64_t dst_off, const void* src,
                     std::size_t n);
  int get_bytes_stat(void* dst, int image, std::uint64_t src_off,
                     std::size_t n);

  // ---- centralized ticket locks ----
  CoLock make_lock();
  void lock(CoLock lck, int image);
  void unlock(CoLock lck, int image);
  /// lock with stat=: kStatFailedImage without acquiring when the lock
  /// variable's image is dead; kStatFailedImage *with* the lock acquired
  /// when this waiter's CAS skipped a dead ticket holder (reclamation —
  /// reported by exactly the CAS winner); kStatOk otherwise.
  int lock_stat(CoLock lck, int image);
  /// unlock with stat=: kStatUnlocked when not held, kStatFailedImage when
  /// the lock variable's image died while held, else kStatOk.
  int unlock_stat(CoLock lck, int image);

  // ---- collectives (tree over puts; enough for the benchmarks) ----
  void co_sum_f64(double* data, std::size_t nelems);

 private:
  void wait_local_ge(std::uint64_t off, std::int64_t value);
  void on_write(const fabric::WriteEvent& ev);
  int me() const;
  /// Shared acquire path: returns kStatOk / kStatFailedImage; *reclaimed
  /// set when this waiter's CAS bumped now_serving past a dead owner.
  int ticket_lock(CoLock lck, int image, bool* reclaimed);
  int ticket_unlock(CoLock lck, int image);

  struct Watcher {
    std::uint64_t off;
    sim::Fiber* fiber;
  };

  sim::Engine& engine_;
  std::unique_ptr<fabric::dmapp::Context> ctx_;
  shmem::FreeListAllocator allocator_;
  struct AllocOp {
    bool is_free;
    std::uint64_t arg;
    std::uint64_t result;
  };
  std::vector<AllocOp> alloc_log_;
  std::vector<std::size_t> alloc_cursor_;
  std::vector<std::vector<Watcher>> watchers_;
  std::vector<std::int64_t> barrier_gen_;
  std::vector<std::int64_t> coll_gen_;
  /// Kills armed for this run (checked at launch): locks carry the owner
  /// ring and the acquire path reclaims past dead owners. Off by default so
  /// fault-free runs keep the original layout and RMA sequence exactly.
  bool resilient_ = false;
  /// Per-PE map lock offset -> outstanding ticket (resilient unlock needs
  /// the ticket to retire its owner-ring slot).
  std::vector<std::unordered_map<std::uint64_t, std::int64_t>> held_tickets_;

  // Internal layout at the base of every segment.
  static constexpr int kMaxRounds = 16;
  static constexpr std::size_t kSlotBytes = 8192;
  std::uint64_t barrier_flags_off_ = 0;
  std::uint64_t coll_flags_off_ = 0;
  std::uint64_t coll_slots_off_ = 0;
  std::uint64_t internal_bytes_ = 0;
};

}  // namespace craycaf
