// Interconnect and communication-library cost models.
//
// The paper's evaluation ran on three real machines (Stampede, Titan, a Cray
// XC30 — Table III) with several communication libraries (Cray SHMEM,
// MVAPICH2-X SHMEM, GASNet, MPI-3.0, Cray's CAF runtime over DMAPP). This
// repository substitutes a parametric LogGP-style model:
//
//   * MachineProfile — the hardware: wire latency, NIC injection bandwidth,
//     intra-node copy performance, per-message receive gap (message rate),
//     and cores per node.
//   * SwProfile — one communication library on that hardware: CPU overhead
//     to issue puts/gets/AMOs, achievable fraction of link bandwidth,
//     injection gap for pipelined non-blocking messages, whether 1-D strided
//     transfers are offloaded to the NIC (Cray DMAPP) or looped in software
//     (MVAPICH2-X), and the target-side cost of remote atomics (NIC-side for
//     SHMEM/DMAPP, CPU active-message handler for GASNet).
//
// All parameters were calibrated once against the *ratios* the paper reports
// (see EXPERIMENTS.md); absolute values are representative, not measured.
#pragma once

#include <string>

#include "sim/time.hpp"

namespace net {

/// Hardware description of one cluster (paper Table III).
struct MachineProfile {
  std::string name;
  int cores_per_node = 16;

  sim::Time hw_latency = 1'000;     ///< one-way wire+switch latency (ns)
  double link_bytes_per_ns = 6.0;   ///< NIC injection bandwidth (B/ns == GB/s)
  sim::Time rx_msg_gap = 60;        ///< per-message cost at the receiving NIC
  sim::Time nic_amo_gap = 80;       ///< NIC-side atomic execution time

  sim::Time local_latency = 120;    ///< intra-node one-way latency
  double local_bytes_per_ns = 12.0; ///< intra-node copy bandwidth

  // NUMA topology of one node. Every testbed in the paper is a multi-socket
  // box (dual Sandy Bridge, dual Interlagos die, dual Ivy Bridge, dual
  // Opteron), so "intra-node" is really two costs: a store that stays inside
  // the producer's memory domain, and one that crosses the socket
  // interconnect (QPI / HyperTransport). Cores map to domains contiguously:
  // domain(pe) = (local_rank * numa_domains) / cores_per_node. Consumed only
  // by the node-local shared-segment transport (net::NodeChannel); the
  // classic fabric path keeps the flat local_latency/local_bytes_per_ns
  // model, so these fields change nothing unless that transport is enabled.
  int numa_domains = 2;
  sim::Time numa_local_latency = 40;   ///< cache-line visibility, same domain
  sim::Time numa_remote_latency = 100; ///< visibility across the socket link
  double numa_local_bytes_per_ns = 16.0;  ///< memcpy bw within a domain
  double numa_remote_bytes_per_ns = 8.0;  ///< memcpy bw across domains
};

/// Software (library) profile layered on a machine.
struct SwProfile {
  std::string name;

  sim::Time put_overhead = 250;   ///< CPU cost to issue a blocking-local put
  sim::Time get_overhead = 300;   ///< CPU cost to issue a get request
  sim::Time amo_overhead = 250;   ///< CPU cost to issue a remote atomic
  sim::Time per_msg_gap = 100;    ///< injection gap for pipelined (nbi) msgs
  double bw_efficiency = 0.95;    ///< fraction of link bandwidth achieved
  /// Raw link bandwidth of the machine this profile was built for (B/ns).
  /// Stamped from MachineProfile::link_bytes_per_ns by sw_profile() so cost
  /// models above the conduit layer (e.g. the §VII adaptive strided planner)
  /// can price wire time without hardcoding a machine.
  double link_bytes_per_ns = 6.0;
  /// Cores (PEs) per node of the machine this profile was built for, stamped
  /// from MachineProfile::cores_per_node by sw_profile(). Lets topology-aware
  /// layers (the hierarchical collectives engine) derive the node map without
  /// reaching below the conduit.
  int cores_per_node = 16;
  /// One-way wire and intra-node latencies of the underlying machine, also
  /// stamped by sw_profile(). The collectives selector prices tree depths
  /// (inter-node hops vs intra-node hops) from these without hardcoding a
  /// machine, the same way the strided planner prices wire time.
  sim::Time hw_latency = 1'000;
  sim::Time local_latency = 120;
  /// NUMA shape of the machine, stamped by sw_profile() like the fields
  /// above. Read by the node-local transport's cost model and by the
  /// collectives selector when that transport is active; inert otherwise.
  int numa_domains = 2;
  sim::Time numa_local_latency = 40;
  sim::Time numa_remote_latency = 100;
  double numa_local_bytes_per_ns = 16.0;
  double numa_remote_bytes_per_ns = 8.0;

  bool hw_strided = false;        ///< 1-D iput/iget offloaded to the NIC?
  sim::Time strided_elem_gap = 25;///< per-element NIC cost when hw_strided

  bool nic_amo = true;            ///< remote atomics executed by the NIC
  sim::Time handler_cpu = 500;    ///< target-CPU AM handler cost (if !nic_amo)

  /// Extra per-operation runtime overhead of a language runtime layered on
  /// this library (used for the Cray CAF baseline, which pays descriptor
  /// setup above DMAPP).
  sim::Time runtime_overhead = 0;
};

/// Result of submitting a one-way transfer.
struct PutCompletion {
  sim::Time local_complete;  ///< source buffer reusable / issuing call returns
  sim::Time delivered;       ///< bytes visible in target memory
  /// False when fault injection exhausted the retransmit budget (peer dead
  /// or sustained loss); `delivered` then holds the give-up time and the
  /// bytes never reach the target.
  bool ok = true;
  /// Wire attempts consumed (1 = no retransmits). Retransmits are charged
  /// as real link occupancy, so this is also a bandwidth-tax indicator.
  int attempts = 1;
};

/// Result of submitting a round-trip operation (get / atomic / AM request).
struct RoundTrip {
  sim::Time target_read;  ///< request processed at the target (memory
                          ///< snapshot / RMW execution time)
  sim::Time complete;     ///< reply available at the initiator
  /// False when fault injection exhausted the retransmit budget; the target
  /// memory snapshot / RMW / handler must not be applied.
  bool ok = true;
  /// Wire attempts consumed for the request leg (1 = no retransmits).
  int attempts = 1;
};

}  // namespace net
