#include "net/detector.hpp"

#include <algorithm>
#include <sstream>

#include "net/fault.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace net {

namespace {

// Observer-side partition test: is `node` cut off from node 0 at `t`?
bool side_of(const Partition& p, int node) {
  for (int n : p.nodes) {
    if (n == node) return true;
  }
  return false;
}

}  // namespace

FailureDetector::FailureDetector(FaultInjector& injector, int npes)
    : inj_(injector),
      period_(injector.plan().fd.heartbeat_period),
      grace_(injector.plan().fd.suspicion_grace),
      pes_(static_cast<std::size_t>(npes)),
      rng_(injector.plan().seed ^ 0xfdfdfdfdULL) {
  suspect_after_ =
      static_cast<sim::Time>(injector.plan().fd.miss_threshold) * period_;
  // A straggler beacons every dilation x period; the suspicion threshold
  // must sit above the slowest such interval or a merely-slow PE flaps into
  // suspect between its own (perfectly healthy) beacons.
  double max_dilation = 1.0;
  for (const Straggler& s : injector.plan().stragglers) {
    max_dilation = std::max(max_dilation, s.dilation);
  }
  const sim::Time straggler_floor =
      sim::from_ns(1.5 * max_dilation * static_cast<double>(period_));
  suspect_after_ = std::max(suspect_after_, straggler_floor);

  auto& reg = obs::registry();
  c_suspects_ = &reg.counter(0, "fd.suspects");
  c_recoveries_ = &reg.counter(0, "fd.recoveries");
  c_flaps_ = &reg.counter(0, "fd.flaps");
  c_declared_ = &reg.counter(0, "fd.declared");
  c_evidence_declared_ = &reg.counter(0, "fd.evidence_declared");
  c_false_positives_ = &reg.counter(0, "fd.false_positives");
  c_detect_latency_ns_ = &reg.counter(0, "fd.detect_latency_ns_total");
  c_detect_count_ = &reg.counter(0, "fd.detect_count");
  c_heartbeats_heard_ = &reg.counter(0, "fd.heartbeats_heard");
}

void FailureDetector::arm(sim::Engine& engine) {
  engine_ = &engine;
  // From here on kill_pe only unwinds the victim's fibers; the runtime's
  // membership view moves when *we* declare.
  engine.set_deferred_failure_declaration(true);
  engine.set_diagnostic_hook([this] { return snapshot(); });
  // Advisory suspicion for the runtime (replica read fallback steers away
  // from suspects before the declaration commits). Never membership.
  engine.set_suspicion_query(
      [this](int pe) { return state_of(pe) == State::kSuspect; });
  schedule_sweep(period_);
}

void FailureDetector::schedule_sweep(sim::Time t) {
  if (sweeping_ || engine_ == nullptr) return;
  sweeping_ = true;
  // Raw event: sweeps recur every period_ for the whole run, so keep them
  // off the closure slow path.
  engine_->schedule_raw(
      t,
      [](void* ctx, std::uint64_t a, std::uint64_t) {
        static_cast<FailureDetector*>(ctx)->sweep(static_cast<sim::Time>(a));
      },
      this, static_cast<std::uint64_t>(t));
}

void FailureDetector::model_beacons(int pe, sim::Time t) {
  PeState& s = pes_[static_cast<std::size_t>(pe)];
  const double dil = inj_.dilation(pe);
  const sim::Time interval =
      dil == 1.0 ? period_
                 : sim::from_ns(dil * static_cast<double>(period_));
  const sim::Time killed = inj_.kill_time(pe);
  const int node = inj_.node_of(pe);
  for (;;) {
    const sim::Time tb =
        interval * static_cast<sim::Time>(s.next_beacon);
    if (tb > t) break;
    ++s.next_beacon;
    if (tb >= killed) continue;  // corpses do not beacon
    if (inj_.nodes_partitioned(node, 0, tb)) continue;  // cut off
    const FlakyLink* fl = inj_.flaky(pe, 0, tb);
    if (fl != nullptr && rng_.uniform() < fl->extra_loss) continue;
    s.last_evidence = std::max(s.last_evidence, tb);
    ++*c_heartbeats_heard_;
  }
}

void FailureDetector::heard(int pe, sim::Time t) {
  PeState& s = pes_[static_cast<std::size_t>(pe)];
  if (s.state == State::kFailed) return;  // no resurrection
  // Fibers run ahead of the event queue, so a message can carry a
  // timestamp past its sender's own kill time — a causal artifact of the
  // optimistic DES, not liveness evidence (the beacon model applies the
  // same cutoff via `tb >= killed`).
  if (t >= inj_.kill_time(pe)) return;
  // Traffic on the far side of a partition is invisible to the observer.
  if (inj_.nodes_partitioned(inj_.node_of(pe), 0, t)) return;
  s.last_evidence = std::max(s.last_evidence, t);
}

void FailureDetector::report_exhaustion(int /*src*/, int dst,
                                        sim::Time give_up) {
  // The fabric computes a retransmit schedule analytically at send time, so
  // `give_up` can sit far in the sim's future when this is called. Declare
  // at `give_up` through the event queue rather than immediately: that lets
  // the suspicion sweeps — which may observe the silence much earlier in
  // sim time — win the race they would win in a real system.
  if (engine_ == nullptr) return;
  engine_->schedule_raw(
      give_up,
      [](void* ctx, std::uint64_t a, std::uint64_t b) {
        static_cast<FailureDetector*>(ctx)->declare(
            static_cast<int>(a), static_cast<sim::Time>(b),
            /*via_exhaustion=*/true);
      },
      this, static_cast<std::uint64_t>(dst),
      static_cast<std::uint64_t>(give_up));
}

void FailureDetector::declare(int pe, sim::Time t, bool via_exhaustion) {
  PeState& s = pes_[static_cast<std::size_t>(pe)];
  if (s.state == State::kFailed || engine_ == nullptr) return;
  s.state = State::kFailed;
  s.declared_at = t;
  ++*c_declared_;
  if (via_exhaustion) ++*c_evidence_declared_;
  const sim::Time killed = inj_.kill_time(pe);
  if (killed != kTimeNever) {
    if (t > killed) *c_detect_latency_ns_ += static_cast<std::uint64_t>(t - killed);
    ++*c_detect_count_;
  } else if (!inj_.nodes_partitioned(inj_.node_of(pe), 0, t)) {
    // Declared a PE that is neither dead nor unreachable: a true false
    // positive (the chaos-soak invariant this counter exists for).
    ++*c_false_positives_;
  }
  engine_->declare_pe_failure(pe, t);
}

void FailureDetector::sweep(sim::Time t) {
  sweeping_ = false;
  const int n = static_cast<int>(pes_.size());
  for (int pe = 0; pe < n; ++pe) {
    PeState& s = pes_[static_cast<std::size_t>(pe)];
    if (s.state == State::kFailed) continue;
    model_beacons(pe, t);
    if (t - s.last_evidence <= suspect_after_) {
      if (s.state == State::kSuspect) {
        // A suspect that produced fresh evidence flaps back to alive. The
        // chaos-soak invariants pin fd.flaps to 0 for straggler/flaky-only
        // scripts: a merely-slow or lossy-linked PE must never even enter
        // suspicion, so any flap there is a tuning bug (threshold too tight),
        // not a save.
        s.state = State::kAlive;
        ++*c_recoveries_;
        ++*c_flaps_;
      }
    } else if (s.state == State::kAlive) {
      s.state = State::kSuspect;
      s.suspect_since = t;
      ++*c_suspects_;
    } else if (t - s.suspect_since >= grace_) {
      declare(pe, t, /*via_exhaustion=*/false);
    }
  }
  if (!quiescent(t)) schedule_sweep(t + period_);
}

bool FailureDetector::quiescent(sim::Time t) const {
  const int n = static_cast<int>(pes_.size());
  // Undeclared scheduled deaths and live suspicions both demand more sweeps.
  for (int pe = 0; pe < n; ++pe) {
    const PeState& s = pes_[static_cast<std::size_t>(pe)];
    if (s.state == State::kSuspect) return false;
    if (inj_.kill_time(pe) != kTimeNever && s.state != State::kFailed) {
      return false;
    }
  }
  // A partition that is active, future, or permanent keeps the detector
  // awake until every PE it cuts off from the observer has been declared
  // (or it heals). Flaky links deliberately do NOT hold sweeps open: their
  // loss is probabilistic, recovery is the common case, and holding the
  // event queue open for a permanent flaky link would defeat the deadlock
  // watchdog; sustained total flakiness still surfaces through the
  // retransmit-exhaustion evidence path.
  for (const Partition& p : inj_.plan().partitions) {
    if (p.until <= t) continue;  // healed
    const bool observer_side = side_of(p, 0);
    for (int pe = 0; pe < n; ++pe) {
      if (side_of(p, inj_.node_of(pe)) == observer_side) continue;
      if (pes_[static_cast<std::size_t>(pe)].state != State::kFailed) {
        return false;
      }
    }
  }
  return true;
}

std::string FailureDetector::snapshot() const {
  std::ostringstream os;
  int alive = 0, suspect = 0, failed = 0;
  for (const PeState& s : pes_) {
    switch (s.state) {
      case State::kAlive: ++alive; break;
      case State::kSuspect: ++suspect; break;
      case State::kFailed: ++failed; break;
    }
  }
  os << "failure detector: epoch="
     << (engine_ != nullptr ? engine_->membership_epoch() : 0)
     << " period=" << sim::format_time(period_)
     << " suspect_after=" << sim::format_time(suspect_after_)
     << " grace=" << sim::format_time(grace_) << "\n  states: " << alive
     << " alive, " << suspect << " suspect, " << failed << " failed";
  for (std::size_t pe = 0; pe < pes_.size(); ++pe) {
    const PeState& s = pes_[pe];
    if (s.state == State::kSuspect) {
      os << "\n  [pe " << pe << "] SUSPECT since "
         << sim::format_time(s.suspect_since) << " (last evidence "
         << sim::format_time(s.last_evidence) << ')';
    } else if (s.state == State::kFailed) {
      os << "\n  [pe " << pe << "] FAILED declared at "
         << sim::format_time(s.declared_at);
    }
  }
  return os.str();
}

void FailureDetector::reset() {
  std::fill(pes_.begin(), pes_.end(), PeState{});
  rng_ = sim::Rng(inj_.plan().seed ^ 0xfdfdfdfdULL);
  sweeping_ = false;
}

}  // namespace net
