// Fabric: the shared-state cost calculator for one simulated cluster.
//
// A Fabric instance tracks, per node, when the transmit and receive sides of
// the NIC next become free, and per PE, when its target-side processing
// resource (NIC atomic unit or CPU active-message handler) becomes free.
// Transports call submit_* with the current virtual time; the Fabric
// advances its link state and returns the completion times the transport
// should schedule events at. The Fabric itself never touches the event
// queue or any memory — it is a pure timing oracle, which keeps it trivially
// unit-testable.
#pragma once

#include <cstddef>
#include <vector>

#include "net/model.hpp"
#include "sim/time.hpp"

namespace net {

class Fabric {
 public:
  Fabric(MachineProfile profile, int npes);

  const MachineProfile& profile() const { return profile_; }
  int npes() const { return npes_; }
  int node_of(int pe) const { return pe / profile_.cores_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// One-way data transfer of `bytes` from `src_pe` to `dst_pe`.
  /// If `pipelined`, the issuing CPU only pays the injection gap (non-
  /// blocking interface); otherwise it pays the full put overhead.
  PutCompletion submit_put(int src_pe, int dst_pe, std::size_t bytes,
                           const SwProfile& sw, sim::Time now,
                           bool pipelined = false);

  /// 1-D hardware-strided transfer (DMAPP-style shmem_iput): `nelems`
  /// elements of `elem_bytes` each gathered/scattered by the NIC in one
  /// network operation. Requires sw.hw_strided.
  PutCompletion submit_strided_put(int src_pe, int dst_pe,
                                   std::size_t elem_bytes, std::size_t nelems,
                                   const SwProfile& sw, sim::Time now,
                                   bool pipelined = false);

  /// Read of `bytes` from `dst_pe`'s memory back to `src_pe`.
  RoundTrip submit_get(int src_pe, int dst_pe, std::size_t bytes,
                       const SwProfile& sw, sim::Time now);

  /// Strided read, NIC-gathered (requires sw.hw_strided).
  RoundTrip submit_strided_get(int src_pe, int dst_pe, std::size_t elem_bytes,
                               std::size_t nelems, const SwProfile& sw,
                               sim::Time now);

  /// 8-byte remote atomic at `dst_pe`. Serializes on the target's atomic
  /// unit (NIC if sw.nic_amo, otherwise the target CPU's handler queue), so
  /// many-to-one atomics contend realistically.
  RoundTrip submit_amo(int src_pe, int dst_pe, const SwProfile& sw,
                       sim::Time now);

  /// Active-message request carrying `bytes` of payload; the handler runs on
  /// the target CPU and a short reply returns. target_read = handler start.
  RoundTrip submit_am(int src_pe, int dst_pe, std::size_t bytes,
                      const SwProfile& sw, sim::Time now);

  /// Resets link/occupancy state (e.g. between benchmark repetitions).
  void reset();

 private:
  /// Wire-level one-way message; returns delivery time and updates links.
  sim::Time wire(int src_pe, int dst_pe, double occupancy_ns, sim::Time start);

  /// Control-channel message (AMO/AM replies): pays latency and occupancy
  /// but does not reserve the data links. Replies are computed eagerly at
  /// future timestamps; letting them reserve tx/rx slots would let the
  /// future block the present (a causality artifact, not contention).
  sim::Time wire_control(int src_pe, int dst_pe, double occupancy_ns,
                         sim::Time start) const;

  double xfer_ns(std::size_t bytes, const SwProfile& sw, bool local) const;

  MachineProfile profile_;
  int npes_;
  int nnodes_;
  std::vector<sim::Time> tx_free_;       // per node
  std::vector<sim::Time> rx_free_;       // per node
  std::vector<sim::Time> pe_proc_free_;  // per PE: AMO/handler serialization
};

}  // namespace net
