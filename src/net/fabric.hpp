// Fabric: the shared-state cost calculator for one simulated cluster.
//
// A Fabric instance tracks, per node, when the transmit and receive sides of
// the NIC next become free, and per PE, when its target-side processing
// resource (NIC atomic unit or CPU active-message handler) becomes free.
// Transports call submit_* with the current virtual time; the Fabric
// advances its link state and returns the completion times the transport
// should schedule events at. The Fabric itself never touches the event
// queue or any memory — it is a pure timing oracle, which keeps it trivially
// unit-testable.
#pragma once

#include <cstddef>
#include <vector>

#include "net/model.hpp"
#include "sim/time.hpp"

namespace net {

class FaultInjector;

class Fabric {
 public:
  Fabric(MachineProfile profile, int npes);

  const MachineProfile& profile() const { return profile_; }
  int npes() const { return npes_; }
  int node_of(int pe) const { return pe / profile_.cores_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// One-way data transfer of `bytes` from `src_pe` to `dst_pe`.
  /// If `pipelined`, the issuing CPU only pays the injection gap (non-
  /// blocking interface); otherwise it pays the full put overhead.
  PutCompletion submit_put(int src_pe, int dst_pe, std::size_t bytes,
                           const SwProfile& sw, sim::Time now,
                           bool pipelined = false);

  /// 1-D hardware-strided transfer (DMAPP-style shmem_iput): `nelems`
  /// elements of `elem_bytes` each gathered/scattered by the NIC in one
  /// network operation. Requires sw.hw_strided.
  PutCompletion submit_strided_put(int src_pe, int dst_pe,
                                   std::size_t elem_bytes, std::size_t nelems,
                                   const SwProfile& sw, sim::Time now,
                                   bool pipelined = false);

  /// Read of `bytes` from `dst_pe`'s memory back to `src_pe`.
  RoundTrip submit_get(int src_pe, int dst_pe, std::size_t bytes,
                       const SwProfile& sw, sim::Time now);

  /// Strided read, NIC-gathered (requires sw.hw_strided).
  RoundTrip submit_strided_get(int src_pe, int dst_pe, std::size_t elem_bytes,
                               std::size_t nelems, const SwProfile& sw,
                               sim::Time now);

  /// 8-byte remote atomic at `dst_pe`. Serializes on the target's atomic
  /// unit (NIC if sw.nic_amo, otherwise the target CPU's handler queue), so
  /// many-to-one atomics contend realistically.
  RoundTrip submit_amo(int src_pe, int dst_pe, const SwProfile& sw,
                       sim::Time now);

  /// Active-message request carrying `bytes` of payload; the handler runs on
  /// the target CPU and a short reply returns. target_read = handler start.
  RoundTrip submit_am(int src_pe, int dst_pe, std::size_t bytes,
                      const SwProfile& sw, sim::Time now);

  /// One-way control-channel message carrying `bytes` of payload (RPC
  /// replies, mailbox acks). Like the AMO/AM reply leg it pays latency and
  /// occupancy without reserving the data links — replies are computed
  /// eagerly at future timestamps, and letting them block the present would
  /// be a causality artifact, not contention. Under fault injection each
  /// attempt is judged like any other inter-node message and retransmitted
  /// per the plan's RetryPolicy; ok=false when the receiver is dead or the
  /// retries exhaust.
  PutCompletion submit_reply(int src_pe, int dst_pe, std::size_t bytes,
                             const SwProfile& sw, sim::Time now);

  /// Resets link/occupancy state and, when a fault injector is attached,
  /// rewinds it to its seeded initial state (FaultInjector::reset), so each
  /// benchmark repetition starts from an identical fault stream.
  void reset();

  /// Attaches (or detaches, with nullptr) a fault injector. Not owned; must
  /// outlive the Fabric or be detached first. With an injector attached,
  /// inter-node submissions consult it per wire attempt and run a bounded
  /// retransmit loop (timeout + exponential backoff with jitter, per the
  /// plan's RetryPolicy), charging every retransmit through the normal link
  /// model. Injector-free operation keeps the original single-attempt fast
  /// path bit-for-bit, and so does intra-node traffic unless the plan sets
  /// FaultPlan::intra_node_faults — with it set, same-node transfers honor
  /// the kill schedule (a dead peer's segment is detached, so the copy
  /// fails without retransmits) and straggler dilation of the copy cost.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }
  FaultInjector* fault_injector() const { return faults_; }

 private:
  /// Outcome of one wire attempt under fault injection.
  struct WireTry {
    sim::Time delivered;  ///< delivery time, or give-up point when dropped
    bool dropped;
  };

  /// Wire-level one-way message; returns delivery time and updates links.
  sim::Time wire(int src_pe, int dst_pe, double occupancy_ns, sim::Time start);

  /// Transmit leg only: source NIC serialization + wire latency. Returns
  /// arrival time at the destination node.
  sim::Time wire_tx(int src_node, double occupancy_ns, sim::Time start);
  /// Receive leg only: destination NIC message-retire serialization.
  sim::Time wire_rx(int dst_node, sim::Time arrival);

  /// One wire attempt with the injector consulted: the transmit leg is
  /// always charged (the bytes leave the source NIC either way); the
  /// message is then lost if the destination PE is dead on arrival or the
  /// injector's verdict says drop. Duplicates charge a second full wire
  /// trip (receivers dedup by sequence number, so contents apply once).
  WireTry wire_faulty(int src_pe, int dst_pe, double occupancy_ns,
                      sim::Time start);

  /// Retransmit loop for one-way transfers (put / strided put).
  PutCompletion reliable_oneway(int src_pe, int dst_pe, double occupancy_ns,
                                sim::Time local_complete);

  /// Retransmit loop for request/reply reads (get / strided get).
  RoundTrip reliable_get(int src_pe, int dst_pe, double req_occupancy_ns,
                         double reply_occupancy_ns, sim::Time start);

  /// Retransmit loop for operations executed at the target (AMO / AM).
  /// At-most-once semantics: the target executes on the first delivered
  /// request and caches the reply; retried requests are deduped by sequence
  /// number and answered from the cache, so the RMW/handler never reruns.
  /// target_read is the execution completion time when `read_at_exec_done`,
  /// else the handler start time (matching submit_amo vs submit_am).
  RoundTrip reliable_exec(int src_pe, int dst_pe, double req_occupancy_ns,
                          double reply_occupancy_ns, sim::Time start,
                          sim::Time unit_cost, bool read_at_exec_done);

  /// Control-channel message (AMO/AM replies): pays latency and occupancy
  /// but does not reserve the data links. Replies are computed eagerly at
  /// future timestamps; letting them reserve tx/rx slots would let the
  /// future block the present (a causality artifact, not contention).
  sim::Time wire_control(int src_pe, int dst_pe, double occupancy_ns,
                         sim::Time start) const;

  double xfer_ns(std::size_t bytes, const SwProfile& sw, bool local) const;

  MachineProfile profile_;
  int npes_;
  int nnodes_;
  std::vector<sim::Time> tx_free_;       // per node
  std::vector<sim::Time> rx_free_;       // per node
  std::vector<sim::Time> pe_proc_free_;  // per PE: AMO/handler serialization
  FaultInjector* faults_ = nullptr;      // not owned; nullptr = reliable
};

}  // namespace net
