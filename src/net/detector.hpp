// In-band failure detection: heartbeat/suspicion membership.
//
// Real OpenSHMEM layers have no oracle telling them which PEs died — they
// infer it from silence. This detector models that inference inside the
// simulation: every PE emits a liveness beacon each heartbeat_period (dilated
// for stragglers), delivered messages count as passive liveness evidence, and
// a periodic sweep runs the classic alive -> suspect -> failed state machine
// against the evidence. A suspect that beacons again (late heartbeat,
// partition heal) recovers to alive; a suspect that stays silent past
// suspicion_grace is *declared* failed via Engine::declare_pe_failure, which
// is the only way the runtime's membership view (image_status,
// failed_images, team formation, DHT degraded mode) learns of a death.
//
// Beacons are modeled, not simulated as fabric messages: the sweep derives
// from the fault plan's ground truth whether the observer would have heard
// PE p by time t (corpses stop beaconing at their kill time, partitions
// block cross-side beacons until they heal, flaky links drop beacons with
// their extra-loss probability from a detector-private rng stream, and
// stragglers beacon at dilation x period). The observer is the partition
// side containing node 0, so the detector maintains one converged global
// view — split-brain on the far side of a permanent partition is collapsed
// into that side being declared failed, which is exactly how the surviving
// side experiences it.
//
// A second, faster evidence path bypasses suspicion entirely: when the
// fabric's retransmit state machine exhausts its attempts against a peer
// (report_exhaustion), that peer is declared immediately — silence at the
// transport level is stronger evidence than a missed beacon.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace sim {
class Engine;
}

namespace net {

class FaultInjector;
struct DetectorTunables;

class FailureDetector {
 public:
  enum class State : std::uint8_t { kAlive = 0, kSuspect, kFailed };

  /// `injector` supplies the ground truth the beacon model derives from and
  /// must outlive the detector (the injector owns it).
  FailureDetector(FaultInjector& injector, int npes);

  /// Binds the detector to `engine`: switches the engine to deferred
  /// failure declaration, registers the suspicion-state snapshot as the
  /// engine's deadlock diagnostic hook, and schedules the first sweep.
  void arm(sim::Engine& engine);

  /// Passive liveness evidence: a message from `pe` was delivered at `t`.
  /// Ignored while `pe`'s node is partitioned from the observer (the
  /// observer cannot see traffic on the far side).
  void heard(int pe, sim::Time t);

  /// Transport-level evidence: retransmits from `src` to `dst` exhausted at
  /// `give_up`. Declares `dst` failed immediately (idempotent).
  void report_exhaustion(int src, int dst, sim::Time give_up);

  State state_of(int pe) const {
    return pes_[static_cast<std::size_t>(pe)].state;
  }

  /// Effective alive -> suspect threshold: miss_threshold x heartbeat
  /// period, auto-raised above the slowest straggler's beacon interval so a
  /// merely-slow PE never turns suspect.
  sim::Time suspect_after() const { return suspect_after_; }
  sim::Time heartbeat_period() const { return period_; }
  sim::Time suspicion_grace() const { return grace_; }

  /// One-line-per-PE suspicion-state dump appended to watchdog reports.
  std::string snapshot() const;

  /// Clears all observations and per-PE state back to alive (the engine
  /// binding stays). Fabric::reset -> FaultInjector::reset calls this.
  void reset();

 private:
  struct PeState {
    State state = State::kAlive;
    sim::Time last_evidence = 0;   ///< latest beacon or traffic heard
    sim::Time suspect_since = 0;
    sim::Time declared_at = 0;
    std::uint64_t next_beacon = 1;  ///< index of the next beacon to model
  };

  void sweep(sim::Time t);
  void schedule_sweep(sim::Time t);
  /// Advances `pe`'s modeled beacon stream up to time `t`, updating
  /// last_evidence with every beacon the observer hears.
  void model_beacons(int pe, sim::Time t);
  bool quiescent(sim::Time t) const;
  void declare(int pe, sim::Time t, bool via_exhaustion);

  FaultInjector& inj_;
  sim::Engine* engine_ = nullptr;
  sim::Time period_;
  sim::Time grace_;
  sim::Time suspect_after_;
  std::vector<PeState> pes_;
  sim::Rng rng_;  ///< beacon-loss draws only; never touches the verdict stream
  bool sweeping_ = false;  ///< a sweep event is pending on the engine

  // fd.* observability counters (registry handles are process-stable).
  std::uint64_t* c_suspects_;
  std::uint64_t* c_recoveries_;
  std::uint64_t* c_flaps_;
  std::uint64_t* c_declared_;
  std::uint64_t* c_evidence_declared_;
  std::uint64_t* c_false_positives_;
  std::uint64_t* c_detect_latency_ns_;
  std::uint64_t* c_detect_count_;
  std::uint64_t* c_heartbeats_heard_;
};

}  // namespace net
