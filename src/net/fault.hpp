// Deterministic fault injection for the simulated fabric.
//
// Real deployments of every library the paper models (Cray SHMEM over
// uGNI/DMAPP, MVAPICH2-X over IB verbs, GASNet, MPI-3 RMA) sit on transports
// that lose, reorder, duplicate, and retransmit packets; the PGAS layer only
// looks reliable because a retransmit state machine underneath absorbs the
// loss. A FaultPlan describes such an imperfect transport — message drop /
// duplicate / delay probabilities plus scheduled PE or node deaths — and a
// FaultInjector executes the plan with its own sim::Rng stream, so a given
// (plan, workload) pair produces a bit-identical event trace on every run.
//
// The injector plugs into net::Fabric (Fabric::set_fault_injector); the
// Fabric stays a pure timing oracle and simply asks the injector for a
// verdict per wire attempt, charging retransmissions as additional link
// occupancy. Without an injector (or for intra-node traffic) the fast path
// is untouched.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace sim {
class Engine;
}

namespace net {

/// Reliable-delivery parameters of the simulated transport: how long the
/// sender waits before retransmitting and how the timeout escalates. The
/// effective timeout of attempt k is
///   (rto + 2 * expected_one_way) * backoff^min(k, max_backoff_exp)
/// scaled by a uniform jitter in [1, 1+jitter).
struct RetryPolicy {
  sim::Time rto = 20'000;    ///< base ack-timeout margin (ns) beyond the RTT
  double backoff = 2.0;      ///< exponential escalation per retransmit
  int max_backoff_exp = 6;   ///< cap on the escalation exponent
  double jitter = 0.2;       ///< uniform jitter fraction per timeout
  int max_retransmits = 10;  ///< give up after 1 + max_retransmits attempts
};

/// Scheduled death of one PE (virtual time at which it stops executing and
/// stops acknowledging messages).
struct PeKill {
  int pe = 0;
  sim::Time at = 0;
};

/// Scheduled death of a whole node (all its PEs).
struct NodeKill {
  int node = 0;
  sim::Time at = 0;
};

/// Declarative description of the faults to inject into one run.
struct FaultPlan {
  std::uint64_t seed = 0x5eedULL;
  double drop_rate = 0.0;    ///< P(an inter-node message is lost)
  double dup_rate = 0.0;     ///< P(a delivered message is duplicated)
  double delay_rate = 0.0;   ///< P(a delivered message is extra-delayed)
  sim::Time delay_min = 500;     ///< extra delay bounds (ns), uniform
  sim::Time delay_max = 20'000;
  std::vector<PeKill> pe_kills;
  std::vector<NodeKill> node_kills;
  RetryPolicy retry;

  bool active() const {
    return drop_rate > 0 || dup_rate > 0 || delay_rate > 0 ||
           !pe_kills.empty() || !node_kills.empty();
  }

  FaultPlan& with_seed(std::uint64_t s) { seed = s; return *this; }
  FaultPlan& with_loss(double p) { drop_rate = p; return *this; }
  FaultPlan& with_duplicates(double p) { dup_rate = p; return *this; }
  FaultPlan& with_delays(double p, sim::Time lo, sim::Time hi) {
    delay_rate = p; delay_min = lo; delay_max = hi; return *this;
  }
  FaultPlan& kill_pe(int pe, sim::Time at) {
    pe_kills.push_back({pe, at}); return *this;
  }
  FaultPlan& kill_node(int node, sim::Time at) {
    node_kills.push_back({node, at}); return *this;
  }
};

/// Executes a FaultPlan. One instance serves one Fabric/Engine pair; all of
/// its randomness comes from a private xoshiro stream, and it is consulted
/// in deterministic event order, so identical plans yield identical traces.
class FaultInjector {
 public:
  /// What happens to one wire attempt.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    sim::Time extra_delay = 0;
  };

  /// Counters for introspection and determinism tests.
  struct Counters {
    std::uint64_t judged = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
  };

  FaultInjector(FaultPlan plan, int npes, int cores_per_node);

  const FaultPlan& plan() const { return plan_; }
  const RetryPolicy& retry() const { return plan_.retry; }

  /// Decides the fate of one inter-node message attempt sent at `t`.
  /// Consumes a fixed number of rng draws per call (plus one when delayed)
  /// so different fault rates stay on aligned rng streams.
  Verdict judge(int src_pe, int dst_pe, sim::Time t);

  /// True when `pe` is dead at time `t` per the kill schedule.
  bool pe_dead(int pe, sim::Time t) const {
    return kill_at_[static_cast<std::size_t>(pe)] <= t;
  }
  /// Scheduled death time of `pe` (Time max when it never dies).
  sim::Time kill_time(int pe) const {
    return kill_at_[static_cast<std::size_t>(pe)];
  }

  /// Sender-side retransmission timeout before attempt `attempt + 1`, given
  /// the expected one-way cost of the message in ns. Consumes one rng draw
  /// (the jitter).
  sim::Time backoff_delay(int attempt, double expected_oneway_ns);

  /// Schedules the plan's PE/node kills as engine events (Engine::kill_pe).
  /// Call once before Engine::run. When the plan schedules any kill, also
  /// marks the engine (Engine::arm_kills) so runtimes enable their
  /// failure-recovery protocols.
  void arm(sim::Engine& engine);

  /// Rewinds the injector to its initial state: re-seeds the rng stream and
  /// clears the verdict counters and trace hash (the kill schedule is
  /// immutable plan state and stays). Fabric::reset() calls this so every
  /// benchmark repetition replays the identical fault stream.
  void reset();

  const Counters& counters() const { return counters_; }

  /// Order-sensitive hash over every verdict issued so far; two runs are
  /// draw-for-draw identical iff their trace hashes match.
  std::uint64_t trace_hash() const { return trace_hash_; }

  static constexpr sim::Time kNever = std::numeric_limits<sim::Time>::max();

 private:
  FaultPlan plan_;
  std::vector<sim::Time> kill_at_;  // per PE; kNever if not scheduled
  sim::Rng rng_;
  Counters counters_;
  std::uint64_t trace_hash_ = 0;
};

}  // namespace net
