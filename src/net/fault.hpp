// Deterministic fault injection for the simulated fabric.
//
// Real deployments of every library the paper models (Cray SHMEM over
// uGNI/DMAPP, MVAPICH2-X over IB verbs, GASNet, MPI-3 RMA) sit on transports
// that lose, reorder, duplicate, and retransmit packets; the PGAS layer only
// looks reliable because a retransmit state machine underneath absorbs the
// loss. A FaultPlan describes such an imperfect transport — message drop /
// duplicate / delay probabilities, scheduled PE or node deaths, and the grey
// failures that dominate at scale: healable network partitions, per-link
// flaky degradation, and straggler PEs — and a FaultInjector executes the
// plan with its own sim::Rng stream, so a given (plan, workload) pair
// produces a bit-identical event trace on every run.
//
// The injector plugs into net::Fabric (Fabric::set_fault_injector); the
// Fabric stays a pure timing oracle and simply asks the injector for a
// verdict per wire attempt, charging retransmissions as additional link
// occupancy. Without an injector (or for intra-node traffic) the fast path
// is untouched.
//
// When the plan contains kills, partitions, flaky links, or stragglers,
// arm() additionally instantiates a FailureDetector (net/detector.hpp): the
// runtime then learns of deaths in-band — from heartbeat loss or retransmit
// exhaustion — instead of reading the injector oracle.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace sim {
class Engine;
}

namespace net {

class FailureDetector;

/// "Never happens" timestamp used by open-ended fault windows (a partition
/// that never heals, a PE that is never killed).
inline constexpr sim::Time kTimeNever = std::numeric_limits<sim::Time>::max();

/// Reliable-delivery parameters of the simulated transport: how long the
/// sender waits before retransmitting and how the timeout escalates. The
/// static timeout of attempt k is
///   (rto + 2 * expected_one_way) * backoff^min(k, max_backoff_exp)
/// scaled by a uniform jitter in [1, 1+jitter). With `adaptive` set (the
/// default) and at least one clean RTT sample for the node pair, the static
/// base is replaced by a Jacobson/Karn estimate srtt + 4*rttvar clamped to
/// [rto_min, rto_max]; samples are only taken from first-attempt successes
/// (Karn's rule), so retransmit ambiguity never pollutes the estimator.
struct RetryPolicy {
  sim::Time rto = 20'000;    ///< base ack-timeout margin (ns) beyond the RTT
  double backoff = 2.0;      ///< exponential escalation per retransmit
  int max_backoff_exp = 6;   ///< cap on the escalation exponent
  double jitter = 0.2;       ///< uniform jitter fraction per timeout
  int max_retransmits = 10;  ///< give up after 1 + max_retransmits attempts
  sim::Time rto_min = 5'000;      ///< adaptive-RTO floor (ns)
  sim::Time rto_max = 1'000'000;  ///< adaptive-RTO ceiling (ns)
  bool adaptive = true;      ///< use per-pair RTT estimation when sampled

  /// Applies CAF_FD_RTO_MIN_NS / CAF_FD_RTO_MAX_NS / CAF_FD_ADAPTIVE /
  /// CAF_FD_MAX_RETRANS overrides from the environment (unset vars leave
  /// the current values untouched). A malformed or out-of-range value
  /// throws std::invalid_argument after printing a one-line diagnostic
  /// naming the offending variable — never a silent fallback.
  void apply_env();
};

/// Scheduled death of one PE (virtual time at which it stops executing and
/// stops acknowledging messages).
struct PeKill {
  int pe = 0;
  sim::Time at = 0;
};

/// Scheduled death of a whole node (all its PEs).
struct NodeKill {
  int node = 0;
  sim::Time at = 0;
};

/// Healable network bisection: during [from, until) no message crosses
/// between `nodes` (side B) and the rest of the machine (side A). Traffic
/// within a side is unaffected. Drops are deterministic — no rng draws — so
/// a partitioned run stays draw-aligned with its fault-free twin except for
/// the retransmissions the partition itself causes. `until = kTimeNever`
/// models a permanent partition.
struct Partition {
  std::vector<int> nodes;      ///< side B node ids
  sim::Time from = 0;
  sim::Time until = kTimeNever;
};

/// Grey link: during [from, until) traffic between node_a and node_b (both
/// directions) suffers `extra_loss` on top of the plan's uniform drop_rate
/// and runs at `bw_factor` of nominal bandwidth (occupancy scales by
/// 1/bw_factor). Extra-loss draws come from a dedicated rng stream so the
/// main verdict stream stays aligned across plans that differ only here.
struct FlakyLink {
  int node_a = 0;
  int node_b = 0;
  double extra_loss = 0.0;  ///< additional P(drop) on this link
  double bw_factor = 1.0;   ///< fraction of nominal bandwidth (0 < f <= 1)
  sim::Time from = 0;
  sim::Time until = kTimeNever;
};

/// Straggler PE: all of its communication service times (op issue overheads
/// and target-side handler/AMO execution) are dilated by `dilation`, and its
/// liveness beacons slow down by the same factor. A straggler is *slow, not
/// dead* — the detector must never declare it failed.
struct Straggler {
  int pe = 0;
  double dilation = 1.0;  ///< >= 1; 1.0 = no effect
};

/// Failure-detector tunables (heartbeat/suspicion membership protocol, see
/// net/detector.hpp). Exposed through caf::Options::fd and the CAF_FD_* env
/// family.
struct DetectorTunables {
  sim::Time heartbeat_period = 50'000;  ///< beacon interval (ns)
  int miss_threshold = 4;        ///< missed beacons before alive -> suspect
  sim::Time suspicion_grace = 200'000;  ///< suspect -> failed dwell (ns)

  /// Applies CAF_FD_PERIOD_NS / CAF_FD_MISS / CAF_FD_GRACE_NS overrides
  /// from the environment (unset vars leave the current values untouched).
  /// Malformed/out-of-range values throw std::invalid_argument with a
  /// diagnostic naming the variable (see RetryPolicy::apply_env).
  void apply_env();
};

/// Declarative description of the faults to inject into one run.
struct FaultPlan {
  std::uint64_t seed = 0x5eedULL;
  double drop_rate = 0.0;    ///< P(an inter-node message is lost)
  double dup_rate = 0.0;     ///< P(a delivered message is duplicated)
  double delay_rate = 0.0;   ///< P(a delivered message is extra-delayed)
  sim::Time delay_min = 500;     ///< extra delay bounds (ns), uniform
  sim::Time delay_max = 20'000;
  std::vector<PeKill> pe_kills;
  std::vector<NodeKill> node_kills;
  std::vector<Partition> partitions;
  std::vector<FlakyLink> flaky_links;
  std::vector<Straggler> stragglers;
  RetryPolicy retry;
  DetectorTunables fd;

  /// Apply the kill schedule and straggler dilation to *same-node* traffic
  /// too. Historically the fabric's fault machinery short-circuited on
  /// same_node(), so a killed PE kept receiving intra-node puts and a
  /// straggler's shared-memory copies ran at full speed — wrong for node
  /// kills, where the co-located peers' segments die with the process.
  /// Honoring them is opt-in (rather than the default) because flipping the
  /// semantics under existing plans would move every checked-in golden trace
  /// hash and BENCH baseline; the node-local shared-segment transport
  /// (net::NodeChannel) always honors kills and stragglers regardless of
  /// this flag.
  bool intra_node_faults = false;

  bool active() const {
    return drop_rate > 0 || dup_rate > 0 || delay_rate > 0 ||
           !pe_kills.empty() || !node_kills.empty() || !partitions.empty() ||
           !flaky_links.empty() || !stragglers.empty();
  }

  /// True when the plan needs in-band failure detection: anything that can
  /// make a PE unreachable or suspiciously slow.
  bool needs_detector() const {
    return !pe_kills.empty() || !node_kills.empty() || !partitions.empty() ||
           !flaky_links.empty() || !stragglers.empty();
  }

  FaultPlan& with_seed(std::uint64_t s) { seed = s; return *this; }
  FaultPlan& with_loss(double p) { drop_rate = p; return *this; }
  FaultPlan& with_duplicates(double p) { dup_rate = p; return *this; }
  FaultPlan& with_delays(double p, sim::Time lo, sim::Time hi) {
    delay_rate = p; delay_min = lo; delay_max = hi; return *this;
  }
  FaultPlan& kill_pe(int pe, sim::Time at) {
    pe_kills.push_back({pe, at}); return *this;
  }
  FaultPlan& kill_node(int node, sim::Time at) {
    node_kills.push_back({node, at}); return *this;
  }
  FaultPlan& partition_nodes(std::vector<int> nodes, sim::Time from,
                             sim::Time until = kTimeNever) {
    partitions.push_back({std::move(nodes), from, until}); return *this;
  }
  FaultPlan& flaky_link(int node_a, int node_b, double extra_loss,
                        double bw_factor, sim::Time from,
                        sim::Time until = kTimeNever) {
    flaky_links.push_back({node_a, node_b, extra_loss, bw_factor, from, until});
    return *this;
  }
  FaultPlan& straggle_pe(int pe, double dilation) {
    stragglers.push_back({pe, dilation}); return *this;
  }
  FaultPlan& with_detector(DetectorTunables t) { fd = t; return *this; }
  FaultPlan& honor_intra_node_faults(bool on = true) {
    intra_node_faults = on;
    return *this;
  }
  /// Applies the whole CAF_FD_* env family (detector + retry overrides).
  FaultPlan& apply_env() {
    fd.apply_env();
    retry.apply_env();
    return *this;
  }
};

/// Executes a FaultPlan. One instance serves one Fabric/Engine pair; all of
/// its randomness comes from a private xoshiro stream, and it is consulted
/// in deterministic event order, so identical plans yield identical traces.
class FaultInjector {
 public:
  /// What happens to one wire attempt.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    sim::Time extra_delay = 0;
  };

  /// Counters for introspection and determinism tests.
  struct Counters {
    std::uint64_t judged = 0;
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::uint64_t partition_drops = 0;
    std::uint64_t flaky_drops = 0;
  };

  FaultInjector(FaultPlan plan, int npes, int cores_per_node);
  ~FaultInjector();

  const FaultPlan& plan() const { return plan_; }
  const RetryPolicy& retry() const { return plan_.retry; }
  /// Same-node traffic honors kills/stragglers (FaultPlan opt-in).
  bool intra_node_faults() const { return plan_.intra_node_faults; }
  int npes() const { return static_cast<int>(kill_at_.size()); }
  int node_of(int pe) const { return pe / cores_per_node_; }

  /// Decides the fate of one inter-node message attempt sent at `t`.
  /// Consumes a fixed number of rng draws per call (plus one when delayed)
  /// so different fault rates stay on aligned rng streams.
  Verdict judge(int src_pe, int dst_pe, sim::Time t);

  /// True when `pe` is dead at time `t` per the kill schedule.
  bool pe_dead(int pe, sim::Time t) const {
    return kill_at_[static_cast<std::size_t>(pe)] <= t;
  }
  /// Scheduled death time of `pe` (Time max when it never dies).
  sim::Time kill_time(int pe) const {
    return kill_at_[static_cast<std::size_t>(pe)];
  }

  /// True when an active partition separates src's node from dst's node at
  /// time `t`. Deterministic; consumes no rng draws.
  bool partitioned(int src_pe, int dst_pe, sim::Time t) const;
  /// partitioned() plus the partition_drops counter bump; the Fabric calls
  /// this per wire attempt.
  bool partition_drop(int src_pe, int dst_pe, sim::Time t);
  /// Partition check on raw node ids (used by the detector's beacon model).
  bool nodes_partitioned(int node_a, int node_b, sim::Time t) const;
  /// Earliest time >= t at which no partition separates the two nodes
  /// (kTimeNever when a permanent partition does).
  sim::Time partition_heal_time(int node_a, int node_b, sim::Time t) const;

  /// Active flaky link covering (src, dst) at `t`, or nullptr. No draws.
  const FlakyLink* flaky(int src_pe, int dst_pe, sim::Time t) const;
  /// Extra-loss coin flip for an active flaky link; consumes one draw from
  /// the dedicated flaky stream iff a link is active (else false, no draw).
  bool flaky_drop(int src_pe, int dst_pe, sim::Time t);
  /// Occupancy multiplier (>= 1) from flaky-link bandwidth degradation.
  double bw_penalty(int src_pe, int dst_pe, sim::Time t) const;

  /// Service-time dilation factor of `pe` (1.0 for non-stragglers).
  double dilation(int pe) const {
    return dilation_[static_cast<std::size_t>(pe)];
  }
  /// Dilates a service cost for `pe`. Exact identity when the factor is 1.0
  /// so plans without stragglers stay bit-identical.
  sim::Time dilate(int pe, sim::Time cost) const {
    const double f = dilation(pe);
    if (f == 1.0) return cost;
    return sim::from_ns(static_cast<double>(cost) * f);
  }

  /// Sender-side retransmission timeout before attempt `attempt + 1`, given
  /// the expected one-way cost of the message in ns. Consumes one rng draw
  /// (the jitter).
  sim::Time backoff_delay(int attempt, double expected_oneway_ns);

  /// Like backoff_delay, but with RetryPolicy::adaptive and a clean RTT
  /// sample available for the (src node, dst node) pair, the static base is
  /// replaced by srtt + 4*rttvar clamped to [rto_min, rto_max]. Exactly one
  /// rng draw either way, so plans differing only in `adaptive` stay
  /// draw-aligned.
  sim::Time retrans_timeout(int src_pe, int dst_pe, int attempt,
                            double expected_oneway_ns);

  /// Feeds one RTT sample for the (src node, dst node) pair. Ignored unless
  /// `attempts == 1` (Karn's rule: a retransmitted exchange is ambiguous).
  /// No rng draws.
  void record_rtt(int src_pe, int dst_pe, sim::Time rtt, int attempts);
  /// Smoothed RTT estimate for the pair (0 when never sampled).
  sim::Time srtt(int src_pe, int dst_pe) const;

  /// Liveness evidence from a delivered message: forwarded to the failure
  /// detector (no-op when none is armed).
  void note_delivery(int src_pe, int dst_pe, sim::Time t);
  /// Retransmit exhaustion on (src -> dst): in-band evidence that dst is
  /// unreachable; the detector declares it failed (no-op when none armed).
  void note_exhaustion(int src_pe, int dst_pe, sim::Time give_up);

  /// Schedules the plan's PE/node kills as engine events (Engine::kill_pe).
  /// Call once before Engine::run. When the plan schedules any kill or
  /// partition, also marks the engine (Engine::arm_kills) so runtimes enable
  /// their failure-recovery protocols. When the plan needs in-band detection
  /// (kills, partitions, flaky links, or stragglers), instantiates the
  /// FailureDetector, which defers failure declaration from kill_pe to the
  /// detector's heartbeat protocol.
  void arm(sim::Engine& engine);

  /// The armed failure detector, or nullptr before arm() / for plans that
  /// do not need one.
  FailureDetector* detector() const { return detector_.get(); }

  /// Rewinds the injector to its initial state: re-seeds the rng streams and
  /// clears the verdict counters, trace hash, RTT estimators, and detector
  /// observations (the kill schedule is immutable plan state and stays).
  /// Fabric::reset() calls this so every benchmark repetition replays the
  /// identical fault stream.
  void reset();

  const Counters& counters() const { return counters_; }

  /// Order-sensitive hash over every verdict issued so far; two runs are
  /// draw-for-draw identical iff their trace hashes match.
  std::uint64_t trace_hash() const { return trace_hash_; }

  static constexpr sim::Time kNever = kTimeNever;

 private:
  struct RttEstimate {
    sim::Time srtt = 0;    ///< 0 = never sampled
    sim::Time rttvar = 0;
  };
  RttEstimate& rtt_slot(int src_pe, int dst_pe);
  const RttEstimate& rtt_slot(int src_pe, int dst_pe) const;

  FaultPlan plan_;
  int cores_per_node_;
  int nnodes_;
  std::vector<sim::Time> kill_at_;   // per PE; kNever if not scheduled
  std::vector<double> dilation_;     // per PE; 1.0 if not a straggler
  sim::Rng rng_;
  sim::Rng flaky_rng_;               // dedicated stream for flaky extra loss
  std::vector<RttEstimate> rtt_;     // per (src node, dst node)
  Counters counters_;
  std::uint64_t trace_hash_ = 0;
  std::unique_ptr<FailureDetector> detector_;
};

}  // namespace net
