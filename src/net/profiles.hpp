// Named machine and library profiles reproducing the paper's testbeds
// (Table III) and communication stacks. See DESIGN.md §8 for calibration
// methodology: parameters are chosen so the *ratios* reported in the paper's
// figures hold; absolute values are representative only.
#pragma once

#include <string>

#include "net/model.hpp"

namespace net {

/// Which cluster from Table III (plus Whale, the UH development cluster
/// used by the UHCAF group's earlier studies).
enum class Machine { kStampede, kTitan, kXC30, kWhale };

/// Which communication library / runtime layer.
enum class Library {
  kShmemMvapich,  ///< MVAPICH2-X OpenSHMEM (InfiniBand verbs)
  kShmemCray,     ///< Cray SHMEM (DMAPP)
  kGasnet,        ///< GASNet (ibv / gemini / aries conduit per machine)
  kArmci,         ///< ARMCI (the other UHCAF conduit of Table I)
  kMpi3,          ///< MPI-3.0 RMA (MVAPICH2-X or Cray MPICH)
  kDmapp,         ///< raw Cray DMAPP
  kCrayCaf,       ///< Cray's CAF runtime layered over DMAPP
};

MachineProfile machine_profile(Machine m);
SwProfile sw_profile(Library lib, Machine m);

std::string to_string(Machine m);
std::string to_string(Library lib);

/// The SHMEM flavor natively available on a machine (MVAPICH2-X on
/// Stampede, Cray SHMEM on Titan/XC30), as used throughout Section V.
Library native_shmem(Machine m);

}  // namespace net
