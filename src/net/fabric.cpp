#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>

namespace net {

Fabric::Fabric(MachineProfile profile, int npes)
    : profile_(std::move(profile)), npes_(npes) {
  assert(npes > 0);
  nnodes_ = (npes + profile_.cores_per_node - 1) / profile_.cores_per_node;
  tx_free_.assign(nnodes_, 0);
  rx_free_.assign(nnodes_, 0);
  pe_proc_free_.assign(npes, 0);
}

void Fabric::reset() {
  std::fill(tx_free_.begin(), tx_free_.end(), 0);
  std::fill(rx_free_.begin(), rx_free_.end(), 0);
  std::fill(pe_proc_free_.begin(), pe_proc_free_.end(), 0);
}

double Fabric::xfer_ns(std::size_t bytes, const SwProfile& sw,
                       bool local) const {
  const double bw = local ? profile_.local_bytes_per_ns
                          : profile_.link_bytes_per_ns * sw.bw_efficiency;
  return static_cast<double>(bytes) / bw;
}

sim::Time Fabric::wire(int src_pe, int dst_pe, double occupancy_ns,
                       sim::Time start) {
  if (same_node(src_pe, dst_pe)) {
    // Intra-node transfers go through shared memory: no NIC involvement,
    // just copy time plus a short handoff latency.
    return start + profile_.local_latency + sim::from_ns(occupancy_ns);
  }
  const int sn = node_of(src_pe);
  const int dn = node_of(dst_pe);
  const sim::Time occ = sim::from_ns(occupancy_ns);
  // Serialize on the source NIC: messages from all PEs of a node share one
  // injection port (this is what creates the 16-pair contention in Figs 2-3).
  const sim::Time tx_start = std::max(start, tx_free_[sn]);
  tx_free_[sn] = tx_start + occ;
  const sim::Time arrival = tx_start + occ + profile_.hw_latency;
  // Receive side: the target NIC retires one message per rx_msg_gap; this is
  // what limits many-to-one message rates (lock and DHT benchmarks).
  const sim::Time rx_start = std::max(arrival, rx_free_[dn]);
  const sim::Time delivered = rx_start + profile_.rx_msg_gap;
  rx_free_[dn] = delivered;
  return delivered;
}

sim::Time Fabric::wire_control(int src_pe, int dst_pe, double occupancy_ns,
                               sim::Time start) const {
  if (same_node(src_pe, dst_pe)) {
    return start + profile_.local_latency + sim::from_ns(occupancy_ns);
  }
  return start + sim::from_ns(occupancy_ns) + profile_.hw_latency +
         profile_.rx_msg_gap;
}

PutCompletion Fabric::submit_put(int src_pe, int dst_pe, std::size_t bytes,
                                 const SwProfile& sw, sim::Time now,
                                 bool pipelined) {
  const sim::Time issue_cost = pipelined ? sw.per_msg_gap : sw.put_overhead;
  const sim::Time local_complete = now + issue_cost;
  const bool local = same_node(src_pe, dst_pe);
  const sim::Time delivered =
      wire(src_pe, dst_pe, xfer_ns(bytes, sw, local), local_complete);
  return {local_complete, delivered};
}

PutCompletion Fabric::submit_strided_put(int src_pe, int dst_pe,
                                         std::size_t elem_bytes,
                                         std::size_t nelems,
                                         const SwProfile& sw, sim::Time now,
                                         bool pipelined) {
  assert(sw.hw_strided &&
         "software iput must be looped by the caller, not the fabric");
  const sim::Time issue_cost = pipelined ? sw.per_msg_gap : sw.put_overhead;
  const sim::Time local_complete = now + issue_cost;
  const bool local = same_node(src_pe, dst_pe);
  // The NIC gathers nelems descriptors: per-element gap plus byte cost.
  const double occupancy =
      xfer_ns(elem_bytes * nelems, sw, local) +
      static_cast<double>(sw.strided_elem_gap) * static_cast<double>(nelems);
  const sim::Time delivered = wire(src_pe, dst_pe, occupancy, local_complete);
  return {local_complete, delivered};
}

RoundTrip Fabric::submit_get(int src_pe, int dst_pe, std::size_t bytes,
                             const SwProfile& sw, sim::Time now) {
  const bool local = same_node(src_pe, dst_pe);
  // Request: a small (16-byte) descriptor to the target NIC.
  const sim::Time req_arrival =
      wire(src_pe, dst_pe, xfer_ns(16, sw, local), now + sw.get_overhead);
  // The target NIC services the read directly (one-sided); the data flows
  // back as a payload message.
  const sim::Time reply =
      wire(dst_pe, src_pe, xfer_ns(bytes, sw, local), req_arrival);
  return {req_arrival, reply};
}

RoundTrip Fabric::submit_strided_get(int src_pe, int dst_pe,
                                     std::size_t elem_bytes,
                                     std::size_t nelems, const SwProfile& sw,
                                     sim::Time now) {
  assert(sw.hw_strided);
  const bool local = same_node(src_pe, dst_pe);
  const sim::Time req_arrival =
      wire(src_pe, dst_pe, xfer_ns(16, sw, local), now + sw.get_overhead);
  const double occupancy =
      xfer_ns(elem_bytes * nelems, sw, local) +
      static_cast<double>(sw.strided_elem_gap) * static_cast<double>(nelems);
  const sim::Time reply = wire(dst_pe, src_pe, occupancy, req_arrival);
  return {req_arrival, reply};
}

RoundTrip Fabric::submit_amo(int src_pe, int dst_pe, const SwProfile& sw,
                             sim::Time now) {
  const bool local = same_node(src_pe, dst_pe);
  const sim::Time req_arrival =
      wire(src_pe, dst_pe, xfer_ns(16, sw, local), now + sw.amo_overhead);
  // Execution at the target serializes per PE: on the NIC's atomic unit for
  // SHMEM/DMAPP/verbs, or on the target CPU for AM-emulated atomics.
  const sim::Time unit_cost = sw.nic_amo ? profile_.nic_amo_gap : sw.handler_cpu;
  const sim::Time exec_start = std::max(req_arrival, pe_proc_free_[dst_pe]);
  const sim::Time exec_done = exec_start + unit_cost;
  pe_proc_free_[dst_pe] = exec_done;
  const sim::Time reply =
      wire_control(dst_pe, src_pe, xfer_ns(8, sw, local), exec_done);
  return {exec_done, reply};
}

RoundTrip Fabric::submit_am(int src_pe, int dst_pe, std::size_t bytes,
                            const SwProfile& sw, sim::Time now) {
  const bool local = same_node(src_pe, dst_pe);
  const sim::Time req_arrival = wire(src_pe, dst_pe,
                                     xfer_ns(bytes + 16, sw, local),
                                     now + sw.put_overhead);
  // The handler needs the target CPU; requests to the same PE serialize.
  const sim::Time h_start = std::max(req_arrival, pe_proc_free_[dst_pe]);
  const sim::Time h_done = h_start + sw.handler_cpu;
  pe_proc_free_[dst_pe] = h_done;
  const sim::Time reply =
      wire_control(dst_pe, src_pe, xfer_ns(8, sw, local), h_done);
  return {h_start, reply};
}

}  // namespace net
