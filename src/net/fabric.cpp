#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>

#include "net/fault.hpp"
#include "obs/obs.hpp"

namespace net {

Fabric::Fabric(MachineProfile profile, int npes)
    : profile_(std::move(profile)), npes_(npes) {
  assert(npes > 0);
  nnodes_ = (npes + profile_.cores_per_node - 1) / profile_.cores_per_node;
  tx_free_.assign(nnodes_, 0);
  rx_free_.assign(nnodes_, 0);
  pe_proc_free_.assign(npes, 0);
  // A new fabric is a new simulated run: zero the observability session
  // (registry counters, event rings, phase table) so back-to-back runs in
  // one process start from identical state.
  obs::reset();
}

void Fabric::reset() {
  std::fill(tx_free_.begin(), tx_free_.end(), 0);
  std::fill(rx_free_.begin(), rx_free_.end(), 0);
  std::fill(pe_proc_free_.begin(), pe_proc_free_.end(), 0);
  if (faults_ != nullptr) faults_->reset();
  obs::reset();
}

double Fabric::xfer_ns(std::size_t bytes, const SwProfile& sw,
                       bool local) const {
  const double bw = local ? profile_.local_bytes_per_ns
                          : profile_.link_bytes_per_ns * sw.bw_efficiency;
  return static_cast<double>(bytes) / bw;
}

sim::Time Fabric::wire_tx(int src_node, double occupancy_ns, sim::Time start) {
  const sim::Time occ = sim::from_ns(occupancy_ns);
  // Serialize on the source NIC: messages from all PEs of a node share one
  // injection port (this is what creates the 16-pair contention in Figs 2-3).
  const sim::Time tx_start = std::max(start, tx_free_[src_node]);
  tx_free_[src_node] = tx_start + occ;
  return tx_start + occ + profile_.hw_latency;
}

sim::Time Fabric::wire_rx(int dst_node, sim::Time arrival) {
  // Receive side: the target NIC retires one message per rx_msg_gap; this is
  // what limits many-to-one message rates (lock and DHT benchmarks).
  const sim::Time rx_start = std::max(arrival, rx_free_[dst_node]);
  const sim::Time delivered = rx_start + profile_.rx_msg_gap;
  rx_free_[dst_node] = delivered;
  return delivered;
}

sim::Time Fabric::wire(int src_pe, int dst_pe, double occupancy_ns,
                       sim::Time start) {
  if (same_node(src_pe, dst_pe)) {
    // Intra-node transfers go through shared memory: no NIC involvement,
    // just copy time plus a short handoff latency.
    return start + profile_.local_latency + sim::from_ns(occupancy_ns);
  }
  const sim::Time arrival = wire_tx(node_of(src_pe), occupancy_ns, start);
  return wire_rx(node_of(dst_pe), arrival);
}

Fabric::WireTry Fabric::wire_faulty(int src_pe, int dst_pe,
                                    double occupancy_ns, sim::Time start) {
  const bool local = same_node(src_pe, dst_pe);
  if (faults_ == nullptr || (local && !faults_->intra_node_faults())) {
    // Intra-node "wire" is a shared-memory copy; loss does not apply (and,
    // unless the plan opts in, neither do kills/stragglers — flipping that
    // default would move every checked-in golden trace).
    return {wire(src_pe, dst_pe, occupancy_ns, start), false};
  }
  if (local) {
    // Opt-in honest intra-node semantics: the copy is producer CPU work, so
    // straggler dilation stretches it, and a killed receiver's segment is
    // detached — the store faults instead of landing. No loss, duplication,
    // or partition model applies: shared memory delivers or the peer is gone.
    const double occ = occupancy_ns * faults_->dilation(src_pe);
    const sim::Time delivered =
        start + profile_.local_latency + sim::from_ns(occ);
    if (faults_->pe_dead(dst_pe, delivered)) return {delivered, true};
    faults_->note_delivery(src_pe, dst_pe, delivered);
    return {delivered, false};
  }
  // Flaky-link bandwidth degradation inflates occupancy (factor 1.0 when
  // the link is clean, so fault-free plans stay bit-identical).
  const double occ = occupancy_ns * faults_->bw_penalty(src_pe, dst_pe, start);
  // The transmit leg is always paid: the bytes leave the source NIC whether
  // or not they survive the fabric.
  const sim::Time arrival = wire_tx(node_of(src_pe), occ, start);
  if (faults_->pe_dead(dst_pe, arrival)) {
    // Dead receivers neither retire the message nor ack it.
    return {arrival, true};
  }
  // Partitions drop deterministically, before the verdict and with no rng
  // draws, so runs differing only in partitions keep aligned judge streams.
  if (faults_->partition_drop(src_pe, dst_pe, start)) return {arrival, true};
  const FaultInjector::Verdict v = faults_->judge(src_pe, dst_pe, start);
  if (v.drop) return {arrival, true};
  if (faults_->flaky_drop(src_pe, dst_pe, start)) return {arrival, true};
  sim::Time delivered = wire_rx(node_of(dst_pe), arrival) + v.extra_delay;
  if (v.duplicate) {
    // A duplicate consumes a second full wire trip; the receiver dedups by
    // sequence number so only the timing cost is observable.
    const sim::Time dup_arrival = wire_tx(node_of(src_pe), occ, arrival);
    (void)wire_rx(node_of(dst_pe), dup_arrival);
  }
  // A delivered message doubles as liveness evidence for its sender
  // (heartbeat piggybacking; no-op without an armed detector).
  faults_->note_delivery(src_pe, dst_pe, delivered);
  return {delivered, false};
}

PutCompletion Fabric::reliable_oneway(int src_pe, int dst_pe,
                                      double occupancy_ns,
                                      sim::Time local_complete) {
  const bool local = same_node(src_pe, dst_pe);
  if (faults_ == nullptr || (local && !faults_->intra_node_faults())) {
    return {local_complete,
            wire(src_pe, dst_pe, occupancy_ns, local_complete), true, 1};
  }
  if (local) {
    const WireTry t =
        wire_faulty(src_pe, dst_pe, occupancy_ns, local_complete);
    if (!t.dropped) return {local_complete, t.delivered, true, 1};
    // A store into a dead peer's detached segment cannot be retried.
    faults_->note_exhaustion(src_pe, dst_pe, t.delivered);
    return {local_complete, t.delivered, false, 1};
  }
  const int max_attempts = 1 + faults_->retry().max_retransmits;
  const double expected_oneway =
      occupancy_ns + static_cast<double>(profile_.hw_latency);
  sim::Time send = local_complete;
  for (int a = 0; a < max_attempts; ++a) {
    const WireTry t = wire_faulty(src_pe, dst_pe, occupancy_ns, send);
    if (!t.dropped) {
      // Ack round trip approximates delivery + the return-leg latency.
      faults_->record_rtt(src_pe, dst_pe,
                          t.delivered - send + profile_.hw_latency, a + 1);
      return {local_complete, t.delivered, true, a + 1};
    }
    send += faults_->retrans_timeout(src_pe, dst_pe, a, expected_oneway);
  }
  faults_->note_exhaustion(src_pe, dst_pe, send);
  return {local_complete, send, false, max_attempts};
}

RoundTrip Fabric::reliable_get(int src_pe, int dst_pe,
                               double req_occupancy_ns,
                               double reply_occupancy_ns, sim::Time start) {
  const bool local = same_node(src_pe, dst_pe);
  if (faults_ == nullptr || (local && !faults_->intra_node_faults())) {
    const sim::Time req_arrival =
        wire(src_pe, dst_pe, req_occupancy_ns, start);
    const sim::Time reply =
        wire(dst_pe, src_pe, reply_occupancy_ns, req_arrival);
    return {req_arrival, reply, true, 1};
  }
  if (local) {
    const WireTry req = wire_faulty(src_pe, dst_pe, req_occupancy_ns, start);
    if (!req.dropped) {
      const WireTry rep =
          wire_faulty(dst_pe, src_pe, reply_occupancy_ns, req.delivered);
      if (!rep.dropped) return {req.delivered, rep.delivered, true, 1};
    }
    // Reading a dead peer's detached segment faults; no retry can help.
    faults_->note_exhaustion(src_pe, dst_pe, req.delivered);
    return {req.delivered, req.delivered, false, 1};
  }
  const int max_attempts = 1 + faults_->retry().max_retransmits;
  const double expected_rtt = req_occupancy_ns + reply_occupancy_ns +
                              2.0 * static_cast<double>(profile_.hw_latency);
  sim::Time send = start;
  for (int a = 0; a < max_attempts; ++a) {
    const WireTry req = wire_faulty(src_pe, dst_pe, req_occupancy_ns, send);
    if (!req.dropped) {
      // The target NIC re-reads memory on every (re)request, so each retry
      // snapshots afresh; the last successful request's snapshot is the one
      // the caller observes.
      const WireTry rep =
          wire_faulty(dst_pe, src_pe, reply_occupancy_ns, req.delivered);
      if (!rep.dropped) {
        faults_->record_rtt(src_pe, dst_pe, rep.delivered - send, a + 1);
        return {req.delivered, rep.delivered, true, a + 1};
      }
    }
    send += faults_->retrans_timeout(src_pe, dst_pe, a, expected_rtt);
  }
  faults_->note_exhaustion(src_pe, dst_pe, send);
  return {send, send, false, max_attempts};
}

sim::Time Fabric::wire_control(int src_pe, int dst_pe, double occupancy_ns,
                               sim::Time start) const {
  if (same_node(src_pe, dst_pe)) {
    return start + profile_.local_latency + sim::from_ns(occupancy_ns);
  }
  return start + sim::from_ns(occupancy_ns) + profile_.hw_latency +
         profile_.rx_msg_gap;
}

PutCompletion Fabric::submit_put(int src_pe, int dst_pe, std::size_t bytes,
                                 const SwProfile& sw, sim::Time now,
                                 bool pipelined) {
  sim::Time issue_cost = pipelined ? sw.per_msg_gap : sw.put_overhead;
  if (faults_ != nullptr) issue_cost = faults_->dilate(src_pe, issue_cost);
  const sim::Time local_complete = now + issue_cost;
  const bool local = same_node(src_pe, dst_pe);
  const PutCompletion r = reliable_oneway(src_pe, dst_pe,
                                          xfer_ns(bytes, sw, local),
                                          local_complete);
  if (obs::enabled()) obs::wire_event(src_pe, dst_pe, bytes, now, r.delivered);
  return r;
}

PutCompletion Fabric::submit_strided_put(int src_pe, int dst_pe,
                                         std::size_t elem_bytes,
                                         std::size_t nelems,
                                         const SwProfile& sw, sim::Time now,
                                         bool pipelined) {
  assert(sw.hw_strided &&
         "software iput must be looped by the caller, not the fabric");
  sim::Time issue_cost = pipelined ? sw.per_msg_gap : sw.put_overhead;
  if (faults_ != nullptr) issue_cost = faults_->dilate(src_pe, issue_cost);
  const sim::Time local_complete = now + issue_cost;
  const bool local = same_node(src_pe, dst_pe);
  // The NIC gathers nelems descriptors: per-element gap plus byte cost.
  const double occupancy =
      xfer_ns(elem_bytes * nelems, sw, local) +
      static_cast<double>(sw.strided_elem_gap) * static_cast<double>(nelems);
  const PutCompletion r =
      reliable_oneway(src_pe, dst_pe, occupancy, local_complete);
  if (obs::enabled()) {
    obs::wire_event(src_pe, dst_pe, elem_bytes * nelems, now, r.delivered);
  }
  return r;
}

RoundTrip Fabric::submit_get(int src_pe, int dst_pe, std::size_t bytes,
                             const SwProfile& sw, sim::Time now) {
  const bool local = same_node(src_pe, dst_pe);
  // Request: a small (16-byte) descriptor to the target NIC; the target NIC
  // services the read directly (one-sided) and the data flows back as a
  // payload message.
  sim::Time issue_cost = sw.get_overhead;
  if (faults_ != nullptr) issue_cost = faults_->dilate(src_pe, issue_cost);
  const RoundTrip r =
      reliable_get(src_pe, dst_pe, xfer_ns(16, sw, local),
                   xfer_ns(bytes, sw, local), now + issue_cost);
  if (obs::enabled()) obs::wire_event(src_pe, dst_pe, bytes, now, r.complete);
  return r;
}

RoundTrip Fabric::submit_strided_get(int src_pe, int dst_pe,
                                     std::size_t elem_bytes,
                                     std::size_t nelems, const SwProfile& sw,
                                     sim::Time now) {
  assert(sw.hw_strided);
  const bool local = same_node(src_pe, dst_pe);
  const double occupancy =
      xfer_ns(elem_bytes * nelems, sw, local) +
      static_cast<double>(sw.strided_elem_gap) * static_cast<double>(nelems);
  sim::Time issue_cost = sw.get_overhead;
  if (faults_ != nullptr) issue_cost = faults_->dilate(src_pe, issue_cost);
  const RoundTrip r = reliable_get(src_pe, dst_pe, xfer_ns(16, sw, local),
                                   occupancy, now + issue_cost);
  if (obs::enabled()) {
    obs::wire_event(src_pe, dst_pe, elem_bytes * nelems, now, r.complete);
  }
  return r;
}

RoundTrip Fabric::reliable_exec(int src_pe, int dst_pe,
                                double req_occupancy_ns,
                                double reply_occupancy_ns, sim::Time start,
                                sim::Time unit_cost, bool read_at_exec_done) {
  const bool local = same_node(src_pe, dst_pe);
  if (faults_ == nullptr || (local && !faults_->intra_node_faults())) {
    const sim::Time req_arrival =
        wire(src_pe, dst_pe, req_occupancy_ns, start);
    // Execution at the target serializes per PE (NIC atomic unit or target
    // CPU handler queue).
    const sim::Time exec_start = std::max(req_arrival, pe_proc_free_[dst_pe]);
    const sim::Time exec_done = exec_start + unit_cost;
    pe_proc_free_[dst_pe] = exec_done;
    const sim::Time reply =
        wire_control(dst_pe, src_pe, reply_occupancy_ns, exec_done);
    return {read_at_exec_done ? exec_done : exec_start, reply, true, 1};
  }
  if (local) {
    // Same-node exec with honored faults: one attempt against the target's
    // atomic unit; a dead target can't execute and the caller must not
    // apply the RMW/handler.
    const WireTry req = wire_faulty(src_pe, dst_pe, req_occupancy_ns, start);
    if (req.dropped) {
      faults_->note_exhaustion(src_pe, dst_pe, req.delivered);
      return {req.delivered, req.delivered, false, 1};
    }
    const sim::Time exec_start = std::max(req.delivered, pe_proc_free_[dst_pe]);
    const sim::Time exec_done = exec_start + unit_cost;
    pe_proc_free_[dst_pe] = exec_done;
    const sim::Time reply =
        wire_control(dst_pe, src_pe, reply_occupancy_ns, exec_done);
    return {read_at_exec_done ? exec_done : exec_start, reply, true, 1};
  }
  const int max_attempts = 1 + faults_->retry().max_retransmits;
  const double expected_rtt = req_occupancy_ns + reply_occupancy_ns +
                              2.0 * static_cast<double>(profile_.hw_latency) +
                              static_cast<double>(unit_cost);
  sim::Time send = start;
  sim::Time exec_start = 0;
  sim::Time exec_done = -1;  // -1: not executed yet
  for (int a = 0; a < max_attempts; ++a) {
    const WireTry req = wire_faulty(src_pe, dst_pe, req_occupancy_ns, send);
    if (!req.dropped) {
      if (exec_done < 0) {
        // First delivered request executes; later deliveries hit the
        // sequence-number dedup cache and only resend the reply.
        exec_start = std::max(req.delivered, pe_proc_free_[dst_pe]);
        exec_done = exec_start + unit_cost;
        pe_proc_free_[dst_pe] = exec_done;
      }
      const sim::Time reply_start = std::max(exec_done, req.delivered);
      // The reply is a control message (no data-link reservation) but can
      // itself be lost; judge it like any other inter-node message.
      const FaultInjector::Verdict v =
          faults_->judge(dst_pe, src_pe, reply_start);
      if (!v.drop) {
        const sim::Time reply =
            wire_control(dst_pe, src_pe, reply_occupancy_ns, reply_start) +
            v.extra_delay;
        faults_->record_rtt(src_pe, dst_pe, reply - send, a + 1);
        return {read_at_exec_done ? exec_done : exec_start, reply, true,
                a + 1};
      }
    }
    send += faults_->retrans_timeout(src_pe, dst_pe, a, expected_rtt);
  }
  faults_->note_exhaustion(src_pe, dst_pe, send);
  return {send, send, false, max_attempts};
}

RoundTrip Fabric::submit_amo(int src_pe, int dst_pe, const SwProfile& sw,
                             sim::Time now) {
  const bool local = same_node(src_pe, dst_pe);
  // Execution at the target serializes per PE: on the NIC's atomic unit for
  // SHMEM/DMAPP/verbs, or on the target CPU for AM-emulated atomics.
  sim::Time unit_cost = sw.nic_amo ? profile_.nic_amo_gap : sw.handler_cpu;
  sim::Time issue_cost = sw.amo_overhead;
  if (faults_ != nullptr) {
    // Stragglers issue slowly and (for CPU-handled atomics) execute slowly.
    issue_cost = faults_->dilate(src_pe, issue_cost);
    if (!sw.nic_amo) unit_cost = faults_->dilate(dst_pe, unit_cost);
  }
  const RoundTrip r =
      reliable_exec(src_pe, dst_pe, xfer_ns(16, sw, local),
                    xfer_ns(8, sw, local), now + issue_cost, unit_cost,
                    /*read_at_exec_done=*/true);
  if (obs::enabled()) obs::wire_event(src_pe, dst_pe, 8, now, r.complete);
  return r;
}

PutCompletion Fabric::submit_reply(int src_pe, int dst_pe, std::size_t bytes,
                                   const SwProfile& sw, sim::Time now) {
  const bool local = same_node(src_pe, dst_pe);
  // An 8-byte completion descriptor rides along with the payload.
  const double occ = xfer_ns(bytes + 8, sw, local);
  if (faults_ == nullptr || (local && !faults_->intra_node_faults())) {
    const sim::Time delivered = wire_control(src_pe, dst_pe, occ, now);
    if (obs::enabled()) {
      obs::wire_event(src_pe, dst_pe, bytes, now, delivered);
    }
    return {now, delivered, true, 1};
  }
  if (local) {
    // Shared-memory handoff: straggler dilation stretches the copy, a dead
    // receiver's detached segment faults the store, nothing else applies.
    const double docc = occ * faults_->dilation(src_pe);
    const sim::Time delivered =
        now + profile_.local_latency + sim::from_ns(docc);
    if (faults_->pe_dead(dst_pe, delivered)) {
      faults_->note_exhaustion(src_pe, dst_pe, delivered);
      return {now, delivered, false, 1};
    }
    faults_->note_delivery(src_pe, dst_pe, delivered);
    return {now, delivered, true, 1};
  }
  const int max_attempts = 1 + faults_->retry().max_retransmits;
  const double expected = occ + static_cast<double>(profile_.hw_latency);
  sim::Time send = now;
  for (int a = 0; a < max_attempts; ++a) {
    const sim::Time arrive = wire_control(src_pe, dst_pe, occ, send);
    if (!faults_->pe_dead(dst_pe, arrive)) {
      const FaultInjector::Verdict v = faults_->judge(src_pe, dst_pe, send);
      if (!v.drop) {
        const sim::Time delivered = arrive + v.extra_delay;
        faults_->record_rtt(src_pe, dst_pe,
                            delivered - send + profile_.hw_latency, a + 1);
        faults_->note_delivery(src_pe, dst_pe, delivered);
        if (obs::enabled()) {
          obs::wire_event(src_pe, dst_pe, bytes, now, delivered);
        }
        return {now, delivered, true, a + 1};
      }
    }
    send += faults_->retrans_timeout(src_pe, dst_pe, a, expected);
  }
  faults_->note_exhaustion(src_pe, dst_pe, send);
  return {now, send, false, max_attempts};
}

RoundTrip Fabric::submit_am(int src_pe, int dst_pe, std::size_t bytes,
                            const SwProfile& sw, sim::Time now) {
  const bool local = same_node(src_pe, dst_pe);
  // The handler needs the target CPU; requests to the same PE serialize.
  sim::Time issue_cost = sw.put_overhead;
  sim::Time unit_cost = sw.handler_cpu;
  if (faults_ != nullptr) {
    issue_cost = faults_->dilate(src_pe, issue_cost);
    unit_cost = faults_->dilate(dst_pe, unit_cost);
  }
  const RoundTrip r =
      reliable_exec(src_pe, dst_pe, xfer_ns(bytes + 16, sw, local),
                    xfer_ns(8, sw, local), now + issue_cost,
                    unit_cost, /*read_at_exec_done=*/false);
  if (obs::enabled()) obs::wire_event(src_pe, dst_pe, bytes, now, r.complete);
  return r;
}

}  // namespace net
