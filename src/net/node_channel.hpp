// NodeChannel: the timing oracle of the node-local shared-segment transport.
//
// When two PEs share a node, the fastest path between them is not the NIC
// loopback the fabric models — it is a per-node shared mapping of the
// symmetric heap (POSH-style), where a put is a plain memcpy by the producer
// core and a "message" is a cache-line-padded lock-free SPSC ring slot. This
// class prices exactly that:
//
//   * bulk transfers — producer-core memcpy at the NUMA bandwidth between
//     the producer's CPU domain and the owner's segment domain, plus a
//     visibility latency for the last line to become observable;
//   * small messages and notifications — an SPSC ring per ordered same-node
//     pair: the producer writes ceil(n / slot_bytes) slots (stalling on a
//     full ring until the consumer retires slots — real backpressure), the
//     consumer pays a pop cost after the store becomes visible;
//   * atomics — a remote CAS/fetch-op on the owner's cache line, serialized
//     per target PE (line ownership bounces once per op).
//
// Like net::Fabric, a NodeChannel never touches memory or the event queue:
// fabric::Domain asks it for times and keeps all byte movement on its
// existing per-pair in-order streams, so enabling the transport changes
// *when* same-node bytes land (and removes the fabric messages), never the
// delivery order machinery — same-seed runs stay byte-identical.
//
// NUMA model: cores map to `numa_domains` contiguously
// (domain = local_rank * domains / cores_per_node); each PE's slice of the
// shared heap is placed by NumaPlacement. Crossing the socket link costs the
// profile's numa_remote_{latency,bytes_per_ns} instead of the local pair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/model.hpp"
#include "sim/time.hpp"

namespace net {

/// Placement policy for each PE's slice of the node-shared symmetric heap.
enum class NumaPlacement {
  kLocalDomain,  ///< first-touch: a PE's slice lives in its own CPU domain
  kInterleave,   ///< slices round-robin across domains
  kDomain0,      ///< one arena on domain 0 (naive allocator baseline)
};

/// Configuration of the node-local transport. Off by default; every layer
/// that consults it treats `enabled == false` as "use the fabric path",
/// keeping existing runs bit-identical.
struct NodeTransportOptions {
  bool enabled = false;
  int ring_slots = 64;               ///< slots per SPSC ring (>= 2)
  std::size_t slot_bytes = 128;      ///< payload per slot (one padded line pair)
  std::size_t ring_max_bytes = 512;  ///< messages <= this ride the ring
  NumaPlacement placement = NumaPlacement::kLocalDomain;
};

/// Result of pushing one message onto a pair's SPSC ring.
struct RingPush {
  sim::Time producer_done;  ///< slots written; source buffer reusable
  sim::Time delivered;      ///< payload observable and popped by the consumer
  int slots = 1;
  bool stalled = false;     ///< producer waited for the consumer (ring full)
};

/// Times of a round-trip node-local operation (get / atomic).
struct NodeRoundTrip {
  sim::Time exec;      ///< target memory read / RMW executed
  sim::Time complete;  ///< result observable at the initiator
};

class NodeChannel {
 public:
  /// Producer-side cost to begin a bulk copy or service a get (descriptor
  /// math, segment translation).
  static constexpr sim::Time kBulkIssue = 20;
  /// Producer store cost per ring slot (payload line + sequence flag).
  static constexpr sim::Time kSlotWrite = 10;
  /// Consumer cost to pop one ring message after visibility.
  static constexpr sim::Time kRingPop = 10;
  /// Issue cost of a node-local atomic (address translation + lock prefix).
  static constexpr sim::Time kAmoIssue = 15;
  /// Cache-line RMW execution once the line is owned.
  static constexpr sim::Time kAmoRmw = 30;
  /// Per-element pointer arithmetic of software strided/scatter loops.
  static constexpr sim::Time kElemGap = 2;

  NodeChannel(const MachineProfile& machine, int npes,
              NodeTransportOptions opts);

  const NodeTransportOptions& options() const { return opts_; }
  const MachineProfile& machine() const { return machine_; }

  // ---- topology ----

  int numa_domains() const { return machine_.numa_domains; }
  /// CPU domain of `pe` (contiguous core -> domain mapping).
  int domain_of(int pe) const {
    const int local = pe % machine_.cores_per_node;
    return local * machine_.numa_domains / machine_.cores_per_node;
  }
  /// Domain holding `pe`'s slice of the node-shared heap (placement policy).
  int segment_domain(int pe) const;
  /// True when `accessor`'s CPU domain matches `owner`'s segment domain.
  bool numa_local(int accessor_pe, int owner_pe) const {
    return domain_of(accessor_pe) == segment_domain(owner_pe);
  }

  // ---- cost model ----

  /// Visibility latency of a store by `src` into `dst`'s segment.
  sim::Time visibility(int src_pe, int dst_pe) const {
    return numa_local(src_pe, dst_pe) ? machine_.numa_local_latency
                                      : machine_.numa_remote_latency;
  }
  double bytes_per_ns(int accessor_pe, int owner_pe) const {
    return numa_local(accessor_pe, owner_pe)
               ? machine_.numa_local_bytes_per_ns
               : machine_.numa_remote_bytes_per_ns;
  }
  /// Producer-core memcpy of `n` bytes into/out of `owner`'s segment.
  sim::Time copy_cost(int accessor_pe, int owner_pe, std::size_t n) const {
    return kBulkIssue + sim::from_ns(static_cast<double>(n) /
                                     bytes_per_ns(accessor_pe, owner_pe));
  }
  /// Software strided loop: per-element pointer math on top of the copy.
  sim::Time strided_cost(int accessor_pe, int owner_pe, std::size_t elem_bytes,
                         std::size_t nelems) const {
    return copy_cost(accessor_pe, owner_pe, elem_bytes * nelems) +
           static_cast<sim::Time>(nelems) * kElemGap;
  }
  /// Vectored put: per-record pointer math on top of the payload copy.
  sim::Time scatter_cost(int accessor_pe, int owner_pe,
                         std::size_t payload_bytes, std::size_t nrecs) const {
    return copy_cost(accessor_pe, owner_pe, payload_bytes) +
           static_cast<sim::Time>(nrecs) * kElemGap;
  }

  bool ring_eligible(std::size_t n) const { return n <= opts_.ring_max_bytes; }
  int slots_for(std::size_t n) const {
    const auto s = (n + opts_.slot_bytes - 1) / opts_.slot_bytes;
    return s == 0 ? 1 : static_cast<int>(s);
  }
  /// Producer store cost for a ring message of `n` bytes (pre-dilation).
  sim::Time ring_write_cost(std::size_t n) const {
    return static_cast<sim::Time>(slots_for(n)) * kSlotWrite;
  }

  // ---- stateful resources ----

  /// Reserves slots on the (src -> dst) ring for an `n`-byte message sent at
  /// `now`. `write_cost`/`pop_cost` are the (possibly dilated) producer and
  /// consumer CPU costs. Stalls the start until enough slots have been
  /// retired when the ring is full.
  RingPush push(int src_pe, int dst_pe, std::size_t n, sim::Time now,
                sim::Time write_cost, sim::Time pop_cost);

  /// Node-local atomic on `dst`'s segment: serialized per target PE (the
  /// cache line bounces once per op). `issue_cost`/`rmw_cost` are the
  /// (possibly dilated) requester CPU costs.
  NodeRoundTrip amo(int src_pe, int dst_pe, sim::Time now, sim::Time issue_cost,
                    sim::Time rmw_cost);

  /// Node-local read of `n` bytes from `src`'s view: snapshot at `exec`,
  /// result streamed back by `complete`. `extra_copy` carries per-element
  /// gaps for strided gets.
  NodeRoundTrip get(int accessor_pe, int owner_pe, std::size_t n, sim::Time now,
                    sim::Time issue_cost, sim::Time extra_copy = 0) const {
    const sim::Time exec = now + issue_cost;
    return {exec, exec + visibility(accessor_pe, owner_pe) +
                      sim::from_ns(static_cast<double>(n) /
                                   bytes_per_ns(accessor_pe, owner_pe)) +
                      extra_copy};
  }

  // ---- introspection (tests, NodeHeap) ----

  std::uint64_t ring_pushes() const { return pushes_; }
  std::uint64_t ring_stalls() const { return stalls_; }
  std::uint64_t ring_wraps() const { return wraps_; }

 private:
  struct Ring {
    std::vector<sim::Time> retire;  ///< per-slot: consumer done with the slot
    std::uint64_t head = 0;
  };
  Ring& ring(int src_pe, int dst_pe);

  MachineProfile machine_;
  int npes_;
  NodeTransportOptions opts_;
  std::unordered_map<std::uint64_t, Ring> rings_;  // ordered same-node pairs
  std::vector<sim::Time> amo_free_;                // per target PE
  std::uint64_t pushes_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t wraps_ = 0;
};

}  // namespace net
