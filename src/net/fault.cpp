#include "net/fault.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

#include "net/detector.hpp"
#include "sim/engine.hpp"

namespace net {

namespace {

// Order-sensitive accumulator: same mixing as splitmix64's finalizer, keyed
// by position so that swapping two verdicts changes the hash.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

// CAF_FD_* parsing. A malformed or out-of-range value is a configuration
// error, not a hint: silently falling back to a default turns a typo
// ("CAF_FD_PERIOD_NS=50us") into a run with tunables the operator never
// chose. Each helper prints a one-line diagnostic naming the variable and
// throws std::invalid_argument with the same text.
[[noreturn]] void env_reject(const char* name, const char* value,
                             const char* why) {
  std::string msg = std::string(name) + "=\"" + value + "\": " + why;
  std::fprintf(stderr, "caf: invalid environment override %s\n", msg.c_str());
  throw std::invalid_argument(msg);
}

bool env_time(const char* name, sim::Time* out, sim::Time min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') {
    env_reject(name, v, "not an integer nanosecond count");
  }
  if (errno == ERANGE || parsed < min_value) {
    env_reject(name, v, min_value > 0 ? "must be a positive ns count"
                                      : "must be a non-negative ns count");
  }
  *out = static_cast<sim::Time>(parsed);
  return true;
}

bool env_int(const char* name, int* out, int min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') env_reject(name, v, "not an integer");
  if (errno == ERANGE || parsed < min_value ||
      parsed > std::numeric_limits<int>::max()) {
    env_reject(name, v,
               min_value > 0 ? "must be a positive integer"
                             : "must be a non-negative integer");
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool env_bool(const char* name, bool* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  const std::string_view s(v);
  if (s == "1" || s == "y" || s == "Y" || s == "t" || s == "T" ||
      s == "true" || s == "yes" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "0" || s == "n" || s == "N" || s == "f" || s == "F" ||
      s == "false" || s == "no" || s == "off") {
    *out = false;
    return true;
  }
  env_reject(name, v, "not a boolean (use 0/1/true/false/yes/no/on/off)");
}

bool in_nodes(const std::vector<int>& nodes, int node) {
  for (int n : nodes) {
    if (n == node) return true;
  }
  return false;
}

}  // namespace

void RetryPolicy::apply_env() {
  env_time("CAF_FD_RTO_MIN_NS", &rto_min, 1);
  env_time("CAF_FD_RTO_MAX_NS", &rto_max, 1);
  env_bool("CAF_FD_ADAPTIVE", &adaptive);
  env_int("CAF_FD_MAX_RETRANS", &max_retransmits, 0);
  if (rto_min > rto_max) {
    env_reject("CAF_FD_RTO_MIN_NS/CAF_FD_RTO_MAX_NS",
               std::to_string(rto_min).c_str(),
               "rto_min exceeds rto_max — the adaptive clamp is empty");
  }
}

void DetectorTunables::apply_env() {
  env_time("CAF_FD_PERIOD_NS", &heartbeat_period, 1);
  env_int("CAF_FD_MISS", &miss_threshold, 1);
  env_time("CAF_FD_GRACE_NS", &suspicion_grace, 0);
}

FaultInjector::FaultInjector(FaultPlan plan, int npes, int cores_per_node)
    : plan_(std::move(plan)),
      cores_per_node_(cores_per_node),
      kill_at_(static_cast<std::size_t>(npes), kNever),
      dilation_(static_cast<std::size_t>(npes), 1.0),
      rng_(plan_.seed),
      flaky_rng_(plan_.seed ^ 0xf1a4f1a4ULL) {
  if (npes <= 0) throw std::invalid_argument("FaultInjector: npes <= 0");
  if (cores_per_node <= 0) {
    throw std::invalid_argument("FaultInjector: cores_per_node <= 0");
  }
  nnodes_ = (npes + cores_per_node - 1) / cores_per_node;
  for (const PeKill& k : plan_.pe_kills) {
    if (k.pe < 0 || k.pe >= npes) {
      throw std::out_of_range("FaultPlan: pe kill out of range");
    }
    auto& at = kill_at_[static_cast<std::size_t>(k.pe)];
    at = std::min(at, k.at);
  }
  for (const NodeKill& k : plan_.node_kills) {
    const int first = k.node * cores_per_node;
    if (k.node < 0 || first >= npes) {
      throw std::out_of_range("FaultPlan: node kill out of range");
    }
    const int last = std::min(first + cores_per_node, npes);
    for (int pe = first; pe < last; ++pe) {
      auto& at = kill_at_[static_cast<std::size_t>(pe)];
      at = std::min(at, k.at);
    }
  }
  for (const Partition& p : plan_.partitions) {
    if (p.nodes.empty()) {
      throw std::invalid_argument("FaultPlan: partition with no nodes");
    }
    for (int n : p.nodes) {
      if (n < 0 || n >= nnodes_) {
        throw std::out_of_range("FaultPlan: partition node out of range");
      }
    }
    if (p.until <= p.from) {
      throw std::invalid_argument("FaultPlan: partition heals before it forms");
    }
  }
  for (const FlakyLink& f : plan_.flaky_links) {
    if (f.node_a < 0 || f.node_a >= nnodes_ || f.node_b < 0 ||
        f.node_b >= nnodes_ || f.node_a == f.node_b) {
      throw std::out_of_range("FaultPlan: flaky link nodes out of range");
    }
    if (f.extra_loss < 0.0 || f.extra_loss > 1.0 || f.bw_factor <= 0.0 ||
        f.bw_factor > 1.0) {
      throw std::invalid_argument("FaultPlan: flaky link rates out of range");
    }
  }
  for (const Straggler& s : plan_.stragglers) {
    if (s.pe < 0 || s.pe >= npes) {
      throw std::out_of_range("FaultPlan: straggler pe out of range");
    }
    if (s.dilation < 1.0) {
      throw std::invalid_argument("FaultPlan: straggler dilation < 1");
    }
    auto& d = dilation_[static_cast<std::size_t>(s.pe)];
    d = std::max(d, s.dilation);
  }
  rtt_.assign(static_cast<std::size_t>(nnodes_) * nnodes_, RttEstimate{});
}

FaultInjector::~FaultInjector() = default;

FaultInjector::Verdict FaultInjector::judge(int src_pe, int dst_pe,
                                            sim::Time t) {
  // Always burn the same three draws regardless of the configured rates so
  // that runs differing only in rates keep aligned rng streams, and so a
  // verdict depends on (seed, call index) alone.
  const double u_drop = rng_.uniform();
  const double u_dup = rng_.uniform();
  const double u_delay = rng_.uniform();

  Verdict v;
  v.drop = u_drop < plan_.drop_rate;
  if (!v.drop) {
    v.duplicate = u_dup < plan_.dup_rate;
    if (u_delay < plan_.delay_rate) {
      const double frac = rng_.uniform();
      const double span =
          static_cast<double>(plan_.delay_max - plan_.delay_min);
      v.extra_delay = plan_.delay_min + sim::from_ns(frac * span);
    }
  }

  ++counters_.judged;
  if (v.drop) ++counters_.dropped;
  if (v.duplicate) ++counters_.duplicated;
  if (v.extra_delay > 0) ++counters_.delayed;

  trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(src_pe));
  trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(dst_pe));
  trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(t));
  trace_hash_ = mix(trace_hash_, (v.drop ? 1u : 0u) | (v.duplicate ? 2u : 0u));
  trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(v.extra_delay));
  return v;
}

bool FaultInjector::nodes_partitioned(int node_a, int node_b,
                                      sim::Time t) const {
  if (node_a == node_b) return false;
  for (const Partition& p : plan_.partitions) {
    if (t < p.from || t >= p.until) continue;
    if (in_nodes(p.nodes, node_a) != in_nodes(p.nodes, node_b)) return true;
  }
  return false;
}

bool FaultInjector::partitioned(int src_pe, int dst_pe, sim::Time t) const {
  if (plan_.partitions.empty()) return false;
  return nodes_partitioned(node_of(src_pe), node_of(dst_pe), t);
}

sim::Time FaultInjector::partition_heal_time(int node_a, int node_b,
                                             sim::Time t) const {
  sim::Time heal = t;
  // A later partition window can re-cut the pair the moment an earlier one
  // heals; iterate to the fixed point (windows are finite, so this
  // terminates unless a permanent partition separates the pair).
  for (;;) {
    bool advanced = false;
    for (const Partition& p : plan_.partitions) {
      if (heal < p.from || heal >= p.until) continue;
      if (in_nodes(p.nodes, node_a) == in_nodes(p.nodes, node_b)) continue;
      if (p.until == kTimeNever) return kTimeNever;
      heal = p.until;
      advanced = true;
    }
    if (!advanced) return heal;
  }
}

bool FaultInjector::partition_drop(int src_pe, int dst_pe, sim::Time t) {
  if (!partitioned(src_pe, dst_pe, t)) return false;
  ++counters_.partition_drops;
  return true;
}

const FlakyLink* FaultInjector::flaky(int src_pe, int dst_pe,
                                      sim::Time t) const {
  if (plan_.flaky_links.empty()) return nullptr;
  const int a = node_of(src_pe);
  const int b = node_of(dst_pe);
  for (const FlakyLink& f : plan_.flaky_links) {
    if (t < f.from || t >= f.until) continue;
    if ((f.node_a == a && f.node_b == b) || (f.node_a == b && f.node_b == a)) {
      return &f;
    }
  }
  return nullptr;
}

bool FaultInjector::flaky_drop(int src_pe, int dst_pe, sim::Time t) {
  const FlakyLink* f = flaky(src_pe, dst_pe, t);
  if (f == nullptr) return false;
  // One draw per attempt on an active flaky link, from the dedicated stream
  // so the main verdict stream stays aligned across plans.
  if (flaky_rng_.uniform() >= f->extra_loss) return false;
  ++counters_.flaky_drops;
  return true;
}

double FaultInjector::bw_penalty(int src_pe, int dst_pe, sim::Time t) const {
  const FlakyLink* f = flaky(src_pe, dst_pe, t);
  return f == nullptr ? 1.0 : 1.0 / f->bw_factor;
}

sim::Time FaultInjector::backoff_delay(int attempt, double expected_oneway_ns) {
  const RetryPolicy& r = plan_.retry;
  const double base = static_cast<double>(r.rto) + 2.0 * expected_oneway_ns;
  const int exp = std::min(attempt, r.max_backoff_exp);
  const double mult = std::pow(r.backoff, static_cast<double>(exp));
  const double jit = 1.0 + r.jitter * rng_.uniform();
  return sim::from_ns(base * mult * jit);
}

sim::Time FaultInjector::retrans_timeout(int src_pe, int dst_pe, int attempt,
                                         double expected_oneway_ns) {
  const RetryPolicy& r = plan_.retry;
  const RttEstimate& e = rtt_slot(src_pe, dst_pe);
  if (!r.adaptive || e.srtt == 0) {
    // No clean sample yet: identical math (and the same single draw) as the
    // static policy.
    return backoff_delay(attempt, expected_oneway_ns);
  }
  const double rto = std::clamp(
      static_cast<double>(e.srtt) + 4.0 * static_cast<double>(e.rttvar),
      static_cast<double>(r.rto_min), static_cast<double>(r.rto_max));
  const int exp = std::min(attempt, r.max_backoff_exp);
  const double mult = std::pow(r.backoff, static_cast<double>(exp));
  const double jit = 1.0 + r.jitter * rng_.uniform();
  return sim::from_ns(rto * mult * jit);
}

FaultInjector::RttEstimate& FaultInjector::rtt_slot(int src_pe, int dst_pe) {
  return rtt_[static_cast<std::size_t>(node_of(src_pe)) * nnodes_ +
              node_of(dst_pe)];
}

const FaultInjector::RttEstimate& FaultInjector::rtt_slot(
    int src_pe, int dst_pe) const {
  return rtt_[static_cast<std::size_t>(node_of(src_pe)) * nnodes_ +
              node_of(dst_pe)];
}

void FaultInjector::record_rtt(int src_pe, int dst_pe, sim::Time rtt,
                               int attempts) {
  // Karn's rule: a retransmitted exchange is ambiguous (the ack may answer
  // any copy), so only first-attempt successes feed the estimator.
  if (attempts != 1 || rtt <= 0) return;
  RttEstimate& e = rtt_slot(src_pe, dst_pe);
  if (e.srtt == 0) {
    e.srtt = rtt;
    e.rttvar = rtt / 2;
    return;
  }
  const sim::Time err = rtt > e.srtt ? rtt - e.srtt : e.srtt - rtt;
  e.rttvar = (3 * e.rttvar + err) / 4;
  e.srtt = (7 * e.srtt + rtt) / 8;
}

sim::Time FaultInjector::srtt(int src_pe, int dst_pe) const {
  return rtt_slot(src_pe, dst_pe).srtt;
}

void FaultInjector::note_delivery(int src_pe, int /*dst_pe*/, sim::Time t) {
  if (detector_ != nullptr) detector_->heard(src_pe, t);
}

void FaultInjector::note_exhaustion(int src_pe, int dst_pe,
                                    sim::Time give_up) {
  if (detector_ != nullptr) {
    detector_->report_exhaustion(src_pe, dst_pe, give_up);
  }
}

void FaultInjector::arm(sim::Engine& engine) {
  bool any = false;
  for (int pe = 0; pe < static_cast<int>(kill_at_.size()); ++pe) {
    const sim::Time at = kill_at_[static_cast<std::size_t>(pe)];
    if (at == kNever) continue;
    any = true;
    engine.schedule(at, [&engine, pe] { engine.kill_pe(pe); });
  }
  // Partitions can strand an op permanently (retransmit exhaustion), so
  // partition-only plans also need the runtime's recovery protocols armed.
  if (any || !plan_.partitions.empty()) engine.arm_kills();
  if (plan_.needs_detector()) {
    detector_ = std::make_unique<FailureDetector>(*this, npes());
    detector_->arm(engine);
  }
}

void FaultInjector::reset() {
  rng_ = sim::Rng(plan_.seed);
  flaky_rng_ = sim::Rng(plan_.seed ^ 0xf1a4f1a4ULL);
  std::fill(rtt_.begin(), rtt_.end(), RttEstimate{});
  counters_ = Counters{};
  trace_hash_ = 0;
  if (detector_ != nullptr) detector_->reset();
}

}  // namespace net
