#include "net/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/engine.hpp"

namespace net {

namespace {

// Order-sensitive accumulator: same mixing as splitmix64's finalizer, keyed
// by position so that swapping two verdicts changes the hash.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, int npes, int cores_per_node)
    : plan_(std::move(plan)),
      kill_at_(static_cast<std::size_t>(npes), kNever),
      rng_(plan_.seed) {
  if (npes <= 0) throw std::invalid_argument("FaultInjector: npes <= 0");
  if (cores_per_node <= 0) {
    throw std::invalid_argument("FaultInjector: cores_per_node <= 0");
  }
  for (const PeKill& k : plan_.pe_kills) {
    if (k.pe < 0 || k.pe >= npes) {
      throw std::out_of_range("FaultPlan: pe kill out of range");
    }
    auto& at = kill_at_[static_cast<std::size_t>(k.pe)];
    at = std::min(at, k.at);
  }
  for (const NodeKill& k : plan_.node_kills) {
    const int first = k.node * cores_per_node;
    if (k.node < 0 || first >= npes) {
      throw std::out_of_range("FaultPlan: node kill out of range");
    }
    const int last = std::min(first + cores_per_node, npes);
    for (int pe = first; pe < last; ++pe) {
      auto& at = kill_at_[static_cast<std::size_t>(pe)];
      at = std::min(at, k.at);
    }
  }
}

FaultInjector::Verdict FaultInjector::judge(int src_pe, int dst_pe,
                                            sim::Time t) {
  // Always burn the same three draws regardless of the configured rates so
  // that runs differing only in rates keep aligned rng streams, and so a
  // verdict depends on (seed, call index) alone.
  const double u_drop = rng_.uniform();
  const double u_dup = rng_.uniform();
  const double u_delay = rng_.uniform();

  Verdict v;
  v.drop = u_drop < plan_.drop_rate;
  if (!v.drop) {
    v.duplicate = u_dup < plan_.dup_rate;
    if (u_delay < plan_.delay_rate) {
      const double frac = rng_.uniform();
      const double span =
          static_cast<double>(plan_.delay_max - plan_.delay_min);
      v.extra_delay = plan_.delay_min + sim::from_ns(frac * span);
    }
  }

  ++counters_.judged;
  if (v.drop) ++counters_.dropped;
  if (v.duplicate) ++counters_.duplicated;
  if (v.extra_delay > 0) ++counters_.delayed;

  trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(src_pe));
  trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(dst_pe));
  trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(t));
  trace_hash_ = mix(trace_hash_, (v.drop ? 1u : 0u) | (v.duplicate ? 2u : 0u));
  trace_hash_ = mix(trace_hash_, static_cast<std::uint64_t>(v.extra_delay));
  return v;
}

sim::Time FaultInjector::backoff_delay(int attempt, double expected_oneway_ns) {
  const RetryPolicy& r = plan_.retry;
  const double base = static_cast<double>(r.rto) + 2.0 * expected_oneway_ns;
  const int exp = std::min(attempt, r.max_backoff_exp);
  const double mult = std::pow(r.backoff, static_cast<double>(exp));
  const double jit = 1.0 + r.jitter * rng_.uniform();
  return sim::from_ns(base * mult * jit);
}

void FaultInjector::arm(sim::Engine& engine) {
  bool any = false;
  for (int pe = 0; pe < static_cast<int>(kill_at_.size()); ++pe) {
    const sim::Time at = kill_at_[static_cast<std::size_t>(pe)];
    if (at == kNever) continue;
    any = true;
    engine.schedule(at, [&engine, pe] { engine.kill_pe(pe); });
  }
  if (any) engine.arm_kills();
}

void FaultInjector::reset() {
  rng_ = sim::Rng(plan_.seed);
  counters_ = Counters{};
  trace_hash_ = 0;
}

}  // namespace net
