#include "net/profiles.hpp"

#include <stdexcept>

namespace net {

MachineProfile machine_profile(Machine m) {
  MachineProfile p;
  switch (m) {
    case Machine::kStampede:
      // TACC Stampede: Intel Xeon E5 (Sandy Bridge), 16 cores/node,
      // Mellanox InfiniBand FDR.
      p.name = "stampede";
      p.cores_per_node = 16;
      p.hw_latency = 1'100;
      p.link_bytes_per_ns = 6.0;  // ~6 GB/s per port
      p.rx_msg_gap = 60;
      p.nic_amo_gap = 120;  // HCA-side atomics
      p.local_latency = 120;
      p.local_bytes_per_ns = 12.0;
      p.numa_domains = 2;  // dual-socket Sandy Bridge, QPI between sockets
      p.numa_local_latency = 40;
      p.numa_remote_latency = 105;
      p.numa_local_bytes_per_ns = 16.0;
      p.numa_remote_bytes_per_ns = 8.0;
      return p;
    case Machine::kTitan:
      // OLCF Titan: Cray XK7, AMD Opteron, 16 cores/node, Gemini.
      p.name = "titan";
      p.cores_per_node = 16;
      p.hw_latency = 1'400;
      p.link_bytes_per_ns = 5.0;
      p.rx_msg_gap = 70;
      p.nic_amo_gap = 80;  // Gemini AMO engine
      p.local_latency = 140;
      p.local_bytes_per_ns = 10.0;
      p.numa_domains = 2;  // Interlagos: two dies sharing a HyperTransport hop
      p.numa_local_latency = 50;
      p.numa_remote_latency = 120;
      p.numa_local_bytes_per_ns = 12.0;
      p.numa_remote_bytes_per_ns = 6.0;
      return p;
    case Machine::kXC30:
      // Cray XC30 (Edison-class): 2x 12-core Intel Ivy Bridge, so an honest
      // 24 cores/node — not the 16 the other testbeds share — Aries
      // dragonfly.
      p.name = "xc30";
      p.cores_per_node = 24;
      p.hw_latency = 700;
      p.link_bytes_per_ns = 10.0;
      p.rx_msg_gap = 50;
      p.nic_amo_gap = 60;
      p.local_latency = 100;
      p.local_bytes_per_ns = 14.0;
      p.numa_domains = 2;  // dual-socket Ivy Bridge, 12 cores per socket
      p.numa_local_latency = 35;
      p.numa_remote_latency = 95;
      p.numa_local_bytes_per_ns = 18.0;
      p.numa_remote_bytes_per_ns = 9.0;
      return p;
    case Machine::kWhale:
      // UH Whale: 2x quad-core Opteron (8 cores/node), DDR InfiniBand.
      // Older fabric: higher latency, ~2 GB/s per port, slower memory.
      p.name = "whale";
      p.cores_per_node = 8;
      p.hw_latency = 1'900;
      p.link_bytes_per_ns = 2.0;
      p.rx_msg_gap = 110;
      p.nic_amo_gap = 160;
      p.local_latency = 180;
      p.local_bytes_per_ns = 6.0;
      p.numa_domains = 2;  // dual quad-core Opteron, older HyperTransport
      p.numa_local_latency = 55;
      p.numa_remote_latency = 140;
      p.numa_local_bytes_per_ns = 7.0;
      p.numa_remote_bytes_per_ns = 3.5;
      return p;
  }
  throw std::invalid_argument("unknown machine");
}

namespace {

SwProfile shmem_mvapich() {
  SwProfile s;
  s.name = "mvapich2x-shmem";
  s.put_overhead = 250;
  s.get_overhead = 300;
  s.amo_overhead = 250;
  s.per_msg_gap = 90;
  s.bw_efficiency = 0.97;
  s.hw_strided = false;  // shmem_iput loops contiguous puts in software
  s.nic_amo = true;      // IB verbs fetch-add / cmp-swap
  return s;
}

SwProfile shmem_cray() {
  SwProfile s;
  s.name = "cray-shmem";
  s.put_overhead = 150;
  s.get_overhead = 200;
  s.amo_overhead = 150;
  s.per_msg_gap = 70;
  s.bw_efficiency = 0.98;
  s.hw_strided = true;  // DMAPP scatter/gather iput
  s.strided_elem_gap = 15;
  s.nic_amo = true;
  return s;
}

SwProfile gasnet_on(Machine m) {
  SwProfile s;
  s.name = "gasnet";
  if (m == Machine::kStampede) {
    s.name += "-ibv";
    s.put_overhead = 300;
    s.get_overhead = 350;
    s.bw_efficiency = 0.88;
    s.handler_cpu = 600;
  } else {
    s.name += (m == Machine::kTitan) ? "-gemini" : "-aries";
    s.put_overhead = 200;
    s.get_overhead = 260;
    s.bw_efficiency = 0.85;
    s.handler_cpu = 480;
  }
  s.amo_overhead = s.put_overhead;  // AMOs are AM round-trips
  s.per_msg_gap = 110;
  s.hw_strided = false;
  s.nic_amo = false;  // no remote atomics: active-message emulation
  return s;
}

SwProfile armci_on(Machine m) {
  // ARMCI over IB verbs / Gemini: put overheads between SHMEM's and
  // GASNet's; native network RMW (fetch-add, swap) but no compare-swap;
  // strided PutS aggregates in software with a per-run injection gap.
  SwProfile s;
  s.name = "armci";
  if (m == Machine::kStampede) {
    s.put_overhead = 280;
    s.get_overhead = 330;
    s.bw_efficiency = 0.90;
  } else {
    s.put_overhead = 190;
    s.get_overhead = 250;
    s.bw_efficiency = 0.88;
  }
  s.amo_overhead = s.put_overhead;
  s.per_msg_gap = 100;
  s.hw_strided = false;
  s.nic_amo = true;  // ARMCI_Rmw maps to network atomics
  return s;
}

SwProfile mpi3_on(Machine m) {
  SwProfile s;
  if (m == Machine::kStampede) {
    s.name = "mvapich2x-mpi3";
    s.put_overhead = 750;
    s.get_overhead = 800;
    s.amo_overhead = 700;
    s.bw_efficiency = 0.93;
  } else {
    s.name = "cray-mpich";
    s.put_overhead = 800;
    s.get_overhead = 850;
    s.amo_overhead = 750;
    s.bw_efficiency = 0.92;
  }
  s.per_msg_gap = 220;
  s.hw_strided = false;
  s.nic_amo = true;
  return s;
}

SwProfile dmapp() {
  SwProfile s;
  s.name = "dmapp";
  s.put_overhead = 120;
  s.get_overhead = 170;
  s.amo_overhead = 120;
  s.per_msg_gap = 60;
  s.bw_efficiency = 0.98;
  s.hw_strided = true;
  s.strided_elem_gap = 15;
  s.nic_amo = true;
  return s;
}

SwProfile craycaf() {
  // Cray's Fortran runtime above DMAPP: pays descriptor setup per
  // operation, and its strided path pipelines per-element nbi puts with a
  // wider injection gap than raw DMAPP.
  SwProfile s = dmapp();
  s.name = "cray-caf";
  s.runtime_overhead = 100;
  s.put_overhead += s.runtime_overhead;
  s.get_overhead += s.runtime_overhead;
  s.amo_overhead += s.runtime_overhead;
  s.per_msg_gap = 45;
  return s;
}

}  // namespace

SwProfile sw_profile(Library lib, Machine m) {
  SwProfile s;
  switch (lib) {
    case Library::kShmemMvapich:
      s = shmem_mvapich();
      break;
    case Library::kShmemCray:
      s = shmem_cray();
      break;
    case Library::kGasnet:
      s = gasnet_on(m);
      break;
    case Library::kArmci:
      s = armci_on(m);
      break;
    case Library::kMpi3:
      s = mpi3_on(m);
      break;
    case Library::kDmapp:
      s = dmapp();
      break;
    case Library::kCrayCaf:
      s = craycaf();
      break;
    default:
      throw std::invalid_argument("unknown library");
  }
  // Every library profile carries the raw link bandwidth and node width of
  // the machine it runs on, so layers above the conduit never hardcode a
  // machine constant.
  const MachineProfile mp = machine_profile(m);
  s.link_bytes_per_ns = mp.link_bytes_per_ns;
  s.cores_per_node = mp.cores_per_node;
  s.hw_latency = mp.hw_latency;
  s.local_latency = mp.local_latency;
  s.numa_domains = mp.numa_domains;
  s.numa_local_latency = mp.numa_local_latency;
  s.numa_remote_latency = mp.numa_remote_latency;
  s.numa_local_bytes_per_ns = mp.numa_local_bytes_per_ns;
  s.numa_remote_bytes_per_ns = mp.numa_remote_bytes_per_ns;
  return s;
}

Library native_shmem(Machine m) {
  // InfiniBand clusters (Stampede, Whale) run MVAPICH2-X; the Cray systems
  // run Cray SHMEM over DMAPP.
  return (m == Machine::kStampede || m == Machine::kWhale)
             ? Library::kShmemMvapich
             : Library::kShmemCray;
}

std::string to_string(Machine m) { return machine_profile(m).name; }

std::string to_string(Library lib) {
  switch (lib) {
    case Library::kShmemMvapich: return "mvapich2x-shmem";
    case Library::kShmemCray: return "cray-shmem";
    case Library::kGasnet: return "gasnet";
    case Library::kArmci: return "armci";
    case Library::kMpi3: return "mpi3";
    case Library::kDmapp: return "dmapp";
    case Library::kCrayCaf: return "cray-caf";
  }
  return "?";
}

}  // namespace net
