#include "net/node_channel.hpp"

#include <algorithm>
#include <cassert>

namespace net {

NodeChannel::NodeChannel(const MachineProfile& machine, int npes,
                         NodeTransportOptions opts)
    : machine_(machine), npes_(npes), opts_(opts) {
  assert(npes_ > 0);
  assert(opts_.ring_slots >= 2);
  assert(opts_.slot_bytes > 0);
  assert(machine_.numa_domains >= 1);
  amo_free_.assign(static_cast<std::size_t>(npes_), 0);
}

int NodeChannel::segment_domain(int pe) const {
  const int local = pe % machine_.cores_per_node;
  switch (opts_.placement) {
    case NumaPlacement::kLocalDomain:
      return domain_of(pe);
    case NumaPlacement::kInterleave:
      return local % machine_.numa_domains;
    case NumaPlacement::kDomain0:
      return 0;
  }
  return 0;
}

NodeChannel::Ring& NodeChannel::ring(int src_pe, int dst_pe) {
  assert(src_pe / machine_.cores_per_node == dst_pe / machine_.cores_per_node);
  const std::uint64_t key =
      static_cast<std::uint64_t>(src_pe) * machine_.cores_per_node +
      static_cast<std::uint64_t>(dst_pe % machine_.cores_per_node);
  Ring& r = rings_[key];
  if (r.retire.empty()) {
    r.retire.assign(static_cast<std::size_t>(opts_.ring_slots), 0);
  }
  return r;
}

RingPush NodeChannel::push(int src_pe, int dst_pe, std::size_t n, sim::Time now,
                           sim::Time write_cost, sim::Time pop_cost) {
  Ring& r = ring(src_pe, dst_pe);
  const auto depth = static_cast<std::uint64_t>(opts_.ring_slots);
  // A message never spans more slots than the ring holds: the producer
  // would deadlock waiting for slots it has not yet published.
  const int nslots = std::min<int>(slots_for(n), opts_.ring_slots);
  // Backpressure: the producer's store of slot i cannot start until the
  // consumer has retired the slot's previous generation.
  sim::Time start = now;
  bool stalled = false;
  for (int i = 0; i < nslots; ++i) {
    const sim::Time busy = r.retire[(r.head + static_cast<std::uint64_t>(i)) %
                                    depth];
    if (busy > start) {
      start = busy;
      stalled = true;
    }
  }
  ++pushes_;
  if (stalled) ++stalls_;
  wraps_ += (r.head % depth + static_cast<std::uint64_t>(nslots)) / depth;
  const sim::Time producer_done = start + write_cost;
  const sim::Time delivered =
      producer_done + visibility(src_pe, dst_pe) + pop_cost;
  // The consumer frees the slots as it pops the message.
  for (int i = 0; i < nslots; ++i) {
    r.retire[(r.head + static_cast<std::uint64_t>(i)) % depth] = delivered;
  }
  r.head += static_cast<std::uint64_t>(nslots);
  return {producer_done, delivered, nslots, stalled};
}

NodeRoundTrip NodeChannel::amo(int src_pe, int dst_pe, sim::Time now,
                               sim::Time issue_cost, sim::Time rmw_cost) {
  // Request reaches the target line after the issue cost plus the domain
  // hop; execution serializes per target PE (the line is owned exclusively
  // for the RMW), and the fetched value travels back over the same hop.
  const sim::Time arrival = now + issue_cost + visibility(src_pe, dst_pe);
  sim::Time& free_at = amo_free_[static_cast<std::size_t>(dst_pe)];
  const sim::Time exec_start = std::max(arrival, free_at);
  const sim::Time exec_done = exec_start + rmw_cost;
  free_at = exec_done;
  return {exec_done, exec_done + visibility(src_pe, dst_pe)};
}

}  // namespace net
