// Mpi3Conduit — a CAF runtime over MPI-3.0 one-sided communication.
//
// Table I lists two CAF implementations on MPI (Rice CAF 2.0 and Intel's),
// and the paper's related work (§VI, Yang et al. [24]) discusses the
// MPI-interoperable port in depth. This conduit maps the runtime onto the
// mpi3::Window passive-target subset:
//
//   put/get  → MPI_Put / MPI_Get (+ MPI_Win_flush_all for quiet);
//   atomics  → MPI_Fetch_and_op / MPI_Compare_and_swap (MPI-3 has the full
//              set natively, unlike GASNet or ARMCI);
//   1-D strided → software loop of MPI_Put/Get (a real implementation would
//              use datatypes; the per-op software overhead — the very thing
//              Figure 2 charges MPI for — dominates either way);
//   barrier  → MPI_Barrier.
#pragma once

#include "caf/conduit.hpp"
#include "mpi3/rma.hpp"

namespace caf {

class Mpi3Conduit final : public Conduit {
 public:
  explicit Mpi3Conduit(mpi3::Window& win)
      : win_(win), seg_bytes_(win.domain().segment_bytes()) {}

  int rank() const override { return win_.rank(); }
  int nranks() const override { return win_.size(); }
  std::byte* segment(int rank) override { return win_.base(rank); }
  std::size_t segment_bytes() const override { return seg_bytes_; }
  const net::SwProfile& sw() const override { return win_.domain().sw(); }
  sim::Engine& engine() override { return win_.engine(); }
  bool hw_strided() const override { return false; }
  bool native_amo() const override { return true; }

  std::uint64_t allocate(std::size_t bytes) override {
    return win_.allocate_collective(bytes);
  }
  void deallocate(std::uint64_t offset) override {
    win_.free_collective(offset);
  }

  void poke(int rank, std::uint64_t off, const void* src, std::size_t n,
            sim::Time t) override {
    win_.domain().poke(rank, off, src, n, t);
  }

  bool direct_reachable(int target) override {
    return node_transport_reachable(target);
  }

  fabric::Domain* rma_domain() override { return &win_.domain(); }

  std::int64_t do_amo_swap(int rank, std::uint64_t off, std::int64_t v) override {
    return win_.fetch_and_op_replace(v, rank, off);
  }
  std::int64_t do_amo_cswap(int rank, std::uint64_t off, std::int64_t cond,
                         std::int64_t v) override {
    return win_.compare_and_swap(cond, v, rank, off);
  }
  std::int64_t do_amo_fadd(int rank, std::uint64_t off, std::int64_t v) override {
    return win_.fetch_and_op_sum(v, rank, off);
  }
  std::int64_t do_amo_fand(int rank, std::uint64_t off, std::int64_t m) override {
    return win_.fetch_and_op_band(m, rank, off);
  }
  std::int64_t do_amo_for(int rank, std::uint64_t off, std::int64_t m) override {
    return win_.fetch_and_op_bor(m, rank, off);
  }
  std::int64_t do_amo_fxor(int rank, std::uint64_t off, std::int64_t m) override {
    return win_.fetch_and_op_bxor(m, rank, off);
  }

  void wait_until(std::uint64_t off, Cmp cmp, std::int64_t value) override {
    win_.wait_until_local(off, [cmp, value](std::int64_t v) {
      switch (cmp) {
        case Cmp::kEq: return v == value;
        case Cmp::kNe: return v != value;
        case Cmp::kGt: return v > value;
        case Cmp::kGe: return v >= value;
        case Cmp::kLt: return v < value;
        case Cmp::kLe: return v <= value;
      }
      return false;
    });
  }
  void do_barrier() override { win_.barrier(); }

  mpi3::Window& window() { return win_; }

 protected:
  void do_put(int rank, std::uint64_t dst_off, const void* src, std::size_t n,
              bool /*nbi*/) override {
    // MPI_Put is always "nbi" (origin completion at flush); the simulated
    // Window charges the blocking-issue overhead either way, matching the
    // per-op software cost Figure 2 measures.
    win_.put(src, n, rank, dst_off);
  }
  void do_get(void* dst, int rank, std::uint64_t src_off,
              std::size_t n) override {
    win_.get(dst, n, rank, src_off);
  }
  void do_iput(int rank, std::uint64_t dst_off, std::ptrdiff_t dst_stride,
               const void* src, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems) override {
    const auto* s = static_cast<const std::byte*>(src);
    for (std::size_t i = 0; i < nelems; ++i) {
      win_.put(s + static_cast<std::ptrdiff_t>(i) * src_stride *
                       static_cast<std::ptrdiff_t>(elem_bytes),
               elem_bytes, rank,
               dst_off + i * static_cast<std::uint64_t>(dst_stride) *
                             elem_bytes);
    }
  }
  void do_iget(void* dst, std::ptrdiff_t dst_stride, int rank,
               std::uint64_t src_off, std::ptrdiff_t src_stride,
               std::size_t elem_bytes, std::size_t nelems) override {
    auto* d = static_cast<std::byte*>(dst);
    for (std::size_t i = 0; i < nelems; ++i) {
      win_.get(d + static_cast<std::ptrdiff_t>(i) * dst_stride *
                       static_cast<std::ptrdiff_t>(elem_bytes),
               elem_bytes, rank,
               src_off + i * static_cast<std::uint64_t>(src_stride) *
                             elem_bytes);
    }
  }
  void do_put_scatter(int rank, const fabric::ScatterRec* recs,
                      std::size_t nrecs, const void* payload,
                      std::size_t payload_bytes) override {
    win_.put_scatter(recs, nrecs, payload, payload_bytes, rank);
  }
  void do_quiet() override { win_.flush_all(); }

 private:
  mpi3::Window& win_;
  std::size_t seg_bytes_;
};

}  // namespace caf
