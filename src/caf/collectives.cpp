#include "caf/collectives.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace caf {

int CollectiveEngine::ceil_log2(int x) {
  int r = 0;
  while ((1 << r) < x) ++r;
  return r;
}

void CollectiveEngine::init() {
  n_ = conduit_.nranks();
  const int cores = std::max(1, conduit_.sw().cores_per_node);
  node_size_ = opts_.hierarchical ? std::min(cores, n_) : 1;
  num_nodes_ = (n_ + node_size_ - 1) / node_size_;
  levels_ = std::max(1, ceil_log2(n_));
  rd_rounds_ = levels_ + 2;  // rounds + fold-in slot + fold-return slot
  per_rank_.resize(static_cast<std::size_t>(n_));

  // One collective symmetric allocation for every staging area. allocate()
  // maps to shmalloc, which carries an implicit barrier — 18 separate calls
  // would charge every program 18 startup barriers (visible in the fig9 DHT
  // totals at 1024 images) where one suffices. Offsets are carved locally;
  // the arithmetic is identical on every image, so the layout stays
  // symmetric. Slot areas are 8-byte aligned by construction (every size
  // below is a multiple of 8).
  const std::size_t depth = static_cast<std::size_t>(std::max(1, opts_.pipe_depth));
  std::size_t total = 0;
  auto carve = [&total](std::size_t bytes) {
    const std::size_t off = total;
    total += bytes;
    return off;
  };
  const std::size_t bc_slot_rel = carve(kBcBanks * kSlotBytes);
  const std::size_t bc_flag_rel = carve(kBcBanks * sizeof(std::int64_t));
  const std::size_t tree_slot_rel =
      carve(static_cast<std::size_t>(levels_) * kSlotBytes);
  const std::size_t tree_flag_rel =
      carve(static_cast<std::size_t>(levels_) * sizeof(std::int64_t));
  const std::size_t gather_slot_rel =
      carve(static_cast<std::size_t>(node_size_) * opts_.rd_max_bytes);
  const std::size_t gather_flag_rel =
      carve(static_cast<std::size_t>(node_size_) * sizeof(std::int64_t));
  const std::size_t rd_slot_rel =
      carve(static_cast<std::size_t>(rd_rounds_) * opts_.rd_max_bytes);
  const std::size_t rd_flag_rel =
      carve(static_cast<std::size_t>(rd_rounds_) * sizeof(std::int64_t));
  const std::size_t flat_ctr_rel = carve(sizeof(std::int64_t));
  const std::size_t bar_cells_rel =
      carve(static_cast<std::size_t>(levels_ + 1) * sizeof(std::int64_t));
  const std::size_t bar_gather_rel = carve(sizeof(std::int64_t));
  const std::size_t bar_release_rel = carve(sizeof(std::int64_t));
  const std::size_t pd_bank_rel = carve(depth * opts_.pipe_chunk);
  const std::size_t pd_flag_rel = carve(sizeof(std::int64_t));
  const std::size_t pd_ack_rel = carve(2 * sizeof(std::int64_t));
  const std::size_t pu_bank_rel = carve(2 * depth * opts_.pipe_chunk);
  const std::size_t pu_flag_rel = carve(2 * sizeof(std::int64_t));
  const std::size_t pu_ack_rel = carve(sizeof(std::int64_t));
  const std::uint64_t base = conduit_.allocate(total);
  bc_slot_off_ = base + bc_slot_rel;
  bc_flag_off_ = base + bc_flag_rel;
  tree_slot_off_ = base + tree_slot_rel;
  tree_flag_off_ = base + tree_flag_rel;
  gather_slot_off_ = base + gather_slot_rel;
  gather_flag_off_ = base + gather_flag_rel;
  rd_slot_off_ = base + rd_slot_rel;
  rd_flag_off_ = base + rd_flag_rel;
  flat_ctr_off_ = base + flat_ctr_rel;
  bar_cells_off_ = base + bar_cells_rel;
  bar_gather_off_ = base + bar_gather_rel;
  bar_release_off_ = base + bar_release_rel;
  pd_bank_off_ = base + pd_bank_rel;
  pd_flag_off_ = base + pd_flag_rel;
  pd_ack_off_ = base + pd_ack_rel;
  pu_bank_off_ = base + pu_bank_rel;
  pu_flag_off_ = base + pu_flag_rel;
  pu_ack_off_ = base + pu_ack_rel;

  // Zero this image's flag/counter cells; nobody puts into them until every
  // image left Runtime::init()'s closing barrier.
  std::memset(local(bc_flag_off_), 0, kBcBanks * sizeof(std::int64_t));
  std::memset(local(tree_flag_off_), 0,
              static_cast<std::size_t>(levels_) * sizeof(std::int64_t));
  std::memset(local(gather_flag_off_), 0,
              static_cast<std::size_t>(node_size_) * sizeof(std::int64_t));
  std::memset(local(rd_flag_off_), 0,
              static_cast<std::size_t>(rd_rounds_) * sizeof(std::int64_t));
  std::memset(local(flat_ctr_off_), 0, sizeof(std::int64_t));
  std::memset(local(bar_cells_off_), 0,
              static_cast<std::size_t>(levels_ + 1) * sizeof(std::int64_t));
  std::memset(local(bar_gather_off_), 0, sizeof(std::int64_t));
  std::memset(local(bar_release_off_), 0, sizeof(std::int64_t));
  std::memset(local(pd_flag_off_), 0, sizeof(std::int64_t));
  std::memset(local(pd_ack_off_), 0, 2 * sizeof(std::int64_t));
  std::memset(local(pu_flag_off_), 0, 2 * sizeof(std::int64_t));
  std::memset(local(pu_ack_off_), 0, sizeof(std::int64_t));
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

void CollectiveEngine::count_msg(int target, std::size_t n) {
  (void)n;
  CollTelemetry& t = state().tele;
  if (node_of(target) == node_of(me())) {
    ++t.intra_node_msgs;
    if (conduit_.direct_reachable(target)) ++t.direct_intra_msgs;
  } else {
    ++t.inter_node_msgs;
  }
}

void CollectiveEngine::send_payload(int target, std::uint64_t slot_off,
                                    const void* src, std::size_t n,
                                    std::uint64_t flag_off, std::int64_t gen) {
  count_msg(target, n);
  conduit_.put(target, slot_off, src, n, /*nbi=*/true);
  if (!opts_.per_target_completion) {
    // Pre-engine sequence: remote-complete the payload before releasing the
    // flag. One slow target stalls the whole fan-out behind this quiet.
    conduit_.quiet();
  }
  count_msg(target, sizeof gen);
  conduit_.put(target, flag_off, &gen, sizeof gen, /*nbi=*/true);
}

void CollectiveEngine::put_i64(int target, std::uint64_t off, std::int64_t v) {
  count_msg(target, sizeof v);
  conduit_.put(target, off, &v, sizeof v, /*nbi=*/true);
}

void CollectiveEngine::combine_buf(
    void* a, const void* b, std::size_t nelems, std::size_t elem,
    const std::function<void(void*, const void*)>& comb) {
  auto* pa = static_cast<std::byte*>(a);
  const auto* pb = static_cast<const std::byte*>(b);
  for (std::size_t i = 0; i < nelems; ++i) {
    comb(pa + i * elem, pb + i * elem);
  }
}

std::int64_t CollectiveEngine::next_bc_gen() {
  PerRank& st = state();
  if (st.gen + 1 > st.win_base + kBcBanks) {
    // The next generation would wrap onto a ring bank last written at
    // gen+1-kBcBanks. A broadcast root has no receives to throttle it, so
    // only a global rendezvous bounds how far it can stream ahead of the
    // slowest consumer. Every image reaches this branch at the same op
    // (gen and win_base advance identically everywhere).
    barrier();
    st.win_base = st.gen;
  }
  return ++st.gen;
}

// ---------------------------------------------------------------------------
// Selector (priced off the SwProfile, like the strided planner)
// ---------------------------------------------------------------------------

double CollectiveEngine::inter_hop(std::size_t nbytes) const {
  const net::SwProfile& sw = conduit_.sw();
  return static_cast<double>(sw.put_overhead + sw.hw_latency) +
         static_cast<double>(nbytes) /
             (sw.link_bytes_per_ns * sw.bw_efficiency);
}

double CollectiveEngine::intra_hop(std::size_t nbytes) const {
  const net::SwProfile& sw = conduit_.sw();
  fabric::Domain* d = conduit_.rma_domain();
  if (d != nullptr && d->node_transport() != nullptr) {
    // Node-local shared-segment transport: an intra-node stage is a ring
    // handoff plus a NUMA-local copy, not a library put through the NIC
    // loopback. Priced optimistically at the local-domain rates — the
    // selector only needs the order of magnitude to prefer node-leader
    // trees, and the actual stage cost comes from the NodeChannel anyway.
    return static_cast<double>(net::NodeChannel::kSlotWrite +
                               net::NodeChannel::kRingPop +
                               sw.numa_local_latency) +
           static_cast<double>(nbytes) / sw.numa_local_bytes_per_ns;
  }
  return static_cast<double>(sw.put_overhead + sw.local_latency) +
         static_cast<double>(nbytes) /
             (sw.link_bytes_per_ns * sw.bw_efficiency);
}

CollAlgo CollectiveEngine::pick_broadcast(std::size_t nbytes) const {
  if (nbytes > kSlotBytes) return CollAlgo::kPipelined;
  if (!opts_.hierarchical || node_size_ <= 1 || num_nodes_ <= 1) {
    return CollAlgo::kBinomial;
  }
  const net::SwProfile& sw = conduit_.sw();
  const int k = std::max(2, opts_.knomial_radix);
  int depth_k = 0;
  for (long long covered = 1; covered < num_nodes_; covered *= k) ++depth_k;
  const double binomial = ceil_log2(n_) * inter_hop(nbytes);
  const double two_level =
      depth_k * ((k - 1) * static_cast<double>(sw.per_msg_gap) +
                 inter_hop(nbytes)) +
      ceil_log2(node_size_) * intra_hop(nbytes);
  return two_level < binomial ? CollAlgo::kTwoLevel : CollAlgo::kBinomial;
}

CollAlgo CollectiveEngine::pick_reduce(std::size_t nbytes) const {
  if (nbytes > kSlotBytes) return CollAlgo::kPipelined;
  const bool small = nbytes <= opts_.rd_max_bytes;
  if (!opts_.hierarchical || node_size_ <= 1 || num_nodes_ <= 1) {
    // A flat machine view: recursive doubling halves the round count of
    // reduce-then-broadcast for payloads that fit its slots.
    return small ? CollAlgo::kRecursiveDoubling : CollAlgo::kBinomial;
  }
  if (!small) return CollAlgo::kBinomial;  // gather slots cap at rd_max_bytes
  const net::SwProfile& sw = conduit_.sw();
  const int nm = node_size_;
  const double two_level =
      (nm - 1) * static_cast<double>(sw.per_msg_gap) + intra_hop(nbytes) +
      ceil_log2(num_nodes_) * inter_hop(nbytes) +
      ceil_log2(nm) * intra_hop(nbytes);
  const double binomial = 2.0 * ceil_log2(n_) * inter_hop(nbytes);
  return two_level < binomial ? CollAlgo::kTwoLevel : CollAlgo::kBinomial;
}

// ---------------------------------------------------------------------------
// k-nomial leader tree (indices into the rotated leader list, rooted at 0)
// ---------------------------------------------------------------------------

std::vector<int> CollectiveEngine::knomial_children(int v, int count) const {
  const int k = std::max(2, opts_.knomial_radix);
  // Position of v's lowest nonzero base-k digit bounds the children: v may
  // spawn v + d*k^j for every j below it. Emit larger subtrees first so the
  // deepest chains start earliest.
  int jlow = 0;
  if (v != 0) {
    long long p = 1;
    while ((v / p) % k == 0) {
      p *= k;
      ++jlow;
    }
  } else {
    long long p = 1;
    while (p < count) {
      p *= k;
      ++jlow;
    }
  }
  std::vector<int> kids;
  long long pj = 1;
  for (int j = 1; j < jlow; ++j) pj *= k;
  for (int j = jlow - 1; j >= 0; --j) {
    for (int d = 1; d < k; ++d) {
      const long long c = v + d * pj;
      if (c < count) kids.push_back(static_cast<int>(c));
    }
    pj /= k;
  }
  return kids;
}

int CollectiveEngine::knomial_parent(int v) const {
  const int k = std::max(2, opts_.knomial_radix);
  if (v == 0) return -1;
  long long p = 1;
  while ((v / p) % k == 0) p *= k;
  return static_cast<int>(v - ((v / p) % k) * p);
}

// ---------------------------------------------------------------------------
// Failure-aware team tree (membership-epoch cached)
// ---------------------------------------------------------------------------

const TreePlan& CollectiveEngine::plan_for(const std::vector<int>& members,
                                           int root0, std::uint64_t epoch) {
  TreePlan& plan = state().team_plan;
  if (plan.epoch == epoch && plan.root == root0 && plan.members == members) {
    return plan;
  }
  ++state().tele.team_plan_rebuilds;
  plan.epoch = epoch;
  plan.root = root0;
  plan.members = members;
  plan.parent.assign(static_cast<std::size_t>(n_), -1);
  plan.children.assign(static_cast<std::size_t>(n_), {});
  const bool root_live =
      std::find(members.begin(), members.end(), root0) != members.end();
  if (!root_live) return plan;  // edge-free: callers use the flat fallback
  // Node leaders: the root for its own node, the lowest live rank elsewhere
  // (members are ascending, so the first member seen per node wins).
  std::vector<int> leader_of_node(static_cast<std::size_t>(num_nodes_), -1);
  leader_of_node[static_cast<std::size_t>(node_of(root0))] = root0;
  for (const int m : members) {
    int& ldr = leader_of_node[static_cast<std::size_t>(node_of(m))];
    if (ldr < 0) ldr = m;
  }
  // Leader list rotated so the root's leader sits at index 0, remaining
  // leaders in ascending node order; a radix-R tree over the indices gives
  // the inter-node stage.
  std::vector<int> leaders{root0};
  for (int node = 0; node < num_nodes_; ++node) {
    const int ldr = leader_of_node[static_cast<std::size_t>(node)];
    if (ldr >= 0 && ldr != root0) leaders.push_back(ldr);
  }
  const int nl = static_cast<int>(leaders.size());
  for (int v = 1; v < nl; ++v) {
    const int p = knomial_parent(v);
    const int child = leaders[static_cast<std::size_t>(v)];
    const int par = leaders[static_cast<std::size_t>(p)];
    plan.parent[static_cast<std::size_t>(child)] = par;
    plan.children[static_cast<std::size_t>(par)].push_back(child);
  }
  // Intra-node stage: every non-leader member hangs off its node's leader.
  for (const int m : members) {
    const int ldr = leader_of_node[static_cast<std::size_t>(node_of(m))];
    if (m == ldr) continue;
    plan.parent[static_cast<std::size_t>(m)] = ldr;
    plan.children[static_cast<std::size_t>(ldr)].push_back(m);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

void CollectiveEngine::broadcast(void* data, std::size_t nbytes, int root0) {
  if (n_ <= 1 || nbytes == 0) return;
  ++state().tele.broadcasts;
  CollAlgo algo = opts_.broadcast == CollAlgo::kAuto ? pick_broadcast(nbytes)
                                                     : opts_.broadcast;
  if (algo == CollAlgo::kPipelined && nbytes > opts_.pipe_chunk) {
    pipe_bcast(data, nbytes, root0, next_gen());
    return;
  }
  if (algo == CollAlgo::kPipelined || algo == CollAlgo::kRecursiveDoubling) {
    algo = CollAlgo::kBinomial;  // not meaningful for (small) broadcasts
  }
  auto* bytes = static_cast<std::byte*>(data);
  std::size_t remaining = nbytes;
  while (remaining > 0) {
    const std::size_t chunk = std::min(remaining, kSlotBytes);
    const std::int64_t gen = next_bc_gen();
    switch (algo) {
      case CollAlgo::kFlat: bcast_flat(bytes, chunk, root0, gen); break;
      case CollAlgo::kTwoLevel: bcast_two_level(bytes, chunk, root0, gen); break;
      default: bcast_binomial(bytes, chunk, root0, gen); break;
    }
    bytes += chunk;
    remaining -= chunk;
  }
}

void CollectiveEngine::bcast_flat(void* data, std::size_t nbytes, int root0,
                                  std::int64_t gen) {
  const std::uint64_t slot = bc_slot(gen);
  const std::uint64_t flag = bc_flag(gen);
  if (me() == root0) {
    std::memcpy(local(slot), data, nbytes);
    for (int r = 0; r < n_; ++r) {
      if (r == root0) continue;
      send_payload(r, slot, local(slot), nbytes, flag, gen);
    }
  } else {
    wait_ge(flag, gen);
    std::memcpy(data, local(slot), nbytes);
  }
}

void CollectiveEngine::bcast_binomial(void* data, std::size_t nbytes,
                                      int root0, std::int64_t gen) {
  const std::uint64_t slot = bc_slot(gen);
  const std::uint64_t flag = bc_flag(gen);
  const int vr = (me() - root0 + n_) % n_;
  if (vr == 0) std::memcpy(local(slot), data, nbytes);
  int mask = 1;
  if (vr != 0) {
    while (!(vr & mask)) mask <<= 1;
    wait_ge(flag, gen);
  } else {
    while (mask < n_) mask <<= 1;
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vr + m < n_) {
      const int child = (vr + m + root0) % n_;
      send_payload(child, slot, local(slot), nbytes, flag, gen);
    }
  }
  if (vr != 0) std::memcpy(data, local(slot), nbytes);
}

void CollectiveEngine::node_fanout(int local_root, void* data,
                                   std::size_t nbytes, std::int64_t gen) {
  const int base = node_of(me()) * node_size_;
  const int nm = node_members(node_of(me()));
  if (nm <= 1) return;
  const std::uint64_t slot = bc_slot(gen);
  const std::uint64_t flag = bc_flag(gen);
  const int lr = local_root - base;
  const int vl = (me() - base - lr + nm) % nm;
  int mask = 1;
  if (vl != 0) {
    while (!(vl & mask)) mask <<= 1;
    wait_ge(flag, gen);
  } else {
    while (mask < nm) mask <<= 1;
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vl + m < nm) {
      const int child = base + (vl + m + lr) % nm;
      send_payload(child, slot, local(slot), nbytes, flag, gen);
    }
  }
  if (vl != 0) std::memcpy(data, local(slot), nbytes);
}

void CollectiveEngine::bcast_two_level(void* data, std::size_t nbytes,
                                       int root0, std::int64_t gen) {
  const int L = num_nodes_;
  const int root_node = node_of(root0);
  // The rotated leader list: index 0 is the root itself (standing in for
  // its node's leader), other entries are the first rank of each node.
  auto lead_rank = [&](int idx) {
    const int node = (root_node + idx) % L;
    return node == root_node ? root0 : node * node_size_;
  };
  const int my_lidx = (node_of(me()) - root_node + L) % L;
  const int my_lead = lead_rank(my_lidx);
  const std::uint64_t slot = bc_slot(gen);
  const std::uint64_t flag = bc_flag(gen);
  if (me() == root0) std::memcpy(local(slot), data, nbytes);
  if (me() == my_lead) {
    if (my_lidx != 0) wait_ge(flag, gen);
    for (const int c : knomial_children(my_lidx, L)) {
      send_payload(lead_rank(c), slot, local(slot), nbytes, flag, gen);
    }
  }
  node_fanout(my_lead, data, nbytes, gen);
  // node_fanout copies out for everyone below the local root; a leader that
  // is not the global root received into its slot only.
  if (me() == my_lead && me() != root0) {
    std::memcpy(data, local(slot), nbytes);
  }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

void CollectiveEngine::allreduce(
    void* data, std::size_t nelems, std::size_t elem,
    const std::function<void(void*, const void*)>& comb) {
  if (n_ <= 1 || nelems == 0) return;
  ++state().tele.reductions;
  const std::size_t nbytes = nelems * elem;
  CollAlgo algo =
      opts_.reduce == CollAlgo::kAuto ? pick_reduce(nbytes) : opts_.reduce;
  if (algo == CollAlgo::kPipelined && nbytes > opts_.pipe_chunk &&
      elem <= opts_.pipe_chunk) {
    pipe_allreduce(data, nelems, elem, comb, next_gen());
    return;
  }
  if (algo == CollAlgo::kPipelined) algo = CollAlgo::kBinomial;
  std::size_t limit = kSlotBytes;
  if (algo == CollAlgo::kTwoLevel || algo == CollAlgo::kRecursiveDoubling) {
    limit = opts_.rd_max_bytes;  // their staging slots cap at rd_max_bytes
  }
  if (elem > limit) {
    algo = CollAlgo::kBinomial;
    limit = kSlotBytes;
  }
  assert(elem <= kSlotBytes);
  const std::size_t per_chunk = std::max<std::size_t>(1, limit / elem);
  std::vector<int> all;
  if (algo == CollAlgo::kRecursiveDoubling) {
    all.resize(static_cast<std::size_t>(n_));
    for (int r = 0; r < n_; ++r) all[static_cast<std::size_t>(r)] = r;
  }
  auto* bytes = static_cast<std::byte*>(data);
  std::size_t done = 0;
  while (done < nelems) {
    const std::size_t ne = std::min(nelems - done, per_chunk);
    // Recursive doubling never touches the bcast-slot ring; every other
    // arm finishes (or stages) through it and pays the window check.
    const std::int64_t gen = algo == CollAlgo::kRecursiveDoubling
                                 ? next_gen()
                                 : next_bc_gen();
    void* ptr = bytes + done * elem;
    switch (algo) {
      case CollAlgo::kFlat:
        reduce_flat(ptr, ne, elem, comb, gen);
        break;
      case CollAlgo::kTwoLevel:
        reduce_two_level(ptr, ne, elem, comb, gen);
        break;
      case CollAlgo::kRecursiveDoubling:
        rd_allreduce(all, me(), ptr, ne, elem, comb, gen);
        break;
      default:
        reduce_binomial(ptr, ne, elem, comb, gen);
        break;
    }
    done += ne;
  }
}

void CollectiveEngine::reduce_flat(
    void* data, std::size_t nelems, std::size_t elem,
    const std::function<void(void*, const void*)>& comb, std::int64_t gen) {
  const std::size_t nbytes = nelems * elem;
  const std::uint64_t slot = bc_slot(gen);
  const std::int64_t fc = ++state().flat_calls;
  if (me() != 0) {
    // Stage locally, announce arrival; the result broadcast below doubles
    // as the release (the root only reads slots before it sends).
    std::memcpy(local(slot), data, nbytes);
    count_msg(0, sizeof(std::int64_t));
    (void)conduit_.amo_fadd(0, flat_ctr_off_, 1);
  } else {
    wait_ge(flat_ctr_off_, static_cast<std::int64_t>(n_ - 1) * fc);
    std::vector<std::byte> tmp(nbytes);
    for (int r = 1; r < n_; ++r) {
      conduit_.get(tmp.data(), r, slot, nbytes);
      combine_buf(data, tmp.data(), nelems, elem, comb);
    }
  }
  bcast_flat(data, nbytes, 0, gen);
}

void CollectiveEngine::reduce_binomial(
    void* data, std::size_t nelems, std::size_t elem,
    const std::function<void(void*, const void*)>& comb, std::int64_t gen) {
  const std::size_t nbytes = nelems * elem;
  int level = 0;
  for (int mask = 1; mask < n_; mask <<= 1, ++level) {
    assert(level < levels_);
    const std::uint64_t slot = tree_slot(level);
    const std::uint64_t flag = tree_flag(level);
    if (me() & mask) {
      send_payload(me() - mask, slot, data, nbytes, flag, gen);
      break;
    }
    if (me() + mask < n_) {
      wait_ge(flag, gen);
      // The sender covers the contiguous block [me+mask, me+2*mask), so
      // folding it in from the right keeps the ascending rank order.
      combine_buf(data, local(slot), nelems, elem, comb);
    }
  }
  bcast_binomial(data, nbytes, 0, gen);
}

void CollectiveEngine::rd_allreduce(
    const std::vector<int>& group, int gi, void* data, std::size_t nelems,
    std::size_t elem, const std::function<void(void*, const void*)>& comb,
    std::int64_t gen) {
  const int G = static_cast<int>(group.size());
  if (G <= 1) return;
  const std::size_t nbytes = nelems * elem;
  assert(nbytes <= opts_.rd_max_bytes);
  int g2 = 1;
  while (g2 * 2 <= G) g2 *= 2;
  const int extra = G - g2;
  const int fold_slot = levels_;      // pre-fold contribution in
  const int ret_slot = levels_ + 1;   // folded result back out
  // Non-power-of-two: pair each of the first `extra` ODD group indices with
  // its left neighbour. The absorber then covers the contiguous block
  // {gi, gi+1}, so every survivor owns a contiguous run of group indices —
  // the property the rank-order fold below depends on. (Folding index
  // gi+g2 into gi, the textbook shortcut, covers {gi, gi+g2}: wrong order
  // for non-commutative combiners.)
  if (gi < 2 * extra && (gi & 1) != 0) {
    const int partner = group[static_cast<std::size_t>(gi - 1)];
    send_payload(partner, rd_slot(fold_slot), data, nbytes, rd_flag(fold_slot),
                 gen);
    wait_ge(rd_flag(ret_slot), gen);
    std::memcpy(data, local(rd_slot(ret_slot)), nbytes);
    return;
  }
  const bool absorbed = gi < 2 * extra;
  if (absorbed) {
    wait_ge(rd_flag(fold_slot), gen);
    // The absorbed neighbour is gi+1: fold from the right.
    combine_buf(data, local(rd_slot(fold_slot)), nelems, elem, comb);
  }
  // Survivor index: pairs occupy group positions [0, 2*extra), singletons
  // follow. The map is monotone, so ascending survivor index == ascending
  // group blocks and the usual recursive-doubling merge rule applies.
  const int j = absorbed ? gi / 2 : gi - extra;
  auto survivor = [&](int sj) {
    const int pos = sj < extra ? 2 * sj : sj + extra;
    return group[static_cast<std::size_t>(pos)];
  };
  std::vector<std::byte> tmp(nbytes);
  for (int r = 0; (1 << r) < g2; ++r) {
    const int pj = j ^ (1 << r);
    send_payload(survivor(pj), rd_slot(r), data, nbytes, rd_flag(r), gen);
    wait_ge(rd_flag(r), gen);
    if (pj < j) {
      // Partner covers the lower indices: result = theirs ∘ mine.
      std::memcpy(tmp.data(), local(rd_slot(r)), nbytes);
      combine_buf(tmp.data(), data, nelems, elem, comb);
      std::memcpy(data, tmp.data(), nbytes);
    } else {
      combine_buf(data, local(rd_slot(r)), nelems, elem, comb);
    }
  }
  if (absorbed) {
    const int partner = group[static_cast<std::size_t>(gi + 1)];
    send_payload(partner, rd_slot(ret_slot), data, nbytes, rd_flag(ret_slot),
                 gen);
  }
}

void CollectiveEngine::reduce_two_level(
    void* data, std::size_t nelems, std::size_t elem,
    const std::function<void(void*, const void*)>& comb, std::int64_t gen) {
  const std::size_t nbytes = nelems * elem;
  assert(nbytes <= opts_.rd_max_bytes);
  const int my_node = node_of(me());
  const int base = my_node * node_size_;
  const int nm = node_members(my_node);
  const int lead = base;
  if (me() != lead) {
    const int idx = me() - base;
    send_payload(lead, gather_slot(idx), data, nbytes, gather_flag(idx), gen);
  } else {
    for (int i = 1; i < nm; ++i) {
      wait_ge(gather_flag(i), gen);
      combine_buf(data, local(gather_slot(i)), nelems, elem, comb);
    }
    if (num_nodes_ > 1) {
      std::vector<int> leaders(static_cast<std::size_t>(num_nodes_));
      for (int i = 0; i < num_nodes_; ++i) {
        leaders[static_cast<std::size_t>(i)] = i * node_size_;
      }
      rd_allreduce(leaders, my_node, data, nelems, elem, comb, gen);
    }
    std::memcpy(local(bc_slot(gen)), data, nbytes);
  }
  node_fanout(lead, data, nbytes, gen);
}

// ---------------------------------------------------------------------------
// Pipelined arms (contiguous binary tree, ack-window flow control)
// ---------------------------------------------------------------------------

CollectiveEngine::BinTree CollectiveEngine::bin_tree(int vrank, int n) {
  BinTree t;
  int lo = 0;
  int hi = n - 1;
  while (vrank != lo) {
    const int mid = (lo + 1 + hi) / 2;
    t.parent = lo;
    if (vrank <= mid) {
      t.my_slot = 0;
      lo = lo + 1;
      hi = mid;
    } else {
      t.my_slot = 1;
      lo = mid + 1;
    }
  }
  if (lo + 1 <= hi) {
    const int mid = (lo + 1 + hi) / 2;
    t.child[t.nchild++] = lo + 1;
    if (mid + 1 <= hi) t.child[t.nchild++] = mid + 1;
  }
  return t;
}

namespace {
// Chunk marks encode (generation, chunk index) so flag and ack cells stay
// monotone across back-to-back collectives.
std::int64_t chunk_mark(std::int64_t gen, std::size_t c) {
  return (gen << 20) | static_cast<std::int64_t>(c + 1);
}
}  // namespace

void CollectiveEngine::pipe_bcast(void* data, std::size_t nbytes, int root0,
                                  std::int64_t gen) {
  const std::size_t cb = opts_.pipe_chunk;
  const std::size_t C = (nbytes + cb - 1) / cb;
  assert(C < (std::size_t{1} << 20));
  const int D = std::max(1, opts_.pipe_depth);
  const int vrank = (me() - root0 + n_) % n_;
  const BinTree t = bin_tree(vrank, n_);
  auto phys = [&](int v) { return (v + root0) % n_; };
  auto* bytes = static_cast<std::byte*>(data);
  for (std::size_t c = 0; c < C; ++c) {
    const std::size_t off = c * cb;
    const std::size_t len = std::min(cb, nbytes - off);
    const std::byte* src;
    if (t.parent >= 0) {
      wait_ge(pd_flag_off_, chunk_mark(gen, c));
      src = local(pd_bank(static_cast<int>(c) % D));
    } else {
      src = bytes + off;
    }
    for (int k = 0; k < t.nchild; ++k) {
      if (c >= static_cast<std::size_t>(D)) {
        // Bank slot c%D at the child still holds chunk c-D until acked.
        wait_ge(pd_ack_off_ + static_cast<std::uint64_t>(k) * 8,
                chunk_mark(gen, c - static_cast<std::size_t>(D)));
      }
      const int child = phys(t.child[k]);
      count_msg(child, len);
      conduit_.put(child, pd_bank(static_cast<int>(c) % D), src, len,
                   /*nbi=*/true);
      if (!opts_.per_target_completion) conduit_.quiet();
      const std::int64_t m = chunk_mark(gen, c);
      count_msg(child, sizeof m);
      conduit_.put(child, pd_flag_off_, &m, sizeof m, /*nbi=*/true);
      ++state().tele.chunks_pipelined;
    }
    if (t.parent >= 0) {
      std::memcpy(bytes + off, src, len);
      put_i64(phys(t.parent),
              pd_ack_off_ + static_cast<std::uint64_t>(t.my_slot) * 8,
              chunk_mark(gen, c));
    }
  }
  // Drain: the next collective may reuse the children's banks immediately,
  // so hold until they acked the tail chunks.
  for (int k = 0; k < t.nchild; ++k) {
    wait_ge(pd_ack_off_ + static_cast<std::uint64_t>(k) * 8,
            chunk_mark(gen, C - 1));
  }
}

void CollectiveEngine::pipe_allreduce(
    void* data, std::size_t nelems, std::size_t elem,
    const std::function<void(void*, const void*)>& comb, std::int64_t gen) {
  const std::size_t nbytes = nelems * elem;
  const std::size_t chunk_elems =
      std::max<std::size_t>(1, opts_.pipe_chunk / elem);
  const std::size_t cb = chunk_elems * elem;
  const std::size_t C = (nbytes + cb - 1) / cb;
  assert(C < (std::size_t{1} << 20));
  const int D = std::max(1, opts_.pipe_depth);
  const BinTree t = bin_tree(me(), n_);
  auto* bytes = static_cast<std::byte*>(data);
  // Up phase: children stream subtree-combined chunks into per-child banks;
  // the parent folds them in ascending-child order (contiguous ranges keep
  // the rank-order fold) and streams its own combined chunk upward.
  for (std::size_t c = 0; c < C; ++c) {
    const std::size_t off = c * cb;
    const std::size_t len = std::min(cb, nbytes - off);
    std::byte* ptr = bytes + off;
    for (int k = 0; k < t.nchild; ++k) {
      wait_ge(pu_flag_off_ + static_cast<std::uint64_t>(k) * 8,
              chunk_mark(gen, c));
      combine_buf(ptr, local(pu_bank(k, static_cast<int>(c) % D)), len / elem,
                  elem, comb);
      put_i64(t.child[k], pu_ack_off_, chunk_mark(gen, c));
    }
    if (t.parent >= 0) {
      if (c >= static_cast<std::size_t>(D)) {
        wait_ge(pu_ack_off_, chunk_mark(gen, c - static_cast<std::size_t>(D)));
      }
      count_msg(t.parent, len);
      conduit_.put(t.parent, pu_bank(t.my_slot, static_cast<int>(c) % D), ptr,
                   len, /*nbi=*/true);
      if (!opts_.per_target_completion) conduit_.quiet();
      const std::int64_t m = chunk_mark(gen, c);
      count_msg(t.parent, sizeof m);
      conduit_.put(t.parent,
                   pu_flag_off_ + static_cast<std::uint64_t>(t.my_slot) * 8,
                   &m, sizeof m, /*nbi=*/true);
      ++state().tele.chunks_pipelined;
    }
  }
  if (t.parent >= 0 && C > 0) {
    wait_ge(pu_ack_off_, chunk_mark(gen, C - 1));
  }
  // Down phase: stream the reduced payload back through the same tree.
  pipe_bcast(data, nbytes, /*root0=*/0, gen);
}

// ---------------------------------------------------------------------------
// Hierarchical dissemination barrier
// ---------------------------------------------------------------------------

void CollectiveEngine::barrier() {
  if (n_ <= 1) return;
  obs::Span sp(obs::Cat::kBarrier);
  PerRank& st = state();
  ++st.tele.barriers;
  const std::int64_t bg = ++st.bar_gen;
  const int my_node = node_of(me());
  const int base = my_node * node_size_;
  const int nm = node_members(my_node);
  const int lead = base;
  if (me() != lead) {
    count_msg(lead, sizeof(std::int64_t));
    (void)conduit_.amo_fadd(lead, bar_gather_off_, 1);
    wait_ge(bar_release_off_, bg);
    return;
  }
  if (nm > 1) {
    wait_ge(bar_gather_off_, static_cast<std::int64_t>(nm - 1) * bg);
  }
  // Dissemination rounds across node leaders only: ceil(log2 nodes) wire
  // messages per leader instead of ceil(log2 images) per image.
  const int L = num_nodes_;
  for (int r = 0; (1 << r) < L; ++r) {
    const int peer = ((my_node + (1 << r)) % L) * node_size_;
    put_i64(peer, bar_cells_off_ + static_cast<std::uint64_t>(r) * 8, bg);
    wait_ge(bar_cells_off_ + static_cast<std::uint64_t>(r) * 8, bg);
  }
  for (int i = 1; i < nm; ++i) {
    put_i64(base + i, bar_release_off_, bg);
  }
}

}  // namespace caf
