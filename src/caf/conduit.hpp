// caf::Conduit — the communication-layer abstraction of the UHCAF runtime.
//
// The paper's UHCAF runtime can execute over GASNet, ARMCI, or (this
// paper's contribution) OpenSHMEM. This interface captures exactly the
// primitives the CAF translation of §IV needs:
//
//   * collective symmetric allocation       (allocate/deallocate — Table II
//     maps CAF `allocate` to `shmalloc`);
//   * contiguous one-sided put/get          (§IV-B, with quiet for CAF's
//     stronger completion ordering);
//   * 1-D strided put/get                   (§IV-C building block — may be
//     hardware-offloaded or a software loop, the conduit decides);
//   * 64-bit remote atomics                 (§IV-D locks; conduits without
//     native atomics emulate them, at a cost);
//   * local wait on a symmetric 64-bit word (MCS spin-on-local);
//   * barrier, and optionally native broadcast/reduction.
//
// All offsets are into the conduit's symmetric segment; CAF image indices
// here are 0-based ranks (the Runtime converts to CAF's 1-based images).
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/model.hpp"
#include "shmem/world.hpp"  // for shmem::Cmp / ReduceOp enums reused here

namespace caf {

using Cmp = shmem::Cmp;
using ReduceOp = shmem::ReduceOp;

class Conduit {
 public:
  virtual ~Conduit() = default;

  // ---- identity & segment ----
  virtual int rank() const = 0;       // 0-based
  virtual int nranks() const = 0;
  virtual std::byte* segment(int rank) = 0;
  virtual std::size_t segment_bytes() const = 0;
  virtual const net::SwProfile& sw() const = 0;
  virtual sim::Engine& engine() = 0;

  /// True when the conduit's 1-D strided transfers are NIC-offloaded
  /// (Cray SHMEM over DMAPP); false when they loop in software
  /// (MVAPICH2-X SHMEM, GASNet).
  virtual bool hw_strided() const = 0;
  /// True when remote atomics run on the NIC; false when they are
  /// active-message emulations (GASNet).
  virtual bool native_amo() const = 0;

  /// Collective hook invoked once per image by Runtime::init() after the
  /// runtime's internal allocations; conduits needing collective setup
  /// (e.g. ARMCI mutex creation) override it.
  virtual void post_init() {}

  /// Scheduler-context store into `rank`'s segment at virtual time `t`,
  /// firing the conduit's write hooks so blocked waiters wake. Used by the
  /// runtime's failure handler (and AM handlers) which mutate target memory
  /// from the event loop rather than through a fiber's NIC path.
  virtual void poke(int rank, std::uint64_t off, const void* src,
                    std::size_t n, sim::Time t) = 0;

  // ---- collective symmetric allocation ----
  /// Collective; every rank calls with the same size and receives the same
  /// segment offset. Includes an implicit barrier.
  virtual std::uint64_t allocate(std::size_t bytes) = 0;
  virtual void deallocate(std::uint64_t offset) = 0;

  // ---- one-sided RMA ----
  virtual void put(int rank, std::uint64_t dst_off, const void* src,
                   std::size_t n, bool nbi) = 0;
  virtual void get(void* dst, int rank, std::uint64_t src_off,
                   std::size_t n) = 0;
  /// 1-D strided put/get; strides in elements (shmem_iput conventions).
  virtual void iput(int rank, std::uint64_t dst_off, std::ptrdiff_t dst_stride,
                    const void* src, std::ptrdiff_t src_stride,
                    std::size_t elem_bytes, std::size_t nelems) = 0;
  virtual void iget(void* dst, std::ptrdiff_t dst_stride, int rank,
                    std::uint64_t src_off, std::ptrdiff_t src_stride,
                    std::size_t elem_bytes, std::size_t nelems) = 0;
  /// Remote completion of all outstanding puts/AMOs from this rank.
  virtual void quiet() = 0;

  // ---- 64-bit remote atomics ----
  virtual std::int64_t amo_swap(int rank, std::uint64_t off,
                                std::int64_t value) = 0;
  virtual std::int64_t amo_cswap(int rank, std::uint64_t off,
                                 std::int64_t cond, std::int64_t value) = 0;
  virtual std::int64_t amo_fadd(int rank, std::uint64_t off,
                                std::int64_t value) = 0;
  virtual std::int64_t amo_fand(int rank, std::uint64_t off,
                                std::int64_t mask) = 0;
  virtual std::int64_t amo_for(int rank, std::uint64_t off,
                               std::int64_t mask) = 0;
  virtual std::int64_t amo_fxor(int rank, std::uint64_t off,
                                std::int64_t mask) = 0;

  // ---- synchronization ----
  /// Blocks until the 64-bit word at `off` in the *local* segment satisfies
  /// cmp/value (woken by remote deliveries; no busy polling).
  virtual void wait_until(std::uint64_t off, Cmp cmp, std::int64_t value) = 0;
  virtual void barrier() = 0;

  // ---- optional native collectives (Table II: co_broadcast →
  //      shmem_broadcast, co_<op> → shmem_<op>_to_all) ----
  virtual bool has_native_collectives() const { return false; }
  virtual void native_broadcast(std::uint64_t /*off*/, std::size_t /*nbytes*/,
                                int /*root*/) {}
  virtual void native_reduce_f64(std::uint64_t /*off*/, std::size_t /*nelems*/,
                                 ReduceOp /*op*/) {}
  virtual void native_reduce_i64(std::uint64_t /*off*/, std::size_t /*nelems*/,
                                 ReduceOp /*op*/) {}
};

}  // namespace caf
